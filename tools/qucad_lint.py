#!/usr/bin/env python3
"""qucad_lint: repo-specific invariant linter (rules clang-tidy can't say).

Machine-checks the conventions the codebase is built on — see
docs/ARCHITECTURE.md "Correctness tooling":

  no-throw-serving      src/serve/, src/io/ and src/fleet/ are the no-abort
                        serving path: errors travel as Status/StatusOr, so
                        `throw` may not appear there (tests excluded by
                        scope).
  registry-only-backend NoisyExecutor / PureExecutor /
                        SampledStatevectorBackend are constructed only
                        inside src/backend/, src/sim/, src/transpile/ (the
                        engines themselves) — consumers go through
                        BackendRegistry / CompiledEvalCache.
  positional-readout    run_z / run_logits / zne_expectations output is
                        ordered by readout slot, never indexed by qubit
                        id: flags subscripting a z/logit/expectation
                        container with an index whose name says `qubit`.
  banned-call           rand()/srand() (modulo-biased, process-global),
                        strtok (non-reentrant), and std::random_device
                        (non-deterministic seeding) are banned in
                        deterministic paths.

Scope: src/, bench/, examples/ (positional-readout also covers tests/).
Exemptions live in tools/qucad_lint_allow.txt as `<rule-id> <path>` lines,
each with a rationale comment — prefer fixing over allowlisting.

Usage:
  python3 tools/qucad_lint.py              # lint the tree, exit 1 on findings
  python3 tools/qucad_lint.py --self-test  # prove each rule fires, exit 1 on gaps

The implementation is disciplined regex over comment- and string-stripped
source (libclang is not available in every toolchain this repo builds on);
each rule is written to over-approximate rarely and the allowlist absorbs
deliberate exceptions.
"""

import argparse
import pathlib
import re
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
ALLOWLIST = ROOT / "tools" / "qucad_lint_allow.txt"

BACKEND_TYPES = r"(?:NoisyExecutor|PureExecutor|SampledStatevectorBackend)"

# Containers whose subscript must be a slot index (a slot-ordered value or
# the direct result of a slot-ordered call), and index spellings that claim
# to be a qubit id. `readout_qubits[slot]` itself is fine — that maps
# slot -> qubit, which is the direction the contract allows.
SLOT_CONTAINER = (
    r"(?:(?:run_z|run_logits|zne_expectations)\s*\([^)\n]*\)"
    r"|\b\w*(?:logits?|z_values|zne|expectations?)\w*)"
)
QUBIT_INDEX = r"[^\]\n]*qubit[^\]\n]*"


class Rule:
    def __init__(self, rule_id, pattern, message, dirs, suffixes=(".cpp", ".hpp")):
        self.rule_id = rule_id
        self.pattern = re.compile(pattern)
        self.message = message
        self.dirs = dirs
        self.suffixes = suffixes


RULES = [
    Rule(
        "no-throw-serving",
        r"\bthrow\b",
        "src/serve/, src/io/ and src/fleet/ must report errors as "
        "Status/StatusOr, never throw (the serving path's no-abort contract)",
        dirs=("src/serve", "src/io", "src/fleet"),
    ),
    Rule(
        "registry-only-backend",
        r"(?:\bnew\s+" + BACKEND_TYPES + r"\b"
        r"|make_(?:shared|unique)\s*<\s*(?:const\s+)?" + BACKEND_TYPES + r"\b"
        r"|\b" + BACKEND_TYPES + r"\s+\w+\s*[({]"
        r"|\b" + BACKEND_TYPES + r"\s*\()",
        "construct execution engines through BackendRegistry / "
        "CompiledEvalCache, not directly (registry-only backend invariant)",
        dirs=("src", "bench", "examples"),
    ),
    Rule(
        "positional-readout",
        SLOT_CONTAINER + r"\s*\[" + QUBIT_INDEX + r"\]",
        "run_z/run_logits/zne_expectations output is slot-ordered; indexing "
        "it by a qubit id reintroduces the pre-PR-2 misindexing bug",
        dirs=("src", "bench", "examples", "tests"),
    ),
    Rule(
        "banned-call",
        r"(?:(?<![\w:.>])(?:s?rand)\s*\(|\bstrtok\s*\(|std::random_device\b)",
        "rand/srand/strtok/std::random_device are banned: use "
        "common/rng.hpp's seeded generators (determinism contract)",
        dirs=("src", "bench", "examples"),
    ),
]

# registry-only-backend: the engines' own directories may construct freely.
ENGINE_DIRS = ("src/sim", "src/transpile", "src/backend")


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving newlines
    and column positions so finding line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":  # block comment
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"':  # raw string literal
            match = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if match:
                closer = ")" + match.group(1) + '"'
                end = text.find(closer, i)
                end = (end + len(closer)) if end != -1 else n
                for j in range(i, end):
                    out.append("\n" if text[j] == "\n" else " ")
                i = end
            else:
                out.append(c)
                i += 1
        elif c in "\"'":  # string or char literal
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_allowlist(path):
    allow = set()
    if not path.exists():
        return allow
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            print(f"{path}: malformed allowlist line: {raw!r}", file=sys.stderr)
            sys.exit(2)
        allow.add((parts[0], parts[1]))
    return allow


def rule_applies(rule, rel):
    rel_posix = rel.as_posix()
    if rule.rule_id == "registry-only-backend" and any(
        rel_posix.startswith(d + "/") for d in ENGINE_DIRS
    ):
        return False
    return any(rel_posix.startswith(d + "/") for d in rule.dirs)


def lint_tree(root, allow):
    findings = []
    scan_dirs = sorted({d for rule in RULES for d in rule.dirs})
    seen = set()
    for dir_name in scan_dirs:
        base = root / dir_name
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp") or path in seen:
                continue
            seen.add(path)
            rel = path.relative_to(root)
            text = strip_comments_and_strings(path.read_text())
            for rule in RULES:
                if not rule_applies(rule, rel):
                    continue
                if (rule.rule_id, rel.as_posix()) in allow:
                    continue
                for match in rule.pattern.finditer(text):
                    line = text.count("\n", 0, match.start()) + 1
                    findings.append(
                        f"{rel.as_posix()}:{line}: [{rule.rule_id}] {rule.message}"
                    )
    return findings


# --- self-test -------------------------------------------------------------

# Synthetic violations per rule (plus a clean file that must stay clean):
# the self-test proves every rule fires in every directory it claims to
# cover and doesn't over-fire, and that comment/string stripping and the
# allowlist mechanism work.
SELF_TEST_CASES = {
    "no-throw-serving": [
        ("src/serve/bad.cpp",
         "void f() { throw PreconditionError(\"boom\"); }\n"),
        ("src/fleet/bad.cpp",
         "void g() { throw std::runtime_error(\"fleet\"); }\n"),
    ],
    "registry-only-backend": [
        ("src/qnn/bad.cpp",
         "void f() { NoisyExecutor executor(phys, nm); }\n"),
    ],
    "positional-readout": [
        ("src/eval/bad.cpp",
         "double g() { return logits[readout_qubits[0]]; }\n"
         "double h(int qubit) { return run_logits(x)[qubit]; }\n"),
    ],
    "banned-call": [
        ("src/data/bad.cpp",
         "int f() { std::random_device rd; return rand() % 6; }\n"),
    ],
}

CLEAN_FILE = (
    "src/serve/good.cpp",
    # Mentions of every banned pattern inside comments and strings, plus the
    # allowed direction of readout indexing: none of these may fire.
    "// a comment may say throw, rand(), or NoisyExecutor executor(x);\n"
    "const char* s = \"throw std::random_device rand()\";\n"
    "int slot_ok(const std::vector<int>& readout_qubits) {\n"
    "  return readout_qubits[0];  // slot -> qubit mapping is the legal way\n"
    "}\n"
    "double positional(const std::vector<double>& logits, int slot) {\n"
    "  return logits[slot];\n"
    "}\n",
)


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        tmp_root = pathlib.Path(tmp)
        all_cases = [case for cases in SELF_TEST_CASES.values()
                     for case in cases]
        for rel, content in [*all_cases, CLEAN_FILE]:
            target = tmp_root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content)
        findings = lint_tree(tmp_root, allow=set())
        for rule_id, cases in SELF_TEST_CASES.items():
            for rel, _ in cases:
                hits = [f for f in findings if f"[{rule_id}]" in f and rel in f]
                if not hits:
                    failures.append(f"rule {rule_id} did not fire on {rel}")
        clean_hits = [f for f in findings if CLEAN_FILE[0] in f]
        if clean_hits:
            failures.append(f"clean file produced findings: {clean_hits}")
        # The allowlist must silence exactly the exempted (rule, file) pair.
        rel = SELF_TEST_CASES["no-throw-serving"][0][0]
        allowed = lint_tree(tmp_root, allow={("no-throw-serving", rel)})
        if any(f"[no-throw-serving]" in f and rel in f for f in allowed):
            failures.append("allowlist entry did not suppress its finding")
        if len(allowed) >= len(findings):
            failures.append("allowlist suppressed nothing or grew findings")
    for failure in failures:
        print(f"self-test FAILED: {failure}")
    if not failures:
        print(f"self-test OK: {len(SELF_TEST_CASES)} rules fire, "
              "clean file stays clean, allowlist suppresses")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on a synthetic violation")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    findings = lint_tree(ROOT, load_allowlist(ALLOWLIST))
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} finding(s). Fix, or exempt in "
              f"{ALLOWLIST.relative_to(ROOT)} with a rationale comment.")
        return 1
    print("qucad_lint: tree is clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
