// Equivalence suite for the compiled noisy-execution engine: the fused
// op-stream (sim/compiled_ops.hpp) must reproduce the legacy gate-by-gate
// density-matrix walk to 1e-10 on random transpiled circuits, with noise on
// and off, shots on and off — plus unit checks for the fused channel
// kernels, the CX permutation fast path, and the executor cache.

#include <gtest/gtest.h>

#include <cmath>

#include "data/mnist_synth.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "qnn/eval_cache.hpp"
#include "qnn/evaluator.hpp"
#include "transpile/transpiler.hpp"

#include "test_support.hpp"

namespace qucad {
namespace {

using test::kAgreementTol;

Calibration noisy_calibration(int nq, const std::vector<std::pair<int, int>>& edges,
                              Rng& rng) {
  Calibration cal(nq, edges);
  for (int q = 0; q < nq; ++q) {
    cal.set_sx_error(q, rng.uniform(0.0005, 0.01));
    cal.set_readout(q, ReadoutError{rng.uniform(0.005, 0.06), rng.uniform(0.005, 0.06)});
    const double t1 = rng.uniform(40.0, 150.0);
    cal.set_t1_t2(q, t1, rng.uniform(0.5 * t1, 1.8 * t1));
  }
  for (const auto& [a, b] : edges) {
    cal.set_cx_error(a, b, rng.uniform(0.004, 0.08));
  }
  return cal;
}

/// Routes a random logical circuit onto a line device and lowers it with
/// some data-dependent RZ slots so the compiled program keeps symbolic ops.
PhysicalCircuit random_transpiled(Rng& rng, int nq, int gates, int inputs) {
  Circuit c = test::random_circuit(rng, nq, gates);
  for (int i = 0; i < inputs; ++i) {
    c.rz(rng.integer(0, nq - 1), input(i));
    c.ry(rng.integer(0, nq - 1), input(i));
  }
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < nq; ++q) edges.emplace_back(q, q + 1);
  const RoutedCircuit routed =
      route_circuit(c, CouplingMap(nq, edges), trivial_layout(nq));
  return lower_to_basis(routed, {});
}

class CompiledOpsTest : public test::SeededTest {};

TEST_F(CompiledOpsTest, MatchesReferenceOnRandomCircuitsWithNoise) {
  for (int trial = 0; trial < 6; ++trial) {
    const int nq = 3 + trial % 3;  // 3..5 qubits
    const PhysicalCircuit phys = random_transpiled(rng(), nq, 14 + trial, 2);
    std::vector<std::pair<int, int>> edges;
    for (int q = 0; q + 1 < nq; ++q) edges.emplace_back(q, q + 1);
    const Calibration cal = noisy_calibration(nq, edges, rng());
    const NoisyExecutor executor(phys, NoiseModel(cal));

    std::vector<double> x{0.3, 1.1};
    const auto z_ref = executor.run_z_reference(x);
    const auto z_compiled = executor.run_z(x);
    ASSERT_EQ(z_ref.size(), z_compiled.size());
    for (std::size_t k = 0; k < z_ref.size(); ++k) {
      EXPECT_NEAR(z_compiled[k], z_ref[k], kAgreementTol)
          << "trial " << trial << " slot " << k;
    }
  }
}

TEST_F(CompiledOpsTest, MatchesReferenceNoiseless) {
  for (int trial = 0; trial < 4; ++trial) {
    const int nq = 3 + trial % 2;
    const PhysicalCircuit phys = random_transpiled(rng(), nq, 12, 1);
    const NoisyExecutor executor(phys, NoiseModel{});

    const std::vector<double> x{0.7};
    const auto z_ref = executor.run_z_reference(x);
    const auto z_compiled = executor.run_z(x);
    ASSERT_EQ(z_ref.size(), z_compiled.size());
    for (std::size_t k = 0; k < z_ref.size(); ++k) {
      EXPECT_NEAR(z_compiled[k], z_ref[k], kAgreementTol);
    }
    // Noiseless chains fuse aggressively: the stream must be much shorter
    // than the source circuit.
    EXPECT_LT(executor.program().stats().compiled_ops,
              executor.program().stats().source_ops);
  }
}

TEST_F(CompiledOpsTest, FullDensityMatrixMatchesWithElisionDisabled) {
  // With trailing-diagonal elision off, the compiled program reproduces the
  // reference density matrix entry-for-entry, off-diagonals included.
  const int nq = 4;
  const PhysicalCircuit phys = random_transpiled(rng(), nq, 16, 2);
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < nq; ++q) edges.emplace_back(q, q + 1);
  const Calibration cal = noisy_calibration(nq, edges, rng());

  CompileOptions opts;
  opts.drop_trailing_diagonal = false;
  const NoisyExecutor executor(phys, NoiseModel(cal), opts);

  const std::vector<double> x{0.4, 2.0};
  const DensityMatrix ref = executor.run_density(x);
  DensityMatrix compiled(nq);
  executor.program().run(compiled, x);
  ASSERT_EQ(ref.data().size(), compiled.data().size());
  for (std::size_t i = 0; i < ref.data().size(); ++i) {
    EXPECT_NEAR(std::abs(compiled.data()[i] - ref.data()[i]), 0.0,
                kAgreementTol)
        << "rho entry " << i;
  }
}

TEST_F(CompiledOpsTest, FusionDisabledStillMatches) {
  const PhysicalCircuit phys = random_transpiled(rng(), 4, 15, 2);
  std::vector<std::pair<int, int>> edges{{0, 1}, {1, 2}, {2, 3}};
  const Calibration cal = noisy_calibration(4, edges, rng());

  CompileOptions unfused;
  unfused.fuse_single_qubit = false;
  unfused.drop_trailing_diagonal = false;
  const NoisyExecutor a(phys, NoiseModel(cal), unfused);
  const NoisyExecutor b(phys, NoiseModel(cal));

  const std::vector<double> x{1.2, 0.1};
  const auto za = a.run_z(x);
  const auto zb = b.run_z(x);
  const auto zr = a.run_z_reference(x);
  ASSERT_EQ(za.size(), zb.size());
  for (std::size_t k = 0; k < za.size(); ++k) {
    EXPECT_NEAR(za[k], zr[k], kAgreementTol);
    EXPECT_NEAR(zb[k], zr[k], kAgreementTol);
  }
}

TEST_F(CompiledOpsTest, ShotSamplingMatchesLegacySeedForSeed) {
  // Shots draw from the same per-sample probabilities, so with identical
  // seeds the compiled path must converge to the same estimates as exact
  // expectations, and be deterministic run to run.
  const PhysicalCircuit phys = random_transpiled(rng(), 3, 10, 1);
  std::vector<std::pair<int, int>> edges{{0, 1}, {1, 2}};
  const Calibration cal = noisy_calibration(3, edges, rng());
  const NoisyExecutor executor(phys, NoiseModel(cal));

  const std::vector<double> x{0.9};
  Rng r1(42), r2(42);
  const auto s1 = executor.run_z_shots(x, 4000, r1);
  const auto s2 = executor.run_z_shots(x, 4000, r2);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t k = 0; k < s1.size(); ++k) {
    EXPECT_DOUBLE_EQ(s1[k], s2[k]) << "shot sampling must be deterministic";
  }
  const auto exact = executor.run_z(x);
  for (std::size_t k = 0; k < s1.size(); ++k) {
    EXPECT_NEAR(s1[k], exact[k], 0.06);
  }
}

TEST_F(CompiledOpsTest, BatchMatchesSingleRuns) {
  const PhysicalCircuit phys = random_transpiled(rng(), 4, 12, 2);
  std::vector<std::pair<int, int>> edges{{0, 1}, {1, 2}, {2, 3}};
  const Calibration cal = noisy_calibration(4, edges, rng());
  const NoisyExecutor executor(phys, NoiseModel(cal));

  std::vector<std::vector<double>> xs;
  for (int i = 0; i < 8; ++i) {
    xs.push_back({rng().uniform(0.0, 3.0), rng().uniform(0.0, 3.0)});
  }
  const auto batch = executor.run_z_batch(xs);
  ASSERT_EQ(batch.size(), xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto single = executor.run_z(xs[i]);
    ASSERT_EQ(batch[i].size(), single.size());
    for (std::size_t k = 0; k < single.size(); ++k) {
      EXPECT_NEAR(batch[i][k], single[k], 1e-14);
    }
  }

  // Shot batches reproduce run_z_shots with the matching per-sample seed.
  const auto shot_batch = executor.run_z_batch(xs, 500, 77);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    Rng rng_i(77 + i);
    const auto single = executor.run_z_shots(xs[i], 500, rng_i);
    for (std::size_t k = 0; k < single.size(); ++k) {
      EXPECT_DOUBLE_EQ(shot_batch[i][k], single[k]);
    }
  }
}

TEST(FusedChannels, PulseChannelMatchesSequentialApplication) {
  PulseNoise pn;
  pn.depolarizing_p = 0.03;
  pn.thermal = ThermalChannel{0.02, 0.015};

  Rng rng(5);
  const Circuit c = test::random_circuit(rng, 3, 8);
  DensityMatrix fused(3), seq(3);
  fused.run(c);
  seq.run(c);

  for (int q = 0; q < 3; ++q) {
    fused.apply_channel1(q, fuse_pulse_channel(pn));
    seq.apply_depolarizing1(q, pn.depolarizing_p);
    seq.apply_thermal1(q, pn.thermal.gamma, pn.thermal.lambda);
  }
  for (std::size_t i = 0; i < fused.data().size(); ++i) {
    EXPECT_NEAR(std::abs(fused.data()[i] - seq.data()[i]), 0.0, test::kTightTol);
  }
  EXPECT_NEAR(fused.trace_real(), 1.0, test::kTightTol);
}

TEST(FusedChannels, CxChannelMatchesSequentialApplication) {
  CxNoise cn;
  cn.depolarizing_p = 0.08;
  cn.thermal_first = ThermalChannel{0.03, 0.01};
  cn.thermal_second = ThermalChannel{0.015, 0.025};

  Rng rng(9);
  const Circuit c = test::random_circuit(rng, 4, 10);
  DensityMatrix fused(4), seq(4);
  fused.run(c);
  seq.run(c);

  fused.apply_channel2(1, 3, fuse_cx_channel(cn));
  seq.apply_depolarizing2(1, 3, cn.depolarizing_p);
  seq.apply_thermal1(1, cn.thermal_first.gamma, cn.thermal_first.lambda);
  seq.apply_thermal1(3, cn.thermal_second.gamma, cn.thermal_second.lambda);
  for (std::size_t i = 0; i < fused.data().size(); ++i) {
    EXPECT_NEAR(std::abs(fused.data()[i] - seq.data()[i]), 0.0, test::kTightTol);
  }
  EXPECT_NEAR(fused.trace_real(), 1.0, test::kTightTol);
}

TEST(FusedChannels, CxPermutationMatchesApply2) {
  Rng rng(11);
  const Circuit c = test::random_circuit(rng, 4, 12);
  DensityMatrix perm(4), mat(4);
  perm.run(c);
  mat.run(c);
  perm.apply_cx(2, 0);
  mat.apply_gate(Gate{GateKind::CX, 2, 0, {}, 0.0}, 0.0);
  for (std::size_t i = 0; i < perm.data().size(); ++i) {
    EXPECT_NEAR(std::abs(perm.data()[i] - mat.data()[i]), 0.0, test::kTightTol);
  }
}

TEST(CompiledEvalCache, HitsOnRepeatedConfigurationMissesOnChange) {
  CompiledEvalCache cache(8);
  const CalibrationHistory h(FluctuationScenario::belem(), 4, 3);
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  auto theta = init_params(model, 3);
  const TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits, CouplingMap::belem(), &h.day(0));

  const auto a = cache.get_or_build(model, transpiled, theta, h.day(0), {});
  const auto b = cache.get_or_build(model, transpiled, theta, h.day(0), {});
  EXPECT_EQ(a.get(), b.get()) << "same configuration must share one executor";
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Different theta, different day, different noise options: all misses.
  theta[0] += 0.25;
  const auto c = cache.get_or_build(model, transpiled, theta, h.day(0), {});
  EXPECT_NE(a.get(), c.get());
  const auto d = cache.get_or_build(model, transpiled, theta, h.day(1), {});
  EXPECT_NE(c.get(), d.get());
  NoiseModelOptions no_thermal;
  no_thermal.include_thermal_relaxation = false;
  const auto e = cache.get_or_build(model, transpiled, theta, h.day(1), no_thermal);
  EXPECT_NE(d.get(), e.get());
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(CompiledEvalCache, EvictsLeastRecentlyUsed) {
  CompiledEvalCache cache(2);
  const CalibrationHistory h(FluctuationScenario::belem(), 4, 3);
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  const auto theta = init_params(model, 3);
  const TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits, CouplingMap::belem(), &h.day(0));

  cache.get_or_build(model, transpiled, theta, h.day(0), {});
  cache.get_or_build(model, transpiled, theta, h.day(1), {});
  cache.get_or_build(model, transpiled, theta, h.day(2), {});  // evicts day 0
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.get_or_build(model, transpiled, theta, h.day(0), {});  // rebuild
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CompiledEvalCache, CachedEvaluationMatchesUncached) {
  const CalibrationHistory h(FluctuationScenario::belem(), 4, 3);
  const QnnModel model = build_paper_model(4, 4, 2, 2);
  const auto theta = init_params(model, 5);
  const TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits, CouplingMap::belem(), &h.day(0));
  const Dataset data = make_mnist4(24, 11).take(16);

  NoisyEvalOptions cached;
  NoisyEvalOptions uncached;
  uncached.use_cache = false;
  const auto r1 = noisy_evaluate(model, transpiled, theta, data, h.day(1), cached);
  const auto r2 = noisy_evaluate(model, transpiled, theta, data, h.day(1), uncached);
  const auto r3 = noisy_evaluate(model, transpiled, theta, data, h.day(1), cached);
  EXPECT_EQ(r1.predictions, r2.predictions);
  EXPECT_EQ(r1.predictions, r3.predictions);
  EXPECT_DOUBLE_EQ(r1.accuracy, r2.accuracy);
}

}  // namespace
}  // namespace qucad
