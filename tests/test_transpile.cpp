#include <gtest/gtest.h>

#include "common/require.hpp"
#include "noise/calibration_history.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {
namespace {

TEST(CouplingMap, BelemTopology) {
  const CouplingMap belem = CouplingMap::belem();
  EXPECT_EQ(belem.num_qubits(), 5);
  EXPECT_TRUE(belem.adjacent(0, 1));
  EXPECT_TRUE(belem.adjacent(1, 3));
  EXPECT_FALSE(belem.adjacent(0, 2));
  EXPECT_FALSE(belem.adjacent(2, 3));
  EXPECT_EQ(belem.distance(0, 4), 3);  // 0-1-3-4
  EXPECT_EQ(belem.distance(2, 4), 3);  // 2-1-3-4
}

TEST(CouplingMap, ShortestPathEndpoints) {
  const CouplingMap belem = CouplingMap::belem();
  const auto path = belem.shortest_path(0, 4);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 4);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(belem.adjacent(path[i], path[i + 1]));
  }
}

TEST(CouplingMap, JakartaTopology) {
  const CouplingMap j = CouplingMap::jakarta();
  EXPECT_EQ(j.num_qubits(), 7);
  EXPECT_TRUE(j.adjacent(3, 5));
  EXPECT_TRUE(j.adjacent(5, 6));
  EXPECT_EQ(j.distance(0, 6), 4);  // 0-1-3-5-6
}

TEST(CouplingMap, Presets) {
  EXPECT_EQ(CouplingMap::line(4).edges().size(), 3u);
  EXPECT_EQ(CouplingMap::ring(5).edges().size(), 5u);
  EXPECT_EQ(CouplingMap::full(4).edges().size(), 6u);
  EXPECT_EQ(CouplingMap::full(4).distance(0, 3), 1);
}

TEST(Layout, TrivialIsIdentity) {
  const Layout l = trivial_layout(4);
  EXPECT_EQ(l, (Layout{0, 1, 2, 3}));
}

TEST(Layout, NoiseAwareAvoidsHotEdge) {
  // Two-qubit circuit with a single CR gate; one edge is much noisier.
  Circuit c(2);
  c.cry(0, 1, trainable(0));
  Calibration cal(3, {{0, 1}, {1, 2}});
  cal.set_cx_error(0, 1, 0.20);
  cal.set_cx_error(1, 2, 0.001);
  const CouplingMap line = CouplingMap::line(3);
  const Layout l = noise_aware_layout(c, {0}, line, cal);
  // The chosen physical pair must be {1,2}, not {0,1}.
  const int pa = l[0], pb = l[1];
  EXPECT_TRUE((pa == 1 && pb == 2) || (pa == 2 && pb == 1));
}

TEST(Layout, CostPrefersAdjacentPlacement) {
  Circuit c(2);
  c.cry(0, 1, trainable(0));
  Calibration cal(5, CouplingMap::belem().edges());
  for (const auto& [a, b] : cal.edges()) cal.set_cx_error(a, b, 0.01);
  const CouplingMap belem = CouplingMap::belem();
  const double adjacent = layout_cost(c, {0}, belem, cal, {0, 1});
  const double distant = layout_cost(c, {0}, belem, cal, {0, 4});
  EXPECT_LT(adjacent, distant);
}

TEST(Router, AdjacentGatesPassThrough) {
  Circuit c(2);
  c.cry(0, 1, trainable(0)).ry(0, trainable(1));
  const RoutedCircuit routed =
      route_circuit(c, CouplingMap::belem(), {0, 1});
  EXPECT_EQ(routed.swap_count, 0);
  EXPECT_EQ(routed.circuit.size(), 2u);
  EXPECT_EQ(routed.final_mapping, (std::vector<int>{0, 1}));
}

TEST(Router, InsertsSwapsForDistantPair) {
  Circuit c(2);
  c.cry(0, 1, trainable(0));
  // Logical 0 -> physical 0, logical 1 -> physical 4: distance 3 on belem.
  const RoutedCircuit routed = route_circuit(c, CouplingMap::belem(), {0, 4});
  EXPECT_EQ(routed.swap_count, 2);
  // Every two-qubit gate in the routed circuit must be on coupled qubits.
  const CouplingMap belem = CouplingMap::belem();
  for (const Gate& g : routed.circuit.gates()) {
    if (g.num_qubits() == 2) {
      EXPECT_TRUE(belem.adjacent(g.q0, g.q1));
    }
  }
}

TEST(Router, PreservesParameterReferences) {
  Circuit c(3);
  c.ry(0, trainable(0)).cry(0, 2, trainable(1)).rz(2, input(0));
  const RoutedCircuit routed = route_circuit(c, CouplingMap::belem(), {0, 1, 2});
  int trainable_count = 0, input_count = 0;
  for (const Gate& g : routed.circuit.gates()) {
    if (g.param.kind == ParamRef::Kind::Trainable) ++trainable_count;
    if (g.param.kind == ParamRef::Kind::Input) ++input_count;
  }
  EXPECT_EQ(trainable_count, 2);
  EXPECT_EQ(input_count, 1);
  EXPECT_EQ(routed.circuit.num_trainable(), 2);
}

TEST(Router, FinalMappingTracksSwaps) {
  Circuit c(2);
  c.cry(0, 1, trainable(0));
  const RoutedCircuit routed = route_circuit(c, CouplingMap::belem(), {0, 4});
  // After routing, logical qubits live where the swaps left them; the
  // final mapping must be a valid injective map.
  std::vector<int> seen;
  for (int p : routed.final_mapping) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 5);
    seen.push_back(p);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Transpiler, AssociationsCoverAllParameters) {
  Circuit c(4);
  int p = 0;
  for (int q = 0; q < 4; ++q) c.ry(q, trainable(p++));
  for (int q = 0; q < 4; ++q) c.cry(q, (q + 1) % 4, trainable(p++));
  const CalibrationHistory h(FluctuationScenario::belem(), 5, 3);
  const TranspiledModel model =
      transpile_model(c, {0, 1}, CouplingMap::belem(), &h.day(0));
  ASSERT_EQ(model.associations.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(model.associations[i].param_index, static_cast<int>(i));
    EXPECT_GE(model.associations[i].q0, 0);
    if (i >= 4) EXPECT_TRUE(model.associations[i].is_two_qubit());
    else EXPECT_FALSE(model.associations[i].is_two_qubit());
  }
}

TEST(Transpiler, TwoQubitAssociationsAreCoupled) {
  Circuit c(4);
  int p = 0;
  for (int q = 0; q < 4; ++q) c.cry(q, (q + 1) % 4, trainable(p++));
  const CalibrationHistory h(FluctuationScenario::belem(), 5, 3);
  const CouplingMap belem = CouplingMap::belem();
  const TranspiledModel model = transpile_model(c, {0}, belem, &h.day(0));
  for (const GateAssociation& a : model.associations) {
    if (a.is_two_qubit()) {
      EXPECT_TRUE(belem.adjacent(a.q0, a.q1));
    }
  }
}

TEST(Transpiler, OversizedCircuitRejected) {
  Circuit c(6);
  c.ry(0, 0.1);
  EXPECT_THROW(transpile_model(c, {0}, CouplingMap::belem(), nullptr),
               PreconditionError);
}

TEST(Transpiler, OutOfRangeReadoutRejectedBeforeLayoutSearch) {
  // Fuzz-found (fuzz/corpus/transpile/hostile_readout_repro): an
  // out-of-range readout qubit used to reach the noise-aware layout
  // search, where layout_cost indexed past the candidate layout. The
  // hostile readout set must be rejected up front, on both the
  // noise-aware and the trivial-layout paths.
  Circuit c(2);
  c.ry(0, trainable(0));
  c.cx(0, 1);
  const CalibrationHistory h(FluctuationScenario::belem(), 1, 3);
  TranspileOptions noise_aware;
  noise_aware.noise_aware_layout = true;
  EXPECT_THROW(transpile_model(c, {0, 3}, CouplingMap::belem(), &h.day(0),
                               noise_aware),
               PreconditionError);
  EXPECT_THROW(transpile_model(c, {-1}, CouplingMap::belem(), nullptr),
               PreconditionError);
}

TEST(PhysicalCircuit, CountsAndDepth) {
  PhysicalCircuit pc(2);
  pc.push({PhysOpKind::RZ, 0, -1, 0.3, -1, 1.0});
  pc.push({PhysOpKind::SX, 0, -1, 0.0, -1, 1.0});
  pc.push({PhysOpKind::X, 1, -1, 0.0, -1, 1.0});
  pc.push({PhysOpKind::CX, 0, 1, 0.0, -1, 1.0});
  EXPECT_EQ(pc.cx_count(), 1u);
  EXPECT_EQ(pc.pulse_count(), 2u);
  EXPECT_EQ(pc.rz_count(), 1u);
  EXPECT_EQ(pc.depth(), 2u);  // sx/x in parallel, then cx
  EXPECT_DOUBLE_EQ(pc.weighted_length(10.0), 12.0);
}

TEST(PhysOp, AffineInputResolution) {
  PhysOp op{PhysOpKind::RZ, 0, -1, 1.0, 2, 0.5};
  const std::vector<double> x{0.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(op.resolve_angle(x), 2.5);  // 0.5*3 + 1
  PhysOp literal{PhysOpKind::RZ, 0, -1, 0.7, -1, 1.0};
  EXPECT_DOUBLE_EQ(literal.resolve_angle({}), 0.7);
}

}  // namespace
}  // namespace qucad
