// The persistence layer's test battery: serializer primitive round-trips,
// seeded whole-artifact round-trip properties, disk save/load semantics,
// the corruption battery (every single-byte truncation and every
// single-byte mutation of a golden artifact must be rejected with a
// Status — never a crash, never a partial decode), byte-stability against
// the checked-in golden file (tests/golden/repo_v1.qcd: any layout drift
// without a format-version bump fails here), and the cold-start contract —
// a service rebuilt from a saved artifact serves bitwise-identical
// predictions, for all three execution-backend kinds.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/qucad.hpp"
#include "data/seismic_synth.hpp"
#include "io/artifacts.hpp"
#include "io/serializer.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/evaluator.hpp"
#include "qnn/trainer.hpp"
#include "serve/inference_service.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {
namespace {

// --- serializer primitives ----------------------------------------------

TEST(IoSerializer, PrimitivesRoundTripBitwise) {
  Serializer out;
  out.write_u8(0xAB);
  out.write_u32(0xDEADBEEF);
  out.write_u64(std::numeric_limits<std::uint64_t>::max());
  out.write_i32(-123456);
  out.write_f64(-0.0);
  out.write_f64(std::numeric_limits<double>::quiet_NaN());
  out.write_bool(true);
  out.write_string(std::string("hi\0there", 8));  // embedded NUL survives
  out.write_f64_vector({1.5, -2.25, 1e-300});
  out.write_u8_vector({0, 1, 1, 0});
  out.write_optional_u64(std::nullopt);
  out.write_optional_u64(42);

  Deserializer in(out.bytes());
  std::uint8_t u8 = 0;
  ASSERT_TRUE(in.read_u8(u8).ok());
  EXPECT_EQ(u8, 0xAB);
  std::uint32_t u32 = 0;
  ASSERT_TRUE(in.read_u32(u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEF);
  std::uint64_t u64 = 0;
  ASSERT_TRUE(in.read_u64(u64).ok());
  EXPECT_EQ(u64, std::numeric_limits<std::uint64_t>::max());
  std::int32_t i32 = 0;
  ASSERT_TRUE(in.read_i32(i32).ok());
  EXPECT_EQ(i32, -123456);
  double d = 1.0;
  ASSERT_TRUE(in.read_f64(d).ok());
  EXPECT_EQ(d, 0.0);
  EXPECT_TRUE(std::signbit(d));  // -0.0 round-trips bitwise
  ASSERT_TRUE(in.read_f64(d).ok());
  EXPECT_TRUE(std::isnan(d));
  bool b = false;
  ASSERT_TRUE(in.read_bool(b).ok());
  EXPECT_TRUE(b);
  std::string s;
  ASSERT_TRUE(in.read_string(s).ok());
  EXPECT_EQ(s, std::string("hi\0there", 8));
  std::vector<double> ds;
  ASSERT_TRUE(in.read_f64_vector(ds).ok());
  EXPECT_EQ(ds, (std::vector<double>{1.5, -2.25, 1e-300}));
  std::vector<std::uint8_t> u8s;
  ASSERT_TRUE(in.read_u8_vector(u8s).ok());
  EXPECT_EQ(u8s, (std::vector<std::uint8_t>{0, 1, 1, 0}));
  std::optional<std::uint64_t> opt;
  ASSERT_TRUE(in.read_optional_u64(opt).ok());
  EXPECT_FALSE(opt.has_value());
  ASSERT_TRUE(in.read_optional_u64(opt).ok());
  EXPECT_EQ(opt, std::optional<std::uint64_t>(42));
  EXPECT_TRUE(in.exhausted());
}

TEST(IoSerializer, IntegersAreLittleEndianOnDisk) {
  Serializer out;
  out.write_u32(0x01020304);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.bytes()[0], 0x04);
  EXPECT_EQ(out.bytes()[1], 0x03);
  EXPECT_EQ(out.bytes()[2], 0x02);
  EXPECT_EQ(out.bytes()[3], 0x01);
}

TEST(IoSerializer, ReadsRejectTruncationWithDataLoss) {
  const std::vector<std::uint8_t> empty;
  Deserializer in{std::span<const std::uint8_t>(empty)};
  std::uint64_t u64 = 0;
  EXPECT_EQ(in.read_u64(u64).code(), StatusCode::kDataLoss);
  double d = 0.0;
  EXPECT_EQ(in.read_f64(d).code(), StatusCode::kDataLoss);
  std::string s;
  EXPECT_EQ(in.read_string(s).code(), StatusCode::kDataLoss);
}

TEST(IoSerializer, CorruptCountCannotForceGiantAllocation) {
  // A u64 element count of 2^60 followed by 3 bytes: the reader must bound
  // the count by the remaining bytes and fail, not reserve 2^60 doubles.
  Serializer out;
  out.write_u64(std::uint64_t{1} << 60);
  out.write_u8(1);
  out.write_u8(2);
  out.write_u8(3);
  Deserializer in(out.bytes());
  std::vector<double> ds;
  EXPECT_EQ(in.read_f64_vector(ds).code(), StatusCode::kDataLoss);
  EXPECT_TRUE(ds.empty());
}

TEST(IoSerializer, BoolRejectsNonBinaryEncoding) {
  Serializer out;
  out.write_u8(2);
  Deserializer in(out.bytes());
  bool b = false;
  EXPECT_EQ(in.read_bool(b).code(), StatusCode::kDataLoss);
}

TEST(IoSerializer, Crc32MatchesTheStandardCheckValue) {
  // The canonical CRC-32 check string: crc32("123456789") = 0xCBF43926.
  const std::string check = "123456789";
  const std::uint32_t crc = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(check.data()), check.size()));
  EXPECT_EQ(crc, 0xCBF43926u);
}

// --- artifact fixtures ---------------------------------------------------

/// A handcrafted belem-shaped calibration with exact-literal values, so the
/// golden bytes are identical on any IEEE-754 platform (no libm synthesis).
Calibration literal_calibration(double scale) {
  Calibration c(5, {{0, 1}, {1, 2}, {1, 3}, {3, 4}});
  for (int q = 0; q < 5; ++q) {
    c.set_sx_error(q, 0.00025 * scale + 0.0000625 * q);
    c.set_readout(q, ReadoutError{0.015625 * scale + 0.001953125 * q,
                                  0.0234375 * scale});
    c.set_t1_t2(q, 128.0 + 4.0 * q, 96.0 + 2.0 * q);
  }
  int e = 0;
  for (const auto& [a, b] : c.edges()) {
    c.set_cx_error(a, b, 0.0078125 * scale + 0.001953125 * e++);
  }
  return c;
}

/// The deterministic artifact behind tests/golden/repo_v1.qcd: exact-
/// literal values only. Changing what this builds (or how it encodes)
/// REQUIRES regenerating the golden file AND bumping kArtifactFormatVersion
/// — that is the byte-stability contract under test.
Artifacts golden_artifacts() {
  Artifacts artifacts;
  const Calibration day0 = literal_calibration(1.0);
  const std::size_t dims = day0.feature_vector().size();
  artifacts.repository.set_weights(std::vector<double>(dims, 0.5));
  for (int i = 0; i < 3; ++i) {
    RepoEntry entry;
    entry.centroid = literal_calibration(1.0 + 0.25 * i).feature_vector();
    entry.theta = {0.125, -0.25, 0.5, -1.0, 2.0, -4.0, 0.0625, -0.03125};
    entry.frozen = {1, 0, 1, 0, 0, 1, 0, 1};
    entry.mean_cluster_accuracy = 0.5 + 0.125 * i;
    entry.valid = i != 1;  // one Guidance-2 invalid entry in the golden set
    entry.tag = "golden-" + std::to_string(i);
    entry.uses = 7 * i;
    artifacts.repository.add(std::move(entry));
  }
  artifacts.repository.set_threshold(0.375);
  artifacts.calibration_history = {literal_calibration(1.0),
                                   literal_calibration(1.5)};
  artifacts.config = ServiceConfig()
                         .with_num_shards(2)
                         .with_queue_capacity(64)
                         .with_result_cache(32)
                         .with_backend(BackendConfig()
                                           .with_kind(BackendKind::kSampled)
                                           .with_shots(512)
                                           .with_seed(99));
  return artifacts;
}

/// Seeded pseudo-random artifact for the round-trip property tests; all
/// values land inside the domain setters' legal ranges.
Artifacts random_artifacts(Rng& rng) {
  Artifacts artifacts;
  const int num_qubits = 2 + static_cast<int>(rng.uniform(0.0, 3.0));
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < num_qubits; ++q) edges.emplace_back(q, q + 1);
  auto random_calibration = [&] {
    Calibration c(num_qubits, edges);
    for (int q = 0; q < num_qubits; ++q) {
      c.set_sx_error(q, rng.uniform(1e-5, 0.02));
      c.set_readout(q, ReadoutError{rng.uniform(1e-4, 0.3),
                                    rng.uniform(1e-4, 0.3)});
      const double t1 = rng.uniform(30.0, 200.0);
      c.set_t1_t2(q, t1, rng.uniform(10.0, 2.0 * t1));
    }
    for (const auto& [a, b] : edges) {
      c.set_cx_error(a, b, rng.uniform(1e-4, 0.2));
    }
    return c;
  };

  const std::size_t dims = random_calibration().feature_vector().size();
  std::vector<double> weights(dims);
  for (double& w : weights) w = rng.uniform(0.1, 2.0);
  artifacts.repository.set_weights(std::move(weights));
  const int entries = static_cast<int>(rng.uniform(0.0, 4.0));
  for (int i = 0; i < entries; ++i) {
    RepoEntry entry;
    entry.centroid = random_calibration().feature_vector();
    entry.theta.resize(4 + static_cast<std::size_t>(rng.uniform(0.0, 8.0)));
    for (double& t : entry.theta) t = rng.normal(0.0, 2.0);
    entry.frozen.resize(entry.theta.size());
    for (auto& f : entry.frozen) f = rng.bernoulli(0.5) ? 1 : 0;
    entry.mean_cluster_accuracy = rng.uniform(0.0, 1.0);
    entry.valid = rng.bernoulli(0.7);
    entry.tag = "rand-" + std::to_string(i);
    entry.uses = static_cast<int>(rng.uniform(0.0, 50.0));
    artifacts.repository.add(std::move(entry));
  }
  artifacts.repository.set_threshold(rng.uniform(0.0, 5.0));

  const int days = 1 + static_cast<int>(rng.uniform(0.0, 3.0));
  for (int d = 0; d < days; ++d) {
    artifacts.calibration_history.push_back(random_calibration());
  }

  artifacts.config.num_shards = 1 + static_cast<std::size_t>(rng.uniform(0.0, 4.0));
  artifacts.config.queue_capacity =
      8 + static_cast<std::size_t>(rng.uniform(0.0, 100.0));
  artifacts.config.eval.shot_seed = static_cast<std::uint64_t>(
      rng.uniform(0.0, 1e6));
  artifacts.config.manager.bootstrap_scale = rng.uniform(0.5, 2.0);
  if (rng.bernoulli(0.5)) {
    artifacts.config.eval.backend = BackendConfig()
                                        .with_kind(BackendKind::kSampled)
                                        .with_shots(128)
                                        .with_seed(static_cast<std::uint64_t>(
                                            rng.uniform(0.0, 1e6)));
  }
  return artifacts;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// --- whole-artifact round trips ------------------------------------------

TEST(IoArtifacts, SeededRoundTripsAreBitwiseStable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    const Artifacts artifacts = random_artifacts(rng);
    const std::vector<std::uint8_t> bytes = serialize_artifacts(artifacts);
    const StatusOr<Artifacts> decoded = deserialize_artifacts(bytes);
    ASSERT_TRUE(decoded.ok()) << "seed " << seed << ": "
                              << decoded.status().to_string();
    // Bitwise fixed point: re-encoding the decoded artifact reproduces the
    // exact bytes, which covers every field without a per-field comparator.
    EXPECT_EQ(serialize_artifacts(*decoded), bytes) << "seed " << seed;
    EXPECT_EQ(decoded->repository.size(), artifacts.repository.size());
    EXPECT_EQ(decoded->calibration_history.size(),
              artifacts.calibration_history.size());
  }
}

TEST(IoArtifacts, EmptyRepositoryRoundTrips) {
  Artifacts artifacts;
  artifacts.calibration_history = {literal_calibration(1.0)};
  const std::vector<std::uint8_t> bytes = serialize_artifacts(artifacts);
  const StatusOr<Artifacts> decoded = deserialize_artifacts(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->repository.size(), 0u);
  EXPECT_EQ(serialize_artifacts(*decoded), bytes);
}

TEST(IoArtifacts, InvalidEntriesAndFlagsSurviveTheRoundTrip) {
  const Artifacts artifacts = golden_artifacts();
  const StatusOr<Artifacts> decoded =
      deserialize_artifacts(serialize_artifacts(artifacts));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->repository.size(), 3u);
  EXPECT_TRUE(decoded->repository.entry(0).valid);
  EXPECT_FALSE(decoded->repository.entry(1).valid);  // Guidance-2 flag kept
  EXPECT_TRUE(decoded->repository.entry(2).valid);
  EXPECT_EQ(decoded->repository.entry(2).tag, "golden-2");
  EXPECT_EQ(decoded->repository.entry(2).uses, 14);
  EXPECT_EQ(decoded->repository.entry(1).frozen,
            (std::vector<std::uint8_t>{1, 0, 1, 0, 0, 1, 0, 1}));
  EXPECT_EQ(decoded->config.eval.backend.kind, BackendKind::kSampled);
  EXPECT_EQ(decoded->config.eval.backend.seed,
            std::optional<std::uint64_t>(99));
}

TEST(IoArtifacts, SaveLoadRoundTripsThroughDisk) {
  const Artifacts artifacts = golden_artifacts();
  const std::string path = temp_path("roundtrip.qcd");
  ASSERT_TRUE(save_artifacts(artifacts, path).ok());
  // Atomic save: the temporary is renamed away, never left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  const StatusOr<Artifacts> loaded = load_artifacts(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(serialize_artifacts(*loaded), serialize_artifacts(artifacts));
  std::remove(path.c_str());
}

TEST(IoArtifacts, MissingFileIsNotFound) {
  EXPECT_EQ(load_artifacts(temp_path("does_not_exist.qcd")).status().code(),
            StatusCode::kNotFound);
}

// --- structural rejection ------------------------------------------------

TEST(IoArtifacts, BadMagicRejected) {
  std::vector<std::uint8_t> bytes = serialize_artifacts(golden_artifacts());
  bytes[0] = 'X';
  EXPECT_EQ(deserialize_artifacts(bytes).status().code(),
            StatusCode::kDataLoss);
}

TEST(IoArtifacts, VersionSkewRejectedAsFailedPrecondition) {
  std::vector<std::uint8_t> bytes = serialize_artifacts(golden_artifacts());
  bytes[4] = static_cast<std::uint8_t>(kArtifactFormatVersion + 1);
  const StatusOr<Artifacts> result = deserialize_artifacts(bytes);
  ASSERT_FALSE(result.ok());
  // Version skew is a precondition problem (wrong reader for intact bytes),
  // distinct from corruption.
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IoArtifacts, TrailingBytesRejected) {
  std::vector<std::uint8_t> bytes = serialize_artifacts(golden_artifacts());
  bytes.push_back(0);
  EXPECT_EQ(deserialize_artifacts(bytes).status().code(),
            StatusCode::kDataLoss);
}

TEST(IoArtifacts, MissingSectionRejected) {
  // Rebuild the container with only the first two sections (patching the
  // section count): structurally valid, semantically incomplete.
  const std::vector<std::uint8_t> bytes =
      serialize_artifacts(golden_artifacts());
  Deserializer in(bytes);
  std::span<const std::uint8_t> skip;
  ASSERT_TRUE(in.read_span(12, skip).ok());  // magic + version + count
  std::size_t section_end = in.offset();
  for (int s = 0; s < 2; ++s) {
    std::uint32_t id = 0;
    std::uint64_t length = 0;
    std::uint32_t crc = 0;
    ASSERT_TRUE(in.read_u32(id).ok());
    ASSERT_TRUE(in.read_u64(length).ok());
    ASSERT_TRUE(in.read_u32(crc).ok());
    ASSERT_TRUE(in.read_span(static_cast<std::size_t>(length), skip).ok());
    section_end = in.offset();
  }
  std::vector<std::uint8_t> two_sections(bytes.begin(),
                                         bytes.begin() + section_end);
  two_sections[8] = 2;  // section count u32 LE: 3 -> 2
  const StatusOr<Artifacts> result = deserialize_artifacts(two_sections);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

// Pinned fuzzer find (fuzz_artifact_container, fuzz/corpus/
// artifact_container/huge_qubit_count_repro): a CRC-valid container whose
// calibration-history section claims a day with INT32_MAX qubits behind a
// 20-byte payload. The qubit count must fail the payload-size bound and
// come back as kDataLoss before the Calibration constructor can turn it
// into a multi-gigabyte allocation (whose bad_alloc would escape the
// deserializer's no-throw contract).
TEST(IoArtifacts, HugeQubitCountInHistorySectionRejectedWithoutAllocating) {
  Serializer day;
  day.write_u64(1);  // day count
  day.write_i32(std::numeric_limits<std::int32_t>::max());  // num_qubits
  day.write_u64(0);  // edge count
  const std::vector<std::uint8_t>& payload = day.bytes();

  Serializer file;
  file.write_raw(std::span<const std::uint8_t>(kArtifactMagic,
                                               sizeof(kArtifactMagic)));
  file.write_u32(kArtifactFormatVersion);
  file.write_u32(1);  // section count
  file.write_u32(kSectionCalibrationHistory);
  file.write_u64(payload.size());
  file.write_u32(crc32(payload));
  file.write_raw(payload);

  const StatusOr<Artifacts> result = deserialize_artifacts(file.bytes());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

TEST(IoArtifacts, SemanticallyInvalidValuesRejectedNotThrown) {
  // A CRC-valid artifact whose calibration carries an illegal error rate:
  // re-encode a golden calibration day with sx pushed out of [0,1). The
  // domain setter would throw; the deserializer must convert to kDataLoss.
  Artifacts artifacts = golden_artifacts();
  const std::vector<std::uint8_t> good = serialize_artifacts(artifacts);
  // Locate the first calibration sx_error f64 and overwrite it with 2.0,
  // then fix up that section's CRC so only semantic validation can object.
  Deserializer in(good);
  std::span<const std::uint8_t> skip;
  ASSERT_TRUE(in.read_span(12, skip).ok());
  std::vector<std::uint8_t> bytes = good;
  for (int s = 0; s < 3; ++s) {
    std::uint32_t id = 0;
    std::uint64_t length = 0;
    std::uint32_t crc = 0;
    ASSERT_TRUE(in.read_u32(id).ok());
    ASSERT_TRUE(in.read_u64(length).ok());
    const std::size_t crc_offset = in.offset();
    ASSERT_TRUE(in.read_u32(crc).ok());
    const std::size_t payload_offset = in.offset();
    ASSERT_TRUE(in.read_span(static_cast<std::size_t>(length), skip).ok());
    if (id != kSectionCalibrationHistory) continue;
    // Payload: u64 day count, then day 0 = i32 nq, u64 edge count,
    // 4 edges x 2 i32, then nq f64 sx errors — first sx at +8+4+8+32.
    const std::size_t sx_offset = payload_offset + 8 + 4 + 8 + 32;
    Serializer patch;
    patch.write_f64(2.0);  // illegal: sx error must be in [0,1)
    for (std::size_t i = 0; i < 8; ++i) {
      bytes[sx_offset + i] = patch.bytes()[i];
    }
    const std::span<const std::uint8_t> payload(bytes.data() + payload_offset,
                                                static_cast<std::size_t>(length));
    Serializer fixed_crc;
    fixed_crc.write_u32(crc32(payload));
    for (std::size_t i = 0; i < 4; ++i) {
      bytes[crc_offset + i] = fixed_crc.bytes()[i];
    }
  }
  ASSERT_NE(bytes, good);
  const StatusOr<Artifacts> result = deserialize_artifacts(bytes);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
}

// --- corruption battery --------------------------------------------------

TEST(IoCorruption, EverySingleByteTruncationRejected) {
  const std::vector<std::uint8_t> golden =
      serialize_artifacts(golden_artifacts());
  for (std::size_t keep = 0; keep < golden.size(); ++keep) {
    const std::span<const std::uint8_t> truncated(golden.data(), keep);
    const StatusOr<Artifacts> result = deserialize_artifacts(truncated);
    EXPECT_FALSE(result.ok()) << "decoded a " << keep << "-byte prefix of a "
                              << golden.size() << "-byte artifact";
  }
}

TEST(IoCorruption, EverySingleByteMutationRejected) {
  // Single-byte payload damage is exactly what CRC-32 guarantees to catch;
  // header/length/CRC damage must fail structurally. Sweep every byte.
  const std::vector<std::uint8_t> golden =
      serialize_artifacts(golden_artifacts());
  std::vector<std::uint8_t> mutated = golden;
  for (std::size_t i = 0; i < golden.size(); ++i) {
    mutated[i] = golden[i] ^ 0x5A;
    const StatusOr<Artifacts> result = deserialize_artifacts(mutated);
    EXPECT_FALSE(result.ok())
        << "decoded with byte " << i << " flipped to 0x" << std::hex
        << static_cast<int>(mutated[i]);
    mutated[i] = golden[i];
  }
}

TEST(IoCorruption, GarbageBuffersRejected) {
  Rng rng(404);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::uint8_t> garbage(
        static_cast<std::size_t>(rng.uniform(0.0, 256.0)));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
    }
    EXPECT_FALSE(deserialize_artifacts(garbage).ok());
  }
}

// --- golden byte stability ----------------------------------------------

std::string golden_path() {
  return std::string(QUCAD_GOLDEN_DIR) + "/repo_v1.qcd";
}

TEST(IoGolden, SerializationIsByteStableAgainstTheCheckedInArtifact) {
  const std::vector<std::uint8_t> bytes =
      serialize_artifacts(golden_artifacts());
  if (std::getenv("QUCAD_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream os(golden_path(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os.good()) << "cannot write " << golden_path();
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(os.good());
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  std::ifstream is(golden_path(), std::ios::binary);
  ASSERT_TRUE(is.good())
      << "missing golden artifact " << golden_path()
      << " (run with QUCAD_REGENERATE_GOLDEN=1 to create it)";
  const std::vector<std::uint8_t> checked_in(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  ASSERT_EQ(bytes.size(), checked_in.size())
      << "artifact byte layout changed; if intentional, bump "
         "kArtifactFormatVersion and regenerate tests/golden/repo_v1.qcd";
  EXPECT_EQ(bytes, checked_in)
      << "artifact byte layout changed; if intentional, bump "
         "kArtifactFormatVersion and regenerate tests/golden/repo_v1.qcd";
}

TEST(IoGolden, CheckedInArtifactLoads) {
  if (!std::ifstream(golden_path()).good()) {
    GTEST_SKIP() << "golden artifact not generated yet";
  }
  const StatusOr<Artifacts> loaded = load_artifacts(golden_path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded->repository.size(), 3u);
  EXPECT_EQ(loaded->repository.threshold(), 0.375);
  EXPECT_EQ(loaded->calibration_history.size(), 2u);
}

// --- cold start ----------------------------------------------------------

/// Small trained environment with readout slots {1, 3}: the positional
/// readout contract (logit k = slot k, not qubit k) must survive the
/// save/load/cold-start cycle.
struct IoFixture {
  Environment env;
  CalibrationHistory history{FluctuationScenario::belem(), 60, 77};

  IoFixture() {
    Dataset raw = make_seismic(96, 5);
    const FeatureScaler scaler = FeatureScaler::fit(raw);
    env.train = scaler.transform(raw);
    env.test = scaler.transform(make_seismic(32, 9));
    env.model = build_paper_model(4, 4, 2, 1);
    env.model.readout_qubits = {1, 3};
    env.theta_pretrained = init_params(env.model, 7);
    TrainConfig config;
    config.epochs = 4;
    train_model(env.model, env.theta_pretrained, env.train, config);
    env.transpiled = transpile_model(env.model.circuit,
                                     env.model.readout_qubits,
                                     CouplingMap::belem(), &history.day(0));
    env.manager_options.admm.iterations = 2;
    env.manager_options.admm.epochs_per_iteration = 1;
    env.manager_options.admm.finetune_epochs = 0;
    env.admm = env.manager_options.admm;
  }

  ModelRepository small_repository() const {
    ModelRepository repo;
    repo.set_weights(
        std::vector<double>(history.day(0).feature_vector().size(), 1.0));
    for (int i = 0; i < 2; ++i) {
      RepoEntry entry;
      entry.centroid = history.day(10 + 20 * i).feature_vector();
      entry.theta = env.theta_pretrained;
      entry.theta[static_cast<std::size_t>(i)] += 0.1 * (i + 1);
      entry.tag = "io-" + std::to_string(i);
      repo.add(std::move(entry));
    }
    repo.set_threshold(1e9);
    return repo;
  }
};

TEST(IoColdStart, BitwiseIdenticalPredictionsAcrossAllBackendKinds) {
  const IoFixture fixture;
  const struct {
    const char* label;
    BackendConfig backend;
  } kinds[] = {
      {"density_noisy", BackendConfig{}},
      {"pure_statevector",
       BackendConfig().with_kind(BackendKind::kPureStatevector)},
      {"sampled", BackendConfig()
                      .with_kind(BackendKind::kSampled)
                      .with_shots(256)
                      .with_seed(11)},
  };
  for (const auto& kind : kinds) {
    SCOPED_TRACE(kind.label);
    Artifacts artifacts;
    artifacts.repository = fixture.small_repository();
    artifacts.calibration_history = fixture.history.slice(0, 3);
    artifacts.config = ServiceConfig::from_environment(fixture.env)
                           .with_backend(kind.backend);

    // The in-memory service the artifacts describe...
    StatusOr<InferenceService> live = InferenceService::create(
        fixture.env, artifacts.repository,
        artifacts.calibration_history.back(), artifacts.config);
    ASSERT_TRUE(live.ok()) << live.status().to_string();

    // ...and a service cold-started from the round-tripped file.
    const std::string path =
        temp_path(std::string("cold_start_") + kind.label + ".qcd");
    ASSERT_TRUE(save_artifacts(artifacts, path).ok());
    const StatusOr<Artifacts> loaded = load_artifacts(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
    StatusOr<InferenceService> cold =
        cold_start_service(fixture.env, *loaded);
    ASSERT_TRUE(cold.ok()) << cold.status().to_string();
    std::remove(path.c_str());

    // Same batch through both: one sweep each, so the sampled backend's
    // batch-layout-derived RNG streams line up and even finite-shot logits
    // must agree bitwise.
    const std::span<const std::vector<double>> batch(
        fixture.env.test.features.data(),
        std::min<std::size_t>(fixture.env.test.features.size(), 12));
    const auto live_predictions = live->submit_batch(batch);
    const auto cold_predictions = cold->submit_batch(batch);
    ASSERT_TRUE(live_predictions.ok()) << live_predictions.status().to_string();
    ASSERT_TRUE(cold_predictions.ok()) << cold_predictions.status().to_string();
    ASSERT_EQ(live_predictions->size(), cold_predictions->size());
    for (std::size_t i = 0; i < live_predictions->size(); ++i) {
      const Prediction& a = (*live_predictions)[i];
      const Prediction& b = (*cold_predictions)[i];
      EXPECT_EQ(a.label, b.label) << "sample " << i;
      EXPECT_EQ(a.backend, b.backend) << "sample " << i;
      ASSERT_EQ(a.logits.size(), b.logits.size());
      for (std::size_t k = 0; k < a.logits.size(); ++k) {
        // Bitwise, not approximate: persistence must not perturb a single
        // mantissa bit of the served logits.
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.logits[k]),
                  std::bit_cast<std::uint64_t>(b.logits[k]))
            << "sample " << i << " logit " << k;
      }
    }
  }
}

TEST(IoColdStart, EmptyCalibrationStreamRejected) {
  const IoFixture fixture;
  Artifacts artifacts;
  artifacts.repository = fixture.small_repository();
  const StatusOr<InferenceService> result =
      cold_start_service(fixture.env, artifacts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace qucad
