// Fleet simulator tests: seeded drift-stream reproducibility, FleetConfig
// text round-trips, the remote-stub backend's bitwise-transparency contract,
// and the fleet harness serving many heterogeneous devices from one
// repository.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "backend/registry.hpp"
#include "core/qucad.hpp"
#include "data/seismic_synth.hpp"
#include "fleet/device_spec.hpp"
#include "fleet/drift_stream.hpp"
#include "fleet/harness.hpp"
#include "fleet/remote_stub_backend.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "qnn/evaluator.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {
namespace {

using fleet::DeviceSpec;
using fleet::DriftStream;
using fleet::FleetConfig;
using fleet::FleetHarness;
using fleet::FleetOptions;
using fleet::kRemoteStubBackendKind;
using fleet::RemoteStubBackend;
using fleet::RemoteStubOptions;

void expect_calibration_identical(const Calibration& a, const Calibration& b,
                                  int day) {
  ASSERT_EQ(a.num_qubits(), b.num_qubits()) << "day " << day;
  ASSERT_EQ(a.edges(), b.edges()) << "day " << day;
  for (int q = 0; q < a.num_qubits(); ++q) {
    EXPECT_EQ(a.sx_error(q), b.sx_error(q)) << "day " << day << " sx q" << q;
    EXPECT_EQ(a.readout(q).p1_given_0, b.readout(q).p1_given_0)
        << "day " << day << " ro q" << q;
    EXPECT_EQ(a.readout(q).p0_given_1, b.readout(q).p0_given_1)
        << "day " << day << " ro q" << q;
    EXPECT_EQ(a.t1_us(q), b.t1_us(q)) << "day " << day << " t1 q" << q;
    EXPECT_EQ(a.t2_us(q), b.t2_us(q)) << "day " << day << " t2 q" << q;
  }
  for (const auto& [p, r] : a.edges()) {
    EXPECT_EQ(a.cx_error(p, r), b.cx_error(p, r))
        << "day " << day << " cx <" << p << "," << r << ">";
  }
}

bool calibration_differs(const Calibration& a, const Calibration& b) {
  for (int q = 0; q < a.num_qubits(); ++q) {
    if (a.sx_error(q) != b.sx_error(q)) return true;
    if (a.readout(q).p1_given_0 != b.readout(q).p1_given_0) return true;
    if (a.t1_us(q) != b.t1_us(q)) return true;
  }
  for (const auto& [p, r] : a.edges()) {
    if (a.cx_error(p, r) != b.cx_error(p, r)) return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// DriftStream

TEST(DriftStream, SameSpecReproducesBitwiseIdenticalDays) {
  DeviceSpec spec = DeviceSpec::belem("twin", 77);
  spec.error_scale = 1.2;
  spec.baseline_jitter = 0.2;
  spec.maintenance_rate = 0.3;
  spec.episode_shift = -5;

  const StatusOr<DriftStream> a = DriftStream::create(spec, 48);
  const StatusOr<DriftStream> b = DriftStream::create(spec, 48);
  ASSERT_TRUE(a.ok()) << a.status().to_string();
  ASSERT_TRUE(b.ok()) << b.status().to_string();
  ASSERT_EQ(a->history().days(), 48);
  ASSERT_EQ(b->history().days(), 48);
  EXPECT_EQ(a->maintenance_days(), b->maintenance_days());
  for (int d = 0; d < 48; ++d) {
    expect_calibration_identical(a->history().day(d), b->history().day(d), d);
  }
}

TEST(DriftStream, ZeroMaintenanceMatchesSharedGenerator) {
  // A vanilla belem spec (unit scales, no jitter, no maintenance) must
  // reproduce the paper benches' generator exactly: one calibration
  // synthesis code path.
  const DeviceSpec spec = DeviceSpec::belem();
  const StatusOr<DriftStream> stream = DriftStream::create(spec, 60);
  ASSERT_TRUE(stream.ok()) << stream.status().to_string();
  EXPECT_TRUE(stream->maintenance_days().empty());

  const std::vector<Calibration> reference =
      generate_fluctuation_days(FluctuationScenario::belem(), 60, 2021);
  ASSERT_EQ(stream->history().days(), static_cast<int>(reference.size()));
  for (int d = 0; d < 60; ++d) {
    expect_calibration_identical(stream->history().day(d),
                                 reference[static_cast<std::size_t>(d)], d);
  }
}

TEST(DriftStream, MaintenanceEventsStepTheCalibration) {
  DeviceSpec spec = DeviceSpec::belem("maint", 3);
  spec.maintenance_rate = 0.25;
  DeviceSpec quiet = spec;
  quiet.maintenance_rate = 0.0;

  const StatusOr<DriftStream> noisy = DriftStream::create(spec, 80);
  const StatusOr<DriftStream> base = DriftStream::create(quiet, 80);
  ASSERT_TRUE(noisy.ok()) << noisy.status().to_string();
  ASSERT_TRUE(base.ok()) << base.status().to_string();

  const std::vector<int>& events = noisy->maintenance_days();
  ASSERT_FALSE(events.empty()) << "rate 0.25 over 80 days fired no event";
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i], 0);
    EXPECT_LT(events[i], 80);
    if (i > 0) {
      EXPECT_GT(events[i], events[i - 1]);
    }
  }

  // Before the first event the stream is the pure OU sequence; from the
  // event on, the persistent step change must be visible.
  for (int d = 0; d < events.front(); ++d) {
    expect_calibration_identical(noisy->history().day(d),
                                 base->history().day(d), d);
  }
  EXPECT_TRUE(calibration_differs(noisy->history().day(events.front()),
                                  base->history().day(events.front())));
}

TEST(DriftStream, RejectsInvalidSpecsAndDayCounts) {
  const DeviceSpec good = DeviceSpec::belem();
  EXPECT_FALSE(DriftStream::create(good, 0).ok());
  EXPECT_FALSE(DriftStream::create(good, 5000).ok());

  DeviceSpec bad_topology = good;
  bad_topology.topology = "mars";
  EXPECT_FALSE(DriftStream::create(bad_topology, 10).ok());

  DeviceSpec bad_scale = good;
  bad_scale.error_scale = 0.0;
  EXPECT_FALSE(DriftStream::create(bad_scale, 10).ok());
}

// --------------------------------------------------------------------------
// FleetConfig text form

TEST(FleetConfig, HeterogeneousTextRoundTripIsExact) {
  const FleetConfig config = FleetConfig::heterogeneous(6, 99, 120);
  ASSERT_TRUE(config.validate().ok());
  const std::string text = config.to_text();

  const StatusOr<FleetConfig> parsed = FleetConfig::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->days, config.days);
  EXPECT_EQ(parsed->seed, config.seed);
  ASSERT_EQ(parsed->devices.size(), config.devices.size());
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    const DeviceSpec& want = config.devices[i];
    const DeviceSpec& got = parsed->devices[i];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.topology, want.topology);
    EXPECT_EQ(got.drift_seed, want.drift_seed);
    EXPECT_EQ(got.error_scale, want.error_scale);  // exact: %.17g round-trip
    EXPECT_EQ(got.t_scale, want.t_scale);
    EXPECT_EQ(got.ou_sigma_scale, want.ou_sigma_scale);
    EXPECT_EQ(got.baseline_jitter, want.baseline_jitter);
    EXPECT_EQ(got.episode_shift, want.episode_shift);
    EXPECT_EQ(got.maintenance_rate, want.maintenance_rate);
    EXPECT_EQ(got.maintenance_seed, want.maintenance_seed);
  }
  EXPECT_EQ(parsed->to_text(), text);
}

TEST(FleetConfig, ParseAcceptsCommentsAndWhitespace) {
  const StatusOr<FleetConfig> parsed = FleetConfig::parse(
      "# fleet scenario\n"
      "\n"
      "fleet days=30 seed=2\n"
      "  device name=a topology=belem seed=5  # trailing note\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->days, 30);
  EXPECT_EQ(parsed->seed, 2u);
  ASSERT_EQ(parsed->devices.size(), 1u);
  EXPECT_EQ(parsed->devices[0].name, "a");
  EXPECT_EQ(parsed->devices[0].drift_seed, 5u);
}

TEST(FleetConfig, ParseRejectsMalformedInput) {
  const char* bad[] = {
      "",                                              // no devices
      "fleet days=10 seed=1\n",                        // no devices
      "fleet days=10\nfleet days=11\n"
      "device name=a topology=belem\n",                // duplicate fleet line
      "fleet days=0\ndevice name=a topology=belem\n",  // days out of range
      "widget name=a\n",                               // unknown line head
      "device name=a name=b topology=belem\n",         // duplicate key
      "device name=a topology=belem error_scale=nope\n",
      "device name=a topology=belem error_scale=1e999\n",  // overflow
      "device name=a topology=belem error_scale=\n",       // empty value
      "device name=a topology=belem bogus=1\n",            // unknown key
      "device name=a topology=mars\n",                     // unknown topology
      "device name=a topology=belem\n"
      "device name=a topology=belem\n",                    // duplicate name
      "device name=a topology=belem maintenance_rate=1.5\n",
      "device name=a topology=belem seed\n",               // not key=value
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FleetConfig::parse(text).ok()) << "accepted: " << text;
  }

  // The size cap guards the fuzz/ingest surface.
  const std::string oversized((1u << 20) + 1, '#');
  EXPECT_FALSE(FleetConfig::parse(oversized).ok());
}

// --------------------------------------------------------------------------
// RemoteStubBackend

struct StubWorkload {
  QnnModel model;
  std::vector<double> theta;
  TranspiledModel transpiled;
  DriftStream stream;
  Dataset data;
};

StubWorkload make_stub_workload() {
  QnnModel model = build_paper_model(4, 4, 2, 1);
  std::vector<double> theta = init_params(model, 19);
  StatusOr<DriftStream> stream =
      DriftStream::create(DeviceSpec::belem("stub", 91), 40);
  EXPECT_TRUE(stream.ok()) << stream.status().to_string();
  TranspiledModel transpiled =
      transpile_model(model.circuit, model.readout_qubits, CouplingMap::belem(),
                      &stream->history().day(0));
  Dataset raw = make_seismic(24, 9);
  Dataset data = FeatureScaler::fit(raw).transform(raw);
  return StubWorkload{std::move(model), std::move(theta), std::move(transpiled),
                      *std::move(stream), std::move(data)};
}

BackendContext stub_context(const StubWorkload& w) {
  BackendContext context;
  context.model = &w.model;
  context.transpiled = &w.transpiled;
  context.theta = w.theta;
  context.calibration = &w.stream.history().day(17);
  return context;
}

TEST(RemoteStub, LogitsBitwiseEqualInnerBackend) {
  const StubWorkload w = make_stub_workload();
  const BackendContext context = stub_context(w);

  BackendRegistry registry;  // fresh built-ins, test-local stub kind
  RemoteStubOptions options;
  options.max_shots_per_job = 7;  // 20 shots -> 3 jobs per sample
  options.fault_rate = 0.3;       // faults must never perturb results
  ASSERT_TRUE(register_remote_stub_backend(registry, options).ok());

  BackendConfig stub_config;
  stub_config.kind = kRemoteStubBackendKind;
  stub_config.shots = 20;
  stub_config.seed = 11;
  BackendConfig inner_config = stub_config;
  inner_config.kind = BackendKind::kSampled;

  const auto stub = registry.make(stub_config, context);
  const auto inner = registry.make(inner_config, context);
  ASSERT_TRUE(stub.ok()) << stub.status().to_string();
  ASSERT_TRUE(inner.ok()) << inner.status().to_string();

  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*stub)->run_logits(w.data.features[i]),
              (*inner)->run_logits(w.data.features[i]))
        << "sample " << i;
  }
  EXPECT_EQ((*stub)->run_logits_batch(w.data.features),
            (*inner)->run_logits_batch(w.data.features));

  const auto* typed = dynamic_cast<const RemoteStubBackend*>(stub->get());
  ASSERT_NE(typed, nullptr);
  const RemoteStubBackend::Stats stats = typed->stats();
  EXPECT_EQ(stats.submissions, 6u);  // 5 singles + 1 batch
  EXPECT_EQ(stats.jobs, (5u + w.data.features.size()) * 3u);
  EXPECT_EQ(stats.wait_seconds, 0.0);  // latency knobs left at zero

  // Fault accounting is a pure function of the options and the job count: a
  // second stub fed the same sequence reports identical stats.
  const auto twin = registry.make(stub_config, context);
  ASSERT_TRUE(twin.ok());
  for (std::size_t i = 0; i < 5; ++i) {
    (void)(*twin)->run_logits(w.data.features[i]);
  }
  (void)(*twin)->run_logits_batch(w.data.features);
  const auto* twin_typed = dynamic_cast<const RemoteStubBackend*>(twin->get());
  ASSERT_NE(twin_typed, nullptr);
  EXPECT_EQ(twin_typed->stats().faults, stats.faults);
  EXPECT_EQ(twin_typed->stats().jobs, stats.jobs);
}

TEST(RemoteStub, ConcurrentSubmissionsMatchSerialAccounting) {
  const StubWorkload w = make_stub_workload();
  const BackendContext context = stub_context(w);

  BackendRegistry registry;
  RemoteStubOptions options;
  options.max_shots_per_job = 5;  // 20 shots -> 4 jobs per sample
  options.fault_rate = 0.4;
  ASSERT_TRUE(register_remote_stub_backend(registry, options).ok());

  BackendConfig config;
  config.kind = kRemoteStubBackendKind;
  config.shots = 20;
  config.seed = 3;
  const auto concurrent = registry.make(config, context);
  const auto serial = registry.make(config, context);
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().to_string();
  ASSERT_TRUE(serial.ok());

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, &w, t] {
      for (int c = 0; c < kCallsPerThread; ++c) {
        (void)(*concurrent)
            ->run_logits(w.data.features[static_cast<std::size_t>(
                (t * kCallsPerThread + c) % 24)]);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int c = 0; c < kThreads * kCallsPerThread; ++c) {
    (void)(*serial)->run_logits(
        w.data.features[static_cast<std::size_t>(c % 24)]);
  }

  const auto* a = dynamic_cast<const RemoteStubBackend*>(concurrent->get());
  const auto* b = dynamic_cast<const RemoteStubBackend*>(serial->get());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->stats().submissions,
            static_cast<std::uint64_t>(kThreads * kCallsPerThread));
  EXPECT_EQ(a->stats().jobs, a->stats().submissions * 4u);
  // Job ids are handed out atomically and each job's fault stream is seeded
  // by its id, so the total is submission-order independent.
  EXPECT_EQ(a->stats().faults, b->stats().faults);
  EXPECT_EQ(a->stats().jobs, b->stats().jobs);
}

TEST(RemoteStub, SelectableThroughGlobalRegistryByConfig) {
  const StubWorkload w = make_stub_workload();
  const Calibration& calib = w.stream.history().day(17);

  RemoteStubOptions options;
  options.max_shots_per_job = 13;
  options.fault_rate = 0.2;
  ASSERT_TRUE(
      register_remote_stub_backend(BackendRegistry::global(), options).ok());

  NoisyEvalOptions via_stub;
  via_stub.backend =
      BackendConfig{}.with_kind(kRemoteStubBackendKind).with_shots(48).with_seed(
          9);
  NoisyEvalOptions via_sampled;
  via_sampled.backend =
      BackendConfig{}.with_kind(BackendKind::kSampled).with_shots(48).with_seed(
          9);

  const StatusOr<NoisyEvalResult> stubbed = noisy_evaluate_or(
      w.model, w.transpiled, w.theta, w.data, calib, via_stub);
  const StatusOr<NoisyEvalResult> sampled = noisy_evaluate_or(
      w.model, w.transpiled, w.theta, w.data, calib, via_sampled);
  ASSERT_TRUE(stubbed.ok()) << stubbed.status().to_string();
  ASSERT_TRUE(sampled.ok()) << sampled.status().to_string();
  EXPECT_EQ(stubbed->predictions, sampled->predictions);
  EXPECT_DOUBLE_EQ(stubbed->accuracy, sampled->accuracy);
}

TEST(RemoteStub, RegistrationRejectsBadOptions) {
  BackendRegistry registry;
  RemoteStubOptions self_wrap;
  self_wrap.inner_kind = kRemoteStubBackendKind;
  EXPECT_FALSE(register_remote_stub_backend(registry, self_wrap).ok());

  RemoteStubOptions certain_fault;
  certain_fault.fault_rate = 1.0;
  EXPECT_FALSE(register_remote_stub_backend(registry, certain_fault).ok());

  RemoteStubOptions negative_wait;
  negative_wait.queue_latency_seconds = -1.0;
  EXPECT_FALSE(register_remote_stub_backend(registry, negative_wait).ok());
}

// --------------------------------------------------------------------------
// Positional readout through the fleet path

TEST(Fleet, PositionalReadoutSurvivesStubAndScatteredLayout) {
  // Regression guard on the fleet additions: with readout_qubits = {1, 3}
  // and a layout that scatters logical onto physical ids, the remote stub's
  // evaluation must match the direct density path bitwise — a positional
  // indexing slip on either side would diverge (or read out of bounds).
  QnnModel model;
  model.circuit = angle_encoder(4, 4);
  model.circuit.append(build_paper_ansatz(4, 1));
  model.num_classes = 2;
  model.readout_qubits = {1, 3};
  const std::vector<double> theta = init_params(model, 31);

  const StatusOr<DriftStream> stream =
      DriftStream::create(DeviceSpec::belem("ro", 91), 40);
  ASSERT_TRUE(stream.ok()) << stream.status().to_string();
  const Calibration& calib = stream->history().day(23);

  TranspiledModel routed;
  routed.routed =
      route_circuit(model.circuit, CouplingMap::belem(), Layout{4, 2, 0, 1});
  routed.readout_logical = model.readout_qubits;
  ASSERT_TRUE(routed.readout_physical(1) != 1 || routed.readout_physical(3) != 3)
      << "layout failed to separate logical from physical ids";

  Dataset raw = make_seismic(32, 9);
  const Dataset data = FeatureScaler::fit(raw).transform(raw);

  RemoteStubOptions options;
  options.inner_kind = BackendKind::kDensityNoisy;
  const BackendKind density_stub_kind = static_cast<BackendKind>(17);
  ASSERT_TRUE(register_remote_stub_backend(BackendRegistry::global(), options,
                                           density_stub_kind)
                  .ok());

  NoisyEvalOptions via_stub;
  via_stub.backend.kind = density_stub_kind;
  via_stub.backend.shots = 0;
  const StatusOr<NoisyEvalResult> stubbed =
      noisy_evaluate_or(model, routed, theta, data, calib, via_stub);
  const StatusOr<NoisyEvalResult> direct =
      noisy_evaluate_or(model, routed, theta, data, calib, {});
  ASSERT_TRUE(stubbed.ok()) << stubbed.status().to_string();
  ASSERT_TRUE(direct.ok()) << direct.status().to_string();
  EXPECT_EQ(stubbed->predictions, direct->predictions);
  EXPECT_DOUBLE_EQ(stubbed->accuracy, direct->accuracy);
}

// --------------------------------------------------------------------------
// FleetHarness

PipelineConfig fleet_test_config() {
  // Small data and one-shot compression: the fleet tests assert plumbing and
  // accounting, not paper-quality accuracy.
  PipelineConfig config;
  config.pretrain.epochs = 4;
  config.max_train_samples = 64;
  config.max_test_samples = 24;
  config.profile_samples = 12;
  config.admm.iterations = 1;
  config.admm.epochs_per_iteration = 1;
  config.admm.finetune_epochs = 2;
  config.admm.validation_samples = 16;
  config.nat.epochs = 1;
  config.constructor_options.admm = config.admm;
  config.constructor_options.kmeans.k = 2;
  config.constructor_options.profile_samples = 12;
  config.manager_options.admm = config.admm;
  return config;
}

const Environment& fleet_env() {
  static const Environment env = prepare_environment(
      make_seismic(240, 11), CouplingMap::belem(),
      CalibrationHistory(FluctuationScenario::belem(), 1, 2021).day(0),
      fleet_test_config());
  return env;
}

TEST(Fleet, ServesSixteenHeterogeneousDevicesFromOneRepository) {
  const FleetConfig config = FleetConfig::heterogeneous(16, 5, 8);
  FleetOptions options;
  options.offline_days = 4;
  options.online_days = 2;
  options.offline_stride = 2;
  options.max_eval_samples = 16;

  StatusOr<FleetHarness> harness =
      FleetHarness::create(fleet_env(), config, options);
  ASSERT_TRUE(harness.ok()) << harness.status().to_string();
  ASSERT_EQ(harness->streams().size(), 16u);

  // Independent seeded drift: the devices must not be clones of each other.
  EXPECT_TRUE(calibration_differs(harness->streams()[0].history().day(0),
                                  harness->streams()[1].history().day(0)));

  const StatusOr<fleet::FleetResult> result = harness->run();
  ASSERT_TRUE(result.ok()) << result.status().to_string();

  ASSERT_EQ(result->devices.size(), 16u);
  EXPECT_EQ(result->decisions(), 16 * 2);
  EXPECT_GE(result->reuse_rate(), 0.0);
  EXPECT_LE(result->reuse_rate(), 1.0);
  EXPECT_GE(result->repository_entries_offline, 1u);
  EXPECT_GE(result->repository_entries_final,
            result->repository_entries_offline);

  for (const fleet::FleetDeviceResult& device : result->devices) {
    ASSERT_EQ(device.daily_accuracy.size(), 2u) << device.name;
    ASSERT_EQ(device.day_seconds.size(), 2u) << device.name;
    EXPECT_EQ(device.reuses + device.new_models + device.failures, 2)
        << device.name;
    for (double acc : device.daily_accuracy) {
      EXPECT_GE(acc, 0.0) << device.name;
      EXPECT_LE(acc, 1.0) << device.name;
    }
  }

  // heterogeneous() gives every other device a maintenance stream.
  int maintenance_capable = 0;
  for (const DriftStream& stream : harness->streams()) {
    if (stream.spec().maintenance_rate > 0.0) ++maintenance_capable;
  }
  EXPECT_EQ(maintenance_capable, 8);
}

TEST(Fleet, HarnessServesNonContiguousReadoutModel) {
  // The end-to-end fleet path (repository build, online matching, per-day
  // evaluation) on a model whose classes read from qubits {1, 3}: the
  // positional-readout regression exercised through every fleet layer.
  Environment env = fleet_env();
  QnnModel model;
  model.circuit = angle_encoder(4, 4);
  model.circuit.append(build_paper_ansatz(4, 1));
  model.num_classes = 2;
  model.readout_qubits = {1, 3};
  env.model = model;
  env.theta_pretrained = init_params(model, 31);
  env.transpiled =
      transpile_model(model.circuit, model.readout_qubits, CouplingMap::belem(),
                      &CalibrationHistory(FluctuationScenario::belem(), 1, 2021)
                           .day(0));

  FleetConfig config = FleetConfig::heterogeneous(2, 13, 6);
  FleetOptions options;
  options.offline_days = 3;
  options.online_days = 2;
  options.max_eval_samples = 12;

  StatusOr<FleetHarness> harness = FleetHarness::create(env, config, options);
  ASSERT_TRUE(harness.ok()) << harness.status().to_string();
  const StatusOr<fleet::FleetResult> result = harness->run();
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->decisions(), 2 * 2);
  for (const fleet::FleetDeviceResult& device : result->devices) {
    for (double acc : device.daily_accuracy) {
      EXPECT_GE(acc, 0.0);
      EXPECT_LE(acc, 1.0);
    }
  }
}

TEST(Fleet, CreateRejectsMixedTopologiesAndBadWindows) {
  FleetConfig mixed;
  mixed.days = 40;
  mixed.devices = {DeviceSpec::belem("b"), DeviceSpec::jakarta("j")};
  EXPECT_FALSE(FleetHarness::create(fleet_env(), mixed, {}).ok());

  const FleetConfig small = FleetConfig::heterogeneous(2, 3, 10);
  FleetOptions oversized_window;
  oversized_window.offline_days = 8;
  oversized_window.online_days = 4;
  EXPECT_FALSE(
      FleetHarness::create(fleet_env(), small, oversized_window).ok());

  FleetOptions bad_stride;
  bad_stride.offline_days = 4;
  bad_stride.online_days = 2;
  bad_stride.day_stride = 0;
  EXPECT_FALSE(FleetHarness::create(fleet_env(), small, bad_stride).ok());

  FleetConfig empty;
  empty.devices.clear();
  EXPECT_FALSE(FleetHarness::create(fleet_env(), empty, {}).ok());
}

}  // namespace
}  // namespace qucad
