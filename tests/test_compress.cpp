#include <gtest/gtest.h>

#include <cmath>

#include "compress/admm.hpp"
#include "compress/compression_table.hpp"
#include "compress/fine_tune.hpp"
#include "compress/mask.hpp"
#include "data/seismic_synth.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/evaluator.hpp"
#include "qnn/trainer.hpp"

#include "test_support.hpp"

namespace qucad {
namespace {

constexpr double kPi = test::kPi;

TEST(CompressionTable, DefaultLevels) {
  const CompressionTable table;
  ASSERT_EQ(table.levels().size(), 4u);
  EXPECT_DOUBLE_EQ(table.levels()[0], 0.0);
  EXPECT_DOUBLE_EQ(table.levels()[1], kPi / 2.0);
}

TEST(CompressionTable, NearestOnCircle) {
  const CompressionTable table;
  // 0.1 is nearest to level 0.
  auto n = table.nearest(0.1);
  EXPECT_NEAR(n.level, 0.0, 1e-12);
  EXPECT_NEAR(n.distance, 0.1, 1e-12);
  // 6.2 is nearest to 2*pi (level 0 wrapped); snapped value stays on the
  // 6.2 branch.
  n = table.nearest(6.2);
  EXPECT_NEAR(n.level, 2.0 * kPi, 1e-9);
  EXPECT_NEAR(n.distance, 2.0 * kPi - 6.2, 1e-9);
}

TEST(CompressionTable, NegativeAnglesWrap) {
  const CompressionTable table;
  const auto n = table.nearest(-0.2);
  EXPECT_NEAR(n.level, 0.0, 1e-12);
  EXPECT_NEAR(n.distance, 0.2, 1e-12);
  const auto m = table.nearest(-kPi / 2.0 - 0.05);
  EXPECT_NEAR(m.level, -kPi / 2.0, 1e-9);  // 3pi/2 on the negative branch
  EXPECT_NEAR(m.distance, 0.05, 1e-9);
}

TEST(CompressionTable, SnappingNeverMovesFartherThanDistance) {
  const CompressionTable table;
  for (double t = -7.0; t < 7.0; t += 0.13) {
    const auto n = table.nearest(t);
    EXPECT_NEAR(std::abs(t - n.level), n.distance, 1e-9) << t;
    EXPECT_LE(n.distance, kPi / 4.0 + 1e-9) << t;  // levels are pi/2 apart
  }
}

std::vector<GateAssociation> simple_associations(
    const std::vector<std::pair<int, int>>& qubits) {
  std::vector<GateAssociation> assoc;
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    assoc.push_back({static_cast<int>(i), qubits[i].first, qubits[i].second});
  }
  return assoc;
}

TEST(Mask, NoiseAwarePrioritizesHotEdges) {
  Calibration cal(3, {{0, 1}, {1, 2}});
  cal.set_cx_error(0, 1, 0.10);   // hot
  cal.set_cx_error(1, 2, 0.001);  // cold
  // Two CR gates at the same distance from a level; only the hot one should
  // be masked when compressing the top half.
  const std::vector<double> theta{0.4, 0.4};
  const auto assoc = simple_associations({{0, 1}, {1, 2}});
  const MaskInfo info =
      build_mask(theta, CompressionTable{}, assoc, cal,
                 CompressionMode::NoiseAware, {MaskPolicy::Kind::TopFraction, 0.5});
  EXPECT_EQ(info.mask[0], 1);
  EXPECT_EQ(info.mask[1], 0);
  EXPECT_GT(info.priority[0], info.priority[1]);
}

TEST(Mask, NoiseAgnosticPrioritizesSmallDistance) {
  Calibration cal(3, {{0, 1}, {1, 2}});
  cal.set_cx_error(0, 1, 0.10);
  cal.set_cx_error(1, 2, 0.001);
  // Cold gate is closer to a level; agnostic mode must pick it instead.
  const std::vector<double> theta{0.6, 0.1};
  const auto assoc = simple_associations({{0, 1}, {1, 2}});
  const MaskInfo info =
      build_mask(theta, CompressionTable{}, assoc, cal,
                 CompressionMode::NoiseAgnostic,
                 {MaskPolicy::Kind::TopFraction, 0.5});
  EXPECT_EQ(info.mask[0], 0);
  EXPECT_EQ(info.mask[1], 1);
}

TEST(Mask, ThresholdPolicy) {
  Calibration cal(2, {{0, 1}});
  cal.set_cx_error(0, 1, 0.05);
  const std::vector<double> theta{0.1, 1.0, 0.7853981633974483 + 0.01};
  const auto assoc = simple_associations({{0, 1}, {0, 1}, {0, 1}});
  // priorities: 0.05/0.1 = 0.5; 0.05/0.57 ~ 0.09; 0.05/~pi/4 ~ 0.065
  const MaskInfo info =
      build_mask(theta, CompressionTable{}, assoc, cal,
                 CompressionMode::NoiseAware, {MaskPolicy::Kind::Threshold, 0.3});
  EXPECT_EQ(info.mask[0], 1);
  EXPECT_EQ(info.mask[1], 0);
  EXPECT_EQ(info.mask[2], 0);
  EXPECT_EQ(info.masked_count(), 1u);
}

TEST(Mask, SingleQubitTargetsAreTableLevels) {
  Calibration cal(2, {{0, 1}});
  cal.set_sx_error(0, 3e-4);
  const std::vector<double> theta{1.5, 3.3, 4.6};
  // Single-qubit gates (q1 = -1) use the full table.
  const auto assoc = simple_associations({{0, -1}, {0, -1}, {0, -1}});
  const MaskInfo info =
      build_mask(theta, CompressionTable{}, assoc, cal,
                 CompressionMode::NoiseAware, {MaskPolicy::Kind::TopFraction, 1.0});
  EXPECT_NEAR(info.target_level[0], kPi / 2.0, 1e-9);
  EXPECT_NEAR(info.target_level[1], kPi, 1e-9);
  EXPECT_NEAR(info.target_level[2], 3.0 * kPi / 2.0, 1e-9);
  EXPECT_EQ(info.masked_count(), 3u);
}

TEST(Mask, ControlledTargetsAreCxEliminatingLevels) {
  // CR gates only shorten at multiples of 2*pi; their targets must snap
  // there, not to pi/2-family levels.
  Calibration cal(2, {{0, 1}});
  cal.set_cx_error(0, 1, 0.05);
  const std::vector<double> theta{1.5, 3.3, 4.6};
  const auto assoc = simple_associations({{0, 1}, {0, 1}, {0, 1}});
  const MaskInfo info =
      build_mask(theta, CompressionTable{}, assoc, cal,
                 CompressionMode::NoiseAware, {MaskPolicy::Kind::TopFraction, 1.0});
  EXPECT_NEAR(info.target_level[0], 0.0, 1e-9);
  EXPECT_NEAR(info.target_level[1], 2.0 * kPi, 1e-9);
  EXPECT_NEAR(info.target_level[2], 2.0 * kPi, 1e-9);
  EXPECT_EQ(info.controlled[0], 1);
  EXPECT_EQ(info.masked_count(), 3u);
}

TEST(Mask, NearestCompressionLevelHelper) {
  const CompressionTable table;
  const auto one_q = nearest_compression_level(1.6, false, table);
  EXPECT_NEAR(one_q.level, kPi / 2.0, 1e-9);
  const auto ctrl = nearest_compression_level(1.6, true, table);
  EXPECT_NEAR(ctrl.level, 0.0, 1e-9);
  EXPECT_NEAR(ctrl.distance, 1.6, 1e-9);
  const auto ctrl_high = nearest_compression_level(5.5, true, table);
  EXPECT_NEAR(ctrl_high.level, 2.0 * kPi, 1e-9);
}

TEST(Mask, ZeroFractionMasksNothing) {
  Calibration cal(2, {{0, 1}});
  const std::vector<double> theta{0.1};
  const auto assoc = simple_associations({{0, 1}});
  const MaskInfo info =
      build_mask(theta, CompressionTable{}, assoc, cal,
                 CompressionMode::NoiseAware, {MaskPolicy::Kind::TopFraction, 0.0});
  EXPECT_EQ(info.masked_count(), 0u);
}

struct CompressFixture {
  QnnModel model;
  TranspiledModel transpiled;
  std::vector<double> theta;
  Dataset train;
  Calibration calib;

  CompressFixture()
      : calib(5, CouplingMap::belem().edges()) {
    Dataset raw = make_seismic(96, 5);
    train = FeatureScaler::fit(raw).transform(raw);
    model = build_paper_model(4, 4, 2, 2);
    theta = init_params(model, 7);
    TrainConfig config;
    config.epochs = 8;
    train_model(model, theta, train, config);

    const CalibrationHistory h(FluctuationScenario::belem(), 320, 2021);
    calib = h.day(310);  // <1,2> hot day
    transpiled = transpile_model(model.circuit, model.readout_qubits,
                                 CouplingMap::belem(), &calib);
  }
};

TEST(Admm, SnapsMaskedParametersExactlyToLevels) {
  CompressFixture fx;
  AdmmOptions options;
  options.iterations = 3;
  options.epochs_per_iteration = 1;
  options.finetune_epochs = 1;
  const CompressedModel compressed = admm_compress(
      fx.model, fx.transpiled, fx.theta, fx.train, fx.calib, options);

  const CompressionTable table;
  ASSERT_EQ(compressed.theta.size(), fx.theta.size());
  std::size_t masked = 0;
  for (std::size_t i = 0; i < compressed.theta.size(); ++i) {
    if (!compressed.frozen[i]) continue;
    ++masked;
    EXPECT_NEAR(table.nearest(compressed.theta[i]).distance, 0.0, 1e-9)
        << "param " << i << " not snapped";
  }
  EXPECT_GT(masked, 0u);
}

TEST(Admm, ReducesPhysicalCircuitLength) {
  CompressFixture fx;
  AdmmOptions options;
  options.iterations = 3;
  options.epochs_per_iteration = 1;
  options.finetune_epochs = 0;
  const CompressedModel compressed = admm_compress(
      fx.model, fx.transpiled, fx.theta, fx.train, fx.calib, options);
  EXPECT_LT(compressed.cx_after, compressed.cx_before);
  EXPECT_LE(compressed.pulses_after, compressed.pulses_before);
  EXPECT_GT(compressed.cx_reduction(), 0.0);
}

TEST(Admm, NoiseAwareAtLeastMatchesAgnosticAcrossEpisodeDays) {
  // Fig. 9b's qualitative claim: averaged over heterogeneous-noise days,
  // noise-aware compression is at least as good as noise-agnostic (they tie
  // on quiet days). Single days are noisy, so compare means over episodes.
  CompressFixture fx;
  const CalibrationHistory h(FluctuationScenario::belem(),
                             CalibrationHistory::kTotalDays, 2021);
  const AdmmOptions aware;  // production defaults
  AdmmOptions agnostic = aware;
  agnostic.mode = CompressionMode::NoiseAgnostic;

  const Dataset eval = fx.train.take(64);
  double sum_aware = 0.0, sum_agnostic = 0.0;
  for (int day : {270, 310, 347}) {
    const Calibration& calib = h.day(day);
    const auto m_aware =
        admm_compress(fx.model, fx.transpiled, fx.theta, fx.train, calib, aware);
    const auto m_agnostic = admm_compress(fx.model, fx.transpiled, fx.theta,
                                          fx.train, calib, agnostic);
    sum_aware +=
        noisy_accuracy(fx.model, fx.transpiled, m_aware.theta, eval, calib);
    sum_agnostic +=
        noisy_accuracy(fx.model, fx.transpiled, m_agnostic.theta, eval, calib);
  }
  EXPECT_GE(sum_aware / 3.0, sum_agnostic / 3.0 - 0.05);
}

TEST(Admm, KeepsFrozenMaskConsistentWithTheta) {
  CompressFixture fx;
  AdmmOptions options;
  options.iterations = 2;
  options.epochs_per_iteration = 1;
  options.finetune_epochs = 1;
  const CompressedModel compressed = admm_compress(
      fx.model, fx.transpiled, fx.theta, fx.train, fx.calib, options);
  EXPECT_EQ(compressed.frozen.size(), compressed.theta.size());
}

TEST(Admm, KeepBestGuardNeverRegressesOnValidation) {
  // With the guard on, the returned model scores at least as well as the
  // original on the validation slice under the target calibration.
  CompressFixture fx;
  const CalibrationHistory h(FluctuationScenario::belem(),
                             CalibrationHistory::kTotalDays, 2021);
  AdmmOptions options;  // keep_best = true by default
  const Calibration& calib = h.day(270);
  const CompressedModel cm = admm_compress(fx.model, fx.transpiled, fx.theta,
                                           fx.train, calib, options);
  const std::size_t n_val = std::min<std::size_t>(options.validation_samples,
                                                  fx.train.size());
  std::vector<std::size_t> tail(n_val);
  for (std::size_t i = 0; i < n_val; ++i) tail[i] = fx.train.size() - n_val + i;
  const Dataset validation = fx.train.subset(tail);
  const double acc_out =
      noisy_accuracy(fx.model, fx.transpiled, cm.theta, validation, calib);
  const double acc_orig =
      noisy_accuracy(fx.model, fx.transpiled, fx.theta, validation, calib);
  EXPECT_GE(acc_out, acc_orig - 1e-9);
}

TEST(Admm, GuardDisabledAlwaysReturnsCompressedModel) {
  CompressFixture fx;
  AdmmOptions options;
  options.keep_best = false;
  options.policy = {MaskPolicy::Kind::TopFraction, 0.3};
  const CompressedModel cm = admm_compress(fx.model, fx.transpiled, fx.theta,
                                           fx.train, fx.calib, options);
  EXPECT_FALSE(cm.kept_original);
  EXPECT_LT(cm.cx_after, cm.cx_before);
  // At least one parameter actually sits at a compression level.
  EXPECT_GT(std::count(cm.frozen.begin(), cm.frozen.end(), 1), 0);
}

TEST(FineTune, FrozenParametersSurviveNoiseInjectedTraining) {
  CompressFixture fx;
  std::vector<double> theta = fx.theta;
  NoiseAwareTrainOptions options;
  options.epochs = 1;
  options.frozen.assign(theta.size(), 0);
  options.frozen[3] = 1;
  options.frozen[40] = 1;
  const std::vector<double> original = theta;
  noise_aware_train(fx.model, fx.transpiled, theta, fx.train, fx.calib, options);
  EXPECT_DOUBLE_EQ(theta[3], original[3]);
  EXPECT_DOUBLE_EQ(theta[40], original[40]);
}

TEST(FineTune, NoiseAwareTrainingImprovesNoisyLoss) {
  CompressFixture fx;
  std::vector<double> theta = fx.theta;
  NoiseAwareTrainOptions options;
  options.epochs = 3;
  const TrainResult result = noise_aware_train(fx.model, fx.transpiled, theta,
                                               fx.train, fx.calib, options);
  EXPECT_FALSE(result.epoch_losses.empty());
  // Losses should not blow up; typically they decrease.
  EXPECT_LE(result.epoch_losses.back(), result.epoch_losses.front() + 0.15);
}

}  // namespace
}  // namespace qucad
