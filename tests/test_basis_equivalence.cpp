#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "noise/calibration_history.hpp"
#include "transpile/transpiler.hpp"

#include "test_support.hpp"

namespace qucad {
namespace {

constexpr double kPi = test::kPi;

// Verifies the routed circuit and its basis-lowered form produce the same
// state (up to global phase) for given parameters.
void expect_lowering_equivalent(const RoutedCircuit& routed,
                                const std::vector<double>& theta,
                                const std::vector<double>& x) {
  StateVector reference(routed.circuit.num_qubits());
  reference.run(routed.circuit, theta, x);

  const PhysicalCircuit phys = lower_to_basis(routed, theta);
  const StateVector lowered = run_physical_pure(phys, x);

  EXPECT_TRUE(equal_up_to_global_phase(reference.amplitudes(),
                                       lowered.amplitudes(), 1e-8))
      << "lowering changed the state";
}

RoutedCircuit wrap_unrouted(const Circuit& c) {
  RoutedCircuit routed;
  routed.circuit = c;
  routed.initial_layout = trivial_layout(c.num_qubits());
  routed.final_mapping = routed.initial_layout;
  return routed;
}

// --- per-gate sweeps across breakpoints and generic angles ----------------

struct GateAngleCase {
  GateKind kind;
  double angle;
};

class BasisGateSweep : public ::testing::TestWithParam<GateAngleCase> {};

TEST_P(BasisGateSweep, LoweringPreservesState) {
  const auto [kind, angle] = GetParam();
  Circuit c(2);
  // Prepare a non-trivial state so phases matter.
  c.h(0).ry(1, 0.6).crz(0, 1, 0.4);
  Gate g;
  g.kind = kind;
  g.q0 = 0;
  g.q1 = gate_arity(kind) == 2 ? 1 : -1;
  g.param = trainable(0);
  c.add(g);
  c.h(1);

  expect_lowering_equivalent(wrap_unrouted(c), {angle}, {});
}

std::vector<GateAngleCase> sweep_cases() {
  std::vector<GateAngleCase> cases;
  const std::vector<double> angles{0.0,           kPi / 2.0, kPi,
                                   3.0 * kPi / 2, 2.0 * kPi, 0.37,
                                   -1.2,          4.0 * kPi, -kPi / 2.0,
                                   5.9};
  for (GateKind kind : {GateKind::RX, GateKind::RY, GateKind::RZ, GateKind::CRX,
                        GateKind::CRY, GateKind::CRZ}) {
    for (double a : angles) cases.push_back({kind, a});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllGatesAllBreakpoints, BasisGateSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<GateAngleCase>& info) {
      const auto& c = info.param;
      std::string angle = std::to_string(static_cast<int>(c.angle * 1000));
      for (char& ch : angle) {
        if (ch == '-') ch = 'm';
      }
      return gate_name(c.kind) + "_" + angle;
    });

// --- fixed gates -----------------------------------------------------------

TEST(BasisLowering, FixedGates) {
  Circuit c(2);
  c.h(0).x(1).sx(0).sxdg(1).cz(0, 1).cx(1, 0).swap(0, 1).z(0).y(1);
  expect_lowering_equivalent(wrap_unrouted(c), {}, {});
}

TEST(BasisLowering, SymbolicInputsStaySymbolic) {
  Circuit c(2);
  c.ry(0, input(0)).rx(1, input(1)).cry(0, 1, input(2)).rz(0, input(0));
  const RoutedCircuit routed = wrap_unrouted(c);
  const PhysicalCircuit phys = lower_to_basis(routed, {});
  // Encoding angles must be replayable: distinct inputs give distinct states.
  const std::vector<double> x1{0.3, 1.1, 2.0};
  const std::vector<double> x2{2.9, 0.2, 0.8};

  StateVector ref1(2), ref2(2);
  ref1.run(c, {}, x1);
  ref2.run(c, {}, x2);
  EXPECT_TRUE(equal_up_to_global_phase(run_physical_pure(phys, x1).amplitudes(),
                                       ref1.amplitudes(), 1e-8));
  EXPECT_TRUE(equal_up_to_global_phase(run_physical_pure(phys, x2).amplitudes(),
                                       ref2.amplitudes(), 1e-8));
}

TEST(BasisLowering, RandomDeepCircuitEquivalence) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Circuit c(3);
    int p = 0;
    for (int layer = 0; layer < 6; ++layer) {
      for (int q = 0; q < 3; ++q) {
        switch (rng.integer(0, 2)) {
          case 0: c.ry(q, trainable(p++)); break;
          case 1: c.rx(q, trainable(p++)); break;
          default: c.rz(q, trainable(p++)); break;
        }
      }
      const int a = rng.integer(0, 2);
      const int b = (a + 1 + rng.integer(0, 1)) % 3;
      switch (rng.integer(0, 2)) {
        case 0: c.cry(a, b, trainable(p++)); break;
        case 1: c.crx(a, b, trainable(p++)); break;
        default: c.crz(a, b, trainable(p++)); break;
      }
    }
    std::vector<double> theta(static_cast<std::size_t>(p));
    for (double& t : theta) t = rng.uniform(-2.0 * kPi, 2.0 * kPi);
    expect_lowering_equivalent(wrap_unrouted(c), theta, {});
  }
}

// --- peephole gate-count guarantees (the compression mechanism) ------------

std::size_t pulses_for(GateKind kind, double angle) {
  Circuit c(2);
  Gate g;
  g.kind = kind;
  g.q0 = 0;
  g.q1 = gate_arity(kind) == 2 ? 1 : -1;
  g.param = trainable(0);
  c.add(g);
  const PhysicalCircuit phys =
      lower_to_basis(wrap_unrouted(c), std::vector<double>{angle});
  return phys.pulse_count();
}

std::size_t cx_for(GateKind kind, double angle) {
  Circuit c(2);
  Gate g;
  g.kind = kind;
  g.q0 = 0;
  g.q1 = 1;
  g.param = trainable(0);
  c.add(g);
  const PhysicalCircuit phys =
      lower_to_basis(wrap_unrouted(c), std::vector<double>{angle});
  return phys.cx_count();
}

TEST(Peephole, SingleQubitPulseCounts) {
  for (GateKind kind : {GateKind::RX, GateKind::RY}) {
    EXPECT_EQ(pulses_for(kind, 0.0), 0u) << gate_name(kind);
    EXPECT_EQ(pulses_for(kind, 2.0 * kPi), 0u) << gate_name(kind);
    EXPECT_EQ(pulses_for(kind, kPi), 1u) << gate_name(kind);          // X pulse
    EXPECT_EQ(pulses_for(kind, kPi / 2.0), 1u) << gate_name(kind);    // SX
    EXPECT_EQ(pulses_for(kind, 3.0 * kPi / 2.0), 1u) << gate_name(kind);
    EXPECT_EQ(pulses_for(kind, 0.73), 2u) << gate_name(kind);         // generic
  }
  // RZ is always virtual.
  for (double a : {0.0, 0.7, kPi, 5.0}) EXPECT_EQ(pulses_for(GateKind::RZ, a), 0u);
}

TEST(Peephole, ControlledRotationCxCounts) {
  for (GateKind kind : {GateKind::CRX, GateKind::CRY, GateKind::CRZ}) {
    EXPECT_EQ(cx_for(kind, 0.0), 0u) << gate_name(kind);       // dropped
    EXPECT_EQ(cx_for(kind, 2.0 * kPi), 0u) << gate_name(kind); // Z on control
    EXPECT_EQ(cx_for(kind, 4.0 * kPi), 0u) << gate_name(kind); // identity
    EXPECT_EQ(cx_for(kind, 0.9), 2u) << gate_name(kind);       // generic
    EXPECT_EQ(cx_for(kind, kPi), 2u) << gate_name(kind);
  }
}

TEST(Peephole, CompressionShortensPaperAnsatz) {
  // Snapping parameters to breakpoints must reduce the physical length.
  Circuit c(4);
  int p = 0;
  for (int q = 0; q < 4; ++q) c.ry(q, trainable(p++));
  for (int q = 0; q < 4; ++q) c.cry(q, (q + 1) % 4, trainable(p++));

  Rng rng(5);
  std::vector<double> generic(static_cast<std::size_t>(p));
  for (double& t : generic) t = rng.uniform(0.2, 1.2);  // far from breakpoints
  std::vector<double> snapped(static_cast<std::size_t>(p), 0.0);

  const CalibrationHistory h(FluctuationScenario::belem(), 3, 1);
  const TranspiledModel tm =
      transpile_model(c, {0}, CouplingMap::belem(), &h.day(0));
  const PhysicalCircuit before = lower_model(tm, generic);
  const PhysicalCircuit after = lower_model(tm, snapped);
  EXPECT_LT(after.cx_count(), before.cx_count());
  EXPECT_LT(after.pulse_count(), before.pulse_count());
}

// --- routing + lowering end-to-end ------------------------------------------

TEST(RoutingEquivalence, LogicalVsRoutedDistributions) {
  // The routed circuit on the device must reproduce the logical circuit's
  // joint readout distribution through the final mapping.
  Circuit c(4);
  int p = 0;
  for (int q = 0; q < 4; ++q) c.ry(q, trainable(p++));
  for (int q = 0; q < 4; ++q) c.cry(q, (q + 1) % 4, trainable(p++));
  for (int q = 0; q < 4; ++q) c.crz(q, (q + 1) % 4, trainable(p++));

  Rng rng(31);
  std::vector<double> theta(static_cast<std::size_t>(p));
  for (double& t : theta) t = rng.uniform(-3.0, 3.0);

  StateVector logical(4);
  logical.run(c, theta, {});
  const auto logical_probs = logical.probabilities();

  const RoutedCircuit routed =
      route_circuit(c, CouplingMap::belem(), trivial_layout(4));
  const PhysicalCircuit phys = lower_to_basis(routed, theta);
  const auto physical_probs = run_physical_pure(phys, {}).probabilities();

  // Aggregate physical probabilities onto logical bit patterns.
  std::vector<double> mapped(16, 0.0);
  for (std::size_t i = 0; i < physical_probs.size(); ++i) {
    std::size_t logical_index = 0;
    for (int l = 0; l < 4; ++l) {
      const int pq = routed.final_mapping[static_cast<std::size_t>(l)];
      if (i & (std::size_t{1} << pq)) logical_index |= std::size_t{1} << l;
    }
    mapped[logical_index] += physical_probs[i];
  }
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_NEAR(mapped[b], logical_probs[b], 1e-8) << "basis state " << b;
  }
}

}  // namespace
}  // namespace qucad
