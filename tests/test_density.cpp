#include <gtest/gtest.h>

#include <cmath>

#include "linalg/gates.hpp"
#include "noise/channels.hpp"
#include "sim/density_matrix.hpp"
#include "test_support.hpp"

namespace qucad {
namespace {

constexpr double kTol = test::kAgreementTol;

TEST(DensityMatrix, PureStateMatchesStateVector) {
  Circuit c(3);
  c.h(0).cx(0, 1).ry(2, 0.7).crz(1, 2, 1.1);

  StateVector sv(3);
  sv.run(c);
  DensityMatrix from_sv = DensityMatrix::from_statevector(sv);

  DensityMatrix dm(3);
  dm.run(c);

  for (std::size_t i = 0; i < dm.data().size(); ++i) {
    EXPECT_NEAR(std::abs(dm.data()[i] - from_sv.data()[i]), 0.0, kTol);
  }
  EXPECT_NEAR(dm.purity(), 1.0, kTol);
  EXPECT_NEAR(dm.trace_real(), 1.0, kTol);
}

TEST(DensityMatrix, ExpectationsMatchStateVector) {
  Circuit c(3);
  c.ry(0, 0.4).cry(0, 1, 1.2).rx(2, 2.2).crx(2, 0, 0.5);
  StateVector sv(3);
  sv.run(c);
  DensityMatrix dm(3);
  dm.run(c);
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(dm.expectation_z(q), sv.expectation_z(q), kTol);
  }
}

TEST(DensityMatrix, DepolarizingDrivesToMaximallyMixed) {
  DensityMatrix dm(1);
  dm.apply_depolarizing1(0, 1.0);
  EXPECT_NEAR(dm.data()[0].real(), 0.5, kTol);
  EXPECT_NEAR(dm.data()[3].real(), 0.5, kTol);
  EXPECT_NEAR(std::abs(dm.data()[1]), 0.0, kTol);
  EXPECT_NEAR(dm.purity(), 0.5, kTol);
}

TEST(DensityMatrix, DepolarizingFastPathMatchesKraus) {
  const double p = 0.13;
  Circuit prep(2);
  prep.h(0).cry(0, 1, 0.9).rz(1, 0.4);

  DensityMatrix fast(2), slow(2);
  fast.run(prep);
  slow.run(prep);

  fast.apply_depolarizing1(1, p);
  const Kraus1 ch = channels::depolarizing1(p);
  std::vector<std::array<cplx, 4>> ops(ch.ops.begin(), ch.ops.end());
  slow.apply_kraus1(1, ops);

  for (std::size_t i = 0; i < fast.data().size(); ++i) {
    EXPECT_NEAR(std::abs(fast.data()[i] - slow.data()[i]), 0.0, kTol);
  }
}

TEST(DensityMatrix, Depolarizing2FastPathMatchesKraus) {
  const double p = 0.21;
  Circuit prep(3);
  prep.h(0).cx(0, 1).ry(2, 1.3).crz(2, 0, 0.7);

  DensityMatrix fast(3), slow(3);
  fast.run(prep);
  slow.run(prep);

  fast.apply_depolarizing2(0, 2, p);
  const Kraus2 ch = channels::depolarizing2(p);
  std::vector<std::array<cplx, 16>> ops(ch.ops.begin(), ch.ops.end());
  slow.apply_kraus2(0, 2, ops);

  for (std::size_t i = 0; i < fast.data().size(); ++i) {
    EXPECT_NEAR(std::abs(fast.data()[i] - slow.data()[i]), 0.0, kTol);
  }
}

TEST(DensityMatrix, AmplitudeDampingFixedPoint) {
  // Full damping sends |1> to |0>.
  DensityMatrix dm(1);
  dm.apply1(0, as_array2(gates::X()));
  const Kraus1 ch = channels::amplitude_damping(1.0);
  std::vector<std::array<cplx, 4>> ops(ch.ops.begin(), ch.ops.end());
  dm.apply_kraus1(0, ops);
  EXPECT_NEAR(dm.data()[0].real(), 1.0, kTol);
  EXPECT_NEAR(dm.data()[3].real(), 0.0, kTol);
}

TEST(DensityMatrix, PhaseDampingKillsCoherence) {
  DensityMatrix dm(1);
  dm.apply1(0, as_array2(gates::H()));
  EXPECT_NEAR(std::abs(dm.data()[1]), 0.5, kTol);
  const Kraus1 ch = channels::phase_damping(1.0);
  std::vector<std::array<cplx, 4>> ops(ch.ops.begin(), ch.ops.end());
  dm.apply_kraus1(0, ops);
  EXPECT_NEAR(std::abs(dm.data()[1]), 0.0, kTol);
  EXPECT_NEAR(dm.data()[0].real(), 0.5, kTol);  // populations preserved
}

TEST(DensityMatrix, TracePreservedUnderAllChannels) {
  Circuit prep(2);
  prep.h(0).cx(0, 1).ry(1, 0.9);
  DensityMatrix dm(2);
  dm.run(prep);

  dm.apply_depolarizing1(0, 0.1);
  dm.apply_depolarizing2(0, 1, 0.15);
  const Kraus1 thermal = channels::thermal_relaxation(100.0, 80.0, 0.3);
  std::vector<std::array<cplx, 4>> ops(thermal.ops.begin(), thermal.ops.end());
  dm.apply_kraus1(1, ops);
  EXPECT_NEAR(dm.trace_real(), 1.0, 1e-9);
}

TEST(DensityMatrix, PurityDecreasesUnderNoise) {
  Circuit prep(2);
  prep.h(0).cx(0, 1);
  DensityMatrix dm(2);
  dm.run(prep);
  const double pure = dm.purity();
  dm.apply_depolarizing2(0, 1, 0.3);
  EXPECT_LT(dm.purity(), pure);
}

TEST(DensityMatrix, DiagonalProbabilitiesSumToOne) {
  Circuit prep(3);
  prep.h(0).cry(0, 1, 0.8).crx(1, 2, 1.9);
  DensityMatrix dm(3);
  dm.run(prep);
  dm.apply_depolarizing1(2, 0.2);
  const auto probs = dm.diagonal_probabilities();
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, -1e-12);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ReadoutError, ConfusionMatrixApplied) {
  // Single qubit in |0>: P(read 1) = p1_given_0.
  std::vector<double> probs{1.0, 0.0};
  const std::vector<ReadoutError> errors{{0.1, 0.2}};
  const auto noisy = apply_readout_error(probs, errors);
  EXPECT_NEAR(noisy[0], 0.9, kTol);
  EXPECT_NEAR(noisy[1], 0.1, kTol);

  // Single qubit in |1>: P(read 0) = p0_given_1.
  std::vector<double> one{0.0, 1.0};
  const auto noisy1 = apply_readout_error(one, errors);
  EXPECT_NEAR(noisy1[0], 0.2, kTol);
  EXPECT_NEAR(noisy1[1], 0.8, kTol);
}

TEST(ReadoutError, MultiQubitIndependence) {
  // Two qubits both in |0>, only qubit 1 has error.
  std::vector<double> probs{1.0, 0.0, 0.0, 0.0};
  const std::vector<ReadoutError> errors{{0.0, 0.0}, {0.25, 0.0}};
  const auto noisy = apply_readout_error(probs, errors);
  EXPECT_NEAR(noisy[0], 0.75, kTol);
  EXPECT_NEAR(noisy[2], 0.25, kTol);
  EXPECT_NEAR(noisy[1], 0.0, kTol);
}

TEST(Channels, AllFactoriesAreCptp) {
  for (double p : {0.0, 0.05, 0.3, 1.0}) {
    EXPECT_TRUE(channels::depolarizing1(p).is_cptp()) << p;
    EXPECT_TRUE(channels::depolarizing2(p).is_cptp()) << p;
    EXPECT_TRUE(channels::bit_flip(p).is_cptp()) << p;
    EXPECT_TRUE(channels::phase_flip(p).is_cptp()) << p;
    EXPECT_TRUE(channels::amplitude_damping(p).is_cptp()) << p;
    EXPECT_TRUE(channels::phase_damping(p).is_cptp()) << p;
  }
}

TEST(Channels, ThermalRelaxationCptpAndPruned) {
  const Kraus1 ch = channels::thermal_relaxation(120.0, 70.0, 0.3);
  EXPECT_TRUE(ch.is_cptp());
  // Composition of amplitude (2) and phase (2) damping prunes the zero
  // product: at most 3 operators survive.
  EXPECT_LE(ch.ops.size(), 3u);
}

TEST(Channels, ComposeMatchesSequentialApplication) {
  Circuit prep(1);
  prep.h(0);
  DensityMatrix composed(1), sequential(1);
  composed.run(prep);
  sequential.run(prep);

  const Kraus1 a = channels::amplitude_damping(0.3);
  const Kraus1 b = channels::phase_damping(0.4);
  const Kraus1 ab = channels::compose(a, b);
  EXPECT_TRUE(ab.is_cptp());

  std::vector<std::array<cplx, 4>> ops_ab(ab.ops.begin(), ab.ops.end());
  composed.apply_kraus1(0, ops_ab);

  std::vector<std::array<cplx, 4>> ops_a(a.ops.begin(), a.ops.end());
  std::vector<std::array<cplx, 4>> ops_b(b.ops.begin(), b.ops.end());
  sequential.apply_kraus1(0, ops_a);
  sequential.apply_kraus1(0, ops_b);

  for (std::size_t i = 0; i < composed.data().size(); ++i) {
    EXPECT_NEAR(std::abs(composed.data()[i] - sequential.data()[i]), 0.0, kTol);
  }
}

TEST(DensityMatrix, ThermalFastPathMatchesKraus) {
  // apply_thermal1 (closed form, one pass) must agree with the generic
  // Kraus application of the materialized operator set.
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    const double gamma = rng.uniform(0.0, 0.6);
    const double lambda = rng.uniform(0.0, 0.6);
    const Circuit prep = test::random_circuit(rng, 3, 12);

    DensityMatrix fast(3), slow(3);
    fast.run(prep);
    slow.run(prep);

    const ThermalChannel ch{gamma, lambda};
    fast.apply_thermal1(1, ch.gamma, ch.lambda);
    slow.apply_kraus1(1, ch.kraus().ops);

    test::expect_amplitudes_near(fast.data(), slow.data(), kTol);
    EXPECT_NEAR(fast.trace_real(), 1.0, 1e-9);
  }
}

TEST(DensityMatrix, DiagonalFastPathMatchesApply1) {
  Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    const double angle = rng.uniform(-test::kPi, test::kPi);
    const Circuit prep = test::random_circuit(rng, 3, 12);

    DensityMatrix fast(3), slow(3);
    fast.run(prep);
    slow.run(prep);

    const cplx d0 = std::exp(cplx{0.0, -angle / 2.0});
    const cplx d1 = std::exp(cplx{0.0, angle / 2.0});
    fast.apply_diag1(2, d0, d1);
    slow.apply1(2, {d0, cplx{0.0, 0.0}, cplx{0.0, 0.0}, d1});

    test::expect_amplitudes_near(fast.data(), slow.data(), kTol);
  }
}

// Satellite coverage: noiseless density-matrix evolution must agree with the
// statevector on random 4-6 qubit circuits to 1e-10.
class SimulatorAgreement : public test::SeededTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(SimulatorAgreement, RandomCircuitsMatchStateVector) {
  const int qubits = GetParam();
  for (int trial = 0; trial < 6; ++trial) {
    const Circuit c = test::random_circuit(rng(), qubits, 12 * qubits);
    test::expect_statevector_density_agree(c, {}, {}, test::kAgreementTol);
  }
}

INSTANTIATE_TEST_SUITE_P(FourToSixQubits, SimulatorAgreement,
                         ::testing::Values(4, 5, 6),
                         ::testing::PrintToStringParamName());

TEST(Channels, TensorActsOnCorrectQubits) {
  // amplitude damping on the pair's first qubit only.
  const Kraus2 ch = channels::tensor(channels::amplitude_damping(1.0),
                                     channels::identity1());
  EXPECT_TRUE(ch.is_cptp());
  DensityMatrix dm(2);
  Circuit prep(2);
  prep.x(0).x(1);  // |11>
  dm.run(prep);
  std::vector<std::array<cplx, 16>> ops(ch.ops.begin(), ch.ops.end());
  dm.apply_kraus2(0, 1, ops);  // first = q0
  // q0 damped to |0>, q1 untouched.
  EXPECT_NEAR(dm.expectation_z(0), 1.0, kTol);
  EXPECT_NEAR(dm.expectation_z(1), -1.0, kTol);
}

}  // namespace
}  // namespace qucad
