#include <gtest/gtest.h>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "noise/calibration_history.hpp"

namespace qucad {
namespace {

TEST(Scenario, BelemShapeMatchesDevice) {
  const FluctuationScenario s = FluctuationScenario::belem();
  EXPECT_EQ(s.num_qubits, 5);
  EXPECT_EQ(s.edges.size(), 4u);
  EXPECT_EQ(s.sx_base.size(), 5u);
  EXPECT_EQ(s.cx_base.size(), 4u);
  EXPECT_FALSE(s.episodes.empty());
}

TEST(Scenario, JakartaShapeMatchesDevice) {
  const FluctuationScenario s = FluctuationScenario::jakarta();
  EXPECT_EQ(s.num_qubits, 7);
  EXPECT_EQ(s.edges.size(), 6u);
}

TEST(History, DeterministicForSameSeed) {
  const CalibrationHistory a(FluctuationScenario::belem(), 50, 7);
  const CalibrationHistory b(FluctuationScenario::belem(), 50, 7);
  for (int d = 0; d < 50; ++d) {
    EXPECT_EQ(a.day(d).feature_vector(), b.day(d).feature_vector());
  }
}

TEST(History, DifferentSeedsDiffer) {
  const CalibrationHistory a(FluctuationScenario::belem(), 20, 1);
  const CalibrationHistory b(FluctuationScenario::belem(), 20, 2);
  EXPECT_NE(a.day(10).feature_vector(), b.day(10).feature_vector());
}

TEST(History, RatesStayInValidRanges) {
  const CalibrationHistory h(FluctuationScenario::belem(),
                             CalibrationHistory::kTotalDays, 2021);
  for (int d = 0; d < h.days(); ++d) {
    const Calibration& cal = h.day(d);
    for (int q = 0; q < cal.num_qubits(); ++q) {
      EXPECT_GT(cal.sx_error(q), 0.0);
      EXPECT_LE(cal.sx_error(q), 2e-2);
      EXPECT_LE(cal.readout(q).p1_given_0, 0.2);
      EXPECT_LE(cal.t2_us(q), 2.0 * cal.t1_us(q) + 1e-9);
    }
    for (const auto& [a, b] : cal.edges()) {
      EXPECT_GT(cal.cx_error(a, b), 0.0);
      EXPECT_LE(cal.cx_error(a, b), 0.25);
    }
  }
}

TEST(History, EpisodesElevateTargetedEdge) {
  // The <1,2> episode spans days 295..332; compare its peak to quiet days.
  const CalibrationHistory h(FluctuationScenario::belem(),
                             CalibrationHistory::kTotalDays, 2021);
  std::vector<double> hot, quiet;
  for (int d = 300; d < 328; ++d) hot.push_back(h.day(d).cx_error(1, 2));
  for (int d = 243; d < 260; ++d) quiet.push_back(h.day(d).cx_error(1, 2));
  EXPECT_GT(mean(hot), 3.0 * mean(quiet));
}

TEST(History, HeterogeneityAcrossEdges) {
  // During the <1,2> episode, edge <1,2> must dominate edge <1,3>; during
  // the <1,3> episode the order flips (Observation 2 of the paper).
  const CalibrationHistory h(FluctuationScenario::belem(),
                             CalibrationHistory::kTotalDays, 2021);
  double mid12 = 0.0, mid13 = 0.0;
  for (int d = 305; d < 322; ++d) {
    mid12 += h.day(d).cx_error(1, 2);
    mid13 += h.day(d).cx_error(1, 3);
  }
  EXPECT_GT(mid12, mid13);

  double late12 = 0.0, late13 = 0.0;
  for (int d = 344; d < 353; ++d) {
    late12 += h.day(d).cx_error(1, 2);
    late13 += h.day(d).cx_error(1, 3);
  }
  EXPECT_GT(late13, late12);
}

TEST(History, DateStringsAnchorAtPaperStart) {
  const CalibrationHistory h(FluctuationScenario::belem(), 400, 1);
  EXPECT_EQ(h.date_string(0), "08/10/21");
  EXPECT_EQ(h.date_string(1), "08/11/21");
  EXPECT_EQ(h.date_string(CalibrationHistory::kOfflineDays), "04/10/22");
  EXPECT_EQ(h.date_string(365), "08/10/22");
}

TEST(History, SliceBounds) {
  const CalibrationHistory h(FluctuationScenario::belem(), 30, 1);
  const auto s = h.slice(10, 5);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s[0].feature_vector(), h.day(10).feature_vector());
  EXPECT_THROW(h.slice(28, 5), PreconditionError);
  EXPECT_THROW(h.day(30), PreconditionError);
}

TEST(History, VectorConstructorWrapsDaysVerbatim) {
  const CalibrationHistory generated(FluctuationScenario::belem(), 12, 5);
  std::vector<Calibration> days;
  for (int d = 0; d < generated.days(); ++d) days.push_back(generated.day(d));

  // The deserializer's path: rebuild a history from explicit days and check
  // it is indistinguishable from the generated one.
  const CalibrationHistory wrapped(std::move(days));
  ASSERT_EQ(wrapped.days(), generated.days());
  for (int d = 0; d < wrapped.days(); ++d) {
    EXPECT_EQ(wrapped.day(d).feature_vector(), generated.day(d).feature_vector());
    EXPECT_EQ(wrapped.date_string(d), generated.date_string(d));
  }
  EXPECT_THROW(CalibrationHistory(std::vector<Calibration>{}), PreconditionError);
}

TEST(History, OfflineOnlineSplitConstants) {
  EXPECT_EQ(CalibrationHistory::kOfflineDays, 243);
  EXPECT_EQ(CalibrationHistory::kOnlineDays, 146);
  EXPECT_EQ(CalibrationHistory::kTotalDays, 389);
}

}  // namespace
}  // namespace qucad
