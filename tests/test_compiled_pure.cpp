// Equivalence suite for the compiled statevector training path: the
// symbolic-theta compiled program (lower_model_symbolic / build_pure_executor
// + sim/compiled_adjoint.hpp) must reproduce the logical-circuit reference
// engines — StateVector::run, adjoint_gradient, parameter_shift_gradient,
// batch_loss_grad — to 1e-10 on randomized parameterized circuits, and the
// structure-keyed executor cache must hit across theta updates while
// recomputing results (no stale logits).

#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "data/seismic_synth.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "qnn/eval_cache.hpp"
#include "qnn/gradients.hpp"
#include "qnn/model.hpp"
#include "qnn/trainer.hpp"
#include "sim/adjoint.hpp"
#include "sim/compiled_adjoint.hpp"
#include "transpile/transpiler.hpp"

#include "test_support.hpp"

namespace qucad {
namespace {

using test::kAgreementTol;
using test::kPi;

/// Random circuit mixing trainable rotations (all six kinds), input-encoding
/// rotations, and fixed gates — the full vocabulary the symbolic lowering
/// must translate.
Circuit random_param_circuit(Rng& rng, int nq, int gates, int num_inputs,
                             int& num_trainable) {
  Circuit c(nq);
  num_trainable = 0;
  for (int g = 0; g < gates; ++g) {
    const int q0 = rng.integer(0, nq - 1);
    int q1 = rng.integer(0, nq - 2);
    if (q1 >= q0) ++q1;
    const double lit = rng.uniform(-kPi, kPi);
    switch (rng.integer(0, 11)) {
      case 0: c.rx(q0, trainable(num_trainable++)); break;
      case 1: c.ry(q0, trainable(num_trainable++)); break;
      case 2: c.rz(q0, trainable(num_trainable++)); break;
      case 3: c.crx(q0, q1, trainable(num_trainable++)); break;
      case 4: c.cry(q0, q1, trainable(num_trainable++)); break;
      case 5: c.crz(q0, q1, trainable(num_trainable++)); break;
      case 6: c.ry(q0, input(rng.integer(0, num_inputs - 1))); break;
      case 7: c.rz(q0, input(rng.integer(0, num_inputs - 1))); break;
      case 8: c.h(q0); break;
      case 9: c.cx(q0, q1); break;
      case 10: c.rx(q0, lit); break;
      default: c.sx(q0); break;
    }
  }
  return c;
}

std::vector<double> random_vector(Rng& rng, int n, double lo = -kPi,
                                  double hi = kPi) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& t : v) t = rng.uniform(lo, hi);
  return v;
}

std::vector<int> all_qubits(int nq) {
  std::vector<int> q(static_cast<std::size_t>(nq));
  for (int i = 0; i < nq; ++i) q[static_cast<std::size_t>(i)] = i;
  return q;
}

class CompiledPureTest : public test::SeededTest {};

TEST(PhysOpTheta, AffineThetaResolution) {
  PhysOp op{PhysOpKind::RZ, 0, -1, 1.0, -1, 1.0, 2, -0.5};
  const std::vector<double> theta{0.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(op.resolve_angle({}, theta), -0.5);  // -0.5*3 + 1
  EXPECT_TRUE(op.is_symbolic());
  EXPECT_THROW(op.resolve_angle({}, {}), PreconditionError);
}

TEST(LowerSymbolic, RequiresThetaOnlyWhenBinding) {
  Circuit c(2);
  c.ry(0, trainable(0)).cx(0, 1);
  RoutedCircuit wrapped;
  wrapped.circuit = c;
  wrapped.final_mapping = {0, 1};
  EXPECT_THROW(lower_to_basis(wrapped, {}), PreconditionError);
  BasisOptions symbolic;
  symbolic.keep_trainable_symbolic = true;
  const PhysicalCircuit phys = lower_to_basis(wrapped, {}, symbolic);
  EXPECT_EQ(phys.num_trainable(), 1);
}

TEST_F(CompiledPureTest, ForwardMatchesLogicalAndBoundLowering) {
  for (int trial = 0; trial < 6; ++trial) {
    const int nq = 3 + trial % 3;
    const int num_inputs = 2;
    int num_trainable = 0;
    const Circuit c =
        random_param_circuit(rng(), nq, 14 + trial, num_inputs, num_trainable);
    const auto theta = random_vector(rng(), num_trainable);
    const auto x = random_vector(rng(), num_inputs, 0.0, kPi);

    const auto executor = build_pure_executor(c, all_qubits(nq));
    // One symbolic program: trainable slots survive the lowering.
    EXPECT_EQ(executor->num_trainable(),
              num_trainable > 0 ? num_trainable : 0);

    // Ground truth 1: the logical statevector walk.
    StateVector sv(nq);
    sv.run(c, theta, x);
    // Ground truth 2: the gate-by-gate physical replay of the same symbolic
    // circuit.
    const StateVector phys_ref = run_physical_pure(executor->circuit(), x, theta);

    const auto z = executor->run_z(x, theta);
    ASSERT_EQ(z.size(), static_cast<std::size_t>(nq));
    for (int q = 0; q < nq; ++q) {
      EXPECT_NEAR(z[static_cast<std::size_t>(q)], sv.expectation_z(q),
                  kAgreementTol)
          << "trial " << trial << " qubit " << q;
      EXPECT_NEAR(z[static_cast<std::size_t>(q)], phys_ref.expectation_z(q),
                  kAgreementTol)
          << "trial " << trial << " qubit " << q << " (physical reference)";
    }
  }
}

TEST_F(CompiledPureTest, LowerModelSymbolicMatchesBoundLowerModel) {
  // Through real routing: symbolic lowering + replay at theta must match the
  // theta-bound lowering (compression peephole active) slot for slot.
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  const TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits, CouplingMap::belem(), nullptr);
  for (int trial = 0; trial < 3; ++trial) {
    const auto theta = random_vector(rng(), model.num_params());
    const auto x = random_vector(rng(), model.num_inputs(), 0.0, kPi);

    const PhysicalCircuit bound = lower_model(transpiled, theta);
    const StateVector ref = run_physical_pure(bound, x);

    const PhysicalCircuit symbolic = lower_model_symbolic(transpiled);
    const PureExecutor executor(symbolic);
    const auto z = executor.run_z(x, theta);

    ASSERT_EQ(bound.readout_physical(), symbolic.readout_physical());
    ASSERT_EQ(z.size(), bound.readout_physical().size());
    for (std::size_t k = 0; k < z.size(); ++k) {
      EXPECT_NEAR(z[k],
                  ref.expectation_z(bound.readout_physical()[k]),
                  kAgreementTol)
          << "trial " << trial << " slot " << k;
    }
  }
}

TEST_F(CompiledPureTest, AdjointMatchesReferenceAdjoint) {
  for (int trial = 0; trial < 8; ++trial) {
    const int nq = 3 + trial % 3;
    const int num_inputs = 2;
    int num_trainable = 0;
    const Circuit c =
        random_param_circuit(rng(), nq, 16, num_inputs, num_trainable);
    if (num_trainable == 0) continue;
    const auto theta = random_vector(rng(), num_trainable);
    const auto x = random_vector(rng(), num_inputs, 0.0, kPi);
    const auto weights = random_vector(rng(), nq, -1.0, 1.0);

    const auto reference = adjoint_gradient(c, theta, x, weights);
    const auto executor = build_pure_executor(c, all_qubits(nq));
    const auto compiled =
        compiled_adjoint_gradient(executor->program(), theta, x, weights);

    ASSERT_EQ(compiled.z_expectations.size(), reference.z_expectations.size());
    for (int q = 0; q < nq; ++q) {
      EXPECT_NEAR(compiled.z_expectations[static_cast<std::size_t>(q)],
                  reference.z_expectations[static_cast<std::size_t>(q)],
                  kAgreementTol)
          << "trial " << trial << " qubit " << q;
    }
    ASSERT_EQ(compiled.gradients.size(), theta.size());
    for (std::size_t p = 0; p < theta.size(); ++p) {
      EXPECT_NEAR(compiled.gradients[p], reference.gradients[p], kAgreementTol)
          << "trial " << trial << " param " << p;
    }
  }
}

TEST_F(CompiledPureTest, AdjointMatchesParameterShift) {
  for (int trial = 0; trial < 3; ++trial) {
    const int nq = 3;
    int num_trainable = 0;
    const Circuit c = random_param_circuit(rng(), nq, 10, 1, num_trainable);
    if (num_trainable == 0) continue;
    const auto theta = random_vector(rng(), num_trainable);
    const std::vector<double> x{0.6};
    const auto weights = random_vector(rng(), nq, -1.0, 1.0);

    const auto shift = parameter_shift_gradient(c, theta, x, weights);
    const auto executor = build_pure_executor(c, all_qubits(nq));
    const auto compiled =
        compiled_adjoint_gradient(executor->program(), theta, x, weights);

    ASSERT_EQ(compiled.gradients.size(), shift.size());
    for (std::size_t p = 0; p < shift.size(); ++p) {
      EXPECT_NEAR(compiled.gradients[p], shift[p], 1e-8)
          << "trial " << trial << " param " << p;
    }
  }
}

TEST_F(CompiledPureTest, SharedParameterContributionsAccumulate) {
  // One trainable slot feeding two rotations: the chain rule sums the
  // per-occurrence contributions (the lowering also splits each controlled
  // rotation into a +-t/2 RZ pair internally, exercising the same path).
  Circuit c(2);
  c.ry(0, trainable(0)).cx(0, 1).rz(1, trainable(0)).cry(0, 1, trainable(1));
  const std::vector<double> theta{0.8, -1.3};
  const std::vector<double> weights{0.7, -0.4};

  const auto reference = adjoint_gradient(c, theta, {}, weights);
  const auto executor = build_pure_executor(c, all_qubits(2));
  const auto compiled =
      compiled_adjoint_gradient(executor->program(), theta, {}, weights);

  ASSERT_EQ(compiled.gradients.size(), 2u);
  EXPECT_NEAR(compiled.gradients[0], reference.gradients[0], kAgreementTol);
  EXPECT_NEAR(compiled.gradients[1], reference.gradients[1], kAgreementTol);
}

TEST_F(CompiledPureTest, TrailingTrainableRzIsElidedWithExactZeroGradient) {
  // A trainable RZ at the very end commutes with every Z observable: the
  // compiled program may drop it (drop_trailing_diagonal), but the gradient
  // vector must still carry its entry — exactly zero, as the reference
  // computes analytically.
  Circuit c(2);
  c.ry(0, trainable(0)).cx(0, 1).rz(1, trainable(1));
  const std::vector<double> theta{0.9, 2.1};
  const std::vector<double> weights{0.5, 1.0};

  const auto executor = build_pure_executor(c, all_qubits(2));
  EXPECT_GT(executor->program().stats().dropped_trailing, 0u);
  EXPECT_EQ(executor->num_trainable(), 2);

  const auto reference = adjoint_gradient(c, theta, {}, weights);
  const auto compiled =
      compiled_adjoint_gradient(executor->program(), theta, {}, weights);
  ASSERT_EQ(compiled.gradients.size(), 2u);
  EXPECT_NEAR(reference.gradients[1], 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(compiled.gradients[1], 0.0);
  EXPECT_NEAR(compiled.gradients[0], reference.gradients[0], kAgreementTol);
}

TEST_F(CompiledPureTest, BatchLossGradMatchesReference) {
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  const auto theta = random_vector(rng(), model.num_params());
  Dataset raw = make_seismic(32, 17);
  const Dataset data = FeatureScaler::fit(raw).transform(raw);
  std::vector<std::size_t> idx(data.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  const BatchGrad reference = batch_loss_grad(
      model.circuit, model.readout_qubits, theta, data, idx, 5.0);
  const auto executor = build_pure_executor(model.circuit, model.readout_qubits);
  const BatchGrad compiled = batch_loss_grad(*executor, theta, data, idx, 5.0);

  EXPECT_NEAR(compiled.loss, reference.loss, kAgreementTol);
  EXPECT_DOUBLE_EQ(compiled.accuracy, reference.accuracy);
  ASSERT_EQ(compiled.grad.size(), reference.grad.size());
  for (std::size_t p = 0; p < reference.grad.size(); ++p) {
    EXPECT_NEAR(compiled.grad[p], reference.grad[p], kAgreementTol)
        << "param " << p;
  }

  const BatchGrad ref_eval = batch_loss(model.circuit, model.readout_qubits,
                                        theta, data, idx, 5.0);
  const BatchGrad compiled_eval = batch_loss(*executor, theta, data, idx, 5.0);
  EXPECT_NEAR(compiled_eval.loss, ref_eval.loss, kAgreementTol);
  EXPECT_DOUBLE_EQ(compiled_eval.accuracy, ref_eval.accuracy);
}

TEST_F(CompiledPureTest, TrainerEnginesProduceTheSameTrajectory) {
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  Dataset raw = make_seismic(48, 3);
  const Dataset data = FeatureScaler::fit(raw).transform(raw);

  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 16;
  config.seed = 99;

  std::vector<double> theta_compiled = init_params(model, 5);
  std::vector<double> theta_reference = theta_compiled;

  config.engine = TrainEngine::kCompiled;
  const TrainResult compiled = train_model(model, theta_compiled, data, config);
  config.engine = TrainEngine::kReference;
  const TrainResult reference =
      train_model(model, theta_reference, data, config);

  ASSERT_EQ(compiled.epoch_losses.size(), reference.epoch_losses.size());
  for (std::size_t e = 0; e < compiled.epoch_losses.size(); ++e) {
    EXPECT_NEAR(compiled.epoch_losses[e], reference.epoch_losses[e], 1e-8)
        << "epoch " << e;
  }
  ASSERT_EQ(theta_compiled.size(), theta_reference.size());
  for (std::size_t p = 0; p < theta_compiled.size(); ++p) {
    EXPECT_NEAR(theta_compiled[p], theta_reference[p], 1e-8) << "param " << p;
  }
}

TEST_F(CompiledPureTest, CacheHitsAcrossThetaUpdatesWithoutStaleLogits) {
  // The regression model from PR 2: readout_qubits = {1, 3} — slot order is
  // positional, never qubit-id-indexed.
  QnnModel model = build_paper_model(4, 4, 2, 1);
  model.readout_qubits = {1, 3};

  CompiledEvalCache cache(8);
  const auto theta_a = random_vector(rng(), model.num_params());
  const auto theta_b = random_vector(rng(), model.num_params());
  const auto x = random_vector(rng(), model.num_inputs(), 0.0, kPi);

  const auto exec_a = cache.get_or_build_pure(model.circuit, model.readout_qubits);
  EXPECT_EQ(cache.stats().misses, 1u);
  const auto exec_b = cache.get_or_build_pure(model.circuit, model.readout_qubits);
  // Same structure + new theta = the SAME compiled program (hit): theta is
  // not part of the key because it stays symbolic.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(exec_a.get(), exec_b.get());

  // ...while results are recomputed per replay: no stale logits.
  const auto z_a = exec_b->run_z(x, theta_a);
  const auto z_b = exec_b->run_z(x, theta_b);
  ASSERT_EQ(z_a.size(), 2u);
  const std::vector<double> logits_a{
      forward_logits(model, theta_a, x)};
  const std::vector<double> logits_b{
      forward_logits(model, theta_b, x)};
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(z_a[k], logits_a[k], kAgreementTol) << "theta_a slot " << k;
    EXPECT_NEAR(z_b[k], logits_b[k], kAgreementTol) << "theta_b slot " << k;
  }
  EXPECT_GT(std::abs(z_a[0] - z_b[0]) + std::abs(z_a[1] - z_b[1]), 1e-6)
      << "distinct thetas should produce distinct logits";

  // A different structure (different readout slots) is a different entry.
  const auto exec_c = cache.get_or_build_pure(model.circuit, {0, 2});
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_NE(exec_a.get(), exec_c.get());
}

}  // namespace
}  // namespace qucad
