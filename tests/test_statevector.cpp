#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "linalg/gates.hpp"
#include "sim/statevector.hpp"

#include "test_support.hpp"

namespace qucad {
namespace {

constexpr double kTol = test::kTightTol;

TEST(StateVector, StartsInZero) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx{1, 0}), 0.0, kTol);
  EXPECT_NEAR(sv.norm(), 1.0, kTol);
  EXPECT_DOUBLE_EQ(sv.expectation_z(0), 1.0);
}

TEST(StateVector, HadamardMakesPlus) {
  StateVector sv(1);
  sv.apply1(0, as_array2(gates::H()));
  EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1.0 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 1.0 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(sv.expectation_z(0), 0.0, kTol);
}

TEST(StateVector, BellState) {
  StateVector sv(2);
  Circuit c(2);
  c.h(0).cx(0, 1);
  sv.run(c);
  EXPECT_NEAR(std::abs(sv.amplitudes()[0]), 1.0 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[3]), 1.0 / std::sqrt(2.0), kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[1]), 0.0, kTol);
  EXPECT_NEAR(std::abs(sv.amplitudes()[2]), 0.0, kTol);
}

TEST(StateVector, RyExpectationClosedForm) {
  // <Z> after RY(theta)|0> is cos(theta).
  for (double theta : {0.0, 0.4, 1.1, 2.7, -0.9}) {
    StateVector sv(1);
    Circuit c(1);
    c.ry(0, theta);
    sv.run(c);
    EXPECT_NEAR(sv.expectation_z(0), std::cos(theta), 1e-10) << theta;
  }
}

TEST(StateVector, RxExpectationClosedForm) {
  for (double theta : {0.3, 1.8, -1.2}) {
    StateVector sv(1);
    Circuit c(1);
    c.rx(0, theta);
    sv.run(c);
    EXPECT_NEAR(sv.expectation_z(0), std::cos(theta), 1e-10);
  }
}

TEST(StateVector, RzFastPathMatchesMatrix) {
  StateVector fast(2), slow(2);
  Circuit prep(2);
  prep.h(0).h(1);
  fast.run(prep);
  slow.run(prep);

  Gate rz{GateKind::RZ, 1, -1, ParamRef{}, 0.0};
  fast.apply_gate(rz, 0.77);
  slow.apply1(1, as_array2(gates::RZ(0.77)));
  test::expect_amplitudes_near(fast.amplitudes(), slow.amplitudes(), kTol);
}

TEST(StateVector, CxFastPathMatchesMatrix) {
  StateVector fast(3), slow(3);
  Circuit prep(3);
  prep.h(0).ry(1, 0.8).rx(2, 1.3);
  fast.run(prep);
  slow.run(prep);

  Gate cx{GateKind::CX, 2, 0, ParamRef{}, 0.0};
  fast.apply_gate(cx, 0.0);
  slow.apply2(2, 0, as_array4(gates::CX()));
  test::expect_amplitudes_near(fast.amplitudes(), slow.amplitudes(), kTol);
}

TEST(StateVector, FastPathsValidateQubitRange) {
  // Regression: the CX/RZ fast paths in apply_gate used to skip the range
  // checks apply1/apply2 enforce, so an invalid gate shifted past the
  // amplitude buffer and corrupted memory instead of throwing.
  StateVector sv(2);
  EXPECT_THROW(sv.apply_gate(Gate{GateKind::CX, 0, 2, ParamRef{}, 0.0}, 0.0),
               PreconditionError);
  EXPECT_THROW(sv.apply_gate(Gate{GateKind::CX, -1, 1, ParamRef{}, 0.0}, 0.0),
               PreconditionError);
  EXPECT_THROW(sv.apply_gate(Gate{GateKind::CX, 1, 1, ParamRef{}, 0.0}, 0.0),
               PreconditionError);
  EXPECT_THROW(sv.apply_gate(Gate{GateKind::RZ, 2, -1, ParamRef{}, 0.0}, 0.4),
               PreconditionError);
  EXPECT_THROW(sv.apply_gate(Gate{GateKind::RZ, -1, -1, ParamRef{}, 0.0}, 0.4),
               PreconditionError);
  // Valid gates still pass through the fast paths untouched.
  sv.apply_gate(Gate{GateKind::RZ, 1, -1, ParamRef{}, 0.0}, 0.4);
  sv.apply_gate(Gate{GateKind::CX, 0, 1, ParamRef{}, 0.0}, 0.0);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVector, ControlledRotationRespectsControl) {
  // Control |0>: CRY acts as identity.
  {
    StateVector sv(2);
    Circuit c(2);
    c.cry(0, 1, 1.3);
    sv.run(c);
    EXPECT_NEAR(std::abs(sv.amplitudes()[0] - cplx{1, 0}), 0.0, kTol);
  }
  // Control |1>: target rotates by theta.
  {
    StateVector sv(2);
    Circuit c(2);
    c.x(0).cry(0, 1, 1.3);
    sv.run(c);
    EXPECT_NEAR(sv.expectation_z(1), std::cos(1.3), 1e-10);
    EXPECT_NEAR(sv.expectation_z(0), -1.0, 1e-10);
  }
}

TEST(StateVector, QubitOrderingConvention) {
  // X on qubit 2 flips bit 2 -> basis state 4.
  StateVector sv(3);
  Circuit c(3);
  c.x(2);
  sv.run(c);
  EXPECT_NEAR(std::abs(sv.amplitudes()[4] - cplx{1, 0}), 0.0, kTol);
}

TEST(StateVector, NormPreservedThroughDeepCircuit) {
  StateVector sv(4);
  Circuit c(4);
  for (int layer = 0; layer < 5; ++layer) {
    for (int q = 0; q < 4; ++q) {
      c.ry(q, 0.1 * (layer + 1) * (q + 1));
      c.rz(q, -0.2 * (q + 1));
    }
    for (int q = 0; q < 4; ++q) c.cry(q, (q + 1) % 4, 0.3 * (q + 1));
  }
  sv.run(c);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(StateVector, RunWithSymbolicParameters) {
  Circuit c(2);
  c.ry(0, trainable(0)).rz(1, input(0)).cry(0, 1, trainable(1));
  const std::vector<double> theta{0.9, 0.4};
  const std::vector<double> x{1.1};

  StateVector symbolic(2);
  symbolic.run(c, theta, x);

  StateVector literal(2);
  Circuit bound = c.bind(theta, x);
  literal.run(bound);

  for (std::size_t i = 0; i < symbolic.dim(); ++i) {
    EXPECT_NEAR(std::abs(symbolic.amplitudes()[i] - literal.amplitudes()[i]),
                0.0, kTol);
  }
}

TEST(StateVector, ProbabilitiesSumToOne) {
  StateVector sv(3);
  Circuit c(3);
  c.h(0).cx(0, 1).ry(2, 0.6).crz(1, 2, 1.2);
  sv.run(c);
  const auto probs = sv.probabilities();
  double total = 0.0;
  for (double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StateVector, SetBasisState) {
  StateVector sv(2);
  sv.set_basis_state(2);
  EXPECT_DOUBLE_EQ(sv.expectation_z(1), -1.0);
  EXPECT_DOUBLE_EQ(sv.expectation_z(0), 1.0);
  EXPECT_THROW(sv.set_basis_state(4), PreconditionError);
}

TEST(StateVector, SwapGate) {
  StateVector sv(2);
  Circuit c(2);
  c.x(0).swap(0, 1);
  sv.run(c);
  EXPECT_DOUBLE_EQ(sv.expectation_z(0), 1.0);
  EXPECT_DOUBLE_EQ(sv.expectation_z(1), -1.0);
}

}  // namespace
}  // namespace qucad
