// Contract tests of the pluggable execution-backend API (src/backend/):
// config validation, capability flags, registry dispatch equivalence with
// the direct NoisyExecutor / PureExecutor paths (1e-10), the sampled
// backend's seeded determinism + shots->inf convergence to the pure logits
// + hand-computed readout-error application, and the config threading
// through evaluator / trainer / harness / serving.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "backend/registry.hpp"
#include "backend/sampled_backend.hpp"
#include "core/strategies.hpp"
#include "data/seismic_synth.hpp"
#include "eval/harness.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/eval_cache.hpp"
#include "qnn/evaluator.hpp"
#include "qnn/trainer.hpp"
#include "serve/inference_service.hpp"
#include "test_support.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {
namespace {

using test::kAgreementTol;

/// Small but real evaluation configuration: the 4-qubit paper model routed
/// on belem with a drifting calibration and a seeded theta.
struct BackendFixture {
  CalibrationHistory history{FluctuationScenario::belem(), 5, 4242};
  QnnModel model = build_paper_model(4, 4, 2, 1);
  std::vector<double> theta = init_params(model, 11);
  TranspiledModel transpiled =
      transpile_model(model.circuit, model.readout_qubits, CouplingMap::belem(),
                      &history.day(0));
  Dataset data;

  BackendFixture() {
    Dataset raw = make_seismic(24, 5);
    data = FeatureScaler::fit(raw).transform(raw);
  }

  BackendContext context() const {
    BackendContext c;
    c.model = &model;
    c.transpiled = &transpiled;
    c.theta = theta;
    c.calibration = &history.day(0);
    return c;
  }
};

std::shared_ptr<const ExecutionBackend> must_make(const BackendConfig& config,
                                                  const BackendContext& context) {
  StatusOr<std::shared_ptr<const ExecutionBackend>> backend =
      make_backend(config, context);
  EXPECT_TRUE(backend.ok()) << backend.status().to_string();
  return *backend;
}

TEST(BackendConfig, ValidatesKnobCombinations) {
  EXPECT_TRUE(BackendConfig().validate().ok());
  EXPECT_TRUE(BackendConfig()
                  .with_kind(BackendKind::kSampled)
                  .with_shots(1024)
                  .validate()
                  .ok());
  // Unseeded sampling is allowed only when determinism is explicitly waived.
  EXPECT_TRUE(BackendConfig()
                  .with_kind(BackendKind::kSampled)
                  .with_shots(64)
                  .with_deterministic(false)
                  .with_seed(std::nullopt)
                  .validate()
                  .ok());

  EXPECT_EQ(BackendConfig().with_shots(-1).validate().code(),
            StatusCode::kInvalidArgument);
  // Shots on the expectation kinds are inconsistent by construction.
  EXPECT_EQ(BackendConfig().with_shots(100).validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BackendConfig()
                .with_kind(BackendKind::kPureStatevector)
                .with_shots(100)
                .validate()
                .code(),
            StatusCode::kInvalidArgument);
  // A sampling backend without a shot budget cannot produce logits.
  EXPECT_EQ(BackendConfig().with_kind(BackendKind::kSampled).validate().code(),
            StatusCode::kInvalidArgument);
  // Determinism requested but no seed to derive the stream from.
  EXPECT_EQ(BackendConfig()
                .with_kind(BackendKind::kSampled)
                .with_shots(64)
                .with_seed(std::nullopt)
                .validate()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(BackendConfig, KindCapabilities) {
  const BackendCapabilities& density =
      backend_kind_capabilities(BackendKind::kDensityNoisy);
  EXPECT_TRUE(density.models_noise);
  EXPECT_TRUE(density.readout_error);
  EXPECT_FALSE(density.gradients);

  const BackendCapabilities& pure =
      backend_kind_capabilities(BackendKind::kPureStatevector);
  EXPECT_FALSE(pure.models_noise);
  EXPECT_TRUE(pure.gradients);
  EXPECT_FALSE(pure.finite_shots);

  const BackendCapabilities& sampled =
      backend_kind_capabilities(BackendKind::kSampled);
  EXPECT_FALSE(sampled.models_noise);
  EXPECT_TRUE(sampled.finite_shots);
  EXPECT_TRUE(sampled.readout_error);
  EXPECT_FALSE(sampled.gradients);
}

TEST(BackendRegistry, DensityDispatchMatchesDirectExecutor) {
  const BackendFixture fx;
  const std::shared_ptr<const ExecutionBackend> backend =
      must_make(BackendConfig{}, fx.context());
  EXPECT_EQ(backend->kind(), BackendKind::kDensityNoisy);
  EXPECT_TRUE(backend->capabilities().models_noise);

  const std::shared_ptr<const NoisyExecutor> direct = build_noisy_executor(
      fx.model, fx.transpiled, fx.theta, fx.history.day(0), {});
  for (std::size_t i = 0; i < 4; ++i) {
    const std::vector<double> via_registry =
        backend->run_logits(fx.data.features[i]);
    const std::vector<double> via_executor = direct->run_z(fx.data.features[i]);
    ASSERT_EQ(via_registry.size(), via_executor.size());
    for (std::size_t k = 0; k < via_registry.size(); ++k) {
      EXPECT_NEAR(via_registry[k], via_executor[k], kAgreementTol)
          << "sample " << i << " slot " << k;
    }
  }

  // The fused batch path is the same sweep the executor runs directly.
  const auto batch_registry = backend->run_logits_batch(fx.data.features);
  const auto batch_executor = direct->run_z_batch(fx.data.features);
  ASSERT_EQ(batch_registry.size(), batch_executor.size());
  for (std::size_t i = 0; i < batch_registry.size(); ++i) {
    for (std::size_t k = 0; k < batch_registry[i].size(); ++k) {
      EXPECT_NEAR(batch_registry[i][k], batch_executor[i][k], kAgreementTol);
    }
  }

  const BackendDiagnostics diag = backend->diagnostics();
  EXPECT_EQ(diag.kind, BackendKind::kDensityNoisy);
  EXPECT_GT(diag.compiled_ops, 0u);
  EXPECT_EQ(diag.num_qubits, direct->circuit().num_qubits());
}

TEST(BackendRegistry, DensityLegacyShotsMatchExecutorShotPath) {
  const BackendFixture fx;
  BackendContext context = fx.context();
  context.density_shots = 64;
  context.density_shot_seed = 7;
  const std::shared_ptr<const ExecutionBackend> backend =
      must_make(BackendConfig{}, context);
  EXPECT_TRUE(backend->capabilities().finite_shots);

  const std::shared_ptr<const NoisyExecutor> direct = build_noisy_executor(
      fx.model, fx.transpiled, fx.theta, fx.history.day(0), {});
  const auto via_registry = backend->run_logits_batch(fx.data.features);
  const auto via_executor = direct->run_z_batch(fx.data.features, 64, 7);
  ASSERT_EQ(via_registry.size(), via_executor.size());
  for (std::size_t i = 0; i < via_registry.size(); ++i) {
    EXPECT_EQ(via_registry[i], via_executor[i]) << "sample " << i;
  }
}

TEST(BackendRegistry, PureDispatchMatchesDirectExecutor) {
  const BackendFixture fx;
  const std::shared_ptr<const ExecutionBackend> backend = must_make(
      BackendConfig().with_kind(BackendKind::kPureStatevector), fx.context());
  EXPECT_EQ(backend->kind(), BackendKind::kPureStatevector);

  const std::shared_ptr<const PureExecutor> direct =
      build_pure_executor(fx.model.circuit, fx.model.readout_qubits);
  for (std::size_t i = 0; i < 4; ++i) {
    const std::vector<double> via_registry =
        backend->run_logits(fx.data.features[i]);
    const std::vector<double> via_executor =
        direct->run_z(fx.data.features[i], fx.theta);
    ASSERT_EQ(via_registry.size(), via_executor.size());
    for (std::size_t k = 0; k < via_registry.size(); ++k) {
      EXPECT_NEAR(via_registry[k], via_executor[k], kAgreementTol)
          << "sample " << i << " slot " << k;
    }
  }
}

TEST(BackendRegistry, DensityNarrowsReadoutCapabilityWhenDisabled) {
  const BackendFixture fx;
  BackendContext context = fx.context();
  EXPECT_TRUE(must_make(BackendConfig{}, context)->capabilities().readout_error);
  context.noise.include_readout_error = false;
  EXPECT_FALSE(
      must_make(BackendConfig{}, context)->capabilities().readout_error);
}

TEST(BackendRegistry, ReportsMissingContext) {
  const BackendFixture fx;
  BackendContext context = fx.context();
  context.calibration = nullptr;
  const auto backend = make_backend(BackendConfig{}, context);
  EXPECT_FALSE(backend.ok());
  EXPECT_EQ(backend.status().code(), StatusCode::kInvalidArgument);

  BackendContext no_model;
  EXPECT_FALSE(
      make_backend(BackendConfig().with_kind(BackendKind::kPureStatevector),
                   no_model)
          .ok());
}

TEST(BackendRegistry, CustomFactoryOverrides) {
  /// Stand-in for a future remote/hardware backend: fixed logits.
  class StubBackend final : public ExecutionBackend {
   public:
    BackendKind kind() const override { return BackendKind::kPureStatevector; }
    const BackendCapabilities& capabilities() const override {
      return backend_kind_capabilities(BackendKind::kPureStatevector);
    }
    BackendDiagnostics diagnostics() const override {
      BackendDiagnostics d;
      d.name = "stub";
      return d;
    }
    std::vector<double> run_logits(std::span<const double>) const override {
      return {0.25, -0.75};
    }
  };

  BackendRegistry registry;  // local: the global registry stays pristine
  registry.register_factory(
      BackendKind::kPureStatevector,
      [](const BackendConfig&, const BackendContext&)
          -> StatusOr<std::shared_ptr<const ExecutionBackend>> {
        return std::shared_ptr<const ExecutionBackend>(
            std::make_shared<const StubBackend>());
      });

  const BackendFixture fx;
  const auto backend = registry.make(
      BackendConfig().with_kind(BackendKind::kPureStatevector), fx.context());
  ASSERT_TRUE(backend.ok());
  EXPECT_EQ((*backend)->diagnostics().name, "stub");
  EXPECT_EQ((*backend)->run_logits(fx.data.features[0])[1], -0.75);

  // A brand-new kind beyond the built-in enumerators: the table grows on
  // demand, and an unregistered kind is a Status, not an abort.
  const BackendKind custom = static_cast<BackendKind>(7);
  EXPECT_FALSE(
      registry.make(BackendConfig().with_kind(custom), fx.context()).ok());
  registry.register_factory(
      custom,
      [](const BackendConfig&, const BackendContext&)
          -> StatusOr<std::shared_ptr<const ExecutionBackend>> {
        return std::shared_ptr<const ExecutionBackend>(
            std::make_shared<const StubBackend>());
      });
  EXPECT_TRUE(
      registry.make(BackendConfig().with_kind(custom), fx.context()).ok());
}

TEST(BackendRegistry, RejectsLegacyDensityShotsOnNonDensityKinds) {
  // The chokepoint guard: no backend path may silently drop a caller's
  // legacy shot request.
  const BackendFixture fx;
  BackendContext context = fx.context();
  context.density_shots = 32;
  const auto backend = make_backend(
      BackendConfig().with_kind(BackendKind::kPureStatevector), context);
  ASSERT_FALSE(backend.ok());
  EXPECT_EQ(backend.status().code(), StatusCode::kInvalidArgument);
}

TEST(BackendRegistry, SampledReportsUncoveredReadoutAsStatus) {
  // A calibration narrower than a routed readout qubit must come back as a
  // Status through the registry's no-throw path, never as an exception.
  QnnModel model;
  model.circuit = Circuit(3);
  model.circuit.x(2);
  model.num_classes = 2;
  model.readout_qubits = {0, 2};
  Calibration narrow(2, {});

  BackendContext context;
  context.model = &model;
  context.calibration = &narrow;
  const auto backend = make_backend(
      BackendConfig().with_kind(BackendKind::kSampled).with_shots(16), context);
  ASSERT_FALSE(backend.ok());
  EXPECT_EQ(backend.status().code(), StatusCode::kInvalidArgument);
}

TEST(SampledBackend, DeterministicUnderFixedSeed) {
  const BackendFixture fx;
  const BackendConfig config =
      BackendConfig().with_kind(BackendKind::kSampled).with_shots(256).with_seed(
          std::uint64_t{5});
  const auto a = must_make(config, fx.context());
  const auto b = must_make(config, fx.context());

  const auto batch_a = a->run_logits_batch(fx.data.features);
  const auto batch_b = b->run_logits_batch(fx.data.features);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (std::size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_EQ(batch_a[i], batch_b[i]) << "sample " << i;  // bitwise
  }
  // Single-sample replay equals slot 0 of the batch (seed + 0 convention).
  EXPECT_EQ(a->run_logits(fx.data.features[0]), batch_a[0]);

  const auto c = must_make(
      BackendConfig(config).with_seed(std::uint64_t{6}), fx.context());
  EXPECT_NE(c->run_logits_batch(fx.data.features), batch_a)
      << "a different seed must draw a different shot stream";

  // Caller-seeded instances advertise determinism; an entropy-seeded one
  // narrows the capability (it cannot reproduce across builds).
  EXPECT_TRUE(a->capabilities().deterministic);
  const auto unseeded = must_make(BackendConfig(config)
                                      .with_deterministic(false)
                                      .with_seed(std::nullopt),
                                  fx.context());
  EXPECT_FALSE(unseeded->capabilities().deterministic);
}

TEST(SampledBackend, ConvergesToPureLogitsAsShotsGrow) {
  const BackendFixture fx;
  // Confusion-free context: convergence target is the exact pure logits.
  BackendContext context = fx.context();
  context.noise.include_readout_error = false;

  const auto pure = must_make(
      BackendConfig().with_kind(BackendKind::kPureStatevector), context);
  const std::vector<double> exact = pure->run_logits(fx.data.features[0]);

  // Tolerance schedule: 5 standard deviations of the worst-case shot noise
  // (sigma <= 1/sqrt(shots) per <Z> estimate). Deterministic under the
  // fixed seed, so this never flakes.
  double previous_worst = 2.0;
  for (const int shots : {1000, 10000, 100000}) {
    const auto sampled = must_make(BackendConfig()
                                       .with_kind(BackendKind::kSampled)
                                       .with_shots(shots)
                                       .with_seed(std::uint64_t{12}),
                                   context);
    EXPECT_FALSE(sampled->capabilities().readout_error);
    const std::vector<double> estimate =
        sampled->run_logits(fx.data.features[0]);
    ASSERT_EQ(estimate.size(), exact.size());
    const double tolerance = 5.0 / std::sqrt(static_cast<double>(shots));
    double worst = 0.0;
    for (std::size_t k = 0; k < exact.size(); ++k) {
      worst = std::max(worst, std::abs(estimate[k] - exact[k]));
      EXPECT_NEAR(estimate[k], exact[k], tolerance)
          << "shots=" << shots << " slot " << k;
    }
    EXPECT_LT(worst, previous_worst * 1.5)
        << "error must not blow up as shots grow (shots=" << shots << ")";
    previous_worst = std::max(worst, 1e-6);
  }
}

TEST(SampledBackend, AppliesReadoutErrorHandComputedCase) {
  // Deterministic 2-qubit state |01> (qubit 0 flipped to 1): the sampled
  // bit of qubit 0 is always 1 and of qubit 1 always 0 before confusion, so
  // the confused expectations are closed-form:
  //   E[Z_0] = -(1 - p0|1) + p0|1 = 2*p0|1 - 1 = -0.6
  //   E[Z_1] = (1 - p1|0) - p1|0 = 1 - 2*p1|0 = 0.9
  QnnModel model;
  model.circuit = Circuit(2);
  model.circuit.x(0);
  model.num_classes = 2;
  model.readout_qubits = {0, 1};

  Calibration calib(2, {});
  calib.set_readout(0, ReadoutError{0.1, 0.2});
  calib.set_readout(1, ReadoutError{0.05, 0.3});

  BackendContext context;
  context.model = &model;
  context.calibration = &calib;

  const auto sampled = must_make(BackendConfig()
                                     .with_kind(BackendKind::kSampled)
                                     .with_shots(200000)
                                     .with_seed(std::uint64_t{3}),
                                 context);
  EXPECT_TRUE(sampled->capabilities().readout_error);
  const std::vector<double> z = sampled->run_logits(std::vector<double>{});
  ASSERT_EQ(z.size(), 2u);
  // 200k shots: sigma < 0.0023 per slot; 0.01 is > 4 sigma.
  EXPECT_NEAR(z[0], -0.6, 0.01);
  EXPECT_NEAR(z[1], 0.9, 0.01);

  // The same configuration with confusion disabled reads the true bits.
  context.noise.include_readout_error = false;
  const auto clean = must_make(BackendConfig()
                                   .with_kind(BackendKind::kSampled)
                                   .with_shots(128)
                                   .with_seed(std::uint64_t{3}),
                               context);
  const std::vector<double> exact_bits = clean->run_logits(std::vector<double>{});
  EXPECT_DOUBLE_EQ(exact_bits[0], -1.0);
  EXPECT_DOUBLE_EQ(exact_bits[1], 1.0);
}

TEST(BackendThreading, EvaluatorDispatchesConfiguredBackend) {
  const BackendFixture fx;

  // Pure backend through the evaluator == the noise-free evaluator path.
  NoisyEvalOptions pure_options;
  pure_options.backend.kind = BackendKind::kPureStatevector;
  const double via_eval =
      noisy_accuracy(fx.model, fx.transpiled, fx.theta, fx.data,
                     fx.history.day(0), pure_options);
  EXPECT_DOUBLE_EQ(via_eval, noise_free_accuracy(fx.model, fx.theta, fx.data));

  // Sampled backend evaluates end to end and is deterministic.
  NoisyEvalOptions sampled_options;
  sampled_options.backend =
      BackendConfig().with_kind(BackendKind::kSampled).with_shots(512);
  const NoisyEvalResult a = noisy_evaluate(fx.model, fx.transpiled, fx.theta,
                                           fx.data, fx.history.day(0),
                                           sampled_options);
  const NoisyEvalResult b = noisy_evaluate(fx.model, fx.transpiled, fx.theta,
                                           fx.data, fx.history.day(0),
                                           sampled_options);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_GE(a.accuracy, 0.0);
  EXPECT_LE(a.accuracy, 1.0);

  // Legacy density shot knob + non-density backend is rejected, not mixed.
  NoisyEvalOptions conflicting = sampled_options;
  conflicting.shots = 32;
  const auto status = noisy_evaluate_or(fx.model, fx.transpiled, fx.theta,
                                        fx.data, fx.history.day(0), conflicting);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kInvalidArgument);

  // An invalid backend config surfaces as a Status, not an abort.
  NoisyEvalOptions invalid;
  invalid.backend.kind = BackendKind::kSampled;  // shots == 0
  EXPECT_FALSE(noisy_evaluate_or(fx.model, fx.transpiled, fx.theta, fx.data,
                                 fx.history.day(0), invalid)
                   .ok());
}

TEST(BackendThreading, HarnessBackendOverride) {
  const BackendFixture fx;
  Environment env;
  env.model = fx.model;
  env.transpiled = fx.transpiled;
  env.theta_pretrained = fx.theta;
  env.train = fx.data;
  env.test = fx.data;

  BaselineStrategy strategy(env);
  HarnessOptions options;
  options.backend = BackendConfig().with_kind(BackendKind::kPureStatevector);
  const MethodResult result = run_longitudinal(
      strategy, env, {}, {fx.history.day(0), fx.history.day(1)}, options);
  ASSERT_EQ(result.daily_accuracy.size(), 2u);
  const double noise_free = noise_free_accuracy(fx.model, fx.theta, fx.data);
  // The noise-free regime is calibration-independent: every day equals the
  // pure accuracy exactly.
  EXPECT_DOUBLE_EQ(result.daily_accuracy[0], noise_free);
  EXPECT_DOUBLE_EQ(result.daily_accuracy[1], noise_free);
}

TEST(BackendThreading, TrainerRejectsNonGradientBackend) {
  const BackendFixture fx;
  std::vector<double> theta = fx.theta;
  TrainConfig config;
  config.epochs = 1;
  config.backend.kind = BackendKind::kDensityNoisy;
  EXPECT_THROW(train_model(fx.model, theta, fx.data, config),
               PreconditionError);

  config.backend.kind = BackendKind::kSampled;
  config.backend.shots = 64;
  EXPECT_THROW(train_model(fx.model, theta, fx.data, config),
               PreconditionError);
}

TEST(BackendThreading, ServiceConfigValidatesBackendCombinations) {
  // Backend config errors propagate through ServiceConfig::validate.
  EXPECT_EQ(ServiceConfig()
                .with_backend(BackendConfig().with_kind(BackendKind::kSampled))
                .validate()
                .code(),
            StatusCode::kInvalidArgument);
  // Legacy density shots with a non-density backend is inconsistent.
  EXPECT_EQ(ServiceConfig()
                .with_backend(BackendConfig()
                                  .with_kind(BackendKind::kSampled)
                                  .with_shots(128))
                .with_shots(64)
                .validate()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(ServiceConfig()
                  .with_backend(BackendConfig()
                                    .with_kind(BackendKind::kSampled)
                                    .with_shots(128))
                  .validate()
                  .ok());
}

TEST(BackendThreading, ServingOnSampledBackendReportsKind) {
  const BackendFixture fx;
  Environment env;
  env.model = fx.model;
  env.transpiled = fx.transpiled;
  env.theta_pretrained = fx.theta;
  env.train = fx.data;

  ServiceConfig config = ServiceConfig::from_environment(env).with_backend(
      BackendConfig().with_kind(BackendKind::kSampled).with_shots(256));
  StatusOr<InferenceService> service =
      InferenceService::create(env, {}, fx.history.day(0), config);
  ASSERT_TRUE(service.ok()) << service.status().to_string();

  const auto first = service->submit_batch(fx.data.features);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  for (const Prediction& p : *first) {
    EXPECT_EQ(p.backend, BackendKind::kSampled);
    EXPECT_EQ(p.epoch, 1u);
  }
  // Identical batch layout + fixed seed: sampled serving is reproducible.
  const auto second = service->submit_batch(fx.data.features);
  ASSERT_TRUE(second.ok());
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].logits, (*second)[i].logits) << "sample " << i;
  }

  // The default service keeps reporting the density regime.
  StatusOr<InferenceService> density =
      InferenceService::create(env, {}, fx.history.day(0));
  ASSERT_TRUE(density.ok());
  const auto prediction = density->submit(fx.data.features[0]);
  ASSERT_TRUE(prediction.ok());
  EXPECT_EQ(prediction->backend, BackendKind::kDensityNoisy);
}

}  // namespace
}  // namespace qucad
