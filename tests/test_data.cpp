#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "data/iris_synth.hpp"
#include "data/mnist_synth.hpp"
#include "data/seismic_synth.hpp"
#include "data/vibration_synth.hpp"

namespace qucad {
namespace {

TEST(Dataset, SubsetAndTake) {
  Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < 10; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(i % 2);
  }
  const Dataset sub = d.subset({1, 3, 5});
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_DOUBLE_EQ(sub.features[2][0], 5.0);
  const Dataset head = d.take(4);
  EXPECT_EQ(head.size(), 4u);
  EXPECT_THROW(d.subset({99}), PreconditionError);
}

TEST(Dataset, SplitPreservesOrderWithoutShuffle) {
  Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < 100; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(i % 2);
  }
  const TrainTestSplit split = split_dataset(d, 0.1);
  EXPECT_EQ(split.train.size(), 90u);
  EXPECT_EQ(split.test.size(), 10u);
  EXPECT_DOUBLE_EQ(split.train.features[0][0], 0.0);
  EXPECT_DOUBLE_EQ(split.test.features[0][0], 90.0);
}

TEST(Dataset, SplitOfTinyDatasetKeepsBothPartitionsNonEmpty) {
  // Rounding used to hand tiny datasets an empty partition (3 samples at
  // fraction 0.1 -> test_count 0; at 0.9 -> train_count 0), which only blew
  // up later as "empty evaluation set". The split must clamp instead.
  Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < 3; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(i % 2);
  }
  const TrainTestSplit low = split_dataset(d, 0.1);
  EXPECT_EQ(low.train.size(), 2u);
  EXPECT_EQ(low.test.size(), 1u);
  const TrainTestSplit high = split_dataset(d, 0.9);
  EXPECT_EQ(high.train.size(), 1u);
  EXPECT_EQ(high.test.size(), 2u);

  Dataset two;
  two.num_classes = 2;
  two.features = {{0.0}, {1.0}};
  two.labels = {0, 1};
  const TrainTestSplit pair = split_dataset(two, 0.5);
  EXPECT_EQ(pair.train.size(), 1u);
  EXPECT_EQ(pair.test.size(), 1u);
}

TEST(Dataset, SplitRejectsDatasetsTooSmallToPartition) {
  Dataset one;
  one.num_classes = 2;
  one.features = {{0.0}};
  one.labels = {0};
  EXPECT_THROW(split_dataset(one, 0.5), PreconditionError);
  Dataset empty;
  EXPECT_THROW(split_dataset(empty, 0.5), PreconditionError);
}

TEST(Dataset, ShuffledSplitIsDeterministicPerSeed) {
  Dataset d;
  d.num_classes = 2;
  for (int i = 0; i < 50; ++i) {
    d.features.push_back({static_cast<double>(i)});
    d.labels.push_back(i % 2);
  }
  const auto a = split_dataset(d, 0.2, 7, true);
  const auto b = split_dataset(d, 0.2, 7, true);
  EXPECT_EQ(a.train.features, b.train.features);
  const auto c = split_dataset(d, 0.2, 8, true);
  EXPECT_NE(a.train.features, c.train.features);
}

TEST(FeatureScaler, MapsTrainRangeToAngles) {
  Dataset d;
  d.num_classes = 2;
  d.features = {{0.0, -5.0}, {10.0, 5.0}, {5.0, 0.0}};
  d.labels = {0, 1, 0};
  const FeatureScaler scaler = FeatureScaler::fit(d, 0.0, M_PI);
  const Dataset scaled = scaler.transform(d);
  EXPECT_DOUBLE_EQ(scaled.features[0][0], 0.0);
  EXPECT_DOUBLE_EQ(scaled.features[1][0], M_PI);
  EXPECT_DOUBLE_EQ(scaled.features[2][0], M_PI / 2.0);
  EXPECT_DOUBLE_EQ(scaled.features[2][1], M_PI / 2.0);
}

TEST(FeatureScaler, ClampsOutOfRangeTestValues) {
  Dataset train;
  train.num_classes = 2;
  train.features = {{0.0}, {1.0}};
  train.labels = {0, 1};
  const FeatureScaler scaler = FeatureScaler::fit(train, 0.0, 1.0);
  Dataset test = train;
  test.features = {{-5.0}, {7.0}};
  const Dataset scaled = scaler.transform(test);
  EXPECT_DOUBLE_EQ(scaled.features[0][0], 0.0);
  EXPECT_DOUBLE_EQ(scaled.features[1][0], 1.0);
}

TEST(FeatureScaler, DegenerateDimensionDoesNotDivideByZero) {
  Dataset d;
  d.num_classes = 2;
  d.features = {{3.0}, {3.0}};
  d.labels = {0, 1};
  const FeatureScaler scaler = FeatureScaler::fit(d);
  const Dataset scaled = scaler.transform(d);
  EXPECT_TRUE(std::isfinite(scaled.features[0][0]));
}

TEST(AccuracyScore, CountsMatches) {
  EXPECT_DOUBLE_EQ(accuracy_score({0, 1, 1, 0}, {0, 1, 0, 0}), 0.75);
  EXPECT_THROW(accuracy_score({0}, {0, 1}), PreconditionError);
}

TEST(Mnist4, ShapeAndDeterminism) {
  const Dataset a = make_mnist4(200, 3);
  EXPECT_EQ(a.size(), 200u);
  EXPECT_EQ(a.num_features(), 16u);
  EXPECT_EQ(a.num_classes, 4);
  const Dataset b = make_mnist4(200, 3);
  EXPECT_EQ(a.features, b.features);
  const Dataset c = make_mnist4(200, 4);
  EXPECT_NE(a.features, c.features);
}

TEST(Mnist4, BalancedClassesAndPixelRange) {
  const Dataset d = make_mnist4(400, 5);
  const auto counts = d.class_counts();
  for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(counts[c], 100u);
  for (const auto& row : d.features) {
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(Mnist4, ClassesAreDistinguishable) {
  // Nearest-prototype accuracy on clean means should beat chance by a lot.
  const Dataset d = make_mnist4(400, 7);
  // Compute class means from the first half, classify the second half.
  std::vector<std::vector<double>> means(4, std::vector<double>(16, 0.0));
  std::vector<int> counts(4, 0);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      means[static_cast<std::size_t>(d.labels[i])][j] += d.features[i][j];
    }
    ++counts[static_cast<std::size_t>(d.labels[i])];
  }
  for (std::size_t c = 0; c < 4; ++c) {
    for (double& v : means[c]) v /= counts[c];
  }
  int correct = 0;
  for (std::size_t i = 200; i < 400; ++i) {
    double best = 1e18;
    int best_c = -1;
    for (int c = 0; c < 4; ++c) {
      double dist = 0.0;
      for (std::size_t j = 0; j < 16; ++j) {
        const double delta = d.features[i][j] - means[static_cast<std::size_t>(c)][j];
        dist += delta * delta;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    if (best_c == d.labels[i]) ++correct;
  }
  EXPECT_GT(correct, 150);  // >75% vs 25% chance
}

TEST(Iris, ShapeAndClassStructure) {
  const Dataset d = make_iris(150, 7);
  EXPECT_EQ(d.size(), 150u);
  EXPECT_EQ(d.num_features(), 4u);
  EXPECT_EQ(d.num_classes, 3);
  const auto counts = d.class_counts();
  EXPECT_EQ(counts[0], 50u);
  // Setosa (class 0) has much smaller petal length (feature 2).
  double setosa_petal = 0.0, virginica_petal = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.labels[i] == 0) setosa_petal += d.features[i][2];
    if (d.labels[i] == 2) virginica_petal += d.features[i][2];
  }
  EXPECT_LT(setosa_petal / 50.0, 2.0);
  EXPECT_GT(virginica_petal / 50.0, 4.5);
}

TEST(Seismic, ShapeAndDeterminism) {
  const Dataset a = make_seismic(100, 11);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a.num_features(), 4u);
  EXPECT_EQ(a.num_classes, 2);
  const Dataset b = make_seismic(100, 11);
  EXPECT_EQ(a.features, b.features);
}

TEST(Seismic, EventsCarryMoreEnergy) {
  const Dataset d = make_seismic(400, 13);
  double event_energy = 0.0, noise_energy = 0.0;
  int ne = 0, nn = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d.labels[i] == 1) {
      event_energy += d.features[i][1];
      ++ne;
    } else {
      noise_energy += d.features[i][1];
      ++nn;
    }
  }
  EXPECT_GT(event_energy / ne, noise_energy / nn);
}

TEST(Seismic, StaLtaDetectsOnset) {
  Rng rng(3);
  const auto with_event = synth_waveform(true, rng, 12.0);
  const auto without = synth_waveform(false, rng, 12.0);
  const auto f_event = seismic_features(with_event);
  const auto f_noise = seismic_features(without);
  EXPECT_GT(f_event[0], f_noise[0]);  // STA/LTA ratio
}

TEST(Seismic, FeatureExtractionRejectsShortTraces) {
  EXPECT_THROW(seismic_features(std::vector<double>(10, 0.0)), PreconditionError);
}

TEST(Vibration, ShapeAndDeterminism) {
  const Dataset a = make_vibration(200, 23);
  EXPECT_EQ(a.size(), 200u);
  EXPECT_EQ(a.num_features(), 4u);
  EXPECT_EQ(a.num_classes, 4);
  const Dataset b = make_vibration(200, 23);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.labels, b.labels);
  // Round-robin labels: every class gets a quarter of the samples.
  int counts[4] = {0, 0, 0, 0};
  for (int label : a.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 4);
    ++counts[label];
  }
  for (int c : counts) EXPECT_EQ(c, 50);
}

TEST(Vibration, FaultSignaturesSeparateInFeatureSpace) {
  // Each fault class must move its diagnostic feature relative to healthy:
  // misalignment raises the 2x/1x harmonic ratio, a bearing fault raises
  // kurtosis and crest factor, imbalance raises total energy.
  const Dataset d = make_vibration(800, 29);
  double mean[4][4] = {};
  int count[4] = {};
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (std::size_t f = 0; f < 4; ++f) {
      mean[d.labels[i]][f] += d.features[i][f];
    }
    ++count[d.labels[i]];
  }
  for (int k = 0; k < 4; ++k) {
    for (int f = 0; f < 4; ++f) mean[k][f] /= count[k];
  }
  EXPECT_GT(mean[1][0], mean[0][0]);  // imbalance: more energy
  EXPECT_GT(mean[2][1], 2.0 * mean[0][1]);  // misalignment: 2x/1x ratio
  EXPECT_GT(mean[3][2], mean[0][2] + 1.0);  // bearing: excess kurtosis
  EXPECT_GT(mean[3][3], mean[0][3]);        // bearing: crest factor
}

TEST(Vibration, WaveformAndFeatureHelpersValidate) {
  Rng rng(5);
  const std::vector<double> trace = vibration_waveform(3, rng, 12.0);
  EXPECT_EQ(trace.size(), 256u);
  EXPECT_EQ(vibration_features(trace).size(), 4u);
  EXPECT_THROW(vibration_waveform(4, rng, 12.0), PreconditionError);
  EXPECT_THROW(vibration_features(std::vector<double>(10, 0.0)),
               PreconditionError);
}

}  // namespace
}  // namespace qucad
