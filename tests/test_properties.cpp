// Cross-module property suites: randomized and parameterized sweeps over
// the invariants that hold the reproduction together.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "compress/compression_table.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "qnn/evaluator.hpp"
#include "qnn/model.hpp"
#include "repo/kmeans.hpp"
#include "repo/weights.hpp"
#include "sim/adjoint.hpp"
#include "test_support.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {
namespace {

constexpr double kPi = test::kPi;

// --- transpilation invariants over every preset device ---------------------

class DeviceSweep : public ::testing::TestWithParam<const char*> {
 protected:
  CouplingMap device() const {
    const std::string name = GetParam();
    if (name == "belem") return CouplingMap::belem();
    if (name == "jakarta") return CouplingMap::jakarta();
    if (name == "line5") return CouplingMap::line(5);
    if (name == "ring5") return CouplingMap::ring(5);
    return CouplingMap::full(5);
  }
};

TEST_P(DeviceSweep, RoutedCircuitRespectsCoupling) {
  const CouplingMap coupling = device();
  Circuit c = angle_encoder(4, 4);
  c.append(build_paper_ansatz(4, 2));
  const RoutedCircuit routed =
      route_circuit(c, coupling, trivial_layout(4));
  for (const Gate& g : routed.circuit.gates()) {
    if (g.num_qubits() == 2) {
      EXPECT_TRUE(coupling.adjacent(g.q0, g.q1))
          << gate_name(g.kind) << " on " << g.q0 << "," << g.q1;
    }
  }
}

TEST_P(DeviceSweep, LoweringPreservesProbabilities) {
  const CouplingMap coupling = device();
  Circuit c = angle_encoder(4, 4);
  c.append(build_paper_ansatz(4, 1));
  Rng rng(101);
  std::vector<double> theta(static_cast<std::size_t>(c.num_trainable()));
  for (double& t : theta) t = rng.uniform(-kPi, kPi);
  const std::vector<double> x{0.4, 1.1, 2.3, 0.9};

  StateVector logical(4);
  logical.run(c, theta, x);
  const auto logical_probs = logical.probabilities();

  const RoutedCircuit routed = route_circuit(c, coupling, trivial_layout(4));
  const PhysicalCircuit phys = lower_to_basis(routed, theta);
  const auto phys_probs = run_physical_pure(phys, x).probabilities();

  std::vector<double> mapped(16, 0.0);
  for (std::size_t i = 0; i < phys_probs.size(); ++i) {
    std::size_t li = 0;
    for (int l = 0; l < 4; ++l) {
      if (i & (std::size_t{1} << routed.final_mapping[static_cast<std::size_t>(l)])) {
        li |= std::size_t{1} << l;
      }
    }
    mapped[li] += phys_probs[i];
  }
  for (std::size_t b = 0; b < 16; ++b) {
    EXPECT_NEAR(mapped[b], logical_probs[b], 1e-8);
  }
}

TEST_P(DeviceSweep, NoiseAwareLayoutIsValid) {
  const CouplingMap coupling = device();
  Circuit c = build_paper_ansatz(4, 1);
  Calibration cal(coupling.num_qubits(), coupling.edges());
  Rng rng(7);
  for (const auto& [a, b] : cal.edges()) {
    cal.set_cx_error(a, b, rng.uniform(0.001, 0.05));
  }
  const Layout layout = noise_aware_layout(c, {0, 1}, coupling, cal);
  ASSERT_EQ(layout.size(), 4u);
  std::vector<bool> used(static_cast<std::size_t>(coupling.num_qubits()), false);
  for (int p : layout) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, coupling.num_qubits());
    EXPECT_FALSE(used[static_cast<std::size_t>(p)]) << "duplicate physical qubit";
    used[static_cast<std::size_t>(p)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceSweep,
                         ::testing::Values("belem", "jakarta", "line5",
                                           "ring5", "full5"),
                         [](const auto& info) { return std::string(info.param); });

// --- compression-table properties -------------------------------------------

TEST(CompressionTableProperty, CustomLevelsRespected) {
  const CompressionTable table({kPi / 4.0, 3.0 * kPi / 4.0});
  const auto n = table.nearest(0.7);
  EXPECT_NEAR(n.level, kPi / 4.0, 1e-12);
  const auto m = table.nearest(2.5);
  EXPECT_NEAR(m.level, 3.0 * kPi / 4.0, 1e-12);
}

TEST(CompressionTableProperty, SnappedAnglesAreFixedPoints) {
  const CompressionTable table;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double theta = rng.uniform(-10.0, 10.0);
    const auto first = table.nearest(theta);
    const auto second = table.nearest(first.level);
    EXPECT_NEAR(second.distance, 0.0, 1e-9);
    EXPECT_NEAR(second.level, first.level, 1e-9);
  }
}

TEST(CompressionTableProperty, PeriodicityIn2Pi) {
  const CompressionTable table;
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const double theta = rng.uniform(0.0, 2.0 * kPi);
    const auto base = table.nearest(theta);
    const auto shifted = table.nearest(theta + 2.0 * kPi);
    EXPECT_NEAR(base.distance, shifted.distance, 1e-9);
    EXPECT_NEAR(shifted.level - base.level, 2.0 * kPi, 1e-9);
  }
}

// --- adjoint gradients on the full paper model across devices ---------------

TEST(AdjointProperty, PaperModelGradientsMatchShiftRule) {
  Circuit c = angle_encoder(4, 16);
  c.append(build_paper_ansatz(4, 1));
  Rng rng(13);
  std::vector<double> theta(static_cast<std::size_t>(c.num_trainable()));
  for (double& t : theta) t = rng.uniform(-kPi, kPi);
  std::vector<double> x(16);
  for (double& v : x) v = rng.uniform(0.0, kPi);
  const std::vector<double> weights{0.5, -1.0, 0.25, 0.75};

  const auto adj = adjoint_gradient(c, theta, x, weights);
  const auto shift = parameter_shift_gradient(c, theta, x, weights);
  for (std::size_t i = 0; i < shift.size(); ++i) {
    EXPECT_NEAR(adj.gradients[i], shift[i], 1e-8) << "param " << i;
  }
}

// --- noise model invariants over random calibrations ------------------------

TEST(NoiseModelProperty, ChannelsAlwaysCptp) {
  const CalibrationHistory h(FluctuationScenario::belem(), 60, 31);
  for (int d = 0; d < 60; d += 7) {
    const NoiseModel nm(h.day(d));
    for (int q = 0; q < 5; ++q) {
      EXPECT_TRUE(nm.pulse_noise(q).thermal.is_cptp(1e-8)) << "day " << d;
    }
    for (const auto& [a, b] : h.day(d).edges()) {
      EXPECT_TRUE(nm.cx_noise(a, b).thermal_first.is_cptp(1e-8));
      EXPECT_TRUE(nm.cx_noise(a, b).thermal_second.is_cptp(1e-8));
    }
  }
}

// --- k-means invariants -----------------------------------------------------

TEST(KMeansProperty, RestartsNeverWorsenObjective) {
  Rng rng(17);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 60; ++i) {
    data.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
  }
  const std::vector<double> w{1.0, 1.0};
  KMeansOptions one;
  one.k = 4;
  one.restarts = 1;
  KMeansOptions many = one;
  many.restarts = 6;
  const double obj_one = weighted_kmeans(data, w, one).objective;
  const double obj_many = weighted_kmeans(data, w, many).objective;
  EXPECT_LE(obj_many, obj_one + 1e-9);
}

TEST(KMeansProperty, AssignmentMinimizesDistanceToOwnCentroid) {
  Rng rng(19);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 50; ++i) {
    data.push_back({rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(0, 5)});
  }
  const std::vector<double> w{1.0, 2.0, 0.5};
  KMeansOptions options;
  options.k = 4;
  const KMeansResult result = weighted_kmeans(data, w, options);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double own = weighted_l1(
        data[i], result.centroids[static_cast<std::size_t>(result.assignment[i])], w);
    for (const auto& centroid : result.centroids) {
      EXPECT_LE(own, weighted_l1(data[i], centroid, w) + 1e-9);
    }
  }
}

// --- ansatz scaling ----------------------------------------------------------

class AnsatzSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AnsatzSweep, ParameterCountAndArity) {
  const auto [qubits, repeats] = GetParam();
  const Circuit c = build_paper_ansatz(qubits, repeats);
  EXPECT_EQ(c.num_trainable(), paper_ansatz_params(qubits, repeats));
  EXPECT_EQ(c.size(), static_cast<std::size_t>(10 * qubits * repeats));
  // Every parameter appears exactly once.
  for (int p = 0; p < c.num_trainable(); ++p) {
    EXPECT_EQ(c.gates_for_trainable(p).size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, AnsatzSweep,
                         ::testing::Values(std::pair{2, 1}, std::pair{3, 2},
                                           std::pair{4, 2}, std::pair{4, 3},
                                           std::pair{5, 1}),
                         [](const auto& info) {
                           std::string name = "q";
                           name += std::to_string(info.param.first);
                           name += "_r";
                           name += std::to_string(info.param.second);
                           return name;
                         });

// --- thread pool invariants --------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 503;  // prime, not a multiple of the pool
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must survive a throwing batch and stay usable.
  std::atomic<int> count{0};
  pool.parallel_for(32, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ParallelForStressManyBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    const std::size_t count = 1 + static_cast<std::size_t>(round) * 7 % 97;
    pool.parallel_for(count,
                      [&](std::size_t i) { sum.fetch_add(static_cast<long>(i)); });
    const long expected =
        static_cast<long>(count) * static_cast<long>(count - 1) / 2;
    EXPECT_EQ(sum.load(), expected) << "round " << round;
  }
}

// --- parallel-vs-serial equivalence of noisy evaluation ----------------------

TEST(NoisyEvaluate, PoolSizeDoesNotChangePredictions) {
  const CalibrationHistory h(FluctuationScenario::belem(), 5, 11);
  const QnnModel model = build_paper_model(4, 4, 2, 2);
  const std::vector<double> theta = init_params(model, 3);
  const TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits, CouplingMap::belem(), &h.day(0));

  Rng rng(5);
  Dataset data;
  data.num_classes = 2;
  data.name = "synthetic";
  for (int i = 0; i < 24; ++i) {
    std::vector<double> x(4);
    for (double& v : x) v = rng.uniform(0.0, kPi);
    data.features.push_back(std::move(x));
    data.labels.push_back(rng.integer(0, 1));
  }

  ThreadPool serial(1);
  ThreadPool parallel(4);
  NoisyEvalOptions serial_opts;
  serial_opts.pool = &serial;
  NoisyEvalOptions parallel_opts;
  parallel_opts.pool = &parallel;

  const NoisyEvalResult a =
      noisy_evaluate(model, transpiled, theta, data, h.day(1), serial_opts);
  const NoisyEvalResult b =
      noisy_evaluate(model, transpiled, theta, data, h.day(1), parallel_opts);

  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  ASSERT_EQ(a.predictions.size(), b.predictions.size());
  for (std::size_t i = 0; i < a.predictions.size(); ++i) {
    EXPECT_EQ(a.predictions[i], b.predictions[i]) << "sample " << i;
  }

  // Shot-based sampling must also be pool-invariant (per-sample seeds).
  serial_opts.shots = 256;
  parallel_opts.shots = 256;
  const NoisyEvalResult sa =
      noisy_evaluate(model, transpiled, theta, data, h.day(1), serial_opts);
  const NoisyEvalResult sb =
      noisy_evaluate(model, transpiled, theta, data, h.day(1), parallel_opts);
  EXPECT_EQ(sa.predictions, sb.predictions);
}

}  // namespace
}  // namespace qucad
