// The serving layer's contract tests: config validation, Status-based
// creation, submit/submit_batch equivalence with the research evaluator,
// calibration-event decisions + epoch hot-swap semantics, and — the load-
// bearing one — epoch consistency under concurrent submit/hot-swap traffic
// (every prediction must be bitwise-identical to a sequential evaluation on
// the epoch it names). Test names start with Serve* so the TSan CTest
// preset can select the concurrency surface by name.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "core/qucad.hpp"
#include "core/strategies.hpp"
#include "data/seismic_synth.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/eval_cache.hpp"
#include "qnn/evaluator.hpp"
#include "qnn/trainer.hpp"
#include "serve/admission.hpp"
#include "serve/inference_service.hpp"
#include "serve/result_cache.hpp"
#include "serve/shard.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {
namespace {

/// Small but real serving environment: a trained 4-qubit detector routed on
/// belem, with fast ADMM settings for online-compression days.
struct ServeFixture {
  Environment env;
  CalibrationHistory history{FluctuationScenario::belem(), 120, 77};

  ServeFixture() {
    Dataset raw = make_seismic(96, 5);
    env.train = FeatureScaler::fit(raw).transform(raw);
    env.model = build_paper_model(4, 4, 2, 1);
    env.theta_pretrained = init_params(env.model, 7);
    TrainConfig config;
    config.epochs = 4;
    train_model(env.model, env.theta_pretrained, env.train, config);
    env.transpiled = transpile_model(env.model.circuit, env.model.readout_qubits,
                                     CouplingMap::belem(), &history.day(0));
    env.manager_options.admm.iterations = 2;
    env.manager_options.admm.epochs_per_iteration = 1;
    env.manager_options.admm.finetune_epochs = 0;
    env.admm = env.manager_options.admm;
  }

  /// A repository of valid entries with distinct parameters, thresholded so
  /// every day matches — calibration events become cheap hot-swaps (no
  /// online compression), which is what the swap-under-load tests want.
  ModelRepository reuse_only_repository(int entries) const {
    ModelRepository repo;
    repo.set_weights(std::vector<double>(
        history.day(0).feature_vector().size(), 1.0));
    for (int i = 0; i < entries; ++i) {
      RepoEntry entry;
      entry.centroid = history.day(10 + 20 * i).feature_vector();
      entry.theta = env.theta_pretrained;
      entry.theta[static_cast<std::size_t>(i) % entry.theta.size()] += 0.1 * (i + 1);
      entry.tag = "fixture-" + std::to_string(i);
      repo.add(std::move(entry));
    }
    repo.set_threshold(1e9);
    return repo;
  }
};

TEST(ServeConfig, ValidateRejectsBadKnobs) {
  EXPECT_TRUE(ServiceConfig().validate().ok());
  EXPECT_EQ(ServiceConfig().with_max_batch_size(0).validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceConfig()
                .with_batch_window(std::chrono::microseconds(-1))
                .validate()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceConfig().with_shots(-5).validate().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeConfig, ValidateRejectsBadShardingKnobs) {
  // A zero-shard service can route nothing; a zero-capacity queue can admit
  // nothing — both are configuration errors, not degenerate modes.
  EXPECT_EQ(ServiceConfig().with_num_shards(0).validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceConfig().with_queue_capacity(0).validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceConfig()
                .with_deadline_budget(std::chrono::microseconds(-1))
                .validate()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceConfig().with_result_cache_quantum(-0.5).validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceConfig()
                .with_result_cache_quantum(
                    std::numeric_limits<double>::quiet_NaN())
                .validate()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeConfig, BuildersSetShardingKnobs) {
  const ServiceConfig config = ServiceConfig()
                                   .with_num_shards(4)
                                   .with_queue_capacity(7)
                                   .with_deadline_budget(
                                       std::chrono::milliseconds(5))
                                   .with_routing(
                                       ServiceConfig::RoutingPolicy::kHash)
                                   .with_result_cache(16)
                                   .with_result_cache_quantum(0.25);
  EXPECT_EQ(config.num_shards, 4u);
  EXPECT_EQ(config.queue_capacity, 7u);
  EXPECT_EQ(config.deadline_budget, std::chrono::microseconds(5000));
  EXPECT_EQ(config.routing, ServiceConfig::RoutingPolicy::kHash);
  EXPECT_EQ(config.result_cache_capacity, 16u);
  EXPECT_DOUBLE_EQ(config.result_cache_quantum, 0.25);
  EXPECT_TRUE(config.validate().ok());
}

TEST(ServeConfig, ConsolidatesFromPipelineAndEnvironment) {
  PipelineConfig pipeline;
  pipeline.eval.shots = 128;
  pipeline.manager_options.bootstrap_scale = 2.5;
  const ServiceConfig from_pipeline = ServiceConfig::from_pipeline(pipeline);
  EXPECT_EQ(from_pipeline.eval.shots, 128);
  EXPECT_DOUBLE_EQ(from_pipeline.manager.bootstrap_scale, 2.5);

  Environment env;
  env.eval.shots = 64;
  env.manager_options.enable_failure_reports = false;
  const ServiceConfig from_env = ServiceConfig::from_environment(env);
  EXPECT_EQ(from_env.eval.shots, 64);
  EXPECT_FALSE(from_env.manager.enable_failure_reports);
}

TEST(ServeCreate, RejectsInvalidInputsWithStatus) {
  ServeFixture fx;

  Environment no_train = fx.env;
  no_train.train = Dataset{};
  EXPECT_EQ(InferenceService::create(std::move(no_train), {}, fx.history.day(0))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  Environment bad_theta = fx.env;
  bad_theta.theta_pretrained.pop_back();
  EXPECT_EQ(InferenceService::create(std::move(bad_theta), {}, fx.history.day(0))
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // A calibration that does not cover the routed device.
  const Calibration narrow(2, {{0, 1}});
  EXPECT_EQ(InferenceService::create(fx.env, {}, narrow).status().code(),
            StatusCode::kInvalidArgument);

  const ServiceConfig bad_config = ServiceConfig().with_max_batch_size(0);
  EXPECT_EQ(InferenceService::create(fx.env, {}, fx.history.day(0), bad_config)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeSubmit, MatchesResearchEvaluatorBitwise) {
  ServeFixture fx;
  const Calibration& day = fx.history.day(0);
  StatusOr<InferenceService> service =
      InferenceService::create(fx.env, {}, day);
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  EXPECT_EQ(service->active_epoch(), 1u);

  const Dataset probe = fx.env.train.take(12);
  const NoisyEvalResult expected = noisy_evaluate(
      fx.env.model, fx.env.transpiled, fx.env.theta_pretrained, probe, day,
      fx.env.eval);
  const std::shared_ptr<const NoisyExecutor> reference = build_noisy_executor(
      fx.env.model, fx.env.transpiled, fx.env.theta_pretrained, day,
      fx.env.eval.noise);

  for (std::size_t i = 0; i < probe.size(); ++i) {
    const StatusOr<Prediction> prediction =
        service->submit(probe.features[i]);
    ASSERT_TRUE(prediction.ok()) << prediction.status().to_string();
    EXPECT_EQ(prediction->label, expected.predictions[i]) << "sample " << i;
    EXPECT_EQ(prediction->epoch, 1u);
    const std::vector<double> z = reference->run_z(probe.features[i]);
    ASSERT_EQ(prediction->logits.size(), z.size());
    for (std::size_t k = 0; k < z.size(); ++k) {
      EXPECT_EQ(prediction->logits[k], z[k])
          << "sample " << i << " logit " << k << " must be bitwise identical";
    }
  }

  // Batch submission: one sweep, same bits.
  const StatusOr<std::vector<Prediction>> batch =
      service->submit_batch(probe.features);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), probe.size());
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ((*batch)[i].label, expected.predictions[i]);
    EXPECT_EQ((*batch)[i].logits, reference->run_z(probe.features[i]));
  }
}

TEST(ServeSubmit, ValidatesRequests) {
  ServeFixture fx;
  StatusOr<InferenceService> service =
      InferenceService::create(fx.env, {}, fx.history.day(0));
  ASSERT_TRUE(service.ok());
  EXPECT_EQ(service->submit({0.5}).status().code(),
            StatusCode::kInvalidArgument);
  // The async path reports validation errors through the future — the
  // malformed request is never enqueued, but the caller still gets a
  // resolvable future rather than an exception.
  EXPECT_EQ(service->submit_async({0.5}).get().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service->submit_batch({}).status().code(),
            StatusCode::kInvalidArgument);
  const std::vector<std::vector<double>> mixed{fx.env.train.features[0], {0.5}};
  EXPECT_EQ(service->submit_batch(mixed).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ServeCalibration, ReuseAndCompressionDecisionsSwapEpochs) {
  ServeFixture fx;
  StatusOr<InferenceService> service = InferenceService::create(
      fx.env, fx.reuse_only_repository(2), fx.history.day(0));
  ASSERT_TRUE(service.ok());

  // Matching day: reuse, hot-swap to the stored entry.
  const StatusOr<CalibrationReport> reuse =
      service->on_calibration(fx.history.day(10));
  ASSERT_TRUE(reuse.ok()) << reuse.status().to_string();
  EXPECT_EQ(reuse->decision.action, OnlineManager::Decision::Action::Reuse);
  EXPECT_TRUE(reuse->swapped);
  EXPECT_TRUE(reuse->failure.ok());
  EXPECT_EQ(reuse->epoch, 2u);
  EXPECT_EQ(service->active_epoch(), 2u);
  EXPECT_EQ(service->active_theta(),
            service->manager().repository().entry(reuse->decision.entry_index)
                .theta);

  const ServingStats stats = service->stats();
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.swaps, 2u);  // initial epoch + the reuse swap
  EXPECT_EQ(stats.compressions, 0u);
}

TEST(ServeCalibration, BootstrapCompressionAddsEntryAndSwaps) {
  ServeFixture fx;
  StatusOr<InferenceService> service =
      InferenceService::create(fx.env, {}, fx.history.day(0));
  ASSERT_TRUE(service.ok());

  const StatusOr<CalibrationReport> report =
      service->on_calibration(fx.history.day(5));
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  EXPECT_EQ(report->decision.action,
            OnlineManager::Decision::Action::NewModel);
  EXPECT_TRUE(report->swapped);
  EXPECT_EQ(service->manager().repository().size(), 1u);
  EXPECT_EQ(service->stats().compressions, 1u);
  EXPECT_EQ(service->active_theta(),
            service->manager().repository().entry(0).theta);
}

TEST(ServeCalibration, FailurePolicyGovernsGuidance2Days) {
  ServeFixture fx;
  ModelRepository weak_repo;
  weak_repo.set_weights(std::vector<double>(
      fx.history.day(0).feature_vector().size(), 1.0));
  RepoEntry weak;
  weak.centroid = fx.history.day(10).feature_vector();
  weak.theta = fx.env.theta_pretrained;
  weak.theta[0] += 0.7;
  weak.valid = false;
  weak_repo.add(weak);
  weak_repo.set_threshold(1e9);

  // Default policy: keep serving the trusted epoch, report the failure.
  StatusOr<InferenceService> keep =
      InferenceService::create(fx.env, weak_repo, fx.history.day(0));
  ASSERT_TRUE(keep.ok());
  const StatusOr<CalibrationReport> kept =
      keep->on_calibration(fx.history.day(11));
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->decision.action, OnlineManager::Decision::Action::Failure);
  EXPECT_FALSE(kept->swapped);
  EXPECT_EQ(kept->failure.code(), StatusCode::kUnavailable);
  EXPECT_EQ(keep->active_epoch(), 1u);
  EXPECT_EQ(keep->active_theta(), fx.env.theta_pretrained);
  EXPECT_EQ(keep->stats().failures, 1u);

  // Opt-in Table-I accounting: serve the matched-but-invalid model anyway.
  const ServiceConfig serve_matched =
      ServiceConfig::from_environment(fx.env).with_failure_policy(
          ServiceConfig::FailurePolicy::kServeMatched);
  StatusOr<InferenceService> matched = InferenceService::create(
      fx.env, weak_repo, fx.history.day(0), serve_matched);
  ASSERT_TRUE(matched.ok());
  const StatusOr<CalibrationReport> swapped =
      matched->on_calibration(fx.history.day(11));
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(swapped->swapped);
  EXPECT_EQ(swapped->failure.code(), StatusCode::kUnavailable);
  EXPECT_EQ(matched->active_theta(), weak.theta);
}

// The acceptance test: 8 client threads hammer submit() while the main
// thread hot-swaps epochs via on_calibration. Every prediction must be
// bitwise-identical to a sequential single-epoch evaluation of the epoch it
// names — a batch never straddles a swap, and a swap never perturbs an
// in-flight batch.
TEST(ServeHotSwap, ConcurrentSubmitsSeeConsistentEpochs) {
  ServeFixture fx;
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 24;
  constexpr int kSwaps = 12;

  StatusOr<InferenceService> service = InferenceService::create(
      fx.env, fx.reuse_only_repository(3), fx.history.day(0));
  ASSERT_TRUE(service.ok());

  // Epoch 1 is the pretrained model under day 0.
  std::map<std::uint64_t, std::pair<std::vector<double>, Calibration>> epochs;
  epochs.emplace(1u, std::make_pair(fx.env.theta_pretrained, fx.history.day(0)));

  struct Served {
    std::vector<double> features;
    Prediction prediction;
  };
  std::vector<std::vector<Served>> served(kThreads);

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        // Distinct feature vectors per (thread, request).
        std::vector<double> x =
            fx.env.train.features[static_cast<std::size_t>(
                (t * kRequestsPerThread + r) % fx.env.train.size())];
        x[0] += 1e-3 * t + 1e-5 * r;
        StatusOr<Prediction> prediction = service->submit(x);
        ASSERT_TRUE(prediction.ok()) << prediction.status().to_string();
        served[static_cast<std::size_t>(t)].push_back(
            Served{std::move(x), std::move(prediction).value()});
      }
    });
  }

  // Hot-swap epochs while the clients are in flight.
  for (int s = 0; s < kSwaps; ++s) {
    const Calibration& day = fx.history.day(10 + 20 * (s % 3));
    const StatusOr<CalibrationReport> report = service->on_calibration(day);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    ASSERT_TRUE(report->swapped);
    epochs.emplace(report->epoch,
                   std::make_pair(service->active_theta(), day));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& client : clients) client.join();

  // Sequential single-epoch replay: every prediction's logits must match
  // the compiled program of the epoch it claims, bit for bit.
  std::size_t total = 0;
  for (const std::vector<Served>& per_thread : served) {
    for (const Served& request : per_thread) {
      const auto it = epochs.find(request.prediction.epoch);
      ASSERT_NE(it, epochs.end())
          << "prediction names unknown epoch " << request.prediction.epoch;
      const std::shared_ptr<const NoisyExecutor> executor =
          CompiledEvalCache::global().get_or_build(
              fx.env.model, fx.env.transpiled, it->second.first,
              it->second.second, fx.env.eval.noise);
      const std::vector<double> z = executor->run_z(request.features);
      ASSERT_EQ(request.prediction.logits, z)
          << "epoch " << request.prediction.epoch
          << ": serving result diverged from sequential evaluation";
      ++total;
    }
  }
  EXPECT_EQ(total,
            static_cast<std::size_t>(kThreads) * kRequestsPerThread);
  const ServingStats stats = service->stats();
  EXPECT_EQ(stats.requests, total);
  EXPECT_GE(stats.swaps, static_cast<std::uint64_t>(kSwaps));
}

TEST(ServeBatching, ConcurrentSubmittersShareSweeps) {
  ServeFixture fx;
  constexpr int kThreads = 8;
  // A wide coalescing window so simultaneously-released submitters land in
  // one sweep even under unlucky scheduling.
  const ServiceConfig config = ServiceConfig::from_environment(fx.env)
                                   .with_batch_window(std::chrono::milliseconds(50));
  StatusOr<InferenceService> service =
      InferenceService::create(fx.env, {}, fx.history.day(0), config);
  ASSERT_TRUE(service.ok());

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const StatusOr<Prediction> prediction =
          service->submit(fx.env.train.features[static_cast<std::size_t>(t)]);
      ASSERT_TRUE(prediction.ok());
    });
  }
  for (std::thread& client : clients) client.join();

  const ServingStats stats = service->stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads));
  EXPECT_LT(stats.batches, static_cast<std::uint64_t>(kThreads))
      << "concurrent submitters should coalesce into shared sweeps";
  EXPECT_GT(stats.coalesced, 0u);
}

TEST(ServeCacheStress, GlobalCacheIsConsistentUnderContention) {
  ServeFixture fx;
  constexpr int kThreads = 8;
  constexpr int kIterations = 40;
  const Calibration& day = fx.history.day(0);

  // Four distinct configurations (distinct thetas) and their ground truth.
  std::vector<std::vector<double>> thetas;
  std::vector<std::vector<double>> expected;
  const std::vector<double>& x = fx.env.train.features[0];
  for (int v = 0; v < 4; ++v) {
    std::vector<double> theta = fx.env.theta_pretrained;
    theta[static_cast<std::size_t>(v)] += 0.2 * v;
    const std::shared_ptr<const NoisyExecutor> executor = build_noisy_executor(
        fx.env.model, fx.env.transpiled, theta, day, fx.env.eval.noise);
    expected.push_back(executor->run_z(x));
    thetas.push_back(std::move(theta));
  }

  // Shrink the cache so eviction churns while threads race get_or_build.
  CompiledEvalCache::global().set_capacity(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::size_t v = static_cast<std::size_t>((t + i) % 4);
        const std::shared_ptr<const NoisyExecutor> executor =
            CompiledEvalCache::global().get_or_build(
                fx.env.model, fx.env.transpiled, thetas[v], day,
                fx.env.eval.noise);
        const std::vector<double> z = executor->run_z(x);
        ASSERT_EQ(z, expected[v]) << "thread " << t << " iteration " << i;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  CompiledEvalCache::global().set_capacity(64);

  const EvalCacheStats stats = CompiledEvalCache::global().stats();
  EXPECT_LE(stats.entries, stats.capacity);
}

// The serving surface and the research harness must tell the same story:
// a service with kServeMatched policy replays the exact decisions and
// predictions of the QuCAD-without-offline strategy over the same window.
TEST(ServeLongitudinal, MatchesStrategyHarnessBitwise) {
  ServeFixture fx;
  const Dataset test = fx.env.train.take(24);
  const std::vector<Calibration> window = fx.history.slice(0, 5);

  QuCadWithoutOfflineStrategy strategy(fx.env);
  MethodResult from_strategy;
  {
    Environment harness_env = fx.env;
    harness_env.test = test;
    from_strategy = run_longitudinal(strategy, harness_env, {}, window);
  }

  const ServiceConfig config =
      ServiceConfig::from_environment(fx.env).with_failure_policy(
          ServiceConfig::FailurePolicy::kServeMatched);
  StatusOr<InferenceService> service =
      InferenceService::create(fx.env, {}, fx.history.day(0), config);
  ASSERT_TRUE(service.ok());
  const MethodResult from_service =
      run_longitudinal(*service, test, window);

  ASSERT_EQ(from_service.daily_accuracy.size(),
            from_strategy.daily_accuracy.size());
  for (std::size_t d = 0; d < from_service.daily_accuracy.size(); ++d) {
    EXPECT_DOUBLE_EQ(from_service.daily_accuracy[d],
                     from_strategy.daily_accuracy[d])
        << "day " << d;
  }
  EXPECT_EQ(from_service.optimizations, from_strategy.optimizations);
}

// ---------------------------------------------------------------------------
// Sharded serving: admission control, routing, result cache.
// ---------------------------------------------------------------------------

TEST(ServeAdmission, ControllerEnforcesDeadlineUnderManualClock) {
  ManualClock clock;
  AdmissionController admission(std::chrono::microseconds(100), &clock);
  const Clock::TimePoint enqueued = admission.stamp();

  // Exactly at the budget: still admitted (the budget is inclusive).
  clock.advance(std::chrono::microseconds(100));
  EXPECT_TRUE(admission.admit_for_execution(enqueued).ok());
  EXPECT_EQ(admission.deadline_misses(), 0u);

  // One tick past: expired, counted, kDeadlineExceeded.
  clock.advance(std::chrono::microseconds(1));
  EXPECT_EQ(admission.admit_for_execution(enqueued).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(admission.deadline_misses(), 1u);

  // Shed verdicts carry kResourceExhausted and count separately.
  EXPECT_EQ(admission.shed(0, 4).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.shed_count(), 1u);

  // A zero budget disables the deadline entirely.
  AdmissionController no_deadline(std::chrono::microseconds(0), &clock);
  const Clock::TimePoint old = no_deadline.stamp();
  clock.advance(std::chrono::hours(1));
  EXPECT_TRUE(no_deadline.admit_for_execution(old).ok());
}

TEST(ServeRouting, HashRoutingIsDeterministicAcrossServices) {
  // Pure routing function: same bits -> same shard, every call.
  const std::vector<double> x{0.1, -0.2, 0.3, 0.4};
  for (std::size_t shards : {1u, 2u, 5u}) {
    const std::size_t first = route_by_hash(x, shards);
    EXPECT_LT(first, shards);
    EXPECT_EQ(route_by_hash(x, shards), first);
  }

  // Two independently-built services under pure hash routing must spread an
  // identical request sequence identically across their shards.
  ServeFixture fx;
  const ServiceConfig config =
      ServiceConfig::from_environment(fx.env)
          .with_num_shards(4)
          .with_routing(ServiceConfig::RoutingPolicy::kHash)
          .with_batch_window(std::chrono::microseconds(0));
  StatusOr<InferenceService> first =
      InferenceService::create(fx.env, {}, fx.history.day(0), config);
  StatusOr<InferenceService> second =
      InferenceService::create(fx.env, {}, fx.history.day(0), config);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(second.ok());

  const std::size_t n = std::min<std::size_t>(32, fx.env.train.size());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(first->submit(fx.env.train.features[i]).ok());
    ASSERT_TRUE(second->submit(fx.env.train.features[i]).ok());
  }

  const std::vector<ShardStats> a = first->shard_stats();
  const std::vector<ShardStats> b = second->shard_stats();
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  std::uint64_t total = 0;
  std::size_t used = 0;
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].requests, b[s].requests) << "shard " << s;
    total += a[s].requests;
    used += a[s].requests > 0 ? 1 : 0;
  }
  EXPECT_EQ(total, n);
  EXPECT_GE(used, 2u) << "hash routing should spread distinct vectors";
}

TEST(ServeSharding, PredictionsBitwiseIdenticalAcrossShardCounts) {
  ServeFixture fx;
  const Calibration& day = fx.history.day(0);
  const Dataset probe = fx.env.train.take(16);
  const std::shared_ptr<const NoisyExecutor> reference = build_noisy_executor(
      fx.env.model, fx.env.transpiled, fx.env.theta_pretrained, day,
      fx.env.eval.noise);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    const ServiceConfig config =
        ServiceConfig::from_environment(fx.env).with_num_shards(shards);
    StatusOr<InferenceService> service =
        InferenceService::create(fx.env, {}, day, config);
    ASSERT_TRUE(service.ok()) << service.status().to_string();

    std::vector<std::future<StatusOr<Prediction>>> futures;
    futures.reserve(probe.size());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      futures.push_back(service->submit_async(probe.features[i]));
    }
    for (std::size_t i = 0; i < probe.size(); ++i) {
      StatusOr<Prediction> prediction = futures[i].get();
      ASSERT_TRUE(prediction.ok()) << prediction.status().to_string();
      EXPECT_EQ(prediction->epoch, 1u);
      EXPECT_EQ(prediction->logits, reference->run_z(probe.features[i]))
          << shards << "-shard service diverged on sample " << i;
    }
  }
}

TEST(ServeAdmission, SaturatedShardShedsWithResourceExhausted) {
  ServeFixture fx;
  // One shard whose queue holds 2 requests, with a coalescing window far
  // wider than the submission burst. Admitted requests stay IN the queue
  // while the dispatcher lingers for stragglers (capacity measures true
  // backlog), so of 8 instant submits exactly 2 are admitted and 6 shed.
  const ServiceConfig config =
      ServiceConfig::from_environment(fx.env)
          .with_num_shards(1)
          .with_queue_capacity(2)
          .with_batch_window(std::chrono::milliseconds(750));
  StatusOr<InferenceService> service =
      InferenceService::create(fx.env, {}, fx.history.day(0), config);
  ASSERT_TRUE(service.ok()) << service.status().to_string();

  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        service->submit_async(fx.env.train.features[static_cast<std::size_t>(i)]));
  }
  int ok = 0;
  int shed = 0;
  for (std::future<StatusOr<Prediction>>& future : futures) {
    const StatusOr<Prediction> result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
          << result.status().to_string();
      ++shed;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(shed, 6);

  const ServingStats stats = service->stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.shed, 6u);
  const std::vector<ShardStats> shards = service->shard_stats();
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].shed, 6u);
}

TEST(ServeAdmission, ExpiredDeadlineFailsRequestsBeforeExecution) {
  ServeFixture fx;
  // Every request out-waits its 1us budget inside the 200ms coalescing
  // window, so the dispatcher must fail all of them at the gate — late
  // answers never execute.
  const ServiceConfig config =
      ServiceConfig::from_environment(fx.env)
          .with_num_shards(1)
          .with_batch_window(std::chrono::milliseconds(200))
          .with_deadline_budget(std::chrono::microseconds(1));
  StatusOr<InferenceService> service =
      InferenceService::create(fx.env, {}, fx.history.day(0), config);
  ASSERT_TRUE(service.ok()) << service.status().to_string();

  std::vector<std::future<StatusOr<Prediction>>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(
        service->submit_async(fx.env.train.features[static_cast<std::size_t>(i)]));
  }
  for (std::future<StatusOr<Prediction>>& future : futures) {
    const StatusOr<Prediction> result = future.get();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
        << result.status().to_string();
  }
  const ServingStats stats = service->stats();
  EXPECT_EQ(stats.deadline_misses, 4u);
  EXPECT_EQ(stats.requests, 0u) << "an expired request must never execute";
}

// Hot-swap under saturation: small bounded queues across 2 shards, async
// clients racing 8 reuse swaps. Shed requests are acceptable (that is the
// admission contract); every SERVED prediction must still be
// bitwise-identical to a sequential evaluation of the epoch it names.
TEST(ServeHotSwap, SaturatedShardsKeepEpochConsistency) {
  ServeFixture fx;
  constexpr int kThreads = 6;
  constexpr int kRequestsPerThread = 20;
  constexpr int kSwaps = 8;

  const ServiceConfig config = ServiceConfig::from_environment(fx.env)
                                   .with_num_shards(2)
                                   .with_queue_capacity(3);
  StatusOr<InferenceService> service = InferenceService::create(
      fx.env, fx.reuse_only_repository(3), fx.history.day(0), config);
  ASSERT_TRUE(service.ok()) << service.status().to_string();

  std::map<std::uint64_t, std::pair<std::vector<double>, Calibration>> epochs;
  epochs.emplace(1u, std::make_pair(fx.env.theta_pretrained, fx.history.day(0)));

  struct Served {
    std::vector<double> features;
    Prediction prediction;
  };
  std::vector<std::vector<Served>> served(kThreads);
  std::atomic<std::uint64_t> shed{0};

  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < kRequestsPerThread; ++r) {
        std::vector<double> x =
            fx.env.train.features[static_cast<std::size_t>(
                (t * kRequestsPerThread + r) % fx.env.train.size())];
        x[0] += 1e-3 * t + 1e-5 * r;
        StatusOr<Prediction> prediction = service->submit_async(x).get();
        if (!prediction.ok()) {
          ASSERT_EQ(prediction.status().code(),
                    StatusCode::kResourceExhausted)
              << prediction.status().to_string();
          shed.fetch_add(1);
          continue;
        }
        served[static_cast<std::size_t>(t)].push_back(
            Served{std::move(x), std::move(prediction).value()});
      }
    });
  }

  for (int s = 0; s < kSwaps; ++s) {
    const Calibration& day = fx.history.day(10 + 20 * (s % 3));
    const StatusOr<CalibrationReport> report = service->on_calibration(day);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
    ASSERT_TRUE(report->swapped);
    epochs.emplace(report->epoch, std::make_pair(service->active_theta(), day));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& client : clients) client.join();

  std::size_t total_ok = 0;
  for (const std::vector<Served>& per_thread : served) {
    for (const Served& request : per_thread) {
      const auto it = epochs.find(request.prediction.epoch);
      ASSERT_NE(it, epochs.end())
          << "prediction names unknown epoch " << request.prediction.epoch;
      const std::shared_ptr<const NoisyExecutor> executor =
          CompiledEvalCache::global().get_or_build(
              fx.env.model, fx.env.transpiled, it->second.first,
              it->second.second, fx.env.eval.noise);
      ASSERT_EQ(request.prediction.logits, executor->run_z(request.features))
          << "epoch " << request.prediction.epoch
          << ": served result diverged from sequential evaluation";
      ++total_ok;
    }
  }
  EXPECT_EQ(total_ok + shed.load(),
            static_cast<std::uint64_t>(kThreads) * kRequestsPerThread);
  const ServingStats stats = service->stats();
  EXPECT_EQ(stats.requests, total_ok);
  EXPECT_EQ(stats.shed, shed.load());
}

TEST(ServeResultCache, QuantizesKeysInvalidatesByEpochAndEvictsLru) {
  ResultCache cache(2, 0.1);
  EXPECT_TRUE(cache.enabled());
  Prediction first;
  first.label = 1;
  first.logits = {0.25, 0.75};
  first.epoch = 7;

  const std::vector<double> x{0.50};
  const std::vector<double> x_nearby{0.52};  // same 0.1 bucket as 0.50
  const std::vector<double> y{1.30};
  const std::vector<double> z{2.70};

  cache.insert(7, x, first);
  const std::optional<Prediction> hit = cache.lookup(7, x_nearby);
  ASSERT_TRUE(hit.has_value()) << "nearby reading should share the bucket";
  EXPECT_EQ(hit->logits, first.logits);
  EXPECT_EQ(hit->label, first.label);

  // Same features under another epoch: unreachable by key construction.
  EXPECT_FALSE(cache.lookup(8, x).has_value());

  // LRU eviction at capacity 2: touch x, insert y then z -> y evicted.
  Prediction other = first;
  other.label = 0;
  cache.insert(7, y, other);
  ASSERT_TRUE(cache.lookup(7, x).has_value());  // refresh x's recency
  cache.insert(7, z, other);
  EXPECT_FALSE(cache.lookup(7, y).has_value()) << "y was least recent";
  EXPECT_TRUE(cache.lookup(7, x).has_value());
  EXPECT_TRUE(cache.lookup(7, z).has_value());
  EXPECT_LE(cache.entries(), 2u);
  EXPECT_EQ(cache.lookups(), 6u);
  EXPECT_EQ(cache.hits(), 4u);

  // Capacity 0 disables: lookups miss, inserts drop.
  ResultCache disabled(0, 0.0);
  EXPECT_FALSE(disabled.enabled());
  disabled.insert(7, x, first);
  EXPECT_FALSE(disabled.lookup(7, x).has_value());
}

TEST(ServeResultCache, ServesRepeatsWithoutReexecutionUntilSwap) {
  ServeFixture fx;
  const ServiceConfig config =
      ServiceConfig::from_environment(fx.env).with_result_cache(64);
  StatusOr<InferenceService> service = InferenceService::create(
      fx.env, fx.reuse_only_repository(1), fx.history.day(0), config);
  ASSERT_TRUE(service.ok()) << service.status().to_string();

  const std::vector<double>& x = fx.env.train.features[0];
  const StatusOr<Prediction> first = service->submit(x);  // miss: executes
  ASSERT_TRUE(first.ok());
  const StatusOr<Prediction> second = service->submit(x);  // hit: no sweep
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->logits, first->logits);
  EXPECT_EQ(second->epoch, first->epoch);

  ServingStats stats = service->stats();
  EXPECT_EQ(stats.cache_lookups, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.batches, 1u) << "the repeat must not run a sweep";
  EXPECT_EQ(stats.requests, 2u) << "cache hits still count as served";

  // A hot-swap moves the service to epoch 2; the cached epoch-1 answer must
  // be unreachable — the same vector now executes under the new epoch.
  const StatusOr<CalibrationReport> swap =
      service->on_calibration(fx.history.day(10));
  ASSERT_TRUE(swap.ok());
  ASSERT_TRUE(swap->swapped);
  const StatusOr<Prediction> third = service->submit(x);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->epoch, 2u) << "stale epoch-1 cache entry served after swap";
  stats = service->stats();
  EXPECT_EQ(stats.cache_lookups, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.batches, 2u);
}

TEST(ServeStats, RepositorySnapshotTracksDecisions) {
  ServeFixture fx;
  StatusOr<InferenceService> service =
      InferenceService::create(fx.env, {}, fx.history.day(0));
  ASSERT_TRUE(service.ok());

  RepositorySnapshot snapshot = service->repository_snapshot();
  EXPECT_EQ(snapshot.entries, 0u);
  EXPECT_EQ(snapshot.optimizations, 0);
  EXPECT_EQ(snapshot.reuses, 0);

  // A bootstrap compression day adds one entry and costs optimize time.
  const StatusOr<CalibrationReport> report =
      service->on_calibration(fx.history.day(5));
  ASSERT_TRUE(report.ok()) << report.status().to_string();
  snapshot = service->repository_snapshot();
  EXPECT_EQ(snapshot.entries, 1u);
  EXPECT_EQ(snapshot.optimizations, 1);
  EXPECT_GT(snapshot.total_optimize_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.threshold,
                   service->manager().repository().threshold());
}

}  // namespace
}  // namespace qucad
