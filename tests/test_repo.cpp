#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "data/seismic_synth.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/trainer.hpp"
#include "repo/constructor.hpp"
#include "repo/kmeans.hpp"
#include "repo/manager.hpp"
#include "repo/weights.hpp"

namespace qucad {
namespace {

TEST(Weights, CorrelatedDimensionGetsHighWeight) {
  // dim 0 drives accuracy, dim 1 is pure noise.
  Rng rng(5);
  std::vector<std::vector<double>> features;
  std::vector<double> acc;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    features.push_back({x, rng.uniform(0.0, 1.0)});
    acc.push_back(1.0 - 0.8 * x + rng.normal(0.0, 0.02));
  }
  const auto w = performance_weights(features, acc);
  EXPECT_GT(w[0], 0.9);
  EXPECT_LT(w[1], 0.3);
}

TEST(Weights, WeightedL1Distance) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, 1.0};
  const std::vector<double> w{0.5, 2.0};
  EXPECT_DOUBLE_EQ(weighted_l1(a, b, w), 0.5 * 2.0 + 2.0 * 1.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), std::sqrt(5.0));
  EXPECT_THROW(weighted_l1(a, {1.0}, w), PreconditionError);
}

std::vector<std::vector<double>> three_blobs(int per_blob, Rng& rng) {
  std::vector<std::vector<double>> data;
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_blob; ++i) {
      data.push_back({centers[c][0] + rng.normal(0, 0.5),
                      centers[c][1] + rng.normal(0, 0.5)});
    }
  }
  return data;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(7);
  const auto data = three_blobs(30, rng);
  const std::vector<double> w{1.0, 1.0};
  KMeansOptions options;
  options.k = 3;
  const KMeansResult result = weighted_kmeans(data, w, options);
  ASSERT_EQ(result.centroids.size(), 3u);
  // Every blob must map to a single cluster.
  for (int blob = 0; blob < 3; ++blob) {
    const int label = result.assignment[static_cast<std::size_t>(blob * 30)];
    for (int i = 0; i < 30; ++i) {
      EXPECT_EQ(result.assignment[static_cast<std::size_t>(blob * 30 + i)], label);
    }
  }
  // Intra-cluster distances are small relative to blob separation.
  for (double d : result.intra_mean_distance) EXPECT_LT(d, 2.0);
}

TEST(KMeans, L2MetricAlsoRecoversBlobs) {
  Rng rng(9);
  const auto data = three_blobs(25, rng);
  KMeansOptions options;
  options.k = 3;
  options.metric = ClusterMetric::L2;
  const KMeansResult result = weighted_kmeans(data, {1.0, 1.0}, options);
  std::vector<std::size_t> sizes = result.cluster_sizes;
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{25, 25, 25}));
}

TEST(KMeans, WeightsShapeClustering) {
  // Two groups differ only in dim 1; with weight 0 on dim 1 they are
  // indistinguishable, with high weight they separate.
  Rng rng(11);
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 40; ++i) {
    data.push_back({rng.normal(0, 0.1), (i < 20 ? 0.0 : 5.0) + rng.normal(0, 0.1)});
  }
  KMeansOptions options;
  options.k = 2;
  const KMeansResult with_weight =
      weighted_kmeans(data, {1.0, 10.0}, options);
  int crossings = 0;
  for (int i = 0; i < 20; ++i) {
    if (with_weight.assignment[static_cast<std::size_t>(i)] !=
        with_weight.assignment[0]) {
      ++crossings;
    }
  }
  EXPECT_EQ(crossings, 0);
  EXPECT_NE(with_weight.assignment[0], with_weight.assignment[25]);
}

TEST(KMeans, DeterministicPerSeed) {
  Rng rng(13);
  const auto data = three_blobs(20, rng);
  KMeansOptions options;
  options.k = 3;
  options.seed = 42;
  const auto a = weighted_kmeans(data, {1.0, 1.0}, options);
  const auto b = weighted_kmeans(data, {1.0, 1.0}, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeans, KLargerThanDataClamps) {
  const std::vector<std::vector<double>> data{{0.0}, {1.0}};
  KMeansOptions options;
  options.k = 6;
  const auto result = weighted_kmeans(data, {1.0}, options);
  EXPECT_LE(result.centroids.size(), 2u);
}

TEST(KMeans, MedianCentroidUnderL1) {
  // With an outlier, the L1 centroid (median) resists the pull.
  std::vector<std::vector<double>> data{{0.0}, {0.1}, {0.2}, {100.0}};
  KMeansOptions options;
  options.k = 1;
  const auto result = weighted_kmeans(data, {1.0}, options);
  EXPECT_LT(result.centroids[0][0], 1.0);  // median ~0.15, mean would be 25
}

TEST(Repository, BestMatchUsesWeightedL1) {
  ModelRepository repo;
  repo.set_weights({1.0, 0.0});  // dim 1 ignored
  RepoEntry e1;
  e1.centroid = {0.0, 100.0};
  e1.theta = {1.0};
  RepoEntry e2;
  e2.centroid = {5.0, 0.0};
  e2.theta = {2.0};
  repo.add(e1);
  repo.add(e2);

  const auto match = repo.best_match({0.5, -50.0});
  EXPECT_EQ(match.index, 0);  // dim 1 difference is weighted out
  EXPECT_NEAR(match.distance, 0.5, 1e-12);
}

TEST(Repository, EmptyMatchReturnsMinusOne) {
  ModelRepository repo;
  EXPECT_EQ(repo.best_match({1.0}).index, -1);
  EXPECT_TRUE(repo.empty());
}

TEST(Repository, MismatchedCentroidRejected) {
  ModelRepository repo;
  RepoEntry e;
  e.centroid = {1.0, 2.0};
  repo.add(e);
  RepoEntry bad;
  bad.centroid = {1.0};
  EXPECT_THROW(repo.add(bad), PreconditionError);
}

// --- constructor + manager on a small but real pipeline ---------------------

struct RepoFixture {
  QnnModel model;
  TranspiledModel transpiled;
  std::vector<double> theta;
  Dataset train;
  CalibrationHistory history{FluctuationScenario::belem(), 120, 77};

  RepoFixture() {
    Dataset raw = make_seismic(96, 5);
    train = FeatureScaler::fit(raw).transform(raw);
    model = build_paper_model(4, 4, 2, 1);
    theta = init_params(model, 7);
    TrainConfig config;
    config.epochs = 6;
    train_model(model, theta, train, config);
    transpiled = transpile_model(model.circuit, model.readout_qubits,
                                 CouplingMap::belem(), &history.day(0));
  }

  ConstructorOptions fast_constructor_options() const {
    ConstructorOptions options;
    options.kmeans.k = 3;
    options.admm.iterations = 2;
    options.admm.epochs_per_iteration = 1;
    options.admm.finetune_epochs = 0;
    options.profile_samples = 24;
    return options;
  }
};

TEST(Constructor, BuildsRepositoryWithKEntries) {
  RepoFixture fx;
  const auto offline = fx.history.slice(0, 60);
  const OfflineBuild build =
      build_repository(fx.model, fx.transpiled, fx.theta, offline, fx.train,
                       fx.train.take(24), fx.fast_constructor_options());
  EXPECT_EQ(build.repository.size(), 3u);
  EXPECT_GT(build.repository.threshold(), 0.0);
  EXPECT_EQ(build.diagnostics.day_accuracy.size(), 60u);
  EXPECT_EQ(build.diagnostics.weights.size(),
            fx.history.day(0).feature_vector().size());
  for (const RepoEntry& e : build.repository.entries()) {
    EXPECT_EQ(e.theta.size(), fx.theta.size());
    EXPECT_GE(e.mean_cluster_accuracy, 0.0);
  }
}

TEST(Manager, ReusesWhenCalibrationMatches) {
  RepoFixture fx;
  const auto offline = fx.history.slice(0, 60);
  OfflineBuild build =
      build_repository(fx.model, fx.transpiled, fx.theta, offline, fx.train,
                       fx.train.take(24), fx.fast_constructor_options());

  ManagerOptions options;
  options.admm = fx.fast_constructor_options().admm;
  OnlineManager manager(fx.model, fx.transpiled, fx.theta, fx.train,
                        std::move(build.repository), options);
  // A day from the offline window should match an existing centroid.
  const auto decision = manager.process_day(fx.history.day(30));
  EXPECT_EQ(decision.action, OnlineManager::Decision::Action::Reuse);
  EXPECT_GE(decision.entry_index, 0);
  EXPECT_EQ(manager.optimizations_run(), 0);
  EXPECT_EQ(manager.reuses(), 1);
  EXPECT_FALSE(manager.theta_for(decision).empty());
}

TEST(Manager, CompressesOnOutlierCalibration) {
  RepoFixture fx;
  const auto offline = fx.history.slice(0, 40);
  OfflineBuild build =
      build_repository(fx.model, fx.transpiled, fx.theta, offline, fx.train,
                       fx.train.take(24), fx.fast_constructor_options());

  ManagerOptions options;
  options.admm = fx.fast_constructor_options().admm;
  OnlineManager manager(fx.model, fx.transpiled, fx.theta, fx.train,
                        std::move(build.repository), options);
  // Craft an absurd calibration far outside anything seen offline.
  Calibration outlier(5, CouplingMap::belem().edges());
  for (const auto& [a, b] : outlier.edges()) outlier.set_cx_error(a, b, 0.24);
  for (int q = 0; q < 5; ++q) outlier.set_readout(q, {0.18, 0.2});
  const std::size_t before = manager.repository().size();
  const auto decision = manager.process_day(outlier);
  EXPECT_EQ(decision.action, OnlineManager::Decision::Action::NewModel);
  EXPECT_EQ(manager.repository().size(), before + 1);
  EXPECT_EQ(manager.optimizations_run(), 1);
  EXPECT_GT(decision.optimize_seconds, 0.0);
}

TEST(Manager, FailureReportOnInvalidCluster) {
  RepoFixture fx;
  ModelRepository repo;
  repo.set_weights(std::vector<double>(
      fx.history.day(0).feature_vector().size(), 1.0));
  RepoEntry weak;
  weak.centroid = fx.history.day(10).feature_vector();
  weak.theta = fx.theta;
  weak.mean_cluster_accuracy = 0.2;
  weak.valid = false;
  repo.add(weak);
  repo.set_threshold(1e9);  // everything matches

  ManagerOptions options;
  OnlineManager manager(fx.model, fx.transpiled, fx.theta, fx.train,
                        std::move(repo), options);
  const auto decision = manager.process_day(fx.history.day(11));
  EXPECT_EQ(decision.action, OnlineManager::Decision::Action::Failure);
}

TEST(Manager, ThetaForDecisionSurfacesFailureAsStatus) {
  RepoFixture fx;
  ModelRepository repo;
  repo.set_weights(std::vector<double>(
      fx.history.day(0).feature_vector().size(), 1.0));
  RepoEntry good;
  good.centroid = fx.history.day(10).feature_vector();
  good.theta = fx.theta;
  repo.add(good);
  RepoEntry weak = good;
  weak.theta[0] += 1.0;
  weak.valid = false;
  repo.add(weak);
  repo.set_threshold(1e9);

  OnlineManager manager(fx.model, fx.transpiled, fx.theta, fx.train,
                        std::move(repo), ManagerOptions{});

  // A reuse decision resolves to the stored parameters.
  OnlineManager::Decision reuse;
  reuse.action = OnlineManager::Decision::Action::Reuse;
  reuse.entry_index = 0;
  const StatusOr<std::span<const double>> ok =
      manager.theta_for_decision(reuse);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(std::vector<double>(ok->begin(), ok->end()), fx.theta);

  // Guidance-2 failure: kUnavailable, the caller must opt into the weak
  // model explicitly instead of getting it silently.
  OnlineManager::Decision failure;
  failure.action = OnlineManager::Decision::Action::Failure;
  failure.entry_index = 1;
  const StatusOr<std::span<const double>> unavailable =
      manager.theta_for_decision(failure);
  ASSERT_FALSE(unavailable.ok());
  EXPECT_EQ(unavailable.status().code(), StatusCode::kUnavailable);
  // The documented fallback (and the legacy shim) still reach the entry.
  EXPECT_EQ(manager.repository().entry(1).theta, manager.theta_for(failure));

  // A decision that references nothing: kInvalidArgument from the Status
  // surface, PreconditionError from the legacy shim.
  const OnlineManager::Decision empty;
  EXPECT_EQ(manager.theta_for_decision(empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_THROW(manager.theta_for(empty), PreconditionError);
}

TEST(Manager, OwnsItsStateByValue) {
  RepoFixture fx;
  ManagerOptions options;
  options.admm = fx.fast_constructor_options().admm;
  // Build the manager from scope-local copies that die immediately — the
  // manager must keep working because it copies, not references (the
  // pre-serving-layer dangling footgun, caught by ASan if regressed).
  auto make_manager = [&] {
    const QnnModel model_copy = fx.model;
    const TranspiledModel transpiled_copy = fx.transpiled;
    const Dataset train_copy = fx.train;
    const std::vector<double> theta_copy = fx.theta;
    return OnlineManager(model_copy, transpiled_copy, theta_copy, train_copy,
                         ModelRepository{}, options);
  };
  OnlineManager manager = make_manager();
  const auto decision = manager.process_day(fx.history.day(0));
  EXPECT_EQ(decision.action, OnlineManager::Decision::Action::NewModel);
  ASSERT_TRUE(manager.theta_for_decision(decision).ok());
}

TEST(Manager, BootstrapModeStartsWithCompression) {
  RepoFixture fx;
  ManagerOptions options;
  options.admm = fx.fast_constructor_options().admm;
  OnlineManager manager(fx.model, fx.transpiled, fx.theta, fx.train,
                        ModelRepository{}, options);
  const auto first = manager.process_day(fx.history.day(0));
  EXPECT_EQ(first.action, OnlineManager::Decision::Action::NewModel);
  // Similar next day should reuse.
  const auto second = manager.process_day(fx.history.day(1));
  EXPECT_EQ(second.action, OnlineManager::Decision::Action::Reuse);
}

}  // namespace
}  // namespace qucad
