// End-to-end integration tests: the full QuCAD loop on a rigged noise
// history where the expected qualitative outcomes are known by construction.

#include <gtest/gtest.h>

#include "core/qucad.hpp"
#include "core/strategies.hpp"
#include "data/iris_synth.hpp"
#include "data/mnist_synth.hpp"
#include "data/seismic_synth.hpp"
#include "eval/harness.hpp"
#include "noise/calibration_history.hpp"

namespace qucad {
namespace {

PipelineConfig fast_config() {
  // Smaller data and pretraining for test speed, but production-quality
  // compression settings (weak compression would invalidate the outcomes
  // these tests assert).
  PipelineConfig config;
  config.pretrain.epochs = 8;
  config.max_train_samples = 96;
  config.max_test_samples = 48;
  config.profile_samples = 24;
  config.nat.epochs = 2;
  config.constructor_options.admm = config.admm;
  config.constructor_options.kmeans.k = 3;
  config.constructor_options.profile_samples = 24;
  config.manager_options.admm = config.admm;
  return config;
}

TEST(Integration, CompressionRecoversAccuracyOnHotDay) {
  const CalibrationHistory h(FluctuationScenario::belem(),
                             CalibrationHistory::kTotalDays, 2021);
  const Environment env = prepare_environment(
      make_seismic(400, 11), CouplingMap::belem(), h.day(250), fast_config());

  const Calibration& hot = h.day(310);  // edge <1,2> episode peak
  const double before = noisy_accuracy(env.model, env.transpiled,
                                       env.theta_pretrained, env.test, hot);
  const AdmmOptions admm;  // production defaults
  const CompressedModel compressed = admm_compress(
      env.model, env.transpiled, env.theta_pretrained, env.train, hot, admm);
  const double after = noisy_accuracy(env.model, env.transpiled,
                                      compressed.theta, env.test, hot);
  EXPECT_GE(after, before - 0.02);  // compression must not hurt
  EXPECT_LT(compressed.cx_after, compressed.cx_before);
}

TEST(Integration, QuCadBeatsBaselineOverEpisodeWindow) {
  const CalibrationHistory h(FluctuationScenario::belem(),
                             CalibrationHistory::kTotalDays, 2021);
  const Environment env = prepare_environment(
      make_seismic(400, 11), CouplingMap::belem(), h.day(0), fast_config());

  // Online window straddling the global surge and the <1,2> episode,
  // evaluated every 4th day for speed.
  const auto offline = h.slice(0, 80);
  const auto online = h.slice(260, 60);

  BaselineStrategy baseline(env);
  QuCadStrategy qucad(env);
  HarnessOptions options;
  options.day_stride = 4;
  const MethodResult base_result =
      run_longitudinal(baseline, env, offline, online, options);
  const MethodResult qucad_result =
      run_longitudinal(qucad, env, offline, online, options);

  EXPECT_GE(qucad_result.metrics.mean_accuracy,
            base_result.metrics.mean_accuracy - 0.02);
}

TEST(Integration, RepositoryReducesOnlineOptimizations) {
  const CalibrationHistory h(FluctuationScenario::belem(),
                             CalibrationHistory::kTotalDays, 2021);
  const Environment env = prepare_environment(
      make_seismic(400, 11), CouplingMap::belem(), h.day(0), fast_config());

  const auto offline = h.slice(0, 80);
  const auto online = h.slice(243, 40);

  QuCadStrategy qucad(env);
  CompressionEverydayStrategy everyday(env, CompressionMode::NoiseAware);
  HarnessOptions options;
  options.day_stride = 2;
  run_longitudinal(qucad, env, offline, online, options);
  run_longitudinal(everyday, env, {}, online, options);

  // The repository must cut the number of online optimizations hard
  // (paper: ~146x fewer).
  EXPECT_LT(qucad.optimizations(), everyday.optimizations() / 2);
  EXPECT_LT(qucad.online_optimize_seconds(),
            everyday.online_optimize_seconds());
}

TEST(Integration, IrisThreeClassPipelineRuns) {
  const CalibrationHistory h(FluctuationScenario::belem(), 30, 7);
  PipelineConfig config = fast_config();
  config.ansatz_repeats = 3;  // paper's Iris setting
  config.test_fraction = 0.334;
  const Environment env = prepare_environment(make_iris(150, 7),
                                              CouplingMap::belem(), h.day(0),
                                              config);
  EXPECT_EQ(env.model.num_params(), 120);
  const double acc = noisy_accuracy(env.model, env.transpiled,
                                    env.theta_pretrained, env.test, h.day(5));
  EXPECT_GT(acc, 0.3);  // must beat chance on 3 classes
}

TEST(Integration, Mnist4SixteenPixelPipelineRuns) {
  const CalibrationHistory h(FluctuationScenario::belem(), 30, 7);
  PipelineConfig config = fast_config();
  config.max_train_samples = 64;
  config.max_test_samples = 32;
  const Environment env = prepare_environment(make_mnist4(300, 3),
                                              CouplingMap::belem(), h.day(0),
                                              config);
  EXPECT_EQ(env.model.num_inputs(), 16);
  const double acc = noisy_accuracy(env.model, env.transpiled,
                                    env.theta_pretrained, env.test, h.day(5));
  EXPECT_GT(acc, 0.25);  // beats 4-class chance
}

TEST(Integration, JakartaSevenQubitPipelineRuns) {
  const CalibrationHistory h(FluctuationScenario::jakarta(), 30, 99);
  const Environment env = prepare_environment(
      make_seismic(300, 11), CouplingMap::jakarta(), h.day(0), fast_config());
  EXPECT_EQ(env.transpiled.num_physical_qubits(), 7);
  const double acc = noisy_accuracy(env.model, env.transpiled,
                                    env.theta_pretrained, env.test, h.day(5));
  EXPECT_GT(acc, 0.4);
}

}  // namespace
}  // namespace qucad
