#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/adjoint.hpp"

namespace qucad {
namespace {

// Central finite differences on <O_eff>, the ground truth both engines must
// match.
std::vector<double> finite_difference(const Circuit& circuit,
                                      std::vector<double> theta,
                                      const std::vector<double>& x,
                                      const std::vector<double>& weights,
                                      double eps = 1e-6) {
  auto value = [&](const std::vector<double>& t) {
    StateVector sv(circuit.num_qubits());
    sv.run(circuit, t, x);
    double acc = 0.0;
    for (int q = 0; q < circuit.num_qubits(); ++q) {
      acc += weights[static_cast<std::size_t>(q)] * sv.expectation_z(q);
    }
    return acc;
  };
  std::vector<double> grad(theta.size());
  for (std::size_t i = 0; i < theta.size(); ++i) {
    const double orig = theta[i];
    theta[i] = orig + eps;
    const double up = value(theta);
    theta[i] = orig - eps;
    const double down = value(theta);
    theta[i] = orig;
    grad[i] = (up - down) / (2.0 * eps);
  }
  return grad;
}

TEST(Adjoint, SingleRyGradient) {
  Circuit c(1);
  c.ry(0, trainable(0));
  const std::vector<double> theta{0.8};
  const auto result = adjoint_gradient(c, theta, {}, std::vector<double>{1.0});
  // d/dt cos(t) = -sin(t)
  EXPECT_NEAR(result.gradients[0], -std::sin(0.8), 1e-10);
  EXPECT_NEAR(result.z_expectations[0], std::cos(0.8), 1e-10);
}

TEST(Adjoint, RzOnPlusStateWithXObservableViaBasisChange) {
  // <Z> after H RZ(t) H |0> = cos(t); gradient -sin(t).
  Circuit c(1);
  c.h(0).rz(0, trainable(0)).h(0);
  const std::vector<double> theta{1.1};
  const auto result = adjoint_gradient(c, theta, {}, std::vector<double>{1.0});
  EXPECT_NEAR(result.z_expectations[0], std::cos(1.1), 1e-10);
  EXPECT_NEAR(result.gradients[0], -std::sin(1.1), 1e-10);
}

TEST(Adjoint, MatchesFiniteDifferenceOnPaperStyleCircuit) {
  Circuit c(4);
  int p = 0;
  for (int q = 0; q < 4; ++q) c.ry(q, input(q));
  for (int q = 0; q < 4; ++q) c.ry(q, trainable(p++));
  for (int q = 0; q < 4; ++q) c.cry(q, (q + 1) % 4, trainable(p++));
  for (int q = 0; q < 4; ++q) c.rx(q, trainable(p++));
  for (int q = 0; q < 4; ++q) c.crz(q, (q + 1) % 4, trainable(p++));
  for (int q = 0; q < 4; ++q) c.rz(q, trainable(p++));

  Rng rng(17);
  std::vector<double> theta(static_cast<std::size_t>(p));
  for (double& t : theta) t = rng.uniform(-3.0, 3.0);
  const std::vector<double> x{0.3, 1.2, 2.2, 0.7};
  const std::vector<double> weights{0.7, -0.4, 1.3, 0.2};

  const auto result = adjoint_gradient(c, theta, x, weights);
  const auto fd = finite_difference(c, theta, x, weights);
  ASSERT_EQ(result.gradients.size(), fd.size());
  for (std::size_t i = 0; i < fd.size(); ++i) {
    EXPECT_NEAR(result.gradients[i], fd[i], 1e-6) << "param " << i;
  }
}

TEST(Adjoint, MatchesParameterShift) {
  Circuit c(3);
  c.ry(0, trainable(0))
      .cry(0, 1, trainable(1))
      .crx(1, 2, trainable(2))
      .rz(2, trainable(3))
      .crz(2, 0, trainable(4))
      .rx(1, trainable(5));
  Rng rng(23);
  std::vector<double> theta(6);
  for (double& t : theta) t = rng.uniform(-2.0, 2.0);
  const std::vector<double> weights{1.0, 0.5, -0.8};

  const auto adj = adjoint_gradient(c, theta, {}, weights);
  const auto shift = parameter_shift_gradient(c, theta, {}, weights);
  ASSERT_EQ(adj.gradients.size(), shift.size());
  for (std::size_t i = 0; i < shift.size(); ++i) {
    EXPECT_NEAR(adj.gradients[i], shift[i], 1e-9) << "param " << i;
  }
}

TEST(Adjoint, SharedParameterAccumulates) {
  // Same trainable on two gates: gradient is the sum of both contributions.
  Circuit c(1);
  c.ry(0, trainable(0)).ry(0, trainable(0));
  const std::vector<double> theta{0.5};
  const auto result = adjoint_gradient(c, theta, {}, std::vector<double>{1.0});
  // <Z> = cos(2t); d/dt = -2 sin(2t)
  EXPECT_NEAR(result.gradients[0], -2.0 * std::sin(1.0), 1e-10);
}

TEST(Adjoint, FixedGatesContributeNoGradient) {
  Circuit c(2);
  c.h(0).ry(1, trainable(0)).cx(0, 1).rz(0, 0.7);
  const std::vector<double> theta{1.2};
  const auto result = adjoint_gradient(c, theta, {}, std::vector<double>{0.0, 1.0});
  EXPECT_EQ(result.gradients.size(), 1u);
  const auto fd =
      finite_difference(c, theta, {}, std::vector<double>{0.0, 1.0});
  EXPECT_NEAR(result.gradients[0], fd[0], 1e-6);
}

TEST(Adjoint, WeightFunctionSeesForwardExpectations) {
  Circuit c(2);
  c.ry(0, trainable(0)).ry(1, trainable(1));
  const std::vector<double> theta{0.4, 1.9};
  bool called = false;
  adjoint_gradient(c, theta, {}, [&](const std::vector<double>& z) {
    called = true;
    EXPECT_NEAR(z[0], std::cos(0.4), 1e-10);
    EXPECT_NEAR(z[1], std::cos(1.9), 1e-10);
    return std::vector<double>{1.0, 1.0};
  });
  EXPECT_TRUE(called);
}

// Property sweep: adjoint == finite differences across every rotation kind.
class AdjointGateSweep : public ::testing::TestWithParam<GateKind> {};

TEST_P(AdjointGateSweep, MatchesFiniteDifference) {
  const GateKind kind = GetParam();
  Circuit c(2);
  c.h(0).ry(1, 0.3);
  Gate g;
  g.kind = kind;
  g.q0 = 0;
  g.q1 = gate_arity(kind) == 2 ? 1 : -1;
  g.param = trainable(0);
  c.add(g);
  c.cx(0, 1);

  for (double t : {-2.1, -0.5, 0.0, 0.9, 2.8}) {
    const std::vector<double> theta{t};
    const std::vector<double> weights{0.6, 1.0};
    const auto adj = adjoint_gradient(c, theta, {}, weights);
    const auto fd = finite_difference(c, theta, {}, weights);
    EXPECT_NEAR(adj.gradients[0], fd[0], 1e-6) << "theta=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRotations, AdjointGateSweep,
                         ::testing::Values(GateKind::RX, GateKind::RY,
                                           GateKind::RZ, GateKind::CRX,
                                           GateKind::CRY, GateKind::CRZ),
                         [](const ::testing::TestParamInfo<GateKind>& info) {
                           return gate_name(info.param);
                         });

}  // namespace
}  // namespace qucad
