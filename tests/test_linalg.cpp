#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "linalg/gates.hpp"
#include "linalg/matrix.hpp"

#include "test_support.hpp"

namespace qucad {
namespace {

constexpr double kTol = test::kTightTol;

TEST(CMat, IdentityAndZeros) {
  const CMat id = CMat::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0).real(), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1).real(), 0.0);
  EXPECT_DOUBLE_EQ(id.trace().real(), 3.0);
  const CMat z = CMat::zeros(2, 4);
  EXPECT_DOUBLE_EQ(z.frobenius_norm(), 0.0);
}

TEST(CMat, MatmulAgainstHand) {
  const CMat a(2, 2, {1, 2, 3, 4});
  const CMat b(2, 2, {5, 6, 7, 8});
  const CMat c = a * b;
  EXPECT_NEAR(std::abs(c(0, 0) - cplx{19, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(c(0, 1) - cplx{22, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(c(1, 0) - cplx{43, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(c(1, 1) - cplx{50, 0}), 0.0, kTol);
}

TEST(CMat, DaggerConjugatesAndTransposes) {
  const CMat m(2, 2, {cplx{1, 2}, cplx{3, 4}, cplx{5, 6}, cplx{7, 8}});
  const CMat d = m.dagger();
  EXPECT_EQ(d(0, 1), (cplx{5, -6}));
  EXPECT_EQ(d(1, 0), (cplx{3, -4}));
}

TEST(CMat, ApplyMatchesMatmul) {
  const CMat m(2, 2, {1, 2, 3, 4});
  const std::vector<cplx> v{cplx{1, 0}, cplx{0, 1}};
  const auto out = m.apply(v);
  EXPECT_NEAR(std::abs(out[0] - (cplx{1, 2})), 0.0, kTol);
  EXPECT_NEAR(std::abs(out[1] - (cplx{3, 4})), 0.0, kTol);
}

TEST(Kron, TwoByTwo) {
  const CMat k = kron(gates::X(), gates::I());
  // X (x) I swaps the high bit.
  EXPECT_DOUBLE_EQ(k(0, 2).real(), 1.0);
  EXPECT_DOUBLE_EQ(k(1, 3).real(), 1.0);
  EXPECT_DOUBLE_EQ(k(2, 0).real(), 1.0);
  EXPECT_DOUBLE_EQ(k(0, 0).real(), 0.0);
}

TEST(Gates, AllFixedGatesAreUnitary) {
  for (const CMat& g : {gates::I(), gates::X(), gates::Y(), gates::Z(),
                        gates::H(), gates::S(), gates::T(), gates::SX(),
                        gates::SXdg()}) {
    EXPECT_TRUE(g.is_unitary(1e-12));
  }
  for (const CMat& g : {gates::CX(), gates::CZ(), gates::SWAP()}) {
    EXPECT_TRUE(g.is_unitary(1e-12));
  }
}

TEST(Gates, RotationsAreUnitaryAcrossAngles) {
  for (double theta : {-2.0, -0.3, 0.0, 0.7, 1.57, 3.14159, 6.0}) {
    EXPECT_TRUE(gates::RX(theta).is_unitary(1e-12));
    EXPECT_TRUE(gates::RY(theta).is_unitary(1e-12));
    EXPECT_TRUE(gates::RZ(theta).is_unitary(1e-12));
    EXPECT_TRUE(gates::CRX(theta).is_unitary(1e-12));
    EXPECT_TRUE(gates::CRY(theta).is_unitary(1e-12));
    EXPECT_TRUE(gates::CRZ(theta).is_unitary(1e-12));
  }
}

TEST(Gates, PauliAlgebra) {
  // HXH = Z, HZH = X, XYX = -Y, S^2 = Z
  EXPECT_LT((gates::H() * gates::X() * gates::H()).max_abs_diff(gates::Z()), kTol);
  EXPECT_LT((gates::H() * gates::Z() * gates::H()).max_abs_diff(gates::X()), kTol);
  EXPECT_LT((gates::X() * gates::Y() * gates::X()).max_abs_diff(
                gates::Y() * cplx{-1.0, 0.0}),
            kTol);
  EXPECT_LT((gates::S() * gates::S()).max_abs_diff(gates::Z()), kTol);
}

TEST(Gates, SxSquaredIsX) {
  EXPECT_LT((gates::SX() * gates::SX()).max_abs_diff(gates::X()), kTol);
}

TEST(Gates, RotationComposition) {
  // R(a) * R(b) = R(a+b) for each axis.
  for (double a : {0.3, 1.2}) {
    for (double b : {-0.8, 2.1}) {
      EXPECT_LT((gates::RX(a) * gates::RX(b)).max_abs_diff(gates::RX(a + b)), kTol);
      EXPECT_LT((gates::RY(a) * gates::RY(b)).max_abs_diff(gates::RY(a + b)), kTol);
      EXPECT_LT((gates::RZ(a) * gates::RZ(b)).max_abs_diff(gates::RZ(a + b)), kTol);
    }
  }
}

TEST(Gates, RotationsAtTwoPiAreMinusIdentity) {
  const CMat minus_id = CMat::identity(2) * cplx{-1.0, 0.0};
  EXPECT_LT(gates::RX(2 * M_PI).max_abs_diff(minus_id), 1e-10);
  EXPECT_LT(gates::RY(2 * M_PI).max_abs_diff(minus_id), 1e-10);
  EXPECT_LT(gates::RZ(2 * M_PI).max_abs_diff(minus_id), 1e-10);
}

TEST(Gates, ControlledBlockStructure) {
  const CMat cry = gates::CRY(0.9);
  // Control-0 block is identity.
  EXPECT_NEAR(std::abs(cry(0, 0) - cplx{1, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(cry(1, 1) - cplx{1, 0}), 0.0, kTol);
  EXPECT_NEAR(std::abs(cry(0, 2)), 0.0, kTol);
  // Control-1 block is RY(0.9).
  const CMat ry = gates::RY(0.9);
  EXPECT_NEAR(std::abs(cry(2, 2) - ry(0, 0)), 0.0, kTol);
  EXPECT_NEAR(std::abs(cry(3, 2) - ry(1, 0)), 0.0, kTol);
}

TEST(Gates, U3Specializations) {
  EXPECT_LT(gates::U3(0.7, 0.0, 0.0).max_abs_diff(gates::RY(0.7)), kTol);
  EXPECT_LT(gates::U3(0.7, -M_PI / 2, M_PI / 2).max_abs_diff(gates::RX(0.7)), kTol);
}

TEST(VectorOps, InnerAndNorm) {
  const std::vector<cplx> a{cplx{1, 0}, cplx{0, 1}};
  const std::vector<cplx> b{cplx{0, 1}, cplx{1, 0}};
  // <a|b> = conj(1)*i + conj(i)*1 = i - i = 0
  EXPECT_NEAR(std::abs(inner(a, b)), 0.0, kTol);
  EXPECT_NEAR(norm(a), std::sqrt(2.0), kTol);
}

TEST(VectorOps, GlobalPhaseEquality) {
  const std::vector<cplx> a{cplx{1, 0}, cplx{0, 0.5}};
  std::vector<cplx> b = a;
  const cplx phase = std::exp(cplx{0, 1.234});
  for (cplx& v : b) v *= phase;
  EXPECT_TRUE(equal_up_to_global_phase(a, b));
  b[0] += 0.1;
  EXPECT_FALSE(equal_up_to_global_phase(a, b));
}

TEST(CMat, HermitianCheck) {
  EXPECT_TRUE(gates::X().is_hermitian());
  EXPECT_TRUE(gates::Y().is_hermitian());
  EXPECT_FALSE(gates::S().is_hermitian());
}

TEST(CMat, ShapeMismatchThrows) {
  const CMat a(2, 2);
  const CMat b(3, 3);
  EXPECT_THROW(a + b, PreconditionError);
  EXPECT_THROW(a * b, PreconditionError);
}

}  // namespace
}  // namespace qucad
