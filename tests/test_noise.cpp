#include <gtest/gtest.h>

#include "common/require.hpp"
#include "noise/calibration.hpp"
#include "noise/noise_model.hpp"

namespace qucad {
namespace {

Calibration make_test_calibration() {
  Calibration cal(3, {{0, 1}, {1, 2}});
  cal.set_sx_error(0, 1e-4);
  cal.set_sx_error(1, 2e-4);
  cal.set_sx_error(2, 3e-4);
  cal.set_cx_error(0, 1, 0.01);
  cal.set_cx_error(1, 2, 0.02);
  cal.set_readout(0, {0.02, 0.03});
  cal.set_readout(1, {0.01, 0.015});
  cal.set_t1_t2(0, 120.0, 100.0);
  return cal;
}

TEST(Calibration, AccessorsRoundTrip) {
  const Calibration cal = make_test_calibration();
  EXPECT_DOUBLE_EQ(cal.sx_error(1), 2e-4);
  EXPECT_DOUBLE_EQ(cal.cx_error(0, 1), 0.01);
  EXPECT_DOUBLE_EQ(cal.cx_error(1, 0), 0.01);  // order-insensitive
  EXPECT_DOUBLE_EQ(cal.readout(0).p1_given_0, 0.02);
  EXPECT_DOUBLE_EQ(cal.t1_us(0), 120.0);
}

TEST(Calibration, RejectsInvalidValues) {
  Calibration cal(2, {{0, 1}});
  EXPECT_THROW(cal.set_sx_error(5, 0.1), PreconditionError);
  EXPECT_THROW(cal.set_sx_error(0, 1.5), PreconditionError);
  EXPECT_THROW(cal.set_cx_error(0, 0, 0.1), PreconditionError);
  EXPECT_THROW(cal.set_t1_t2(0, 100.0, 250.0), PreconditionError);  // T2>2T1
  EXPECT_THROW(cal.cx_error(0, 5), PreconditionError);
}

TEST(Calibration, NoiseOfDispatchesByArity) {
  const Calibration cal = make_test_calibration();
  EXPECT_DOUBLE_EQ(cal.noise_of(2), 3e-4);
  EXPECT_DOUBLE_EQ(cal.noise_of(1, 2), 0.02);
}

TEST(Calibration, UncoupledPairThrows) {
  const Calibration cal = make_test_calibration();
  EXPECT_EQ(cal.edge_index(0, 2), -1);
  EXPECT_THROW(cal.cx_error(0, 2), PreconditionError);
}

TEST(Calibration, FeatureVectorLayoutAndNames) {
  const Calibration cal = make_test_calibration();
  const auto f = cal.feature_vector();
  const auto names = cal.feature_names();
  ASSERT_EQ(f.size(), 8u);  // 3 sx + 3 ro + 2 cx
  ASSERT_EQ(names.size(), 8u);
  EXPECT_DOUBLE_EQ(f[0], 1e-4);
  EXPECT_EQ(names[0], "sx0");
  EXPECT_DOUBLE_EQ(f[3], 0.025);  // mean readout of q0
  EXPECT_EQ(names[3], "ro0");
  EXPECT_DOUBLE_EQ(f[6], 0.01);
  EXPECT_EQ(names[6], "cx0_1");
}

TEST(Calibration, FromFeaturesRoundTrip) {
  const Calibration cal = make_test_calibration();
  const auto f = cal.feature_vector();
  const Calibration rebuilt =
      Calibration::from_features(3, {{0, 1}, {1, 2}}, f, 110.0, 90.0);
  EXPECT_DOUBLE_EQ(rebuilt.sx_error(2), cal.sx_error(2));
  EXPECT_DOUBLE_EQ(rebuilt.cx_error(1, 2), cal.cx_error(1, 2));
  EXPECT_DOUBLE_EQ(rebuilt.readout(0).p1_given_0, 0.025);  // symmetrized
  EXPECT_DOUBLE_EQ(rebuilt.t1_us(0), 110.0);
}

TEST(Calibration, FromFeaturesClampsNegatives) {
  std::vector<double> f(8, -0.5);
  const Calibration rebuilt =
      Calibration::from_features(3, {{0, 1}, {1, 2}}, f, 100.0, 80.0);
  EXPECT_DOUBLE_EQ(rebuilt.sx_error(0), 0.0);
  EXPECT_DOUBLE_EQ(rebuilt.cx_error(0, 1), 0.0);
}

TEST(NoiseModel, BuildsChannelsFromCalibration) {
  const Calibration cal = make_test_calibration();
  const NoiseModel nm(cal);
  EXPECT_EQ(nm.num_qubits(), 3);
  EXPECT_FALSE(nm.is_noiseless());
  EXPECT_DOUBLE_EQ(nm.pulse_noise(0).depolarizing_p, 1e-4);
  EXPECT_DOUBLE_EQ(nm.cx_noise(1, 2).depolarizing_p, 0.02);
  EXPECT_DOUBLE_EQ(nm.cx_noise(2, 1).depolarizing_p, 0.02);
  EXPECT_FALSE(nm.pulse_noise(0).thermal.empty());
  EXPECT_THROW(nm.cx_noise(0, 2), PreconditionError);
}

TEST(NoiseModel, ThermalCanBeDisabled) {
  const Calibration cal = make_test_calibration();
  NoiseModelOptions options;
  options.include_thermal_relaxation = false;
  const NoiseModel nm(cal, options);
  EXPECT_TRUE(nm.pulse_noise(0).thermal.empty());
  EXPECT_TRUE(nm.cx_noise(0, 1).thermal_first.empty());
}

TEST(NoiseModel, ReadoutCanBeDisabled) {
  const Calibration cal = make_test_calibration();
  NoiseModelOptions options;
  options.include_readout_error = false;
  const NoiseModel nm(cal, options);
  EXPECT_DOUBLE_EQ(nm.readout()[0].p1_given_0, 0.0);
}

TEST(NoiseModel, ZeroCalibrationWithoutThermalIsNoiseless) {
  Calibration cal(2, {{0, 1}});
  NoiseModelOptions options;
  options.include_thermal_relaxation = false;
  options.include_readout_error = false;
  const NoiseModel nm(cal, options);
  EXPECT_TRUE(nm.is_noiseless());
}

}  // namespace
}  // namespace qucad
