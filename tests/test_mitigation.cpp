#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "mitigation/readout_mitigation.hpp"
#include "mitigation/stability.hpp"
#include "mitigation/zne.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/eval_cache.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {
namespace {

TEST(ReadoutMitigation, InvertsKnownConfusion) {
  // True state |0>, confusion p1|0 = 0.1: measured (0.9, 0.1).
  const std::vector<ReadoutError> errors{{0.1, 0.2}};
  const ReadoutMitigator mitigator(errors);
  const std::vector<double> measured = apply_readout_error({1.0, 0.0}, errors);
  const std::vector<double> recovered = mitigator.apply(measured);
  EXPECT_NEAR(recovered[0], 1.0, 1e-9);
  EXPECT_NEAR(recovered[1], 0.0, 1e-9);
}

TEST(ReadoutMitigation, RoundTripOnTwoQubits) {
  const std::vector<ReadoutError> errors{{0.05, 0.08}, {0.12, 0.03}};
  const ReadoutMitigator mitigator(errors);
  const std::vector<double> truth{0.4, 0.1, 0.3, 0.2};
  const std::vector<double> measured = apply_readout_error(truth, errors);
  const std::vector<double> recovered = mitigator.apply(measured);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR(recovered[i], truth[i], 1e-9) << i;
  }
}

TEST(ReadoutMitigation, MitigatedExpectationRecoversZ) {
  const std::vector<ReadoutError> errors{{0.1, 0.1}};
  const ReadoutMitigator mitigator(errors);
  // Truth: 70/30 mix -> <Z> = 0.4; measured <Z> = 0.4 * (1 - 0.2) = 0.32.
  const std::vector<double> measured = apply_readout_error({0.7, 0.3}, errors);
  EXPECT_NEAR(mitigator.mitigated_expectation_z(measured, 0), 0.4, 1e-9);
}

TEST(ReadoutMitigation, ClipsQuasiProbabilities) {
  const std::vector<ReadoutError> errors{{0.2, 0.2}};
  const ReadoutMitigator mitigator(errors);
  // A distribution impossible under the confusion model produces negative
  // quasi-probabilities, which must be clipped back onto the simplex.
  const std::vector<double> impossible{0.02, 0.98};
  const std::vector<double> out = mitigator.apply(impossible);
  double total = 0.0;
  for (double p : out) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zne, ScaledCalibrationMultipliesRates) {
  Calibration cal(2, {{0, 1}});
  cal.set_sx_error(0, 1e-3);
  cal.set_cx_error(0, 1, 0.02);
  cal.set_readout(0, {0.05, 0.04});
  const Calibration scaled = scale_calibration_noise(cal, 3.0);
  EXPECT_NEAR(scaled.sx_error(0), 3e-3, 1e-12);
  EXPECT_NEAR(scaled.cx_error(0, 1), 0.06, 1e-12);
  EXPECT_NEAR(scaled.readout(0).p1_given_0, 0.15, 1e-12);
  // T1/T2 shrink with the factor.
  EXPECT_LT(scaled.t1_us(0), cal.t1_us(0));
}

TEST(Zne, LinearExtrapolationExact) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{0.8, 0.6, 0.4};  // y = 1 - 0.2 x
  EXPECT_NEAR(extrapolate_to_zero(xs, ys), 1.0, 1e-12);
  EXPECT_THROW(extrapolate_to_zero(std::vector<double>{1.0},
                                   std::vector<double>{0.5}),
               PreconditionError);
}

TEST(Zne, RecoversIdealExpectationOnSimpleCircuit) {
  // RY(0.8)|0>: ideal <Z> = cos(0.8). Under depolarizing noise the
  // expectation shrinks ~linearly in the error rate, so ZNE recovers most
  // of the bias.
  Circuit c(2);
  c.ry(0, 0.8).cry(0, 1, 0.5);
  RoutedCircuit routed;
  routed.circuit = c;
  routed.initial_layout = trivial_layout(2);
  routed.final_mapping = routed.initial_layout;
  const PhysicalCircuit phys = lower_to_basis(routed, {});

  Calibration cal(2, {{0, 1}});
  cal.set_sx_error(0, 2e-3);
  cal.set_sx_error(1, 2e-3);
  cal.set_cx_error(0, 1, 0.03);
  cal.set_readout(0, {0.02, 0.02});

  ZneOptions options;
  options.noise.include_thermal_relaxation = false;

  const NoisyExecutor noisy(phys, NoiseModel(cal, options.noise));
  const double z_noisy = noisy.run_z({})[0];
  const double z_zne = zne_expectations(phys, cal, {}, options)[0];
  const double z_ideal = std::cos(0.8);

  EXPECT_LT(std::abs(z_zne - z_ideal), std::abs(z_noisy - z_ideal));
}

TEST(ZneCache, CachedSweepMatchesUncachedAndStopsRecompiling) {
  Circuit c(2);
  c.ry(0, 0.8).cry(0, 1, 0.5);
  RoutedCircuit routed;
  routed.circuit = c;
  routed.initial_layout = trivial_layout(2);
  routed.final_mapping = routed.initial_layout;
  const PhysicalCircuit phys = lower_to_basis(routed, {});

  Calibration cal(2, {{0, 1}});
  cal.set_sx_error(0, 2e-3);
  cal.set_sx_error(1, 2e-3);
  cal.set_cx_error(0, 1, 0.03);
  cal.set_readout(0, {0.02, 0.02});

  ZneOptions cached;
  cached.noise.include_thermal_relaxation = false;
  ZneOptions uncached = cached;
  uncached.use_cache = false;

  CompiledEvalCache::global().clear();
  const std::vector<double> first = zne_expectations(phys, cal, {}, cached);
  const EvalCacheStats cold = CompiledEvalCache::global().stats();
  EXPECT_EQ(cold.misses, cached.scale_factors.size())
      << "one compiled executor per scale factor";

  const std::vector<double> second = zne_expectations(phys, cal, {}, cached);
  const EvalCacheStats warm = CompiledEvalCache::global().stats();
  EXPECT_EQ(warm.misses, cold.misses) << "repeat call must not recompile";
  EXPECT_EQ(warm.hits, cold.hits + cached.scale_factors.size());

  const std::vector<double> reference = zne_expectations(phys, cal, {}, uncached);
  ASSERT_EQ(first.size(), reference.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "slot " << i;
    EXPECT_EQ(first[i], reference[i])
        << "cached executor must replay the identical program, slot " << i;
  }

  // A different scale factor set keys different executors (the scaled
  // calibration is part of the key), never a stale hit.
  ZneOptions shifted = cached;
  shifted.scale_factors = {1.0, 1.5, 2.0};
  const std::vector<double> other = zne_expectations(phys, cal, {}, shifted);
  const EvalCacheStats after = CompiledEvalCache::global().stats();
  EXPECT_EQ(after.misses, warm.misses + 1)
      << "factors 1.0 and 2.0 were cached by the first sweep; only 1.5 is new";
  EXPECT_NE(other[0], 0.0);
}

TEST(Stability, HellingerBasics) {
  const std::vector<double> p{0.5, 0.5};
  EXPECT_NEAR(hellinger_distance(p, p), 0.0, 1e-12);
  const std::vector<double> q{1.0, 0.0};
  const std::vector<double> r{0.0, 1.0};
  EXPECT_NEAR(hellinger_distance(q, r), 1.0, 1e-12);
  EXPECT_GT(hellinger_distance(p, q), 0.0);
  EXPECT_THROW(hellinger_distance(p, std::vector<double>{1.0}),
               PreconditionError);
}

TEST(Stability, ComputationalAccuracyOrdering) {
  const std::vector<double> ideal{0.7, 0.3};
  const std::vector<double> close{0.65, 0.35};
  const std::vector<double> far{0.2, 0.8};
  EXPECT_GT(computational_accuracy(ideal, close),
            computational_accuracy(ideal, far));
  EXPECT_NEAR(computational_accuracy(ideal, ideal), 1.0, 1e-12);
}

TEST(Stability, ReproducibilitySpreadDetectsDrift) {
  const std::vector<std::vector<double>> stable{
      {0.6, 0.4}, {0.6, 0.4}, {0.6, 0.4}};
  const std::vector<std::vector<double>> drifting{
      {0.9, 0.1}, {0.5, 0.5}, {0.1, 0.9}};
  EXPECT_NEAR(reproducibility_spread(stable), 0.0, 1e-12);
  EXPECT_GT(reproducibility_spread(drifting), 0.2);
}

TEST(Stability, DriftingCalibrationsReduceReproducibility) {
  // Distributions of the same circuit across drifting days are less
  // reproducible than across a frozen calibration.
  const CalibrationHistory h(FluctuationScenario::belem(), 330, 2021);
  Circuit c(2);
  c.ry(0, 1.1).cry(0, 1, 0.7);
  RoutedCircuit routed;
  routed.circuit = c;
  routed.initial_layout = trivial_layout(2);
  routed.final_mapping = routed.initial_layout;
  const PhysicalCircuit phys = lower_to_basis(routed, {});

  std::vector<std::vector<double>> drifting, frozen;
  for (int day : {250, 270, 290, 313, 325}) {
    Calibration small(2, {{0, 1}});
    const Calibration& full = h.day(day);
    small.set_sx_error(0, full.sx_error(0));
    small.set_sx_error(1, full.sx_error(1));
    small.set_cx_error(0, 1, full.cx_error(0, 1));
    small.set_readout(0, full.readout(0));
    small.set_readout(1, full.readout(1));
    const NoisyExecutor ex(phys, NoiseModel(small));
    drifting.push_back(ex.run_density({}).diagonal_probabilities());
    frozen.push_back(drifting.front());
  }
  EXPECT_GT(reproducibility_spread(drifting),
            reproducibility_spread(frozen));
}

}  // namespace
}  // namespace qucad
