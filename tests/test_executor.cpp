#include <gtest/gtest.h>

#include <cmath>

#include "noise/calibration_history.hpp"
#include "transpile/transpiler.hpp"

#include "test_support.hpp"

namespace qucad {
namespace {

RoutedCircuit wrap(const Circuit& c) {
  RoutedCircuit routed;
  routed.circuit = c;
  routed.initial_layout = trivial_layout(c.num_qubits());
  routed.final_mapping = routed.initial_layout;
  return routed;
}

TEST(Executor, NoiselessMatchesStateVector) {
  Circuit c(3);
  c.h(0).cry(0, 1, 0.8).crx(1, 2, 1.3).rz(2, 0.4);
  const PhysicalCircuit phys = lower_to_basis(wrap(c), {});

  Calibration zero(3, {{0, 1}, {1, 2}});
  NoiseModelOptions opts;
  opts.include_thermal_relaxation = false;
  opts.include_readout_error = false;
  const NoiseModel nm(zero, opts);
  const NoisyExecutor executor(phys, nm);

  StateVector sv(3);
  sv.run(c);
  const auto z = executor.run_z({});
  for (int q = 0; q < 3; ++q) {
    EXPECT_NEAR(z[static_cast<std::size_t>(q)], sv.expectation_z(q), 1e-9);
  }
}

TEST(Executor, DepolarizingShrinksExpectations) {
  Circuit c(2);
  c.ry(0, 0.9).cry(0, 1, 1.1);
  const PhysicalCircuit phys = lower_to_basis(wrap(c), {});

  Calibration noisy(2, {{0, 1}});
  noisy.set_cx_error(0, 1, 0.2);
  noisy.set_sx_error(0, 0.01);
  noisy.set_sx_error(1, 0.01);
  NoiseModelOptions opts;
  opts.include_thermal_relaxation = false;
  opts.include_readout_error = false;

  const NoisyExecutor clean(phys, NoiseModel(Calibration(2, {{0, 1}}), opts));
  const NoisyExecutor dirty(phys, NoiseModel(noisy, opts));
  const auto z_clean = clean.run_z({});
  const auto z_dirty = dirty.run_z({});
  for (std::size_t q = 0; q < 2; ++q) {
    EXPECT_LT(std::abs(z_dirty[q]), std::abs(z_clean[q]) + 1e-12);
  }
}

TEST(Executor, ReadoutErrorBiasesExpectation) {
  // Qubit stays in |0>, but asymmetric readout pulls <Z> below 1.
  Circuit c(1);
  c.rz(0, 0.3);  // virtual only; state remains |0>
  const PhysicalCircuit phys = lower_to_basis(wrap(c), {});

  Calibration cal(1, {});
  cal.set_readout(0, {0.1, 0.0});
  NoiseModelOptions opts;
  opts.include_thermal_relaxation = false;
  const NoisyExecutor executor(phys, NoiseModel(cal, opts));
  const auto z = executor.run_z({});
  // P(read 1) = 0.1 -> <Z> = 0.8
  EXPECT_NEAR(z[0], 0.8, 1e-9);
}

TEST(Executor, ThermalRelaxationDecaysExcitedState) {
  Circuit c(1);
  c.x(0);
  for (int i = 0; i < 20; ++i) c.sx(0), c.sx(0), c.sx(0), c.sx(0);
  const PhysicalCircuit phys = lower_to_basis(wrap(c), {});

  Calibration cal(1, {});
  cal.set_t1_t2(0, 30.0, 25.0);  // short T1 so decay is visible
  NoiseModelOptions opts;
  opts.include_readout_error = false;
  const NoisyExecutor executor(phys, NoiseModel(cal, opts));
  const auto z = executor.run_z({});
  // Ideal result would be <Z> = -1 (odd number of X-like pulses keeps it
  // excited); amplitude damping pulls it toward +1.
  EXPECT_GT(z[0], -1.0 + 1e-4);
}

TEST(Executor, ShotSamplingConvergesToExact) {
  Circuit c(2);
  c.ry(0, 1.0).cry(0, 1, 0.7);
  const PhysicalCircuit phys = lower_to_basis(wrap(c), {});
  const CalibrationHistory h(FluctuationScenario::belem(), 3, 5);
  Calibration cal(2, {{0, 1}});
  cal.set_cx_error(0, 1, 0.03);
  const NoiseModel nm(cal);
  const NoisyExecutor executor(phys, nm);

  const auto exact = executor.run_z({});
  Rng rng(123);
  const auto sampled = executor.run_z_shots({}, 20000, rng);
  for (std::size_t q = 0; q < 2; ++q) {
    EXPECT_NEAR(sampled[q], exact[q], 0.03);
  }
}

TEST(Executor, ReadoutMappingFollowsRouting) {
  // Route a circuit that forces a swap; the executor must read the logical
  // qubit from its final physical home.
  Circuit c(2);
  c.x(0).cry(0, 1, test::kPi);
  const RoutedCircuit routed = route_circuit(c, CouplingMap::belem(), {0, 4});
  EXPECT_GT(routed.swap_count, 0);
  const PhysicalCircuit phys = lower_to_basis(routed, {});

  Calibration zero(5, CouplingMap::belem().edges());
  NoiseModelOptions opts;
  opts.include_thermal_relaxation = false;
  opts.include_readout_error = false;
  const NoisyExecutor executor(phys, NoiseModel(zero, opts));
  const auto z = executor.run_z({});
  // Logical 0 was X'd: <Z> = -1. Logical 1 got CRY(pi) with control 1:
  // rotates to |1>: <Z> = -1... CRY(pi)|0> = |1> exactly? RY(pi)|0> = |1>.
  EXPECT_NEAR(z[0], -1.0, 1e-9);
  EXPECT_NEAR(z[1], -1.0, 1e-9);
}

TEST(Executor, RunDensityTracePreserved) {
  Circuit c(3);
  c.h(0).cx(0, 1).cry(1, 2, 0.6);
  const PhysicalCircuit phys = lower_to_basis(wrap(c), {});
  const CalibrationHistory h(FluctuationScenario::belem(), 3, 5);
  Calibration cal(3, {{0, 1}, {1, 2}});
  cal.set_cx_error(0, 1, 0.05);
  cal.set_cx_error(1, 2, 0.08);
  const NoiseModel nm(cal);
  const NoisyExecutor executor(phys, nm);
  const DensityMatrix dm = executor.run_density({});
  EXPECT_NEAR(dm.trace_real(), 1.0, 1e-9);
  EXPECT_LE(dm.purity(), 1.0 + 1e-9);
}

}  // namespace
}  // namespace qucad
