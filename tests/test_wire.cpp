// Wire-protocol conformance: codec round-trips and corrupt-frame
// rejection, then loopback TCP against a live InferenceService — a wire
// round-trip must serve the same bytes as a direct submit, malformed
// frames (oversized, garbage, truncated, mid-frame disconnect) must fail
// with a Status and never wedge the server, and a calibration push must
// hot-swap the serving epoch for subsequent requests. Test names start
// with Wire* so the TSan CTest preset selects this suite's concurrency
// surface.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/qucad.hpp"
#include "data/seismic_synth.hpp"
#include "io/serializer.hpp"
#include "io/wire.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/evaluator.hpp"
#include "qnn/trainer.hpp"
#include "serve/inference_service.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {
namespace {

// --- codec ---------------------------------------------------------------

TEST(WireCodec, PredictRequestRoundTrips) {
  const std::vector<double> features = {0.25, -1.5, 3.0, 0.0};
  std::vector<double> decoded;
  ASSERT_TRUE(
      decode_predict_request(encode_predict_request(features), decoded).ok());
  EXPECT_EQ(decoded, features);
}

TEST(WireCodec, PredictResponseRoundTripsBitwise) {
  Prediction p;
  p.label = 1;
  p.logits = {-0.125, 0.875};
  p.epoch = 42;
  p.backend = BackendKind::kSampled;
  const StatusOr<Prediction> decoded =
      decode_predict_response(encode_predict_response(p));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->label, 1);
  EXPECT_EQ(decoded->epoch, 42u);
  EXPECT_EQ(decoded->backend, BackendKind::kSampled);
  ASSERT_EQ(decoded->logits.size(), 2u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(decoded->logits[0]),
            std::bit_cast<std::uint64_t>(-0.125));
}

TEST(WireCodec, RemoteErrorStatusTransports) {
  const StatusOr<Prediction> decoded = decode_predict_response(
      encode_predict_response(Status::resource_exhausted("queue full")));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.status().message(), "queue full");
}

TEST(WireCodec, CalibrationPushRoundTrips) {
  Calibration c(3, {{0, 1}, {1, 2}});
  for (int q = 0; q < 3; ++q) {
    c.set_sx_error(q, 0.001 * (q + 1));
    c.set_readout(q, ReadoutError{0.01, 0.02});
    c.set_t1_t2(q, 100.0, 80.0);
  }
  c.set_cx_error(0, 1, 0.01);
  c.set_cx_error(1, 2, 0.02);
  Calibration decoded;
  ASSERT_TRUE(
      decode_calibration_push(encode_calibration_push(c), decoded).ok());
  EXPECT_EQ(decoded.num_qubits(), 3);
  EXPECT_EQ(decoded.feature_vector(), c.feature_vector());
}

// Pinned fuzzer find (fuzz_wire_frame, fuzz/corpus/wire_frame/
// huge_qubit_count_repro): a 13-byte push frame claiming INT32_MAX qubits.
// Before the decode-side bound, Calibration's constructor allocated five
// per-qubit vectors from the attacker-controlled count *before* any payload
// byte backed it, and the resulting bad_alloc is not a PreconditionError —
// it escaped the decoder's no-throw contract and terminated the server
// thread. The count must be rejected as kDataLoss from bounds math alone,
// before any allocation.
TEST(WireCodec, CalibrationPushHugeQubitCountRejectedWithoutAllocating) {
  std::vector<std::uint8_t> frame;
  frame.push_back(3);  // kCalibrationPush
  const std::int32_t qubits = std::numeric_limits<std::int32_t>::max();
  for (int b = 0; b < 4; ++b) {
    frame.push_back(static_cast<std::uint8_t>(qubits >> (8 * b)));
  }
  for (int b = 0; b < 8; ++b) frame.push_back(0);  // edge_count = 0
  Calibration decoded;
  EXPECT_EQ(decode_calibration_push(frame, decoded).code(),
            StatusCode::kDataLoss);
}

TEST(WireCodec, CalibrationAckRoundTrips) {
  WireCalibrationAck ack;
  ack.action = OnlineManager::Decision::Action::NewModel;
  ack.epoch = 9;
  ack.swapped = true;
  ack.failure = Status::unavailable("guidance-2");
  const StatusOr<WireCalibrationAck> decoded =
      decode_calibration_ack(encode_calibration_ack(ack));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded->action, OnlineManager::Decision::Action::NewModel);
  EXPECT_EQ(decoded->epoch, 9u);
  EXPECT_TRUE(decoded->swapped);
  EXPECT_EQ(decoded->failure.code(), StatusCode::kUnavailable);
}

TEST(WireCodec, EveryTruncationAndMutationOfAFrameRejected) {
  Prediction p;
  p.label = 0;
  p.logits = {0.5, -0.5};
  p.epoch = 3;
  const std::vector<std::uint8_t> frame = encode_predict_response(p);
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    const std::span<const std::uint8_t> truncated(frame.data(), keep);
    EXPECT_FALSE(decode_predict_response(truncated).ok())
        << "decoded a " << keep << "-byte prefix";
  }
  // Most single-byte mutations must fail; the ones that survive must decode
  // without crashing (e.g. a flipped label bit is indistinguishable from a
  // different label — framing cannot catch it, that is the artifact CRC's
  // job). The battery asserts no mutation crashes or reads out of bounds.
  std::vector<std::uint8_t> mutated = frame;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    mutated[i] = frame[i] ^ 0x5A;
    (void)decode_predict_response(mutated);
    mutated[i] = frame[i];
  }
  // Type-byte damage specifically must always be rejected.
  mutated[0] ^= 0x01;
  EXPECT_FALSE(decode_predict_response(mutated).ok());
}

TEST(WireCodec, TrailingBytesRejected) {
  const std::vector<double> one = {1.0};
  std::vector<std::uint8_t> frame = encode_predict_request(one);
  frame.push_back(0);
  std::vector<double> decoded;
  EXPECT_EQ(decode_predict_request(frame, decoded).code(),
            StatusCode::kDataLoss);
}

// --- loopback fixture ----------------------------------------------------

/// One trained environment shared by every socket test (training is the
/// expensive part; services and servers are rebuilt per test).
struct WireFixture {
  Environment env;
  CalibrationHistory history{FluctuationScenario::belem(), 60, 77};

  WireFixture() {
    Dataset raw = make_seismic(96, 5);
    const FeatureScaler scaler = FeatureScaler::fit(raw);
    env.train = scaler.transform(raw);
    env.test = scaler.transform(make_seismic(32, 9));
    env.model = build_paper_model(4, 4, 2, 1);
    env.theta_pretrained = init_params(env.model, 7);
    TrainConfig config;
    config.epochs = 4;
    train_model(env.model, env.theta_pretrained, env.train, config);
    env.transpiled = transpile_model(env.model.circuit,
                                     env.model.readout_qubits,
                                     CouplingMap::belem(), &history.day(0));
    env.manager_options.admm.iterations = 2;
    env.manager_options.admm.epochs_per_iteration = 1;
    env.manager_options.admm.finetune_epochs = 0;
    env.admm = env.manager_options.admm;
  }

  ModelRepository reuse_only_repository() const {
    ModelRepository repo;
    repo.set_weights(
        std::vector<double>(history.day(0).feature_vector().size(), 1.0));
    RepoEntry entry;
    entry.centroid = history.day(10).feature_vector();
    entry.theta = env.theta_pretrained;
    entry.tag = "wire-0";
    repo.add(std::move(entry));
    repo.set_threshold(1e9);
    return repo;
  }

  StatusOr<InferenceService> make_service() const {
    return InferenceService::create(env, reuse_only_repository(),
                                    history.day(0));
  }
};

const WireFixture& fixture() {
  static const WireFixture* f = new WireFixture();
  return *f;
}

/// Raw TCP connection for sending deliberately malformed bytes.
struct RawConnection {
  int fd = -1;

  explicit RawConnection(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~RawConnection() {
    if (fd >= 0) ::close(fd);
  }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads until the peer closes; returns everything received.
  std::vector<std::uint8_t> drain() {
    std::vector<std::uint8_t> received;
    std::uint8_t buffer[512];
    while (true) {
      const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
      if (got <= 0) break;
      received.insert(received.end(), buffer, buffer + got);
    }
    return received;
  }
};

std::vector<std::uint8_t> frame_bytes(std::uint32_t declared_length,
                                      const std::vector<std::uint8_t>& payload) {
  Serializer out;
  out.write_u32(declared_length);
  out.write_raw(payload);
  return out.take();
}

/// Decodes a response frame out of a drained byte stream.
StatusOr<Prediction> response_from(const std::vector<std::uint8_t>& stream) {
  Deserializer in(stream);
  std::uint32_t length = 0;
  if (Status s = in.read_u32(length); !s.ok()) return s;
  std::span<const std::uint8_t> payload;
  if (Status s = in.read_span(length, payload); !s.ok()) return s;
  return decode_predict_response(payload);
}

// --- loopback conformance ------------------------------------------------

TEST(WireLoopback, RoundTripMatchesDirectSubmitBitwise) {
  StatusOr<InferenceService> service = fixture().make_service();
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  StatusOr<WireServer> server = WireServer::start(*service);
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  StatusOr<WireClient> client =
      WireClient::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  for (int i = 0; i < 4; ++i) {
    const std::vector<double>& x = fixture().env.test.features[
        static_cast<std::size_t>(i)];
    const StatusOr<Prediction> remote = client->predict(x);
    const StatusOr<Prediction> direct = service->submit(x);
    ASSERT_TRUE(remote.ok()) << remote.status().to_string();
    ASSERT_TRUE(direct.ok()) << direct.status().to_string();
    EXPECT_EQ(remote->label, direct->label);
    EXPECT_EQ(remote->epoch, direct->epoch);
    EXPECT_EQ(remote->backend, direct->backend);
    ASSERT_EQ(remote->logits.size(), direct->logits.size());
    for (std::size_t k = 0; k < remote->logits.size(); ++k) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(remote->logits[k]),
                std::bit_cast<std::uint64_t>(direct->logits[k]));
    }
  }
  EXPECT_EQ(server->connections_accepted(), 1u);
}

TEST(WireLoopback, ServiceRefusalKeepsTheConnectionOpen) {
  StatusOr<InferenceService> service = fixture().make_service();
  ASSERT_TRUE(service.ok());
  StatusOr<WireServer> server = WireServer::start(*service);
  ASSERT_TRUE(server.ok());
  StatusOr<WireClient> client =
      WireClient::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  // Wrong feature arity: a well-formed frame the service refuses. The
  // refusing Status comes back and the stream stays usable.
  const std::vector<double> wrong_arity = {1.0, 2.0};
  const StatusOr<Prediction> refused = client->predict(wrong_arity);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  const StatusOr<Prediction> served =
      client->predict(fixture().env.test.features[0]);
  EXPECT_TRUE(served.ok()) << served.status().to_string();
}

TEST(WireLoopback, OversizedFrameRejectedAndConnectionClosed) {
  StatusOr<InferenceService> service = fixture().make_service();
  ASSERT_TRUE(service.ok());
  StatusOr<WireServer> server = WireServer::start(*service);
  ASSERT_TRUE(server.ok());
  RawConnection raw(server->port());
  ASSERT_GE(raw.fd, 0);

  raw.send_bytes(frame_bytes(kWireMaxPayload + 1, {}));
  const StatusOr<Prediction> response = response_from(raw.drain());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
  // drain() returning means the server closed the connection.

  // The server still serves fresh connections.
  StatusOr<WireClient> client =
      WireClient::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client->predict(fixture().env.test.features[0]).ok());
}

TEST(WireLoopback, GarbageFrameRejectedAndConnectionClosed) {
  StatusOr<InferenceService> service = fixture().make_service();
  ASSERT_TRUE(service.ok());
  StatusOr<WireServer> server = WireServer::start(*service);
  ASSERT_TRUE(server.ok());
  RawConnection raw(server->port());
  ASSERT_GE(raw.fd, 0);

  // A frame whose payload is an unknown message type.
  raw.send_bytes(frame_bytes(3, {0x7F, 0x01, 0x02}));
  const StatusOr<Prediction> response = response_from(raw.drain());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDataLoss);
}

TEST(WireLoopback, TruncatedBodyRejected) {
  StatusOr<InferenceService> service = fixture().make_service();
  ASSERT_TRUE(service.ok());
  StatusOr<WireServer> server = WireServer::start(*service);
  ASSERT_TRUE(server.ok());
  RawConnection raw(server->port());
  ASSERT_GE(raw.fd, 0);

  // A predict request whose feature count promises more doubles than the
  // frame carries: decodable framing, corrupt body.
  const std::vector<double> two = {1.0, 2.0};
  std::vector<std::uint8_t> payload = encode_predict_request(two);
  payload.resize(payload.size() - 8);
  raw.send_bytes(frame_bytes(static_cast<std::uint32_t>(payload.size()),
                             payload));
  const StatusOr<Prediction> response = response_from(raw.drain());
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDataLoss);
}

TEST(WireLoopback, MidFrameDisconnectLeavesTheServerServing) {
  StatusOr<InferenceService> service = fixture().make_service();
  ASSERT_TRUE(service.ok());
  StatusOr<WireServer> server = WireServer::start(*service);
  ASSERT_TRUE(server.ok());

  {
    RawConnection raw(server->port());
    ASSERT_GE(raw.fd, 0);
    // Declare a 100-byte payload, send 10, hang up.
    std::vector<std::uint8_t> partial(10, 0x01);
    raw.send_bytes(frame_bytes(100, partial));
  }  // destructor closes mid-frame

  StatusOr<WireClient> client =
      WireClient::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  const StatusOr<Prediction> served =
      client->predict(fixture().env.test.features[0]);
  EXPECT_TRUE(served.ok()) << served.status().to_string();
}

TEST(WireLoopback, CalibrationPushHotSwapsTheServingEpoch) {
  StatusOr<InferenceService> service = fixture().make_service();
  ASSERT_TRUE(service.ok());
  StatusOr<WireServer> server = WireServer::start(*service);
  ASSERT_TRUE(server.ok());
  StatusOr<WireClient> client =
      WireClient::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  const StatusOr<Prediction> before =
      client->predict(fixture().env.test.features[0]);
  ASSERT_TRUE(before.ok());
  const std::uint64_t epoch_before = before->epoch;

  const StatusOr<WireCalibrationAck> ack =
      client->push_calibration(fixture().history.day(20));
  ASSERT_TRUE(ack.ok()) << ack.status().to_string();
  EXPECT_TRUE(ack->swapped);
  EXPECT_EQ(ack->epoch, epoch_before + 1);
  EXPECT_EQ(ack->action, OnlineManager::Decision::Action::Reuse);
  EXPECT_TRUE(ack->failure.ok());

  // The swap is visible to requests on this connection AND fresh ones.
  const StatusOr<Prediction> after =
      client->predict(fixture().env.test.features[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->epoch, epoch_before + 1);
  StatusOr<WireClient> other =
      WireClient::connect("127.0.0.1", server->port());
  ASSERT_TRUE(other.ok());
  const StatusOr<Prediction> fresh =
      other->predict(fixture().env.test.features[0]);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->epoch, epoch_before + 1);
}

TEST(WireLoopback, ConcurrentConnectionsServeExactPredictions) {
  StatusOr<InferenceService> service = fixture().make_service();
  ASSERT_TRUE(service.ok());
  StatusOr<WireServer> server = WireServer::start(*service);
  ASSERT_TRUE(server.ok());

  // Expected logits from the direct path (expectation backend: exact, so
  // concurrency and batching must not change a bit).
  std::vector<std::vector<double>> expected;
  for (int i = 0; i < 4; ++i) {
    const StatusOr<Prediction> direct =
        service->submit(fixture().env.test.features[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(direct.ok());
    expected.push_back(direct->logits);
  }

  constexpr int kClients = 6;
  constexpr int kPerClient = 8;
  std::vector<std::thread> threads;
  std::vector<Status> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      StatusOr<WireClient> client =
          WireClient::connect("127.0.0.1", server->port());
      if (!client.ok()) {
        failures[static_cast<std::size_t>(c)] = client.status();
        return;
      }
      for (int r = 0; r < kPerClient; ++r) {
        const std::size_t i = static_cast<std::size_t>((c + r) % 4);
        const StatusOr<Prediction> remote =
            client->predict(fixture().env.test.features[i]);
        if (!remote.ok()) {
          failures[static_cast<std::size_t>(c)] = remote.status();
          return;
        }
        if (remote->logits != expected[i]) {
          failures[static_cast<std::size_t>(c)] =
              Status::internal("logits diverged under concurrency");
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& status : failures) {
    EXPECT_TRUE(status.ok()) << status.to_string();
  }
  EXPECT_EQ(server->connections_accepted(), kClients);
}

TEST(WireLoopback, StopIsIdempotentAndUnblocksClients) {
  StatusOr<InferenceService> service = fixture().make_service();
  ASSERT_TRUE(service.ok());
  StatusOr<WireServer> server = WireServer::start(*service);
  ASSERT_TRUE(server.ok());
  StatusOr<WireClient> client =
      WireClient::connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());

  server->stop();
  server->stop();  // idempotent
  // The closed connection surfaces as a transport error, not a hang.
  const StatusOr<Prediction> after_stop =
      client->predict(fixture().env.test.features[0]);
  EXPECT_FALSE(after_stop.ok());
}

}  // namespace
}  // namespace qucad
