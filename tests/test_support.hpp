#pragma once

// Shared helpers for the qucad test suites: tolerance constants, complex
// amplitude matchers, deterministic-seed fixtures, random circuit
// generation, and statevector <-> density-matrix cross-check utilities.

#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/density_matrix.hpp"
#include "sim/statevector.hpp"

namespace qucad::test {

inline constexpr double kPi = 3.14159265358979323846;

/// Machine-precision tolerance for single-gate identities.
inline constexpr double kTightTol = 1e-12;

/// Tolerance for multi-gate pipelines where rounding accumulates.
inline constexpr double kAgreementTol = 1e-10;

/// EXPECT that two complex amplitudes agree within tol (absolute).
inline void expect_cplx_near(const cplx& actual, const cplx& expected,
                             double tol = kTightTol,
                             const char* what = "amplitude") {
  EXPECT_NEAR(actual.real(), expected.real(), tol) << what << " (real part)";
  EXPECT_NEAR(actual.imag(), expected.imag(), tol) << what << " (imag part)";
}

/// EXPECT that two amplitude vectors agree element-wise within tol.
inline void expect_amplitudes_near(std::span<const cplx> actual,
                                   std::span<const cplx> expected,
                                   double tol = kTightTol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(std::abs(actual[i] - expected[i]), 0.0, tol)
        << "amplitude index " << i;
  }
}

/// Fixture giving every test a deterministic, per-fixture-seeded Rng so
/// randomized sweeps are reproducible run to run.
class SeededTest : public ::testing::Test {
 protected:
  explicit SeededTest(std::uint64_t seed = 20230710) : rng_(seed) {}
  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

/// Builds a random circuit over `num_qubits` with `num_gates` gates drawn
/// from the full logical gate set (bound literal angles, no symbolic
/// parameters) — the workhorse for simulator cross-check sweeps.
inline Circuit random_circuit(Rng& rng, int num_qubits, int num_gates) {
  Circuit c(num_qubits);
  for (int g = 0; g < num_gates; ++g) {
    const int q0 = rng.integer(0, num_qubits - 1);
    int q1 = rng.integer(0, num_qubits - 2);
    if (q1 >= q0) ++q1;  // distinct second qubit
    const double angle = rng.uniform(-kPi, kPi);
    switch (rng.integer(0, 9)) {
      case 0: c.rx(q0, angle); break;
      case 1: c.ry(q0, angle); break;
      case 2: c.rz(q0, angle); break;
      case 3: c.h(q0); break;
      case 4: c.sx(q0); break;
      case 5: c.x(q0); break;
      case 6: c.cx(q0, q1); break;
      case 7: c.crx(q0, q1, angle); break;
      case 8: c.cry(q0, q1, angle); break;
      default: c.crz(q0, q1, angle); break;
    }
  }
  return c;
}

/// Runs `circuit` on both simulators (noiseless) and EXPECTs that the
/// density matrix equals the statevector's outer product: per-qubit <Z>,
/// basis probabilities, and purity all agree within tol.
inline void expect_statevector_density_agree(const Circuit& circuit,
                                             std::span<const double> theta = {},
                                             std::span<const double> x = {},
                                             double tol = kAgreementTol) {
  StateVector sv(circuit.num_qubits());
  sv.run(circuit, theta, x);
  DensityMatrix dm(circuit.num_qubits());
  dm.run(circuit, theta, x);

  EXPECT_NEAR(dm.trace_real(), 1.0, tol);
  EXPECT_NEAR(dm.purity(), 1.0, tol) << "noiseless evolution must stay pure";
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    EXPECT_NEAR(dm.expectation_z(q), sv.expectation_z(q), tol) << "qubit " << q;
  }
  const std::vector<double> sv_probs = sv.probabilities();
  const std::vector<double> dm_probs = dm.diagonal_probabilities();
  ASSERT_EQ(sv_probs.size(), dm_probs.size());
  for (std::size_t i = 0; i < sv_probs.size(); ++i) {
    EXPECT_NEAR(dm_probs[i], sv_probs[i], tol) << "basis state " << i;
  }
}

}  // namespace qucad::test
