#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "common/require.hpp"

namespace qucad {
namespace {

TEST(Gate, ArityAndNames) {
  EXPECT_EQ(gate_arity(GateKind::RY), 1);
  EXPECT_EQ(gate_arity(GateKind::CRY), 2);
  EXPECT_EQ(gate_arity(GateKind::CX), 2);
  EXPECT_EQ(gate_arity(GateKind::Y), 1);
  EXPECT_EQ(gate_name(GateKind::CRZ), "crz");
  EXPECT_EQ(gate_name(GateKind::Swap), "swap");
}

TEST(Gate, RotationClassification) {
  EXPECT_TRUE(is_rotation(GateKind::RX));
  EXPECT_TRUE(is_rotation(GateKind::CRZ));
  EXPECT_FALSE(is_rotation(GateKind::CX));
  EXPECT_TRUE(is_controlled_rotation(GateKind::CRY));
  EXPECT_FALSE(is_controlled_rotation(GateKind::RY));
  EXPECT_TRUE(is_single_qubit_rotation(GateKind::RZ));
  EXPECT_FALSE(is_single_qubit_rotation(GateKind::CRX));
}

TEST(ParamRef, Factories) {
  const ParamRef t = trainable(3);
  EXPECT_EQ(t.kind, ParamRef::Kind::Trainable);
  EXPECT_EQ(t.index, 3);
  const ParamRef in = input(1);
  EXPECT_EQ(in.kind, ParamRef::Kind::Input);
  EXPECT_TRUE(t.is_symbolic());
  EXPECT_FALSE(ParamRef{}.is_symbolic());
  EXPECT_THROW(trainable(-1), PreconditionError);
}

TEST(Circuit, BuilderTracksParamSpaces) {
  Circuit c(3);
  c.ry(0, trainable(0)).ry(1, trainable(5)).rz(2, input(2)).cx(0, 1);
  EXPECT_EQ(c.num_trainable(), 6);  // max index + 1
  EXPECT_EQ(c.num_inputs(), 3);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.two_qubit_count(), 1u);
}

TEST(Circuit, RejectsBadQubits) {
  Circuit c(2);
  EXPECT_THROW(c.ry(2, 0.5), PreconditionError);
  EXPECT_THROW(c.cx(0, 0), PreconditionError);
  EXPECT_THROW(c.cry(1, 5, 0.3), PreconditionError);
}

TEST(Circuit, ResolveAngle) {
  Circuit c(2);
  c.ry(0, trainable(0)).rz(1, input(1)).rx(0, 0.25);
  const std::vector<double> theta{1.5};
  const std::vector<double> x{9.0, 2.5};
  EXPECT_DOUBLE_EQ(c.resolve_angle(c.gates()[0], theta, x), 1.5);
  EXPECT_DOUBLE_EQ(c.resolve_angle(c.gates()[1], theta, x), 2.5);
  EXPECT_DOUBLE_EQ(c.resolve_angle(c.gates()[2], theta, x), 0.25);
}

TEST(Circuit, ResolveAngleThrowsWhenVectorTooShort) {
  Circuit c(1);
  c.ry(0, trainable(4));
  const std::vector<double> theta{1.0};
  EXPECT_THROW(c.resolve_angle(c.gates()[0], theta, {}), PreconditionError);
}

TEST(Circuit, BindFullAndPartial) {
  Circuit c(2);
  c.ry(0, trainable(0)).rz(1, input(0));
  const std::vector<double> theta{0.7};
  const std::vector<double> x{0.9};

  const Circuit full = c.bind(theta, x);
  EXPECT_EQ(full.num_trainable(), 0);
  EXPECT_EQ(full.num_inputs(), 0);
  EXPECT_DOUBLE_EQ(full.gates()[0].value, 0.7);
  EXPECT_DOUBLE_EQ(full.gates()[1].value, 0.9);

  // Binding only theta keeps inputs symbolic.
  const Circuit partial = c.bind(theta, {});
  EXPECT_EQ(partial.num_trainable(), 0);
  EXPECT_EQ(partial.num_inputs(), 1);
}

TEST(Circuit, AppendMergesParameterSpaces) {
  Circuit a(2);
  a.ry(0, trainable(0));
  Circuit b(2);
  b.ry(1, trainable(1)).rz(0, input(3));
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.num_trainable(), 2);
  EXPECT_EQ(a.num_inputs(), 4);

  Circuit c3(3);
  EXPECT_THROW(a.append(c3), PreconditionError);
}

TEST(Circuit, GatesForTrainable) {
  Circuit c(2);
  c.ry(0, trainable(0)).cry(0, 1, trainable(1)).rz(1, trainable(0));
  const auto idx0 = c.gates_for_trainable(0);
  ASSERT_EQ(idx0.size(), 2u);
  EXPECT_EQ(idx0[0], 0u);
  EXPECT_EQ(idx0[1], 2u);
  EXPECT_EQ(c.gates_for_trainable(1).size(), 1u);
  EXPECT_TRUE(c.gates_for_trainable(7).empty());
}

TEST(Circuit, ToStringMentionsParams) {
  Circuit c(2);
  c.ry(0, trainable(2)).rz(1, input(0)).cx(0, 1);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("theta[2]"), std::string::npos);
  EXPECT_NE(s.find("x[0]"), std::string::npos);
  EXPECT_NE(s.find("cx"), std::string::npos);
}

}  // namespace
}  // namespace qucad
