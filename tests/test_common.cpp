#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/bounded_queue.hpp"
#include "common/clock.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace qucad {
namespace {

TEST(Require, ThrowsOnViolation) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "boom"), PreconditionError);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.normal(5.0, 2.0);
  EXPECT_NEAR(mean(xs), 5.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, BernoulliClampsOutOfRange) {
  Rng rng(17);
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, IndexBounds) {
  Rng rng(19);
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_THROW(rng.index(0), PreconditionError);
}

TEST(Rng, WeightedIndexFavorsHeavyWeights) {
  Rng rng(23);
  std::vector<double> w{0.0, 0.0, 10.0, 0.1};
  int heavy = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t k = rng.weighted_index(w);
    EXPECT_TRUE(k == 2 || k == 3);
    if (k == 2) ++heavy;
  }
  EXPECT_GT(heavy, 1800);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(29);
  const auto perm = rng.permutation(20);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(31);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  EXPECT_NE(parent.uniform(), child.uniform());
}

TEST(Stats, MeanVarianceMedian) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  // Bessel-corrected sample variance: sum of squared deviations
  // (2.25 + 0.25 + 0.25 + 2.25) = 5, over N-1 = 3.
  EXPECT_DOUBLE_EQ(variance(xs), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
}

TEST(Stats, VarianceIsBesselCorrected) {
  // Hand-computed: mean 4, deviations {-2, 0, 2}, SS = 8, n-1 = 2.
  const std::vector<double> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  // A single point carries no spread information: exactly 0, not 0/0.
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{7.0}), 0.0);
}

TEST(Stats, EmptyInputsThrow) {
  // One contract for every reduction: empty input is a caller bug, not a
  // silent 0 (which reads as a perfect latency / flat gradient upstream).
  EXPECT_THROW(mean({}), PreconditionError);
  EXPECT_THROW(variance({}), PreconditionError);
  EXPECT_THROW(stddev({}), PreconditionError);
  EXPECT_THROW(median({}), PreconditionError);
  EXPECT_THROW(min_value({}), PreconditionError);
  EXPECT_THROW(max_value({}), PreconditionError);
  EXPECT_THROW(argmax({}), PreconditionError);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVariance) {
  const std::vector<double> xs{1, 1, 1};
  const std::vector<double> ys{2, 3, 4};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, CountOver) {
  const std::vector<double> xs{0.1, 0.5, 0.9, 0.81};
  EXPECT_EQ(count_over(xs, 0.8), 2u);
  EXPECT_EQ(count_over(xs, 0.05), 4u);
}

TEST(Stats, ArgmaxFirstOfTies) {
  const std::vector<double> xs{0.2, 0.9, 0.9, 0.1};
  EXPECT_EQ(argmax(xs), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::size_t i) {
                     if (i == 57) throw std::runtime_error("task failed");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, ZeroAndOneIterations) {
  int count = 0;
  parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(Table, FormatsAlignedColumns) {
  TextTable t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| xx "), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, PercentFormatting) {
  EXPECT_EQ(fmt_pct(0.7567), "75.67%");
  EXPECT_EQ(fmt_pct_signed(0.1632), "+16.32%");
  EXPECT_EQ(fmt_pct_signed(-0.0065), "-0.65%");
}

TEST(Status, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status status = Status::invalid_argument("bad batch");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad batch");
  EXPECT_EQ(status.to_string(), "invalid_argument: bad batch");
  EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::failed_precondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::resource_exhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::resource_exhausted("x").to_string(),
            "resource_exhausted: x");
  EXPECT_EQ(Status::deadline_exceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::deadline_exceeded("x").to_string(),
            "deadline_exceeded: x");
}

TEST(Status, DataLossFactoryAndFromCode) {
  const Status loss = Status::data_loss("crc mismatch");
  EXPECT_EQ(loss.code(), StatusCode::kDataLoss);
  EXPECT_EQ(loss.to_string(), "data_loss: crc mismatch");

  // from_code is the wire decoder's rebuild path: any transported non-OK
  // (code, message) pair must round-trip, and an OK code must collapse to
  // the singleton OK status with the message discarded.
  const Status rebuilt =
      Status::from_code(StatusCode::kDataLoss, loss.message());
  EXPECT_EQ(rebuilt.code(), loss.code());
  EXPECT_EQ(rebuilt.message(), loss.message());
  const Status ok = Status::from_code(StatusCode::kOk, "ignored");
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.to_string(), "ok");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOr, HoldsError) {
  const StatusOr<int> result = Status::not_found("no entry");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
  EXPECT_THROW(result.value(), PreconditionError);
}

TEST(StatusOr, RejectsOkStatus) {
  EXPECT_THROW(StatusOr<int>{Status{}}, PreconditionError);
}

TEST(StatusOr, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(9);
  ASSERT_TRUE(result.ok());
  const std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 9);
}

TEST(ManualClock, AdvancesOnlyWhenTold) {
  ManualClock clock;
  const Clock::TimePoint t0 = clock.now();
  EXPECT_EQ(clock.now(), t0);
  clock.advance(std::chrono::milliseconds(5));
  EXPECT_EQ(clock.now() - t0, Clock::Duration(std::chrono::milliseconds(5)));
  clock.advance(std::chrono::microseconds(3));
  EXPECT_EQ(clock.now() - t0,
            Clock::Duration(std::chrono::microseconds(5003)));
}

TEST(SystemClock, IsMonotonic) {
  const Clock& clock = Clock::system();
  const Clock::TimePoint a = clock.now();
  const Clock::TimePoint b = clock.now();
  EXPECT_LE(a, b);
}

TEST(BoundedQueue, PushPopRoundTrip) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  EXPECT_EQ(queue.try_push(1), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2), PushResult::kOk);
  EXPECT_EQ(queue.size(), 2u);
  const std::vector<int> batch =
      queue.collect(8, std::chrono::microseconds(0));
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, ShedsAtCapacityInsteadOfBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.try_push(1), PushResult::kOk);
  EXPECT_EQ(queue.try_push(2), PushResult::kOk);
  EXPECT_EQ(queue.try_push(3), PushResult::kFull);
  EXPECT_EQ(queue.size(), 2u);  // the rejected item was never queued
  // Draining frees capacity again.
  (void)queue.collect(1, std::chrono::microseconds(0));
  EXPECT_EQ(queue.try_push(3), PushResult::kOk);
}

TEST(BoundedQueue, CollectTakesAtMostMaxItems) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(queue.try_push(i), PushResult::kOk);
  }
  EXPECT_EQ(queue.collect(3, std::chrono::microseconds(0)),
            (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(queue.collect(3, std::chrono::microseconds(0)),
            (std::vector<int>{3, 4}));
}

TEST(BoundedQueue, StragglerWindowCoalescesConcurrentProducers) {
  BoundedQueue<int> queue(16);
  ASSERT_EQ(queue.try_push(0), PushResult::kOk);
  std::thread straggler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (void)queue.try_push(1);
  });
  // The consumer has one item in hand but lingers for the straggler.
  const std::vector<int> batch =
      queue.collect(16, std::chrono::milliseconds(500));
  straggler.join();
  EXPECT_EQ(batch, (std::vector<int>{0, 1}));
}

TEST(BoundedQueue, CloseRejectsProducersAndDrainsConsumer) {
  BoundedQueue<int> queue(4);
  ASSERT_EQ(queue.try_push(7), PushResult::kOk);
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.try_push(8), PushResult::kClosed);
  // Queued work is still drained (no straggler wait after close)...
  EXPECT_EQ(queue.collect(4, std::chrono::seconds(10)),
            (std::vector<int>{7}));
  // ...and an empty closed queue signals shutdown with an empty batch.
  EXPECT_TRUE(queue.collect(4, std::chrono::seconds(10)).empty());
}

TEST(BoundedQueue, ConcurrentProducersNeverExceedCapacity) {
  constexpr std::size_t kCapacity = 8;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> queue(kCapacity);
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (queue.try_push(i) == PushResult::kOk) {
          accepted.fetch_add(1);
        } else {
          shed.fetch_add(1);
        }
      }
    });
  }
  int drained = 0;
  std::thread consumer([&] {
    for (;;) {
      const std::vector<int> batch =
          queue.collect(kCapacity, std::chrono::microseconds(50));
      drained += static_cast<int>(batch.size());
      ASSERT_LE(batch.size(), kCapacity);
      if (batch.empty() && done.load()) return;
      if (done.load() && queue.size() == 0) return;
    }
  });
  for (std::thread& producer : producers) producer.join();
  done.store(true);
  queue.close();
  consumer.join();
  // Drain anything the consumer exited before taking.
  drained += static_cast<int>(
      queue.collect(kProducers * kPerProducer, std::chrono::microseconds(0))
          .size());
  EXPECT_EQ(drained, accepted.load());
  EXPECT_EQ(accepted.load() + shed.load(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace qucad
