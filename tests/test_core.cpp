#include <gtest/gtest.h>

#include "common/require.hpp"
#include "core/qucad.hpp"
#include "core/strategies.hpp"
#include "data/seismic_synth.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "noise/calibration_history.hpp"

namespace qucad {
namespace {

// A small shared environment: seismic task on belem with light training so
// the whole file runs in seconds.
const Environment& test_env() {
  static const Environment env = [] {
    PipelineConfig config;
    config.pretrain.epochs = 8;
    config.max_train_samples = 96;
    config.max_test_samples = 48;
    config.profile_samples = 24;
    config.admm.iterations = 2;
    config.admm.epochs_per_iteration = 1;
    config.admm.finetune_epochs = 0;
    config.nat.epochs = 1;
    config.constructor_options.admm = config.admm;
    config.constructor_options.kmeans.k = 3;
    config.constructor_options.profile_samples = 24;
    config.manager_options.admm = config.admm;
    const CalibrationHistory h(FluctuationScenario::belem(), 10, 2021);
    return prepare_environment(make_seismic(400, 11), CouplingMap::belem(),
                               h.day(0), config);
  }();
  return env;
}

TEST(Environment, PreparesConsistentPieces) {
  const Environment& env = test_env();
  EXPECT_EQ(env.model.num_params(), 80);
  EXPECT_EQ(env.theta_pretrained.size(), 80u);
  EXPECT_EQ(env.train.size(), 96u);
  EXPECT_EQ(env.test.size(), 40u);  // 10% of 400
  EXPECT_EQ(env.transpiled.num_physical_qubits(), 5);
  EXPECT_EQ(env.transpiled.associations.size(), 80u);
  // Pretraining should beat chance on the training data.
  EXPECT_GT(noise_free_accuracy(env.model, env.theta_pretrained, env.train),
            0.6);
}

TEST(Strategies, BaselineReturnsPretrainedEveryDay) {
  const Environment& env = test_env();
  BaselineStrategy baseline(env);
  const CalibrationHistory h(FluctuationScenario::belem(), 20, 3);
  const auto day0 = baseline.online_day(0, h.day(0));
  const auto day5 = baseline.online_day(5, h.day(5));
  EXPECT_EQ(day0.data(), env.theta_pretrained.data());
  EXPECT_EQ(day5.data(), env.theta_pretrained.data());
  EXPECT_EQ(baseline.optimizations(), 0);
  EXPECT_DOUBLE_EQ(baseline.online_optimize_seconds(), 0.0);
}

TEST(Strategies, NatOnceTrainsExactlyOnce) {
  const Environment& env = test_env();
  NoiseAwareTrainOnceStrategy nat(env);
  const CalibrationHistory h(FluctuationScenario::belem(), 20, 3);
  nat.online_day(0, h.day(0));
  const double t_after_first = nat.online_optimize_seconds();
  EXPECT_GT(t_after_first, 0.0);
  EXPECT_EQ(nat.optimizations(), 1);
  nat.online_day(1, h.day(1));
  EXPECT_DOUBLE_EQ(nat.online_optimize_seconds(), t_after_first);
  EXPECT_EQ(nat.optimizations(), 1);
}

TEST(Strategies, NatEverydayTrainsEveryDay) {
  const Environment& env = test_env();
  NoiseAwareTrainEverydayStrategy nat(env);
  const CalibrationHistory h(FluctuationScenario::belem(), 20, 3);
  nat.online_day(0, h.day(0));
  nat.online_day(1, h.day(1));
  nat.online_day(2, h.day(2));
  EXPECT_EQ(nat.optimizations(), 3);
}

TEST(Strategies, OneTimeCompressionChangesParameters) {
  const Environment& env = test_env();
  OneTimeCompressionStrategy otc(env);
  const CalibrationHistory h(FluctuationScenario::belem(), 20, 3);
  const auto theta = otc.online_day(0, h.day(0));
  EXPECT_EQ(otc.optimizations(), 1);
  bool differs = false;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    if (theta[i] != env.theta_pretrained[i]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Strategies, CompressionEverydayNames) {
  const Environment& env = test_env();
  CompressionEverydayStrategy aware(env, CompressionMode::NoiseAware);
  CompressionEverydayStrategy agnostic(env, CompressionMode::NoiseAgnostic);
  EXPECT_NE(aware.name(), agnostic.name());
}

TEST(Strategies, QuCadWithoutOfflineReusesAfterFirstDay) {
  const Environment& env = test_env();
  QuCadWithoutOfflineStrategy strategy(env);
  const CalibrationHistory h(FluctuationScenario::belem(), 30, 3);
  strategy.online_day(0, h.day(0));
  EXPECT_EQ(strategy.optimizations(), 1);
  strategy.online_day(1, h.day(1));  // quiet adjacent day: reuse expected
  EXPECT_EQ(strategy.optimizations(), 1);
  EXPECT_EQ(strategy.manager().reuses(), 1);
}

TEST(Strategies, QuCadOfflineThenOnline) {
  const Environment& env = test_env();
  QuCadStrategy qucad(env);
  const CalibrationHistory h(FluctuationScenario::belem(), 80, 2021);
  qucad.offline(h.slice(0, 50));
  EXPECT_GT(qucad.offline_optimize_seconds(), 0.0);
  EXPECT_EQ(qucad.manager().repository().size(), 3u);

  // Days near the offline distribution should mostly reuse.
  int optimizations_before = qucad.manager().optimizations_run();
  qucad.online_day(0, h.day(50));
  qucad.online_day(1, h.day(51));
  EXPECT_LE(qucad.manager().optimizations_run(), optimizations_before + 1);
}

TEST(Strategies, QuCadRequiresOfflineBeforeOnline) {
  const Environment& env = test_env();
  QuCadStrategy qucad(env);
  const CalibrationHistory h(FluctuationScenario::belem(), 10, 3);
  EXPECT_THROW(qucad.online_day(0, h.day(0)), PreconditionError);
}

TEST(Harness, LongitudinalRunProducesMetrics) {
  const Environment& env = test_env();
  BaselineStrategy baseline(env);
  const CalibrationHistory h(FluctuationScenario::belem(), 40, 2021);
  const MethodResult result =
      run_longitudinal(baseline, env, {}, h.slice(20, 10));
  EXPECT_EQ(result.daily_accuracy.size(), 10u);
  EXPECT_GT(result.metrics.mean_accuracy, 0.0);
  EXPECT_LE(result.metrics.mean_accuracy, 1.0);
  EXPECT_EQ(result.method, "Baseline");
}

TEST(Metrics, SummarizeSeries) {
  const std::vector<double> series{0.9, 0.85, 0.6, 0.45, 0.75};
  const SeriesMetrics m = summarize_series(series);
  EXPECT_NEAR(m.mean_accuracy, 0.71, 1e-9);
  EXPECT_EQ(m.days_over_08, 2);
  EXPECT_EQ(m.days_over_07, 3);
  EXPECT_EQ(m.days_over_05, 4);
  EXPECT_GT(m.variance, 0.0);
}

}  // namespace
}  // namespace qucad
