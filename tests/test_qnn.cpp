#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "data/iris_synth.hpp"
#include "data/seismic_synth.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "qnn/evaluator.hpp"
#include "qnn/gradients.hpp"
#include "qnn/loss.hpp"
#include "qnn/noise_injection.hpp"
#include "qnn/optimizer.hpp"
#include "qnn/trainer.hpp"

namespace qucad {
namespace {

TEST(Encoding, SingleLayerForMatchingDims) {
  const Circuit c = angle_encoder(4, 4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.num_inputs(), 4);
  for (const Gate& g : c.gates()) EXPECT_EQ(g.kind, GateKind::RY);
}

TEST(Encoding, SixteenPixelsCycleAxes) {
  const Circuit c = angle_encoder(4, 16);
  EXPECT_EQ(c.size(), 16u);
  EXPECT_EQ(c.num_inputs(), 16);
  EXPECT_EQ(c.gates()[0].kind, GateKind::RY);   // layer 0
  EXPECT_EQ(c.gates()[4].kind, GateKind::RZ);   // layer 1
  EXPECT_EQ(c.gates()[8].kind, GateKind::RX);   // layer 2
  EXPECT_EQ(c.gates()[12].kind, GateKind::RY);  // layer 3 wraps
  EXPECT_EQ(c.gates()[5].q0, 1);
}

TEST(Ansatz, PaperBlockStructure) {
  const Circuit c = build_paper_ansatz(4, 1);
  EXPECT_EQ(c.num_trainable(), 40);  // 10 layers x 4 qubits
  EXPECT_EQ(c.size(), 40u);
  EXPECT_EQ(paper_ansatz_params(4, 2), 80);
  // Layer order: RY, CRY, RY, RX, CRX, RX, RZ, CRZ, RZ, CRZ.
  EXPECT_EQ(c.gates()[0].kind, GateKind::RY);
  EXPECT_EQ(c.gates()[4].kind, GateKind::CRY);
  EXPECT_EQ(c.gates()[12].kind, GateKind::RX);
  EXPECT_EQ(c.gates()[16].kind, GateKind::CRX);
  EXPECT_EQ(c.gates()[28].kind, GateKind::CRZ);
  EXPECT_EQ(c.gates()[36].kind, GateKind::CRZ);
}

TEST(Ansatz, RingConnectivity) {
  const Circuit c = build_paper_ansatz(4, 1);
  const Gate& last_cry = c.gates()[7];  // 4th CRY: ring closure 3 -> 0
  EXPECT_EQ(last_cry.kind, GateKind::CRY);
  EXPECT_EQ(last_cry.q0, 3);
  EXPECT_EQ(last_cry.q1, 0);
}

TEST(Model, BuildAndForward) {
  const QnnModel model = build_paper_model(4, 4, 3, 2);
  EXPECT_EQ(model.num_params(), 80);
  EXPECT_EQ(model.num_inputs(), 4);
  EXPECT_EQ(model.readout_qubits.size(), 3u);

  const std::vector<double> theta = init_params(model, 1);
  EXPECT_EQ(theta.size(), 80u);
  const std::vector<double> x{0.5, 1.0, 1.5, 2.0};
  const auto logits = forward_logits(model, theta, x);
  EXPECT_EQ(logits.size(), 3u);
  for (double l : logits) {
    EXPECT_GE(l, -1.0);
    EXPECT_LE(l, 1.0);
  }
  const int pred = predict(model, theta, x);
  EXPECT_GE(pred, 0);
  EXPECT_LT(pred, 3);
}

TEST(Model, TooManyClassesRejected) {
  EXPECT_THROW(build_paper_model(4, 4, 5, 1), PreconditionError);
}

TEST(Loss, SoftmaxNormalizes) {
  const auto p = softmax(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(Loss, CrossEntropyGradientMatchesFiniteDifference) {
  const std::vector<double> logits{0.3, -0.5, 0.8};
  const int label = 1;
  const double scale = 5.0;
  const auto grad = cross_entropy_grad(logits, label, scale);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    std::vector<double> up = logits, down = logits;
    up[i] += eps;
    down[i] -= eps;
    const double fd =
        (cross_entropy(up, label, scale) - cross_entropy(down, label, scale)) /
        (2 * eps);
    EXPECT_NEAR(grad[i], fd, 1e-5);
  }
}

TEST(Loss, PerfectPredictionLowLoss) {
  EXPECT_LT(cross_entropy(std::vector<double>{1.0, -1.0}, 0, 8.0), 0.01);
  EXPECT_GT(cross_entropy(std::vector<double>{1.0, -1.0}, 1, 8.0), 2.0);
}

TEST(Optimizer, SgdStepDirection) {
  Sgd sgd(0.1);
  std::vector<double> params{1.0, 2.0};
  sgd.step(params, {0.5, -0.5});
  EXPECT_DOUBLE_EQ(params[0], 0.95);
  EXPECT_DOUBLE_EQ(params[1], 2.05);
}

TEST(Optimizer, SgdMomentumAccumulates) {
  Sgd sgd(0.1, 0.9);
  std::vector<double> params{0.0};
  sgd.step(params, {1.0});
  const double first = params[0];
  sgd.step(params, {1.0});
  EXPECT_LT(params[0] - first, first);  // second step larger in magnitude
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  Adam adam(0.1);
  std::vector<double> params{5.0};
  for (int i = 0; i < 300; ++i) {
    adam.step(params, {2.0 * params[0]});  // d/dx x^2
  }
  EXPECT_NEAR(params[0], 0.0, 0.05);
}

TEST(Optimizer, RejectsBadConfig) {
  EXPECT_THROW(Sgd(-0.1), PreconditionError);
  EXPECT_THROW(Adam(0.1, 1.5), PreconditionError);
}

TEST(BatchGrad, LossDecreasesUnderGradientStep) {
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  std::vector<double> theta = init_params(model, 3);
  const Dataset data = [&] {
    Dataset raw = make_seismic(64, 5);
    const FeatureScaler scaler = FeatureScaler::fit(raw);
    return scaler.transform(raw);
  }();
  std::vector<std::size_t> idx(data.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;

  const BatchGrad g0 =
      batch_loss_grad(model.circuit, model.readout_qubits, theta, data, idx, 5.0);
  for (std::size_t i = 0; i < theta.size(); ++i) theta[i] -= 0.05 * g0.grad[i];
  const BatchGrad g1 =
      batch_loss(model.circuit, model.readout_qubits, theta, data, idx, 5.0);
  EXPECT_LT(g1.loss, g0.loss);
}

TEST(Trainer, ReducesLossOnSeparableData) {
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  std::vector<double> theta = init_params(model, 11);
  Dataset raw = make_seismic(96, 5);
  const FeatureScaler scaler = FeatureScaler::fit(raw);
  const Dataset data = scaler.transform(raw);

  TrainConfig config;
  config.epochs = 12;
  config.lr = 0.08;
  const TrainResult result = train_model(model, theta, data, config);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
  EXPECT_GT(result.final_train_accuracy, 0.6);
}

TEST(Trainer, FrozenParametersDoNotMove) {
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  std::vector<double> theta = init_params(model, 13);
  const std::vector<double> original = theta;
  Dataset raw = make_seismic(32, 7);
  const Dataset data = FeatureScaler::fit(raw).transform(raw);

  TrainConfig config;
  config.epochs = 2;
  config.frozen.assign(theta.size(), 0);
  config.frozen[0] = 1;
  config.frozen[17] = 1;
  train_model(model, theta, data, config);
  EXPECT_DOUBLE_EQ(theta[0], original[0]);
  EXPECT_DOUBLE_EQ(theta[17], original[17]);
  EXPECT_NE(theta[1], original[1]);
}

TEST(Trainer, ProximalTermPullsTowardAnchor) {
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  std::vector<double> theta = init_params(model, 17);
  const std::vector<double> anchor(theta.size(), 0.0);
  Dataset raw = make_seismic(32, 7);
  const Dataset data = FeatureScaler::fit(raw).transform(raw);

  const double norm_before = std::sqrt(
      std::inner_product(theta.begin(), theta.end(), theta.begin(), 0.0));
  TrainConfig config;
  config.epochs = 5;
  config.prox_anchor = &anchor;
  config.prox_rho = 50.0;  // dominate the data term
  train_model(model, theta, data, config);
  const double norm_after = std::sqrt(
      std::inner_product(theta.begin(), theta.end(), theta.begin(), 0.0));
  EXPECT_LT(norm_after, norm_before);
}

TEST(NoiseInjection, InsertsPaulisProportionalToNoise) {
  Circuit routed(2);
  for (int i = 0; i < 50; ++i) routed.cry(0, 1, trainable(i));
  Calibration cal(2, {{0, 1}});
  cal.set_cx_error(0, 1, 0.25);

  Rng rng(3);
  int injected_total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Circuit injected = inject_pauli_noise(routed, cal, rng);
    injected_total += static_cast<int>(injected.size() - routed.size());
  }
  // Expected ~ 2*0.25 * 50 = 25 insertions per trial.
  EXPECT_GT(injected_total, 20 * 15);
  EXPECT_LT(injected_total, 20 * 35);
}

TEST(NoiseInjection, ZeroNoiseInjectsNothing) {
  Circuit routed(2);
  routed.cry(0, 1, trainable(0)).ry(0, trainable(1)).rz(1, trainable(2));
  const Calibration cal(2, {{0, 1}});
  Rng rng(3);
  const Circuit injected = inject_pauli_noise(routed, cal, rng);
  EXPECT_EQ(injected.size(), routed.size());
}

TEST(NoiseInjection, PreservesParameterSpace) {
  Circuit routed(2);
  routed.cry(0, 1, trainable(0)).ry(0, input(0));
  Calibration cal(2, {{0, 1}});
  cal.set_cx_error(0, 1, 0.4);
  Rng rng(7);
  const Circuit injected = inject_pauli_noise(routed, cal, rng);
  EXPECT_EQ(injected.num_trainable(), routed.num_trainable());
  EXPECT_EQ(injected.num_inputs(), routed.num_inputs());
}

TEST(Evaluator, ZeroNoiseMatchesNoiseFree) {
  const QnnModel model = build_paper_model(4, 4, 3, 1);
  const std::vector<double> theta = init_params(model, 19);
  Dataset raw = make_iris(60, 3);
  const Dataset data = FeatureScaler::fit(raw).transform(raw);

  Calibration zero(5, CouplingMap::belem().edges());
  const TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits, CouplingMap::belem(), nullptr);

  NoisyEvalOptions options;
  options.noise.include_thermal_relaxation = false;
  options.noise.include_readout_error = false;
  const double noisy = noisy_accuracy(model, transpiled, theta, data, zero, options);
  const double clean = noise_free_accuracy(model, theta, data);
  EXPECT_NEAR(noisy, clean, 1e-9);
}

TEST(Evaluator, NonContiguousReadoutQubitsClassifyCorrectly) {
  // Regression: class logits must be read positionally from the executor's
  // readout slots. Indexing the z vector by qubit id read slot 1 for class 0
  // and ran past the end (slot 3 of a 2-slot vector) for class 1 whenever
  // readout_qubits != {0..k-1}.
  QnnModel model;
  model.circuit = angle_encoder(4, 4);
  model.circuit.append(build_paper_ansatz(4, 1));
  model.num_classes = 2;
  model.readout_qubits = {1, 3};
  const std::vector<double> theta = init_params(model, 31);

  Dataset raw = make_seismic(48, 9);
  const Dataset data = FeatureScaler::fit(raw).transform(raw);

  Calibration zero(5, CouplingMap::belem().edges());
  const TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits, CouplingMap::belem(), nullptr);
  ASSERT_EQ(transpiled.readout_logical, model.readout_qubits);

  NoisyEvalOptions options;
  options.noise.include_thermal_relaxation = false;
  options.noise.include_readout_error = false;
  const NoisyEvalResult result =
      noisy_evaluate(model, transpiled, theta, data, zero, options);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(result.predictions[i], predict(model, theta, data.features[i]))
        << "sample " << i;
  }
  EXPECT_NEAR(result.accuracy, noise_free_accuracy(model, theta, data), 1e-12);

  // Routing must matter: place logical qubits on scattered physical homes
  // so logical and physical ids genuinely diverge, then re-check the whole
  // positional pipeline through that permutation.
  TranspiledModel routed;
  routed.routed =
      route_circuit(model.circuit, CouplingMap::belem(), Layout{4, 2, 0, 1});
  routed.readout_logical = model.readout_qubits;
  ASSERT_TRUE(routed.readout_physical(1) != 1 || routed.readout_physical(3) != 3)
      << "layout failed to separate logical from physical ids";
  const PhysicalCircuit phys = lower_model(routed, theta);
  ASSERT_EQ(phys.readout_physical().size(), 2u);
  EXPECT_EQ(phys.readout_physical()[0], routed.readout_physical(1));
  EXPECT_EQ(phys.readout_physical()[1], routed.readout_physical(3));

  const NoisyEvalResult permuted =
      noisy_evaluate(model, routed, theta, data, zero, options);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(permuted.predictions[i], predict(model, theta, data.features[i]))
        << "sample " << i << " (scattered layout)";
  }
}

TEST(Evaluator, NoiseDegradesTrainedAccuracy) {
  const QnnModel model = build_paper_model(4, 4, 2, 1);
  std::vector<double> theta = init_params(model, 23);
  Dataset raw = make_seismic(128, 5);
  const Dataset data = FeatureScaler::fit(raw).transform(raw);
  TrainConfig config;
  config.epochs = 10;
  train_model(model, theta, data, config);

  const CalibrationHistory h(FluctuationScenario::belem(), 320, 2021);
  const TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits, CouplingMap::belem(), &h.day(250));
  const double clean = noise_free_accuracy(model, theta, data);
  // Day 310 sits in the <1,2> hot episode.
  const double noisy =
      noisy_accuracy(model, transpiled, theta, data, h.day(310));
  EXPECT_LT(noisy, clean);
}

}  // namespace
}  // namespace qucad
