// Equivalence and regression suite for the SoA lane-batched replay engines
// (sim/batched_state.hpp): the lane forward / adjoint paths must be bitwise
// identical to the scalar per-sample replay (the 1e-10-pinned reference),
// including the ragged tail of every batch size around the lane width; the
// sampled backend's lane blocks must draw bit-for-bit the same shot streams
// as the per-sample path; and the batch-boundary validation added with the
// lane engines must reject short feature rows up front, on the calling
// thread.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "backend/sampled_backend.hpp"
#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "data/mnist_synth.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/eval_cache.hpp"
#include "qnn/evaluator.hpp"
#include "qnn/gradients.hpp"
#include "qnn/model.hpp"
#include "qnn/trainer.hpp"
#include "sim/batched_state.hpp"
#include "transpile/executor.hpp"
#include "transpile/transpiler.hpp"

#include "test_support.hpp"

namespace qucad {
namespace {

using test::kAgreementTol;

constexpr std::size_t kLanes = BatchedStateVector::kLanes;

/// The paper model compiled symbolically plus enough synthetic samples to
/// cover two full lane blocks and a ragged tail.
struct BatchedFixture {
  QnnModel model = build_paper_model(4, 4, 4, 2);
  std::vector<double> theta = init_params(model, 11);
  std::shared_ptr<const PureExecutor> executor =
      build_pure_executor(model.circuit, model.readout_qubits);
  Dataset data = make_mnist4(2 * kLanes + 3, 17);
};

std::span<const std::vector<double>> first_rows(const Dataset& data,
                                                std::size_t n) {
  return std::span<const std::vector<double>>(data.features.data(), n);
}

std::vector<std::size_t> iota_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

TEST(BatchedReplay, LaneForwardBitwiseMatchesScalarAcrossRaggedSizes) {
  const BatchedFixture fx;
  // Every batch size through two full blocks plus a tail: 1..17 covers
  // tail-only (< kLanes), exactly one block, block + ragged tail, and two
  // blocks + tail.
  for (std::size_t n = 1; n <= 2 * kLanes + 1; ++n) {
    const auto xs = first_rows(fx.data, n);
    const auto lane =
        fx.executor->run_z_batch(xs, fx.theta, nullptr, BatchReplay::kLanes);
    const auto scalar =
        fx.executor->run_z_batch(xs, fx.theta, nullptr, BatchReplay::kScalar);
    ASSERT_EQ(lane.size(), n);
    ASSERT_EQ(scalar.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // Bitwise, not near: the sampled backend's shot streams depend on the
      // lane amplitudes being exactly the scalar amplitudes.
      EXPECT_EQ(lane[i], scalar[i]) << "batch size " << n << " sample " << i;
      // And the documented 1e-10 contract against the per-sample engine.
      const auto reference = fx.executor->run_z(xs[i], fx.theta);
      ASSERT_EQ(lane[i].size(), reference.size());
      for (std::size_t k = 0; k < reference.size(); ++k) {
        EXPECT_NEAR(lane[i][k], reference[k], kAgreementTol)
            << "batch size " << n << " sample " << i << " slot " << k;
      }
    }
  }
}

TEST(BatchedReplay, LaneAdjointMatchesScalarAcrossRaggedSizes) {
  const BatchedFixture fx;
  const double logit_scale = 5.0;
  for (const std::size_t n : {std::size_t{1}, kLanes - 1, kLanes, kLanes + 1,
                              2 * kLanes, 2 * kLanes + 1}) {
    const auto indices = iota_indices(n);
    const BatchGrad lane = batch_loss_grad(*fx.executor, fx.theta, fx.data,
                                           indices, logit_scale,
                                           BatchReplay::kLanes);
    const BatchGrad scalar = batch_loss_grad(*fx.executor, fx.theta, fx.data,
                                             indices, logit_scale,
                                             BatchReplay::kScalar);
    EXPECT_NEAR(lane.loss, scalar.loss, kAgreementTol) << "batch size " << n;
    EXPECT_DOUBLE_EQ(lane.accuracy, scalar.accuracy) << "batch size " << n;
    ASSERT_EQ(lane.grad.size(), scalar.grad.size());
    ASSERT_EQ(lane.grad.size(), fx.theta.size());
    for (std::size_t p = 0; p < lane.grad.size(); ++p) {
      EXPECT_NEAR(lane.grad[p], scalar.grad[p], kAgreementTol)
          << "batch size " << n << " parameter " << p;
    }

    const BatchGrad lane_fwd = batch_loss(*fx.executor, fx.theta, fx.data,
                                          indices, logit_scale,
                                          BatchReplay::kLanes);
    const BatchGrad scalar_fwd = batch_loss(*fx.executor, fx.theta, fx.data,
                                            indices, logit_scale,
                                            BatchReplay::kScalar);
    EXPECT_NEAR(lane_fwd.loss, scalar_fwd.loss, kAgreementTol);
    EXPECT_DOUBLE_EQ(lane_fwd.accuracy, scalar_fwd.accuracy);
    EXPECT_NEAR(lane_fwd.loss, lane.loss, kAgreementTol)
        << "forward-only loss must equal the gradient pass loss";
  }
}

TEST(BatchedReplay, LaneAdjointMatchesLogicalReference) {
  // Pin the whole chain, not just lane-vs-scalar: the lane gradient on a
  // ragged batch must agree with the uncompiled logical-circuit reference.
  const BatchedFixture fx;
  const auto indices = iota_indices(kLanes + 3);
  const BatchGrad lane = batch_loss_grad(*fx.executor, fx.theta, fx.data,
                                         indices, 5.0, BatchReplay::kLanes);
  const BatchGrad logical = batch_loss_grad(
      fx.model.circuit, fx.model.readout_qubits, fx.theta, fx.data, indices, 5.0);
  EXPECT_NEAR(lane.loss, logical.loss, kAgreementTol);
  EXPECT_DOUBLE_EQ(lane.accuracy, logical.accuracy);
  ASSERT_EQ(lane.grad.size(), logical.grad.size());
  for (std::size_t p = 0; p < lane.grad.size(); ++p) {
    EXPECT_NEAR(lane.grad[p], logical.grad[p], kAgreementTol)
        << "parameter " << p;
  }
}

TEST(BatchedReplay, ReadoutSlotsStayPositional) {
  // Readout on qubits {1, 3}: slot 0 must read qubit 1 and slot 1 qubit 3.
  // A qubit-indexed write in the lane readout would scatter these into the
  // wrong (or out-of-range) entries of the logit vector.
  Circuit c(4);
  c.ry(0, input(0));       // consume the input so rows need >= 1 feature
  c.x(1);                  // slot 0: <Z> = -1 exactly
  c.ry(3, trainable(0));   // slot 1: <Z> = cos(theta0)
  const auto executor = build_pure_executor(c, {1, 3});
  const std::vector<double> theta{0.7};

  std::vector<std::vector<double>> xs(kLanes + 2);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = {0.1 * static_cast<double>(i)};
  }
  const auto lane = executor->run_z_batch(xs, theta, nullptr,
                                          BatchReplay::kLanes);
  ASSERT_EQ(lane.size(), xs.size());
  for (std::size_t i = 0; i < lane.size(); ++i) {
    ASSERT_EQ(lane[i].size(), 2u);
    EXPECT_NEAR(lane[i][0], -1.0, kAgreementTol) << "sample " << i;
    EXPECT_NEAR(lane[i][1], std::cos(0.7), kAgreementTol) << "sample " << i;
    EXPECT_EQ(lane[i], executor->run_z(xs[i], theta)) << "sample " << i;
  }
}

TEST(SampledBatched, LaneBlocksDrawBitwiseIdenticalShotStreams) {
  // Sample i of a batch draws from seed + i whichever engine replays it. A
  // backend seeded seed + i therefore reproduces sample i's stream through
  // the SCALAR single-sample path (run_logits draws from its own seed + 0),
  // giving a bitwise reference for every lane of every block — including
  // lane positions the in-process scalar tail can never cover.
  const BatchedFixture fx;
  const std::uint64_t seed = 41;
  const int shots = 256;
  const std::size_t n = 2 * kLanes + 3;  // two lane blocks + scalar tail
  const auto xs = first_rows(fx.data, n);

  const std::vector<ReadoutError> confusions[] = {
      {},  // confusion-free: the draw loop consumes one uniform per shot
      {ReadoutError{0.1, 0.2}, ReadoutError{0.05, 0.3}, ReadoutError{0.02, 0.04},
       ReadoutError{0.15, 0.0}},  // extra bernoullis interleave the stream
  };
  for (const auto& slot_readout : confusions) {
    const SampledStatevectorBackend batch(fx.executor, fx.theta, slot_readout,
                                          shots, seed);
    const auto zs = batch.run_logits_batch(xs);
    ASSERT_EQ(zs.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const SampledStatevectorBackend per(fx.executor, fx.theta, slot_readout,
                                          shots, seed + i);
      EXPECT_EQ(per.run_logits(xs[i]), zs[i])
          << "sample " << i << (slot_readout.empty() ? "" : " (with confusion)");
    }
  }
}

TEST(BatchedValidation, ShortRowsFailUpFrontAtEveryBatchEntryPoint) {
  const BatchedFixture fx;
  // One row shorter than the encoder's arity, buried mid-batch so the
  // failure must come from the up-front sweep, not a worker's replay.
  std::vector<std::vector<double>> ragged(fx.data.features.begin(),
                                          fx.data.features.begin() + kLanes);
  ragged[3] = {0.5, 0.5};  // the compiled program reads 4 inputs

  EXPECT_THROW(fx.executor->run_z_batch(ragged, fx.theta), PreconditionError);
  EXPECT_THROW(
      fx.executor->run_z_batch(ragged, fx.theta, nullptr, BatchReplay::kScalar),
      PreconditionError);

  const SampledStatevectorBackend sampled(fx.executor, fx.theta, {}, 32, 7);
  EXPECT_THROW(sampled.run_logits_batch(ragged), PreconditionError);
  EXPECT_THROW(sampled.run_logits(ragged[3]), PreconditionError);

  Dataset short_row = fx.data;
  short_row.features[3] = {0.5, 0.5};
  const auto indices = iota_indices(kLanes);
  EXPECT_THROW(
      batch_loss_grad(*fx.executor, fx.theta, short_row, indices, 5.0),
      PreconditionError);
  EXPECT_THROW(batch_loss(*fx.executor, fx.theta, short_row, indices, 5.0),
               PreconditionError);
  // Selecting only full rows must still pass: validation covers the
  // selected rows, not the whole dataset.
  const std::vector<std::size_t> full_rows{0, 1, 2, 4};
  EXPECT_NO_THROW(
      batch_loss_grad(*fx.executor, fx.theta, short_row, full_rows, 5.0));
}

/// The paper model lowered onto belem with calibrated noise folded in — the
/// density-engine counterpart of BatchedFixture.
struct NoisyBatchedFixture {
  CalibrationHistory history{FluctuationScenario::belem(), 2, 4242};
  QnnModel model = build_paper_model(4, 4, 2, 1);
  std::vector<double> theta = init_params(model, 11);
  TranspiledModel transpiled =
      transpile_model(model.circuit, model.readout_qubits, CouplingMap::belem(),
                      &history.day(0));
  Dataset data = make_mnist4(2 * kLanes + 3, 19);
  std::shared_ptr<const NoisyExecutor> noisy =
      build_noisy_executor(model, transpiled, theta, history.day(0), {});
};

TEST(BatchedValidation, NoisyBatchAndEvaluatorRejectShortRows) {
  const NoisyBatchedFixture fx;
  Dataset data = fx.data;
  data.features[2] = {0.25};  // 1 feature, the encoder reads 4

  EXPECT_THROW(fx.noisy->run_z_batch(data.features), PreconditionError);

  // The Status surface reports the same defect as invalid_argument instead
  // of throwing from a worker thread.
  const auto result = noisy_evaluate_or(fx.model, fx.transpiled, fx.theta,
                                        data, fx.history.day(0), {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchedNoisy, LaneReplayBitwiseMatchesScalarAcrossRaggedSizes) {
  const NoisyBatchedFixture fx;
  // Every batch size through two full lane blocks plus a tail, exact
  // (shots = 0) expectations: the lane density replay must be bitwise
  // identical to the per-sample path, and both inside the documented 1e-10
  // envelope of the uncompiled gate-by-gate reference.
  for (std::size_t n = 1; n <= 2 * kLanes + 1; ++n) {
    const auto xs = first_rows(fx.data, n);
    const auto lane =
        fx.noisy->run_z_batch(xs, 0, 99, nullptr, BatchReplay::kLanes);
    const auto scalar =
        fx.noisy->run_z_batch(xs, 0, 99, nullptr, BatchReplay::kScalar);
    ASSERT_EQ(lane.size(), n);
    ASSERT_EQ(scalar.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(lane[i], scalar[i]) << "batch size " << n << " sample " << i;
      const auto reference = fx.noisy->run_z_reference(xs[i]);
      ASSERT_EQ(lane[i].size(), reference.size());
      for (std::size_t k = 0; k < reference.size(); ++k) {
        EXPECT_NEAR(lane[i][k], reference[k], kAgreementTol)
            << "batch size " << n << " sample " << i << " slot " << k;
      }
    }
  }
}

TEST(BatchedNoisy, LaneShotSamplingBitwiseMatchesScalar) {
  // shots > 0: sample i draws from Rng(shot_seed + i) whichever engine
  // replays it, and the lane diagonal feeds the SAME scalar readout/shot
  // code — so sampled results are bitwise identical too, lane blocks and
  // ragged tail alike.
  const NoisyBatchedFixture fx;
  const auto xs = first_rows(fx.data, kLanes + 3);
  const auto lane =
      fx.noisy->run_z_batch(xs, 128, 41, nullptr, BatchReplay::kLanes);
  const auto scalar =
      fx.noisy->run_z_batch(xs, 128, 41, nullptr, BatchReplay::kScalar);
  EXPECT_EQ(lane, scalar);
}

TEST(BatchedThreadPool, ConcurrentBatchesAgreeWithSerialReference) {
  // The lane engines keep per-thread SoA scratch; hammer the shared
  // executor + sampled backend from several caller threads at once (each
  // fanning out over the process-global pool) and require every result to
  // match the serial reference. Named *ThreadPool* so the TSan preset's
  // test filter picks this suite up.
  const BatchedFixture fx;
  const auto xs = first_rows(fx.data, 2 * kLanes + 1);
  const auto expected_z =
      fx.executor->run_z_batch(xs, fx.theta, nullptr, BatchReplay::kLanes);
  const SampledStatevectorBackend sampled(fx.executor, fx.theta, {}, 64, 9);
  const auto expected_logits = sampled.run_logits_batch(xs);
  const auto indices = iota_indices(xs.size());
  const BatchGrad expected_grad = batch_loss_grad(
      *fx.executor, fx.theta, fx.data, indices, 5.0, BatchReplay::kLanes);

  constexpr int kThreads = 4;
  std::array<bool, kThreads> ok{};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      bool agree = true;
      for (int round = 0; round < 3; ++round) {
        agree &= fx.executor->run_z_batch(xs, fx.theta, nullptr,
                                          BatchReplay::kLanes) == expected_z;
        agree &= sampled.run_logits_batch(xs) == expected_logits;
        const BatchGrad grad = batch_loss_grad(*fx.executor, fx.theta, fx.data,
                                               indices, 5.0,
                                               BatchReplay::kLanes);
        agree &= grad.grad == expected_grad.grad &&
                 grad.loss == expected_grad.loss;
      }
      ok[static_cast<std::size_t>(t)] = agree;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(ok[static_cast<std::size_t>(t)]) << "caller thread " << t;
  }
}

TEST(BatchedCapabilities, LaneEnginesAdvertiseBatchedReplay) {
  EXPECT_TRUE(
      backend_kind_capabilities(BackendKind::kPureStatevector).batched_replay);
  EXPECT_TRUE(backend_kind_capabilities(BackendKind::kSampled).batched_replay);
  EXPECT_TRUE(
      backend_kind_capabilities(BackendKind::kDensityNoisy).batched_replay);
}

}  // namespace
}  // namespace qucad
