#!/usr/bin/env python3
"""Regenerates the checked-in seed corpora under fuzz/corpus/.

The corpora are committed (CI and the standalone driver consume them
without running this script); rerun after changing the io/ encodings:

    python3 fuzz/make_corpus.py

Seeds are deliberately minimal-but-accepting: each one parses successfully
(or exercises one named reject path, e.g. the *_repro files pinning fixed
decoder defects), so mutation starts deep inside the decoders instead of
dying at the magic check. The artifact corpus additionally seeds from
tests/golden/repo_v1.qcd, the richest accepting input in the tree.
"""

import pathlib
import shutil
import struct
import zlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
CORPUS = ROOT / "fuzz" / "corpus"


def u8(v):
    return struct.pack("<B", v)


def u32(v):
    return struct.pack("<I", v)


def u64(v):
    return struct.pack("<Q", v)


def i32(v):
    return struct.pack("<i", v)


def f64(v):
    return struct.pack("<d", v)


def f64_vector(values):
    return u64(len(values)) + b"".join(f64(v) for v in values)


def string(s):
    raw = s.encode()
    return u64(len(raw)) + raw


def calibration(num_qubits=2, edges=((0, 1),)):
    """io_detail::encode_calibration for a small, semantically valid device."""
    body = i32(num_qubits) + u64(len(edges))
    for a, b in edges:
        body += i32(a) + i32(b)
    body += b"".join(f64(0.001) for _ in range(num_qubits))          # sx
    body += b"".join(f64(0.01) + f64(0.02) for _ in range(num_qubits))  # readout
    body += b"".join(f64(100.0) + f64(80.0) for _ in range(num_qubits))  # T1/T2
    body += b"".join(f64(0.02) for _ in edges)                       # cx
    return body


def status_ok():
    return u8(0) + string("")


def write(path, data):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    print(f"{path.relative_to(ROOT)}  {len(data)} bytes")


def deserializer_corpus():
    out = CORPUS / "deserializer"
    # The harness treats the input as an interleaved opcode/data stream, so
    # any bytes work; these start it on successful typed reads.
    write(out / "primitives",
          u8(1) + u32(0xDEADBEEF) + u8(2) + u64(2**40) + u8(4) + f64(-0.0) +
          u8(5) + u8(1) + u8(3) + i32(-7))
    write(out / "containers",
          u8(6) + string("hi") + u8(7) + f64_vector([1.5, -2.25]) +
          u8(8) + u64(3) + b"\x00\x01\x02" + u8(9) + u8(1) + u64(42))


def wire_corpus():
    out = CORPUS / "wire_frame"
    write(out / "predict_request", u8(1) + f64_vector([0.25, -1.5, 3.0]))
    write(out / "predict_response_ok",
          u8(2) + status_ok() + i32(1) + u64(7) + u8(2) +
          f64_vector([-0.125, 0.875]))
    write(out / "predict_response_refusal",
          u8(2) + u8(8) + string("queue full"))  # kResourceExhausted
    write(out / "calibration_push", u8(3) + calibration())
    write(out / "calibration_ack_ok",
          u8(4) + status_ok() + u8(0) + u64(3) + u8(1) + status_ok())
    # Pinned reproducer: a 13-byte push claiming INT32_MAX qubits used to
    # reach the Calibration constructor and force a multi-GB allocation
    # (bad_alloc through the no-throw decoder contract); must decode to
    # kDataLoss. Regression-tested in tests/test_wire.cpp.
    write(out / "huge_qubit_count_repro", u8(3) + i32(0x7FFFFFFF) + u64(0))


def artifact_section(section_id, payload):
    return u32(section_id) + u64(len(payload)) + u32(zlib.crc32(payload)) + payload


def artifact_corpus():
    out = CORPUS / "artifact_container"
    out.mkdir(parents=True, exist_ok=True)
    golden = ROOT / "tests" / "golden" / "repo_v1.qcd"
    shutil.copyfile(golden, out / "repo_v1.qcd")
    print(f"{(out / 'repo_v1.qcd').relative_to(ROOT)}  copied from tests/golden")

    magic = b"QCAD" + u32(1)
    # Minimal accepting container: empty repository, one calibration day,
    # default-shaped config (the config payload mirrors encode_config field
    # order; values are the struct defaults that pass semantic validation).
    repo = u64(0) + f64_vector([1.0, 1.0]) + f64(0.5)
    history = u64(1) + calibration()
    config = (f64(0.05) + f64(0.3) + u8(1) + u8(1) + i32(0) + u64(12345) +
              u8(1) + u8(0) + i32(0) + u8(0) + u8(1) +
              i32(3) + i32(8) + i32(16) + f64(0.05) + f64(1.0) + f64(4.0) +
              u8(0) + f64(0.5) + u8(0) + f64_vector([-0.5, 0.0, 0.5]) +
              u64(7) + i32(4) + f64(0.02) + f64(0.1) + u8(1) + u64(0) +
              u8(1) + f64(1.0) +
              u64(16) + u64(500) + u8(0) + u64(1) + u64(64) + u64(0) +
              u8(0) + u64(0) + f64(0.0))
    write(out / "minimal_container",
          magic + u32(3) +
          artifact_section(1, repo) +
          artifact_section(2, history) +
          artifact_section(3, config))
    # Pinned reproducer: calibration-history day claiming INT32_MAX qubits
    # behind a valid CRC — the same unbounded-allocation defect as the wire
    # reproducer, reached through the artifact path. Must be kDataLoss.
    hostile_history = u64(1) + i32(0x7FFFFFFF) + u64(0)
    write(out / "huge_qubit_count_repro",
          magic + u32(1) + artifact_section(2, hostile_history))
    write(out / "bad_magic", b"NOPE" + u32(1) + u32(0))


def fleet_config_corpus():
    out = CORPUS / "fleet_config"
    # Accepting seeds spanning the grammar: defaults-only, every device key,
    # comments/whitespace, and a two-topology fleet (parse accepts it; only
    # the harness's same-topology rule rejects mixed fleets later).
    write(out / "minimal", b"device name=a topology=belem\n")
    write(out / "full_keys",
          b"fleet days=389 seed=7\n"
          b"device name=dev0 topology=belem seed=2021 error_scale=1.2 "
          b"t_scale=0.9 ou_sigma_scale=1.1 baseline_jitter=0.15 "
          b"episode_shift=-12 maintenance_rate=0.02 maintenance_seed=99\n")
    write(out / "comments",
          b"# fleet scenario\n\n"
          b"fleet days=30 seed=2\n"
          b"  device name=a topology=belem seed=5  # trailing note\n"
          b"\tdevice name=b topology=belem seed=6\n")
    write(out / "two_topologies",
          b"fleet days=60 seed=3\n"
          b"device name=b0 topology=belem seed=1\n"
          b"device name=j0 topology=jakarta seed=2\n")
    # Named reject path: unknown key (mutation should flip it into accepts).
    write(out / "unknown_key_reject",
          b"device name=a topology=belem warp_factor=9\n")


def transpile_corpus():
    out = CORPUS / "transpile"
    # The harness reads the input as a byte-driven spec stream (topology,
    # qubit/gate counts, per-gate kind/operand/angle bytes), so structured
    # seeds just need enough bytes to route a non-trivial circuit.
    write(out / "belem_dense", bytes([0, 4]) + bytes(range(3, 96)))
    write(out / "jakarta_wide", bytes([1, 6]) + bytes((7 * i + 5) % 251 for i in range(120)))
    write(out / "line_hostile", bytes([2, 5, 3]) + bytes((13 * i) % 256 for i in range(80)))
    write(out / "ring_symbolic", bytes([3, 4, 2]) + bytes((29 * i + 1) % 256 for i in range(100)))
    # Pinned reproducer: an out-of-range readout qubit reaching the
    # noise-aware layout search used to read past the candidate layout in
    # layout_cost (heap-buffer-overflow); transpile_model must reject it
    # up front. Regression-tested in tests/test_transpile.cpp.
    write(out / "hostile_readout_repro", bytes(7))


def main():
    deserializer_corpus()
    wire_corpus()
    artifact_corpus()
    fleet_config_corpus()
    transpile_corpus()


if __name__ == "__main__":
    main()
