// Fuzz target for the wire frame decoders (io/wire.hpp) — the payload
// bytes a network peer controls after the length prefix. The input is one
// frame payload (type byte + body); the harness feeds it to all four
// decoders, so the type byte steers it down the matching decode path
// while the other three exercise their reject-wrong-type path.
//
// Contract under test: decoders never throw (a hostile calibration push
// must come back kDataLoss, not a PreconditionError or a multi-gigabyte
// allocation), never read out of bounds, and never partially mutate their
// output. Accepted messages must re-encode canonically: encode(decode(x))
// decodes again and re-encodes to the same bytes.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "io/wire.hpp"
#include "noise/calibration.hpp"

namespace {

void check(bool condition) {
  if (!condition) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> payload(data, size);

  std::vector<double> features;
  if (qucad::decode_predict_request(payload, features).ok()) {
    // The request encoding has no redundancy and the decoder requires the
    // payload to be exhausted, so an accepted payload IS the canonical
    // encoding of its features.
    const std::vector<std::uint8_t> canonical =
        qucad::encode_predict_request(features);
    check(canonical == std::vector<std::uint8_t>(data, data + size));
  }

  const qucad::StatusOr<qucad::Prediction> response =
      qucad::decode_predict_response(payload);
  if (response.ok()) {
    const std::vector<std::uint8_t> canonical =
        qucad::encode_predict_response(response);
    const qucad::StatusOr<qucad::Prediction> again =
        qucad::decode_predict_response(canonical);
    check(again.ok());
    check(qucad::encode_predict_response(again) == canonical);
  }

  qucad::Calibration calibration;
  if (qucad::decode_calibration_push(payload, calibration).ok()) {
    // Edges are normalized (a <= b) on construction, so the canonical
    // re-encoding may differ from the accepted input — idempotence is the
    // invariant, not byte identity.
    const std::vector<std::uint8_t> canonical =
        qucad::encode_calibration_push(calibration);
    qucad::Calibration again;
    check(qucad::decode_calibration_push(canonical, again).ok());
    check(qucad::encode_calibration_push(again) == canonical);
  }

  const qucad::StatusOr<qucad::WireCalibrationAck> ack =
      qucad::decode_calibration_ack(payload);
  if (ack.ok()) {
    const std::vector<std::uint8_t> canonical =
        qucad::encode_calibration_ack(ack);
    const qucad::StatusOr<qucad::WireCalibrationAck> again =
        qucad::decode_calibration_ack(canonical);
    check(again.ok());
    check(qucad::encode_calibration_ack(again) == canonical);
  }
  return 0;
}
