// Fuzz target for the artifact container parser (io/artifacts.hpp) — the
// bytes a service cold-starts from. deserialize_artifacts promises to
// reject corrupt input of any kind with a Status, never by throwing,
// aborting, reading out of bounds, or allocating unboundedly more than
// the input size (seeded from tests/golden/repo_v1.qcd so the fuzzer
// starts from an accepting parse and mutates outward).
//
// For inputs the parser accepts, the harness additionally checks the
// canonical round-trip: re-encoding the decoded value must produce bytes
// the parser accepts again, and that second decode must re-encode to the
// same bytes (serialize_artifacts is a canonical form, so it must be
// idempotent even when the accepted input itself was non-canonical, e.g.
// carried sections out of order).

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "io/artifacts.hpp"

namespace {

void check(bool condition) {
  if (!condition) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  const qucad::StatusOr<qucad::Artifacts> decoded =
      qucad::deserialize_artifacts(bytes);
  if (!decoded.ok()) return 0;

  const std::vector<std::uint8_t> canonical =
      qucad::serialize_artifacts(*decoded);
  const qucad::StatusOr<qucad::Artifacts> second =
      qucad::deserialize_artifacts(canonical);
  check(second.ok());
  check(qucad::serialize_artifacts(*second) == canonical);
  return 0;
}
