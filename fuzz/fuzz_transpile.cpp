// Fuzz target for the transpiler (transpile/transpiler.hpp): the input
// bytes drive a bounded circuit/device/readout specification, including
// deliberately hostile qubit indices and readout sets.
//
// Contract under test: transpile_model either rejects bad input with
// PreconditionError (the documented research-API boundary) or produces a
// routed model whose invariants hold — the final mapping is an injective
// logical->physical assignment, every routed two-qubit gate acts on a
// coupled pair, parameter associations point at real parameters on real
// qubits, and lowering binds a positional readout consistent with the
// routing. Anything else (out-of-bounds access, a silently corrupt
// mapping) traps.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/require.hpp"
#include "noise/calibration.hpp"
#include "transpile/coupling.hpp"
#include "transpile/transpiler.hpp"

namespace {

void check(bool condition) {
  if (!condition) __builtin_trap();
}

struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint8_t u8() { return pos < size ? data[pos++] : 0; }
  double angle() { return (static_cast<double>(u8()) / 255.0 - 0.5) * 6.3; }
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  Reader in{data, size};

  qucad::CouplingMap coupling = qucad::CouplingMap::belem();
  switch (in.u8() % 4) {
    case 0: break;
    case 1: coupling = qucad::CouplingMap::jakarta(); break;
    case 2: coupling = qucad::CouplingMap::line(2 + in.u8() % 7); break;
    default: coupling = qucad::CouplingMap::ring(3 + in.u8() % 6); break;
  }
  const int physical = coupling.num_qubits();
  const int logical = 1 + in.u8() % physical;

  try {
    qucad::Circuit circuit(logical);
    const int gates = in.u8() % 48;
    for (int g = 0; g < gates; ++g) {
      // Mostly in-range qubits so routing runs deep; every eighth gate may
      // carry a hostile index to probe the rejection path.
      const bool hostile = in.u8() % 8 == 0;
      const int span = hostile ? logical + 2 : logical;
      const int q0 = in.u8() % span;
      int q1 = logical > 1 ? in.u8() % span : q0;
      if (q1 == q0) q1 = (q0 + 1) % span;
      const qucad::ParamRef param = in.u8() % 3 == 0
                                        ? qucad::trainable(in.u8() % 12)
                                        : qucad::ParamRef{};
      switch (in.u8() % 10) {
        case 0:
          param.is_symbolic() ? circuit.rx(q0, param)
                              : circuit.rx(q0, in.angle());
          break;
        case 1:
          param.is_symbolic() ? circuit.ry(q0, param)
                              : circuit.ry(q0, in.angle());
          break;
        case 2:
          param.is_symbolic() ? circuit.rz(q0, param)
                              : circuit.rz(q0, in.angle());
          break;
        case 3: circuit.h(q0); break;
        case 4: circuit.sx(q0); break;
        case 5: circuit.x(q0); break;
        case 6:
          if (logical > 1) circuit.cx(q0, q1);
          break;
        case 7:
          if (logical > 1) circuit.swap(q0, q1);
          break;
        case 8:
          if (logical > 1) {
            param.is_symbolic() ? circuit.crx(q0, q1, param)
                                : circuit.crx(q0, q1, in.angle());
          }
          break;
        default:
          if (logical > 1) {
            param.is_symbolic() ? circuit.crz(q0, q1, param)
                                : circuit.crz(q0, q1, in.angle());
          }
          break;
      }
    }

    std::vector<int> readout;
    const int readout_count = 1 + in.u8() % logical;
    const int start = in.u8() % logical;
    for (int k = 0; k < readout_count; ++k) {
      readout.push_back((start + k) % logical);
    }
    if (in.u8() % 8 == 0) readout.push_back(logical + 1);  // hostile slot

    qucad::TranspileOptions options;
    options.noise_aware_layout = false;
    qucad::Calibration calibration(physical, coupling.edges());
    const qucad::Calibration* calibration_ptr = nullptr;
    // The noise-aware placement scores injective layouts exhaustively;
    // keep that path to small devices so iterations stay fast.
    if (physical <= 5 && logical <= 4 && in.u8() % 2 == 0) {
      options.noise_aware_layout = true;
      calibration_ptr = &calibration;
    }

    const qucad::TranspiledModel model = qucad::transpile_model(
        circuit, readout, coupling, calibration_ptr, options);

    check(model.routed.circuit.num_qubits() == physical);
    check(model.readout_logical == readout);

    const std::vector<int>& mapping = model.routed.final_mapping;
    check(mapping.size() == static_cast<std::size_t>(logical));
    std::vector<bool> used(static_cast<std::size_t>(physical), false);
    for (int home : mapping) {
      check(home >= 0 && home < physical);
      check(!used[static_cast<std::size_t>(home)]);
      used[static_cast<std::size_t>(home)] = true;
    }

    for (const qucad::Gate& gate : model.routed.circuit.gates()) {
      check(gate.q0 >= 0 && gate.q0 < physical);
      if (gate.q1 >= 0) {
        check(gate.q1 < physical);
        check(gate.q0 != gate.q1);
        check(coupling.adjacent(gate.q0, gate.q1));
      }
    }

    const int trainable = model.routed.circuit.num_trainable();
    for (const qucad::GateAssociation& assoc : model.associations) {
      if (assoc.param_index < 0) continue;  // slot unused by any gate
      check(assoc.param_index < trainable);
      check(assoc.q0 >= 0 && assoc.q0 < physical);
      check(assoc.q1 < physical);
    }

    const std::vector<double> theta(static_cast<std::size_t>(trainable), 0.0);
    const qucad::PhysicalCircuit lowered = qucad::lower_model(model, theta);
    check(lowered.readout_physical().size() == readout.size());
    for (std::size_t k = 0; k < readout.size(); ++k) {
      check(lowered.readout_physical()[k] ==
            model.readout_physical(readout[k]));
    }
  } catch (const qucad::PreconditionError&) {
    // Rejecting a malformed spec loudly is the contract, not a finding.
  }
  return 0;
}
