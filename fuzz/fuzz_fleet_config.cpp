// Fuzz target for the fleet-config text parser (fleet/device_spec.hpp) —
// the checked-in/scenario-file surface an operator or CI pipeline feeds the
// fleet simulator. The input is the raw config text.
//
// Contract under test: parse() never throws and never accepts a config that
// fails validate(); an accepted config re-encodes canonically (to_text is a
// fixed point under parse), and every accepted device spec is directly
// usable — its coupling map and perturbed fluctuation scenario construct
// without error (consumers use parsed specs without re-validating).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fleet/device_spec.hpp"

namespace {

void check(bool condition) {
  if (!condition) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const qucad::StatusOr<qucad::fleet::FleetConfig> parsed =
      qucad::fleet::FleetConfig::parse(text);
  if (!parsed.ok()) return 0;

  check(parsed->validate().ok());

  const std::string canonical = parsed->to_text();
  const qucad::StatusOr<qucad::fleet::FleetConfig> again =
      qucad::fleet::FleetConfig::parse(canonical);
  check(again.ok());
  check(again->to_text() == canonical);

  const std::size_t probe = std::min<std::size_t>(parsed->devices.size(), 4);
  for (std::size_t i = 0; i < probe; ++i) {
    check(parsed->devices[i].coupling().ok());
    check(parsed->devices[i].scenario().ok());
  }
  return 0;
}
