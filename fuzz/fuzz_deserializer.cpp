// Fuzz target for io/serializer.hpp's Deserializer — the lowest layer of
// the untrusted io/wire boundary. The input bytes are both the opcode
// stream and the data stream: each iteration consumes one opcode byte from
// the cursor and performs the selected read on the same cursor, so the
// fuzzer explores every interleaving of typed reads over arbitrary bytes.
//
// Contract under test (see serializer.hpp): a read never throws, never
// reads past the buffer, and reports truncation/corruption as a Status.
// The harness additionally checks cursor sanity after every call —
// offset() can never exceed the buffer and remaining() must stay
// consistent with it — and that crc32 is deterministic.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "io/serializer.hpp"

namespace {

// Fuzz invariant check: abort (the fuzzing failure signal), don't throw.
void check(bool condition) {
  if (!condition) __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  check(qucad::crc32(bytes) == qucad::crc32(bytes));

  qucad::Deserializer in(bytes);
  while (!in.exhausted()) {
    std::uint8_t op = 0;
    if (!in.read_u8(op).ok()) break;
    const std::size_t before = in.offset();
    switch (op % 12) {
      case 0: {
        std::uint8_t v = 0;
        (void)in.read_u8(v);
        break;
      }
      case 1: {
        std::uint32_t v = 0;
        (void)in.read_u32(v);
        break;
      }
      case 2: {
        std::uint64_t v = 0;
        (void)in.read_u64(v);
        break;
      }
      case 3: {
        std::int32_t v = 0;
        (void)in.read_i32(v);
        break;
      }
      case 4: {
        double v = 0.0;
        (void)in.read_f64(v);
        break;
      }
      case 5: {
        bool v = false;
        (void)in.read_bool(v);
        break;
      }
      case 6: {
        std::string v;
        const qucad::Status s = in.read_string(v);
        // A corrupt length prefix must never produce a string larger than
        // the bytes that were actually available.
        check(!s.ok() || v.size() <= size);
        break;
      }
      case 7: {
        std::vector<double> v;
        const qucad::Status s = in.read_f64_vector(v);
        check(!s.ok() || v.size() * 8 <= size);
        break;
      }
      case 8: {
        std::vector<std::uint8_t> v;
        const qucad::Status s = in.read_u8_vector(v);
        check(!s.ok() || v.size() <= size);
        break;
      }
      case 9: {
        std::optional<std::uint64_t> v;
        (void)in.read_optional_u64(v);
        break;
      }
      case 10: {
        // Span count derived from the input so truncated requests are hit.
        std::span<const std::uint8_t> v;
        const qucad::Status s = in.read_span(op * 7u, v);
        check(!s.ok() || v.size() == op * 7u);
        break;
      }
      case 11: {
        // Oversized request: must fail cleanly, never move the cursor.
        std::span<const std::uint8_t> v;
        check(!in.read_span(size + 1, v).ok());
        check(in.offset() == before);
        break;
      }
    }
    check(in.offset() <= size);
    check(in.remaining() == size - in.offset());
    check(in.exhausted() == (in.remaining() == 0));
  }
  return 0;
}
