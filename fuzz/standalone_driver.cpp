// Standalone driver for the fuzz targets when the compiler has no
// libFuzzer (-fsanitize=fuzzer is Clang-only; GCC builds link this file
// instead). It replays every corpus input through LLVMFuzzerTestOneInput
// and can then run a bounded deterministic mutation campaign over the
// corpus — not coverage-guided, but under ASan+UBSan it still shakes out
// the crash/overflow/unbounded-allocation class of decoder bugs locally
// and keeps the corpus a regression battery on toolchains without Clang.
//
// Usage: fuzz_<target> [--mutate N] [--seed S] [--max-len L] <file|dir>...
//   --mutate N   after replaying the corpus, run N mutated inputs derived
//                from it (default 0: replay only, the CI smoke shape)
//   --seed S     xorshift seed for the mutation campaign (default 1)
//   --max-len L  cap generated input length (default 1 MiB)
//
// Exit is nonzero on usage errors only; harness failures abort the
// process (sanitizer report or __builtin_trap), exactly like libFuzzer.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::uint64_t xorshift(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

bool read_file(const std::filesystem::path& path,
               std::vector<std::uint8_t>& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  out.assign(std::istreambuf_iterator<char>(is),
             std::istreambuf_iterator<char>());
  return !is.bad();
}

// One mutation step in the style of libFuzzer's default mutator: bit
// flips, byte sets, truncation/extension, and interesting-integer splices
// (the values length-prefix parsers are most likely to mishandle).
void mutate(std::vector<std::uint8_t>& input, std::uint64_t& rng,
            std::size_t max_len) {
  static constexpr std::uint64_t kInteresting[] = {
      0,    1,          0x7F,       0x80,       0xFF,       0x100,
      0x7FFF, 0xFFFF,   0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
      0x7FFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull};
  switch (xorshift(rng) % 6) {
    case 0:  // flip one bit
      if (!input.empty()) {
        const std::size_t i = xorshift(rng) % input.size();
        input[i] ^= static_cast<std::uint8_t>(1u << (xorshift(rng) % 8));
      }
      break;
    case 1:  // overwrite one byte
      if (!input.empty()) {
        input[xorshift(rng) % input.size()] =
            static_cast<std::uint8_t>(xorshift(rng));
      }
      break;
    case 2:  // truncate
      if (!input.empty()) input.resize(xorshift(rng) % input.size());
      break;
    case 3:  // append random bytes
      for (std::size_t n = xorshift(rng) % 9; n > 0 && input.size() < max_len;
           --n) {
        input.push_back(static_cast<std::uint8_t>(xorshift(rng)));
      }
      break;
    case 4: {  // splice an interesting integer (1/2/4/8 bytes, LE)
      const std::uint64_t value =
          kInteresting[xorshift(rng) %
                       (sizeof(kInteresting) / sizeof(kInteresting[0]))];
      const std::size_t width = std::size_t{1} << (xorshift(rng) % 4);
      if (input.size() >= width) {
        const std::size_t at = xorshift(rng) % (input.size() - width + 1);
        for (std::size_t b = 0; b < width; ++b) {
          input[at + b] = static_cast<std::uint8_t>(value >> (8 * b));
        }
      }
      break;
    }
    case 5:  // duplicate a chunk to grow structure
      if (!input.empty() && input.size() < max_len) {
        const std::size_t from = xorshift(rng) % input.size();
        const std::size_t len =
            1 + xorshift(rng) % (input.size() - from);
        const std::vector<std::uint8_t> chunk(
            input.begin() + static_cast<std::ptrdiff_t>(from),
            input.begin() + static_cast<std::ptrdiff_t>(from + len));
        const std::size_t at = xorshift(rng) % (input.size() + 1);
        input.insert(input.begin() + static_cast<std::ptrdiff_t>(at),
                     chunk.begin(), chunk.end());
        if (input.size() > max_len) input.resize(max_len);
      }
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t rounds = 0;
  std::uint64_t seed = 1;
  std::size_t max_len = std::size_t{1} << 20;
  std::vector<std::filesystem::path> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mutate" && i + 1 < argc) {
      rounds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-len" && i + 1 < argc) {
      max_len = std::strtoull(argv[++i], nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      paths.emplace_back(arg);
    }
  }

  // Collect corpus files (directories are walked one level, like libFuzzer).
  std::vector<std::vector<std::uint8_t>> corpus;
  for (const std::filesystem::path& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
        std::vector<std::uint8_t> bytes;
        if (entry.is_regular_file() && read_file(entry.path(), bytes)) {
          corpus.push_back(std::move(bytes));
        }
      }
    } else {
      std::vector<std::uint8_t> bytes;
      if (!read_file(path, bytes)) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 2;
      }
      corpus.push_back(std::move(bytes));
    }
  }

  // Always exercise the empty input, then replay the corpus verbatim.
  (void)LLVMFuzzerTestOneInput(nullptr, 0);
  for (const std::vector<std::uint8_t>& input : corpus) {
    (void)LLVMFuzzerTestOneInput(input.data(), input.size());
  }
  std::printf("replayed %zu corpus input(s)\n", corpus.size());

  if (rounds > 0 && !corpus.empty()) {
    std::uint64_t rng = seed ? seed : 1;
    for (std::uint64_t round = 0; round < rounds; ++round) {
      std::vector<std::uint8_t> input = corpus[xorshift(rng) % corpus.size()];
      const std::uint64_t steps = 1 + xorshift(rng) % 8;
      for (std::uint64_t s = 0; s < steps; ++s) mutate(input, rng, max_len);
      (void)LLVMFuzzerTestOneInput(input.data(), input.size());
    }
    std::printf("ran %llu mutated input(s) (seed %llu)\n",
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(seed));
  }
  return 0;
}
