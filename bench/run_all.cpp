// Self-timed perf driver: runs the kernel and noisy-evaluation benchmarks
// and emits machine-readable BENCH_*.json records so the perf trajectory of
// the repo can be tracked across PRs without google-benchmark tooling.
//
// Usage: run_all [output_dir]   (default: current directory)
//
// Each BENCH_<group>.json file holds:
//   {"schema": "qucad-bench-v1", "group": ..., "records": [
//      {"name", "params", "iters", "seconds", "throughput", "unit"}, ...]}

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "fleet/harness.hpp"
#include "io/wire.hpp"
#include "data/mnist_synth.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "qnn/eval_cache.hpp"
#include "qnn/evaluator.hpp"
#include "qnn/gradients.hpp"
#include "qnn/model.hpp"
#include "qnn/trainer.hpp"
#include "serve/inference_service.hpp"
#include "sim/adjoint.hpp"
#include "sim/statevector.hpp"
#include "transpile/transpiler.hpp"

namespace qucad::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Record {
  std::string name;
  std::string params;   // free-form "k=v,k=v" descriptor
  std::int64_t iters = 0;
  double seconds = 0.0;
  double throughput = 0.0;  // work items per second (see unit)
  std::string unit;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void write_group(const std::string& dir, const std::string& group,
                 const std::vector<Record>& records) {
  const std::string path = dir + "/BENCH_" + group + ".json";
  std::ofstream os(path);
  require(os.good(), "cannot open " + path);
  os << "{\n  \"schema\": \"qucad-bench-v1\",\n  \"group\": \"" << group
     << "\",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Record& r = records[i];
    os << "    {\"name\": \"" << json_escape(r.name) << "\", \"params\": \""
       << json_escape(r.params) << "\", \"iters\": " << r.iters
       << ", \"seconds\": " << r.seconds << ", \"throughput\": " << r.throughput
       << ", \"unit\": \"" << json_escape(r.unit) << "\"}"
       << (i + 1 < records.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  require(os.good(), "write failed for " + path);
  std::cout << "wrote " << path << "\n";
}

/// Runs `body` repeatedly until ~min_seconds of wall time accumulate and
/// returns a throughput record (items/sec with `items_per_iter` items per
/// call). One warmup call is excluded from timing.
template <typename Body>
Record time_loop(const std::string& name, const std::string& params,
                 double items_per_iter, const std::string& unit, Body&& body,
                 double min_seconds = 0.25) {
  body();  // warmup
  Record r;
  r.name = name;
  r.params = params;
  r.unit = unit;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds) {
    body();
    ++r.iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  r.seconds = elapsed;
  r.throughput = static_cast<double>(r.iters) * items_per_iter / elapsed;
  return r;
}

std::vector<Record> kernel_benches() {
  std::vector<Record> records;
  for (int qubits : {4, 6, 8}) {
    Circuit c = angle_encoder(qubits, qubits);
    c.append(build_paper_ansatz(qubits, 2));
    const auto theta = bench_theta(c.num_trainable());
    const std::vector<double> x(static_cast<std::size_t>(qubits), 0.7);
    records.push_back(time_loop(
        "statevector_forward", "qubits=" + std::to_string(qubits), 1.0,
        "circuits/sec", [&] {
          StateVector sv(qubits);
          sv.run(c, theta, x);
          volatile double sink = sv.expectation_z(0);
          (void)sink;
        }));
  }
  for (int qubits : {4, 6}) {
    Circuit c = angle_encoder(qubits, qubits);
    c.append(build_paper_ansatz(qubits, 2));
    const auto theta = bench_theta(c.num_trainable());
    const std::vector<double> x(static_cast<std::size_t>(qubits), 0.7);
    std::vector<double> weights(static_cast<std::size_t>(qubits), 0.0);
    weights[0] = 1.0;
    records.push_back(time_loop(
        "adjoint_gradient", "qubits=" + std::to_string(qubits), 1.0,
        "gradients/sec", [&] {
          const auto result = adjoint_gradient(c, theta, x, weights);
          volatile double sink = result.gradients[0];
          (void)sink;
        }));
  }
  {
    const CalibrationHistory history(FluctuationScenario::belem(), 10, 2021);
    const QnnModel model = build_paper_model(4, 4, 2, 2);
    records.push_back(time_loop("transpile_model", "device=belem", 1.0,
                                "transpiles/sec", [&] {
                                  const TranspiledModel t = transpile_model(
                                      model.circuit, model.readout_qubits,
                                      CouplingMap::belem(), &history.day(0));
                                  volatile int sink = t.routed.swap_count;
                                  (void)sink;
                                }));
  }
  return records;
}

std::vector<Record> noisy_eval_benches() {
  std::vector<Record> records;
  const BenchWorkload w = make_workload();
  const Dataset data = make_mnist4(64, 24);
  records.push_back(time_loop(
      "noisy_evaluate", "qubits=4,samples=" + std::to_string(data.size()),
      static_cast<double>(data.size()), "samples/sec", [&] {
        const auto result =
            noisy_evaluate(w.model, w.transpiled, w.theta, data, w.calib());
        volatile double sink = result.accuracy;
        (void)sink;
      }));
  return records;
}

/// The compiled-engine record group: per-sample replay throughput of the
/// fused op-stream vs the legacy gate-by-gate reference on the same
/// fig-scale workload, plus the end-to-end cached noisy_evaluate rate. The
/// "compiled_speedup" record's throughput field is the dimensionless
/// compiled/reference ratio — hardware-independent, which is what the CI
/// regression gate checks against the checked-in baseline.
std::vector<Record> compiled_eval_benches() {
  std::vector<Record> records;
  const BenchWorkload w = make_workload();
  const Dataset data = make_mnist4(64, 24);

  const std::shared_ptr<const NoisyExecutor> executor =
      build_noisy_executor(w.model, w.transpiled, w.theta, w.calib(), {});
  const std::string params = "qubits=4,device=belem";

  std::size_t cursor = 0;
  const Record reference = time_loop(
      "run_z_reference", params, 1.0, "samples/sec", [&] {
        const auto z = executor->run_z_reference(data.features[cursor]);
        cursor = (cursor + 1) % data.size();
        volatile double sink = z[0];
        (void)sink;
      });
  records.push_back(reference);

  cursor = 0;
  const Record compiled = time_loop(
      "run_z_compiled", params, 1.0, "samples/sec", [&] {
        const auto z = executor->run_z(data.features[cursor]);
        cursor = (cursor + 1) % data.size();
        volatile double sink = z[0];
        (void)sink;
      });
  records.push_back(compiled);

  Record speedup;
  speedup.name = "compiled_speedup";
  speedup.params = params;
  speedup.iters = 1;
  speedup.seconds = 0.0;
  speedup.throughput = compiled.throughput / reference.throughput;
  speedup.unit = "x (compiled / reference)";
  records.push_back(speedup);

  // End-to-end evaluator path with the executor cache warm: what repository
  // keep-best loops and the longitudinal harness actually pay per call.
  // Warm the cache explicitly, then snapshot stats around the timed loop so
  // the hit-rate record is self-contained (independent of other bench
  // groups' cache traffic and of how many iterations the timer takes):
  // every timed call must hit.
  noisy_evaluate(w.model, w.transpiled, w.theta, data, w.calib());
  const EvalCacheStats before = CompiledEvalCache::global().stats();
  records.push_back(time_loop(
      "noisy_evaluate_cached",
      params + ",samples=" + std::to_string(data.size()),
      static_cast<double>(data.size()), "samples/sec", [&] {
        const auto result =
            noisy_evaluate(w.model, w.transpiled, w.theta, data, w.calib());
        volatile double sink = result.accuracy;
        (void)sink;
      }));
  const EvalCacheStats after = CompiledEvalCache::global().stats();

  const std::size_t hits = after.hits - before.hits;
  const std::size_t misses = after.misses - before.misses;
  Record cache;
  cache.name = "eval_cache_hit_rate";
  // Params must be stable run to run: check_regression.py keys records by
  // (name, params). The hit/miss split is carried by iters (= hits+misses)
  // and the hit-fraction throughput.
  cache.params = params;
  cache.iters = static_cast<std::int64_t>(hits + misses);
  cache.seconds = 0.0;
  cache.throughput = hits + misses == 0
                         ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(hits + misses);
  cache.unit = "hit fraction";
  records.push_back(cache);
  return records;
}

/// The statevector-training record group: per-sample gradient throughput of
/// the compiled symbolic-theta engine vs the gate-by-gate logical-circuit
/// adjoint on the same model, plus end-to-end train_circuit epochs under
/// each engine. The "train_speedup" record's throughput field is the
/// dimensionless compiled/reference batch-gradient ratio — hardware-
/// independent, which is what the CI regression gate checks against the
/// checked-in baseline (the tentpole claim: >= 1.5x).
std::vector<Record> train_benches() {
  std::vector<Record> records;
  const QnnModel model = build_paper_model(4, 4, 4, 2);
  const auto theta = bench_theta(model.num_params(), 3);
  const Dataset data = make_mnist4(32, 24);
  std::vector<std::size_t> idx(data.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const std::string params = "qubits=4,blocks=2,batch=" +
                             std::to_string(data.size());

  const Record reference = time_loop(
      "batch_grad_reference", params, static_cast<double>(data.size()),
      "gradients/sec", [&] {
        const BatchGrad bg = batch_loss_grad(model.circuit,
                                             model.readout_qubits, theta, data,
                                             idx, 5.0);
        volatile double sink = bg.grad[0];
        (void)sink;
      });
  records.push_back(reference);

  const auto executor =
      build_pure_executor(model.circuit, model.readout_qubits);
  const Record compiled = time_loop(
      "batch_grad_compiled", params, static_cast<double>(data.size()),
      "gradients/sec", [&] {
        const BatchGrad bg = batch_loss_grad(*executor, theta, data, idx, 5.0);
        volatile double sink = bg.grad[0];
        (void)sink;
      });
  records.push_back(compiled);

  Record speedup;
  speedup.name = "train_speedup";
  speedup.params = params;
  speedup.iters = 1;
  speedup.seconds = 0.0;
  speedup.throughput = compiled.throughput / reference.throughput;
  speedup.unit = "x (compiled / reference)";
  records.push_back(speedup);

  // End-to-end fine-tune-shaped epochs (Adam + shuffling + batching) under
  // the compiled engine — what compress/fine_tune and the online adaptation
  // loop actually pay per epoch.
  TrainConfig config;
  config.epochs = 1;
  config.batch_size = 16;
  config.engine = TrainEngine::kCompiled;
  records.push_back(time_loop(
      "train_epoch_compiled", params, static_cast<double>(data.size()),
      "samples/sec", [&] {
        std::vector<double> w = theta;
        const TrainResult r = train_model(model, w, data, config);
        volatile double sink = r.final_train_accuracy;
        (void)sink;
      }));
  return records;
}

/// The SoA lane-replay record group: the batched compiled engines — forward
/// (PureExecutor::run_z_batch) and gradient (batch_loss_grad) — with lane
/// replay forced on vs forced off (the per-sample scalar reference) on the
/// same model, theta, and sample rows. Both sides spread over the same
/// worker pool, so the ratio isolates the SoA win (one op-stream walk per
/// kLanes samples + vectorized lane kernels) from thread-level parallelism.
/// "simd_batch_speedup" / "simd_grad_speedup" carry the dimensionless
/// lanes/scalar ratios at batch 256 — hardware-independent, gated against
/// the checked-in baseline in CI (>= 2x asserted on multi-core runners).
/// "simd_noisy_speedup" is the same ratio for the density engine
/// (NoisyExecutor::run_z_batch) at batch 64 on the belem workload.
std::vector<Record> simd_benches() {
  std::vector<Record> records;
  const QnnModel model = build_paper_model(4, 4, 4, 2);
  const auto theta = bench_theta(model.num_params(), 3);
  const auto executor =
      build_pure_executor(model.circuit, model.readout_qubits);
  const Dataset data = make_mnist4(256, 24);

  struct EngineSpec {
    const char* label;
    BatchReplay replay;
  };
  const EngineSpec engines[] = {
      {"scalar", BatchReplay::kScalar},
      {"lanes", BatchReplay::kLanes},
  };

  double forward_scalar_256 = 0.0;
  double forward_lanes_256 = 0.0;
  double grad_scalar_256 = 0.0;
  double grad_lanes_256 = 0.0;
  for (const std::size_t batch : {std::size_t{32}, std::size_t{256}}) {
    const std::span<const std::vector<double>> sub(data.features.data(), batch);
    std::vector<std::size_t> idx(batch);
    for (std::size_t i = 0; i < batch; ++i) idx[i] = i;
    for (const EngineSpec& engine : engines) {
      const std::string params = std::string("engine=") + engine.label +
                                 ",qubits=4,batch=" + std::to_string(batch);
      const Record forward = time_loop(
          "batch_forward", params, static_cast<double>(batch), "samples/sec",
          [&] {
            const auto zs =
                executor->run_z_batch(sub, theta, nullptr, engine.replay);
            volatile double sink = zs[0][0];
            (void)sink;
          });
      records.push_back(forward);
      const Record grad = time_loop(
          "batch_grad", params, static_cast<double>(batch), "gradients/sec",
          [&] {
            const BatchGrad bg =
                batch_loss_grad(*executor, theta, data, idx, 5.0,
                                engine.replay);
            volatile double sink = bg.grad[0];
            (void)sink;
          });
      records.push_back(grad);
      if (batch == 256) {
        if (engine.replay == BatchReplay::kScalar) {
          forward_scalar_256 = forward.throughput;
          grad_scalar_256 = grad.throughput;
        } else {
          forward_lanes_256 = forward.throughput;
          grad_lanes_256 = grad.throughput;
        }
      }
    }
  }

  for (const auto& [name, lanes, scalar] :
       {std::tuple<const char*, double, double>{
            "simd_batch_speedup", forward_lanes_256, forward_scalar_256},
        std::tuple<const char*, double, double>{
            "simd_grad_speedup", grad_lanes_256, grad_scalar_256}}) {
    Record speedup;
    speedup.name = name;
    speedup.params = "qubits=4,batch=256";
    speedup.iters = 1;
    speedup.seconds = 0.0;
    speedup.throughput = lanes / scalar;
    speedup.unit = "x (lanes / scalar)";
    records.push_back(speedup);
  }

  // Density-engine lane replay: NoisyExecutor::run_z_batch with lanes forced
  // on vs off over the same rows, exact expectations (shots = 0) — the shape
  // of noisy_evaluate and the compression keep_best guard. Smaller batch
  // than the pure group because each sample is a full density evolution.
  {
    const BenchWorkload w = make_workload();
    const std::shared_ptr<const NoisyExecutor> noisy =
        build_noisy_executor(w.model, w.transpiled, w.theta, w.calib(), {});
    constexpr std::size_t kNoisyBatch = 64;
    const std::span<const std::vector<double>> sub(data.features.data(),
                                                   kNoisyBatch);
    double noisy_scalar = 0.0;
    double noisy_lanes = 0.0;
    for (const EngineSpec& engine : engines) {
      const std::string params = std::string("engine=") + engine.label +
                                 ",qubits=4,device=belem,batch=" +
                                 std::to_string(kNoisyBatch);
      const Record rec = time_loop(
          "noisy_batch_forward", params, static_cast<double>(kNoisyBatch),
          "samples/sec", [&] {
            const auto zs =
                noisy->run_z_batch(sub, 0, 99, nullptr, engine.replay);
            volatile double sink = zs[0][0];
            (void)sink;
          });
      records.push_back(rec);
      if (engine.replay == BatchReplay::kScalar) {
        noisy_scalar = rec.throughput;
      } else {
        noisy_lanes = rec.throughput;
      }
    }
    Record speedup;
    speedup.name = "simd_noisy_speedup";
    speedup.params = "qubits=4,device=belem,batch=64";
    speedup.iters = 1;
    speedup.seconds = 0.0;
    speedup.throughput = noisy_lanes / noisy_scalar;
    speedup.unit = "x (lanes / scalar)";
    records.push_back(speedup);
  }
  return records;
}

/// Concurrent-client measurement: `clients` threads each push `per_client`
/// requests through InferenceService::submit as fast as the service answers,
/// recording per-request wall latency.
struct HammerResult {
  double seconds = 0.0;
  std::int64_t requests = 0;
  double p50 = 0.0;
  double p99 = 0.0;
};

HammerResult hammer_submit(qucad::InferenceService& service,
                           std::span<const std::vector<double>> pool,
                           int clients, int per_client) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<qucad::Status> failures(static_cast<std::size_t>(clients));
  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(per_client));
      for (int r = 0; r < per_client; ++r) {
        const std::vector<double>& x =
            pool[static_cast<std::size_t>(c * per_client + r) % pool.size()];
        const auto t0 = Clock::now();
        const auto prediction = service.submit(x);
        if (!prediction.ok()) {
          // Throwing here would escape the thread (std::terminate); stash
          // the status and fail after join, through run_all's handler.
          failures[static_cast<std::size_t>(c)] = prediction.status();
          return;
        }
        lat.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const qucad::Status& status : failures) {
    if (!status.ok()) {
      qucad::require(false, "serving bench: submit failed: " + status.to_string());
    }
  }

  HammerResult result;
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  std::vector<double> merged;
  for (const auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  result.requests = static_cast<std::int64_t>(merged.size());
  if (!merged.empty()) {
    result.p50 = merged[merged.size() / 2];
    result.p99 = merged[(merged.size() * 99) / 100];
  }
  return result;
}

/// Async load generator for the sharded admission-controlled service:
/// `clients` threads each fire `per_client` submit_async requests in bursts
/// of `burst` and gather the futures. Latency is submission -> future
/// resolution for EVERY outcome — a shed or expired request that resolves in
/// microseconds is exactly the admission-control property the saturation
/// records gate (the alternative, unbounded queueing, would stretch every
/// response). Served / shed / expired are counted separately; any other
/// error fails the bench.
struct AsyncHammerResult {
  double seconds = 0.0;
  std::int64_t served = 0;
  std::int64_t shed = 0;     // kResourceExhausted at admission
  std::int64_t expired = 0;  // kDeadlineExceeded while queued
  double p50 = 0.0;          // response time over all outcomes
  double p99 = 0.0;
};

AsyncHammerResult hammer_async(qucad::InferenceService& service,
                               std::span<const std::vector<double>> pool,
                               int clients, int per_client, int burst) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(clients));
  std::vector<qucad::Status> failures(static_cast<std::size_t>(clients));
  std::atomic<std::int64_t> served{0};
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> expired{0};

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto& lat = latencies[static_cast<std::size_t>(c)];
      lat.reserve(static_cast<std::size_t>(per_client));
      std::vector<std::pair<Clock::time_point,
                            std::future<qucad::StatusOr<qucad::Prediction>>>>
          in_flight;
      in_flight.reserve(static_cast<std::size_t>(burst));
      for (int r = 0; r < per_client; r += burst) {
        in_flight.clear();
        const int n = std::min(burst, per_client - r);
        for (int b = 0; b < n; ++b) {
          const std::vector<double>& x =
              pool[static_cast<std::size_t>(c * per_client + r + b) %
                   pool.size()];
          in_flight.emplace_back(Clock::now(), service.submit_async(x));
        }
        for (auto& [t0, future] : in_flight) {
          const qucad::StatusOr<qucad::Prediction> result = future.get();
          lat.push_back(
              std::chrono::duration<double>(Clock::now() - t0).count());
          if (result.ok()) {
            served.fetch_add(1, std::memory_order_relaxed);
          } else if (result.status().code() ==
                     qucad::StatusCode::kResourceExhausted) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else if (result.status().code() ==
                     qucad::StatusCode::kDeadlineExceeded) {
            expired.fetch_add(1, std::memory_order_relaxed);
          } else {
            failures[static_cast<std::size_t>(c)] = result.status();
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const qucad::Status& status : failures) {
    if (!status.ok()) {
      qucad::require(false,
                     "serving bench: submit_async failed: " + status.to_string());
    }
  }

  AsyncHammerResult result;
  result.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  result.served = served.load();
  result.shed = shed.load();
  result.expired = expired.load();
  std::vector<double> merged;
  for (const auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  if (!merged.empty()) {
    result.p50 = merged[merged.size() / 2];
    result.p99 = merged[(merged.size() * 99) / 100];
  }
  return result;
}

/// The serving-layer record group: the micro-batched InferenceService
/// against the naive pre-serving deployment (a sequential loop calling
/// noisy_evaluate once per arriving request), plus concurrent-client
/// throughput and tail latency. "serving_speedup" is the dimensionless
/// batched/naive ratio at 8 in-flight requests; the batched sweep spreads
/// the batch over the worker pool, so the ratio is ~1x on a 1-core
/// container and >= 2x on any multi-core machine (the CI runners that gate
/// it) — see docs/BENCHMARKS.md.
std::vector<Record> serving_benches() {
  std::vector<Record> records;
  BenchWorkload w = make_workload();
  const Calibration& calib = w.calib();
  Environment env;
  env.model = w.model;
  env.theta_pretrained = w.theta;
  env.train = make_mnist4(64, 24);
  env.transpiled = w.transpiled;

  StatusOr<InferenceService> service =
      InferenceService::create(env, {}, calib);
  require(service.ok(), service.status().to_string());

  const std::vector<std::vector<double>>& requests = env.train.features;
  const std::string params = "qubits=4,device=belem";

  // Naive deployment: each request becomes its own one-sample
  // noisy_evaluate call (dataset construction, cache lookup, result structs
  // per request; no batching, no pool parallelism across requests).
  std::size_t cursor = 0;
  const Record naive = time_loop(
      "serve_naive_loop", params + ",clients=8", 8.0, "samples/sec", [&] {
        for (int r = 0; r < 8; ++r) {
          Dataset single;
          single.features = {requests[cursor]};
          single.labels = {0};
          single.num_classes = env.model.num_classes;
          cursor = (cursor + 1) % requests.size();
          const NoisyEvalResult result = noisy_evaluate(
              env.model, env.transpiled, env.theta_pretrained, single, calib);
          volatile double sink = result.accuracy;
          (void)sink;
        }
      });
  records.push_back(naive);

  // The same 8 requests as one compiled sweep through the service.
  cursor = 0;
  const std::size_t last_batch_start = requests.size() - 8;
  const Record batched = time_loop(
      "serve_submit_batch", params + ",clients=8", 8.0, "samples/sec", [&] {
        const std::span<const std::vector<double>> batch(
            requests.data() + cursor, 8);
        cursor = cursor + 8 > last_batch_start ? 0 : cursor + 8;
        const auto predictions = service->submit_batch(batch);
        volatile double sink = (*predictions)[0].logits[0];
        (void)sink;
      });
  records.push_back(batched);

  Record speedup;
  speedup.name = "serving_speedup";
  speedup.params = params + ",clients=8";
  speedup.iters = 1;
  speedup.seconds = 0.0;
  speedup.throughput = batched.throughput / naive.throughput;
  speedup.unit = "x (batched / naive loop)";
  records.push_back(speedup);

  // Live concurrent clients through submit(): micro-batcher handoff,
  // coalescing window and epoch snapshotting included.
  for (const int clients : {1, 8, 32}) {
    const int per_client = clients >= 32 ? 10 : 40;
    const HammerResult h =
        hammer_submit(*service, requests, clients, per_client);
    Record throughput;
    throughput.name = "serve_submit";
    throughput.params = params + ",clients=" + std::to_string(clients);
    throughput.iters = h.requests;
    throughput.seconds = h.seconds;
    throughput.throughput = static_cast<double>(h.requests) / h.seconds;
    throughput.unit = "requests/sec";
    records.push_back(throughput);

    if (clients == 8) {
      // Tail latency, recorded as inverse latency so "higher is better"
      // holds for the regression gate; the seconds field carries the raw
      // latency.
      for (const auto& [name, value] :
           {std::pair<const char*, double>{"serve_latency_p50", h.p50},
            std::pair<const char*, double>{"serve_latency_p99", h.p99}}) {
        Record latency;
        latency.name = name;
        latency.params = params + ",clients=8";
        latency.iters = h.requests;
        latency.seconds = value;
        latency.throughput = value > 0.0 ? 1.0 / value : 0.0;
        latency.unit = "1/sec (inverse latency)";
        records.push_back(latency);
      }
    }
  }

  // --- sharded async saturation sweep -------------------------------------
  // The production shape: 4 shards, bounded 32-deep queues, a 500ms
  // deadline budget, async submission in bursts. At low client counts the
  // records measure routed micro-batched throughput; at 64 clients the
  // p50/p99 records gate tail latency; at 256 clients the service is
  // deliberately oversubscribed (2048 near-simultaneous requests against
  // 128 queue slots) and the gate flips: serve_shed_rate asserts admission
  // control ENGAGES (sheds with kResourceExhausted instead of queueing
  // unboundedly) and serve_async_p99 asserts every response — served, shed
  // or expired — still resolves inside a bounded envelope.
  {
    const ServiceConfig async_config =
        ServiceConfig::from_environment(env)
            .with_num_shards(4)
            .with_queue_capacity(32)
            .with_deadline_budget(std::chrono::milliseconds(500));
    StatusOr<InferenceService> sharded =
        InferenceService::create(env, {}, calib, async_config);
    require(sharded.ok(), sharded.status().to_string());
    const std::string sharded_params = params + ",shards=4";

    for (const int clients : {1, 8, 64, 256}) {
      const int per_client = clients == 1 ? 64 : clients == 8 ? 24 : 8;
      const AsyncHammerResult h =
          hammer_async(*sharded, requests, clients, per_client, /*burst=*/4);
      const std::string cparams =
          sharded_params + ",clients=" + std::to_string(clients);
      const std::int64_t total = h.served + h.shed + h.expired;

      Record throughput;
      throughput.name = "serve_async_submit";
      throughput.params = cparams;
      throughput.iters = h.served;
      throughput.seconds = h.seconds;
      throughput.throughput = static_cast<double>(h.served) / h.seconds;
      throughput.unit = "served requests/sec";
      records.push_back(throughput);

      if (clients == 64 || clients == 256) {
        for (const auto& [name, value] :
             {std::pair<const char*, double>{"serve_async_p50", h.p50},
              std::pair<const char*, double>{"serve_async_p99", h.p99}}) {
          Record latency;
          latency.name = name;
          latency.params = cparams;
          latency.iters = total;
          latency.seconds = value;
          latency.throughput = value > 0.0 ? 1.0 / value : 0.0;
          latency.unit = "1/sec (inverse response time)";
          records.push_back(latency);
        }
      }
      if (clients == 256) {
        Record shed_rate;
        shed_rate.name = "serve_shed_rate";
        shed_rate.params = cparams;
        shed_rate.iters = total;
        shed_rate.seconds = h.seconds;
        shed_rate.throughput =
            total > 0 ? static_cast<double>(h.shed + h.expired) /
                            static_cast<double>(total)
                      : 0.0;
        shed_rate.unit = "refused fraction (shed + expired)";
        records.push_back(shed_rate);
      }
    }
  }
  return records;
}

/// The execution-backend record group: per-backend classification
/// throughput through the uniform ExecutionBackend interface at batch
/// 1/32/256 on a 6-qubit jakarta-routed model, a shots sweep of the sampled
/// backend, and the headline ratio record "sampled_vs_density_speedup" —
/// how much cheaper hardware-like finite-shot logits are when sampled from
/// the compiled statevector instead of evolved through the exact density
/// matrix. The ratio is dimensionless (both sides measured in the same run)
/// and gated >= 5x at 6 qubits in CI: the sampled backend's whole point is
/// that density cost grows as 4^n while statevector sampling grows as 2^n.
std::vector<Record> backend_benches() {
  std::vector<Record> records;
  const BenchWorkload w = make_workload(/*qubits=*/6);

  // Random encoding angles; the feature pool is larger than the largest
  // batch so sweeps do not reuse one hot sample.
  Rng rng(123);
  std::vector<std::vector<double>> features(
      256, std::vector<double>(static_cast<std::size_t>(w.model.num_inputs())));
  for (auto& x : features) {
    for (double& v : x) v = rng.uniform(0.0, 3.14159265358979323846);
  }

  const int sampled_shots = 1024;
  struct KindSpec {
    const char* label;
    BackendConfig config;
  };
  const KindSpec specs[] = {
      {"density_noisy", BackendConfig{}},
      {"pure_statevector",
       BackendConfig().with_kind(BackendKind::kPureStatevector)},
      {"sampled_statevector", BackendConfig()
                                  .with_kind(BackendKind::kSampled)
                                  .with_shots(sampled_shots)},
  };

  double density_batch32 = 0.0;
  double sampled_batch32 = 0.0;
  for (const KindSpec& spec : specs) {
    const std::shared_ptr<const ExecutionBackend> backend =
        make_workload_backend(w, spec.config);
    for (const std::size_t batch : {std::size_t{1}, std::size_t{32},
                                    std::size_t{256}}) {
      const std::span<const std::vector<double>> sub(features.data(), batch);
      const Record record = time_loop(
          "backend_logits",
          std::string("backend=") + spec.label +
              ",qubits=6,batch=" + std::to_string(batch),
          static_cast<double>(batch), "samples/sec", [&] {
            const auto zs = backend->run_logits_batch(sub);
            volatile double sink = zs[0][0];
            (void)sink;
          });
      if (batch == 32) {
        if (spec.config.kind == BackendKind::kDensityNoisy) {
          density_batch32 = record.throughput;
        }
        if (spec.config.kind == BackendKind::kSampled) {
          sampled_batch32 = record.throughput;
        }
      }
      records.push_back(record);
    }
  }

  // Shot-budget sweep of the sampled backend: how per-sample cost scales
  // from "one replay dominates" to "sampling dominates".
  for (const int shots : {128, 1024, 8192}) {
    const std::shared_ptr<const ExecutionBackend> backend =
        make_workload_backend(w, BackendConfig()
                                     .with_kind(BackendKind::kSampled)
                                     .with_shots(shots));
    const std::span<const std::vector<double>> sub(features.data(), 32);
    records.push_back(time_loop(
        "sampled_shots", "qubits=6,batch=32,shots=" + std::to_string(shots),
        32.0, "samples/sec", [&] {
          const auto zs = backend->run_logits_batch(sub);
          volatile double sink = zs[0][0];
          (void)sink;
        }));
  }

  Record speedup;
  speedup.name = "sampled_vs_density_speedup";
  speedup.params =
      "qubits=6,batch=32,shots=" + std::to_string(sampled_shots);
  speedup.iters = 1;
  speedup.seconds = 0.0;
  speedup.throughput = sampled_batch32 / density_batch32;
  speedup.unit = "x (sampled / density)";
  records.push_back(speedup);
  return records;
}

/// The wire-protocol record group: a multi-connection load generator
/// against a WireServer on a loopback ephemeral port. Each connection is a
// --- fleet simulator ------------------------------------------------------

/// One-repository-many-devices scaling: a full FleetHarness run per fleet
/// size (4/16/64 heterogeneous belem devices over the same day window),
/// reporting online serving throughput in device-days/sec, per-device-day
/// wall-time p50/p99 (as inverse latency so "higher is better" holds for
/// the regression gate), and the repository reuse rate. The reuse rate is
/// a deterministic function of (environment, fleet, options) under the
/// exact density backend, so its baseline is pinned tight and a dedicated
/// CI step asserts the large-fleet floor.
std::vector<Record> fleet_benches() {
  std::vector<Record> records;

  PipelineConfig config;
  config.max_train_samples = 64;
  config.max_test_samples = 24;
  config.profile_samples = 12;
  config.pretrain.epochs = 4;
  config.constructor_options.kmeans.k = 2;
  config.constructor_options.accuracy_requirement = 0.35;
  config.admm.iterations = 1;
  config.admm.epochs_per_iteration = 1;
  config.admm.finetune_epochs = 2;
  config.admm.validation_samples = 16;
  config.nat.epochs = 1;
  config.manager_options.admm = config.admm;
  const CalibrationHistory day0(FluctuationScenario::belem(), 1, 2021);
  const Environment env = prepare_environment(
      make_seismic(240, 11), CouplingMap::belem(), day0.day(0), config);

  for (const int devices : {4, 16, 64}) {
    fleet::FleetConfig fleet_config =
        fleet::FleetConfig::heterogeneous(devices, 5, 8);
    fleet::FleetOptions options;
    options.offline_days = 4;
    options.online_days = 3;
    options.offline_stride = 2;
    options.max_eval_samples = 16;

    StatusOr<fleet::FleetHarness> harness =
        fleet::FleetHarness::create(env, fleet_config, options);
    require(harness.ok(), harness.status().to_string());

    const auto start = Clock::now();
    StatusOr<fleet::FleetResult> result = harness->run();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    require(result.ok(), result.status().to_string());

    const std::string params = "devices=" + std::to_string(devices) +
                               ",days=3,workload=seismic";
    std::vector<double> day_seconds;
    double serving_seconds = 0.0;
    for (const fleet::FleetDeviceResult& device : result->devices) {
      for (const double s : device.day_seconds) {
        day_seconds.push_back(s);
        serving_seconds += s;
      }
    }
    const auto device_days = static_cast<std::int64_t>(day_seconds.size());

    Record throughput;
    throughput.name = "fleet_throughput";
    throughput.params = params;
    throughput.iters = device_days;
    throughput.seconds = elapsed;  // whole run, offline build included
    throughput.throughput = serving_seconds > 0.0
                                ? static_cast<double>(device_days) /
                                      serving_seconds
                                : 0.0;
    throughput.unit = "device-days/sec (online window)";
    records.push_back(throughput);

    std::sort(day_seconds.begin(), day_seconds.end());
    const auto rank = [&](double p) {
      const auto r = static_cast<std::size_t>(
          p * static_cast<double>(day_seconds.size() - 1) + 0.5);
      return day_seconds[std::min(r, day_seconds.size() - 1)];
    };
    for (const auto& [name, p] :
         {std::pair<const char*, double>{"fleet_day_p50", 0.5},
          std::pair<const char*, double>{"fleet_day_p99", 0.99}}) {
      Record latency;
      latency.name = name;
      latency.params = params;
      latency.iters = device_days;
      latency.seconds = rank(p);
      latency.throughput = rank(p) > 0.0 ? 1.0 / rank(p) : 0.0;
      latency.unit = "1/sec (inverse device-day latency)";
      records.push_back(latency);
    }

    Record reuse;
    reuse.name = "fleet_reuse_rate";
    reuse.params = params;
    reuse.iters = result->decisions();
    reuse.seconds = elapsed;
    reuse.throughput = result->reuse_rate();
    reuse.unit = "fraction of decisions answered from the repository";
    records.push_back(reuse);
  }
  return records;
}

/// thread with its own WireClient issuing synchronous predicts, so every
/// request pays the full deployment path — frame encode, TCP round-trip,
/// server decode, a blocking submit through the shard dispatchers, and the
/// response trip back. Records throughput plus request-latency p50/p99 at
/// 1/8/32 connections (latencies as inverse seconds so "higher is better"
/// holds for the regression gate; the raw latency rides in `seconds`).
std::vector<Record> wire_benches() {
  std::vector<Record> records;
  BenchWorkload w = make_workload();
  Environment env;
  env.model = w.model;
  env.theta_pretrained = w.theta;
  env.train = make_mnist4(64, 24);
  env.transpiled = w.transpiled;

  StatusOr<InferenceService> service =
      InferenceService::create(env, {}, w.calib());
  require(service.ok(), service.status().to_string());
  StatusOr<WireServer> server = WireServer::start(*service);
  require(server.ok(), server.status().to_string());

  const std::vector<std::vector<double>>& requests = env.train.features;
  const std::string params = "qubits=4,device=belem";

  // One warmup round-trip so the first epoch's compile cost is not timed.
  {
    StatusOr<WireClient> warm = WireClient::connect("127.0.0.1",
                                                    server->port());
    require(warm.ok(), warm.status().to_string());
    const auto p = warm->predict(requests[0]);
    require(p.ok(), p.status().to_string());
  }

  for (const int connections : {1, 8, 32}) {
    const int per_connection = connections >= 32 ? 8
                               : connections == 8 ? 24
                                                  : 100;
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(connections));
    std::vector<Status> failures(static_cast<std::size_t>(connections));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(connections));
    const auto start = Clock::now();
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        StatusOr<WireClient> client =
            WireClient::connect("127.0.0.1", server->port());
        if (!client.ok()) {
          failures[static_cast<std::size_t>(c)] = client.status();
          return;
        }
        for (int r = 0; r < per_connection; ++r) {
          const auto& x = requests[static_cast<std::size_t>(c * 31 + r) %
                                   requests.size()];
          const auto sent = Clock::now();
          const StatusOr<Prediction> result = client->predict(x);
          if (!result.ok()) {
            failures[static_cast<std::size_t>(c)] = result.status();
            return;
          }
          latencies[static_cast<std::size_t>(c)].push_back(
              std::chrono::duration<double>(Clock::now() - sent).count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    for (const Status& status : failures) {
      require(status.ok(), "wire bench: predict failed: " + status.to_string());
    }

    std::vector<double> merged;
    for (const auto& lat : latencies) {
      merged.insert(merged.end(), lat.begin(), lat.end());
    }
    std::sort(merged.begin(), merged.end());
    const std::int64_t total = static_cast<std::int64_t>(merged.size());
    const std::string cparams =
        params + ",conns=" + std::to_string(connections);

    Record throughput;
    throughput.name = "wire_predict";
    throughput.params = cparams;
    throughput.iters = total;
    throughput.seconds = seconds;
    throughput.throughput = static_cast<double>(total) / seconds;
    throughput.unit = "requests/sec";
    records.push_back(throughput);

    const double p50 = merged[merged.size() / 2];
    const double p99 = merged[(merged.size() * 99) / 100];
    for (const auto& [name, value] :
         {std::pair<const char*, double>{"wire_latency_p50", p50},
          std::pair<const char*, double>{"wire_latency_p99", p99}}) {
      Record latency;
      latency.name = name;
      latency.params = cparams;
      latency.iters = total;
      latency.seconds = value;
      latency.throughput = value > 0.0 ? 1.0 / value : 0.0;
      latency.unit = "1/sec (inverse latency)";
      records.push_back(latency);
    }
  }
  server->stop();
  return records;
}

}  // namespace
}  // namespace qucad::bench

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  using namespace qucad::bench;
  try {
    // Fail fast on an unwritable output dir before burning bench time.
    {
      const std::string probe_path = dir + "/BENCH_kernels.json";
      std::ofstream probe(probe_path);
      qucad::require(probe.good(), "cannot open " + probe_path);
    }
    write_group(dir, "kernels", kernel_benches());
    write_group(dir, "noisy_eval", noisy_eval_benches());
    write_group(dir, "compiled_eval", compiled_eval_benches());
    write_group(dir, "train", train_benches());
    write_group(dir, "simd", simd_benches());
    write_group(dir, "serving", serving_benches());
    write_group(dir, "backends", backend_benches());
    write_group(dir, "wire", wire_benches());
    write_group(dir, "fleet", fleet_benches());
  } catch (const std::exception& e) {
    std::cerr << "run_all: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
