#pragma once

// Shared setup for the paper-reproduction benches and the run_all perf
// driver: dataset construction, pipeline configuration matching Sec. IV-A,
// the belem/jakarta noise histories (day 0 = Aug 10 2021; online window =
// last 146 days), and the deduplicated executor/backend workload builders
// (model + routing + theta + calibration in one struct, backends built via
// BackendRegistry instead of per-binary lowering blocks).

#include <iostream>
#include <memory>
#include <span>
#include <string>

#include "backend/registry.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/qucad.hpp"
#include "core/strategies.hpp"
#include "data/iris_synth.hpp"
#include "data/mnist_synth.hpp"
#include "data/seismic_synth.hpp"
#include "data/vibration_synth.hpp"
#include "eval/harness.hpp"
#include "fleet/device_spec.hpp"
#include "fleet/drift_stream.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/eval_cache.hpp"

namespace qucad::bench {

inline Dataset make_dataset(const std::string& name) {
  if (name == "mnist4") return make_mnist4(2000, 24);
  if (name == "iris") return make_iris(150, 7);
  if (name == "seismic") return make_seismic(1500, 11);
  if (name == "vibration") return make_vibration(2000, 23);
  require(false, "unknown dataset " + name);
  return {};
}

/// Paper-matched pipeline settings per dataset (Sec. IV-A): 2 VQC blocks for
/// MNIST/seismic, 3 for Iris; 90/10 splits (66.6/33.4 for Iris).
inline PipelineConfig paper_config(const std::string& dataset) {
  PipelineConfig config;
  if (dataset == "iris") {
    config.ansatz_repeats = 3;
    config.test_fraction = 0.334;
  }
  if (dataset == "mnist4") {
    config.max_train_samples = 160;  // 16-feature circuits are ~2x deeper
  }
  config.constructor_options.kmeans.k = 6;  // Table II setting
  config.constructor_options.admm = config.admm;
  config.manager_options.admm = config.admm;
  return config;
}

/// Synthesizes a device's calibration stream through the fleet machinery
/// (fleet::DriftStream) — the one calibration-generation code path the
/// paper-figure benches and the fleet simulator share. A bench
/// misconfiguration is a bug, so failures abort through require().
inline CalibrationHistory device_history(
    const fleet::DeviceSpec& spec,
    int days = CalibrationHistory::kTotalDays) {
  StatusOr<fleet::DriftStream> stream = fleet::DriftStream::create(spec, days);
  require(stream.ok(), stream.status().to_string());
  return stream->history();
}

/// The fig. 1/2/4 belem device (drift seed 2021, no maintenance events).
inline CalibrationHistory belem_history() {
  return device_history(fleet::DeviceSpec::belem());
}

/// The fig. 8 jakarta device (drift seed 1107).
inline CalibrationHistory jakarta_history() {
  return device_history(fleet::DeviceSpec::jakarta());
}

/// Dates of the online window for series printing.
inline std::vector<std::string> online_dates(const CalibrationHistory& history) {
  std::vector<std::string> dates;
  for (int d = CalibrationHistory::kOfflineDays; d < history.days(); ++d) {
    dates.push_back(history.date_string(d));
  }
  return dates;
}

/// Seeded uniform parameters in [-3, 3) — the shared bench theta init.
inline std::vector<double> bench_theta(int n, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> theta(static_cast<std::size_t>(n));
  for (double& t : theta) t = rng.uniform(-3.0, 3.0);
  return theta;
}

/// One self-contained perf workload: the paper-scale model with a seeded
/// theta, routed on a device with a short drifting calibration history
/// (belem up to 5 qubits, jakarta above). Replaces the per-binary
/// history/model/theta/transpile setup blocks the bench sources used to
/// copy around.
struct BenchWorkload {
  CalibrationHistory history;
  QnnModel model;
  std::vector<double> theta;
  TranspiledModel transpiled;

  const Calibration& calib() const { return history.day(0); }
};

inline BenchWorkload make_workload(int qubits = 4, int classes = 2,
                                   int blocks = 2,
                                   std::uint64_t theta_seed = 7) {
  const bool on_belem = qubits <= 5;
  CalibrationHistory history(on_belem ? FluctuationScenario::belem()
                                      : FluctuationScenario::jakarta(),
                             10, 2021);
  QnnModel model = build_paper_model(qubits, qubits, classes, blocks);
  std::vector<double> theta = bench_theta(model.num_params(), theta_seed);
  TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits,
      on_belem ? CouplingMap::belem() : CouplingMap::jakarta(),
      &history.day(0));
  return BenchWorkload{std::move(history), std::move(model), std::move(theta),
                       std::move(transpiled)};
}

/// Registry context of a workload: exact expectations, executor cache on.
inline BackendContext workload_context(const BenchWorkload& workload) {
  BackendContext context;
  context.model = &workload.model;
  context.transpiled = &workload.transpiled;
  context.theta = workload.theta;
  context.calibration = &workload.calib();
  return context;
}

/// Builds an ExecutionBackend for the workload via BackendRegistry. A bench
/// misconfiguration is a bug, so failures abort through require().
inline std::shared_ptr<const ExecutionBackend> make_workload_backend(
    const BenchWorkload& workload, const BackendConfig& config = {}) {
  StatusOr<std::shared_ptr<const ExecutionBackend>> backend =
      make_backend(config, workload_context(workload));
  require(backend.ok(), backend.status().to_string());
  return *std::move(backend);
}

/// Theta-bound compiled noisy executor for an Environment — the raw engine
/// handle for benches that need density-matrix / probability access beyond
/// the backend interface (mitigation studies). Shares the environment's
/// noise options so results match the evaluator's.
inline std::shared_ptr<const NoisyExecutor> make_env_executor(
    const Environment& env, std::span<const double> theta,
    const Calibration& calib) {
  return build_noisy_executor(env.model, env.transpiled, theta, calib,
                              env.eval.noise);
}

}  // namespace qucad::bench
