#pragma once

// Shared setup for the paper-reproduction benches: dataset construction,
// pipeline configuration matching Sec. IV-A, and the belem/jakarta noise
// histories (day 0 = Aug 10 2021; online window = last 146 days).

#include <iostream>
#include <string>

#include "common/require.hpp"
#include "common/table.hpp"
#include "core/qucad.hpp"
#include "core/strategies.hpp"
#include "data/iris_synth.hpp"
#include "data/mnist_synth.hpp"
#include "data/seismic_synth.hpp"
#include "eval/harness.hpp"
#include "noise/calibration_history.hpp"

namespace qucad::bench {

inline Dataset make_dataset(const std::string& name) {
  if (name == "mnist4") return make_mnist4(2000, 24);
  if (name == "iris") return make_iris(150, 7);
  if (name == "seismic") return make_seismic(1500, 11);
  require(false, "unknown dataset " + name);
  return {};
}

/// Paper-matched pipeline settings per dataset (Sec. IV-A): 2 VQC blocks for
/// MNIST/seismic, 3 for Iris; 90/10 splits (66.6/33.4 for Iris).
inline PipelineConfig paper_config(const std::string& dataset) {
  PipelineConfig config;
  if (dataset == "iris") {
    config.ansatz_repeats = 3;
    config.test_fraction = 0.334;
  }
  if (dataset == "mnist4") {
    config.max_train_samples = 160;  // 16-feature circuits are ~2x deeper
  }
  config.constructor_options.kmeans.k = 6;  // Table II setting
  config.constructor_options.admm = config.admm;
  config.manager_options.admm = config.admm;
  return config;
}

inline CalibrationHistory belem_history() {
  return CalibrationHistory(FluctuationScenario::belem(),
                            CalibrationHistory::kTotalDays, /*seed=*/2021);
}

inline CalibrationHistory jakarta_history() {
  return CalibrationHistory(FluctuationScenario::jakarta(),
                            CalibrationHistory::kTotalDays, /*seed=*/1107);
}

/// Dates of the online window for series printing.
inline std::vector<std::string> online_dates(const CalibrationHistory& history) {
  std::vector<std::string> dates;
  for (int d = CalibrationHistory::kOfflineDays; d < history.days(); ++d) {
    dates.push_back(history.date_string(d));
  }
  return dates;
}

}  // namespace qucad::bench
