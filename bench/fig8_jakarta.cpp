// Figure 8 reproduction: earthquake detection on the 7-qubit jakarta
// device. Five rounds at different calibration times; Baseline vs
// noise-aware training vs QuCAD. The paper reports QuCAD consistently
// ~+13% over both competitors with visibly more stable accuracy.

#include <memory>

#include "bench_common.hpp"

using namespace qucad;
using namespace qucad::bench;

int main() {
  // The fig. 8 device as a fleet DeviceSpec — same generator as the fleet
  // simulator's jakarta devices.
  const fleet::DeviceSpec device = fleet::DeviceSpec::jakarta();
  const CalibrationHistory history = device_history(device);
  // Subsample the offline history 3x: 7-qubit density matrices are ~16x
  // more expensive than belem's and the clusters are unchanged.
  std::vector<Calibration> offline;
  for (int d = 0; d < CalibrationHistory::kOfflineDays; d += 3) {
    offline.push_back(history.day(d));
  }

  PipelineConfig config = paper_config("seismic");
  config.profile_samples = 32;
  config.constructor_options.profile_samples = 32;
  const StatusOr<CouplingMap> coupling = device.coupling();
  require(coupling.ok(), coupling.status().to_string());
  const Environment env = prepare_environment(make_dataset("seismic"),
                                              *coupling, history.day(0), config);

  // Five "execution rounds" at different times in the online window,
  // including the edge-<1,3> episode around day 317.
  const int rounds[5] = {250, 275, 317, 330, 370};

  BaselineStrategy baseline(env);
  NoiseAwareTrainOnceStrategy nat(env);
  QuCadStrategy qucad(env);
  qucad.offline(offline);

  std::cout << "=== Fig. 8: earthquake detection on 7-qubit jakarta ===\n\n";
  TextTable table({"Round", "Date", "Baseline", "Noise-aware Training",
                   "QuCAD"});
  double sum_base = 0.0, sum_nat = 0.0, sum_qucad = 0.0;
  for (int r = 0; r < 5; ++r) {
    const Calibration& calib = history.day(rounds[r]);
    const auto theta_base = baseline.online_day(r, calib);
    const auto theta_nat = nat.online_day(r, calib);
    const auto theta_qucad = qucad.online_day(r, calib);

    const double acc_base = noisy_accuracy(env.model, env.transpiled,
                                           theta_base, env.test, calib);
    const double acc_nat =
        noisy_accuracy(env.model, env.transpiled, theta_nat, env.test, calib);
    const double acc_qucad = noisy_accuracy(env.model, env.transpiled,
                                            theta_qucad, env.test, calib);
    sum_base += acc_base;
    sum_nat += acc_nat;
    sum_qucad += acc_qucad;
    table.add_row({std::to_string(r + 1), history.date_string(rounds[r]),
                   fmt_pct(acc_base), fmt_pct(acc_nat), fmt_pct(acc_qucad)});
  }
  table.add_row({"Avg", "", fmt_pct(sum_base / 5), fmt_pct(sum_nat / 5),
                 fmt_pct(sum_qucad / 5)});
  table.print(std::cout);

  std::cout << "\nPaper reference: averages 0.656 (Baseline), 0.668 "
               "(noise-aware training), 0.793\n(QuCAD) — QuCAD +13.7% / "
               "+12.52% and the most stable across rounds.\n";
  return 0;
}
