// Table II reproduction: the model-repository constructor's clustering
// ablation. Standard k-means with L2 distance vs the proposed
// performance-weighted k-means with dist^w_L1, K = 6 clusters over the
// offline calibration history. Reported: mean accuracy of the cluster
// models on their own clusters, and over all samples.

#include "bench_common.hpp"
#include "repo/constructor.hpp"

using namespace qucad;
using namespace qucad::bench;

int main() {
  const CalibrationHistory history = belem_history();
  const auto offline = history.slice(0, CalibrationHistory::kOfflineDays);

  const Environment env =
      prepare_environment(make_dataset("mnist4"), CouplingMap::belem(),
                          history.day(0), paper_config("mnist4"));

  auto run = [&](ClusterMetric metric, bool performance_weights) {
    ConstructorOptions options = env.constructor_options;
    options.kmeans.k = 6;
    options.kmeans.metric = metric;
    OfflineBuild build =
        build_repository(env.model, env.transpiled, env.theta_pretrained,
                         offline, env.train, env.profile, options);
    if (!performance_weights) {
      // plain L2 k-means ignores the performance weighting by construction
    }
    return build.diagnostics;
  };

  std::cout << "=== Table II: clustering ablation (K=6, " << offline.size()
            << " offline days, 4-class MNIST) ===\n\n";

  const ConstructorDiagnostics l2 = run(ClusterMetric::L2, false);
  const ConstructorDiagnostics weighted = run(ClusterMetric::WeightedL1, true);

  TextTable table({"Method", "K", "Mean Acc. of Clusters",
                   "Mean Acc. of Samples"});
  table.add_row({"K-Means with L2", "6", fmt_pct(l2.mean_accuracy_of_clusters),
                 fmt_pct(l2.mean_accuracy_of_samples)});
  table.add_row({"Proposed K-Means with dist^w_L1", "6",
                 fmt_pct(weighted.mean_accuracy_of_clusters),
                 fmt_pct(weighted.mean_accuracy_of_samples)});
  table.print(std::cout);

  std::cout << "\nPerformance-aware weights (|corr(acc, noise_j)|):\n";
  const auto names = history.day(0).feature_names();
  TextTable wtable({"Feature", "Weight"});
  for (std::size_t j = 0; j < weighted.weights.size(); ++j) {
    wtable.add_row({names[j], fmt(weighted.weights[j], 3)});
  }
  wtable.print(std::cout);

  std::cout << "\nPaper reference: 72.94% / 78.45% (L2) vs 75.83% / 80.68% "
               "(dist^w_L1) — the\nproposed distance yields centroids that "
               "represent their clusters better.\n";
  return 0;
}
