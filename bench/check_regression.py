#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json perf record against a checked-in baseline.

Usage: check_regression.py <current.json> <baseline.json> [tolerance]

Fails (exit 1) if any record named in the baseline is missing from the
current run or has throughput below baseline * (1 - tolerance); tolerance
defaults to 0.20, i.e. a >20% regression against the baseline numbers.
A baseline record may carry its own "tolerance" field, which overrides the
global one for that record (useful to pin dimensionless ratio records — e.g.
speedup floors — exactly while leaving hardware-dependent throughputs slack).

Records are keyed by (name, params), so groups that reuse one name across a
parameter sweep (BENCH_kernels.json's statevector_forward at 4/6/8 qubits)
gate each point independently. Records present in the current run but not in
the baseline are ignored, so adding benchmarks never requires touching the
gate. See docs/BENCHMARKS.md for the schema and the baseline-update
procedure.
"""

import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "qucad-bench-v1":
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    records = {}
    for r in doc["records"]:
        key = (r["name"], r.get("params", ""))
        if key in records:
            raise SystemExit(f"{path}: duplicate record {key}")
        records[key] = r
    return records


def main(argv):
    if len(argv) not in (3, 4):
        raise SystemExit(__doc__)
    current = load_records(argv[1])
    baseline = load_records(argv[2])
    tolerance = float(argv[3]) if len(argv) == 4 else 0.20

    failures = []
    for key, base in baseline.items():
        name = f"{key[0]}[{key[1]}]" if key[1] else key[0]
        tol = float(base.get("tolerance", tolerance))
        floor = base["throughput"] * (1.0 - tol)
        cur = current.get(key)
        if cur is None:
            failures.append(f"  {name}: missing from current run")
            continue
        status = "ok" if cur["throughput"] >= floor else "REGRESSION"
        print(
            f"  {name}: {cur['throughput']:.3f} {cur['unit']} "
            f"(baseline {base['throughput']:.3f}, floor {floor:.3f}) {status}"
        )
        if cur["throughput"] < floor:
            failures.append(
                f"  {name}: {cur['throughput']:.3f} < floor {floor:.3f} "
                f"(baseline {base['throughput']:.3f} - {tol:.0%})"
            )

    if failures:
        print(f"\n{argv[1]}: perf regression vs {argv[2]}:")
        print("\n".join(failures))
        return 1
    print(f"\n{argv[1]}: all records within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
