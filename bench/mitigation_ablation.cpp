// Extension ablation (Sec. II-A related work): error *mitigation* vs error
// *adaptation* under drifting noise. Readout mitigation [18] and zero-noise
// extrapolation [17] correct the *outputs* of a fixed calibration; QuCAD
// adapts the *model*. Each is measured on its own terms:
//   - readout mitigation: computational accuracy 1-H^2 of the output
//     distribution vs the ideal circuit (it provably inverts the assignment
//     confusion);
//   - ZNE: mean |<Z> - <Z>_ideal| bias of the readout expectations;
//   - QuCAD: classification accuracy.
// The punchline matches the paper: mitigation improves fidelity at every
// single calibration but cannot respond to regime shifts, and must be
// re-run per calibration anyway (ZNE pays 3x executions per sample).

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "mitigation/readout_mitigation.hpp"
#include "mitigation/stability.hpp"
#include "mitigation/zne.hpp"

using namespace qucad;
using namespace qucad::bench;

int main() {
  const CalibrationHistory history = belem_history();
  const auto offline = history.slice(0, CalibrationHistory::kOfflineDays);

  PipelineConfig config = paper_config("seismic");
  config.max_test_samples = 60;  // ZNE triples the execution cost
  const Environment env = prepare_environment(
      make_dataset("seismic"), CouplingMap::belem(), history.day(0), config);

  QuCadStrategy qucad(env);
  qucad.offline(offline);

  std::cout << "=== Mitigation vs adaptation under drifting noise ===\n\n";
  TextTable table({"Date", "CompAcc raw", "CompAcc readout-mit", "|Z| bias raw",
                   "|Z| bias ZNE", "Acc baseline", "Acc QuCAD"});

  const std::size_t probes = 12;  // samples for the distribution metrics
  int round = 0;
  for (int day : {250, 270, 313, 347, 370}) {
    const Calibration& calib = history.day(day);
    // Shared lowering + compilation helper (the per-binary lower_model /
    // NoiseModel / NoisyExecutor block this bench used to carry).
    const std::shared_ptr<const NoisyExecutor> executor =
        make_env_executor(env, env.theta_pretrained, calib);
    const PhysicalCircuit& phys = executor->circuit();
    const ReadoutMitigator mitigator(executor->noise().readout());

    double comp_raw = 0.0, comp_mit = 0.0, bias_raw = 0.0, bias_zne = 0.0;
    for (std::size_t s = 0; s < probes; ++s) {
      const auto& x = env.test.features[s];
      // Ideal (noise-free) reference distribution and expectations.
      const StateVector ideal_sv = run_physical_pure(phys, x);
      const auto ideal_probs = ideal_sv.probabilities();

      // Measured distribution (readout confusion on all qubits) and its
      // mitigated inversion.
      const DensityMatrix dm = executor->run_density(x);
      const auto measured = apply_readout_error(dm.diagonal_probabilities(),
                                                executor->noise().readout());
      const auto mitigated = mitigator.apply(measured);
      comp_raw += computational_accuracy(ideal_probs, measured);
      comp_mit += computational_accuracy(ideal_probs, mitigated);

      // Expectation bias with and without ZNE.
      // run_z / zne_expectations order their output by readout slot, so
      // index by class position k, not by logical qubit id.
      const auto z_raw = executor->run_z(x);
      const auto z_zne = zne_expectations(phys, calib, x);
      for (std::size_t k = 0; k < env.model.readout_qubits.size(); ++k) {
        const int lq = env.model.readout_qubits[k];
        const int pq = env.transpiled.readout_physical(lq);
        double z_ideal = 0.0;
        const std::size_t mq = std::size_t{1} << pq;
        for (std::size_t i = 0; i < ideal_probs.size(); ++i) {
          z_ideal += (i & mq) ? -ideal_probs[i] : ideal_probs[i];
        }
        bias_raw += std::abs(z_raw[k] - z_ideal);
        bias_zne += std::abs(z_zne[k] - z_ideal);
      }
    }
    const double norm_dist = 1.0 / static_cast<double>(probes);
    const double norm_bias =
        1.0 / static_cast<double>(probes * env.model.readout_qubits.size());

    const double acc_base = noisy_accuracy(env.model, env.transpiled,
                                           env.theta_pretrained, env.test, calib);
    const std::span<const double> theta_qucad = qucad.online_day(round++, calib);
    const double acc_qucad = noisy_accuracy(env.model, env.transpiled,
                                            theta_qucad, env.test, calib);

    table.add_row({history.date_string(day), fmt(comp_raw * norm_dist, 3),
                   fmt(comp_mit * norm_dist, 3), fmt(bias_raw * norm_bias, 3),
                   fmt(bias_zne * norm_bias, 3), fmt_pct(acc_base),
                   fmt_pct(acc_qucad)});
  }
  table.print(std::cout);

  std::cout << "\nReading: readout mitigation lifts distributional fidelity "
               "and ZNE cuts expectation\nbias on every day — but neither "
               "moves classification accuracy under a regime\nshift, which "
               "is what QuCAD's adaptation addresses. Both mitigations also "
               "have to\nbe recomputed per calibration (ZNE: 3x executions "
               "per sample).\n";
  return 0;
}
