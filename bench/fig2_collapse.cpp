// Figure 2 reproduction: daily accuracy of a 4-class MNIST QNN over the
// online year under fluctuating noise.
//  (a) noise-aware training on the first day [12]
//  (b) compression on the first day [23]
// The paper's observation: (a) collapses when noise surges (80% -> ~22% on
// day ~24); (b) is consistently better but still dips during heterogeneous
// episodes.

#include "bench_common.hpp"

using namespace qucad;
using namespace qucad::bench;

int main() {
  const CalibrationHistory history = belem_history();
  const Environment env =
      prepare_environment(make_dataset("mnist4"), CouplingMap::belem(),
                          history.day(0), paper_config("mnist4"));

  const auto online = history.slice(CalibrationHistory::kOfflineDays,
                                    CalibrationHistory::kOnlineDays);
  const auto dates = online_dates(history);

  NoiseAwareTrainOnceStrategy nat_once(env);
  OneTimeCompressionStrategy compress_once(env);

  HarnessOptions options;
  const MethodResult nat_result =
      run_longitudinal(nat_once, env, {}, online, options);
  const MethodResult compress_result =
      run_longitudinal(compress_once, env, {}, online, options);

  std::cout << "=== Fig. 2: 4-class MNIST daily accuracy, " << dates.front()
            << " .. " << dates.back() << " ===\n\n";
  std::cout << "(a) " << nat_result.method << " (first day only)\n";
  print_accuracy_series(std::cout, nat_result, dates, /*stride=*/7);
  std::cout << "\n(b) " << compress_result.method << " (first day only)\n";
  print_accuracy_series(std::cout, compress_result, dates, /*stride=*/7);

  // Collapse diagnostics: worst stretch for each method.
  auto worst = [](const MethodResult& r) {
    std::size_t day = 0;
    double acc = 1.0;
    for (std::size_t d = 0; d < r.daily_accuracy.size(); ++d) {
      if (r.daily_accuracy[d] < acc) {
        acc = r.daily_accuracy[d];
        day = d;
      }
    }
    return std::make_pair(day, acc);
  };
  const auto [nat_day, nat_min] = worst(nat_result);
  const auto [cmp_day, cmp_min] = worst(compress_result);

  std::cout << "\nSummary:\n";
  TextTable table({"Method", "Mean acc", "Min acc", "Min day", "Days>0.5"});
  table.add_row({nat_result.method, fmt_pct(nat_result.metrics.mean_accuracy),
                 fmt_pct(nat_min), dates[nat_day],
                 std::to_string(nat_result.metrics.days_over_05)});
  table.add_row({compress_result.method,
                 fmt_pct(compress_result.metrics.mean_accuracy),
                 fmt_pct(cmp_min), dates[cmp_day],
                 std::to_string(compress_result.metrics.days_over_05)});
  table.print(std::cout);

  std::cout << "\nPaper reference: (a) holds >80% for ~3 weeks then collapses "
               "to ~22% when error\nrates surge; (b) compression is markedly "
               "better overall but dips during the\nheterogeneous episodes "
               "(mid-March .. late May).\n";
  return 0;
}
