// Microbenchmarks (google-benchmark) for the simulation and transpilation
// kernels that dominate experiment runtime.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "noise/calibration_history.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "qnn/model.hpp"
#include "sim/adjoint.hpp"
#include "sim/density_matrix.hpp"
#include "transpile/transpiler.hpp"

namespace {

using namespace qucad;
using bench::bench_theta;
using bench::make_workload;

Circuit make_benchmark_circuit(int qubits, int blocks) {
  Circuit c = angle_encoder(qubits, qubits);
  c.append(build_paper_ansatz(qubits, blocks));
  return c;
}

void BM_StateVectorForward(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const Circuit c = make_benchmark_circuit(qubits, 2);
  const auto theta = bench_theta(c.num_trainable());
  const std::vector<double> x(static_cast<std::size_t>(qubits), 0.7);
  for (auto _ : state) {
    StateVector sv(qubits);
    sv.run(c, theta, x);
    benchmark::DoNotOptimize(sv.expectation_z(0));
  }
}
BENCHMARK(BM_StateVectorForward)->Arg(4)->Arg(5)->Arg(7);

void BM_AdjointGradient(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const Circuit c = make_benchmark_circuit(qubits, 2);
  const auto theta = bench_theta(c.num_trainable());
  const std::vector<double> x(static_cast<std::size_t>(qubits), 0.7);
  std::vector<double> weights(static_cast<std::size_t>(qubits), 0.0);
  weights[0] = 1.0;
  for (auto _ : state) {
    const auto result = adjoint_gradient(c, theta, x, weights);
    benchmark::DoNotOptimize(result.gradients[0]);
  }
}
BENCHMARK(BM_AdjointGradient)->Arg(4)->Arg(5);

void BM_ParameterShiftGradient(benchmark::State& state) {
  const Circuit c = make_benchmark_circuit(4, 1);
  const auto theta = bench_theta(c.num_trainable());
  const std::vector<double> x(4, 0.7);
  const std::vector<double> weights{1.0, 0.0, 0.0, 0.0};
  for (auto _ : state) {
    const auto grads = parameter_shift_gradient(c, theta, x, weights);
    benchmark::DoNotOptimize(grads[0]);
  }
}
BENCHMARK(BM_ParameterShiftGradient);

void BM_NoisyDensityMatrixRun(benchmark::State& state) {
  // Shared bench workload (model + routing + theta + calibration) instead
  // of a per-benchmark lowering block; the executor here is deliberately
  // built directly because the kernel under test is the raw compiled
  // density replay, not the backend dispatch around it.
  const bench::BenchWorkload w = make_workload(4, 2, 2, /*theta_seed=*/1);
  const PhysicalCircuit phys = lower_model(w.transpiled, w.theta);
  const NoiseModel nm(w.calib());
  const NoisyExecutor executor(phys, nm);
  const std::vector<double> x(4, 0.7);
  for (auto _ : state) {
    const auto z = executor.run_z(x);
    benchmark::DoNotOptimize(z[0]);
  }
}
BENCHMARK(BM_NoisyDensityMatrixRun);

void BM_TranspileModel(benchmark::State& state) {
  const bench::BenchWorkload w = make_workload(4, 2, 2, /*theta_seed=*/1);
  for (auto _ : state) {
    const TranspiledModel transpiled =
        transpile_model(w.model.circuit, w.model.readout_qubits,
                        CouplingMap::belem(), &w.calib());
    benchmark::DoNotOptimize(transpiled.routed.swap_count);
  }
}
BENCHMARK(BM_TranspileModel);

void BM_LowerToBasis(benchmark::State& state) {
  const bench::BenchWorkload w = make_workload(4, 2, 2, /*theta_seed=*/1);
  for (auto _ : state) {
    const PhysicalCircuit phys = lower_model(w.transpiled, w.theta);
    benchmark::DoNotOptimize(phys.cx_count());
  }
}
BENCHMARK(BM_LowerToBasis);

void BM_CalibrationHistoryGeneration(benchmark::State& state) {
  for (auto _ : state) {
    const CalibrationHistory history(FluctuationScenario::belem(),
                                     CalibrationHistory::kTotalDays, 2021);
    benchmark::DoNotOptimize(history.day(100).sx_error(0));
  }
}
BENCHMARK(BM_CalibrationHistoryGeneration);

}  // namespace

BENCHMARK_MAIN();
