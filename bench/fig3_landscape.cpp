// Figure 3 reproduction: optimization surface of a 2-parameter VQC
//  (a) noise-free, (b) under a noisy environment, (c) their difference.
// The paper's observation: the difference shows "breakpoints" — lines of
// markedly lower noise where a parameter sits at a compression level
// (0, pi/2, pi, 3pi/2) and the transpiled circuit gets shorter.

#include <cmath>

#include "bench_common.hpp"
#include "qnn/evaluator.hpp"

using namespace qucad;
using namespace qucad::bench;

namespace {

constexpr int kGrid = 25;  // 25 x 25 sweep of [0, 2pi)^2

// 2-parameter VQC: RY(t0) on q0, CRY(t1) 0->1, measured on both qubits.
QnnModel two_param_model() {
  QnnModel model;
  model.circuit = Circuit(2);
  model.circuit.ry(0, input(0));  // data angle
  model.circuit.ry(0, trainable(0));
  model.circuit.cry(0, 1, trainable(1));
  model.num_classes = 2;
  model.readout_qubits = {0, 1};
  return model;
}

}  // namespace

int main() {
  const CalibrationHistory history = belem_history();
  const Calibration& calib = history.day(310);  // heterogeneous hot day

  const QnnModel model = two_param_model();
  const TranspiledModel transpiled = transpile_model(
      model.circuit, model.readout_qubits, CouplingMap::belem(), &calib);

  // A tiny 2-qubit task so the surface has signal: classify x < pi/2.
  Dataset data;
  data.num_classes = 2;
  for (int i = 0; i < 32; ++i) {
    const double x = (i + 0.5) * M_PI / 32.0;
    data.features.push_back({x});
    data.labels.push_back(x < M_PI / 2.0 ? 0 : 1);
  }

  const double step = 2.0 * M_PI / kGrid;
  std::vector<std::vector<double>> perfect(kGrid, std::vector<double>(kGrid));
  std::vector<std::vector<double>> noisy(kGrid, std::vector<double>(kGrid));

  for (int i = 0; i < kGrid; ++i) {
    for (int j = 0; j < kGrid; ++j) {
      const std::vector<double> theta{i * step, j * step};
      perfect[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          noise_free_accuracy(model, theta, data);
      noisy[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          noisy_accuracy(model, transpiled, theta, data, calib);
    }
  }

  // (c) mean |difference| per t1 grid line: breakpoint columns (t1 at CR
  // levels) should show a markedly smaller deviation.
  std::cout << "=== Fig. 3: 2-parameter VQC landscape (grid " << kGrid << "x"
            << kGrid << ", day " << history.date_string(310) << ") ===\n\n";
  std::cout << "mean |noisy - perfect| by CRY parameter value t1:\n";
  TextTable table({"t1 (rad)", "mean |deviation|", "at CR breakpoint?"});
  double break_dev = 0.0;
  int break_count = 0;
  double generic_dev = 0.0;
  int generic_count = 0;
  for (int j = 0; j < kGrid; ++j) {
    double dev = 0.0;
    for (int i = 0; i < kGrid; ++i) {
      dev += std::abs(noisy[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] -
                      perfect[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
    }
    dev /= kGrid;
    const double t1 = j * step;
    const bool at_break = std::abs(t1) < step || std::abs(t1 - 2 * M_PI) < step;
    if (at_break) {
      break_dev += dev;
      ++break_count;
    } else {
      generic_dev += dev;
      ++generic_count;
    }
    if (j % 3 == 0) {
      table.add_row({fmt(t1, 2), fmt(dev, 4), at_break ? "yes" : ""});
    }
  }
  table.print(std::cout);

  break_dev /= break_count;
  generic_dev /= generic_count;
  std::cout << "\nmean deviation at CR breakpoints: " << fmt(break_dev, 4)
            << "\nmean deviation elsewhere:         " << fmt(generic_dev, 4)
            << "\nratio (generic / breakpoint):     "
            << fmt(generic_dev / std::max(break_dev, 1e-9), 2) << "x\n";
  std::cout << "\nPaper reference: breakpoints (parameter at 0, pi/2, pi, "
               "3pi/2) show much lower\nnoise-induced deviation because the "
               "physical circuit is shorter there.\n";
  return 0;
}
