// Figure 4 reproduction:
//  (a) per-edge CNOT noise on three representative days, showing that the
//      noisiest pair changes over time (heterogeneity).
//  (b) noise-aware compressed models tuned on each of those days, tested
//      on the following weeks: each model is best near its own day.

#include "bench_common.hpp"
#include "compress/admm.hpp"
#include "qnn/evaluator.hpp"

using namespace qucad;
using namespace qucad::bench;

int main() {
  // The fig. 4 device as a fleet DeviceSpec: the same drift machinery the
  // fleet simulator runs, specialized to one belem-topology device.
  const fleet::DeviceSpec device = fleet::DeviceSpec::belem();
  const CalibrationHistory history = device_history(device);
  // Analogues of the paper's 02/12, 03/15, 04/25: a quiet day, the <1,2>
  // episode peak, and the <3,4> episode peak.
  const int days[3] = {290, 313, 347};

  std::cout << "=== Fig. 4(a): CNOT error per coupled pair ===\n\n";
  TextTable noise_table({"Edge", history.date_string(days[0]),
                         history.date_string(days[1]),
                         history.date_string(days[2])});
  for (const auto& [a, b] : history.day(0).edges()) {
    std::string edge = "<";
    edge += std::to_string(a);
    edge += ",";
    edge += std::to_string(b);
    edge += ">";
    noise_table.add_row(
        {edge,
         fmt(history.day(days[0]).cx_error(a, b), 4),
         fmt(history.day(days[1]).cx_error(a, b), 4),
         fmt(history.day(days[2]).cx_error(a, b), 4)});
  }
  noise_table.print(std::cout);

  const StatusOr<CouplingMap> coupling = device.coupling();
  require(coupling.ok(), coupling.status().to_string());
  const Environment env = prepare_environment(
      make_dataset("mnist4"), *coupling, history.day(0), paper_config("mnist4"));

  std::cout << "\n=== Fig. 4(b): compress on each day, test on following days "
               "===\n\n";
  std::vector<std::vector<double>> thetas;
  for (int day : days) {
    const CompressedModel compressed =
        admm_compress(env.model, env.transpiled, env.theta_pretrained,
                      env.train, history.day(day), env.admm);
    thetas.push_back(compressed.theta);
  }

  TextTable acc_table({"Test day", "Train " + history.date_string(days[0]),
                       "Train " + history.date_string(days[1]),
                       "Train " + history.date_string(days[2])});
  for (int test_day = 285; test_day <= 365; test_day += 8) {
    std::vector<std::string> row{history.date_string(test_day)};
    for (const auto& theta : thetas) {
      row.push_back(fmt_pct(noisy_accuracy(env.model, env.transpiled, theta,
                                           env.test, history.day(test_day))));
    }
    acc_table.add_row(row);
  }
  acc_table.print(std::cout);

  std::cout << "\nPaper reference: on 02/12 the <3,4> pair is noisiest; by "
               "03/15 and 04/25 the <1,2>\npair dominates. A model compressed "
               "for one regime loses accuracy when the\nheterogeneous noise "
               "shifts (79% -> 22.5%), and noise-aware compression on the\n"
               "new day recovers it (38.5% / 80%).\n";
  return 0;
}
