// Figure 7 reproduction: online training time vs mean accuracy on 4-class
// MNIST. The paper reports QuCAD cutting online optimization time ~146x vs
// "compression everyday" and ~110x vs "noise-aware train everyday" while
// matching or beating their accuracy — the speedup comes from reusing
// repository models instead of re-optimizing.

#include <memory>

#include "bench_common.hpp"

using namespace qucad;
using namespace qucad::bench;

int main() {
  const CalibrationHistory history = belem_history();
  const auto offline = history.slice(0, CalibrationHistory::kOfflineDays);
  const auto online = history.slice(CalibrationHistory::kOfflineDays,
                                    CalibrationHistory::kOnlineDays);

  const Environment env =
      prepare_environment(make_dataset("mnist4"), CouplingMap::belem(),
                          history.day(0), paper_config("mnist4"));

  std::vector<std::unique_ptr<Strategy>> strategies;
  strategies.push_back(std::make_unique<CompressionEverydayStrategy>(
      env, CompressionMode::NoiseAware));
  strategies.push_back(std::make_unique<NoiseAwareTrainEverydayStrategy>(env));
  strategies.push_back(std::make_unique<QuCadWithoutOfflineStrategy>(env));
  strategies.push_back(std::make_unique<QuCadStrategy>(env));

  std::vector<MethodResult> results;
  for (auto& strategy : strategies) {
    const bool wants_offline = strategy->name() == "QuCAD";
    results.push_back(run_longitudinal(
        *strategy, env, wants_offline ? offline : std::vector<Calibration>{},
        online));
  }

  // Normalize online optimization time to QuCAD's (the paper's unit of 1).
  const double qucad_time = std::max(results.back().online_optimize_seconds, 1e-9);

  std::cout << "=== Fig. 7: online training time vs accuracy (4-class MNIST, "
               "146 days) ===\n\n";
  TextTable table({"Method", "Mean Acc", "Online opt (s)", "Normalized time",
                   "#opt runs"});
  for (const MethodResult& r : results) {
    table.add_row({r.method, fmt_pct(r.metrics.mean_accuracy),
                   fmt(r.online_optimize_seconds, 2),
                   fmt(r.online_optimize_seconds / qucad_time, 1) + "x",
                   std::to_string(r.optimizations)});
  }
  table.print(std::cout);

  std::cout << "\nPaper reference: normalized training times 146.1 "
               "(compression everyday),\n110.3 (noise-aware train everyday), "
               "6.9 (QuCAD w/o offline), 1.0 (QuCAD),\nwith QuCAD's accuracy "
               "highest — reuse beats re-optimization.\n";
  return 0;
}
