// Figure 1 reproduction: the fluctuating noise observed on the (simulated)
// belem backend over 13 months — Pauli-X/SX error, CNOT error and readout
// error ranges, plus monthly series for representative qubits/edges.

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "noise/calibration_history.hpp"

using namespace qucad;

int main() {
  const CalibrationHistory history(FluctuationScenario::belem(),
                                   CalibrationHistory::kTotalDays, /*seed=*/2021);

  std::cout << "=== Fig. 1: fluctuating noise on simulated belem ("
            << history.days() << " days, " << history.date_string(0) << " .. "
            << history.date_string(history.days() - 1) << ") ===\n\n";

  // Global ranges (the paper reports min/max colorbar endpoints).
  std::vector<double> sx_all, cx_all, ro_all;
  for (int d = 0; d < history.days(); ++d) {
    const Calibration& cal = history.day(d);
    for (int q = 0; q < cal.num_qubits(); ++q) {
      sx_all.push_back(cal.sx_error(q));
      ro_all.push_back(cal.readout(q).mean());
    }
    for (const auto& [a, b] : cal.edges()) cx_all.push_back(cal.cx_error(a, b));
  }
  TextTable ranges({"Noise source", "min", "max", "mean"});
  ranges.add_row({"Pauli-X/SX error", fmt(min_value(sx_all) * 1e4, 3) + "e-4",
                  fmt(max_value(sx_all) * 1e4, 3) + "e-4",
                  fmt(mean(sx_all) * 1e4, 3) + "e-4"});
  ranges.add_row({"CNOT error", fmt(min_value(cx_all) * 1e3, 3) + "e-3",
                  fmt(max_value(cx_all) * 1e3, 3) + "e-3",
                  fmt(mean(cx_all) * 1e3, 3) + "e-3"});
  ranges.add_row({"Readout error", fmt(min_value(ro_all) * 1e2, 3) + "e-2",
                  fmt(max_value(ro_all) * 1e2, 3) + "e-2",
                  fmt(mean(ro_all) * 1e2, 3) + "e-2"});
  ranges.print(std::cout);

  // Monthly series (first-of-month snapshots) for a representative qubit
  // and the paper's highlighted edges.
  std::cout << "\nMonthly snapshots:\n";
  TextTable series({"Date", "X err q1", "CX err <1,2>", "CX err <3,4>",
                    "Readout q1"});
  for (int d = 0; d < history.days(); d += 30) {
    const Calibration& cal = history.day(d);
    series.add_row({history.date_string(d), fmt(cal.sx_error(1) * 1e4, 2) + "e-4",
                    fmt(cal.cx_error(1, 2) * 1e3, 2) + "e-3",
                    fmt(cal.cx_error(3, 4) * 1e3, 2) + "e-3",
                    fmt_pct(cal.readout(1).mean())});
  }
  series.print(std::cout);

  std::cout << "\nPaper reference: X error spans ~1.9e-4..3.7e-4 baseline with"
               " episodes beyond 1e-2;\nCNOT error 7.4e-3..1.4e-2 baseline,"
               " fluctuating to >0.1 during episodes.\n";
  return 0;
}
