// Table I reproduction: the main comparison. Six methods x three datasets
// over the 146-day online window with fluctuating noise:
//   Baseline, Noise-aware Train Once [12], Noise-aware Train Everyday,
//   One-time Compression [23], QuCAD w/o offline, QuCAD (ours).
// Reported: mean accuracy (+delta vs baseline), variance, days over
// 0.8 / 0.7 / 0.5 (+deltas).

#include <memory>

#include "bench_common.hpp"

using namespace qucad;
using namespace qucad::bench;

int main(int argc, char** argv) {
  // Optional single-dataset filter for faster iteration.
  std::vector<std::string> datasets{"mnist4", "iris", "seismic"};
  if (argc > 1) datasets = {argv[1]};

  const CalibrationHistory history = belem_history();
  const auto offline = history.slice(0, CalibrationHistory::kOfflineDays);
  const auto online = history.slice(CalibrationHistory::kOfflineDays,
                                    CalibrationHistory::kOnlineDays);

  std::cout << "=== Table I: 146 online days (" << online_dates(history).front()
            << " .. " << online_dates(history).back()
            << ") on simulated belem ===\n\n";

  for (const std::string& name : datasets) {
    const Environment env = prepare_environment(
        make_dataset(name), CouplingMap::belem(), history.day(0),
        paper_config(name));

    std::vector<std::unique_ptr<Strategy>> strategies;
    strategies.push_back(std::make_unique<BaselineStrategy>(env));
    strategies.push_back(std::make_unique<NoiseAwareTrainOnceStrategy>(env));
    strategies.push_back(std::make_unique<NoiseAwareTrainEverydayStrategy>(env));
    strategies.push_back(std::make_unique<OneTimeCompressionStrategy>(env));
    strategies.push_back(std::make_unique<QuCadWithoutOfflineStrategy>(env));
    strategies.push_back(std::make_unique<QuCadStrategy>(env));

    std::vector<MethodResult> results;
    for (auto& strategy : strategies) {
      const bool wants_offline = strategy->name() == "QuCAD";
      results.push_back(run_longitudinal(
          *strategy, env, wants_offline ? offline : std::vector<Calibration>{},
          online));
    }
    print_comparison_table(std::cout, results, name);
    std::cout << "\n";
  }

  std::cout << "Paper reference (Table I): QuCAD gains +16.32% / +38.88% / "
               "+15.36% mean accuracy\nover Baseline on MNIST-4 / Iris / "
               "Seismic; compression-based methods dominate\nnoise-aware "
               "training; QuCAD (offline+online) is best or tied on every "
               "metric and\nhas the lowest variance among adaptive methods.\n";
  return 0;
}
