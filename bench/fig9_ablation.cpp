// Figure 9 reproduction (ablations on 8 representative online days):
//  (a) QuCAD vs the practical upper bound (noise-aware compression every
//      day) vs noise-aware training every day.
//  (b) noise-aware vs noise-agnostic compression, re-run on each day.

#include "bench_common.hpp"
#include "compress/admm.hpp"

using namespace qucad;
using namespace qucad::bench;

int main() {
  const CalibrationHistory history = belem_history();
  const auto offline = history.slice(0, CalibrationHistory::kOfflineDays);
  // Eight representative days spanning quiet stretches and the episodes
  // (analogue of the paper's 5/2 .. 7/14 picks).
  const int days[8] = {250, 270, 285, 300, 313, 330, 347, 365};

  const Environment env =
      prepare_environment(make_dataset("mnist4"), CouplingMap::belem(),
                          history.day(0), paper_config("mnist4"));

  std::cout << "=== Fig. 9(a): QuCAD vs practical upper bound ===\n\n";
  {
    QuCadStrategy qucad(env);
    qucad.offline(offline);
    CompressionEverydayStrategy upper(env, CompressionMode::NoiseAware);
    NoiseAwareTrainEverydayStrategy nat(env);

    TextTable table({"Date", "QuCAD", "Compression Everyday",
                     "Noise-Aware Train Everyday"});
    double s_q = 0.0, s_u = 0.0, s_n = 0.0;
    for (int r = 0; r < 8; ++r) {
      const Calibration& calib = history.day(days[r]);
      const double acc_q = noisy_accuracy(
          env.model, env.transpiled, qucad.online_day(r, calib), env.test, calib);
      const double acc_u = noisy_accuracy(
          env.model, env.transpiled, upper.online_day(r, calib), env.test, calib);
      const double acc_n = noisy_accuracy(
          env.model, env.transpiled, nat.online_day(r, calib), env.test, calib);
      s_q += acc_q;
      s_u += acc_u;
      s_n += acc_n;
      table.add_row({history.date_string(days[r]), fmt_pct(acc_q),
                     fmt_pct(acc_u), fmt_pct(acc_n)});
    }
    table.add_row({"Avg", fmt_pct(s_q / 8), fmt_pct(s_u / 8), fmt_pct(s_n / 8)});
    table.print(std::cout);
    std::cout << "\nPaper reference: QuCAD tracks the per-day compression "
                 "upper bound closely while\nnoise-aware training trails "
                 "badly on the noisy days.\n";
  }

  std::cout << "\n=== Fig. 9(b): noise-aware vs noise-agnostic compression "
               "===\n\n";
  {
    TextTable table({"Date", "Noise-Aware", "Noise-Agnostic", "CX aware",
                     "CX agnostic"});
    double s_aware = 0.0, s_agnostic = 0.0;
    for (int r = 0; r < 8; ++r) {
      const Calibration& calib = history.day(days[r]);
      AdmmOptions aware = env.admm;
      aware.seed += static_cast<std::uint64_t>(r);
      AdmmOptions agnostic = aware;
      agnostic.mode = CompressionMode::NoiseAgnostic;

      const CompressedModel m_aware =
          admm_compress(env.model, env.transpiled, env.theta_pretrained,
                        env.train, calib, aware);
      const CompressedModel m_agnostic =
          admm_compress(env.model, env.transpiled, env.theta_pretrained,
                        env.train, calib, agnostic);
      const double acc_aware = noisy_accuracy(env.model, env.transpiled,
                                              m_aware.theta, env.test, calib);
      const double acc_agnostic = noisy_accuracy(
          env.model, env.transpiled, m_agnostic.theta, env.test, calib);
      s_aware += acc_aware;
      s_agnostic += acc_agnostic;
      table.add_row({history.date_string(days[r]), fmt_pct(acc_aware),
                     fmt_pct(acc_agnostic), std::to_string(m_aware.cx_after),
                     std::to_string(m_agnostic.cx_after)});
    }
    table.add_row({"Avg", fmt_pct(s_aware / 8), fmt_pct(s_agnostic / 8), "", ""});
    table.print(std::cout);
    std::cout << "\nPaper reference: noise-aware compression wins on most "
                 "days and ties on quiet\ndays where the qubits are roughly "
                 "homogeneous (their 5/4 and 7/14).\n";
  }
  return 0;
}
