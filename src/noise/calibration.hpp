#pragma once

#include <string>
#include <utility>
#include <vector>

namespace qucad {

/// Readout assignment error of one qubit.
struct ReadoutError {
  double p1_given_0 = 0.0;  // probability of reading 1 when prepared in |0>
  double p0_given_1 = 0.0;  // probability of reading 0 when prepared in |1>

  double mean() const { return 0.5 * (p1_given_0 + p0_given_1); }
};

/// One day's device calibration snapshot: the same quantities IBM publishes
/// for its backends (single-qubit gate error, CNOT error per coupled pair,
/// readout assignment error, T1/T2).
class Calibration {
 public:
  Calibration() = default;
  Calibration(int num_qubits, std::vector<std::pair<int, int>> edges);

  int num_qubits() const { return num_qubits_; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  double sx_error(int q) const;
  void set_sx_error(int q, double e);

  const ReadoutError& readout(int q) const;
  void set_readout(int q, ReadoutError e);

  double t1_us(int q) const;
  double t2_us(int q) const;
  void set_t1_t2(int q, double t1, double t2);

  /// CNOT error of the coupled pair {a,b} (order-insensitive).
  double cx_error(int a, int b) const;
  void set_cx_error(int a, int b, double e);

  /// Index of edge {a,b} in edges(); -1 if not coupled.
  int edge_index(int a, int b) const;

  /// Noise rate associated with a gate's qubits: cx_error for pairs,
  /// sx_error for single qubits. This is the C(A(g)) lookup of the paper's
  /// priority table.
  double noise_of(int q0, int q1 = -1) const;

  /// Flat feature vector for clustering: [sx_0..sx_{n-1},
  /// readout_mean_0..readout_mean_{n-1}, cx_0..cx_{m-1}].
  std::vector<double> feature_vector() const;

  /// Human-readable names matching feature_vector entries.
  std::vector<std::string> feature_names() const;

  std::size_t feature_dim() const;

  /// Inverse of feature_vector: rebuilds a calibration from clustered
  /// features (T1/T2 must be supplied since they are not clustered).
  static Calibration from_features(int num_qubits,
                                   std::vector<std::pair<int, int>> edges,
                                   const std::vector<double>& features,
                                   double t1_us, double t2_us);

 private:
  int num_qubits_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::vector<double> sx_error_;
  std::vector<ReadoutError> readout_;
  std::vector<double> t1_us_;
  std::vector<double> t2_us_;
  std::vector<double> cx_error_;
};

}  // namespace qucad
