#pragma once

#include <map>
#include <span>
#include <vector>

#include "noise/calibration.hpp"
#include "noise/channels.hpp"

namespace qucad {

/// Pulse durations used to convert T1/T2 into per-gate thermal relaxation.
/// Defaults approximate IBM Falcon-family backends.
struct GateDurations {
  double sx_us = 0.035;  // 35 ns single-qubit pulse
  double cx_us = 0.300;  // 300 ns echoed cross resonance
};

struct NoiseModelOptions {
  GateDurations durations;
  bool include_thermal_relaxation = true;
  bool include_readout_error = true;
};

/// Error process following one single-qubit pulse: a depolarizing term plus
/// thermal relaxation, both applied with closed-form fast paths (zeroed when
/// disabled).
struct PulseNoise {
  double depolarizing_p = 0.0;
  ThermalChannel thermal;
};

/// Error process following a CX on a coupled pair (stored for the
/// normalized (min,max) qubit order).
struct CxNoise {
  double depolarizing_p = 0.0;
  ThermalChannel thermal_first;   // on min(q)
  ThermalChannel thermal_second;  // on max(q)
};

/// Device noise model compiled from one calibration snapshot, in the same
/// shape Qiskit Aer builds from backend properties: a depolarizing channel
/// per gate scaled by the calibrated error rate, thermal relaxation over the
/// gate duration, and classical readout confusion at measurement.
class NoiseModel {
 public:
  NoiseModel() = default;
  NoiseModel(const Calibration& calibration, NoiseModelOptions options = {});

  int num_qubits() const { return num_qubits_; }

  const PulseNoise& pulse_noise(int q) const;
  const CxNoise& cx_noise(int a, int b) const;

  /// Per-qubit readout assignment errors (zeroed when disabled).
  std::span<const ReadoutError> readout() const { return readout_; }

  bool is_noiseless() const { return noiseless_; }

 private:
  int num_qubits_ = 0;
  bool noiseless_ = true;
  std::vector<PulseNoise> pulse_;
  std::map<std::pair<int, int>, CxNoise> cx_;
  std::vector<ReadoutError> readout_;
};

}  // namespace qucad
