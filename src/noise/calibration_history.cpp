#include "noise/calibration_history.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace qucad {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Smooth in/out ramp of an episode: 1 at the edges, `multiplier` at the
// midpoint.
double episode_factor(const SpikeEpisode& ep, int day) {
  if (day < ep.start_day || day >= ep.end_day) return 1.0;
  const double span = static_cast<double>(ep.end_day - ep.start_day);
  const double t = (static_cast<double>(day - ep.start_day) + 0.5) / span;
  const double shape = std::sin(kPi * t);
  return 1.0 + (ep.multiplier - 1.0) * shape * shape;
}

double clamp_rate(double v, double hi) { return std::clamp(v, 1e-6, hi); }

}  // namespace

FluctuationScenario FluctuationScenario::belem() {
  FluctuationScenario s;
  s.num_qubits = 5;
  s.edges = {{0, 1}, {1, 2}, {1, 3}, {3, 4}};
  s.sx_base = {2.1e-4, 1.9e-4, 2.8e-4, 3.2e-4, 2.4e-4};
  s.cx_base = {7.4e-3, 9.1e-3, 1.05e-2, 1.39e-2};
  s.ro_base = {2.3e-2, 1.8e-2, 3.1e-2, 2.7e-2, 3.5e-2};

  using T = SpikeEpisode::Target;
  // Offline window (days 0..242): teaches the repository the regimes.
  // Multipliers push CNOT errors into the ~0.1 band of the paper's Fig. 1.
  // Episodes target the edges a 4-qubit workload actually occupies on the
  // T topology (the hub edges around q1); the online <1,2> episode repeats
  // an offline regime (repository reuse) while <1,3> is novel (online
  // compression).
  s.episodes.push_back({20, 45, T::Global, 0, 5.0});
  s.episodes.push_back({95, 125, T::Edge, 1, 8.0});    // <1,2> hot
  s.episodes.push_back({150, 170, T::Readout, 1, 5.0});
  s.episodes.push_back({186, 230, T::Edge, 0, 7.0});   // <0,1> hot
  // Online window (days 243..388): the fluctuations of Fig. 2/4.
  s.episodes.push_back({263, 287, T::Global, 0, 5.5});  // collapse ~day 24 online
  s.episodes.push_back({295, 332, T::Edge, 1, 10.0});   // <1,2> hot again
  s.episodes.push_back({303, 326, T::Readout, 2, 4.0});
  s.episodes.push_back({340, 356, T::Edge, 2, 9.0});    // <1,3> hot (novel)
  s.episodes.push_back({360, 372, T::Readout, 3, 4.0});
  return s;
}

FluctuationScenario FluctuationScenario::jakarta() {
  FluctuationScenario s;
  s.num_qubits = 7;
  s.edges = {{0, 1}, {1, 2}, {1, 3}, {3, 5}, {4, 5}, {5, 6}};
  s.sx_base = {2.4e-4, 2.0e-4, 2.2e-4, 3.0e-4, 2.6e-4, 2.1e-4, 3.4e-4};
  s.cx_base = {6.8e-3, 8.2e-3, 9.6e-3, 7.9e-3, 1.12e-2, 8.8e-3};
  s.ro_base = {2.1e-2, 2.6e-2, 1.9e-2, 3.3e-2, 2.4e-2, 2.8e-2, 3.0e-2};

  using T = SpikeEpisode::Target;
  // Hub edges around q1 and q5 carry most 4-qubit workloads on the H
  // topology.
  s.episodes.push_back({30, 60, T::Edge, 2, 7.0});    // <1,3>
  s.episodes.push_back({110, 140, T::Global, 0, 4.0});
  s.episodes.push_back({200, 235, T::Edge, 1, 8.0});  // <1,2>
  s.episodes.push_back({255, 280, T::Global, 0, 4.5});
  s.episodes.push_back({300, 335, T::Edge, 2, 9.0});  // <1,3> again (reuse)
  s.episodes.push_back({350, 370, T::Readout, 5, 4.0});
  return s;
}

std::vector<Calibration> generate_fluctuation_days(
    const FluctuationScenario& scenario, int days, std::uint64_t seed) {
  require(days > 0, "history requires at least one day");
  require(scenario.num_qubits > 0 &&
              scenario.sx_base.size() == static_cast<std::size_t>(scenario.num_qubits) &&
              scenario.ro_base.size() == static_cast<std::size_t>(scenario.num_qubits) &&
              scenario.cx_base.size() == scenario.edges.size(),
          "scenario baseline sizes inconsistent");

  Rng rng(seed);
  const std::size_t nq = static_cast<std::size_t>(scenario.num_qubits);
  const std::size_t ne = scenario.edges.size();

  // Ornstein-Uhlenbeck state in log space, initialized at the baselines.
  std::vector<double> log_sx(nq), log_cx(ne), log_ro(nq), log_t1(nq), log_t2(nq);
  for (std::size_t q = 0; q < nq; ++q) {
    log_sx[q] = std::log(scenario.sx_base[q]);
    log_ro[q] = std::log(scenario.ro_base[q]);
    log_t1[q] = std::log(scenario.t1_base_us);
    log_t2[q] = std::log(scenario.t2_base_us);
  }
  for (std::size_t e = 0; e < ne; ++e) log_cx[e] = std::log(scenario.cx_base[e]);

  auto ou_step = [&](double& state, double base_log, double sigma) {
    state += scenario.ou_reversion * (base_log - state) + rng.normal(0.0, sigma);
  };

  std::vector<Calibration> history;
  history.reserve(static_cast<std::size_t>(days));
  for (int d = 0; d < days; ++d) {
    for (std::size_t q = 0; q < nq; ++q) {
      ou_step(log_sx[q], std::log(scenario.sx_base[q]), scenario.ou_sigma);
      ou_step(log_ro[q], std::log(scenario.ro_base[q]), scenario.ou_sigma);
      ou_step(log_t1[q], std::log(scenario.t1_base_us), scenario.t_sigma);
      ou_step(log_t2[q], std::log(scenario.t2_base_us), scenario.t_sigma);
    }
    for (std::size_t e = 0; e < ne; ++e) {
      ou_step(log_cx[e], std::log(scenario.cx_base[e]), scenario.ou_sigma);
    }

    // Accumulated episode multipliers for this day.
    double global_mult = 1.0;
    std::vector<double> edge_mult(ne, 1.0), qubit_mult(nq, 1.0), ro_mult(nq, 1.0);
    for (const SpikeEpisode& ep : scenario.episodes) {
      const double f = episode_factor(ep, d);
      if (f == 1.0) continue;
      switch (ep.target) {
        case SpikeEpisode::Target::Global:
          global_mult *= f;
          break;
        case SpikeEpisode::Target::Edge:
          edge_mult[static_cast<std::size_t>(ep.index)] *= f;
          break;
        case SpikeEpisode::Target::Qubit:
          qubit_mult[static_cast<std::size_t>(ep.index)] *= f;
          break;
        case SpikeEpisode::Target::Readout:
          ro_mult[static_cast<std::size_t>(ep.index)] *= f;
          break;
      }
    }

    Calibration cal(scenario.num_qubits, scenario.edges);
    for (std::size_t q = 0; q < nq; ++q) {
      cal.set_sx_error(static_cast<int>(q),
                       clamp_rate(std::exp(log_sx[q]) * global_mult * qubit_mult[q],
                                  2e-2));
      const double ro =
          clamp_rate(std::exp(log_ro[q]) * global_mult * ro_mult[q], 0.2);
      cal.set_readout(static_cast<int>(q), ReadoutError{ro, 1.3 * ro > 0.2 ? 0.2 : 1.3 * ro});
      double t1 = std::clamp(std::exp(log_t1[q]), 20.0, 400.0);
      double t2 = std::clamp(std::exp(log_t2[q]), 10.0, 2.0 * t1);
      cal.set_t1_t2(static_cast<int>(q), t1, t2);
    }
    for (std::size_t e = 0; e < ne; ++e) {
      const auto [a, b] = scenario.edges[e];
      const double q_factor = std::max(qubit_mult[static_cast<std::size_t>(a)],
                                       qubit_mult[static_cast<std::size_t>(b)]);
      cal.set_cx_error(a, b,
                       clamp_rate(std::exp(log_cx[e]) * global_mult * edge_mult[e] *
                                      q_factor,
                                  0.25));
    }
    history.push_back(std::move(cal));
  }
  return history;
}

CalibrationHistory::CalibrationHistory(const FluctuationScenario& scenario,
                                       int days, std::uint64_t seed)
    : history_(generate_fluctuation_days(scenario, days, seed)) {}

CalibrationHistory::CalibrationHistory(std::vector<Calibration> days)
    : history_(std::move(days)) {
  require(!history_.empty(), "history requires at least one day");
}

const Calibration& CalibrationHistory::day(int d) const {
  require(d >= 0 && d < days(), "day index out of range");
  return history_[static_cast<std::size_t>(d)];
}

std::string CalibrationHistory::date_string(int d) const {
  require(d >= 0, "day index out of range");
  using namespace std::chrono;
  const sys_days anchor = sys_days(year{2021} / month{8} / std::chrono::day{10});
  const year_month_day date{anchor + std::chrono::days{d}};
  const unsigned m = static_cast<unsigned>(date.month());
  const unsigned dd = static_cast<unsigned>(date.day());
  const int yy = static_cast<int>(date.year()) % 100;
  auto two = [](unsigned v) {
    std::string s = std::to_string(v);
    if (v < 10) s.insert(s.begin(), '0');
    return s;
  };
  return two(m) + "/" + two(dd) + "/" + two(static_cast<unsigned>(yy));
}

std::vector<Calibration> CalibrationHistory::slice(int begin, int count) const {
  require(begin >= 0 && count >= 0 && begin + count <= days(),
          "slice out of range");
  return {history_.begin() + begin, history_.begin() + begin + count};
}

}  // namespace qucad
