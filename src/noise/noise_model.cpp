#include "noise/noise_model.hpp"

#include "common/require.hpp"

namespace qucad {

NoiseModel::NoiseModel(const Calibration& calibration, NoiseModelOptions options)
    : num_qubits_(calibration.num_qubits()) {
  const int n = num_qubits_;
  pulse_.reserve(static_cast<std::size_t>(n));

  auto thermal_for = [&](int q, double duration) -> ThermalChannel {
    if (!options.include_thermal_relaxation) return ThermalChannel{};
    return channels::thermal_relaxation_params(calibration.t1_us(q),
                                               calibration.t2_us(q), duration);
  };

  for (int q = 0; q < n; ++q) {
    PulseNoise pn;
    pn.depolarizing_p = calibration.sx_error(q);
    pn.thermal = thermal_for(q, options.durations.sx_us);
    if (pn.depolarizing_p > 0.0 || !pn.thermal.empty()) noiseless_ = false;
    pulse_.push_back(std::move(pn));
  }

  for (const auto& [a, b] : calibration.edges()) {
    CxNoise cn;
    cn.depolarizing_p = calibration.cx_error(a, b);
    cn.thermal_first = thermal_for(a, options.durations.cx_us);
    cn.thermal_second = thermal_for(b, options.durations.cx_us);
    if (cn.depolarizing_p > 0.0 || !cn.thermal_first.empty()) noiseless_ = false;
    cx_.emplace(std::make_pair(a, b), std::move(cn));
  }

  readout_.resize(static_cast<std::size_t>(n));
  if (options.include_readout_error) {
    for (int q = 0; q < n; ++q) {
      readout_[static_cast<std::size_t>(q)] = calibration.readout(q);
      if (calibration.readout(q).mean() > 0.0) noiseless_ = false;
    }
  }
}

const PulseNoise& NoiseModel::pulse_noise(int q) const {
  require(q >= 0 && q < num_qubits_, "qubit out of range");
  return pulse_[static_cast<std::size_t>(q)];
}

const CxNoise& NoiseModel::cx_noise(int a, int b) const {
  if (a > b) std::swap(a, b);
  const auto it = cx_.find({a, b});
  require(it != cx_.end(), "no CX channel for uncoupled pair");
  return it->second;
}

}  // namespace qucad
