#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noise/calibration.hpp"

namespace qucad {

/// A bounded period during which one noise source is elevated. The
/// multiplier ramps in and out smoothly (raised cosine) so calibration
/// trajectories look like the drifting episodes observed on real backends
/// rather than step functions.
struct SpikeEpisode {
  enum class Target { Edge, Qubit, Readout, Global };
  int start_day = 0;
  int end_day = 0;  // exclusive
  Target target = Target::Global;
  int index = 0;  // edge index or qubit index; ignored for Global
  double multiplier = 1.0;
};

/// Statistical description of a device's noise fluctuation over time:
/// per-parameter baselines, log-space Ornstein-Uhlenbeck daily dynamics,
/// and scheduled heterogeneous spike episodes.
///
/// The presets reproduce the phenomenology the paper reports for IBM belem
/// (Fig. 1/2/4): error rates fluctuating across a wide band, occasional
/// device-wide surges that collapse QNN accuracy, and *per-edge* episodes
/// where different CNOT pairs dominate at different times.
struct FluctuationScenario {
  int num_qubits = 0;
  std::vector<std::pair<int, int>> edges;
  std::vector<double> sx_base;
  std::vector<double> cx_base;
  std::vector<double> ro_base;
  double t1_base_us = 110.0;
  double t2_base_us = 90.0;
  double ou_reversion = 0.12;  // daily mean-reversion rate (log space)
  double ou_sigma = 0.10;      // daily log-volatility
  double t_sigma = 0.03;       // daily T1/T2 log-volatility
  std::vector<SpikeEpisode> episodes;

  /// 5-qubit T-topology device modeled after ibmq_belem.
  static FluctuationScenario belem();

  /// 7-qubit H-topology device modeled after ibmq_jakarta.
  static FluctuationScenario jakarta();
};

/// Generates `days` consecutive daily calibrations from a scenario: log-space
/// Ornstein-Uhlenbeck steps around each baseline plus the scenario's scheduled
/// spike episodes, deterministically from `seed`. This is THE calibration
/// synthesis code path — `CalibrationHistory` delegates to it, and the fleet
/// drift streams (src/fleet) build their per-device day sequences on top of
/// it — so paper-figure benches and fleet simulations draw from one
/// generator.
std::vector<Calibration> generate_fluctuation_days(
    const FluctuationScenario& scenario, int days, std::uint64_t seed);

/// Deterministic daily calibration history generated from a scenario.
/// The paper's timeline: day 0 = Aug 10 2021; days [0, 243) are the offline
/// optimization window, days [243, 389) the 146-day online test window.
class CalibrationHistory {
 public:
  CalibrationHistory(const FluctuationScenario& scenario, int days,
                     std::uint64_t seed);

  /// Wraps an existing day-indexed calibration stream — the reconstruction
  /// path for histories persisted via io/artifacts (longitudinal replays
  /// from disk instead of re-synthesis). Must be non-empty.
  explicit CalibrationHistory(std::vector<Calibration> days);

  static constexpr int kOfflineDays = 243;
  static constexpr int kOnlineDays = 146;
  static constexpr int kTotalDays = kOfflineDays + kOnlineDays;

  int days() const { return static_cast<int>(history_.size()); }
  const Calibration& day(int d) const;

  /// Calendar date of a day index, anchored at 2021-08-10, as MM/DD/YY.
  std::string date_string(int d) const;

  /// Copies days [begin, begin+count).
  std::vector<Calibration> slice(int begin, int count) const;

  const std::vector<Calibration>& all() const { return history_; }

 private:
  std::vector<Calibration> history_;
};

}  // namespace qucad
