#include "noise/channels.hpp"

#include <cmath>

#include "common/require.hpp"
#include "linalg/gates.hpp"

namespace qucad {

namespace {

std::array<cplx, 4> scaled2(const CMat& m, double s) {
  return {s * m(0, 0), s * m(0, 1), s * m(1, 0), s * m(1, 1)};
}

std::array<cplx, 4> mul2(const std::array<cplx, 4>& a, const std::array<cplx, 4>& b) {
  // (a*b) row-major 2x2
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

std::array<cplx, 16> mul4(const std::array<cplx, 16>& a,
                          const std::array<cplx, 16>& b) {
  std::array<cplx, 16> out{};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t k = 0; k < 4; ++k) {
      const cplx v = a[r * 4 + k];
      if (v == cplx{0.0, 0.0}) continue;
      for (std::size_t c = 0; c < 4; ++c) out[r * 4 + c] += v * b[k * 4 + c];
    }
  }
  return out;
}

}  // namespace

bool Kraus1::is_cptp(double tol) const {
  std::array<cplx, 4> sum{};
  for (const auto& k : ops) {
    // K^dag K
    sum[0] += std::conj(k[0]) * k[0] + std::conj(k[2]) * k[2];
    sum[1] += std::conj(k[0]) * k[1] + std::conj(k[2]) * k[3];
    sum[2] += std::conj(k[1]) * k[0] + std::conj(k[3]) * k[2];
    sum[3] += std::conj(k[1]) * k[1] + std::conj(k[3]) * k[3];
  }
  return std::abs(sum[0] - 1.0) < tol && std::abs(sum[1]) < tol &&
         std::abs(sum[2]) < tol && std::abs(sum[3] - 1.0) < tol;
}

bool Kraus2::is_cptp(double tol) const {
  std::array<cplx, 16> sum{};
  for (const auto& k : ops) {
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        cplx acc{0.0, 0.0};
        for (std::size_t m = 0; m < 4; ++m) {
          acc += std::conj(k[m * 4 + r]) * k[m * 4 + c];
        }
        sum[r * 4 + c] += acc;
      }
    }
  }
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      const cplx expected = r == c ? cplx{1.0, 0.0} : cplx{0.0, 0.0};
      if (std::abs(sum[r * 4 + c] - expected) >= tol) return false;
    }
  }
  return true;
}

namespace channels {

Kraus1 depolarizing1(double p) {
  require(p >= 0.0 && p <= 1.0, "depolarizing probability out of range");
  if (p == 0.0) return identity1();
  Kraus1 ch;
  ch.ops.push_back(scaled2(gates::I(), std::sqrt(1.0 - 0.75 * p)));
  const double s = std::sqrt(0.25 * p);
  ch.ops.push_back(scaled2(gates::X(), s));
  ch.ops.push_back(scaled2(gates::Y(), s));
  ch.ops.push_back(scaled2(gates::Z(), s));
  return ch;
}

Kraus2 depolarizing2(double p) {
  require(p >= 0.0 && p <= 1.0, "depolarizing probability out of range");
  if (p == 0.0) return identity2();
  Kraus2 ch;
  const CMat paulis[4] = {gates::I(), gates::X(), gates::Y(), gates::Z()};
  const double s_id = std::sqrt(1.0 - 15.0 * p / 16.0);
  const double s = std::sqrt(p / 16.0);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      const double scale = (a == 0 && b == 0) ? s_id : s;
      const CMat m = kron(paulis[a], paulis[b]) * cplx{scale, 0.0};
      std::array<cplx, 16> op;
      for (std::size_t r = 0; r < 4; ++r) {
        for (std::size_t c = 0; c < 4; ++c) op[r * 4 + c] = m(r, c);
      }
      ch.ops.push_back(op);
    }
  }
  return ch;
}

Kraus1 bit_flip(double p) {
  require(p >= 0.0 && p <= 1.0, "bit flip probability out of range");
  Kraus1 ch;
  ch.ops.push_back(scaled2(gates::I(), std::sqrt(1.0 - p)));
  if (p > 0.0) ch.ops.push_back(scaled2(gates::X(), std::sqrt(p)));
  return ch;
}

Kraus1 phase_flip(double p) {
  require(p >= 0.0 && p <= 1.0, "phase flip probability out of range");
  Kraus1 ch;
  ch.ops.push_back(scaled2(gates::I(), std::sqrt(1.0 - p)));
  if (p > 0.0) ch.ops.push_back(scaled2(gates::Z(), std::sqrt(p)));
  return ch;
}

Kraus1 amplitude_damping(double gamma) {
  require(gamma >= 0.0 && gamma <= 1.0, "damping probability out of range");
  Kraus1 ch;
  ch.ops.push_back({cplx{1.0, 0.0}, 0.0, 0.0, cplx{std::sqrt(1.0 - gamma), 0.0}});
  if (gamma > 0.0) {
    ch.ops.push_back({0.0, cplx{std::sqrt(gamma), 0.0}, 0.0, 0.0});
  }
  return ch;
}

Kraus1 phase_damping(double lambda) {
  require(lambda >= 0.0 && lambda <= 1.0, "dephasing probability out of range");
  Kraus1 ch;
  ch.ops.push_back({cplx{1.0, 0.0}, 0.0, 0.0, cplx{std::sqrt(1.0 - lambda), 0.0}});
  if (lambda > 0.0) {
    ch.ops.push_back({0.0, 0.0, 0.0, cplx{std::sqrt(lambda), 0.0}});
  }
  return ch;
}

ThermalChannel thermal_relaxation_params(double t1_us, double t2_us,
                                         double duration_us) {
  require(t1_us > 0.0 && t2_us > 0.0 && t2_us <= 2.0 * t1_us,
          "thermal relaxation requires 0 < T2 <= 2*T1");
  require(duration_us >= 0.0, "duration must be non-negative");
  ThermalChannel ch;
  if (duration_us == 0.0) return ch;
  ch.gamma = 1.0 - std::exp(-duration_us / t1_us);
  // Total coherence decay must equal exp(-t/T2); amplitude damping alone
  // contributes exp(-t/(2*T1)).
  const double residual = std::exp(-2.0 * duration_us / t2_us + duration_us / t1_us);
  ch.lambda = std::max(0.0, 1.0 - residual);
  return ch;
}

Kraus1 thermal_relaxation(double t1_us, double t2_us, double duration_us) {
  return thermal_relaxation_params(t1_us, t2_us, duration_us).kraus();
}

namespace {

template <typename Op>
bool all_zero(const Op& op) {
  for (const cplx& v : op) {
    if (std::abs(v) > 1e-14) return false;
  }
  return true;
}

}  // namespace

Kraus1 compose(const Kraus1& first, const Kraus1& second) {
  Kraus1 out;
  out.ops.reserve(first.ops.size() * second.ops.size());
  for (const auto& s : second.ops) {
    for (const auto& f : first.ops) {
      auto op = mul2(s, f);  // second applied after first
      if (!all_zero(op)) out.ops.push_back(op);
    }
  }
  return out;
}

Kraus2 compose(const Kraus2& first, const Kraus2& second) {
  Kraus2 out;
  out.ops.reserve(first.ops.size() * second.ops.size());
  for (const auto& s : second.ops) {
    for (const auto& f : first.ops) {
      auto op = mul4(s, f);
      if (!all_zero(op)) out.ops.push_back(op);
    }
  }
  return out;
}

Kraus2 tensor(const Kraus1& a, const Kraus1& b) {
  Kraus2 out;
  out.ops.reserve(a.ops.size() * b.ops.size());
  for (const auto& ka : a.ops) {
    for (const auto& kb : b.ops) {
      std::array<cplx, 16> op{};
      for (std::size_t ra = 0; ra < 2; ++ra) {
        for (std::size_t ca = 0; ca < 2; ++ca) {
          for (std::size_t rb = 0; rb < 2; ++rb) {
            for (std::size_t cb = 0; cb < 2; ++cb) {
              op[(ra * 2 + rb) * 4 + (ca * 2 + cb)] =
                  ka[ra * 2 + ca] * kb[rb * 2 + cb];
            }
          }
        }
      }
      out.ops.push_back(op);
    }
  }
  return out;
}

Kraus1 identity1() {
  Kraus1 ch;
  ch.ops.push_back({cplx{1.0, 0.0}, 0.0, 0.0, cplx{1.0, 0.0}});
  return ch;
}

Kraus2 identity2() {
  Kraus2 ch;
  std::array<cplx, 16> op{};
  for (std::size_t i = 0; i < 4; ++i) op[i * 4 + i] = 1.0;
  ch.ops.push_back(op);
  return ch;
}

}  // namespace channels

Kraus1 ThermalChannel::kraus() const {
  if (empty()) return channels::identity1();
  return channels::compose(channels::amplitude_damping(gamma),
                           channels::phase_damping(lambda));
}

std::vector<double> apply_readout_error(std::vector<double> probs,
                                        std::span<const ReadoutError> errors) {
  const std::size_t dim = probs.size();
  std::vector<double> next(dim);
  for (std::size_t q = 0; q < errors.size(); ++q) {
    const ReadoutError& e = errors[q];
    if (e.p1_given_0 == 0.0 && e.p0_given_1 == 0.0) continue;
    const std::size_t mq = std::size_t{1} << q;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < dim; ++i) {
      const double p = probs[i];
      if (p == 0.0) continue;
      if (i & mq) {
        // true outcome 1: read 1 w.p. 1-p0|1, read 0 w.p. p0|1
        next[i] += p * (1.0 - e.p0_given_1);
        next[i & ~mq] += p * e.p0_given_1;
      } else {
        next[i] += p * (1.0 - e.p1_given_0);
        next[i | mq] += p * e.p1_given_0;
      }
    }
    probs.swap(next);
  }
  return probs;
}

}  // namespace qucad
