#pragma once

#include <array>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "noise/calibration.hpp"

namespace qucad {

/// Single-qubit Kraus channel (2x2 operators, row-major).
struct Kraus1 {
  std::vector<std::array<cplx, 4>> ops;

  bool empty() const { return ops.empty(); }
  /// True when sum_k K^dag K == I within tol (trace preservation).
  bool is_cptp(double tol = 1e-9) const;
};

/// Two-qubit Kraus channel (4x4 operators, row-major).
struct Kraus2 {
  std::vector<std::array<cplx, 16>> ops;

  bool empty() const { return ops.empty(); }
  bool is_cptp(double tol = 1e-9) const;
};

/// Thermal relaxation as closed-form parameters: amplitude damping `gamma`
/// composed with pure dephasing `lambda`. Storing the parameters instead of
/// materialized Kraus operators lets the density-matrix simulator apply the
/// channel in a single pass (DensityMatrix::apply_thermal1); kraus() builds
/// the equivalent operator set for generic paths and cross-checks.
struct ThermalChannel {
  double gamma = 0.0;   // amplitude-damping probability over the pulse
  double lambda = 0.0;  // additional pure-dephasing probability

  bool empty() const { return gamma == 0.0 && lambda == 0.0; }
  Kraus1 kraus() const;
  bool is_cptp(double tol = 1e-9) const { return kraus().is_cptp(tol); }
};

namespace channels {

/// Depolarizing channel (Qiskit convention):
/// E(rho) = (1-p) rho + p I/2; Kraus {sqrt(1-3p/4) I, sqrt(p/4) X/Y/Z}.
Kraus1 depolarizing1(double p);

/// Two-qubit depolarizing: E(rho) = (1-p) rho + p I/4.
Kraus2 depolarizing2(double p);

Kraus1 bit_flip(double p);
Kraus1 phase_flip(double p);

/// Amplitude damping with decay probability gamma.
Kraus1 amplitude_damping(double gamma);

/// Phase damping with dephasing probability lambda.
Kraus1 phase_damping(double lambda);

/// Thermal relaxation over `duration_us` given T1/T2 (T2 <= 2*T1):
/// amplitude damping with gamma = 1-exp(-t/T1) composed with the phase
/// damping that brings total coherence decay to exp(-t/T2).
Kraus1 thermal_relaxation(double t1_us, double t2_us, double duration_us);

/// Same channel in closed-form parameters (see ThermalChannel).
ThermalChannel thermal_relaxation_params(double t1_us, double t2_us,
                                         double duration_us);

/// Sequential composition: apply `first`, then `second`.
Kraus1 compose(const Kraus1& first, const Kraus1& second);
Kraus2 compose(const Kraus2& first, const Kraus2& second);

/// Tensor product acting on an ordered qubit pair: `a` on the pair's first
/// qubit, `b` on its second (matches the apply2 index convention).
Kraus2 tensor(const Kraus1& a, const Kraus1& b);

/// Identity channels.
Kraus1 identity1();
Kraus2 identity2();

}  // namespace channels

/// Applies per-qubit classical readout confusion to a basis-probability
/// vector of 2^n entries; qubit q uses errors[q]. Entries with
/// ReadoutError{} are unaffected.
std::vector<double> apply_readout_error(std::vector<double> probs,
                                        std::span<const ReadoutError> errors);

}  // namespace qucad
