#include "noise/calibration.hpp"

#include "common/require.hpp"

namespace qucad {

Calibration::Calibration(int num_qubits, std::vector<std::pair<int, int>> edges)
    : num_qubits_(num_qubits),
      edges_(std::move(edges)),
      sx_error_(static_cast<std::size_t>(num_qubits), 0.0),
      readout_(static_cast<std::size_t>(num_qubits)),
      t1_us_(static_cast<std::size_t>(num_qubits), 100.0),
      t2_us_(static_cast<std::size_t>(num_qubits), 80.0),
      cx_error_(edges_.size(), 0.0) {
  require(num_qubits > 0, "calibration requires at least one qubit");
  for (auto& [a, b] : edges_) {
    require(a >= 0 && a < num_qubits && b >= 0 && b < num_qubits && a != b,
            "invalid edge in coupling list");
    if (a > b) std::swap(a, b);
  }
}

double Calibration::sx_error(int q) const {
  require(q >= 0 && q < num_qubits_, "qubit out of range");
  return sx_error_[static_cast<std::size_t>(q)];
}

void Calibration::set_sx_error(int q, double e) {
  require(q >= 0 && q < num_qubits_, "qubit out of range");
  require(e >= 0.0 && e < 1.0, "error rate out of range");
  sx_error_[static_cast<std::size_t>(q)] = e;
}

const ReadoutError& Calibration::readout(int q) const {
  require(q >= 0 && q < num_qubits_, "qubit out of range");
  return readout_[static_cast<std::size_t>(q)];
}

void Calibration::set_readout(int q, ReadoutError e) {
  require(q >= 0 && q < num_qubits_, "qubit out of range");
  require(e.p1_given_0 >= 0.0 && e.p1_given_0 <= 0.5 && e.p0_given_1 >= 0.0 &&
              e.p0_given_1 <= 0.5,
          "readout error out of range");
  readout_[static_cast<std::size_t>(q)] = e;
}

double Calibration::t1_us(int q) const {
  require(q >= 0 && q < num_qubits_, "qubit out of range");
  return t1_us_[static_cast<std::size_t>(q)];
}

double Calibration::t2_us(int q) const {
  require(q >= 0 && q < num_qubits_, "qubit out of range");
  return t2_us_[static_cast<std::size_t>(q)];
}

void Calibration::set_t1_t2(int q, double t1, double t2) {
  require(q >= 0 && q < num_qubits_, "qubit out of range");
  require(t1 > 0.0 && t2 > 0.0 && t2 <= 2.0 * t1,
          "requires 0 < T2 <= 2*T1");
  t1_us_[static_cast<std::size_t>(q)] = t1;
  t2_us_[static_cast<std::size_t>(q)] = t2;
}

int Calibration::edge_index(int a, int b) const {
  if (a > b) std::swap(a, b);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].first == a && edges_[i].second == b) return static_cast<int>(i);
  }
  return -1;
}

double Calibration::cx_error(int a, int b) const {
  const int idx = edge_index(a, b);
  require(idx >= 0, "qubit pair is not coupled");
  return cx_error_[static_cast<std::size_t>(idx)];
}

void Calibration::set_cx_error(int a, int b, double e) {
  const int idx = edge_index(a, b);
  require(idx >= 0, "qubit pair is not coupled");
  require(e >= 0.0 && e < 1.0, "error rate out of range");
  cx_error_[static_cast<std::size_t>(idx)] = e;
}

double Calibration::noise_of(int q0, int q1) const {
  if (q1 < 0) return sx_error(q0);
  return cx_error(q0, q1);
}

std::vector<double> Calibration::feature_vector() const {
  std::vector<double> f;
  f.reserve(feature_dim());
  for (double e : sx_error_) f.push_back(e);
  for (const ReadoutError& r : readout_) f.push_back(r.mean());
  for (double e : cx_error_) f.push_back(e);
  return f;
}

std::vector<std::string> Calibration::feature_names() const {
  std::vector<std::string> names;
  names.reserve(feature_dim());
  for (int q = 0; q < num_qubits_; ++q) names.push_back("sx" + std::to_string(q));
  for (int q = 0; q < num_qubits_; ++q) names.push_back("ro" + std::to_string(q));
  for (const auto& [a, b] : edges_) {
    names.push_back("cx" + std::to_string(a) + "_" + std::to_string(b));
  }
  return names;
}

std::size_t Calibration::feature_dim() const {
  return 2 * static_cast<std::size_t>(num_qubits_) + edges_.size();
}

Calibration Calibration::from_features(int num_qubits,
                                       std::vector<std::pair<int, int>> edges,
                                       const std::vector<double>& features,
                                       double t1_us, double t2_us) {
  Calibration c(num_qubits, std::move(edges));
  require(features.size() == c.feature_dim(), "feature vector size mismatch");
  const std::size_t nq = static_cast<std::size_t>(num_qubits);
  auto clamp_rate = [](double v) { return v < 0.0 ? 0.0 : (v > 0.45 ? 0.45 : v); };
  for (std::size_t q = 0; q < nq; ++q) {
    c.sx_error_[q] = clamp_rate(features[q]);
    const double ro = clamp_rate(features[nq + q]);
    c.readout_[q] = ReadoutError{ro, ro};
    c.t1_us_[q] = t1_us;
    c.t2_us_[q] = t2_us;
  }
  for (std::size_t e = 0; e < c.edges_.size(); ++e) {
    c.cx_error_[e] = clamp_rate(features[2 * nq + e]);
  }
  return c;
}

}  // namespace qucad
