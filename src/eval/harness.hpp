#pragma once

#include <iosfwd>

#include "core/strategy.hpp"
#include "eval/metrics.hpp"

namespace qucad {

struct HarnessOptions {
  /// Days between evaluations (1 = every day, matching the paper).
  int day_stride = 1;
  bool verbose = false;
};

/// Runs one strategy over the online calibration window: offline() on the
/// historical days, then for each online day adapt + evaluate on the test
/// set under that day's exact noise model.
MethodResult run_longitudinal(Strategy& strategy, const Environment& env,
                              const std::vector<Calibration>& offline_history,
                              const std::vector<Calibration>& online_days,
                              const HarnessOptions& options = {});

/// Prints the Table-I style comparison (metrics + deltas vs. the first row).
void print_comparison_table(std::ostream& os,
                            const std::vector<MethodResult>& results,
                            const std::string& dataset_name);

/// Prints a date-indexed accuracy series (Fig. 2/4/8/9 style).
void print_accuracy_series(std::ostream& os, const MethodResult& result,
                           const std::vector<std::string>& dates,
                           int stride = 7);

}  // namespace qucad
