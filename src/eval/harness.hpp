#pragma once

#include <iosfwd>
#include <optional>

#include "backend/backend.hpp"
#include "core/strategy.hpp"
#include "eval/metrics.hpp"

namespace qucad {

struct HarnessOptions {
  /// Days between evaluations (1 = every day, matching the paper).
  int day_stride = 1;
  bool verbose = false;
  /// Execution regime override for the daily evaluation. Unset, the
  /// environment's own `eval.backend` applies (exact density noise by
  /// default); set it to replay the same longitudinal comparison under a
  /// different regime — e.g. kSampled to ask how the paper's conclusions
  /// shift with hardware-like finite-shot readout, or kPureStatevector for
  /// the noise-free ceiling.
  std::optional<BackendConfig> backend;
  /// Concurrent submitters the SERVING longitudinal harness
  /// (run_longitudinal over an InferenceService) uses to push each day's
  /// test set through submit_async — exercises routing, micro-batching and
  /// admission under the daily evaluation. Expectation backends make the
  /// accuracy series independent of this knob. Ignored by the strategy
  /// harness. Must be >= 1.
  int serve_clients = 1;
};

/// Runs one strategy over the online calibration window: offline() on the
/// historical days, then for each online day adapt + evaluate on the test
/// set under that day's exact noise model (or the regime selected by
/// `options.backend`).
MethodResult run_longitudinal(Strategy& strategy, const Environment& env,
                              const std::vector<Calibration>& offline_history,
                              const std::vector<Calibration>& online_days,
                              const HarnessOptions& options = {});

/// Prints the Table-I style comparison (metrics + deltas vs. the first row).
void print_comparison_table(std::ostream& os,
                            const std::vector<MethodResult>& results,
                            const std::string& dataset_name);

/// Prints a date-indexed accuracy series (Fig. 2/4/8/9 style).
void print_accuracy_series(std::ostream& os, const MethodResult& result,
                           const std::vector<std::string>& dates,
                           int stride = 7);

}  // namespace qucad
