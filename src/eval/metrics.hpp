#pragma once

#include <span>
#include <string>
#include <vector>

namespace qucad {

/// Table-I statistics of one method's daily accuracy series.
struct SeriesMetrics {
  double mean_accuracy = 0.0;
  double variance = 0.0;
  int days_over_08 = 0;
  int days_over_07 = 0;
  int days_over_05 = 0;
};

SeriesMetrics summarize_series(std::span<const double> daily_accuracy);

/// One row of a longitudinal comparison.
struct MethodResult {
  std::string method;
  std::vector<double> daily_accuracy;
  SeriesMetrics metrics;
  double online_optimize_seconds = 0.0;
  double offline_optimize_seconds = 0.0;
  int optimizations = 0;
};

}  // namespace qucad
