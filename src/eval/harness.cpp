#include "eval/harness.hpp"

#include <iostream>

#include "common/require.hpp"
#include "common/table.hpp"

namespace qucad {

MethodResult run_longitudinal(Strategy& strategy, const Environment& env,
                              const std::vector<Calibration>& offline_history,
                              const std::vector<Calibration>& online_days,
                              const HarnessOptions& options) {
  require(!online_days.empty(), "no online days to evaluate");
  if (!offline_history.empty()) strategy.offline(offline_history);

  MethodResult result;
  result.method = strategy.name();
  result.daily_accuracy.reserve(online_days.size());

  NoisyEvalOptions eval = env.eval;
  if (options.backend.has_value()) eval.backend = *options.backend;

  for (std::size_t d = 0; d < online_days.size();
       d += static_cast<std::size_t>(options.day_stride)) {
    const Calibration& calib = online_days[d];
    const std::span<const double> theta =
        strategy.online_day(static_cast<int>(d), calib);
    const double acc = noisy_accuracy(env.model, env.transpiled, theta,
                                      env.test, calib, eval);
    result.daily_accuracy.push_back(acc);
    if (options.verbose) {
      std::cout << "  [" << result.method << "] day " << d << ": acc "
                << fmt_pct(acc) << "\n";
    }
  }

  result.metrics = summarize_series(result.daily_accuracy);
  result.online_optimize_seconds = strategy.online_optimize_seconds();
  result.offline_optimize_seconds = strategy.offline_optimize_seconds();
  result.optimizations = strategy.optimizations();
  return result;
}

void print_comparison_table(std::ostream& os,
                            const std::vector<MethodResult>& results,
                            const std::string& dataset_name) {
  require(!results.empty(), "no results to print");
  const SeriesMetrics& base = results.front().metrics;

  TextTable table({"Method", "Mean Acc", "vs Base", "Variance", "Days>0.8",
                   "vs", "Days>0.7", "vs", "Days>0.5", "vs", "Online opt (s)",
                   "#opt"});
  for (const MethodResult& r : results) {
    const SeriesMetrics& m = r.metrics;
    table.add_row({r.method, fmt_pct(m.mean_accuracy),
                   fmt_pct_signed(m.mean_accuracy - base.mean_accuracy),
                   fmt(m.variance, 3), std::to_string(m.days_over_08),
                   std::to_string(m.days_over_08 - base.days_over_08),
                   std::to_string(m.days_over_07),
                   std::to_string(m.days_over_07 - base.days_over_07),
                   std::to_string(m.days_over_05),
                   std::to_string(m.days_over_05 - base.days_over_05),
                   fmt(r.online_optimize_seconds, 2),
                   std::to_string(r.optimizations)});
  }
  os << "=== " << dataset_name << " ===\n" << table.to_string();
}

void print_accuracy_series(std::ostream& os, const MethodResult& result,
                           const std::vector<std::string>& dates, int stride) {
  os << result.method << ":\n";
  for (std::size_t d = 0; d < result.daily_accuracy.size();
       d += static_cast<std::size_t>(stride)) {
    const std::string date = d < dates.size() ? dates[d] : std::to_string(d);
    os << "  " << date << "  " << fmt_pct(result.daily_accuracy[d]) << "\n";
  }
}

}  // namespace qucad
