#include "eval/metrics.hpp"

#include "common/stats.hpp"

namespace qucad {

SeriesMetrics summarize_series(std::span<const double> daily_accuracy) {
  SeriesMetrics m;
  m.mean_accuracy = mean(daily_accuracy);
  m.variance = variance(daily_accuracy);
  m.days_over_08 = static_cast<int>(count_over(daily_accuracy, 0.8));
  m.days_over_07 = static_cast<int>(count_over(daily_accuracy, 0.7));
  m.days_over_05 = static_cast<int>(count_over(daily_accuracy, 0.5));
  return m;
}

}  // namespace qucad
