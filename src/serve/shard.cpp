#include "serve/shard.hpp"

#include <bit>
#include <exception>
#include <string>
#include <utility>

#include "common/stats.hpp"
#include "serve/result_cache.hpp"

namespace qucad {

std::size_t route_by_hash(std::span<const double> features,
                          std::size_t num_shards) {
  // FNV-1a over the feature bit patterns: stable across processes, cheap,
  // and well-spread for the near-identical vectors real sensors emit.
  std::uint64_t h = 14695981039346656037ull;
  for (const double f : features) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(f);
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return num_shards == 0 ? 0 : static_cast<std::size_t>(h % num_shards);
}

ServingShard::ServingShard(std::size_t index, const ServiceConfig& config,
                           AdmissionController& admission, ResultCache* cache)
    : index_(index),
      config_(config),
      admission_(admission),
      cache_(cache),
      queue_(config.queue_capacity) {}

ServingShard::~ServingShard() {
  queue_.close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void ServingShard::start() {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

void ServingShard::install_epoch(std::shared_ptr<const Epoch> epoch) {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  epoch_ = std::move(epoch);
}

std::shared_ptr<const Epoch> ServingShard::epoch() const {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  return epoch_;
}

std::future<StatusOr<Prediction>> ServingShard::enqueue(
    std::vector<double> features) {
  QueuedRequest request;
  request.features = std::move(features);
  request.enqueued = admission_.stamp();
  std::future<StatusOr<Prediction>> result = request.promise.get_future();

  const PushResult pushed = queue_.try_push(std::move(request));
  if (pushed == PushResult::kOk) return result;

  // The rejected request (promise included) died inside try_push; hand the
  // caller a fresh, already-resolved future instead.
  std::promise<StatusOr<Prediction>> failed;
  result = failed.get_future();
  if (pushed == PushResult::kClosed) {
    failed.set_value(Status::unavailable("service is shutting down"));
  } else {
    shed_.fetch_add(1, std::memory_order_relaxed);
    failed.set_value(admission_.shed(index_, queue_.capacity()));
  }
  return result;
}

std::vector<Prediction> ServingShard::run_batch(
    const Epoch& epoch, std::span<const std::vector<double>> xs) {
  std::vector<std::vector<double>> zs =
      epoch.backend->run_logits_batch(xs, config_.eval.pool);
  std::vector<Prediction> predictions(zs.size());
  for (std::size_t i = 0; i < zs.size(); ++i) {
    predictions[i].label = static_cast<int>(argmax(zs[i]));
    predictions[i].logits = std::move(zs[i]);
    predictions[i].epoch = epoch.id;
    predictions[i].backend = epoch.backend->kind();
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(predictions.size(), std::memory_order_relaxed);
  return predictions;
}

void ServingShard::dispatch_loop() {
  for (;;) {
    std::vector<QueuedRequest> batch =
        queue_.collect(config_.max_batch_size, config_.batch_window);
    if (batch.empty()) return;  // closed and drained
    serve_pending(batch);
  }
}

void ServingShard::serve_pending(std::vector<QueuedRequest>& batch) {
  // Deadline gate: a request whose budget elapsed while it queued fails
  // here — late answers are worthless to a deadline-carrying caller, and
  // skipping them sheds exactly the work a saturated shard cannot afford.
  std::vector<QueuedRequest> live;
  live.reserve(batch.size());
  for (QueuedRequest& request : batch) {
    Status status = admission_.admit_for_execution(request.enqueued);
    if (status.ok()) {
      live.push_back(std::move(request));
    } else {
      deadline_misses_.fetch_add(1, std::memory_order_relaxed);
      request.promise.set_value(std::move(status));
    }
  }
  if (live.empty()) return;

  const std::shared_ptr<const Epoch> epoch = this->epoch();
  std::vector<std::vector<double>> features;
  features.reserve(live.size());
  for (QueuedRequest& request : live) {
    features.push_back(std::move(request.features));
  }
  try {
    std::vector<Prediction> predictions = run_batch(*epoch, features);
    if (live.size() > 1) {
      // Count before fulfilling: a caller that reads stats right after its
      // future resolves must already see its own coalescing.
      coalesced_.fetch_add(live.size(), std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (cache_ != nullptr) {
        cache_->insert(epoch->id, features[i], predictions[i]);
      }
      live[i].promise.set_value(std::move(predictions[i]));
    }
  } catch (const std::exception& e) {
    // Features were validated at submission; anything thrown here is a
    // library invariant failure. Fail the batch, keep the shard up.
    for (QueuedRequest& request : live) {
      request.promise.set_value(
          Status::internal(std::string("batch sweep failed: ") + e.what()));
    }
  }
}

ShardStats ServingShard::stats() const {
  ShardStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.size();
  return stats;
}

}  // namespace qucad
