#pragma once

#include <chrono>
#include <cstddef>

#include "common/status.hpp"
#include "qnn/evaluator.hpp"
#include "repo/manager.hpp"

namespace qucad {

struct PipelineConfig;  // core/qucad.hpp
struct Environment;     // core/strategy.hpp

/// One consolidated configuration for the online serving surface. The
/// research pipeline spreads its knobs over nested option structs
/// (`PipelineConfig` holding `NoisyEvalOptions`, `ManagerOptions`, ADMM
/// settings, ...); the serving layer needs exactly two of those groups —
/// how to execute a request (`eval`) and how to react to a calibration
/// event (`manager`) — plus its own batching/hot-swap knobs, so they live
/// flat in one struct with builder-style setters and validated construction
/// (`InferenceService::create` rejects an invalid config with a Status
/// instead of aborting).
struct ServiceConfig {
  /// What to keep serving when a calibration event ends in a Guidance-2
  /// failure report (the matched repository cluster is invalid).
  enum class FailurePolicy {
    /// Keep the current epoch; the report carries the failure Status. The
    /// operator decides what to do — the service never silently serves a
    /// model the repository flagged as untrustworthy.
    kKeepServing,
    /// Hot-swap to the matched (weak) model anyway — the paper's Table-I
    /// accounting, where failure days still execute and the miss shows up
    /// in accuracy.
    kServeMatched,
  };

  /// Request-execution knobs: noise model options, shots (0 = exact
  /// density-matrix expectations — the only mode whose predictions are
  /// invariant under micro-batch boundaries), executor cache, worker pool,
  /// and `eval.backend` — the execution regime every epoch compiles to
  /// (exact density noise by default; kSampled serves hardware-like
  /// finite-shot predictions at statevector cost). validate() rejects
  /// inconsistent combinations, e.g. the legacy density shot knob set while
  /// a non-density backend is selected.
  NoisyEvalOptions eval;

  /// Repository-decision knobs for calibration events (reuse threshold
  /// bootstrap, online-compression ADMM settings, failure reports).
  ManagerOptions manager;

  /// How the router assigns a submit_async request to a shard.
  enum class RoutingPolicy {
    /// Pick the shard with the shallowest queue; break ties with the
    /// deterministic feature hash. Best latency under skewed load.
    kLeastLoaded,
    /// Pure feature-hash routing: the same feature vector always lands on
    /// the same shard, independent of load — the deterministic fallback
    /// (and the right choice for shot-sampled backends, where a request's
    /// draw depends on its batch placement).
    kHash,
  };

  /// Upper bound on requests coalesced into one compiled batch sweep.
  std::size_t max_batch_size = 32;

  /// How long the dispatcher waits for more concurrent submitters after the
  /// first request of a batch arrives. Zero serves every request as its own
  /// batch (lowest latency, no coalescing).
  std::chrono::microseconds batch_window{200};

  FailurePolicy failure_policy = FailurePolicy::kKeepServing;

  /// Independent serving shards, each with its own micro-batch dispatcher,
  /// bounded queue and epoch pointer. One shard reproduces the PR-4
  /// single-dispatcher service; more shards remove the single-dispatcher
  /// bottleneck under concurrent load. Expectation backends stay
  /// bitwise-identical across shard counts (a request's logits do not
  /// depend on which shard's sweep computed them). Must be >= 1.
  std::size_t num_shards = 1;

  /// Admission bound: requests queued per shard before submit_async sheds
  /// with kResourceExhausted instead of queuing unboundedly. Must be >= 1.
  std::size_t queue_capacity = 1024;

  /// Per-request deadline budget, measured from submission. A request still
  /// queued when its budget elapses fails with kDeadlineExceeded instead of
  /// being executed late (the dispatcher checks before each sweep). Zero
  /// disables the deadline.
  std::chrono::microseconds deadline_budget{0};

  RoutingPolicy routing = RoutingPolicy::kLeastLoaded;

  /// Epoch-keyed result cache: predictions for repeated (quantized) feature
  /// vectors are answered without queueing or re-execution. Entries are
  /// keyed by (epoch id, quantized features), so a hot-swap naturally
  /// invalidates — a cached answer always names the epoch that computed it.
  /// Zero disables the cache (the default: caching trades the shot-sampled
  /// backends' batch-placement semantics for speed; expectation backends
  /// lose nothing).
  std::size_t result_cache_capacity = 0;

  /// Cache-key quantization step: features are bucketed to multiples of
  /// this before keying, so near-identical sensor readings share an entry.
  /// Zero keys on exact bit patterns. Must be finite and >= 0.
  double result_cache_quantum = 0.0;

  ServiceConfig& with_eval(NoisyEvalOptions value) {
    eval = std::move(value);
    return *this;
  }
  ServiceConfig& with_manager(ManagerOptions value) {
    manager = std::move(value);
    return *this;
  }
  ServiceConfig& with_max_batch_size(std::size_t value) {
    max_batch_size = value;
    return *this;
  }
  ServiceConfig& with_batch_window(std::chrono::microseconds value) {
    batch_window = value;
    return *this;
  }
  ServiceConfig& with_failure_policy(FailurePolicy value) {
    failure_policy = value;
    return *this;
  }
  ServiceConfig& with_shots(int shots) {
    eval.shots = shots;
    return *this;
  }
  ServiceConfig& with_backend(BackendConfig backend) {
    eval.backend = backend;
    return *this;
  }
  ServiceConfig& with_num_shards(std::size_t value) {
    num_shards = value;
    return *this;
  }
  ServiceConfig& with_queue_capacity(std::size_t value) {
    queue_capacity = value;
    return *this;
  }
  ServiceConfig& with_deadline_budget(std::chrono::microseconds value) {
    deadline_budget = value;
    return *this;
  }
  ServiceConfig& with_routing(RoutingPolicy value) {
    routing = value;
    return *this;
  }
  ServiceConfig& with_result_cache(std::size_t capacity) {
    result_cache_capacity = capacity;
    return *this;
  }
  ServiceConfig& with_result_cache_quantum(double value) {
    result_cache_quantum = value;
    return *this;
  }

  /// OK when every knob is in range; the first violation otherwise.
  Status validate() const;

  /// Consolidates the serving-relevant groups out of a research
  /// PipelineConfig (eval + manager_options; the training/compression knobs
  /// the service does not own are dropped).
  static ServiceConfig from_pipeline(const PipelineConfig& pipeline);

  /// Same consolidation from a prepared Environment — what
  /// InferenceService::create defaults to when no config is given, so a
  /// service built from an Environment evaluates exactly like the research
  /// harness did.
  static ServiceConfig from_environment(const Environment& env);
};

}  // namespace qucad
