#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/shard.hpp"

namespace qucad {

/// Epoch-keyed LRU over quantized feature vectors: repeated requests (a
/// sensor resubmitting near-identical readings, a monitoring probe) are
/// answered without queueing, admission, or a compiled sweep. Keys are
/// (epoch id, quantized features) — a hot-swap changes the id, so stale
/// answers are unreachable by construction and no invalidation pass exists.
/// With quantum == 0 features key on their exact bit patterns; a positive
/// quantum buckets each feature to its nearest multiple, trading exactness
/// for hit rate on analog inputs. The full quantized vector is stored in
/// the key (not just its hash), so a collision can never serve the wrong
/// prediction. Thread-safe; all methods may race.
class ResultCache {
 public:
  /// `capacity` == 0 disables the cache (lookup always misses, insert
  /// drops). `quantum` semantics as above.
  ResultCache(std::size_t capacity, double quantum);

  bool enabled() const { return capacity_ > 0; }

  /// The cached prediction for (epoch, features), or nullopt. A hit
  /// refreshes LRU recency.
  std::optional<Prediction> lookup(std::uint64_t epoch,
                                   std::span<const double> features);

  /// Stores a computed prediction; evicts the least-recently-used entry at
  /// capacity. Re-inserting an existing key refreshes its value.
  void insert(std::uint64_t epoch, std::span<const double> features,
              const Prediction& prediction);

  std::uint64_t hits() const;
  std::uint64_t lookups() const;
  std::size_t entries() const;

 private:
  struct Key {
    std::uint64_t epoch = 0;
    std::vector<std::int64_t> quantized;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };
  using Entry = std::pair<Key, Prediction>;

  Key make_key(std::uint64_t epoch, std::span<const double> features) const;

  const std::size_t capacity_;
  const double quantum_;

  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t lookups_ = 0;
};

}  // namespace qucad
