#include "serve/result_cache.hpp"

#include <bit>
#include <cmath>

namespace qucad {

ResultCache::ResultCache(std::size_t capacity, double quantum)
    : capacity_(capacity), quantum_(quantum) {}

ResultCache::Key ResultCache::make_key(std::uint64_t epoch,
                                       std::span<const double> features) const {
  Key key;
  key.epoch = epoch;
  key.quantized.reserve(features.size());
  for (const double f : features) {
    if (quantum_ > 0.0) {
      key.quantized.push_back(std::llround(f / quantum_));
    } else {
      key.quantized.push_back(std::bit_cast<std::int64_t>(f));
    }
  }
  return key;
}

std::size_t ResultCache::KeyHash::operator()(const Key& key) const {
  // FNV-1a over the epoch and the quantized lanes.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(key.epoch);
  for (const std::int64_t q : key.quantized) {
    mix(static_cast<std::uint64_t>(q));
  }
  return static_cast<std::size_t>(h);
}

std::optional<Prediction> ResultCache::lookup(std::uint64_t epoch,
                                              std::span<const double> features) {
  if (!enabled()) return std::nullopt;
  const Key key = make_key(epoch, features);
  std::lock_guard<std::mutex> lock(mutex_);
  ++lookups_;
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  ++hits_;
  return it->second->second;
}

void ResultCache::insert(std::uint64_t epoch, std::span<const double> features,
                         const Prediction& prediction) {
  if (!enabled()) return;
  Key key = make_key(epoch, features);
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = prediction;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (index_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  lru_.emplace_front(std::move(key), prediction);
  index_.emplace(lru_.front().first, lru_.begin());
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::lookups() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lookups_;
}

std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return index_.size();
}

}  // namespace qucad
