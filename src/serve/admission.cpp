#include "serve/admission.hpp"

#include <string>

namespace qucad {

Status AdmissionController::shed(std::size_t shard,
                                 std::size_t queue_capacity) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  return Status::resource_exhausted(
      "shard " + std::to_string(shard) + " queue is full (" +
      std::to_string(queue_capacity) +
      " requests); load shed — retry with backoff");
}

Status AdmissionController::admit_for_execution(Clock::TimePoint enqueued) {
  if (deadline_budget_.count() == 0) return Status();
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      clock_.now() - enqueued);
  if (waited <= deadline_budget_) return Status();
  deadline_misses_.fetch_add(1, std::memory_order_relaxed);
  return Status::deadline_exceeded(
      "request waited " + std::to_string(waited.count()) +
      "us, over its " + std::to_string(deadline_budget_.count()) +
      "us deadline budget");
}

}  // namespace qucad
