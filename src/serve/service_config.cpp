#include "serve/service_config.hpp"

#include <cmath>

#include "core/qucad.hpp"

namespace qucad {

Status ServiceConfig::validate() const {
  if (max_batch_size == 0) {
    return Status::invalid_argument("max_batch_size must be at least 1");
  }
  if (batch_window.count() < 0) {
    return Status::invalid_argument("batch_window must be non-negative");
  }
  if (num_shards == 0) {
    return Status::invalid_argument(
        "num_shards must be at least 1 (a zero-shard service can route "
        "nothing)");
  }
  if (queue_capacity == 0) {
    return Status::invalid_argument(
        "queue_capacity must be at least 1 (a zero-capacity queue sheds "
        "every request)");
  }
  if (deadline_budget.count() < 0) {
    return Status::invalid_argument(
        "deadline_budget must be non-negative (0 disables the deadline)");
  }
  if (!std::isfinite(result_cache_quantum) || result_cache_quantum < 0.0) {
    return Status::invalid_argument(
        "result_cache_quantum must be finite and non-negative (0 keys on "
        "exact bits)");
  }
  if (eval.shots < 0) {
    return Status::invalid_argument("shots must be non-negative (0 = exact)");
  }
  if (Status status = eval.backend.validate(); !status.ok()) return status;
  if (eval.shots > 0 && eval.backend.kind != BackendKind::kDensityNoisy) {
    return Status::invalid_argument(
        "eval.shots drives the density engine's shot readout; a "
        "non-density backend takes its shot budget from eval.backend.shots");
  }
  if (manager.bootstrap_scale <= 0.0) {
    return Status::invalid_argument("bootstrap_scale must be positive");
  }
  return Status();
}

ServiceConfig ServiceConfig::from_pipeline(const PipelineConfig& pipeline) {
  ServiceConfig config;
  config.eval = pipeline.eval;
  config.manager = pipeline.manager_options;
  return config;
}

ServiceConfig ServiceConfig::from_environment(const Environment& env) {
  ServiceConfig config;
  config.eval = env.eval;
  config.manager = env.manager_options;
  return config;
}

}  // namespace qucad
