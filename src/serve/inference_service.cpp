#include "serve/inference_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "backend/registry.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"
#include "qnn/evaluator.hpp"

namespace qucad {

namespace {

/// One immutable serving snapshot. Hot-swap replaces the shared_ptr; batches
/// that already hold a snapshot finish on it untouched.
struct Epoch {
  std::uint64_t id = 0;
  std::vector<double> theta;
  Calibration calibration;
  /// The compiled execution regime of this epoch (ServiceConfig's
  /// eval.backend, built through BackendRegistry — density by default).
  std::shared_ptr<const ExecutionBackend> backend;
};

struct PendingRequest {
  std::vector<double> features;
  std::promise<StatusOr<Prediction>> promise;
};

}  // namespace

struct InferenceService::Impl {
  // Only the members the serving path reads live here. The OnlineManager
  // keeps its own copies of the model/routing/theta (it copies every ctor
  // input by value — small relative to the datasets) and is the sole owner
  // of the training data; the Environment's datasets are never stored
  // twice or kept alive unused.
  QnnModel model;
  TranspiledModel transpiled;
  std::vector<double> theta_pretrained;
  ServiceConfig config;
  OnlineManager manager;
  std::size_t min_features = 0;  // encoder input arity

  // --- epoch state -------------------------------------------------------
  mutable std::mutex epoch_mutex;
  std::shared_ptr<const Epoch> active;  // never null after create()
  std::uint64_t next_epoch_id = 1;
  std::mutex admin_mutex;  // serializes on_calibration events

  // --- micro-batcher -----------------------------------------------------
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<PendingRequest> queue;
  bool stopping = false;
  std::thread dispatcher;

  // --- monitoring --------------------------------------------------------
  mutable std::mutex stats_mutex;
  ServingStats counters;

  Impl(Environment env, ModelRepository repository, ServiceConfig config_in)
      : model(std::move(env.model)),
        transpiled(std::move(env.transpiled)),
        theta_pretrained(std::move(env.theta_pretrained)),
        config(std::move(config_in)),
        manager(model, transpiled, theta_pretrained, env.train,
                std::move(repository), config.manager),
        min_features(static_cast<std::size_t>(model.num_inputs())) {}

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      stopping = true;
    }
    queue_cv.notify_all();
    if (dispatcher.joinable()) dispatcher.join();
  }

  std::shared_ptr<const ExecutionBackend> build_backend(
      std::span<const double> theta, const Calibration& calibration) const {
    BackendContext context;
    context.model = &model;
    context.transpiled = &transpiled;
    context.theta = theta;
    context.calibration = &calibration;
    context.noise = config.eval.noise;
    context.use_cache = config.eval.use_cache;
    context.density_shots = config.eval.shots;
    context.density_shot_seed = config.eval.shot_seed;
    StatusOr<std::shared_ptr<const ExecutionBackend>> backend =
        BackendRegistry::global().make(config.eval.backend, context);
    // Callers (create / on_calibration) wrap epoch installation in a
    // try/catch that converts to Status — surface registry failures the
    // same way.
    require(backend.ok(), backend.status().to_string());
    return *std::move(backend);
  }

  std::shared_ptr<const Epoch> load_epoch() const {
    std::lock_guard<std::mutex> lock(epoch_mutex);
    return active;
  }

  /// Installs a fully-built epoch as the active one. The only writer of
  /// `active`; callers hold admin_mutex (or are create()).
  std::uint64_t install_epoch(std::vector<double> theta,
                              const Calibration& calibration) {
    auto epoch = std::make_shared<Epoch>();
    epoch->theta = std::move(theta);
    epoch->calibration = calibration;
    epoch->backend = build_backend(epoch->theta, calibration);
    std::lock_guard<std::mutex> lock(epoch_mutex);
    epoch->id = next_epoch_id++;
    active = std::move(epoch);
    return active->id;
  }

  Status validate_features(const std::vector<double>& features) const {
    if (features.size() < min_features) {
      return Status::invalid_argument(
          "request has " + std::to_string(features.size()) +
          " features, the encoder reads " + std::to_string(min_features));
    }
    return Status();
  }

  /// Runs one compiled sweep over `features` on the given epoch's backend.
  /// Expectation backends make the result independent of how requests were
  /// grouped.
  std::vector<Prediction> run_batch(const Epoch& epoch,
                                    std::span<const std::vector<double>> features) {
    std::vector<std::vector<double>> zs =
        epoch.backend->run_logits_batch(features, config.eval.pool);
    std::vector<Prediction> predictions(zs.size());
    for (std::size_t i = 0; i < zs.size(); ++i) {
      predictions[i].label = static_cast<int>(argmax(zs[i]));
      predictions[i].logits = std::move(zs[i]);
      predictions[i].epoch = epoch.id;
      predictions[i].backend = epoch.backend->kind();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      ++counters.batches;
      counters.requests += zs.size();
    }
    return predictions;
  }

  /// Dispatcher body: coalesce waiting submit() requests into one sweep.
  void dispatch_loop() {
    std::unique_lock<std::mutex> lock(queue_mutex);
    for (;;) {
      queue_cv.wait(lock, [&] { return stopping || !queue.empty(); });
      if (queue.empty()) return;  // stopping with nothing left to drain

      // First request in hand: wait up to batch_window for stragglers so
      // concurrent callers share one compiled sweep.
      if (config.batch_window.count() > 0 &&
          queue.size() < config.max_batch_size && !stopping) {
        const auto deadline =
            std::chrono::steady_clock::now() + config.batch_window;
        while (queue.size() < config.max_batch_size && !stopping) {
          if (queue_cv.wait_until(lock, deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }

      const std::size_t take = std::min(queue.size(), config.max_batch_size);
      std::vector<PendingRequest> batch;
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue.front()));
        queue.pop_front();
      }
      lock.unlock();
      serve_pending(batch);
      lock.lock();
    }
  }

  void serve_pending(std::vector<PendingRequest>& batch) {
    const std::shared_ptr<const Epoch> epoch = load_epoch();
    std::vector<std::vector<double>> features;
    features.reserve(batch.size());
    for (PendingRequest& request : batch) {
      features.push_back(std::move(request.features));
    }
    try {
      std::vector<Prediction> predictions = run_batch(*epoch, features);
      if (batch.size() > 1) {
        // Count before fulfilling: a caller that reads stats() right after
        // its future resolves must already see its own coalescing.
        std::lock_guard<std::mutex> lock(stats_mutex);
        counters.coalesced += batch.size();
      }
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].promise.set_value(std::move(predictions[i]));
      }
    } catch (const std::exception& e) {
      // Features were validated at submit(); anything thrown here is a
      // library invariant failure. Fail the batch, keep the service up.
      for (PendingRequest& request : batch) {
        request.promise.set_value(
            Status::internal(std::string("batch sweep failed: ") + e.what()));
      }
    }
  }
};

StatusOr<InferenceService> InferenceService::create(
    Environment env, ModelRepository repository,
    const Calibration& initial_calibration,
    std::optional<ServiceConfig> config) {
  ServiceConfig resolved =
      config.has_value() ? std::move(*config) : ServiceConfig::from_environment(env);
  if (Status status = resolved.validate(); !status.ok()) return status;

  if (env.model.readout_qubits.empty()) {
    return Status::failed_precondition("model has no readout qubits");
  }
  if (static_cast<int>(env.theta_pretrained.size()) != env.model.num_params()) {
    return Status::invalid_argument(
        "theta_pretrained has " + std::to_string(env.theta_pretrained.size()) +
        " parameters, model has " + std::to_string(env.model.num_params()));
  }
  if (env.train.size() == 0) {
    return Status::failed_precondition(
        "empty training set: calibration events that miss the repository "
        "compress a new model online and need training data");
  }
  if (initial_calibration.num_qubits() < env.transpiled.num_physical_qubits()) {
    return Status::invalid_argument(
        "calibration covers " + std::to_string(initial_calibration.num_qubits()) +
        " qubits, the routed circuit uses " +
        std::to_string(env.transpiled.num_physical_qubits()));
  }

  auto impl = std::make_unique<Impl>(std::move(env), std::move(repository),
                                     std::move(resolved));
  try {
    impl->install_epoch(impl->theta_pretrained, initial_calibration);
  } catch (const std::exception& e) {
    return Status::invalid_argument(
        std::string("cannot compile the initial epoch: ") + e.what());
  }
  {
    std::lock_guard<std::mutex> lock(impl->stats_mutex);
    ++impl->counters.swaps;
  }
  impl->dispatcher = std::thread([raw = impl.get()] { raw->dispatch_loop(); });
  return InferenceService(std::move(impl));
}

InferenceService::InferenceService(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

InferenceService::~InferenceService() = default;
InferenceService::InferenceService(InferenceService&&) noexcept = default;
InferenceService& InferenceService::operator=(InferenceService&&) noexcept =
    default;

StatusOr<Prediction> InferenceService::submit(std::vector<double> features) {
  if (Status status = impl_->validate_features(features); !status.ok()) {
    return status;
  }
  std::future<StatusOr<Prediction>> result;
  {
    std::lock_guard<std::mutex> lock(impl_->queue_mutex);
    if (impl_->stopping) {
      return Status::unavailable("service is shutting down");
    }
    PendingRequest request;
    request.features = std::move(features);
    result = request.promise.get_future();
    impl_->queue.push_back(std::move(request));
  }
  impl_->queue_cv.notify_all();
  return result.get();
}

StatusOr<std::vector<Prediction>> InferenceService::submit_batch(
    std::span<const std::vector<double>> batch) {
  if (batch.empty()) return Status::invalid_argument("empty batch");
  for (const std::vector<double>& features : batch) {
    if (Status status = impl_->validate_features(features); !status.ok()) {
      return status;
    }
  }
  const std::shared_ptr<const Epoch> epoch = impl_->load_epoch();
  try {
    return impl_->run_batch(*epoch, batch);
  } catch (const std::exception& e) {
    return Status::internal(std::string("batch sweep failed: ") + e.what());
  }
}

StatusOr<CalibrationReport> InferenceService::on_calibration(
    const Calibration& calibration) {
  if (calibration.num_qubits() < impl_->transpiled.num_physical_qubits()) {
    return Status::invalid_argument(
        "calibration covers " + std::to_string(calibration.num_qubits()) +
        " qubits, the routed circuit uses " +
        std::to_string(impl_->transpiled.num_physical_qubits()));
  }

  // One calibration event at a time; requests keep serving the current
  // epoch for however long the repository decision (possibly a full online
  // compression) takes.
  std::lock_guard<std::mutex> admin(impl_->admin_mutex);

  CalibrationReport report;
  try {
    report.decision = impl_->manager.process_day(calibration);
  } catch (const std::exception& e) {
    return Status::internal(std::string("repository decision failed: ") +
                            e.what());
  }
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    using Action = OnlineManager::Decision::Action;
    if (report.decision.action == Action::Reuse) ++impl_->counters.reuses;
    if (report.decision.action == Action::NewModel) {
      ++impl_->counters.compressions;
    }
    if (report.decision.action == Action::Failure) ++impl_->counters.failures;
  }

  const StatusOr<std::span<const double>> theta =
      impl_->manager.theta_for_decision(report.decision);
  std::vector<double> next_theta;
  if (theta.ok()) {
    next_theta.assign(theta->begin(), theta->end());
  } else {
    report.failure = theta.status();
    if (impl_->config.failure_policy ==
            ServiceConfig::FailurePolicy::kKeepServing ||
        report.decision.entry_index < 0) {
      // Guidance 2: keep the trusted epoch, hand the operator the report.
      report.swapped = false;
      report.epoch = active_epoch();
      return report;
    }
    // kServeMatched: install the matched-but-invalid model anyway.
    next_theta =
        impl_->manager.repository().entry(report.decision.entry_index).theta;
  }

  try {
    report.epoch = impl_->install_epoch(std::move(next_theta), calibration);
  } catch (const std::exception& e) {
    return Status::internal(std::string("cannot compile the new epoch: ") +
                            e.what());
  }
  report.swapped = true;
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->counters.swaps;
  }
  return report;
}

std::uint64_t InferenceService::active_epoch() const {
  return impl_->load_epoch()->id;
}

std::vector<double> InferenceService::active_theta() const {
  return impl_->load_epoch()->theta;
}

ServingStats InferenceService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->stats_mutex);
  return impl_->counters;
}

const OnlineManager& InferenceService::manager() const {
  return impl_->manager;
}

MethodResult run_longitudinal(InferenceService& service, const Dataset& test,
                              const std::vector<Calibration>& online_days,
                              const HarnessOptions& options) {
  require(!online_days.empty(), "no online days to evaluate");
  require(test.size() > 0, "empty test set");

  MethodResult result;
  result.method = "InferenceService";
  result.daily_accuracy.reserve(online_days.size());

  for (std::size_t d = 0; d < online_days.size();
       d += static_cast<std::size_t>(options.day_stride)) {
    const StatusOr<CalibrationReport> report =
        service.on_calibration(online_days[d]);
    if (!report.ok()) require(false, report.status().to_string());
    result.online_optimize_seconds += report->decision.optimize_seconds;
    if (report->decision.action ==
        OnlineManager::Decision::Action::NewModel) {
      ++result.optimizations;
    }

    const StatusOr<std::vector<Prediction>> predictions =
        service.submit_batch(test.features);
    if (!predictions.ok()) require(false, predictions.status().to_string());
    std::size_t correct = 0;
    for (std::size_t i = 0; i < predictions->size(); ++i) {
      if ((*predictions)[i].label == test.labels[i]) ++correct;
    }
    result.daily_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(test.size()));
  }

  result.metrics = summarize_series(result.daily_accuracy);
  return result;
}

}  // namespace qucad
