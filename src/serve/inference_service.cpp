#include "serve/inference_service.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "backend/registry.hpp"
#include "common/require.hpp"
#include "serve/result_cache.hpp"

namespace qucad {

struct InferenceService::Impl {
  // Only the members the serving path reads live here. The OnlineManager
  // keeps its own copies of the model/routing/theta (it copies every ctor
  // input by value — small relative to the datasets) and is the sole owner
  // of the training data; the Environment's datasets are never stored
  // twice or kept alive unused.
  QnnModel model;
  TranspiledModel transpiled;
  std::vector<double> theta_pretrained;
  ServiceConfig config;
  OnlineManager manager;
  std::size_t min_features = 0;  // encoder input arity

  // --- sharded serving plane ---------------------------------------------
  AdmissionController admission;
  ResultCache cache;
  // Stable addresses: shards hold references to config/admission/cache and
  // run dispatcher threads, so they live behind unique_ptr and are neither
  // copied nor reallocated after create().
  std::vector<std::unique_ptr<ServingShard>> shards;

  // --- epoch state -------------------------------------------------------
  // Shards each hold their own epoch pointer; this is the service-level
  // view (what active_epoch()/active_theta() report after a broadcast).
  mutable std::mutex epoch_mutex;
  std::uint64_t current_epoch_id = 0;
  std::vector<double> current_theta;
  std::uint64_t next_epoch_id = 1;
  mutable std::mutex admin_mutex;  // serializes on_calibration events

  // --- monitoring --------------------------------------------------------
  // Calibration-event counters; the serving-path counters live on the
  // shards (submit_batch sweeps are counted by the shard that ran them).
  mutable std::mutex stats_mutex;
  std::uint64_t swaps = 0;
  std::uint64_t reuses = 0;
  std::uint64_t compressions = 0;
  std::uint64_t failures = 0;

  Impl(Environment env, ModelRepository repository, ServiceConfig config_in)
      : model(std::move(env.model)),
        transpiled(std::move(env.transpiled)),
        theta_pretrained(std::move(env.theta_pretrained)),
        config(std::move(config_in)),
        manager(model, transpiled, theta_pretrained, env.train,
                std::move(repository), config.manager),
        min_features(static_cast<std::size_t>(model.num_inputs())),
        admission(config.deadline_budget),
        cache(config.result_cache_capacity, config.result_cache_quantum) {
    shards.reserve(config.num_shards);
    for (std::size_t s = 0; s < config.num_shards; ++s) {
      shards.push_back(std::make_unique<ServingShard>(
          s, config, admission, cache.enabled() ? &cache : nullptr));
    }
  }

  // Shards close their queues and join their dispatchers in ~ServingShard;
  // nothing else to unwind.
  ~Impl() = default;

  std::shared_ptr<const ExecutionBackend> build_backend(
      std::span<const double> theta, const Calibration& calibration) const {
    BackendContext context;
    context.model = &model;
    context.transpiled = &transpiled;
    context.theta = theta;
    context.calibration = &calibration;
    context.noise = config.eval.noise;
    context.use_cache = config.eval.use_cache;
    context.density_shots = config.eval.shots;
    context.density_shot_seed = config.eval.shot_seed;
    StatusOr<std::shared_ptr<const ExecutionBackend>> backend =
        BackendRegistry::global().make(config.eval.backend, context);
    // Callers (create / on_calibration) wrap epoch installation in a
    // try/catch that converts to Status — surface registry failures the
    // same way.
    require(backend.ok(), backend.status().to_string());
    return *std::move(backend);
  }

  /// Builds the next epoch and broadcasts it shard by shard: every shard
  /// gets its own backend instance for the same (theta, calibration) —
  /// resolved through the registry, sharing the compiled program via the
  /// executor cache — under ONE epoch id. A shard that is mid-sweep keeps
  /// its old snapshot until the batch finishes; shards are updated in
  /// index order, so during the broadcast early shards already serve the
  /// new epoch while late shards still serve the old one, and every
  /// prediction names whichever it ran on. The only writer of epoch state;
  /// callers hold admin_mutex (or are create()).
  std::uint64_t install_epoch(std::vector<double> theta,
                              const Calibration& calibration) {
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(epoch_mutex);
      id = next_epoch_id++;
    }
    for (const std::unique_ptr<ServingShard>& shard : shards) {
      auto epoch = std::make_shared<Epoch>();
      epoch->id = id;
      epoch->theta = theta;
      epoch->calibration = calibration;
      epoch->backend = build_backend(epoch->theta, calibration);
      shard->install_epoch(std::move(epoch));
    }
    std::lock_guard<std::mutex> lock(epoch_mutex);
    current_epoch_id = id;
    current_theta = std::move(theta);
    return id;
  }

  Status validate_features(const std::vector<double>& features) const {
    if (features.size() < min_features) {
      return Status::invalid_argument(
          "request has " + std::to_string(features.size()) +
          " features, the encoder reads " + std::to_string(min_features));
    }
    return Status();
  }

  /// Least-loaded shard, ties broken by the deterministic feature hash —
  /// or pure hash routing when configured.
  ServingShard& route(const std::vector<double>& features) {
    const std::size_t by_hash = route_by_hash(features, shards.size());
    if (config.routing == ServiceConfig::RoutingPolicy::kHash ||
        shards.size() == 1) {
      return *shards[by_hash];
    }
    std::size_t best = by_hash;
    std::size_t best_depth = std::numeric_limits<std::size_t>::max();
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const std::size_t depth = shards[s]->queue_depth();
      if (depth < best_depth) {
        best = s;
        best_depth = depth;
      } else if (depth == best_depth && s == by_hash) {
        best = s;  // hash fallback wins ties deterministically
      }
    }
    return *shards[best];
  }
};

StatusOr<InferenceService> InferenceService::create(
    Environment env, ModelRepository repository,
    const Calibration& initial_calibration,
    std::optional<ServiceConfig> config) {
  ServiceConfig resolved =
      config.has_value() ? std::move(*config) : ServiceConfig::from_environment(env);
  if (Status status = resolved.validate(); !status.ok()) return status;

  if (env.model.readout_qubits.empty()) {
    return Status::failed_precondition("model has no readout qubits");
  }
  if (static_cast<int>(env.theta_pretrained.size()) != env.model.num_params()) {
    return Status::invalid_argument(
        "theta_pretrained has " + std::to_string(env.theta_pretrained.size()) +
        " parameters, model has " + std::to_string(env.model.num_params()));
  }
  if (env.train.size() == 0) {
    return Status::failed_precondition(
        "empty training set: calibration events that miss the repository "
        "compress a new model online and need training data");
  }
  if (initial_calibration.num_qubits() < env.transpiled.num_physical_qubits()) {
    return Status::invalid_argument(
        "calibration covers " + std::to_string(initial_calibration.num_qubits()) +
        " qubits, the routed circuit uses " +
        std::to_string(env.transpiled.num_physical_qubits()));
  }

  auto impl = std::make_unique<Impl>(std::move(env), std::move(repository),
                                     std::move(resolved));
  try {
    impl->install_epoch(impl->theta_pretrained, initial_calibration);
  } catch (const std::exception& e) {
    return Status::invalid_argument(
        std::string("cannot compile the initial epoch: ") + e.what());
  }
  {
    std::lock_guard<std::mutex> lock(impl->stats_mutex);
    ++impl->swaps;
  }
  for (const std::unique_ptr<ServingShard>& shard : impl->shards) {
    shard->start();
  }
  return InferenceService(std::move(impl));
}

InferenceService::InferenceService(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

InferenceService::~InferenceService() = default;
InferenceService::InferenceService(InferenceService&&) noexcept = default;
InferenceService& InferenceService::operator=(InferenceService&&) noexcept =
    default;

std::future<StatusOr<Prediction>> InferenceService::submit_async(
    std::vector<double> features) {
  if (Status status = impl_->validate_features(features); !status.ok()) {
    std::promise<StatusOr<Prediction>> rejected;
    rejected.set_value(std::move(status));
    return rejected.get_future();
  }
  ServingShard& shard = impl_->route(features);
  if (impl_->cache.enabled()) {
    // Answer repeats from the shard's CURRENT epoch without queueing. The
    // key carries the epoch id, so a cached answer is exactly what this
    // epoch's sweep would compute (bitwise, for expectation backends) and
    // a hot-swap invalidates by construction.
    const std::shared_ptr<const Epoch> epoch = shard.epoch();
    if (std::optional<Prediction> hit =
            impl_->cache.lookup(epoch->id, features)) {
      std::promise<StatusOr<Prediction>> cached;
      cached.set_value(*std::move(hit));
      return cached.get_future();
    }
  }
  return shard.enqueue(std::move(features));
}

StatusOr<Prediction> InferenceService::submit(std::vector<double> features) {
  return submit_async(std::move(features)).get();
}

StatusOr<std::vector<Prediction>> InferenceService::submit_batch(
    std::span<const std::vector<double>> batch) {
  if (batch.empty()) return Status::invalid_argument("empty batch");
  for (const std::vector<double>& features : batch) {
    if (Status status = impl_->validate_features(features); !status.ok()) {
      return status;
    }
  }
  // A caller-assembled batch bypasses queue and window: one sweep on the
  // routed shard's current epoch snapshot (all shards converge to the same
  // epoch outside an in-flight broadcast).
  ServingShard& shard = impl_->route(batch.front());
  const std::shared_ptr<const Epoch> epoch = shard.epoch();
  try {
    return shard.run_batch(*epoch, batch);
  } catch (const std::exception& e) {
    return Status::internal(std::string("batch sweep failed: ") + e.what());
  }
}

StatusOr<CalibrationReport> InferenceService::on_calibration(
    const Calibration& calibration) {
  if (calibration.num_qubits() < impl_->transpiled.num_physical_qubits()) {
    return Status::invalid_argument(
        "calibration covers " + std::to_string(calibration.num_qubits()) +
        " qubits, the routed circuit uses " +
        std::to_string(impl_->transpiled.num_physical_qubits()));
  }

  // One calibration event at a time; requests keep serving the current
  // epoch for however long the repository decision (possibly a full online
  // compression) takes.
  std::lock_guard<std::mutex> admin(impl_->admin_mutex);

  CalibrationReport report;
  try {
    report.decision = impl_->manager.process_day(calibration);
  } catch (const std::exception& e) {
    return Status::internal(std::string("repository decision failed: ") +
                            e.what());
  }
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    using Action = OnlineManager::Decision::Action;
    if (report.decision.action == Action::Reuse) ++impl_->reuses;
    if (report.decision.action == Action::NewModel) ++impl_->compressions;
    if (report.decision.action == Action::Failure) ++impl_->failures;
  }

  const StatusOr<std::span<const double>> theta =
      impl_->manager.theta_for_decision(report.decision);
  std::vector<double> next_theta;
  if (theta.ok()) {
    next_theta.assign(theta->begin(), theta->end());
  } else {
    report.failure = theta.status();
    if (impl_->config.failure_policy ==
            ServiceConfig::FailurePolicy::kKeepServing ||
        report.decision.entry_index < 0) {
      // Guidance 2: keep the trusted epoch, hand the operator the report.
      report.swapped = false;
      report.epoch = active_epoch();
      return report;
    }
    // kServeMatched: install the matched-but-invalid model anyway.
    next_theta =
        impl_->manager.repository().entry(report.decision.entry_index).theta;
  }

  try {
    report.epoch = impl_->install_epoch(std::move(next_theta), calibration);
  } catch (const std::exception& e) {
    return Status::internal(std::string("cannot compile the new epoch: ") +
                            e.what());
  }
  report.swapped = true;
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    ++impl_->swaps;
  }
  return report;
}

std::uint64_t InferenceService::active_epoch() const {
  std::lock_guard<std::mutex> lock(impl_->epoch_mutex);
  return impl_->current_epoch_id;
}

std::vector<double> InferenceService::active_theta() const {
  std::lock_guard<std::mutex> lock(impl_->epoch_mutex);
  return impl_->current_theta;
}

ServingStats InferenceService::stats() const {
  ServingStats stats;
  {
    std::lock_guard<std::mutex> lock(impl_->stats_mutex);
    stats.swaps = impl_->swaps;
    stats.reuses = impl_->reuses;
    stats.compressions = impl_->compressions;
    stats.failures = impl_->failures;
  }
  for (const std::unique_ptr<ServingShard>& shard : impl_->shards) {
    const ShardStats s = shard->stats();
    stats.requests += s.requests;
    stats.batches += s.batches;
    stats.coalesced += s.coalesced;
    stats.shed += s.shed;
    stats.deadline_misses += s.deadline_misses;
    stats.queue_depth += s.queue_depth;
  }
  stats.cache_hits = impl_->cache.hits();
  stats.cache_lookups = impl_->cache.lookups();
  // Cache hits short-circuit the shards, but they are served requests all
  // the same.
  stats.requests += stats.cache_hits;
  return stats;
}

std::vector<ShardStats> InferenceService::shard_stats() const {
  std::vector<ShardStats> stats;
  stats.reserve(impl_->shards.size());
  for (const std::unique_ptr<ServingShard>& shard : impl_->shards) {
    stats.push_back(shard->stats());
  }
  return stats;
}

RepositorySnapshot InferenceService::repository_snapshot() const {
  // The calibration lock serializes against on_calibration: the snapshot
  // can never observe a half-applied repository decision.
  std::lock_guard<std::mutex> admin(impl_->admin_mutex);
  RepositorySnapshot snapshot;
  snapshot.entries = impl_->manager.repository().size();
  snapshot.threshold = impl_->manager.repository().threshold();
  snapshot.optimizations = impl_->manager.optimizations_run();
  snapshot.reuses = impl_->manager.reuses();
  snapshot.total_optimize_seconds = impl_->manager.total_optimize_seconds();
  return snapshot;
}

const OnlineManager& InferenceService::manager() const {
  return impl_->manager;
}

MethodResult run_longitudinal(InferenceService& service, const Dataset& test,
                              const std::vector<Calibration>& online_days,
                              const HarnessOptions& options) {
  require(!online_days.empty(), "no online days to evaluate");
  require(test.size() > 0, "empty test set");
  require(options.serve_clients >= 1,
          "serve_clients must be at least 1");

  MethodResult result;
  result.method = "InferenceService";
  result.daily_accuracy.reserve(online_days.size());

  // One day's traffic through the async serving path: `serve_clients`
  // submitters interleave the test set, each issuing submit_async and
  // gathering. Shed requests (bounded queue full) are retried with backoff
  // — the harness wants every sample's answer, so admission control
  // throttles it rather than dropping samples.
  const auto classify_day = [&]() -> std::vector<int> {
    std::vector<int> labels(test.size(), -1);
    std::vector<Status> failures(
        static_cast<std::size_t>(options.serve_clients));
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(options.serve_clients));
    for (int c = 0; c < options.serve_clients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = static_cast<std::size_t>(c); i < test.size();
             i += static_cast<std::size_t>(options.serve_clients)) {
          for (int attempt = 0;; ++attempt) {
            StatusOr<Prediction> prediction =
                service.submit_async(test.features[i]).get();
            if (prediction.ok()) {
              labels[i] = prediction->label;
              break;
            }
            if (prediction.status().code() !=
                    StatusCode::kResourceExhausted ||
                attempt >= 10000) {
              failures[static_cast<std::size_t>(c)] = prediction.status();
              return;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    for (const Status& status : failures) {
      if (!status.ok()) require(false, status.to_string());
    }
    return labels;
  };

  for (std::size_t d = 0; d < online_days.size();
       d += static_cast<std::size_t>(options.day_stride)) {
    const StatusOr<CalibrationReport> report =
        service.on_calibration(online_days[d]);
    if (!report.ok()) require(false, report.status().to_string());
    result.online_optimize_seconds += report->decision.optimize_seconds;
    if (report->decision.action ==
        OnlineManager::Decision::Action::NewModel) {
      ++result.optimizations;
    }

    const std::vector<int> labels = classify_day();
    std::size_t correct = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == test.labels[i]) ++correct;
    }
    result.daily_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(test.size()));
  }

  result.metrics = summarize_series(result.daily_accuracy);
  return result;
}

}  // namespace qucad
