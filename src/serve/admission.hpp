#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace qucad {

/// Load-shedding and deadline policy shared by every shard of one
/// InferenceService. The bounded per-shard queue does the actual admission
/// (BoundedQueue::try_push against its capacity); this object turns the two
/// overload outcomes into the serving error model and counts them:
///
///  - queue full at submission  -> kResourceExhausted (shed, never queued)
///  - deadline budget elapsed while queued -> kDeadlineExceeded (failed at
///    dispatch, never executed)
///
/// Shedding at the door bounds queue memory AND tail latency: a saturated
/// service answers "overloaded" in microseconds instead of letting p99 grow
/// with the backlog. Time is read through an injectable Clock so deadline
/// semantics are testable without sleeps.
class AdmissionController {
 public:
  /// `deadline_budget` of zero disables deadline enforcement. `clock` is
  /// borrowed (nullptr = Clock::system()) and must outlive the controller.
  explicit AdmissionController(std::chrono::microseconds deadline_budget,
                               const Clock* clock = nullptr)
      : deadline_budget_(deadline_budget),
        clock_(clock != nullptr ? *clock : Clock::system()) {}

  /// Timestamp a request at submission; compared against the budget at
  /// dispatch time.
  Clock::TimePoint stamp() const { return clock_.now(); }

  /// The shed verdict for a request bounced off a full shard queue.
  /// Counts it and returns the kResourceExhausted the caller propagates.
  Status shed(std::size_t shard, std::size_t queue_capacity);

  /// Dispatch-time gate: OK while the request's budget has time left,
  /// kDeadlineExceeded (counted) once `enqueued + deadline_budget` is past.
  Status admit_for_execution(Clock::TimePoint enqueued);

  std::uint64_t shed_count() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::uint64_t deadline_misses() const {
    return deadline_misses_.load(std::memory_order_relaxed);
  }

  std::chrono::microseconds deadline_budget() const { return deadline_budget_; }

 private:
  const std::chrono::microseconds deadline_budget_;
  const Clock& clock_;
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_misses_{0};
};

}  // namespace qucad
