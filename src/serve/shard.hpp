#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "backend/backend.hpp"
#include "common/bounded_queue.hpp"
#include "common/status.hpp"
#include "noise/calibration.hpp"
#include "serve/admission.hpp"
#include "serve/service_config.hpp"

namespace qucad {

class ResultCache;

/// One classified request.
struct Prediction {
  /// argmax over `logits` — the predicted class.
  int label = -1;
  /// Class logits, read positionally per the readout-slot contract: entry k
  /// is `<Z>` of readout slot k (class k), never indexed by qubit id.
  std::vector<double> logits;
  /// The serving epoch that produced this prediction. Every request of one
  /// micro-batch carries the same epoch, and a hot-swap never changes the
  /// epoch of an in-flight batch.
  std::uint64_t epoch = 0;
  /// Execution regime that produced the logits (the epoch's configured
  /// backend): exact density noise, noise-free statevector, or finite-shot
  /// sampled readout. Lets downstream consumers weigh a prediction by how
  /// it was computed.
  BackendKind backend = BackendKind::kDensityNoisy;
};

/// One immutable serving snapshot. A hot-swap replaces each shard's
/// shared_ptr; batches that already hold a snapshot finish on it untouched.
/// Shards serving the same calibration event share the epoch id but hold
/// their own ExecutionBackend instance (resolved per shard through the
/// registry; the compiled program underneath is shared via the executor
/// cache).
struct Epoch {
  std::uint64_t id = 0;
  std::vector<double> theta;
  Calibration calibration;
  std::shared_ptr<const ExecutionBackend> backend;
};

/// Deterministic request-to-shard assignment: FNV-1a over the feature bit
/// patterns, reduced mod `num_shards`. The same feature vector routes to
/// the same shard on every call, every service instance, every process —
/// the fallback the least-loaded router uses to break ties, and the whole
/// policy under RoutingPolicy::kHash.
std::size_t route_by_hash(std::span<const double> features,
                          std::size_t num_shards);

/// Monitoring snapshot of one shard (all counters relaxed-atomic reads).
struct ShardStats {
  std::uint64_t requests = 0;         ///< samples served by this shard's sweeps
  std::uint64_t batches = 0;          ///< compiled sweeps executed
  std::uint64_t coalesced = 0;        ///< requests that shared a sweep
  std::uint64_t shed = 0;             ///< requests bounced off the full queue
  std::uint64_t deadline_misses = 0;  ///< requests expired while queued
  std::uint64_t queue_depth = 0;      ///< instantaneous backlog
};

/// One serving shard: a bounded request queue, a micro-batch dispatcher
/// thread, and an atomically hot-swappable epoch pointer. The
/// InferenceService routes submit_async() requests across N of these; each
/// shard is single-consumer by construction, so the dispatcher needs no
/// coordination with its peers — the only cross-shard state is the shared
/// AdmissionController (global shed/deadline accounting) and the optional
/// ResultCache.
class ServingShard {
 public:
  /// `config`, `admission` and `cache` are borrowed and must outlive the
  /// shard (the owning service guarantees it). `cache` may be null.
  ServingShard(std::size_t index, const ServiceConfig& config,
               AdmissionController& admission, ResultCache* cache);

  /// Closes the queue, drains in-flight requests, joins the dispatcher.
  ~ServingShard();

  ServingShard(const ServingShard&) = delete;
  ServingShard& operator=(const ServingShard&) = delete;

  /// Spawns the dispatcher. Called once, after the first epoch is
  /// installed — the dispatcher assumes epoch() is never null.
  void start();

  /// Atomically publishes a new epoch for subsequent batches; the batch the
  /// dispatcher is currently sweeping keeps the snapshot it grabbed.
  void install_epoch(std::shared_ptr<const Epoch> epoch);

  std::shared_ptr<const Epoch> epoch() const;

  /// Admission-controlled enqueue. The future resolves with the
  /// prediction, kResourceExhausted (queue full — never queued),
  /// kDeadlineExceeded (expired while queued), or kUnavailable (shutdown).
  /// Features are validated by the service before routing.
  std::future<StatusOr<Prediction>> enqueue(std::vector<double> features);

  /// One synchronous compiled sweep on `epoch` (the caller-assembled
  /// submit_batch path — bypasses the queue, counted against this shard).
  /// Throws on library invariant failures; the service converts to Status.
  std::vector<Prediction> run_batch(const Epoch& epoch,
                                    std::span<const std::vector<double>> xs);

  std::size_t index() const { return index_; }
  std::size_t queue_depth() const { return queue_.size(); }
  ShardStats stats() const;

 private:
  struct QueuedRequest {
    std::vector<double> features;
    std::promise<StatusOr<Prediction>> promise;
    Clock::TimePoint enqueued;
  };

  void dispatch_loop();
  void serve_pending(std::vector<QueuedRequest>& batch);

  const std::size_t index_;
  const ServiceConfig& config_;
  AdmissionController& admission_;
  ResultCache* cache_;

  mutable std::mutex epoch_mutex_;
  std::shared_ptr<const Epoch> epoch_;  // never null once start()ed

  BoundedQueue<QueuedRequest> queue_;
  std::thread dispatcher_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> deadline_misses_{0};
};

}  // namespace qucad
