#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "backend/backend.hpp"
#include "common/status.hpp"
#include "core/strategy.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "repo/manager.hpp"
#include "serve/service_config.hpp"

namespace qucad {

/// One classified request.
struct Prediction {
  /// argmax over `logits` — the predicted class.
  int label = -1;
  /// Class logits, read positionally per the readout-slot contract: entry k
  /// is `<Z>` of readout slot k (class k), never indexed by qubit id.
  std::vector<double> logits;
  /// The serving epoch that produced this prediction. Every request of one
  /// micro-batch carries the same epoch, and a hot-swap never changes the
  /// epoch of an in-flight batch.
  std::uint64_t epoch = 0;
  /// Execution regime that produced the logits (the epoch's configured
  /// backend): exact density noise, noise-free statevector, or finite-shot
  /// sampled readout. Lets downstream consumers weigh a prediction by how
  /// it was computed.
  BackendKind backend = BackendKind::kDensityNoisy;
};

/// What a calibration event did to the service.
struct CalibrationReport {
  /// The repository decision (reuse / new model / Guidance-2 failure).
  OnlineManager::Decision decision;
  /// The epoch serving AFTER the event (unchanged when swapped is false).
  std::uint64_t epoch = 0;
  /// True when the event installed a new executor.
  bool swapped = false;
  /// OK unless the matched cluster was invalid (Guidance 2); then the
  /// kUnavailable status an operator should alert on. With
  /// FailurePolicy::kKeepServing the old epoch keeps serving; with
  /// kServeMatched the weak matched model was installed despite this.
  Status failure;
};

/// Monitoring counters; all reads are thread-safe snapshots.
struct ServingStats {
  std::uint64_t requests = 0;        ///< submit() + submit_batch() samples
  std::uint64_t batches = 0;         ///< compiled batch sweeps executed
  std::uint64_t coalesced = 0;       ///< submit() requests that shared a sweep
  std::uint64_t swaps = 0;           ///< epochs installed (including the first)
  std::uint64_t reuses = 0;          ///< calibration events answered from the repository
  std::uint64_t compressions = 0;    ///< calibration events that compressed a new model
  std::uint64_t failures = 0;        ///< Guidance-2 failure reports
};

/// Thread-safe online serving surface for a compressed-model repository —
/// the deployment shape of the paper's Sec. III-D loop ("each day's
/// calibration picks a model; requests are classified under that day's
/// noise"):
///
///  - `create` validates its inputs (Status, not aborts) and takes
///    ownership of the model, routing, training data and repository BY
///    VALUE: the service cannot dangle, whatever the caller does with the
///    setup-scope objects it was built from.
///  - `submit` / `submit_batch` classify feature vectors on the epoch's
///    compiled ExecutionBackend (the exact density-matrix engine by
///    default; `ServiceConfig::eval.backend` selects noise-free or
///    finite-shot sampled serving). Concurrent `submit` callers are
///    micro-batched:
///    a dispatcher coalesces up to `max_batch_size` waiting requests
///    (waiting at most `batch_window` for stragglers) into ONE
///    `run_z_batch` sweep spread over the shared ThreadPool.
///  - `on_calibration` runs the repository decision for a new calibration
///    snapshot (reuse / compress-new / failure report) and atomically
///    hot-swaps the active compiled backend: epochs are immutable
///    shared_ptr snapshots, so in-flight batches finish on the program they
///    started with and every prediction names the epoch that produced it.
///
/// Concurrency contract: `submit`, `submit_batch`, `active_epoch` and
/// `stats` may be called from any number of threads, concurrently with one
/// another and with `on_calibration`. `on_calibration` itself is serialized
/// internally (events are processed one at a time, in arrival order).
/// `manager()` exposes the underlying repository state for inspection and
/// is NOT synchronized against concurrent `on_calibration` — monitoring
/// loops should read `stats()` instead.
///
/// With an expectation backend (the default exact density engine, or
/// kPureStatevector) predictions are exact: a request's logits are
/// bitwise-identical however requests are split into micro-batches and
/// whatever pool serves them. Shot-sampled serving (legacy `eval.shots > 0`
/// on the density engine, or the kSampled backend) draws each batch's RNG
/// streams from the batch layout (sample i of a batch samples from
/// seed + i), so determinism then holds only for a fixed request->batch
/// assignment.
class InferenceService {
 public:
  /// Builds a service serving `env.model` (routed as `env.transpiled`,
  /// pretrained at `env.theta_pretrained`) against `repository`. The first
  /// epoch compiles the pretrained parameters under `initial_calibration`;
  /// feed subsequent calibration snapshots through on_calibration. Pass an
  /// empty repository to bootstrap online (Table-I "QuCAD w/o offline").
  ///
  /// When `config` is not given it is consolidated from the environment
  /// (ServiceConfig::from_environment), so the service evaluates exactly
  /// like the research harness evaluated `env`.
  static StatusOr<InferenceService> create(
      Environment env, ModelRepository repository,
      const Calibration& initial_calibration,
      std::optional<ServiceConfig> config = std::nullopt);

  /// Drains in-flight requests, then stops the dispatcher.
  ~InferenceService();

  InferenceService(InferenceService&&) noexcept;
  InferenceService& operator=(InferenceService&&) noexcept;
  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Classifies one feature vector. Blocks until the result is ready —
  /// concurrent callers are coalesced into shared compiled sweeps. Returns
  /// kInvalidArgument for a malformed request (wrong feature arity) and
  /// kUnavailable once the service is shutting down.
  StatusOr<Prediction> submit(std::vector<double> features);

  /// Classifies a caller-assembled batch through one compiled sweep,
  /// bypassing the coalescing window (the batch is already a batch).
  /// All-or-nothing validation: any malformed sample fails the whole call.
  StatusOr<std::vector<Prediction>> submit_batch(
      std::span<const std::vector<double>> batch);

  /// Processes one calibration snapshot: repository match -> reuse, or
  /// online noise-aware compression -> new repository entry, or Guidance-2
  /// failure report — then hot-swaps the active executor (subject to
  /// FailurePolicy). Slow on compression days by design; requests keep
  /// being served from the current epoch throughout.
  StatusOr<CalibrationReport> on_calibration(const Calibration& calibration);

  /// Id of the epoch currently serving (monotonically increasing from 1).
  std::uint64_t active_epoch() const;

  /// Parameters the active epoch serves (the repository entry installed by
  /// the last swap, or the pretrained theta before any swap).
  std::vector<double> active_theta() const;

  ServingStats stats() const;

  /// Repository/decision state. Not synchronized against a concurrent
  /// on_calibration — single-threaded inspection only.
  const OnlineManager& manager() const;

 private:
  struct Impl;
  explicit InferenceService(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Serving-layer counterpart of the strategy harness: feeds each day's
/// calibration through on_calibration, classifies `test` with submit_batch
/// under that day's noise, and summarizes the daily accuracy series like
/// eval/harness run_longitudinal does for a Strategy.
MethodResult run_longitudinal(InferenceService& service, const Dataset& test,
                              const std::vector<Calibration>& online_days,
                              const HarnessOptions& options = {});

}  // namespace qucad
