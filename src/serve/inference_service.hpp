#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "backend/backend.hpp"
#include "common/status.hpp"
#include "core/strategy.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "repo/manager.hpp"
#include "serve/service_config.hpp"
#include "serve/shard.hpp"

namespace qucad {

/// What a calibration event did to the service.
struct CalibrationReport {
  /// The repository decision (reuse / new model / Guidance-2 failure).
  OnlineManager::Decision decision;
  /// The epoch serving AFTER the event (unchanged when swapped is false).
  std::uint64_t epoch = 0;
  /// True when the event installed a new executor.
  bool swapped = false;
  /// OK unless the matched cluster was invalid (Guidance 2); then the
  /// kUnavailable status an operator should alert on. With
  /// FailurePolicy::kKeepServing the old epoch keeps serving; with
  /// kServeMatched the weak matched model was installed despite this.
  Status failure;
};

/// Monitoring counters; all reads are thread-safe snapshots. Serving-path
/// counters (requests/batches/coalesced/shed/deadline_misses/queue_depth)
/// aggregate over every shard plus the direct submit_batch path.
struct ServingStats {
  std::uint64_t requests = 0;        ///< samples served (submit* variants)
  std::uint64_t batches = 0;         ///< compiled batch sweeps executed
  std::uint64_t coalesced = 0;       ///< async requests that shared a sweep
  std::uint64_t swaps = 0;           ///< epochs installed (including the first)
  std::uint64_t reuses = 0;          ///< calibration events answered from the repository
  std::uint64_t compressions = 0;    ///< calibration events that compressed a new model
  std::uint64_t failures = 0;        ///< Guidance-2 failure reports
  std::uint64_t shed = 0;            ///< requests refused with kResourceExhausted
  std::uint64_t deadline_misses = 0; ///< requests expired (kDeadlineExceeded) while queued
  std::uint64_t queue_depth = 0;     ///< instantaneous backlog across all shards
  std::uint64_t cache_hits = 0;      ///< requests answered from the result cache
  std::uint64_t cache_lookups = 0;   ///< result-cache probes (hits + misses)
};

/// Synchronized repository/decision snapshot, taken under the calibration
/// lock — the supported way for monitoring loops to observe repository
/// state while on_calibration events race (the `manager()` accessor is NOT
/// synchronized; see its comment).
struct RepositorySnapshot {
  std::size_t entries = 0;            ///< models stored in the repository
  double threshold = 0.0;             ///< current match threshold
  int optimizations = 0;              ///< online compressions run so far
  int reuses = 0;                     ///< days answered by a stored model
  double total_optimize_seconds = 0.0;///< cumulative online-compression cost
};

/// Thread-safe online serving surface for a compressed-model repository —
/// the deployment shape of the paper's Sec. III-D loop ("each day's
/// calibration picks a model; requests are classified under that day's
/// noise"):
///
///  - `create` validates its inputs (Status, not aborts) and takes
///    ownership of the model, routing, training data and repository BY
///    VALUE: the service cannot dangle, whatever the caller does with the
///    setup-scope objects it was built from.
///  - `submit_async` never blocks on the batch window: the request is
///    routed to one of `ServiceConfig::num_shards` independent shards
///    (least-loaded, with a deterministic feature-hash fallback — or pure
///    hash routing under RoutingPolicy::kHash) and the caller gets a
///    future. Each shard owns a BOUNDED queue and its own micro-batch
///    dispatcher: a full queue sheds the request with kResourceExhausted
///    instead of queuing unboundedly, and a request still queued past
///    `deadline_budget` fails with kDeadlineExceeded instead of executing
///    late — under overload the service degrades by refusing work in
///    microseconds, not by letting tail latency collapse. An optional
///    epoch-keyed result cache answers repeated (quantized) feature
///    vectors without queueing at all. `submit` is a thin blocking shim
///    (`submit_async(...).get()`); `submit_batch` sweeps a caller-assembled
///    batch directly on one shard's epoch, bypassing queue and window.
///  - `on_calibration` runs the repository decision for a new calibration
///    snapshot (reuse / compress-new / failure report) and hot-swaps the
///    compiled backend shard by shard: epochs are immutable shared_ptr
///    snapshots (same id across shards, per-shard backend instance built
///    through the registry), so in-flight batches finish on the program
///    they started with and every prediction names the epoch that produced
///    it.
///
/// Concurrency contract: `submit`, `submit_async`, `submit_batch`,
/// `active_epoch`, `stats`, `shard_stats` and `repository_snapshot` may be
/// called from any number of threads, concurrently with one another and
/// with `on_calibration`. `on_calibration` itself is serialized internally
/// (events are processed one at a time, in arrival order). `manager()`
/// exposes the underlying repository object for single-threaded inspection
/// and is NOT synchronized against concurrent `on_calibration` — monitoring
/// loops read `stats()` / `repository_snapshot()` instead.
///
/// With an expectation backend (the default exact density engine, or
/// kPureStatevector) predictions are exact: a request's logits are
/// bitwise-identical however requests are split into micro-batches and
/// whatever pool serves them. Shot-sampled serving (legacy `eval.shots > 0`
/// on the density engine, or the kSampled backend) draws each batch's RNG
/// streams from the batch layout (sample i of a batch samples from
/// seed + i), so determinism then holds only for a fixed request->batch
/// assignment.
class InferenceService {
 public:
  /// Builds a service serving `env.model` (routed as `env.transpiled`,
  /// pretrained at `env.theta_pretrained`) against `repository`. The first
  /// epoch compiles the pretrained parameters under `initial_calibration`;
  /// feed subsequent calibration snapshots through on_calibration. Pass an
  /// empty repository to bootstrap online (Table-I "QuCAD w/o offline").
  ///
  /// When `config` is not given it is consolidated from the environment
  /// (ServiceConfig::from_environment), so the service evaluates exactly
  /// like the research harness evaluated `env`.
  static StatusOr<InferenceService> create(
      Environment env, ModelRepository repository,
      const Calibration& initial_calibration,
      std::optional<ServiceConfig> config = std::nullopt);

  /// Drains in-flight requests, then stops the dispatcher.
  ~InferenceService();

  InferenceService(InferenceService&&) noexcept;
  InferenceService& operator=(InferenceService&&) noexcept;
  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  /// Classifies one feature vector without blocking on the batch window:
  /// the request is admission-checked, routed to a shard, and the caller
  /// gets a future that resolves when the shard's dispatcher sweeps it (or
  /// immediately, on a result-cache hit). The future carries
  /// kInvalidArgument for a malformed request (wrong feature arity; never
  /// enqueued), kResourceExhausted when the routed shard's queue is full
  /// (shed; never enqueued), kDeadlineExceeded when the request out-waited
  /// its `deadline_budget` in the queue, and kUnavailable once the service
  /// is shutting down. The returned future is always valid and always
  /// resolves — errors arrive through it, not as exceptions.
  std::future<StatusOr<Prediction>> submit_async(std::vector<double> features);

  /// Blocking shim over submit_async: classifies one feature vector and
  /// waits for the result. Concurrent callers are coalesced into shared
  /// compiled sweeps by the shard dispatchers.
  StatusOr<Prediction> submit(std::vector<double> features);

  /// Classifies a caller-assembled batch through one compiled sweep,
  /// bypassing the coalescing window (the batch is already a batch).
  /// All-or-nothing validation: any malformed sample fails the whole call.
  StatusOr<std::vector<Prediction>> submit_batch(
      std::span<const std::vector<double>> batch);

  /// Processes one calibration snapshot: repository match -> reuse, or
  /// online noise-aware compression -> new repository entry, or Guidance-2
  /// failure report — then hot-swaps the active executor (subject to
  /// FailurePolicy). Slow on compression days by design; requests keep
  /// being served from the current epoch throughout.
  StatusOr<CalibrationReport> on_calibration(const Calibration& calibration);

  /// Id of the epoch currently serving (monotonically increasing from 1).
  std::uint64_t active_epoch() const;

  /// Parameters the active epoch serves (the repository entry installed by
  /// the last swap, or the pretrained theta before any swap).
  std::vector<double> active_theta() const;

  ServingStats stats() const;

  /// Per-shard monitoring counters, index-aligned with the configured
  /// shards. Routing tests and dashboards read these to see how the router
  /// spread the traffic.
  std::vector<ShardStats> shard_stats() const;

  /// Repository/decision state, snapshotted under the calibration lock —
  /// safe to call from monitoring loops while on_calibration events race.
  RepositorySnapshot repository_snapshot() const;

  /// Repository/decision state as a live reference. Not synchronized
  /// against a concurrent on_calibration — single-threaded inspection only
  /// (tests, post-shutdown analysis). Monitoring loops use
  /// repository_snapshot() / stats() instead.
  const OnlineManager& manager() const;

 private:
  struct Impl;
  explicit InferenceService(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// Serving-layer counterpart of the strategy harness: feeds each day's
/// calibration through on_calibration, classifies `test` through the async
/// serving path (`options.serve_clients` concurrent submitters issuing
/// submit_async and gathering futures; shed requests are retried with
/// backoff, so a bounded queue only throttles the harness, never drops a
/// sample) under that day's noise, and summarizes the daily accuracy
/// series like eval/harness run_longitudinal does for a Strategy. With an
/// expectation backend the result is independent of shard count and client
/// concurrency.
MethodResult run_longitudinal(InferenceService& service, const Dataset& test,
                              const std::vector<Calibration>& online_days,
                              const HarnessOptions& options = {});

}  // namespace qucad
