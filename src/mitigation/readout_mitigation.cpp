#include "mitigation/readout_mitigation.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace qucad {

ReadoutMitigator::ReadoutMitigator(std::span<const ReadoutError> errors) {
  inverse_.reserve(errors.size());
  for (const ReadoutError& e : errors) {
    // M = [[1-p10, p01], [p10, 1-p01]] maps true -> measured probabilities
    // (columns are true states).
    const double a = 1.0 - e.p1_given_0;  // P(read 0 | true 0)
    const double b = e.p0_given_1;        // P(read 0 | true 1)
    const double c = e.p1_given_0;        // P(read 1 | true 0)
    const double d = 1.0 - e.p0_given_1;  // P(read 1 | true 1)
    const double det = a * d - b * c;
    require(std::abs(det) > 1e-9, "readout confusion matrix is singular");
    inverse_.push_back({d / det, -b / det, -c / det, a / det});
  }
}

std::vector<double> ReadoutMitigator::apply(std::vector<double> probs) const {
  const std::size_t dim = probs.size();
  require(dim == (std::size_t{1} << inverse_.size()),
          "probability vector size mismatch");
  std::vector<double> next(dim);
  for (std::size_t q = 0; q < inverse_.size(); ++q) {
    const auto& inv = inverse_[q];
    if (inv[0] == 1.0 && inv[1] == 0.0 && inv[2] == 0.0 && inv[3] == 1.0) {
      continue;
    }
    const std::size_t mq = std::size_t{1} << q;
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t i = 0; i < dim; ++i) {
      const std::size_t i0 = i & ~mq;
      const std::size_t i1 = i | mq;
      if (i & mq) continue;
      const double p0 = probs[i0];
      const double p1 = probs[i1];
      next[i0] = inv[0] * p0 + inv[1] * p1;
      next[i1] = inv[2] * p0 + inv[3] * p1;
    }
    probs.swap(next);
  }
  // Clip quasi-probabilities back onto the simplex.
  double total = 0.0;
  for (double& p : probs) {
    p = std::max(p, 0.0);
    total += p;
  }
  if (total > 0.0) {
    for (double& p : probs) p /= total;
  }
  return probs;
}

double ReadoutMitigator::mitigated_expectation_z(const std::vector<double>& probs,
                                                 int q) const {
  const std::vector<double> mitigated = apply(probs);
  const std::size_t mq = std::size_t{1} << q;
  double acc = 0.0;
  for (std::size_t i = 0; i < mitigated.size(); ++i) {
    acc += (i & mq) ? -mitigated[i] : mitigated[i];
  }
  return acc;
}

}  // namespace qucad
