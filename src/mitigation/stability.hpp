#pragma once

#include <span>
#include <vector>

namespace qucad {

/// Stability / reproducibility metrics of refs [20-22]: quantify how far a
/// noisy device's output distribution sits from the ideal one and how
/// reproducible it is across days. QuCAD's premise — results drift beyond
/// usable bounds — is exactly what these metrics measure.

/// Hellinger distance between two probability distributions, in [0, 1].
double hellinger_distance(std::span<const double> p, std::span<const double> q);

/// Computational accuracy of [21]: 1 - H^2 (1 = ideal reproduction).
double computational_accuracy(std::span<const double> ideal,
                              std::span<const double> noisy);

/// Reproducibility across a series of daily distributions: mean pairwise
/// Hellinger distance to the series' elementwise-mean distribution
/// (0 = every day identical).
double reproducibility_spread(const std::vector<std::vector<double>>& daily);

}  // namespace qucad
