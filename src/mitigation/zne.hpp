#pragma once

#include <span>
#include <vector>

#include "noise/calibration.hpp"
#include "noise/noise_model.hpp"
#include "transpile/physical.hpp"

namespace qucad {

struct ZneOptions {
  /// Noise amplification factors; gate error rates are multiplied by each
  /// factor and the observable is extrapolated back to zero noise.
  std::vector<double> scale_factors{1.0, 2.0, 3.0};
  NoiseModelOptions noise;
  /// Reuse compiled executors from CompiledEvalCache::global(), keyed per
  /// (circuit, scaled calibration, noise options). Repeated ZNE calls on the
  /// same day — every sample of an evaluation sweep — then compile each
  /// scale factor's executor once instead of once per call. Disable to force
  /// fresh builds (e.g. when benchmarking compilation itself).
  bool use_cache = true;
};

/// Zero-noise extrapolation [17]: executes the circuit at amplified noise
/// levels (rate scaling — the digital analogue of pulse stretching) and
/// Richardson-extrapolates each readout expectation to the zero-noise limit
/// with a least-squares linear fit over the scale factors.
///
/// Output follows the positional readout contract: entry k is the
/// extrapolated `<Z>` of readout SLOT k (circuit.readout_physical()[k], i.e.
/// class k) — ordered like NoisyExecutor::run_z, never indexed by qubit id.
///
/// This is the "mitigate at one moment" family the paper contrasts with
/// QuCAD: it reduces bias on a fixed calibration but must be re-run from
/// scratch whenever the noise drifts.
std::vector<double> zne_expectations(const PhysicalCircuit& circuit,
                                     const Calibration& calibration,
                                     std::span<const double> x,
                                     const ZneOptions& options = {});

/// Amplifies every error rate in a calibration by `factor` (clamped to
/// valid probability ranges). Exposed for tests.
Calibration scale_calibration_noise(const Calibration& calibration,
                                    double factor);

/// Least-squares linear fit extrapolated to x = 0. Exposed for tests.
double extrapolate_to_zero(std::span<const double> xs, std::span<const double> ys);

}  // namespace qucad
