#include "mitigation/zne.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "qnn/eval_cache.hpp"
#include "transpile/executor.hpp"

namespace qucad {

Calibration scale_calibration_noise(const Calibration& calibration,
                                    double factor) {
  require(factor >= 0.0, "noise scale factor must be non-negative");
  Calibration scaled(calibration.num_qubits(), calibration.edges());
  for (int q = 0; q < calibration.num_qubits(); ++q) {
    scaled.set_sx_error(q, std::min(calibration.sx_error(q) * factor, 0.99));
    const ReadoutError& ro = calibration.readout(q);
    scaled.set_readout(q, ReadoutError{std::min(ro.p1_given_0 * factor, 0.5),
                                       std::min(ro.p0_given_1 * factor, 0.5)});
    // Thermal relaxation scales via shorter effective T1/T2.
    const double t_scale = factor > 1e-9 ? 1.0 / factor : 1e6;
    const double t1 = std::clamp(calibration.t1_us(q) * t_scale, 1.0, 1e6);
    const double t2 =
        std::clamp(calibration.t2_us(q) * t_scale, 1.0, 2.0 * t1);
    scaled.set_t1_t2(q, t1, t2);
  }
  for (const auto& [a, b] : calibration.edges()) {
    scaled.set_cx_error(a, b, std::min(calibration.cx_error(a, b) * factor, 0.99));
  }
  return scaled;
}

double extrapolate_to_zero(std::span<const double> xs,
                           std::span<const double> ys) {
  require(xs.size() == ys.size() && xs.size() >= 2,
          "extrapolation needs at least two points");
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  require(std::abs(denom) > 1e-12, "degenerate scale factors");
  const double slope = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / n;
  return intercept;  // value at zero noise
}

std::vector<double> zne_expectations(const PhysicalCircuit& circuit,
                                     const Calibration& calibration,
                                     std::span<const double> x,
                                     const ZneOptions& options) {
  require(options.scale_factors.size() >= 2,
          "ZNE needs at least two scale factors");

  std::vector<std::vector<double>> z_by_scale;
  z_by_scale.reserve(options.scale_factors.size());
  for (double factor : options.scale_factors) {
    const Calibration scaled = scale_calibration_noise(calibration, factor);
    if (options.use_cache) {
      // One compiled executor per (circuit, scaled calibration): a sweep
      // over samples — or repeated days with the same calibration — pays
      // lowering + noise-model construction once per scale factor, not once
      // per factor per call.
      const std::shared_ptr<const NoisyExecutor> executor =
          CompiledEvalCache::global().get_or_build_physical(circuit, scaled,
                                                            options.noise);
      z_by_scale.push_back(executor->run_z(x));
    } else {
      const NoisyExecutor executor(circuit, NoiseModel(scaled, options.noise));
      z_by_scale.push_back(executor.run_z(x));
    }
  }

  const std::size_t num_readouts = z_by_scale.front().size();
  std::vector<double> extrapolated(num_readouts);
  std::vector<double> ys(options.scale_factors.size());
  for (std::size_t q = 0; q < num_readouts; ++q) {
    for (std::size_t s = 0; s < options.scale_factors.size(); ++s) {
      ys[s] = z_by_scale[s][q];
    }
    // <Z> is bounded; clamp the linear extrapolation accordingly.
    extrapolated[q] =
        std::clamp(extrapolate_to_zero(options.scale_factors, ys), -1.0, 1.0);
  }
  return extrapolated;
}

}  // namespace qucad
