#pragma once

#include <array>
#include <span>
#include <vector>

#include "noise/calibration.hpp"

namespace qucad {

/// Classical readout-error mitigation (the post-processing family of
/// related work [18]): inverts the per-qubit assignment confusion matrix
///   M = [[1-p10, p01], [p10, 1-p01]]
/// and applies M^-1 to measured probabilities. Exact when the confusion is
/// uncorrelated across qubits (our noise model's assumption); quasi-
/// probabilities are clipped to the simplex afterwards.
class ReadoutMitigator {
 public:
  explicit ReadoutMitigator(std::span<const ReadoutError> errors);

  /// Mitigates a 2^n basis-probability vector in place and returns it.
  std::vector<double> apply(std::vector<double> probs) const;

  /// Mitigated <Z_q>.
  double mitigated_expectation_z(const std::vector<double>& probs, int q) const;

  int num_qubits() const { return static_cast<int>(inverse_.size()); }

 private:
  // Per-qubit inverse confusion matrix, row-major 2x2.
  std::vector<std::array<double, 4>> inverse_;
};

}  // namespace qucad
