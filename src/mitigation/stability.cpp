#include "mitigation/stability.hpp"

#include <cmath>

#include "common/require.hpp"

namespace qucad {

double hellinger_distance(std::span<const double> p, std::span<const double> q) {
  require(p.size() == q.size() && !p.empty(),
          "distributions must be equal-length and non-empty");
  double bc = 0.0;  // Bhattacharyya coefficient
  for (std::size_t i = 0; i < p.size(); ++i) {
    bc += std::sqrt(std::max(p[i], 0.0) * std::max(q[i], 0.0));
  }
  return std::sqrt(std::max(0.0, 1.0 - std::min(bc, 1.0)));
}

double computational_accuracy(std::span<const double> ideal,
                              std::span<const double> noisy) {
  const double h = hellinger_distance(ideal, noisy);
  return 1.0 - h * h;
}

double reproducibility_spread(const std::vector<std::vector<double>>& daily) {
  require(!daily.empty(), "need at least one distribution");
  const std::size_t dim = daily.front().size();
  std::vector<double> mean_dist(dim, 0.0);
  for (const auto& day : daily) {
    require(day.size() == dim, "distribution size mismatch");
    for (std::size_t i = 0; i < dim; ++i) mean_dist[i] += day[i];
  }
  for (double& v : mean_dist) v /= static_cast<double>(daily.size());

  double total = 0.0;
  for (const auto& day : daily) total += hellinger_distance(mean_dist, day);
  return total / static_cast<double>(daily.size());
}

}  // namespace qucad
