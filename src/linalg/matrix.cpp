#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace qucad {

CMat::CMat(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

CMat::CMat(std::size_t rows, std::size_t cols, std::initializer_list<cplx> values)
    : CMat(rows, cols) {
  require(values.size() == rows * cols, "CMat initializer size mismatch");
  std::copy(values.begin(), values.end(), data_.begin());
}

CMat CMat::identity(std::size_t n) {
  CMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

CMat CMat::zeros(std::size_t rows, std::size_t cols) { return CMat(rows, cols); }

CMat CMat::operator+(const CMat& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_, "CMat shape mismatch in +");
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

CMat CMat::operator-(const CMat& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_, "CMat shape mismatch in -");
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
  return out;
}

CMat CMat::operator*(const CMat& other) const {
  require(cols_ == other.rows_, "CMat shape mismatch in *");
  CMat out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = (*this)(r, k);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

CMat CMat::operator*(cplx scalar) const {
  CMat out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * scalar;
  return out;
}

CMat CMat::dagger() const {
  CMat out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = std::conj((*this)(r, c));
    }
  }
  return out;
}

cplx CMat::trace() const {
  require(rows_ == cols_, "trace requires a square matrix");
  cplx t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double CMat::frobenius_norm() const {
  double acc = 0.0;
  for (const cplx& x : data_) acc += std::norm(x);
  return std::sqrt(acc);
}

double CMat::max_abs_diff(const CMat& other) const {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "CMat shape mismatch in max_abs_diff");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool CMat::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  const CMat product = (*this) * dagger();
  return product.max_abs_diff(identity(rows_)) < tol;
}

bool CMat::is_hermitian(double tol) const {
  if (rows_ != cols_) return false;
  return max_abs_diff(dagger()) < tol;
}

std::vector<cplx> CMat::apply(const std::vector<cplx>& v) const {
  require(v.size() == cols_, "CMat::apply dimension mismatch");
  std::vector<cplx> out(rows_, cplx{0.0, 0.0});
  for (std::size_t r = 0; r < rows_; ++r) {
    cplx acc{0.0, 0.0};
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * v[c];
    out[r] = acc;
  }
  return out;
}

std::string CMat::to_string(int precision) const {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    out << "[";
    for (std::size_t c = 0; c < cols_; ++c) {
      const cplx& x = (*this)(r, c);
      out << " (" << x.real() << (x.imag() >= 0 ? "+" : "") << x.imag() << "i)";
    }
    out << " ]\n";
  }
  return out.str();
}

CMat kron(const CMat& a, const CMat& b) {
  CMat out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ar = 0; ar < a.rows(); ++ar) {
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      const cplx scale = a(ar, ac);
      if (scale == cplx{0.0, 0.0}) continue;
      for (std::size_t br = 0; br < b.rows(); ++br) {
        for (std::size_t bc = 0; bc < b.cols(); ++bc) {
          out(ar * b.rows() + br, ac * b.cols() + bc) = scale * b(br, bc);
        }
      }
    }
  }
  return out;
}

cplx inner(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  require(a.size() == b.size(), "inner product dimension mismatch");
  cplx acc{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

double norm(const std::vector<cplx>& v) {
  double acc = 0.0;
  for (const cplx& x : v) acc += std::norm(x);
  return std::sqrt(acc);
}

bool equal_up_to_global_phase(const std::vector<cplx>& a,
                              const std::vector<cplx>& b, double tol) {
  if (a.size() != b.size()) return false;
  // |<a|b>| == ||a||*||b|| iff the vectors are parallel.
  const double overlap = std::abs(inner(a, b));
  return std::abs(overlap - norm(a) * norm(b)) < tol;
}

}  // namespace qucad
