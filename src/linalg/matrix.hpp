#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace qucad {

using cplx = std::complex<double>;

/// Dense complex matrix, row-major. Sized for quantum operators on a handful
/// of qubits (2x2 .. 128x128); favors clarity and correctness over BLAS-level
/// tuning — the hot loops in the simulators use specialized kernels instead.
class CMat {
 public:
  CMat() = default;
  CMat(std::size_t rows, std::size_t cols);
  CMat(std::size_t rows, std::size_t cols, std::initializer_list<cplx> values);

  static CMat identity(std::size_t n);
  static CMat zeros(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  const std::vector<cplx>& data() const { return data_; }
  std::vector<cplx>& data() { return data_; }

  CMat operator+(const CMat& other) const;
  CMat operator-(const CMat& other) const;
  CMat operator*(const CMat& other) const;
  CMat operator*(cplx scalar) const;

  /// Conjugate transpose.
  CMat dagger() const;

  cplx trace() const;
  double frobenius_norm() const;

  /// Max |a_ij - b_ij|.
  double max_abs_diff(const CMat& other) const;

  bool is_unitary(double tol = 1e-10) const;
  bool is_hermitian(double tol = 1e-10) const;

  /// Apply to a column vector.
  std::vector<cplx> apply(const std::vector<cplx>& v) const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Kronecker (tensor) product a (x) b.
CMat kron(const CMat& a, const CMat& b);

/// Inner product <a|b> with conjugation on a.
cplx inner(const std::vector<cplx>& a, const std::vector<cplx>& b);

/// Euclidean norm of a complex vector.
double norm(const std::vector<cplx>& v);

/// True when two state vectors agree up to a global phase.
bool equal_up_to_global_phase(const std::vector<cplx>& a,
                              const std::vector<cplx>& b, double tol = 1e-9);

}  // namespace qucad
