#include "linalg/gates.hpp"

#include <cmath>

#include "common/require.hpp"

namespace qucad::gates {

namespace {
constexpr cplx kI{0.0, 1.0};
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

CMat I() { return CMat(2, 2, {1, 0, 0, 1}); }

CMat X() { return CMat(2, 2, {0, 1, 1, 0}); }

CMat Y() { return CMat(2, 2, {0, -kI, kI, 0}); }

CMat Z() { return CMat(2, 2, {1, 0, 0, -1}); }

CMat H() {
  return CMat(2, 2, {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2});
}

CMat S() { return CMat(2, 2, {1, 0, 0, kI}); }

CMat Sdg() { return CMat(2, 2, {1, 0, 0, -kI}); }

CMat T() { return CMat(2, 2, {1, 0, 0, std::exp(kI * (M_PI / 4.0))}); }

CMat SX() {
  // 0.5 * [[1+i, 1-i], [1-i, 1+i]]
  const cplx a{0.5, 0.5};
  const cplx b{0.5, -0.5};
  return CMat(2, 2, {a, b, b, a});
}

CMat SXdg() { return SX().dagger(); }

CMat RX(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return CMat(2, 2, {cplx{c, 0}, cplx{0, -s}, cplx{0, -s}, cplx{c, 0}});
}

CMat RY(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return CMat(2, 2, {cplx{c, 0}, cplx{-s, 0}, cplx{s, 0}, cplx{c, 0}});
}

CMat RZ(double theta) {
  const cplx em = std::exp(-kI * (theta / 2.0));
  const cplx ep = std::exp(kI * (theta / 2.0));
  return CMat(2, 2, {em, 0, 0, ep});
}

CMat P(double lambda) { return CMat(2, 2, {1, 0, 0, std::exp(kI * lambda)}); }

CMat U3(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return CMat(2, 2,
              {cplx{c, 0}, -std::exp(kI * lambda) * s,
               std::exp(kI * phi) * s, std::exp(kI * (phi + lambda)) * c});
}

CMat CX() {
  return CMat(4, 4,
              {1, 0, 0, 0,
               0, 1, 0, 0,
               0, 0, 0, 1,
               0, 0, 1, 0});
}

CMat CZ() {
  return CMat(4, 4,
              {1, 0, 0, 0,
               0, 1, 0, 0,
               0, 0, 1, 0,
               0, 0, 0, -1});
}

CMat SWAP() {
  return CMat(4, 4,
              {1, 0, 0, 0,
               0, 0, 1, 0,
               0, 1, 0, 0,
               0, 0, 0, 1});
}

CMat controlled(const CMat& u) {
  require(u.rows() == 2 && u.cols() == 2, "controlled() expects a 2x2 unitary");
  CMat out = CMat::identity(4);
  out(2, 2) = u(0, 0);
  out(2, 3) = u(0, 1);
  out(3, 2) = u(1, 0);
  out(3, 3) = u(1, 1);
  return out;
}

CMat CRX(double theta) { return controlled(RX(theta)); }

CMat CRY(double theta) { return controlled(RY(theta)); }

CMat CRZ(double theta) { return controlled(RZ(theta)); }

}  // namespace qucad::gates
