#pragma once

#include "linalg/matrix.hpp"

namespace qucad::gates {

// Fixed single-qubit gates (2x2).
CMat I();
CMat X();
CMat Y();
CMat Z();
CMat H();
CMat S();
CMat Sdg();
CMat T();
CMat SX();   // sqrt(X), the IBM basis pulse gate.
CMat SXdg();

// Parameterized single-qubit rotations: R_a(theta) = exp(-i theta a / 2).
CMat RX(double theta);
CMat RY(double theta);
CMat RZ(double theta);
CMat P(double lambda);  // phase gate diag(1, e^{i lambda})
CMat U3(double theta, double phi, double lambda);

// Two-qubit gates (4x4), control = first (most significant) qubit.
CMat CX();
CMat CZ();
CMat SWAP();
CMat CRX(double theta);
CMat CRY(double theta);
CMat CRZ(double theta);

/// Controlled version of any 2x2 unitary (control = first qubit).
CMat controlled(const CMat& u);

}  // namespace qucad::gates
