#include "sim/statevector.hpp"

#include <cmath>

#include "common/require.hpp"

namespace qucad {

std::array<cplx, 4> as_array2(const CMat& m) {
  require(m.rows() == 2 && m.cols() == 2, "as_array2 expects 2x2");
  return {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
}

std::array<cplx, 16> as_array4(const CMat& m) {
  require(m.rows() == 4 && m.cols() == 4, "as_array4 expects 4x4");
  std::array<cplx, 16> out;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) out[r * 4 + c] = m(r, c);
  }
  return out;
}

const std::array<cplx, 4>& sx_as_array2() {
  static const std::array<cplx, 4> m = as_array2(gates::SX());
  return m;
}

const std::array<cplx, 4>& x_as_array2() {
  static const std::array<cplx, 4> m = as_array2(gates::X());
  return m;
}

const std::array<cplx, 16>& cx_as_array4() {
  static const std::array<cplx, 16> m = as_array4(gates::CX());
  return m;
}

StateVector::StateVector(int num_qubits)
    : num_qubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, cplx{0.0, 0.0}) {
  require(num_qubits > 0 && num_qubits <= 20, "qubit count out of range");
  amps_[0] = 1.0;
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[0] = 1.0;
}

void StateVector::set_basis_state(std::size_t index) {
  require(index < amps_.size(), "basis state index out of range");
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[index] = 1.0;
}

void StateVector::apply1(int q, const std::array<cplx, 4>& m) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t dim = amps_.size();
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t offset = 0; offset < stride; ++offset) {
      const std::size_t i0 = base + offset;
      const std::size_t i1 = i0 + stride;
      const cplx a0 = amps_[i0];
      const cplx a1 = amps_[i1];
      amps_[i0] = m[0] * a0 + m[1] * a1;
      amps_[i1] = m[2] * a0 + m[3] * a1;
    }
  }
}

void StateVector::apply2(int q0, int q1, const std::array<cplx, 16>& m) {
  require(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 && q1 < num_qubits_ && q0 != q1,
          "invalid qubit pair");
  const std::size_t mask0 = std::size_t{1} << q0;
  const std::size_t mask1 = std::size_t{1} << q1;
  const std::size_t dim = amps_.size();
  for (std::size_t i = 0; i < dim; ++i) {
    if ((i & mask0) || (i & mask1)) continue;  // visit each 4-tuple once
    const std::size_t i00 = i;
    const std::size_t i01 = i | mask1;
    const std::size_t i10 = i | mask0;
    const std::size_t i11 = i | mask0 | mask1;
    const cplx a00 = amps_[i00];
    const cplx a01 = amps_[i01];
    const cplx a10 = amps_[i10];
    const cplx a11 = amps_[i11];
    // local basis order: |q0 q1> in {00, 01, 10, 11}
    amps_[i00] = m[0] * a00 + m[1] * a01 + m[2] * a10 + m[3] * a11;
    amps_[i01] = m[4] * a00 + m[5] * a01 + m[6] * a10 + m[7] * a11;
    amps_[i10] = m[8] * a00 + m[9] * a01 + m[10] * a10 + m[11] * a11;
    amps_[i11] = m[12] * a00 + m[13] * a01 + m[14] * a10 + m[15] * a11;
  }
}

void StateVector::apply_diag1(int q, cplx d0, cplx d1) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  const std::size_t mq = std::size_t{1} << q;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    amps_[i] *= (i & mq) ? d1 : d0;
  }
}

void StateVector::apply_cx(int control, int target) {
  require(control >= 0 && control < num_qubits_ && target >= 0 &&
              target < num_qubits_ && control != target,
          "invalid qubit pair");
  const std::size_t mc = std::size_t{1} << control;
  const std::size_t mt = std::size_t{1} << target;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if ((i & mc) && !(i & mt)) std::swap(amps_[i], amps_[i | mt]);
  }
}

void StateVector::apply_gate(const Gate& gate, double angle) {
  // Fast paths for the most common structured gates. They must enforce the
  // same qubit-range preconditions as apply1/apply2: an out-of-range shift
  // would otherwise index (and corrupt) memory past the amplitude buffer
  // instead of throwing.
  switch (gate.kind) {
    case GateKind::CX: {
      require(gate.q0 >= 0 && gate.q0 < num_qubits_ && gate.q1 >= 0 &&
                  gate.q1 < num_qubits_ && gate.q0 != gate.q1,
              "invalid qubit pair");
      const std::size_t mc = std::size_t{1} << gate.q0;
      const std::size_t mt = std::size_t{1} << gate.q1;
      for (std::size_t i = 0; i < amps_.size(); ++i) {
        if ((i & mc) && !(i & mt)) std::swap(amps_[i], amps_[i | mt]);
      }
      return;
    }
    case GateKind::RZ: {
      require(gate.q0 >= 0 && gate.q0 < num_qubits_,
              "qubit index out of range");
      const cplx em = std::exp(cplx{0.0, -angle / 2.0});
      const cplx ep = std::exp(cplx{0.0, angle / 2.0});
      const std::size_t mq = std::size_t{1} << gate.q0;
      for (std::size_t i = 0; i < amps_.size(); ++i) {
        amps_[i] *= (i & mq) ? ep : em;
      }
      return;
    }
    default:
      break;
  }
  const CMat m = gate_matrix(gate.kind, angle);
  if (gate.num_qubits() == 1) {
    apply1(gate.q0, as_array2(m));
  } else {
    apply2(gate.q0, gate.q1, as_array4(m));
  }
}

void StateVector::run(const Circuit& circuit, std::span<const double> theta,
                      std::span<const double> x) {
  require(circuit.num_qubits() == num_qubits_,
          "circuit qubit count mismatch");
  for (const Gate& g : circuit.gates()) {
    apply_gate(g, circuit.resolve_angle(g, theta, x));
  }
}

double StateVector::expectation_z(int q) const {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  const std::size_t mq = std::size_t{1} << q;
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const double p = std::norm(amps_[i]);
    acc += (i & mq) ? -p : p;
  }
  return acc;
}

std::vector<double> StateVector::all_z_expectations() const {
  std::vector<double> z(static_cast<std::size_t>(num_qubits_), 0.0);
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    const double p = std::norm(amps_[i]);
    for (int q = 0; q < num_qubits_; ++q) {
      z[static_cast<std::size_t>(q)] += (i >> q) & 1 ? -p : p;
    }
  }
  return z;
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> probs(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) probs[i] = std::norm(amps_[i]);
  return probs;
}

double StateVector::norm() const { return qucad::norm(amps_); }

}  // namespace qucad
