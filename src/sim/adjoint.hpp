#pragma once

#include <functional>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"

namespace qucad {

/// Result of one adjoint-differentiation pass.
struct AdjointResult {
  /// `<Z_q>` for every qubit in the final state.
  std::vector<double> z_expectations;
  /// `d<O_eff>/d(theta_i)` for every trainable parameter, where
  /// O_eff = sum_q weight(q) * Z_q with weights chosen by the caller after
  /// seeing the forward expectations.
  std::vector<double> gradients;
};

/// Maps forward-pass `<Z>` expectations to per-qubit observable weights. This
/// is the hook that lets a single backward pass compute the gradient of any
/// scalar function of the expectations (e.g. cross-entropy after softmax):
/// pass the upstream derivative `dL/d<Z_q>` as the weight of Z_q.
using ObservableWeightFn =
    std::function<std::vector<double>(const std::vector<double>& z_expectations)>;

/// Exact gradient of `<O_eff>` via adjoint differentiation (one forward and
/// one reverse sweep, O(gates) regardless of parameter count).
///
/// Supports all rotation gates: d/dt exp(-i t G/2) = (-i G/2) exp(-i t G/2)
/// with G a Pauli for RX/RY/RZ and a projector-Pauli for CRX/CRY/CRZ.
AdjointResult adjoint_gradient(const Circuit& circuit,
                               std::span<const double> theta,
                               std::span<const double> x,
                               const ObservableWeightFn& weights);

/// Convenience overload with fixed per-qubit weights.
AdjointResult adjoint_gradient(const Circuit& circuit,
                               std::span<const double> theta,
                               std::span<const double> x,
                               std::vector<double> fixed_weights);

/// Reference implementation via the parameter-shift rule (two-term shift for
/// RX/RY/RZ, four-term shift for controlled rotations). O(params) circuit
/// executions; used to cross-check the adjoint engine in tests.
std::vector<double> parameter_shift_gradient(const Circuit& circuit,
                                             std::span<const double> theta,
                                             std::span<const double> x,
                                             const std::vector<double>& weights);

}  // namespace qucad
