#pragma once

#include <array>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/statevector.hpp"

namespace qucad {

/// Precomputed single-qubit error site: a depolarizing channel followed by
/// thermal relaxation, folded into one linear map per 2x2 block of the
/// target-qubit subspace. The populations mix through a real 2x2 matrix and
/// the coherences scale by a single real factor, so the whole composite
/// applies in one pass over rho (see DensityMatrix::apply_channel1).
struct FusedChannel1 {
  double d00_00 = 1.0;  // rho00 <- d00_00*rho00 + d00_11*rho11
  double d00_11 = 0.0;
  double d11_00 = 0.0;  // rho11 <- d11_00*rho00 + d11_11*rho11
  double d11_11 = 1.0;
  double off = 1.0;     // rho01, rho10 scale

  bool is_identity() const {
    return d00_00 == 1.0 && d00_11 == 0.0 && d11_00 == 0.0 && d11_11 == 1.0 &&
           off == 1.0;
  }
};

/// Precomputed CX error site: two-qubit depolarizing plus per-qubit thermal
/// relaxation on both operands, applied in one gathered pass per 4x4 block
/// (see DensityMatrix::apply_channel2). `a` refers to the lower qubit index
/// of the pair, `b` to the higher, matching NoiseModel::cx_noise storage.
struct FusedChannel2 {
  double keep = 1.0;       // 1 - p of the two-qubit depolarizing term
  double quarter_p = 0.0;  // p / 4 redistribution weight
  double gamma_a = 0.0, keep_a = 1.0, s_a = 1.0;  // thermal on min(q)
  double gamma_b = 0.0, keep_b = 1.0, s_b = 1.0;  // thermal on max(q)

  bool is_identity() const {
    return keep == 1.0 && quarter_p == 0.0 && gamma_a == 0.0 && s_a == 1.0 &&
           gamma_b == 0.0 && s_b == 1.0;
  }
};

/// Exact mixed-state simulator: rho is a dim x dim row-major complex matrix.
/// Unitary gates map rho -> U rho U^dag; Kraus channels map
/// rho -> sum_k K_k rho K_k^dag. Same qubit-index conventions as StateVector.
class DensityMatrix {
 public:
  explicit DensityMatrix(int num_qubits);

  static DensityMatrix from_statevector(const StateVector& sv);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return dim_; }
  const std::vector<cplx>& data() const { return rho_; }

  void reset();

  /// rho -> U rho U^dag for a single-qubit U (row-major 2x2).
  void apply1(int q, const std::array<cplx, 4>& u);

  /// rho -> U rho U^dag for diagonal U = diag(d0, d1) on qubit q (RZ and
  /// other phase gates): every entry just picks up a phase factor, one pass.
  void apply_diag1(int q, cplx d0, cplx d1);

  /// rho -> U rho U^dag for a two-qubit U (row-major 4x4, local index
  /// 2*bit(q0)+bit(q1)).
  void apply2(int q0, int q1, const std::array<cplx, 16>& u);

  /// rho -> CX rho CX^dag via the index permutation (CX is a permutation
  /// matrix): one swap pass instead of two 4x4 multiply passes. The hot
  /// two-qubit path of the compiled executor.
  void apply_cx(int control, int target);

  void apply_gate(const Gate& gate, double angle);

  /// Runs a fully bound circuit (no noise).
  void run(const Circuit& circuit, std::span<const double> theta = {},
           std::span<const double> x = {});

  /// rho -> sum_k K_k rho K_k^dag for single-qubit Kraus operators.
  void apply_kraus1(int q, std::span<const std::array<cplx, 4>> kraus);

  /// rho -> sum_k K_k rho K_k^dag for two-qubit Kraus operators.
  void apply_kraus2(int q0, int q1, std::span<const std::array<cplx, 16>> kraus);

  /// Closed-form depolarizing channel on one qubit:
  /// rho -> (1-p) rho + p * Tr_q(rho) (x) I/2. O(dim^2), independent of
  /// Kraus rank — the hot path for calibrated gate errors.
  void apply_depolarizing1(int q, double p);

  /// Closed-form two-qubit depolarizing:
  /// rho -> (1-p) rho + p * Tr_{q0,q1}(rho) (x) I/4.
  void apply_depolarizing2(int q0, int q1, double p);

  /// Closed-form thermal relaxation on one qubit: amplitude damping `gamma`
  /// composed with pure dephasing `lambda` (the ThermalChannel convention).
  /// Single pass over rho — the hot path for calibrated gate noise, ~10x
  /// cheaper than the equivalent 3-operator Kraus application.
  void apply_thermal1(int q, double gamma, double lambda);

  /// Precompiled single-qubit error site (depolarizing + thermal folded by
  /// the compiled-ops pass): one pass over rho instead of two.
  void apply_channel1(int q, const FusedChannel1& ch);

  /// Precompiled CX error site (two-qubit depolarizing + both thermal
  /// relaxations): one gathered pass over rho instead of three.
  void apply_channel2(int qa, int qb, const FusedChannel2& ch);

  /// Diagonal of rho (computational-basis probabilities).
  std::vector<double> diagonal_probabilities() const;

  double expectation_z(int q) const;

  /// Tr(rho); 1 for any CPTP evolution from a normalized state.
  double trace_real() const;

  /// Tr(rho^2); 1 for pure states, 1/dim for the maximally mixed state.
  double purity() const;

 private:
  // Left-multiplication helpers operating on the raw buffer.
  void left_mul1(int q, const std::array<cplx, 4>& a, std::vector<cplx>& buf) const;
  void right_mul1_dag(int q, const std::array<cplx, 4>& a,
                      std::vector<cplx>& buf) const;
  void left_mul2(int q0, int q1, const std::array<cplx, 16>& a,
                 std::vector<cplx>& buf) const;
  void right_mul2_dag(int q0, int q1, const std::array<cplx, 16>& a,
                      std::vector<cplx>& buf) const;

  int num_qubits_;
  std::size_t dim_;
  std::vector<cplx> rho_;
};

}  // namespace qucad
