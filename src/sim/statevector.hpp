#pragma once

#include <array>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "linalg/matrix.hpp"

namespace qucad {

/// Pure-state simulator. Qubit k corresponds to bit k of the amplitude
/// index (qubit 0 = least significant bit). Two-qubit matrices use the
/// convention local_index = 2*bit(q0) + bit(q1), matching the 4x4 gate
/// factories in linalg/gates.hpp (q0 = control).
class StateVector {
 public:
  explicit StateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  std::size_t dim() const { return amps_.size(); }

  const std::vector<cplx>& amplitudes() const { return amps_; }
  std::vector<cplx>& amplitudes() { return amps_; }

  /// Resets to |0...0>.
  void reset();

  /// Sets a computational basis state.
  void set_basis_state(std::size_t index);

  /// Applies a 2x2 matrix (row-major a00,a01,a10,a11) to qubit q.
  void apply1(int q, const std::array<cplx, 4>& m);

  /// Applies a 4x4 matrix (row-major) to the ordered pair (q0, q1).
  void apply2(int q0, int q1, const std::array<cplx, 16>& m);

  /// Applies a diagonal single-qubit unitary diag(d0, d1) to qubit q — one
  /// multiply per amplitude, no pairing pass. The RZ/virtual-Z fast path of
  /// the compiled statevector engine.
  void apply_diag1(int q, cplx d0, cplx d1);

  /// Applies CX as an index permutation (amplitude swaps) instead of a 4x4
  /// multiply pass.
  void apply_cx(int control, int target);

  /// Applies a gate with an explicit angle (ignored for fixed gates).
  void apply_gate(const Gate& gate, double angle);

  /// Runs a circuit, resolving symbolic parameters against theta / x.
  void run(const Circuit& circuit, std::span<const double> theta = {},
           std::span<const double> x = {});

  /// <Z_q> of the current state.
  double expectation_z(int q) const;

  /// <Z_q> for every qubit, computed in one pass over the amplitudes
  /// (expectation_z per qubit would make num_qubits passes).
  std::vector<double> all_z_expectations() const;

  /// |amp|^2 for every basis state.
  std::vector<double> probabilities() const;

  double norm() const;

 private:
  int num_qubits_;
  std::vector<cplx> amps_;
};

/// Converts a CMat (2x2) to the flat array form used by apply1.
std::array<cplx, 4> as_array2(const CMat& m);

/// Converts a CMat (4x4) to the flat array form used by apply2.
std::array<cplx, 16> as_array4(const CMat& m);

/// Cached flat-array forms of the fixed physical basis gates, shared by the
/// reference executor and the compiled op-stream so both paths apply
/// byte-identical matrices.
const std::array<cplx, 4>& sx_as_array2();
const std::array<cplx, 4>& x_as_array2();
const std::array<cplx, 16>& cx_as_array4();

}  // namespace qucad
