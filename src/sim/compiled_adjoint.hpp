#pragma once

#include <functional>
#include <memory>
#include <span>

#include "sim/adjoint.hpp"
#include "sim/compiled_ops.hpp"

namespace qucad {

/// \file
/// Compiled adjoint differentiation: the gradient half of the statevector
/// training path. Where sim/adjoint.hpp walks a logical Circuit gate by gate
/// (building a CMat per gate and copying the full amplitude vector per
/// trainable parameter), this engine replays a CompiledProgram's fused
/// op-stream forward once, then sweeps it backward un-applying each op in
/// place. Trainable parameters only ever appear as symbolic RZ angles
/// (SymDiag1 / SymUni1 / CRot2 ops with theta_index >= 0), whose generator
/// is Z (conjugated through the CRot2 post-factor) — so each per-parameter
/// contribution is a single allocation-free pass
///   `d<O>/dtheta_t` += theta_scale * Im(`<lambda| G |psi>`)
/// folded into the same loop that un-applies the op from both states (the
/// chain rule through the affine angle is the theta_scale factor; a
/// parameter split across several RZs by the lowering, e.g. the +-t/2 pair
/// of a controlled rotation, accumulates one contribution per op).
///
/// Because the physical circuit implements the same unitary as its logical
/// source up to global phase, `<Z>(theta, x)` — and therefore every gradient —
/// agrees with the logical-circuit adjoint exactly (tested at 1e-10).

/// Reusable scratch for compiled_adjoint_gradient. Thread it through batch
/// loops (one workspace per worker thread) so per-sample replays allocate
/// nothing; the workspace is resized on first use and whenever the qubit
/// count changes. A workspace must not be shared between concurrent calls.
struct AdjointWorkspace {
  StateVector ket{1};  ///< forward state |psi>
  StateVector lam{1};  ///< adjoint state, U_{k+1}^dag..U_N^dag O|psi>
  /// Angle-resolved symbolic-op matrices recorded by the forward replay and
  /// daggered by the reverse sweep (see CompiledProgram::run_pure).
  std::vector<std::array<cplx, 4>> resolved;
};

/// Exact gradient of `<O_eff>` via adjoint differentiation over a compiled
/// noiseless program (program.has_channels() must be false). One forward and
/// one reverse replay of the op-stream, O(compiled ops) regardless of
/// parameter count.
///
/// `weight_fn` receives `<Z_q>` for every qubit (indexed by qubit id, matching
/// the sim/adjoint.hpp contract — NOT readout-slot order) and returns the
/// per-qubit observable weights, i.e. the upstream derivative `dL/d<Z_q>`.
/// The returned gradients vector has max(program.num_trainable(),
/// theta.size()) entries; parameters whose RZs were elided as trailing
/// diagonals get their exact gradient of zero.
AdjointResult compiled_adjoint_gradient(const CompiledProgram& program,
                                        std::span<const double> theta,
                                        std::span<const double> x,
                                        const ObservableWeightFn& weight_fn,
                                        AdjointWorkspace* workspace = nullptr);

/// Convenience overload with fixed per-qubit weights.
AdjointResult compiled_adjoint_gradient(const CompiledProgram& program,
                                        std::span<const double> theta,
                                        std::span<const double> x,
                                        std::vector<double> fixed_weights,
                                        AdjointWorkspace* workspace = nullptr);

/// Reusable scratch for compiled_adjoint_gradient_lanes — the SoA lane
/// counterpart of AdjointWorkspace (one per worker thread, never shared
/// between concurrent calls). Heap-held so the workspace stays cheap to
/// construct and resizes lazily on first use / qubit-count change.
struct LaneAdjointWorkspace {
  std::unique_ptr<BatchedStateVector> ket;  ///< forward lanes |psi>
  std::unique_ptr<BatchedStateVector> lam;  ///< adjoint lanes
  /// Per-lane angle-resolved matrices, `[op * kLanes + lane]` (see
  /// CompiledProgram::run_pure_lanes).
  std::vector<std::array<cplx, 4>> resolved;
};

/// Per-lane observable weights: receives the lane index and that lane's
/// `<Z_q>` vector (indexed by qubit id) and returns dL/d`<Z_q>` per qubit —
/// the lane counterpart of ObservableWeightFn.
using LaneObservableWeightFn = std::function<std::vector<double>(
    std::size_t lane, const std::vector<double>& z_expectations)>;

/// Per-lane adjoint outputs, outer index = sample lane.
struct LaneAdjointResult {
  std::vector<std::vector<double>> z_expectations;  ///< [lane][qubit]
  std::vector<std::vector<double>> gradients;       ///< [lane][param]
};

/// Adjoint differentiation over BatchedStateVector::kLanes samples at once:
/// one SoA forward replay, one SoA reverse sweep with lane-wide duals, each
/// lane accumulating its own gradient vector. theta is shared across lanes
/// (the batch-training shape); `xs[lane]` must hold at least
/// program.num_inputs() entries, validated by the batch entry points.
/// Matches the per-sample compiled_adjoint_gradient at 1e-10.
LaneAdjointResult compiled_adjoint_gradient_lanes(
    const CompiledProgram& program, std::span<const double> theta,
    const std::array<const double*, BatchedStateVector::kLanes>& xs,
    const LaneObservableWeightFn& weight_fn,
    LaneAdjointWorkspace* workspace = nullptr);

}  // namespace qucad
