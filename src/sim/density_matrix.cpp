#include "sim/density_matrix.hpp"

#include <cmath>

#include "common/require.hpp"

namespace qucad {

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits),
      dim_(std::size_t{1} << num_qubits),
      rho_(dim_ * dim_, cplx{0.0, 0.0}) {
  require(num_qubits > 0 && num_qubits <= 10,
          "density matrix qubit count out of range");
  rho_[0] = 1.0;
}

DensityMatrix DensityMatrix::from_statevector(const StateVector& sv) {
  DensityMatrix dm(sv.num_qubits());
  const auto& a = sv.amplitudes();
  for (std::size_t r = 0; r < dm.dim_; ++r) {
    for (std::size_t c = 0; c < dm.dim_; ++c) {
      dm.rho_[r * dm.dim_ + c] = a[r] * std::conj(a[c]);
    }
  }
  return dm;
}

void DensityMatrix::reset() {
  std::fill(rho_.begin(), rho_.end(), cplx{0.0, 0.0});
  rho_[0] = 1.0;
}

void DensityMatrix::left_mul1(int q, const std::array<cplx, 4>& a,
                              std::vector<cplx>& buf) const {
  const std::size_t stride = std::size_t{1} << q;
  for (std::size_t r = 0; r < dim_; ++r) {
    if (r & stride) continue;
    const std::size_t r1 = r | stride;
    cplx* row0 = buf.data() + r * dim_;
    cplx* row1 = buf.data() + r1 * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      const cplx v0 = row0[c];
      const cplx v1 = row1[c];
      row0[c] = a[0] * v0 + a[1] * v1;
      row1[c] = a[2] * v0 + a[3] * v1;
    }
  }
}

void DensityMatrix::right_mul1_dag(int q, const std::array<cplx, 4>& a,
                                   std::vector<cplx>& buf) const {
  // buf -> buf * A^dag ; (buf A^dag)(r,c) over column pairs.
  const std::size_t stride = std::size_t{1} << q;
  const cplx a00 = std::conj(a[0]);
  const cplx a01 = std::conj(a[1]);
  const cplx a10 = std::conj(a[2]);
  const cplx a11 = std::conj(a[3]);
  for (std::size_t r = 0; r < dim_; ++r) {
    cplx* row = buf.data() + r * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & stride) continue;
      const std::size_t c1 = c | stride;
      const cplx v0 = row[c];
      const cplx v1 = row[c1];
      // (v A^dag)_c = v0 * conj(a00) + v1 * conj(a01)  etc.
      row[c] = v0 * a00 + v1 * a01;
      row[c1] = v0 * a10 + v1 * a11;
    }
  }
}

void DensityMatrix::left_mul2(int q0, int q1, const std::array<cplx, 16>& a,
                              std::vector<cplx>& buf) const {
  const std::size_t m0 = std::size_t{1} << q0;
  const std::size_t m1 = std::size_t{1} << q1;
  for (std::size_t r = 0; r < dim_; ++r) {
    if ((r & m0) || (r & m1)) continue;
    const std::size_t rr[4] = {r, r | m1, r | m0, r | m0 | m1};
    for (std::size_t c = 0; c < dim_; ++c) {
      cplx v[4];
      for (int k = 0; k < 4; ++k) v[k] = buf[rr[k] * dim_ + c];
      for (int k = 0; k < 4; ++k) {
        buf[rr[k] * dim_ + c] = a[static_cast<std::size_t>(k) * 4 + 0] * v[0] +
                                a[static_cast<std::size_t>(k) * 4 + 1] * v[1] +
                                a[static_cast<std::size_t>(k) * 4 + 2] * v[2] +
                                a[static_cast<std::size_t>(k) * 4 + 3] * v[3];
      }
    }
  }
}

void DensityMatrix::right_mul2_dag(int q0, int q1, const std::array<cplx, 16>& a,
                                   std::vector<cplx>& buf) const {
  const std::size_t m0 = std::size_t{1} << q0;
  const std::size_t m1 = std::size_t{1} << q1;
  std::array<cplx, 16> adag;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) adag[c * 4 + r] = std::conj(a[r * 4 + c]);
  }
  for (std::size_t r = 0; r < dim_; ++r) {
    cplx* row = buf.data() + r * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((c & m0) || (c & m1)) continue;
      const std::size_t cc[4] = {c, c | m1, c | m0, c | m0 | m1};
      cplx v[4];
      for (int k = 0; k < 4; ++k) v[k] = row[cc[k]];
      for (int k = 0; k < 4; ++k) {
        // (row * adag)_k = sum_j v_j * adag(j, k)
        cplx acc{0.0, 0.0};
        for (int j = 0; j < 4; ++j) {
          acc += v[j] * adag[static_cast<std::size_t>(j) * 4 + static_cast<std::size_t>(k)];
        }
        row[cc[k]] = acc;
      }
    }
  }
}

void DensityMatrix::apply1(int q, const std::array<cplx, 4>& u) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  left_mul1(q, u, rho_);
  right_mul1_dag(q, u, rho_);
}

void DensityMatrix::apply_diag1(int q, cplx d0, cplx d1) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  const std::size_t mq = std::size_t{1} << q;
  // U rho U^dag with U = diag(d0, d1): entry (r, c) scales by
  // d_{bit(r)} * conj(d_{bit(c)}).
  const double n0 = std::norm(d0);
  const double n1 = std::norm(d1);
  const cplx f01 = d0 * std::conj(d1);
  const cplx f10 = d1 * std::conj(d0);
  for (std::size_t r = 0; r < dim_; ++r) {
    if (r & mq) continue;
    const std::size_t r1 = r | mq;
    cplx* row0 = rho_.data() + r * dim_;
    cplx* row1 = rho_.data() + r1 * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & mq) continue;
      const std::size_t c1 = c | mq;
      row0[c] *= n0;
      row0[c1] *= f01;
      row1[c] *= f10;
      row1[c1] *= n1;
    }
  }
}

void DensityMatrix::apply2(int q0, int q1, const std::array<cplx, 16>& u) {
  require(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 && q1 < num_qubits_ && q0 != q1,
          "invalid qubit pair");
  left_mul2(q0, q1, u, rho_);
  right_mul2_dag(q0, q1, u, rho_);
}

void DensityMatrix::apply_cx(int control, int target) {
  require(control >= 0 && control < num_qubits_ && target >= 0 &&
              target < num_qubits_ && control != target,
          "invalid qubit pair");
  // CX is a permutation P with P = P^dag = P^-1, so CX rho CX^dag just
  // relabels entries: rho'(r, c) = rho(pi(r), pi(c)) with
  // pi(i) = i XOR target-bit when the control bit is set. Each unordered
  // entry pair is swapped once, from its lexicographically smaller side.
  const std::size_t mc = std::size_t{1} << control;
  const std::size_t mt = std::size_t{1} << target;
  for (std::size_t r = 0; r < dim_; ++r) {
    const std::size_t pr = (r & mc) ? (r ^ mt) : r;
    if (pr < r) continue;  // row pair already handled from the smaller row
    cplx* row = rho_.data() + r * dim_;
    cplx* prow = rho_.data() + pr * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      const std::size_t pc = (c & mc) ? (c ^ mt) : c;
      if (pr == r) {
        if (pc > c) std::swap(row[c], row[pc]);
      } else {
        std::swap(row[c], prow[pc]);
      }
    }
  }
}

void DensityMatrix::apply_gate(const Gate& gate, double angle) {
  if (gate.kind == GateKind::RZ) {
    apply_diag1(gate.q0, std::exp(cplx{0.0, -angle / 2.0}),
                std::exp(cplx{0.0, angle / 2.0}));
    return;
  }
  const CMat m = gate_matrix(gate.kind, angle);
  if (gate.num_qubits() == 1) {
    apply1(gate.q0, as_array2(m));
  } else {
    apply2(gate.q0, gate.q1, as_array4(m));
  }
}

void DensityMatrix::run(const Circuit& circuit, std::span<const double> theta,
                        std::span<const double> x) {
  require(circuit.num_qubits() == num_qubits_, "circuit qubit count mismatch");
  for (const Gate& g : circuit.gates()) {
    apply_gate(g, circuit.resolve_angle(g, theta, x));
  }
}

void DensityMatrix::apply_kraus1(int q, std::span<const std::array<cplx, 4>> kraus) {
  require(!kraus.empty(), "empty Kraus set");
  // Scratch buffers persist across calls to keep the per-gate hot path
  // allocation-free (the swap below recycles rho_'s old storage as acc).
  thread_local std::vector<cplx> acc, tmp;
  acc.assign(rho_.size(), cplx{0.0, 0.0});
  for (const auto& k : kraus) {
    tmp = rho_;
    left_mul1(q, k, tmp);
    right_mul1_dag(q, k, tmp);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += tmp[i];
  }
  rho_.swap(acc);
}

void DensityMatrix::apply_kraus2(int q0, int q1,
                                 std::span<const std::array<cplx, 16>> kraus) {
  require(!kraus.empty(), "empty Kraus set");
  thread_local std::vector<cplx> acc, tmp;
  acc.assign(rho_.size(), cplx{0.0, 0.0});
  for (const auto& k : kraus) {
    tmp = rho_;
    left_mul2(q0, q1, k, tmp);
    right_mul2_dag(q0, q1, k, tmp);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += tmp[i];
  }
  rho_.swap(acc);
}

void DensityMatrix::apply_depolarizing1(int q, double p) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  require(p >= 0.0 && p <= 1.0, "depolarizing probability out of range");
  if (p == 0.0) return;
  const std::size_t mq = std::size_t{1} << q;
  const double keep = 1.0 - p;
  for (std::size_t r = 0; r < dim_; ++r) {
    if (r & mq) continue;
    const std::size_t r1 = r | mq;
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & mq) continue;
      const std::size_t c1 = c | mq;
      const cplx t = rho_[r * dim_ + c] + rho_[r1 * dim_ + c1];
      rho_[r * dim_ + c] = keep * rho_[r * dim_ + c] + 0.5 * p * t;
      rho_[r1 * dim_ + c1] = keep * rho_[r1 * dim_ + c1] + 0.5 * p * t;
      rho_[r * dim_ + c1] *= keep;
      rho_[r1 * dim_ + c] *= keep;
    }
  }
}

void DensityMatrix::apply_depolarizing2(int q0, int q1, double p) {
  require(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 && q1 < num_qubits_ && q0 != q1,
          "invalid qubit pair");
  require(p >= 0.0 && p <= 1.0, "depolarizing probability out of range");
  if (p == 0.0) return;
  const std::size_t m0 = std::size_t{1} << q0;
  const std::size_t m1 = std::size_t{1} << q1;
  const std::size_t offsets[4] = {0, m1, m0, m0 | m1};
  const double keep = 1.0 - p;

  for (std::size_t r = 0; r < dim_; ++r) {
    if ((r & m0) || (r & m1)) continue;
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((c & m0) || (c & m1)) continue;
      cplx t{0.0, 0.0};
      for (std::size_t k = 0; k < 4; ++k) {
        t += rho_[(r | offsets[k]) * dim_ + (c | offsets[k])];
      }
      const cplx add = 0.25 * p * t;
      // Scale the full 4x4 sub-block, then add the partial-trace term on
      // its diagonal.
      for (std::size_t kr = 0; kr < 4; ++kr) {
        for (std::size_t kc = 0; kc < 4; ++kc) {
          rho_[(r | offsets[kr]) * dim_ + (c | offsets[kc])] *= keep;
        }
      }
      for (std::size_t k = 0; k < 4; ++k) {
        rho_[(r | offsets[k]) * dim_ + (c | offsets[k])] += add;
      }
    }
  }
}

void DensityMatrix::apply_thermal1(int q, double gamma, double lambda) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  require(gamma >= 0.0 && gamma <= 1.0 && lambda >= 0.0 && lambda <= 1.0,
          "thermal parameters out of range");
  if (gamma == 0.0 && lambda == 0.0) return;
  // Amplitude damping then pure dephasing, written out per 2x2 block of the
  // q subspace (rho00 = (r,c), rho01 = (r,c1), rho10 = (r1,c),
  // rho11 = (r1,c1)):
  //   rho00 += gamma * rho11          rho11 *= 1 - gamma
  //   rho01 *= s                      rho10 *= s
  // with s = sqrt((1-gamma)(1-lambda)).
  const std::size_t mq = std::size_t{1} << q;
  const double keep = 1.0 - gamma;
  const double s = std::sqrt(keep * (1.0 - lambda));
  for (std::size_t r = 0; r < dim_; ++r) {
    if (r & mq) continue;
    const std::size_t r1 = r | mq;
    cplx* row0 = rho_.data() + r * dim_;
    cplx* row1 = rho_.data() + r1 * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & mq) continue;
      const std::size_t c1 = c | mq;
      row0[c] += gamma * row1[c1];
      row1[c1] *= keep;
      row0[c1] *= s;
      row1[c] *= s;
    }
  }
}

void DensityMatrix::apply_channel1(int q, const FusedChannel1& ch) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  if (ch.is_identity()) return;
  const std::size_t mq = std::size_t{1} << q;
  for (std::size_t r = 0; r < dim_; ++r) {
    if (r & mq) continue;
    const std::size_t r1 = r | mq;
    cplx* row0 = rho_.data() + r * dim_;
    cplx* row1 = rho_.data() + r1 * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & mq) continue;
      const std::size_t c1 = c | mq;
      const cplx v00 = row0[c];
      const cplx v11 = row1[c1];
      row0[c] = ch.d00_00 * v00 + ch.d00_11 * v11;
      row1[c1] = ch.d11_00 * v00 + ch.d11_11 * v11;
      row0[c1] *= ch.off;
      row1[c] *= ch.off;
    }
  }
}

void DensityMatrix::apply_channel2(int qa, int qb, const FusedChannel2& ch) {
  require(qa >= 0 && qa < num_qubits_ && qb >= 0 && qb < num_qubits_ &&
              qa != qb,
          "invalid qubit pair");
  if (ch.is_identity()) return;
  const std::size_t ma = std::size_t{1} << qa;
  const std::size_t mb = std::size_t{1} << qb;
  // Local block index k = 2*bit(qa) + bit(qb), matching apply_depolarizing2.
  const std::size_t offsets[4] = {0, mb, ma, ma | mb};
  cplx e[4][4];
  for (std::size_t r = 0; r < dim_; ++r) {
    if ((r & ma) || (r & mb)) continue;
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((c & ma) || (c & mb)) continue;
      for (int kr = 0; kr < 4; ++kr) {
        for (int kc = 0; kc < 4; ++kc) {
          e[kr][kc] = rho_[(r | offsets[kr]) * dim_ + (c | offsets[kc])];
        }
      }
      // Two-qubit depolarizing: scale the block, redistribute its partial
      // trace over the block diagonal.
      if (ch.quarter_p != 0.0) {
        const cplx t = e[0][0] + e[1][1] + e[2][2] + e[3][3];
        for (auto& rowk : e) {
          for (cplx& v : rowk) v *= ch.keep;
        }
        const cplx add = ch.quarter_p * t;
        for (int k = 0; k < 4; ++k) e[k][k] += add;
      }
      // Thermal relaxation on qa (block-index bit 1).
      if (ch.gamma_a != 0.0 || ch.s_a != 1.0) {
        for (int rb = 0; rb < 2; ++rb) {
          for (int cb = 0; cb < 2; ++cb) {
            cplx& e00 = e[rb][cb];
            cplx& e01 = e[rb][2 + cb];
            cplx& e10 = e[2 + rb][cb];
            cplx& e11 = e[2 + rb][2 + cb];
            e00 += ch.gamma_a * e11;
            e11 *= ch.keep_a;
            e01 *= ch.s_a;
            e10 *= ch.s_a;
          }
        }
      }
      // Thermal relaxation on qb (block-index bit 0).
      if (ch.gamma_b != 0.0 || ch.s_b != 1.0) {
        for (int ra = 0; ra < 2; ++ra) {
          for (int ca = 0; ca < 2; ++ca) {
            cplx& e00 = e[2 * ra][2 * ca];
            cplx& e01 = e[2 * ra][2 * ca + 1];
            cplx& e10 = e[2 * ra + 1][2 * ca];
            cplx& e11 = e[2 * ra + 1][2 * ca + 1];
            e00 += ch.gamma_b * e11;
            e11 *= ch.keep_b;
            e01 *= ch.s_b;
            e10 *= ch.s_b;
          }
        }
      }
      for (int kr = 0; kr < 4; ++kr) {
        for (int kc = 0; kc < 4; ++kc) {
          rho_[(r | offsets[kr]) * dim_ + (c | offsets[kc])] = e[kr][kc];
        }
      }
    }
  }
}

std::vector<double> DensityMatrix::diagonal_probabilities() const {
  std::vector<double> probs(dim_);
  for (std::size_t i = 0; i < dim_; ++i) probs[i] = rho_[i * dim_ + i].real();
  return probs;
}

double DensityMatrix::expectation_z(int q) const {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  const std::size_t mq = std::size_t{1} << q;
  double acc = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double p = rho_[i * dim_ + i].real();
    acc += (i & mq) ? -p : p;
  }
  return acc;
}

double DensityMatrix::trace_real() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) acc += rho_[i * dim_ + i].real();
  return acc;
}

double DensityMatrix::purity() const {
  // Tr(rho^2) = sum_{r,c} rho(r,c) * rho(c,r); for Hermitian rho this equals
  // sum |rho(r,c)|^2.
  double acc = 0.0;
  for (const cplx& v : rho_) acc += std::norm(v);
  return acc;
}

}  // namespace qucad
