#include "sim/batched_state.hpp"

#include <cstdlib>

#include "common/require.hpp"
#include "sim/density_matrix.hpp"

namespace qucad {

// Every kernel below expands the complex arithmetic over the SoA planes in
// the SAME operation order as StateVector's std::complex path:
//   (m * a).re = m.re * a.re - m.im * a.im
//   (m * a).im = m.re * a.im + m.im * a.re
// with two-term sums associated exactly as `m0 * a0 + m1 * a1`. This keeps
// every lane bitwise identical to a scalar replay of that sample (IEEE
// mul/add are deterministic; the build adds no FMA contraction or
// fast-math), which the sampled backend's batched path depends on.

bool lane_replay_enabled() {
  static const bool enabled = [] {
    const char* knob = std::getenv("QUCAD_SCALAR_REPLAY");
    return knob == nullptr || knob[0] == '\0';
  }();
  return enabled;
}

BatchedStateVector::BatchedStateVector(int num_qubits)
    : num_qubits_(num_qubits), dim_(std::size_t{1} << num_qubits) {
  require(num_qubits > 0 && num_qubits <= 20, "qubit count out of range");
  re_.assign(dim_ * kLanes, 0.0);
  im_.assign(dim_ * kLanes, 0.0);
  for (std::size_t l = 0; l < kLanes; ++l) re_[l] = 1.0;
}

void BatchedStateVector::reset() {
  std::fill(re_.begin(), re_.end(), 0.0);
  std::fill(im_.begin(), im_.end(), 0.0);
  for (std::size_t l = 0; l < kLanes; ++l) re_[l] = 1.0;
}

void BatchedStateVector::apply1(int q, const std::array<cplx, 4>& m) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  const double m0r = m[0].real(), m0i = m[0].imag();
  const double m1r = m[1].real(), m1i = m[1].imag();
  const double m2r = m[2].real(), m2i = m[2].imag();
  const double m3r = m[3].real(), m3i = m[3].imag();
  const std::size_t stride = std::size_t{1} << q;
  for (std::size_t base = 0; base < dim_; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      double* r0 = re_.data() + (base + off) * kLanes;
      double* i0 = im_.data() + (base + off) * kLanes;
      double* r1 = r0 + stride * kLanes;
      double* i1 = i0 + stride * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double a0r = r0[l], a0i = i0[l];
        const double a1r = r1[l], a1i = i1[l];
        r0[l] = (m0r * a0r - m0i * a0i) + (m1r * a1r - m1i * a1i);
        i0[l] = (m0r * a0i + m0i * a0r) + (m1r * a1i + m1i * a1r);
        r1[l] = (m2r * a0r - m2i * a0i) + (m3r * a1r - m3i * a1i);
        i1[l] = (m2r * a0i + m2i * a0r) + (m3r * a1i + m3i * a1r);
      }
    }
  }
}

void BatchedStateVector::apply1_lanes(int q, const std::array<cplx, 4>* ms) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  // Transpose the per-lane matrices into lane-major rows once, so the inner
  // loop stays unit-stride over every operand.
  double mr[4][kLanes];
  double mi[4][kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t e = 0; e < 4; ++e) {
      mr[e][l] = ms[l][e].real();
      mi[e][l] = ms[l][e].imag();
    }
  }
  const std::size_t stride = std::size_t{1} << q;
  for (std::size_t base = 0; base < dim_; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      double* r0 = re_.data() + (base + off) * kLanes;
      double* i0 = im_.data() + (base + off) * kLanes;
      double* r1 = r0 + stride * kLanes;
      double* i1 = i0 + stride * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double a0r = r0[l], a0i = i0[l];
        const double a1r = r1[l], a1i = i1[l];
        r0[l] = (mr[0][l] * a0r - mi[0][l] * a0i) +
                (mr[1][l] * a1r - mi[1][l] * a1i);
        i0[l] = (mr[0][l] * a0i + mi[0][l] * a0r) +
                (mr[1][l] * a1i + mi[1][l] * a1r);
        r1[l] = (mr[2][l] * a0r - mi[2][l] * a0i) +
                (mr[3][l] * a1r - mi[3][l] * a1i);
        i1[l] = (mr[2][l] * a0i + mi[2][l] * a0r) +
                (mr[3][l] * a1i + mi[3][l] * a1r);
      }
    }
  }
}

void BatchedStateVector::apply_diag1(int q, cplx d0, cplx d1) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  const double d0r = d0.real(), d0i = d0.imag();
  const double d1r = d1.real(), d1i = d1.imag();
  const std::size_t mq = std::size_t{1} << q;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double dr = (i & mq) ? d1r : d0r;
    const double di = (i & mq) ? d1i : d0i;
    double* r = re_.data() + i * kLanes;
    double* m = im_.data() + i * kLanes;
#pragma omp simd
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double ar = r[l], ai = m[l];
      r[l] = ar * dr - ai * di;
      m[l] = ar * di + ai * dr;
    }
  }
}

void BatchedStateVector::apply_diag1_lanes(int q, const cplx* d0s,
                                           const cplx* d1s) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  double d0r[kLanes], d0i[kLanes], d1r[kLanes], d1i[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    d0r[l] = d0s[l].real();
    d0i[l] = d0s[l].imag();
    d1r[l] = d1s[l].real();
    d1i[l] = d1s[l].imag();
  }
  const std::size_t mq = std::size_t{1} << q;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double* dr = (i & mq) ? d1r : d0r;
    const double* di = (i & mq) ? d1i : d0i;
    double* r = re_.data() + i * kLanes;
    double* m = im_.data() + i * kLanes;
#pragma omp simd
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double ar = r[l], ai = m[l];
      r[l] = ar * dr[l] - ai * di[l];
      m[l] = ar * di[l] + ai * dr[l];
    }
  }
}

namespace {

/// The CRot2 block pass over one 4-tuple of SoA rows, lane-major matrix
/// operands: m on the (00, 01) pair, X m X on the (10, 11) pair — the same
/// index pattern as CompiledProgram::run_pure's CRot2 case.
inline void crot_rows(double* r00, double* i00, double* r01, double* i01,
                      double* r10, double* i10, double* r11, double* i11,
                      const double (&mr)[4][BatchedStateVector::kLanes],
                      const double (&mi)[4][BatchedStateVector::kLanes]) {
  constexpr std::size_t kLanes = BatchedStateVector::kLanes;
#pragma omp simd
  for (std::size_t l = 0; l < kLanes; ++l) {
    const double a0r = r00[l], a0i = i00[l];
    const double a1r = r01[l], a1i = i01[l];
    r00[l] = (mr[0][l] * a0r - mi[0][l] * a0i) +
             (mr[1][l] * a1r - mi[1][l] * a1i);
    i00[l] = (mr[0][l] * a0i + mi[0][l] * a0r) +
             (mr[1][l] * a1i + mi[1][l] * a1r);
    r01[l] = (mr[2][l] * a0r - mi[2][l] * a0i) +
             (mr[3][l] * a1r - mi[3][l] * a1i);
    i01[l] = (mr[2][l] * a0i + mi[2][l] * a0r) +
             (mr[3][l] * a1i + mi[3][l] * a1r);
    const double b0r = r10[l], b0i = i10[l];
    const double b1r = r11[l], b1i = i11[l];
    r10[l] = (mr[3][l] * b0r - mi[3][l] * b0i) +
             (mr[2][l] * b1r - mi[2][l] * b1i);
    i10[l] = (mr[3][l] * b0i + mi[3][l] * b0r) +
             (mr[2][l] * b1i + mi[2][l] * b1r);
    r11[l] = (mr[1][l] * b0r - mi[1][l] * b0i) +
             (mr[0][l] * b1r - mi[0][l] * b1i);
    i11[l] = (mr[1][l] * b0i + mi[1][l] * b0r) +
             (mr[0][l] * b1i + mi[0][l] * b1r);
  }
}

}  // namespace

void BatchedStateVector::apply_crot_lanes(int control, int target,
                                          const std::array<cplx, 4>* ms) {
  require(control >= 0 && control < num_qubits_ && target >= 0 &&
              target < num_qubits_ && control != target,
          "invalid qubit pair");
  double mr[4][kLanes];
  double mi[4][kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t e = 0; e < 4; ++e) {
      mr[e][l] = ms[l][e].real();
      mi[e][l] = ms[l][e].imag();
    }
  }
  const std::size_t mc = std::size_t{1} << control;
  const std::size_t mt = std::size_t{1} << target;
  for (std::size_t i = 0; i < dim_; ++i) {
    if ((i & mc) || (i & mt)) continue;
    const std::size_t i01 = i | mt;
    const std::size_t i10 = i | mc;
    const std::size_t i11 = i | mc | mt;
    crot_rows(re_.data() + i * kLanes, im_.data() + i * kLanes,
              re_.data() + i01 * kLanes, im_.data() + i01 * kLanes,
              re_.data() + i10 * kLanes, im_.data() + i10 * kLanes,
              re_.data() + i11 * kLanes, im_.data() + i11 * kLanes, mr, mi);
  }
}

void BatchedStateVector::apply_crot(int control, int target,
                                    const std::array<cplx, 4>& m) {
  std::array<std::array<cplx, 4>, kLanes> broadcast;
  broadcast.fill(m);
  apply_crot_lanes(control, target, broadcast.data());
}

void BatchedStateVector::apply_cx(int control, int target) {
  require(control >= 0 && control < num_qubits_ && target >= 0 &&
              target < num_qubits_ && control != target,
          "invalid qubit pair");
  const std::size_t mc = std::size_t{1} << control;
  const std::size_t mt = std::size_t{1} << target;
  for (std::size_t i = 0; i < dim_; ++i) {
    if (!(i & mc) || (i & mt)) continue;
    double* ra = re_.data() + i * kLanes;
    double* ia = im_.data() + i * kLanes;
    double* rb = re_.data() + (i | mt) * kLanes;
    double* ib = im_.data() + (i | mt) * kLanes;
#pragma omp simd
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double tr = ra[l], ti = ia[l];
      ra[l] = rb[l];
      ia[l] = ib[l];
      rb[l] = tr;
      ib[l] = ti;
    }
  }
}

void BatchedStateVector::readout_z(std::span<const int> slots,
                                   double* out) const {
  std::fill(out, out + slots.size() * kLanes, 0.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double* r = re_.data() + i * kLanes;
    const double* m = im_.data() + i * kLanes;
    double p[kLanes];
#pragma omp simd
    for (std::size_t l = 0; l < kLanes; ++l) p[l] = r[l] * r[l] + m[l] * m[l];
    for (std::size_t k = 0; k < slots.size(); ++k) {
      const double sign = (i >> slots[k]) & 1 ? -1.0 : 1.0;
      double* zk = out + k * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) zk[l] += sign * p[l];
    }
  }
}

void BatchedStateVector::all_z(double* out) const {
  const std::size_t n = static_cast<std::size_t>(num_qubits_);
  std::fill(out, out + n * kLanes, 0.0);
  for (std::size_t i = 0; i < dim_; ++i) {
    const double* r = re_.data() + i * kLanes;
    const double* m = im_.data() + i * kLanes;
    double p[kLanes];
#pragma omp simd
    for (std::size_t l = 0; l < kLanes; ++l) p[l] = r[l] * r[l] + m[l] * m[l];
    for (std::size_t q = 0; q < n; ++q) {
      const double sign = (i >> q) & 1 ? -1.0 : 1.0;
      double* zq = out + q * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) zq[l] += sign * p[l];
    }
  }
}

void BatchedStateVector::lane_cdf(std::size_t lane, std::vector<double>& cdf,
                                  double& total) const {
  require(lane < kLanes, "lane index out of range");
  cdf.resize(dim_);
  double acc = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    const double r = re_[i * kLanes + lane];
    const double m = im_[i * kLanes + lane];
    // Same expression order as std::norm in the scalar sampling path.
    acc += r * r + m * m;
    cdf[i] = acc;
  }
  total = acc;
}

// ---------------------------------------------------------------------------
// BatchedDensityMatrix: the noisy engine's lane state. Every kernel mirrors
// the matching DensityMatrix kernel pass for pass (left multiply then right
// multiply for unitaries, the same gathered block sequence for channels)
// with the complex arithmetic expanded over the SoA planes in the scalar
// expression order — the bitwise contract described at the top of the file.
// ---------------------------------------------------------------------------

BatchedDensityMatrix::BatchedDensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), dim_(std::size_t{1} << num_qubits) {
  require(num_qubits > 0 && num_qubits <= kMaxQubits,
          "batched density matrix qubit count out of range");
  re_.assign(dim_ * dim_ * kLanes, 0.0);
  im_.assign(dim_ * dim_ * kLanes, 0.0);
  for (std::size_t l = 0; l < kLanes; ++l) re_[l] = 1.0;
}

void BatchedDensityMatrix::reset() {
  std::fill(re_.begin(), re_.end(), 0.0);
  std::fill(im_.begin(), im_.end(), 0.0);
  for (std::size_t l = 0; l < kLanes; ++l) re_[l] = 1.0;
}

void BatchedDensityMatrix::apply1_lanes(int q, const std::array<cplx, 4>* us) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  // Lane-major operand rows, plus the conjugates the right pass needs
  // (DensityMatrix::right_mul1_dag conjugates once up front).
  double ar[4][kLanes], ai[4][kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t e = 0; e < 4; ++e) {
      ar[e][l] = us[l][e].real();
      ai[e][l] = us[l][e].imag();
    }
  }
  const std::size_t stride = std::size_t{1} << q;
  // Pass 1: rho -> U rho (row pairs), same traversal as left_mul1.
  for (std::size_t r = 0; r < dim_; ++r) {
    if (r & stride) continue;
    const std::size_t r1 = r | stride;
    for (std::size_t c = 0; c < dim_; ++c) {
      double* r0p = re_.data() + (r * dim_ + c) * kLanes;
      double* i0p = im_.data() + (r * dim_ + c) * kLanes;
      double* r1p = re_.data() + (r1 * dim_ + c) * kLanes;
      double* i1p = im_.data() + (r1 * dim_ + c) * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double v0r = r0p[l], v0i = i0p[l];
        const double v1r = r1p[l], v1i = i1p[l];
        // row0 = a0 * v0 + a1 * v1 ; row1 = a2 * v0 + a3 * v1
        r0p[l] = (ar[0][l] * v0r - ai[0][l] * v0i) +
                 (ar[1][l] * v1r - ai[1][l] * v1i);
        i0p[l] = (ar[0][l] * v0i + ai[0][l] * v0r) +
                 (ar[1][l] * v1i + ai[1][l] * v1r);
        r1p[l] = (ar[2][l] * v0r - ai[2][l] * v0i) +
                 (ar[3][l] * v1r - ai[3][l] * v1i);
        i1p[l] = (ar[2][l] * v0i + ai[2][l] * v0r) +
                 (ar[3][l] * v1i + ai[3][l] * v1r);
      }
    }
  }
  // Pass 2: rho -> rho U^dag (column pairs), same traversal as
  // right_mul1_dag. conj(a) negates ai, and the scalar kernel multiplies
  // v * conj(a): re = vr*ar + vi*ai, im = -vr*ai + vi*ar after expanding the
  // conjugate — written with the same signs below.
  for (std::size_t r = 0; r < dim_; ++r) {
    const std::size_t row = r * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & stride) continue;
      const std::size_t c1 = c | stride;
      double* r0p = re_.data() + (row + c) * kLanes;
      double* i0p = im_.data() + (row + c) * kLanes;
      double* r1p = re_.data() + (row + c1) * kLanes;
      double* i1p = im_.data() + (row + c1) * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double v0r = r0p[l], v0i = i0p[l];
        const double v1r = r1p[l], v1i = i1p[l];
        // row[c]  = v0 * conj(a0) + v1 * conj(a1)
        // row[c1] = v0 * conj(a2) + v1 * conj(a3)
        r0p[l] = (v0r * ar[0][l] - v0i * -ai[0][l]) +
                 (v1r * ar[1][l] - v1i * -ai[1][l]);
        i0p[l] = (v0r * -ai[0][l] + v0i * ar[0][l]) +
                 (v1r * -ai[1][l] + v1i * ar[1][l]);
        r1p[l] = (v0r * ar[2][l] - v0i * -ai[2][l]) +
                 (v1r * ar[3][l] - v1i * -ai[3][l]);
        i1p[l] = (v0r * -ai[2][l] + v0i * ar[2][l]) +
                 (v1r * -ai[3][l] + v1i * ar[3][l]);
      }
    }
  }
}

void BatchedDensityMatrix::apply1(int q, const std::array<cplx, 4>& u) {
  std::array<std::array<cplx, 4>, kLanes> broadcast;
  broadcast.fill(u);
  apply1_lanes(q, broadcast.data());
}

void BatchedDensityMatrix::apply_diag1_lanes(int q, const cplx* d0s,
                                             const cplx* d1s) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  // Per-lane scale factors, derived with the same host-side std::complex
  // expressions as DensityMatrix::apply_diag1.
  double n0[kLanes], n1[kLanes];
  double f01r[kLanes], f01i[kLanes], f10r[kLanes], f10i[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    n0[l] = std::norm(d0s[l]);
    n1[l] = std::norm(d1s[l]);
    const cplx f01 = d0s[l] * std::conj(d1s[l]);
    const cplx f10 = d1s[l] * std::conj(d0s[l]);
    f01r[l] = f01.real();
    f01i[l] = f01.imag();
    f10r[l] = f10.real();
    f10i[l] = f10.imag();
  }
  const std::size_t mq = std::size_t{1} << q;
  for (std::size_t r = 0; r < dim_; ++r) {
    if (r & mq) continue;
    const std::size_t r1 = r | mq;
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & mq) continue;
      const std::size_t c1 = c | mq;
      double* p00r = re_.data() + (r * dim_ + c) * kLanes;
      double* p00i = im_.data() + (r * dim_ + c) * kLanes;
      double* p01r = re_.data() + (r * dim_ + c1) * kLanes;
      double* p01i = im_.data() + (r * dim_ + c1) * kLanes;
      double* p10r = re_.data() + (r1 * dim_ + c) * kLanes;
      double* p10i = im_.data() + (r1 * dim_ + c) * kLanes;
      double* p11r = re_.data() + (r1 * dim_ + c1) * kLanes;
      double* p11i = im_.data() + (r1 * dim_ + c1) * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) {
        p00r[l] *= n0[l];
        p00i[l] *= n0[l];
        const double v01r = p01r[l], v01i = p01i[l];
        p01r[l] = v01r * f01r[l] - v01i * f01i[l];
        p01i[l] = v01r * f01i[l] + v01i * f01r[l];
        const double v10r = p10r[l], v10i = p10i[l];
        p10r[l] = v10r * f10r[l] - v10i * f10i[l];
        p10i[l] = v10r * f10i[l] + v10i * f10r[l];
        p11r[l] *= n1[l];
        p11i[l] *= n1[l];
      }
    }
  }
}

void BatchedDensityMatrix::apply_diag1(int q, cplx d0, cplx d1) {
  cplx d0s[kLanes], d1s[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    d0s[l] = d0;
    d1s[l] = d1;
  }
  apply_diag1_lanes(q, d0s, d1s);
}

void BatchedDensityMatrix::apply2_lanes(int q0, int q1,
                                        const std::array<cplx, 16>* us) {
  require(q0 >= 0 && q0 < num_qubits_ && q1 >= 0 && q1 < num_qubits_ &&
              q0 != q1,
          "invalid qubit pair");
  // Lane-major operands and their dagger (adag[c*4+r] = conj(a[r*4+c]),
  // precomputed once as in right_mul2_dag).
  double ar[16][kLanes], ai[16][kLanes];
  double dr[16][kLanes], di[16][kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        const cplx a = us[l][r * 4 + c];
        ar[r * 4 + c][l] = a.real();
        ai[r * 4 + c][l] = a.imag();
        const cplx d = std::conj(a);
        dr[c * 4 + r][l] = d.real();
        di[c * 4 + r][l] = d.imag();
      }
    }
  }
  const std::size_t m0 = std::size_t{1} << q0;
  const std::size_t m1 = std::size_t{1} << q1;
  // Pass 1: rho -> U rho, same traversal as left_mul2.
  for (std::size_t r = 0; r < dim_; ++r) {
    if ((r & m0) || (r & m1)) continue;
    const std::size_t rr[4] = {r, r | m1, r | m0, r | m0 | m1};
    for (std::size_t c = 0; c < dim_; ++c) {
      double* vr[4];
      double* vi[4];
      for (int k = 0; k < 4; ++k) {
        vr[k] = re_.data() + (rr[k] * dim_ + c) * kLanes;
        vi[k] = im_.data() + (rr[k] * dim_ + c) * kLanes;
      }
      double tr[4][kLanes], ti[4][kLanes];
      for (int k = 0; k < 4; ++k) {
        const std::size_t k4 = static_cast<std::size_t>(k) * 4;
#pragma omp simd
        for (std::size_t l = 0; l < kLanes; ++l) {
          // a[k4+0]*v0 + a[k4+1]*v1 + a[k4+2]*v2 + a[k4+3]*v3, left to right.
          tr[k][l] = (((ar[k4 + 0][l] * vr[0][l] - ai[k4 + 0][l] * vi[0][l]) +
                       (ar[k4 + 1][l] * vr[1][l] - ai[k4 + 1][l] * vi[1][l])) +
                      (ar[k4 + 2][l] * vr[2][l] - ai[k4 + 2][l] * vi[2][l])) +
                     (ar[k4 + 3][l] * vr[3][l] - ai[k4 + 3][l] * vi[3][l]);
          ti[k][l] = (((ar[k4 + 0][l] * vi[0][l] + ai[k4 + 0][l] * vr[0][l]) +
                       (ar[k4 + 1][l] * vi[1][l] + ai[k4 + 1][l] * vr[1][l])) +
                      (ar[k4 + 2][l] * vi[2][l] + ai[k4 + 2][l] * vr[2][l])) +
                     (ar[k4 + 3][l] * vi[3][l] + ai[k4 + 3][l] * vr[3][l]);
        }
      }
      for (int k = 0; k < 4; ++k) {
#pragma omp simd
        for (std::size_t l = 0; l < kLanes; ++l) {
          vr[k][l] = tr[k][l];
          vi[k][l] = ti[k][l];
        }
      }
    }
  }
  // Pass 2: rho -> rho U^dag, same traversal as right_mul2_dag (the scalar
  // kernel accumulates v[j] * adag[j*4+k] from complex zero, j ascending).
  for (std::size_t r = 0; r < dim_; ++r) {
    const std::size_t row = r * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((c & m0) || (c & m1)) continue;
      const std::size_t cc[4] = {c, c | m1, c | m0, c | m0 | m1};
      double* vr[4];
      double* vi[4];
      for (int k = 0; k < 4; ++k) {
        vr[k] = re_.data() + (row + cc[k]) * kLanes;
        vi[k] = im_.data() + (row + cc[k]) * kLanes;
      }
      double tr[4][kLanes], ti[4][kLanes];
      for (int k = 0; k < 4; ++k) {
#pragma omp simd
        for (std::size_t l = 0; l < kLanes; ++l) {
          double accr = 0.0, acci = 0.0;
          for (int j = 0; j < 4; ++j) {
            const std::size_t jk = static_cast<std::size_t>(j) * 4 +
                                   static_cast<std::size_t>(k);
            accr += vr[j][l] * dr[jk][l] - vi[j][l] * di[jk][l];
            acci += vr[j][l] * di[jk][l] + vi[j][l] * dr[jk][l];
          }
          tr[k][l] = accr;
          ti[k][l] = acci;
        }
      }
      for (int k = 0; k < 4; ++k) {
#pragma omp simd
        for (std::size_t l = 0; l < kLanes; ++l) {
          vr[k][l] = tr[k][l];
          vi[k][l] = ti[k][l];
        }
      }
    }
  }
}

void BatchedDensityMatrix::apply2(int q0, int q1,
                                  const std::array<cplx, 16>& u) {
  std::array<std::array<cplx, 16>, kLanes> broadcast;
  broadcast.fill(u);
  apply2_lanes(q0, q1, broadcast.data());
}

void BatchedDensityMatrix::apply_cx(int control, int target) {
  require(control >= 0 && control < num_qubits_ && target >= 0 &&
              target < num_qubits_ && control != target,
          "invalid qubit pair");
  // Same entry-pair relabeling as DensityMatrix::apply_cx — pure value
  // swaps, so lanes are trivially bitwise identical.
  const std::size_t mc = std::size_t{1} << control;
  const std::size_t mt = std::size_t{1} << target;
  auto swap_rows = [&](std::size_t a, std::size_t b) {
    double* rap = re_.data() + a * kLanes;
    double* iap = im_.data() + a * kLanes;
    double* rbp = re_.data() + b * kLanes;
    double* ibp = im_.data() + b * kLanes;
#pragma omp simd
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double tr = rap[l], ti = iap[l];
      rap[l] = rbp[l];
      iap[l] = ibp[l];
      rbp[l] = tr;
      ibp[l] = ti;
    }
  };
  for (std::size_t r = 0; r < dim_; ++r) {
    const std::size_t pr = (r & mc) ? (r ^ mt) : r;
    if (pr < r) continue;
    for (std::size_t c = 0; c < dim_; ++c) {
      const std::size_t pc = (c & mc) ? (c ^ mt) : c;
      if (pr == r) {
        if (pc > c) swap_rows(r * dim_ + c, r * dim_ + pc);
      } else {
        swap_rows(r * dim_ + c, pr * dim_ + pc);
      }
    }
  }
}

void BatchedDensityMatrix::apply_channel1(int q, const FusedChannel1& ch) {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
  if (ch.is_identity()) return;
  const std::size_t mq = std::size_t{1} << q;
  for (std::size_t r = 0; r < dim_; ++r) {
    if (r & mq) continue;
    const std::size_t r1 = r | mq;
    for (std::size_t c = 0; c < dim_; ++c) {
      if (c & mq) continue;
      const std::size_t c1 = c | mq;
      double* p00r = re_.data() + (r * dim_ + c) * kLanes;
      double* p00i = im_.data() + (r * dim_ + c) * kLanes;
      double* p01r = re_.data() + (r * dim_ + c1) * kLanes;
      double* p01i = im_.data() + (r * dim_ + c1) * kLanes;
      double* p10r = re_.data() + (r1 * dim_ + c) * kLanes;
      double* p10i = im_.data() + (r1 * dim_ + c) * kLanes;
      double* p11r = re_.data() + (r1 * dim_ + c1) * kLanes;
      double* p11i = im_.data() + (r1 * dim_ + c1) * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double v00r = p00r[l], v00i = p00i[l];
        const double v11r = p11r[l], v11i = p11i[l];
        // Populations mix through the real 2x2, coherences scale by off —
        // the same statement order as DensityMatrix::apply_channel1.
        p00r[l] = ch.d00_00 * v00r + ch.d00_11 * v11r;
        p00i[l] = ch.d00_00 * v00i + ch.d00_11 * v11i;
        p11r[l] = ch.d11_00 * v00r + ch.d11_11 * v11r;
        p11i[l] = ch.d11_00 * v00i + ch.d11_11 * v11i;
        p01r[l] *= ch.off;
        p01i[l] *= ch.off;
        p10r[l] *= ch.off;
        p10i[l] *= ch.off;
      }
    }
  }
}

void BatchedDensityMatrix::apply_channel2(int qa, int qb,
                                          const FusedChannel2& ch) {
  require(qa >= 0 && qa < num_qubits_ && qb >= 0 && qb < num_qubits_ &&
              qa != qb,
          "invalid qubit pair");
  if (ch.is_identity()) return;
  const std::size_t ma = std::size_t{1} << qa;
  const std::size_t mb = std::size_t{1} << qb;
  const std::size_t offsets[4] = {0, mb, ma, ma | mb};
  for (std::size_t r = 0; r < dim_; ++r) {
    if ((r & ma) || (r & mb)) continue;
    for (std::size_t c = 0; c < dim_; ++c) {
      if ((c & ma) || (c & mb)) continue;
      // Lane rows of the 4x4 block, local index k = 2*bit(qa) + bit(qb).
      // The scalar kernel gathers the block, transforms it in statement
      // order, and writes it back; applying the same statement sequence
      // in place is value-identical because every statement reads only
      // block entries the sequence has already brought up to date.
      double* er[4][4];
      double* ei[4][4];
      for (int kr = 0; kr < 4; ++kr) {
        for (int kc = 0; kc < 4; ++kc) {
          const std::size_t idx = (r | offsets[kr]) * dim_ + (c | offsets[kc]);
          er[kr][kc] = re_.data() + idx * kLanes;
          ei[kr][kc] = im_.data() + idx * kLanes;
        }
      }
      if (ch.quarter_p != 0.0) {
        double tr[kLanes], ti[kLanes];
#pragma omp simd
        for (std::size_t l = 0; l < kLanes; ++l) {
          tr[l] = ((er[0][0][l] + er[1][1][l]) + er[2][2][l]) + er[3][3][l];
          ti[l] = ((ei[0][0][l] + ei[1][1][l]) + ei[2][2][l]) + ei[3][3][l];
        }
        for (int kr = 0; kr < 4; ++kr) {
          for (int kc = 0; kc < 4; ++kc) {
#pragma omp simd
            for (std::size_t l = 0; l < kLanes; ++l) {
              er[kr][kc][l] *= ch.keep;
              ei[kr][kc][l] *= ch.keep;
            }
          }
        }
        for (int k = 0; k < 4; ++k) {
#pragma omp simd
          for (std::size_t l = 0; l < kLanes; ++l) {
            er[k][k][l] += ch.quarter_p * tr[l];
            ei[k][k][l] += ch.quarter_p * ti[l];
          }
        }
      }
      if (ch.gamma_a != 0.0 || ch.s_a != 1.0) {
        for (int rb = 0; rb < 2; ++rb) {
          for (int cb = 0; cb < 2; ++cb) {
#pragma omp simd
            for (std::size_t l = 0; l < kLanes; ++l) {
              er[rb][cb][l] += ch.gamma_a * er[2 + rb][2 + cb][l];
              ei[rb][cb][l] += ch.gamma_a * ei[2 + rb][2 + cb][l];
              er[2 + rb][2 + cb][l] *= ch.keep_a;
              ei[2 + rb][2 + cb][l] *= ch.keep_a;
              er[rb][2 + cb][l] *= ch.s_a;
              ei[rb][2 + cb][l] *= ch.s_a;
              er[2 + rb][cb][l] *= ch.s_a;
              ei[2 + rb][cb][l] *= ch.s_a;
            }
          }
        }
      }
      if (ch.gamma_b != 0.0 || ch.s_b != 1.0) {
        for (int ra = 0; ra < 2; ++ra) {
          for (int ca = 0; ca < 2; ++ca) {
#pragma omp simd
            for (std::size_t l = 0; l < kLanes; ++l) {
              er[2 * ra][2 * ca][l] += ch.gamma_b * er[2 * ra + 1][2 * ca + 1][l];
              ei[2 * ra][2 * ca][l] += ch.gamma_b * ei[2 * ra + 1][2 * ca + 1][l];
              er[2 * ra + 1][2 * ca + 1][l] *= ch.keep_b;
              ei[2 * ra + 1][2 * ca + 1][l] *= ch.keep_b;
              er[2 * ra][2 * ca + 1][l] *= ch.s_b;
              ei[2 * ra][2 * ca + 1][l] *= ch.s_b;
              er[2 * ra + 1][2 * ca][l] *= ch.s_b;
              ei[2 * ra + 1][2 * ca][l] *= ch.s_b;
            }
          }
        }
      }
    }
  }
}

void BatchedDensityMatrix::lane_probabilities(std::size_t lane,
                                              std::vector<double>& probs) const {
  require(lane < kLanes, "lane index out of range");
  probs.resize(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    probs[i] = re_[(i * dim_ + i) * kLanes + lane];
  }
}

}  // namespace qucad
