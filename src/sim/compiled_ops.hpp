#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "noise/noise_model.hpp"
#include "sim/batched_state.hpp"
#include "sim/density_matrix.hpp"
#include "sim/statevector.hpp"
#include "transpile/physical.hpp"

namespace qucad {

/// \file
/// The shared compiled-program abstraction: a PhysicalCircuit (optionally
/// with a NoiseModel folded in) lowered ONCE into a flat, replayable op
/// stream. Two engines replay it:
///   - the density-matrix engine (NoisyExecutor::run_z / run_z_batch), which
///     replays one program per evaluation sample, and
///   - the pure-statevector engine (PureExecutor / compiled_adjoint_gradient),
///     which replays one program per (sample, theta) pair during training.
/// Symbolic slots are the reason a single program can be shared: RZ angles
/// affine in an input-encoding slot stay symbolic across samples, and RZ
/// angles affine in a trainable slot stay symbolic across optimizer steps.

/// Op vocabulary of a compiled program. The lowering pass turns a
/// PhysicalCircuit + NoiseModel into a flat stream of these so that every
/// replay skips re-lowering, noise-model lookups, and redundant passes over
/// the state.
enum class COpKind : std::uint8_t {
  Unitary1,  ///< fused 2x2 unitary on q0 (a whole RZ/SX/X chain segment)
  Diag1,     ///< literal diagonal unitary on q0 (pure virtual-Z chain)
  SymDiag1,  ///< symbolic RZ: angle affine in one input or trainable slot
  SymUni1,   ///< symbolic RZ times a fused prefix: diag(angle) * u, one pass
  CRot2,     ///< CX * (I (x) u2 * diag(angle) * u) * CX, one two-qubit pass
  Cx,        ///< CX on (q0 = control, q1 = target), applied as a permutation
  Channel1,  ///< fused depolarizing + thermal error site on q0
  Channel2,  ///< fused CX error site on (q0 = min, q1 = max)
};

/// One compiled operation. Only the fields of the active kind are
/// meaningful. For the symbolic kinds the resolved angle is
///   input_scale * x[input_index] + angle_offset   (input_index >= 0), or
///   theta_scale * theta[theta_index] + angle_offset  (theta_index >= 0);
/// exactly one of input_index / theta_index is >= 0 (the lowering never
/// mixes parameter spaces inside a single RZ).
///
/// SymUni1 is the symbolic-sandwich fusion: the single-qubit chain pending
/// in front of a symbolic RZ is absorbed as `u`, and the whole op applies
///   diag(e^{-i a/2}, e^{+i a/2}) * u
/// in ONE pass over the state. Absorption is only ever of PRECEDING ops, so
/// the RZ generator (Z on q0) still sits at the top of the op — the adjoint
/// engine's gradient hook is unchanged.
///
/// CRot2 is the controlled-rotation sandwich the basis lowering emits for
/// CRX/CRY/CRZ: CX(q0,q1), a single-qubit chain on the target q1 containing
/// at most one symbolic RZ, CX(q0,q1) — fused into one two-qubit pass
///   CX * (I (x) M(a)) * CX,   M(a) = u2 * diag(e^{-i a/2}, e^{+i a/2}) * u
/// (block-diagonal: M on the control-0 subspace, X M X on control-1). Error
/// channels inside the pattern abort the fusion, so noisy programs keep the
/// explicit CX + channel sites. With no symbolic interior the angle resolves
/// to the literal angle_offset (0 by construction).
struct CompiledOp {
  COpKind kind = COpKind::Diag1;
  int q0 = 0;
  int q1 = -1;
  std::array<cplx, 4> u{};  ///< Unitary1 / SymUni1 (full); Diag1 uses u[0],
                            ///< u[3]; CRot2 pre-rotation factor
  std::array<cplx, 4> u2{};  ///< CRot2 post-rotation factor
  FusedChannel1 ch1{};      ///< Channel1
  FusedChannel2 ch2{};      ///< Channel2
  double angle_offset = 0.0;  ///< SymDiag1 / SymUni1 / CRot2
  int input_index = -1;       ///< symbolic input slot, -1 = none
  double input_scale = 1.0;
  int theta_index = -1;       ///< symbolic trainable slot, -1 = none
  double theta_scale = 1.0;
};

/// Knobs of the lowering pass. The defaults are correct for every Z-basis
/// measurement consumer; disable them only when the full final state
/// (off-diagonals / global phase included) must match the gate-by-gate
/// reference bit for bit.
struct CompileOptions {
  /// Fuse adjacent single-qubit ops (between error sites and symbolic RZs)
  /// into one 2x2.
  bool fuse_single_qubit = true;
  /// Fuse CX-sandwich controlled-rotation patterns into single CRot2 ops.
  /// Only fires when nothing noisy sits inside the pattern, so it is
  /// effectively the pure statevector path's optimization.
  bool fuse_cx_sandwich = true;
  /// Drop trailing diagonal ops (virtual Z, literal or symbolic) that can no
  /// longer affect Z-basis measurement statistics. Preserves diagonal
  /// probabilities, every `<Z>`, and every `d<Z>/dtheta` exactly (a trailing RZ
  /// commutes with the observable, so its gradient is identically zero), but
  /// not off-diagonal entries of a final density matrix or the phases of a
  /// final statevector — disable when the full state must match the
  /// gate-by-gate reference.
  bool drop_trailing_diagonal = true;
};

/// Compilation statistics, mainly for tests and perf records.
struct CompileStats {
  std::size_t source_ops = 0;     ///< PhysOps in the input circuit
  std::size_t compiled_ops = 0;   ///< ops in the emitted stream
  std::size_t fused_unitaries = 0;
  std::size_t fused_cx_sandwiches = 0;  ///< CRot2 ops emitted
  std::size_t channels = 0;
  std::size_t dropped_trailing = 0;
};

/// A PhysicalCircuit + NoiseModel lowered once into a replayable op stream.
///
/// Invariants:
///  - Immutable after compile(); all replay methods are const and safe to
///    call concurrently. Each replay writes only the caller's scratch state
///    (DensityMatrix or StateVector), so per-thread scratch reuse — the
///    run_z_batch / batch_loss_grad threading pattern — needs no locking.
///  - Symbolic slots survive compilation: input-symbolic RZ angles are
///    resolved against `x` and trainable-symbolic RZ angles against `theta`
///    at replay time, so one program serves every (sample, theta) pair.
///  - num_trainable() / num_inputs() are computed from the SOURCE circuit,
///    not the surviving ops: a trainable RZ elided by drop_trailing_diagonal
///    still counts (its gradient is exactly zero, not absent).
class CompiledProgram {
 public:
  CompiledProgram() = default;

  /// Lowers `circuit` with the calibrated channels of `noise` folded in.
  /// Pass a default NoiseModel (num_qubits() == 0) for a noiseless program —
  /// required for the statevector replay paths.
  static CompiledProgram compile(const PhysicalCircuit& circuit,
                                 const NoiseModel& noise,
                                 const CompileOptions& options = {});

  int num_qubits() const { return num_qubits_; }
  /// 1 + the largest trainable slot referenced by the source circuit.
  int num_trainable() const { return num_trainable_; }
  /// 1 + the largest input-encoding slot referenced by the source circuit.
  int num_inputs() const { return num_inputs_; }
  /// True when the program contains error-channel ops; such a program can
  /// only be replayed on a density matrix.
  bool has_channels() const { return stats_.channels > 0; }
  const std::vector<CompiledOp>& ops() const { return ops_; }
  const CompileStats& stats() const { return stats_; }

  /// Replays the program on `dm` for input sample `x` and parameters
  /// `theta` (pass an empty span when the program has no trainable slots,
  /// i.e. theta was bound before lowering). `dm` is reset first, so a
  /// caller-owned scratch matrix can be reused across samples without
  /// reallocation.
  void run(DensityMatrix& dm, std::span<const double> x,
           std::span<const double> theta = {}) const;

  /// Replays the program (channels included) over
  /// BatchedDensityMatrix::kLanes samples at once — the SoA lane
  /// counterpart of run(). `xs[lane]` points at that lane's feature vector,
  /// which the CALLER must have validated to hold at least num_inputs()
  /// entries (the batch entry points do this up front). theta and every
  /// error channel are lane-uniform; only input-symbolic RZ angles diverge
  /// per lane. Walks the SAME op stream with the same angle helpers as
  /// run(), so each lane's entries are bitwise identical to a scalar run()
  /// of that sample (see sim/batched_state.hpp).
  void run_lanes(BatchedDensityMatrix& bdm,
                 const std::array<const double*, BatchedStateVector::kLanes>& xs,
                 std::span<const double> theta = {}) const;

  /// Replays a noiseless program on `sv` — the compiled forward pass of the
  /// statevector training path. Requires has_channels() == false. `sv` is
  /// reset first (same scratch-reuse contract as run()). With the default
  /// CompileOptions the final state matches the gate-by-gate reference up to
  /// a global phase and elided trailing virtual-Z rotations; probabilities
  /// and every `<Z>` match exactly.
  ///
  /// When `resolved` is non-null it is resized to ops().size() and entry i
  /// receives the angle-resolved 2x2 of symbolic op i (SymDiag1 diagonal in
  /// [0]/[3], SymUni1 full matrix, CRot2 interior matrix) — the adjoint's
  /// reverse sweep daggers these instead of re-resolving every op.
  void run_pure(StateVector& sv, std::span<const double> x,
                std::span<const double> theta = {},
                std::vector<std::array<cplx, 4>>* resolved = nullptr) const;

  /// Replays a noiseless program over BatchedStateVector::kLanes samples at
  /// once — the SoA lane counterpart of run_pure. `xs[lane]` points at that
  /// lane's feature vector, which the CALLER must have validated to hold at
  /// least num_inputs() entries (the batch entry points do this up front).
  /// theta is shared by every lane, so only input-symbolic angles diverge
  /// per lane; every other op is applied with one broadcast matrix.
  ///
  /// Walks the SAME op stream as run_pure and builds per-lane matrices with
  /// the same helpers, so each lane's amplitudes are bitwise identical to a
  /// scalar run_pure of that sample (see sim/batched_state.hpp).
  ///
  /// When `resolved` is non-null it is resized to ops().size() * kLanes and
  /// entry `idx * kLanes + lane` receives lane's angle-resolved 2x2 of
  /// symbolic op idx — the lane adjoint's reverse-sweep input.
  void run_pure_lanes(
      BatchedStateVector& bsv,
      const std::array<const double*, BatchedStateVector::kLanes>& xs,
      std::span<const double> theta = {},
      std::vector<std::array<cplx, 4>>* resolved = nullptr) const;

 private:
  int num_qubits_ = 0;
  int num_trainable_ = 0;
  int num_inputs_ = 0;
  std::vector<CompiledOp> ops_;
  CompileStats stats_;
};

/// Resolved angle of a SymDiag1 / SymUni1 op against (x, theta).
double resolve_sym_angle(const CompiledOp& op, std::span<const double> x,
                         std::span<const double> theta);

/// RZ(angle) diagonal (e^{-i angle/2}, e^{+i angle/2}) via one sincos —
/// cheaper than two complex exponentials in the replay hot loops.
inline std::array<cplx, 2> rz_diag(double angle) {
  const double c = std::cos(angle / 2.0);
  const double s = std::sin(angle / 2.0);
  return {cplx{c, -s}, cplx{c, s}};
}

/// The full 2x2 of a SymUni1 op at a resolved angle: diag(angle) * op.u.
std::array<cplx, 4> sym_uni_matrix(const CompiledOp& op, double angle);

/// The interior 2x2 of a CRot2 op at a resolved angle:
/// M = op.u2 * diag(angle) * op.u (applied on the target between the CXs).
std::array<cplx, 4> crot_inner_matrix(const CompiledOp& op, double angle);

/// Folds one pulse error site (depolarizing then thermal relaxation, the
/// order NoisyExecutor::run_density applies) into closed-form coefficients.
FusedChannel1 fuse_pulse_channel(const PulseNoise& noise);

/// Folds one CX error site (two-qubit depolarizing, then thermal on min(q),
/// then thermal on max(q)) into closed-form coefficients.
FusedChannel2 fuse_cx_channel(const CxNoise& noise);

}  // namespace qucad
