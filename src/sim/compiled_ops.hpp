#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "noise/noise_model.hpp"
#include "sim/density_matrix.hpp"
#include "transpile/physical.hpp"

namespace qucad {

/// Op vocabulary of a compiled noisy program. The lowering pass turns a
/// PhysicalCircuit + NoiseModel into a flat stream of these so that every
/// density-matrix replay (one per evaluation sample) skips re-lowering,
/// noise-model lookups, and redundant passes over rho.
enum class COpKind : std::uint8_t {
  Unitary1,  // fused 2x2 unitary on q0 (a whole RZ/SX/X chain segment)
  Diag1,     // literal diagonal unitary on q0 (pure virtual-Z chain)
  SymDiag1,  // data-dependent RZ: angle = input_scale * x[input_index] + offset
  Cx,        // CX on (q0 = control, q1 = target), applied as a permutation
  Channel1,  // fused depolarizing + thermal error site on q0
  Channel2,  // fused CX error site on (q0 = min, q1 = max)
};

struct CompiledOp {
  COpKind kind = COpKind::Diag1;
  int q0 = 0;
  int q1 = -1;
  std::array<cplx, 4> u{};  // Unitary1 (full); Diag1 uses u[0], u[3]
  FusedChannel1 ch1{};      // Channel1
  FusedChannel2 ch2{};      // Channel2
  double angle_offset = 0.0;  // SymDiag1
  int input_index = -1;       // SymDiag1
  double input_scale = 1.0;   // SymDiag1
};

struct CompileOptions {
  /// Fuse adjacent single-qubit ops (between error sites) into one 2x2.
  bool fuse_single_qubit = true;
  /// Drop trailing diagonal ops (virtual Z, literal or symbolic) that can no
  /// longer affect Z-basis measurement statistics. Preserves diagonal
  /// probabilities and every <Z> exactly, but not off-diagonal entries of
  /// the final density matrix — disable when the full state must match the
  /// gate-by-gate reference.
  bool drop_trailing_diagonal = true;
};

/// Compilation statistics, mainly for tests and perf records.
struct CompileStats {
  std::size_t source_ops = 0;     // PhysOps in the input circuit
  std::size_t compiled_ops = 0;   // ops in the emitted stream
  std::size_t fused_unitaries = 0;
  std::size_t channels = 0;
  std::size_t dropped_trailing = 0;
};

/// A PhysicalCircuit + NoiseModel lowered once into a replayable op stream.
/// Data-dependent RZ angles stay symbolic, so one compiled program serves
/// every evaluation sample. Thread-safe to run concurrently (immutable after
/// compile; each run writes only the caller's DensityMatrix).
class CompiledProgram {
 public:
  CompiledProgram() = default;

  /// Lowers `circuit` with the calibrated channels of `noise` folded in.
  /// Pass a default NoiseModel (num_qubits() == 0) for a noiseless program.
  static CompiledProgram compile(const PhysicalCircuit& circuit,
                                 const NoiseModel& noise,
                                 const CompileOptions& options = {});

  int num_qubits() const { return num_qubits_; }
  const std::vector<CompiledOp>& ops() const { return ops_; }
  const CompileStats& stats() const { return stats_; }

  /// Replays the program on `dm` for input sample `x`. `dm` is reset first,
  /// so a caller-owned scratch matrix can be reused across samples without
  /// reallocation.
  void run(DensityMatrix& dm, std::span<const double> x) const;

 private:
  int num_qubits_ = 0;
  std::vector<CompiledOp> ops_;
  CompileStats stats_;
};

/// Folds one pulse error site (depolarizing then thermal relaxation, the
/// order NoisyExecutor::run_density applies) into closed-form coefficients.
FusedChannel1 fuse_pulse_channel(const PulseNoise& noise);

/// Folds one CX error site (two-qubit depolarizing, then thermal on min(q),
/// then thermal on max(q)) into closed-form coefficients.
FusedChannel2 fuse_cx_channel(const CxNoise& noise);

}  // namespace qucad
