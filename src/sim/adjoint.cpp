#include "sim/adjoint.hpp"

#include <cmath>

#include "common/require.hpp"

namespace qucad {

namespace {

// Pauli axis of a rotation gate's generator.
enum class Axis { X, Y, Z };

Axis rotation_axis(GateKind kind) {
  switch (kind) {
    case GateKind::RX:
    case GateKind::CRX:
      return Axis::X;
    case GateKind::RY:
    case GateKind::CRY:
      return Axis::Y;
    case GateKind::RZ:
    case GateKind::CRZ:
      return Axis::Z;
    default:
      require(false, "rotation_axis called on non-rotation gate");
      return Axis::Z;
  }
}

// Applies the (projected) Pauli generator of a rotation gate in place:
// sigma_axis on `target`, restricted to amplitudes whose `control` bit is 1
// when control >= 0 (amplitudes with control bit 0 are zeroed).
void apply_generator(std::vector<cplx>& amps, Axis axis, int target, int control) {
  const std::size_t mt = std::size_t{1} << target;
  const std::size_t mc = control >= 0 ? (std::size_t{1} << control) : 0;
  const cplx iu{0.0, 1.0};
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if (mc != 0 && !(i & mc)) {
      amps[i] = 0.0;
      continue;
    }
    if (axis == Axis::Z) {
      if (i & mt) amps[i] = -amps[i];
      continue;
    }
    if (i & mt) continue;  // handle each (0,1) pair once, at the bit-0 index
    const std::size_t j = i | mt;
    const bool pair_active = mc == 0 || (j & mc);
    const cplx a0 = amps[i];
    const cplx a1 = pair_active ? amps[j] : cplx{0.0, 0.0};
    if (axis == Axis::X) {
      amps[i] = a1;
      if (pair_active) amps[j] = a0;
    } else {  // Y
      amps[i] = -iu * a1;
      if (pair_active) amps[j] = iu * a0;
    }
  }
}

// <O_eff> with O_eff = sum_q w_q Z_q for a probability vector.
double weighted_z(const std::vector<double>& probs, const std::vector<double>& w,
                  int num_qubits) {
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    double sign_sum = 0.0;
    for (int q = 0; q < num_qubits; ++q) {
      if (w[static_cast<std::size_t>(q)] == 0.0) continue;
      const double z = (i >> q) & 1 ? -1.0 : 1.0;
      sign_sum += w[static_cast<std::size_t>(q)] * z;
    }
    acc += probs[i] * sign_sum;
  }
  return acc;
}

}  // namespace

AdjointResult adjoint_gradient(const Circuit& circuit,
                               std::span<const double> theta,
                               std::span<const double> x,
                               const ObservableWeightFn& weight_fn) {
  const int n = circuit.num_qubits();

  // Forward pass.
  StateVector ket(n);
  ket.run(circuit, theta, x);

  AdjointResult result;
  result.z_expectations.resize(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) {
    result.z_expectations[static_cast<std::size_t>(q)] = ket.expectation_z(q);
  }

  const std::vector<double> weights = weight_fn(result.z_expectations);
  require(weights.size() == static_cast<std::size_t>(n),
          "observable weight vector must have one entry per qubit");

  result.gradients.assign(static_cast<std::size_t>(circuit.num_trainable()), 0.0);
  if (circuit.num_trainable() == 0) return result;

  // lambda = O_eff |psi>, O_eff diagonal in the computational basis.
  StateVector lam(n);
  {
    auto& la = lam.amplitudes();
    const auto& ka = ket.amplitudes();
    for (std::size_t i = 0; i < ka.size(); ++i) {
      double w_sum = 0.0;
      for (int q = 0; q < n; ++q) {
        const double z = (i >> q) & 1 ? -1.0 : 1.0;
        w_sum += weights[static_cast<std::size_t>(q)] * z;
      }
      la[i] = w_sum * ka[i];
    }
  }

  // Reverse sweep: maintain ket = |psi_k>, lam = U_{k+1}^dag..U_N^dag O|psi>.
  const auto& gs = circuit.gates();
  for (std::size_t idx = gs.size(); idx-- > 0;) {
    const Gate& g = gs[idx];
    const double angle = circuit.resolve_angle(g, theta, x);

    if (g.param.kind == ParamRef::Kind::Trainable) {
      // d<O>/dtheta = Im(<lam| G~ |psi_k>) where G~ is the (projected) Pauli
      // generator; see adjoint.hpp.
      std::vector<cplx> tmp = ket.amplitudes();
      const int control = is_controlled_rotation(g.kind) ? g.q0 : -1;
      const int target = is_controlled_rotation(g.kind) ? g.q1 : g.q0;
      apply_generator(tmp, rotation_axis(g.kind), target, control);
      const cplx overlap = inner(lam.amplitudes(), tmp);
      result.gradients[static_cast<std::size_t>(g.param.index)] += overlap.imag();
    }

    // Un-apply the gate from both states.
    const CMat u_dag = gate_matrix(g.kind, angle).dagger();
    if (g.num_qubits() == 1) {
      const auto m = as_array2(u_dag);
      ket.apply1(g.q0, m);
      lam.apply1(g.q0, m);
    } else {
      const auto m = as_array4(u_dag);
      ket.apply2(g.q0, g.q1, m);
      lam.apply2(g.q0, g.q1, m);
    }
  }
  return result;
}

AdjointResult adjoint_gradient(const Circuit& circuit,
                               std::span<const double> theta,
                               std::span<const double> x,
                               std::vector<double> fixed_weights) {
  return adjoint_gradient(
      circuit, theta, x,
      [w = std::move(fixed_weights)](const std::vector<double>&) { return w; });
}

std::vector<double> parameter_shift_gradient(const Circuit& circuit,
                                             std::span<const double> theta,
                                             std::span<const double> x,
                                             const std::vector<double>& weights) {
  require(weights.size() == static_cast<std::size_t>(circuit.num_qubits()),
          "observable weight vector must have one entry per qubit");
  // Bind everything so individual gate angles can be shifted independently
  // (correct for shared parameters by the chain rule: contributions add).
  const Circuit bound = circuit.bind(theta, x);

  auto evaluate = [&](const Circuit& c) {
    StateVector sv(c.num_qubits());
    sv.run(c);
    return weighted_z(sv.probabilities(), weights, c.num_qubits());
  };

  std::vector<double> grads(static_cast<std::size_t>(circuit.num_trainable()), 0.0);
  const auto& original_gates = circuit.gates();
  for (std::size_t gi = 0; gi < original_gates.size(); ++gi) {
    const Gate& g = original_gates[gi];
    if (g.param.kind != ParamRef::Kind::Trainable) continue;

    auto shifted_value = [&](double shift) {
      Circuit c = bound;
      Circuit shifted(c.num_qubits());
      std::size_t k = 0;
      for (const Gate& og : c.gates()) {
        Gate copy = og;
        if (k == gi) copy.value += shift;
        shifted.add(copy);
        ++k;
      }
      return evaluate(shifted);
    };

    double grad = 0.0;
    if (is_single_qubit_rotation(g.kind)) {
      grad = 0.5 * (shifted_value(M_PI / 2.0) - shifted_value(-M_PI / 2.0));
    } else {
      // Four-term rule for controlled rotations (generator eigenvalues
      // {0, +-1/2}).
      const double c1 = (std::sqrt(2.0) + 1.0) / (4.0 * std::sqrt(2.0));
      const double c2 = (std::sqrt(2.0) - 1.0) / (4.0 * std::sqrt(2.0));
      grad = c1 * (shifted_value(M_PI / 2.0) - shifted_value(-M_PI / 2.0)) -
             c2 * (shifted_value(3.0 * M_PI / 2.0) - shifted_value(-3.0 * M_PI / 2.0));
    }
    grads[static_cast<std::size_t>(g.param.index)] += grad;
  }
  return grads;
}

}  // namespace qucad
