#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace qucad {

/// \file
/// SoA batched statevector: the sample-vectorized state behind the compiled
/// engines' lane replay. Where StateVector holds one sample's amplitudes as
/// interleaved complex numbers, BatchedStateVector holds kLanes samples'
/// amplitudes in structure-of-arrays layout — separate real and imaginary
/// planes indexed `[amplitude][sample_lane]` — so every compiled op applies
/// across all lanes with unit-stride inner loops that the compiler
/// vectorizes (`#pragma omp simd`; build with -fopenmp-simd, no OpenMP
/// runtime needed).
///
/// Lane-uniform vs lane-divergent ops: within one replayed batch, theta is
/// shared by every lane, so literal unitaries/diagonals, CX permutations,
/// and theta-symbolic RZ angles resolve to ONE matrix broadcast across
/// lanes. Only input-symbolic RZ angles (the data encoders) diverge per
/// lane, which is why every kernel below comes in a uniform and a
/// `_lanes` (per-lane matrix) variant.
///
/// Arithmetic contract: each lane's amplitudes evolve through EXACTLY the
/// same floating-point operations, in the same order, as a scalar
/// StateVector replay of that sample (plain mul/add complex arithmetic, no
/// reassociation). The sampled backend's batched path relies on this to
/// reproduce its per-sample shot draws bit for bit.

/// How a batch entry point replays its samples.
enum class BatchReplay : std::uint8_t {
  /// Lane replay unless the QUCAD_SCALAR_REPLAY environment knob forces the
  /// scalar path (see docs/BUILDING.md).
  kAuto = 0,
  kLanes = 1,   ///< SoA lane replay (full blocks; scalar for the ragged tail)
  kScalar = 2,  ///< per-sample scalar replay (the 1e-10-pinned reference)
};

/// False when the QUCAD_SCALAR_REPLAY environment variable is set non-empty
/// (checked once per process): the kill switch for the SIMD lane path.
bool lane_replay_enabled();

/// Resolves a BatchReplay request against the environment knob.
inline bool use_lane_replay(BatchReplay replay) {
  if (replay == BatchReplay::kLanes) return true;
  if (replay == BatchReplay::kScalar) return false;
  return lane_replay_enabled();
}

/// kLanes statevectors evolved in lockstep. Same qubit/index conventions as
/// StateVector (qubit 0 = least significant bit of the amplitude index);
/// storage is `re[amp * kLanes + lane]` plus the matching `im` plane.
class BatchedStateVector {
 public:
  /// Lanes per block: 8 doubles = one cache line per plane row, wide enough
  /// for AVX2 (4 doubles) and AVX-512 (8) vectors.
  static constexpr std::size_t kLanes = 8;

  explicit BatchedStateVector(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  /// Amplitudes per lane (2^num_qubits).
  std::size_t dim() const { return dim_; }

  /// Raw SoA planes, `[amp * kLanes + lane]` — for the batched adjoint's
  /// fused ket/lam kernels.
  double* re() { return re_.data(); }
  double* im() { return im_.data(); }
  const double* re() const { return re_.data(); }
  const double* im() const { return im_.data(); }

  /// Resets every lane to |0...0>.
  void reset();

  /// Applies one 2x2 matrix (row-major) to qubit q of every lane.
  void apply1(int q, const std::array<cplx, 4>& m);

  /// Per-lane 2x2 matrices: ms[lane] applies to that lane only (the
  /// input-symbolic SymUni1 path).
  void apply1_lanes(int q, const std::array<cplx, 4>* ms);

  /// Applies diag(d0, d1) to qubit q of every lane.
  void apply_diag1(int q, cplx d0, cplx d1);

  /// Per-lane diagonals d0s[lane], d1s[lane] (the input-symbolic RZ path —
  /// the only lane-divergent op a compiled pure program contains besides
  /// its SymUni1/CRot2 wrappers).
  void apply_diag1_lanes(int q, const cplx* d0s, const cplx* d1s);

  /// CRot2 block pass: m on the control-0 target pair, X m X on the
  /// control-1 pair (see CompiledProgram::run_pure), every lane.
  void apply_crot(int control, int target, const std::array<cplx, 4>& m);

  /// Per-lane CRot2 interior matrices.
  void apply_crot_lanes(int control, int target, const std::array<cplx, 4>* ms);

  /// CX as an amplitude-row swap, every lane.
  void apply_cx(int control, int target);

  /// `<Z>` of each readout slot per lane, written to
  /// `out[slot * kLanes + lane]` — slot-ordered (class position), matching
  /// PureExecutor::run_z.
  void readout_z(std::span<const int> slots, double* out) const;

  /// `<Z_q>` for every qubit per lane, written to
  /// `out[q * kLanes + lane]` (the adjoint weight-hook layout).
  void all_z(double* out) const;

  /// One lane's cumulative probability distribution over basis states, with
  /// the running total returned through `total` — built with the same
  /// accumulation order as the scalar sampling path, so the CDF is bitwise
  /// identical to a per-sample replay.
  void lane_cdf(std::size_t lane, std::vector<double>& cdf,
                double& total) const;

 private:
  int num_qubits_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> re_;
  std::vector<double> im_;
};

struct FusedChannel1;
struct FusedChannel2;

/// kLanes density matrices evolved in lockstep — the noisy engine's
/// counterpart of BatchedStateVector. Storage is SoA over the row-major
/// entries: `re[(r * dim + c) * kLanes + lane]` plus the matching `im`
/// plane, so every compiled op (unitary conjugation, CX permutation, fused
/// error channel) sweeps all lanes with unit-stride inner loops.
///
/// Same arithmetic contract as BatchedStateVector: each lane's entries
/// evolve through exactly the floating-point operations, in the order, of a
/// scalar DensityMatrix replay of that sample, so lane results are bitwise
/// identical to the per-sample reference. Error channels and theta-symbolic
/// angles are lane-uniform by construction (noise does not depend on the
/// input row); only input-symbolic RZ angles diverge per lane.
class BatchedDensityMatrix {
 public:
  static constexpr std::size_t kLanes = BatchedStateVector::kLanes;
  /// Scratch is dim^2 * kLanes complex entries (8 MiB at 8 qubits); batch
  /// entry points fall back to per-sample scalar replay above this.
  static constexpr int kMaxQubits = 8;

  explicit BatchedDensityMatrix(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  /// Rows (= columns) per lane: 2^num_qubits.
  std::size_t dim() const { return dim_; }

  /// Resets every lane to |0...0><0...0|.
  void reset();

  /// rho -> U rho U^dag on qubit q, one 2x2 for every lane.
  void apply1(int q, const std::array<cplx, 4>& u);

  /// Per-lane 2x2 matrices (the input-symbolic SymUni1 path).
  void apply1_lanes(int q, const std::array<cplx, 4>* us);

  /// rho -> U rho U^dag for diagonal U = diag(d0, d1), every lane.
  void apply_diag1(int q, cplx d0, cplx d1);

  /// Per-lane diagonals (the input-symbolic SymDiag1 path).
  void apply_diag1_lanes(int q, const cplx* d0s, const cplx* d1s);

  /// rho -> U rho U^dag for a two-qubit U (row-major 4x4, local index
  /// 2*bit(q0) + bit(q1)), every lane — the CRot2 block pass.
  void apply2(int q0, int q1, const std::array<cplx, 16>& u);

  /// Per-lane 4x4 matrices (an input-symbolic CRot2 interior).
  void apply2_lanes(int q0, int q1, const std::array<cplx, 16>* us);

  /// rho -> CX rho CX^dag as the index-pair relabeling, every lane.
  void apply_cx(int control, int target);

  /// Fused single-qubit error site, every lane (lane-uniform: calibrated
  /// noise does not depend on the sample).
  void apply_channel1(int q, const FusedChannel1& ch);

  /// Fused CX error site, every lane.
  void apply_channel2(int qa, int qb, const FusedChannel2& ch);

  /// One lane's computational-basis probabilities (the diagonal of its rho),
  /// resized and written to `probs` — a plain read, so the vector feeds the
  /// SAME scalar readout/shot-sampling code as a per-sample replay.
  void lane_probabilities(std::size_t lane, std::vector<double>& probs) const;

 private:
  int num_qubits_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> re_;
  std::vector<double> im_;
};

}  // namespace qucad
