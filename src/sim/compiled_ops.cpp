#include "sim/compiled_ops.hpp"

#include <cmath>

#include "common/require.hpp"
#include "linalg/gates.hpp"

namespace qucad {

namespace {

constexpr std::array<cplx, 4> kIdentity2{cplx{1.0, 0.0}, cplx{0.0, 0.0},
                                         cplx{0.0, 0.0}, cplx{1.0, 0.0}};

std::array<cplx, 4> mul2(const std::array<cplx, 4>& a,
                         const std::array<cplx, 4>& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

bool is_diagonal(const std::array<cplx, 4>& u, double tol = 1e-15) {
  return std::abs(u[1]) <= tol && std::abs(u[2]) <= tol;
}

/// Diagonal unitaries with d0 == d1 are a global phase: no-ops on rho.
bool is_global_phase(const std::array<cplx, 4>& u, double tol = 1e-15) {
  return is_diagonal(u, tol) && std::abs(u[0] - u[3]) <= tol;
}

/// Per-qubit accumulator for the single-qubit fusion pass.
struct Pending {
  std::array<cplx, 4> u = kIdentity2;
  bool any = false;
};

}  // namespace

FusedChannel1 fuse_pulse_channel(const PulseNoise& noise) {
  // Depolarizing(p) then thermal(gamma, lambda), written as one linear map
  // per 2x2 block. Depolarizing: rho00 -> (keep+hp) rho00 + hp rho11 (and
  // symmetrically), off-diagonals scale by keep. Thermal then mixes the
  // populations (rho00 += gamma rho11; rho11 *= 1-gamma) and scales the
  // coherences by s = sqrt((1-gamma)(1-lambda)). Composing gives:
  const double p = noise.depolarizing_p;
  const double keep = 1.0 - p;
  const double hp = 0.5 * p;
  const double gamma = noise.thermal.gamma;
  const double lambda = noise.thermal.lambda;
  const double kg = 1.0 - gamma;
  const double s = std::sqrt(kg * (1.0 - lambda));
  FusedChannel1 ch;
  ch.d00_00 = (keep + hp) + gamma * hp;
  ch.d00_11 = hp + gamma * (keep + hp);
  ch.d11_00 = kg * hp;
  ch.d11_11 = kg * (keep + hp);
  ch.off = keep * s;
  return ch;
}

FusedChannel2 fuse_cx_channel(const CxNoise& noise) {
  FusedChannel2 ch;
  ch.keep = 1.0 - noise.depolarizing_p;
  ch.quarter_p = 0.25 * noise.depolarizing_p;
  ch.gamma_a = noise.thermal_first.gamma;
  ch.keep_a = 1.0 - ch.gamma_a;
  ch.s_a = std::sqrt(ch.keep_a * (1.0 - noise.thermal_first.lambda));
  ch.gamma_b = noise.thermal_second.gamma;
  ch.keep_b = 1.0 - ch.gamma_b;
  ch.s_b = std::sqrt(ch.keep_b * (1.0 - noise.thermal_second.lambda));
  return ch;
}

CompiledProgram CompiledProgram::compile(const PhysicalCircuit& circuit,
                                         const NoiseModel& noise,
                                         const CompileOptions& options) {
  require(noise.num_qubits() == 0 || noise.num_qubits() == circuit.num_qubits(),
          "noise model qubit count mismatch");
  const bool noisy = noise.num_qubits() > 0;
  const int nq = circuit.num_qubits();

  CompiledProgram program;
  program.num_qubits_ = nq;
  program.stats_.source_ops = circuit.ops().size();

  std::vector<Pending> pending(static_cast<std::size_t>(nq));
  // Per-qubit fused channels, precomputed once (circuits revisit qubits).
  std::vector<FusedChannel1> pulse_ch;
  if (noisy) {
    pulse_ch.reserve(static_cast<std::size_t>(nq));
    for (int q = 0; q < nq; ++q) pulse_ch.push_back(fuse_pulse_channel(noise.pulse_noise(q)));
  }

  auto flush = [&](int q) {
    Pending& p = pending[static_cast<std::size_t>(q)];
    if (!p.any) return;
    if (!is_global_phase(p.u)) {
      CompiledOp op;
      op.q0 = q;
      op.u = p.u;
      if (is_diagonal(p.u)) {
        op.kind = COpKind::Diag1;
      } else {
        op.kind = COpKind::Unitary1;
        ++program.stats_.fused_unitaries;
      }
      program.ops_.push_back(op);
    }
    p.u = kIdentity2;
    p.any = false;
  };

  auto accumulate = [&](int q, const std::array<cplx, 4>& m) {
    Pending& p = pending[static_cast<std::size_t>(q)];
    p.u = mul2(m, p.u);
    p.any = true;
    if (!options.fuse_single_qubit) flush(q);
  };

  auto emit_pulse_noise = [&](int q) {
    if (!noisy) return;
    const FusedChannel1& ch = pulse_ch[static_cast<std::size_t>(q)];
    if (ch.is_identity()) return;
    CompiledOp op;
    op.kind = COpKind::Channel1;
    op.q0 = q;
    op.ch1 = ch;
    program.ops_.push_back(op);
    ++program.stats_.channels;
  };

  for (const PhysOp& phys : circuit.ops()) {
    switch (phys.kind) {
      case PhysOpKind::RZ: {
        if (phys.input_index >= 0) {
          // Data-dependent: stays symbolic so one program serves all samples.
          flush(phys.q0);
          CompiledOp op;
          op.kind = COpKind::SymDiag1;
          op.q0 = phys.q0;
          op.angle_offset = phys.angle;
          op.input_index = phys.input_index;
          op.input_scale = phys.input_scale;
          program.ops_.push_back(op);
        } else {
          const std::array<cplx, 4> rz{std::exp(cplx{0.0, -phys.angle / 2.0}),
                                       0.0, 0.0,
                                       std::exp(cplx{0.0, phys.angle / 2.0})};
          accumulate(phys.q0, rz);
        }
        break;
      }
      case PhysOpKind::SX:
        accumulate(phys.q0, sx_as_array2());
        // The error channel must follow the pulse; if this pulse is
        // noiseless the chain keeps fusing through it.
        if (noisy && !pulse_ch[static_cast<std::size_t>(phys.q0)].is_identity()) {
          flush(phys.q0);
          emit_pulse_noise(phys.q0);
        }
        break;
      case PhysOpKind::X:
        accumulate(phys.q0, x_as_array2());
        if (noisy && !pulse_ch[static_cast<std::size_t>(phys.q0)].is_identity()) {
          flush(phys.q0);
          emit_pulse_noise(phys.q0);
        }
        break;
      case PhysOpKind::CX: {
        flush(phys.q0);
        flush(phys.q1);
        CompiledOp op;
        op.kind = COpKind::Cx;
        op.q0 = phys.q0;
        op.q1 = phys.q1;
        program.ops_.push_back(op);
        if (noisy) {
          const int a = std::min(phys.q0, phys.q1);
          const int b = std::max(phys.q0, phys.q1);
          const FusedChannel2 ch = fuse_cx_channel(noise.cx_noise(a, b));
          if (!ch.is_identity()) {
            CompiledOp cop;
            cop.kind = COpKind::Channel2;
            cop.q0 = a;
            cop.q1 = b;
            cop.ch2 = ch;
            program.ops_.push_back(cop);
            ++program.stats_.channels;
          }
        }
        break;
      }
    }
  }
  for (int q = 0; q < nq; ++q) flush(q);

  if (options.drop_trailing_diagonal) {
    // Diagonal unitaries commute with every error channel here (depolarizing,
    // thermal relaxation, and classical readout confusion all act
    // block-diagonally w.r.t. the computational basis), so a Diag1/SymDiag1
    // followed only by channels on its qubit cannot change measurement
    // statistics. Walk backwards and drop them.
    std::vector<char> blocked(static_cast<std::size_t>(nq), 0);
    std::vector<CompiledOp> kept;
    kept.reserve(program.ops_.size());
    for (auto it = program.ops_.rbegin(); it != program.ops_.rend(); ++it) {
      const CompiledOp& op = *it;
      switch (op.kind) {
        case COpKind::Diag1:
        case COpKind::SymDiag1:
          if (!blocked[static_cast<std::size_t>(op.q0)]) {
            ++program.stats_.dropped_trailing;
            continue;  // dropped
          }
          break;
        case COpKind::Unitary1:
          blocked[static_cast<std::size_t>(op.q0)] = 1;
          break;
        case COpKind::Cx:
          blocked[static_cast<std::size_t>(op.q0)] = 1;
          blocked[static_cast<std::size_t>(op.q1)] = 1;
          break;
        case COpKind::Channel1:
        case COpKind::Channel2:
          break;  // channels commute with diagonals: do not block
      }
      kept.push_back(op);
    }
    program.ops_.assign(kept.rbegin(), kept.rend());
  }

  program.stats_.compiled_ops = program.ops_.size();
  return program;
}

void CompiledProgram::run(DensityMatrix& dm, std::span<const double> x) const {
  require(dm.num_qubits() == num_qubits_, "scratch matrix qubit count mismatch");
  dm.reset();
  for (const CompiledOp& op : ops_) {
    switch (op.kind) {
      case COpKind::Unitary1:
        dm.apply1(op.q0, op.u);
        break;
      case COpKind::Diag1:
        dm.apply_diag1(op.q0, op.u[0], op.u[3]);
        break;
      case COpKind::SymDiag1: {
        require(static_cast<std::size_t>(op.input_index) < x.size(),
                "input vector too short for compiled op");
        const double angle =
            op.input_scale * x[static_cast<std::size_t>(op.input_index)] +
            op.angle_offset;
        dm.apply_diag1(op.q0, std::exp(cplx{0.0, -angle / 2.0}),
                       std::exp(cplx{0.0, angle / 2.0}));
        break;
      }
      case COpKind::Cx:
        dm.apply_cx(op.q0, op.q1);
        break;
      case COpKind::Channel1:
        dm.apply_channel1(op.q0, op.ch1);
        break;
      case COpKind::Channel2:
        dm.apply_channel2(op.q0, op.q1, op.ch2);
        break;
    }
  }
}

}  // namespace qucad
