#include "sim/compiled_ops.hpp"

#include <cmath>

#include "common/require.hpp"
#include "linalg/gates.hpp"

namespace qucad {

namespace {

constexpr std::array<cplx, 4> kIdentity2{cplx{1.0, 0.0}, cplx{0.0, 0.0},
                                         cplx{0.0, 0.0}, cplx{1.0, 0.0}};

std::array<cplx, 4> mul2(const std::array<cplx, 4>& a,
                         const std::array<cplx, 4>& b) {
  return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
          a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

bool is_diagonal(const std::array<cplx, 4>& u, double tol = 1e-15) {
  return std::abs(u[1]) <= tol && std::abs(u[2]) <= tol;
}

/// Diagonal unitaries with d0 == d1 are a global phase: no-ops on rho.
bool is_global_phase(const std::array<cplx, 4>& u, double tol = 1e-15) {
  return is_diagonal(u, tol) && std::abs(u[0] - u[3]) <= tol;
}

/// Per-qubit accumulator for the single-qubit fusion pass.
struct Pending {
  std::array<cplx, 4> u = kIdentity2;
  bool any = false;
};

bool is_1q_unitary_kind(COpKind kind) {
  return kind == COpKind::Unitary1 || kind == COpKind::Diag1 ||
         kind == COpKind::SymDiag1 || kind == COpKind::SymUni1;
}

bool is_symbolic_op(const CompiledOp& op) {
  return op.input_index >= 0 || op.theta_index >= 0;
}

bool touches(const CompiledOp& op, int q) {
  if (op.q0 == q) return true;
  return (op.kind == COpKind::Cx || op.kind == COpKind::CRot2 ||
          op.kind == COpKind::Channel2) &&
         op.q1 == q;
}

/// Literal 2x2 of a non-symbolic single-qubit op.
std::array<cplx, 4> literal_matrix(const CompiledOp& op) {
  if (op.kind == COpKind::Diag1) {
    return {op.u[0], cplx{0.0, 0.0}, cplx{0.0, 0.0}, op.u[3]};
  }
  return op.u;
}

/// One left-to-right pass fusing CX(c,t) [1q chain on t, <= 1 symbolic]
/// CX(c,t) patterns into CRot2 ops. Ops on unrelated qubits commute out of
/// the pattern and are re-emitted just before it. Anything touching the
/// control, any channel on the target, or a second symbolic op aborts that
/// candidate. Returns true when something fused (callers loop to fixpoint so
/// patterns revealed by earlier fusions are picked up too).
bool fuse_cx_sandwich_pass(std::vector<CompiledOp>& ops, CompileStats& stats) {
  std::vector<CompiledOp> out;
  out.reserve(ops.size());
  bool changed = false;
  std::size_t i = 0;
  while (i < ops.size()) {
    const CompiledOp& op = ops[i];
    bool fused = false;
    if (op.kind == COpKind::Cx) {
      const int c = op.q0;
      const int t = op.q1;
      std::vector<CompiledOp> mid;
      std::vector<CompiledOp> others;
      int sym_count = 0;
      bool matched = false;
      std::size_t j = i + 1;
      for (; j < ops.size(); ++j) {
        const CompiledOp& o = ops[j];
        const bool on_c = touches(o, c);
        const bool on_t = touches(o, t);
        if (!on_c && !on_t) {
          others.push_back(o);
          continue;
        }
        if (o.kind == COpKind::Cx && o.q0 == c && o.q1 == t) {
          matched = true;
          break;
        }
        if (on_c || !is_1q_unitary_kind(o.kind)) break;
        if (is_symbolic_op(o) && ++sym_count > 1) break;
        mid.push_back(o);
      }
      if (matched) {
        for (const CompiledOp& o : others) out.push_back(o);
        if (!mid.empty()) {
          CompiledOp f;
          f.kind = COpKind::CRot2;
          f.q0 = c;
          f.q1 = t;
          f.u = kIdentity2;
          f.u2 = kIdentity2;
          f.angle_offset = 0.0;
          bool after_sym = false;
          for (const CompiledOp& m : mid) {
            if (is_symbolic_op(m)) {
              after_sym = true;
              f.angle_offset = m.angle_offset;
              f.input_index = m.input_index;
              f.input_scale = m.input_scale;
              f.theta_index = m.theta_index;
              f.theta_scale = m.theta_scale;
              if (m.kind == COpKind::SymUni1) f.u = mul2(m.u, f.u);
            } else {
              auto& side = after_sym ? f.u2 : f.u;
              side = mul2(literal_matrix(m), side);
            }
          }
          out.push_back(f);
          ++stats.fused_cx_sandwiches;
        }
        // else: CX directly followed by CX — the pair cancels entirely.
        i = j + 1;
        changed = true;
        fused = true;
      }
    }
    if (!fused) {
      out.push_back(op);
      ++i;
    }
  }
  ops = std::move(out);
  return changed;
}

}  // namespace

FusedChannel1 fuse_pulse_channel(const PulseNoise& noise) {
  // Depolarizing(p) then thermal(gamma, lambda), written as one linear map
  // per 2x2 block. Depolarizing: rho00 -> (keep+hp) rho00 + hp rho11 (and
  // symmetrically), off-diagonals scale by keep. Thermal then mixes the
  // populations (rho00 += gamma rho11; rho11 *= 1-gamma) and scales the
  // coherences by s = sqrt((1-gamma)(1-lambda)). Composing gives:
  const double p = noise.depolarizing_p;
  const double keep = 1.0 - p;
  const double hp = 0.5 * p;
  const double gamma = noise.thermal.gamma;
  const double lambda = noise.thermal.lambda;
  const double kg = 1.0 - gamma;
  const double s = std::sqrt(kg * (1.0 - lambda));
  FusedChannel1 ch;
  ch.d00_00 = (keep + hp) + gamma * hp;
  ch.d00_11 = hp + gamma * (keep + hp);
  ch.d11_00 = kg * hp;
  ch.d11_11 = kg * (keep + hp);
  ch.off = keep * s;
  return ch;
}

FusedChannel2 fuse_cx_channel(const CxNoise& noise) {
  FusedChannel2 ch;
  ch.keep = 1.0 - noise.depolarizing_p;
  ch.quarter_p = 0.25 * noise.depolarizing_p;
  ch.gamma_a = noise.thermal_first.gamma;
  ch.keep_a = 1.0 - ch.gamma_a;
  ch.s_a = std::sqrt(ch.keep_a * (1.0 - noise.thermal_first.lambda));
  ch.gamma_b = noise.thermal_second.gamma;
  ch.keep_b = 1.0 - ch.gamma_b;
  ch.s_b = std::sqrt(ch.keep_b * (1.0 - noise.thermal_second.lambda));
  return ch;
}

CompiledProgram CompiledProgram::compile(const PhysicalCircuit& circuit,
                                         const NoiseModel& noise,
                                         const CompileOptions& options) {
  require(noise.num_qubits() == 0 || noise.num_qubits() == circuit.num_qubits(),
          "noise model qubit count mismatch");
  const bool noisy = noise.num_qubits() > 0;
  const int nq = circuit.num_qubits();

  CompiledProgram program;
  program.num_qubits_ = nq;
  program.stats_.source_ops = circuit.ops().size();

  std::vector<Pending> pending(static_cast<std::size_t>(nq));
  // Per-qubit fused channels, precomputed once (circuits revisit qubits).
  std::vector<FusedChannel1> pulse_ch;
  if (noisy) {
    pulse_ch.reserve(static_cast<std::size_t>(nq));
    for (int q = 0; q < nq; ++q) pulse_ch.push_back(fuse_pulse_channel(noise.pulse_noise(q)));
  }

  auto flush = [&](int q) {
    Pending& p = pending[static_cast<std::size_t>(q)];
    if (!p.any) return;
    if (!is_global_phase(p.u)) {
      CompiledOp op;
      op.q0 = q;
      op.u = p.u;
      if (is_diagonal(p.u)) {
        op.kind = COpKind::Diag1;
      } else {
        op.kind = COpKind::Unitary1;
        ++program.stats_.fused_unitaries;
      }
      program.ops_.push_back(op);
    }
    p.u = kIdentity2;
    p.any = false;
  };

  auto accumulate = [&](int q, const std::array<cplx, 4>& m) {
    Pending& p = pending[static_cast<std::size_t>(q)];
    p.u = mul2(m, p.u);
    p.any = true;
    if (!options.fuse_single_qubit) flush(q);
  };

  auto emit_pulse_noise = [&](int q) {
    if (!noisy) return;
    const FusedChannel1& ch = pulse_ch[static_cast<std::size_t>(q)];
    if (ch.is_identity()) return;
    CompiledOp op;
    op.kind = COpKind::Channel1;
    op.q0 = q;
    op.ch1 = ch;
    program.ops_.push_back(op);
    ++program.stats_.channels;
  };

  // Parameter-space extents come from the SOURCE circuit so that ops elided
  // below (trailing-diagonal drop, global-phase elision) still count toward
  // the gradient vector's size.
  program.num_trainable_ = circuit.num_trainable();
  program.num_inputs_ = circuit.num_inputs();

  for (const PhysOp& phys : circuit.ops()) {
    switch (phys.kind) {
      case PhysOpKind::RZ: {
        if (phys.is_symbolic()) {
          // Data-dependent or trainable: stays symbolic so one program
          // serves every sample and every theta update. Instead of flushing
          // the pending single-qubit chain as a separate pass, absorb it
          // into the symbolic op (SymUni1 = diag(angle) * pending): the
          // dominant ZSX rotation pattern [U, RZ(sym), U, ...] then replays
          // as one fused pass per rotation.
          CompiledOp op;
          Pending& p = pending[static_cast<std::size_t>(phys.q0)];
          if (p.any && !is_global_phase(p.u)) {
            op.kind = COpKind::SymUni1;
            op.u = p.u;
            ++program.stats_.fused_unitaries;
          } else {
            op.kind = COpKind::SymDiag1;
          }
          p.u = kIdentity2;
          p.any = false;
          op.q0 = phys.q0;
          op.angle_offset = phys.angle;
          op.input_index = phys.input_index;
          op.input_scale = phys.input_scale;
          op.theta_index = phys.theta_index;
          op.theta_scale = phys.theta_scale;
          program.ops_.push_back(op);
        } else {
          const std::array<cplx, 4> rz{std::exp(cplx{0.0, -phys.angle / 2.0}),
                                       0.0, 0.0,
                                       std::exp(cplx{0.0, phys.angle / 2.0})};
          accumulate(phys.q0, rz);
        }
        break;
      }
      case PhysOpKind::SX:
        accumulate(phys.q0, sx_as_array2());
        // The error channel must follow the pulse; if this pulse is
        // noiseless the chain keeps fusing through it.
        if (noisy && !pulse_ch[static_cast<std::size_t>(phys.q0)].is_identity()) {
          flush(phys.q0);
          emit_pulse_noise(phys.q0);
        }
        break;
      case PhysOpKind::X:
        accumulate(phys.q0, x_as_array2());
        if (noisy && !pulse_ch[static_cast<std::size_t>(phys.q0)].is_identity()) {
          flush(phys.q0);
          emit_pulse_noise(phys.q0);
        }
        break;
      case PhysOpKind::CX: {
        flush(phys.q0);
        flush(phys.q1);
        CompiledOp op;
        op.kind = COpKind::Cx;
        op.q0 = phys.q0;
        op.q1 = phys.q1;
        program.ops_.push_back(op);
        if (noisy) {
          const int a = std::min(phys.q0, phys.q1);
          const int b = std::max(phys.q0, phys.q1);
          const FusedChannel2 ch = fuse_cx_channel(noise.cx_noise(a, b));
          if (!ch.is_identity()) {
            CompiledOp cop;
            cop.kind = COpKind::Channel2;
            cop.q0 = a;
            cop.q1 = b;
            cop.ch2 = ch;
            program.ops_.push_back(cop);
            ++program.stats_.channels;
          }
        }
        break;
      }
    }
  }
  for (int q = 0; q < nq; ++q) flush(q);

  if (options.fuse_cx_sandwich) {
    // Loop to fixpoint: a fusion can bring another CX pair adjacent.
    while (fuse_cx_sandwich_pass(program.ops_, program.stats_)) {
    }
  }

  if (options.drop_trailing_diagonal) {
    // Diagonal unitaries commute with every error channel here (depolarizing,
    // thermal relaxation, and classical readout confusion all act
    // block-diagonally w.r.t. the computational basis), so a Diag1/SymDiag1
    // followed only by channels on its qubit cannot change measurement
    // statistics. Walk backwards and drop them.
    std::vector<char> blocked(static_cast<std::size_t>(nq), 0);
    std::vector<CompiledOp> kept;
    kept.reserve(program.ops_.size());
    for (auto it = program.ops_.rbegin(); it != program.ops_.rend(); ++it) {
      const CompiledOp& op = *it;
      switch (op.kind) {
        case COpKind::Diag1:
        case COpKind::SymDiag1:
          if (!blocked[static_cast<std::size_t>(op.q0)]) {
            ++program.stats_.dropped_trailing;
            continue;  // dropped
          }
          break;
        case COpKind::SymUni1:
          // Diagonal only when the absorbed prefix is itself diagonal.
          if (is_diagonal(op.u) && !blocked[static_cast<std::size_t>(op.q0)]) {
            ++program.stats_.dropped_trailing;
            continue;  // dropped
          }
          blocked[static_cast<std::size_t>(op.q0)] = 1;
          break;
        case COpKind::Unitary1:
          blocked[static_cast<std::size_t>(op.q0)] = 1;
          break;
        case COpKind::Cx:
        case COpKind::CRot2:
          blocked[static_cast<std::size_t>(op.q0)] = 1;
          blocked[static_cast<std::size_t>(op.q1)] = 1;
          break;
        case COpKind::Channel1:
        case COpKind::Channel2:
          break;  // channels commute with diagonals: do not block
      }
      kept.push_back(op);
    }
    program.ops_.assign(kept.rbegin(), kept.rend());
  }

  program.stats_.compiled_ops = program.ops_.size();
  return program;
}

std::array<cplx, 4> sym_uni_matrix(const CompiledOp& op, double angle) {
  const auto [d0, d1] = rz_diag(angle);
  return {d0 * op.u[0], d0 * op.u[1], d1 * op.u[2], d1 * op.u[3]};
}

std::array<cplx, 4> crot_inner_matrix(const CompiledOp& op, double angle) {
  const std::array<cplx, 4> du = sym_uni_matrix(op, angle);  // diag * u
  return mul2(op.u2, du);
}

double resolve_sym_angle(const CompiledOp& op, std::span<const double> x,
                         std::span<const double> theta) {
  if (op.input_index >= 0) {
    require(static_cast<std::size_t>(op.input_index) < x.size(),
            "input vector too short for compiled op");
    return op.input_scale * x[static_cast<std::size_t>(op.input_index)] +
           op.angle_offset;
  }
  if (op.theta_index >= 0) {
    require(static_cast<std::size_t>(op.theta_index) < theta.size(),
            "theta vector too short for compiled op");
    return op.theta_scale * theta[static_cast<std::size_t>(op.theta_index)] +
           op.angle_offset;
  }
  return op.angle_offset;  // literal (CRot2 with a fully bound interior)
}

void CompiledProgram::run(DensityMatrix& dm, std::span<const double> x,
                          std::span<const double> theta) const {
  require(dm.num_qubits() == num_qubits_, "scratch matrix qubit count mismatch");
  dm.reset();
  for (const CompiledOp& op : ops_) {
    switch (op.kind) {
      case COpKind::Unitary1:
        dm.apply1(op.q0, op.u);
        break;
      case COpKind::Diag1:
        dm.apply_diag1(op.q0, op.u[0], op.u[3]);
        break;
      case COpKind::SymDiag1: {
        const auto [d0, d1] = rz_diag(resolve_sym_angle(op, x, theta));
        dm.apply_diag1(op.q0, d0, d1);
        break;
      }
      case COpKind::SymUni1:
        dm.apply1(op.q0, sym_uni_matrix(op, resolve_sym_angle(op, x, theta)));
        break;
      case COpKind::CRot2: {
        // CX (I (x) M) CX is block-diagonal: M on control-0, X M X on
        // control-1 (local index = 2*bit(q0) + bit(q1), q0 = control).
        const std::array<cplx, 4> m =
            crot_inner_matrix(op, resolve_sym_angle(op, x, theta));
        const cplx zero{0.0, 0.0};
        dm.apply2(op.q0, op.q1,
                  {m[0], m[1], zero, zero,      //
                   m[2], m[3], zero, zero,      //
                   zero, zero, m[3], m[2],      //
                   zero, zero, m[1], m[0]});
        break;
      }
      case COpKind::Cx:
        dm.apply_cx(op.q0, op.q1);
        break;
      case COpKind::Channel1:
        dm.apply_channel1(op.q0, op.ch1);
        break;
      case COpKind::Channel2:
        dm.apply_channel2(op.q0, op.q1, op.ch2);
        break;
    }
  }
}

void CompiledProgram::run_lanes(
    BatchedDensityMatrix& bdm,
    const std::array<const double*, BatchedStateVector::kLanes>& xs,
    std::span<const double> theta) const {
  constexpr std::size_t kLanes = BatchedDensityMatrix::kLanes;
  require(bdm.num_qubits() == num_qubits_,
          "scratch matrix qubit count mismatch");
  bdm.reset();
  const std::size_t ni = static_cast<std::size_t>(num_inputs_);
  // Same validated-row contract as run_pure_lanes: every lane's span covers
  // num_inputs() entries, so angle resolution is the SAME code path as run().
  auto lane_x = [&](std::size_t lane) {
    return std::span<const double>(xs[lane], ni);
  };
  const cplx zero{0.0, 0.0};
  for (const CompiledOp& op : ops_) {
    const bool divergent = op.input_index >= 0;
    switch (op.kind) {
      case COpKind::Unitary1:
        bdm.apply1(op.q0, op.u);
        break;
      case COpKind::Diag1:
        bdm.apply_diag1(op.q0, op.u[0], op.u[3]);
        break;
      case COpKind::SymDiag1: {
        if (divergent) {
          cplx d0s[kLanes], d1s[kLanes];
          for (std::size_t l = 0; l < kLanes; ++l) {
            const auto [d0, d1] =
                rz_diag(resolve_sym_angle(op, lane_x(l), theta));
            d0s[l] = d0;
            d1s[l] = d1;
          }
          bdm.apply_diag1_lanes(op.q0, d0s, d1s);
        } else {
          const auto [d0, d1] = rz_diag(resolve_sym_angle(op, {}, theta));
          bdm.apply_diag1(op.q0, d0, d1);
        }
        break;
      }
      case COpKind::SymUni1: {
        if (divergent) {
          std::array<std::array<cplx, 4>, kLanes> ms;
          for (std::size_t l = 0; l < kLanes; ++l) {
            ms[l] = sym_uni_matrix(op, resolve_sym_angle(op, lane_x(l), theta));
          }
          bdm.apply1_lanes(op.q0, ms.data());
        } else {
          bdm.apply1(op.q0,
                     sym_uni_matrix(op, resolve_sym_angle(op, {}, theta)));
        }
        break;
      }
      case COpKind::CRot2: {
        // Same block-diagonal 4x4 as run(): M on control-0, X M X on
        // control-1 (local index = 2*bit(q0) + bit(q1), q0 = control).
        auto block = [&](const std::array<cplx, 4>& m) {
          return std::array<cplx, 16>{m[0], m[1], zero, zero,  //
                                      m[2], m[3], zero, zero,  //
                                      zero, zero, m[3], m[2],  //
                                      zero, zero, m[1], m[0]};
        };
        if (divergent) {
          std::array<std::array<cplx, 16>, kLanes> us;
          for (std::size_t l = 0; l < kLanes; ++l) {
            us[l] = block(
                crot_inner_matrix(op, resolve_sym_angle(op, lane_x(l), theta)));
          }
          bdm.apply2_lanes(op.q0, op.q1, us.data());
        } else {
          bdm.apply2(op.q0, op.q1,
                     block(crot_inner_matrix(
                         op, resolve_sym_angle(op, {}, theta))));
        }
        break;
      }
      case COpKind::Cx:
        bdm.apply_cx(op.q0, op.q1);
        break;
      case COpKind::Channel1:
        bdm.apply_channel1(op.q0, op.ch1);
        break;
      case COpKind::Channel2:
        bdm.apply_channel2(op.q0, op.q1, op.ch2);
        break;
    }
  }
}

void CompiledProgram::run_pure(StateVector& sv, std::span<const double> x,
                               std::span<const double> theta,
                               std::vector<std::array<cplx, 4>>* resolved) const {
  require(sv.num_qubits() == num_qubits_, "scratch state qubit count mismatch");
  require(!has_channels(),
          "run_pure requires a noiseless program (no channel ops)");
  if (resolved != nullptr) resolved->resize(ops_.size());
  sv.reset();
  for (std::size_t idx = 0; idx < ops_.size(); ++idx) {
    const CompiledOp& op = ops_[idx];
    switch (op.kind) {
      case COpKind::Unitary1:
        sv.apply1(op.q0, op.u);
        break;
      case COpKind::Diag1:
        sv.apply_diag1(op.q0, op.u[0], op.u[3]);
        break;
      case COpKind::SymDiag1: {
        const auto [d0, d1] = rz_diag(resolve_sym_angle(op, x, theta));
        if (resolved != nullptr) {
          (*resolved)[idx] = {d0, cplx{0.0, 0.0}, cplx{0.0, 0.0}, d1};
        }
        sv.apply_diag1(op.q0, d0, d1);
        break;
      }
      case COpKind::SymUni1: {
        const std::array<cplx, 4> m =
            sym_uni_matrix(op, resolve_sym_angle(op, x, theta));
        if (resolved != nullptr) (*resolved)[idx] = m;
        sv.apply1(op.q0, m);
        break;
      }
      case COpKind::CRot2: {
        const std::array<cplx, 4> m =
            crot_inner_matrix(op, resolve_sym_angle(op, x, theta));
        if (resolved != nullptr) (*resolved)[idx] = m;
        // One pass over the 4-tuples: M on the control-0 target pair,
        // X M X on the control-1 pair.
        auto& amps = sv.amplitudes();
        const std::size_t mc = std::size_t{1} << op.q0;
        const std::size_t mt = std::size_t{1} << op.q1;
        for (std::size_t i = 0; i < amps.size(); ++i) {
          if ((i & mc) || (i & mt)) continue;
          const std::size_t i00 = i;
          const std::size_t i01 = i | mt;
          const std::size_t i10 = i | mc;
          const std::size_t i11 = i | mc | mt;
          const cplx a00 = amps[i00], a01 = amps[i01];
          amps[i00] = m[0] * a00 + m[1] * a01;
          amps[i01] = m[2] * a00 + m[3] * a01;
          const cplx a10 = amps[i10], a11 = amps[i11];
          amps[i10] = m[3] * a10 + m[2] * a11;
          amps[i11] = m[1] * a10 + m[0] * a11;
        }
        break;
      }
      case COpKind::Cx:
        sv.apply_cx(op.q0, op.q1);
        break;
      case COpKind::Channel1:
      case COpKind::Channel2:
        break;  // unreachable: guarded by the has_channels() require above
    }
  }
}

void CompiledProgram::run_pure_lanes(
    BatchedStateVector& bsv,
    const std::array<const double*, BatchedStateVector::kLanes>& xs,
    std::span<const double> theta,
    std::vector<std::array<cplx, 4>>* resolved) const {
  constexpr std::size_t kLanes = BatchedStateVector::kLanes;
  require(bsv.num_qubits() == num_qubits_,
          "scratch state qubit count mismatch");
  require(!has_channels(),
          "run_pure_lanes requires a noiseless program (no channel ops)");
  if (resolved != nullptr) resolved->resize(ops_.size() * kLanes);
  bsv.reset();
  const std::size_t ni = static_cast<std::size_t>(num_inputs_);
  // Lane's feature row as a span: batch entry points validated each row
  // holds >= num_inputs() entries, so resolve_sym_angle's bounds check
  // always passes and angle resolution is the SAME code path as run_pure.
  auto lane_x = [&](std::size_t lane) {
    return std::span<const double>(xs[lane], ni);
  };
  for (std::size_t idx = 0; idx < ops_.size(); ++idx) {
    const CompiledOp& op = ops_[idx];
    const bool divergent = op.input_index >= 0;
    switch (op.kind) {
      case COpKind::Unitary1:
        bsv.apply1(op.q0, op.u);
        break;
      case COpKind::Diag1:
        bsv.apply_diag1(op.q0, op.u[0], op.u[3]);
        break;
      case COpKind::SymDiag1: {
        if (divergent) {
          cplx d0s[kLanes], d1s[kLanes];
          for (std::size_t l = 0; l < kLanes; ++l) {
            const auto [d0, d1] =
                rz_diag(resolve_sym_angle(op, lane_x(l), theta));
            d0s[l] = d0;
            d1s[l] = d1;
            if (resolved != nullptr) {
              (*resolved)[idx * kLanes + l] = {d0, cplx{0.0, 0.0},
                                               cplx{0.0, 0.0}, d1};
            }
          }
          bsv.apply_diag1_lanes(op.q0, d0s, d1s);
        } else {
          const auto [d0, d1] = rz_diag(resolve_sym_angle(op, {}, theta));
          if (resolved != nullptr) {
            for (std::size_t l = 0; l < kLanes; ++l) {
              (*resolved)[idx * kLanes + l] = {d0, cplx{0.0, 0.0},
                                               cplx{0.0, 0.0}, d1};
            }
          }
          bsv.apply_diag1(op.q0, d0, d1);
        }
        break;
      }
      case COpKind::SymUni1: {
        if (divergent) {
          std::array<std::array<cplx, 4>, kLanes> ms;
          for (std::size_t l = 0; l < kLanes; ++l) {
            ms[l] = sym_uni_matrix(op, resolve_sym_angle(op, lane_x(l), theta));
            if (resolved != nullptr) (*resolved)[idx * kLanes + l] = ms[l];
          }
          bsv.apply1_lanes(op.q0, ms.data());
        } else {
          const std::array<cplx, 4> m =
              sym_uni_matrix(op, resolve_sym_angle(op, {}, theta));
          if (resolved != nullptr) {
            for (std::size_t l = 0; l < kLanes; ++l) {
              (*resolved)[idx * kLanes + l] = m;
            }
          }
          bsv.apply1(op.q0, m);
        }
        break;
      }
      case COpKind::CRot2: {
        if (divergent) {
          std::array<std::array<cplx, 4>, kLanes> ms;
          for (std::size_t l = 0; l < kLanes; ++l) {
            ms[l] =
                crot_inner_matrix(op, resolve_sym_angle(op, lane_x(l), theta));
            if (resolved != nullptr) (*resolved)[idx * kLanes + l] = ms[l];
          }
          bsv.apply_crot_lanes(op.q0, op.q1, ms.data());
        } else {
          const std::array<cplx, 4> m =
              crot_inner_matrix(op, resolve_sym_angle(op, {}, theta));
          if (resolved != nullptr) {
            for (std::size_t l = 0; l < kLanes; ++l) {
              (*resolved)[idx * kLanes + l] = m;
            }
          }
          bsv.apply_crot(op.q0, op.q1, m);
        }
        break;
      }
      case COpKind::Cx:
        bsv.apply_cx(op.q0, op.q1);
        break;
      case COpKind::Channel1:
      case COpKind::Channel2:
        break;  // unreachable: guarded by the has_channels() require above
    }
  }
}

}  // namespace qucad
