#include "sim/compiled_adjoint.hpp"

#include <cmath>
#include <utility>

#include "common/require.hpp"

namespace qucad {

namespace {

/// The reverse sweep walks ket and lam in lockstep through the same
/// inverse ops, so every kernel below transforms BOTH amplitude arrays in a
/// single loop — one pass of loop/index overhead instead of two, and the
/// per-parameter gradient overlap folds into the same pass (it reads the
/// pre-transform values, which the loop already has in registers).

using Amps = std::vector<cplx>;

std::array<cplx, 4> dagger2(const std::array<cplx, 4>& m) {
  return {std::conj(m[0]), std::conj(m[2]), std::conj(m[1]), std::conj(m[3])};
}

void unapply2_both(Amps& ket, Amps& lam, int q, const std::array<cplx, 4>& md) {
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t dim = ket.size();
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      const std::size_t i0 = base + off;
      const std::size_t i1 = i0 + stride;
      const cplx k0 = ket[i0], k1 = ket[i1];
      ket[i0] = md[0] * k0 + md[1] * k1;
      ket[i1] = md[2] * k0 + md[3] * k1;
      const cplx l0 = lam[i0], l1 = lam[i1];
      lam[i0] = md[0] * l0 + md[1] * l1;
      lam[i1] = md[2] * l0 + md[3] * l1;
    }
  }
}

/// Same as unapply2_both, plus the Z-generator overlap of the op being
/// un-applied: returns Im(<lam| Z_q |ket>) evaluated on the PRE-transform
/// (i.e. after-the-op) states, which is exactly the adjoint-gradient
/// contribution point.
double unapply2_both_with_overlap(Amps& ket, Amps& lam, int q,
                                  const std::array<cplx, 4>& md) {
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t dim = ket.size();
  double acc = 0.0;
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      const std::size_t i0 = base + off;
      const std::size_t i1 = i0 + stride;
      const cplx k0 = ket[i0], k1 = ket[i1];
      const cplx l0 = lam[i0], l1 = lam[i1];
      // Im(conj(l) * k), with the Z sign flip on the bit-1 half.
      acc += (l0.real() * k0.imag() - l0.imag() * k0.real()) -
             (l1.real() * k1.imag() - l1.imag() * k1.real());
      ket[i0] = md[0] * k0 + md[1] * k1;
      ket[i1] = md[2] * k0 + md[3] * k1;
      lam[i0] = md[0] * l0 + md[1] * l1;
      lam[i1] = md[2] * l0 + md[3] * l1;
    }
  }
  return acc;
}

void undiag_both(Amps& ket, Amps& lam, int q, cplx d0, cplx d1) {
  const std::size_t mq = std::size_t{1} << q;
  const std::size_t dim = ket.size();
  for (std::size_t i = 0; i < dim; ++i) {
    const cplx d = (i & mq) ? d1 : d0;
    ket[i] *= d;
    lam[i] *= d;
  }
}

double undiag_both_with_overlap(Amps& ket, Amps& lam, int q, cplx d0, cplx d1) {
  const std::size_t mq = std::size_t{1} << q;
  const std::size_t dim = ket.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const cplx k = ket[i], l = lam[i];
    const double im = l.real() * k.imag() - l.imag() * k.real();
    if (i & mq) {
      acc -= im;
      ket[i] = k * d1;
      lam[i] = l * d1;
    } else {
      acc += im;
      ket[i] = k * d0;
      lam[i] = l * d0;
    }
  }
  return acc;
}

/// Un-applies a CRot2 (interior matrix `m` already resolved; the inverse is
/// the same block structure built from m^dagger) from both states.
void uncrot_both(Amps& ket, Amps& lam, int control, int target,
                 const std::array<cplx, 4>& md) {
  const std::size_t mc = std::size_t{1} << control;
  const std::size_t mt = std::size_t{1} << target;
  const std::size_t dim = ket.size();
  auto transform = [&](Amps& a, std::size_t i00, std::size_t i01,
                       std::size_t i10, std::size_t i11) {
    const cplx a00 = a[i00], a01 = a[i01];
    a[i00] = md[0] * a00 + md[1] * a01;
    a[i01] = md[2] * a00 + md[3] * a01;
    const cplx a10 = a[i10], a11 = a[i11];
    a[i10] = md[3] * a10 + md[2] * a11;
    a[i11] = md[1] * a10 + md[0] * a11;
  };
  for (std::size_t i = 0; i < dim; ++i) {
    if ((i & mc) || (i & mt)) continue;
    const std::size_t i01 = i | mt;
    const std::size_t i10 = i | mc;
    const std::size_t i11 = i | mc | mt;
    transform(ket, i, i01, i10, i11);
    transform(lam, i, i01, i10, i11);
  }
}

/// uncrot_both plus the generator overlap Im(<lam| G~ |ket>) on the
/// pre-transform states, where G~ = CX (I (x) A) CX and A = u2 Z u2^dagger
/// (the RZ generator conjugated through the post-rotation factor).
double uncrot_both_with_overlap(Amps& ket, Amps& lam, int control, int target,
                                const std::array<cplx, 4>& md,
                                const std::array<cplx, 4>& a_mat) {
  const std::size_t mc = std::size_t{1} << control;
  const std::size_t mt = std::size_t{1} << target;
  const std::size_t dim = ket.size();
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    if ((i & mc) || (i & mt)) continue;
    const std::size_t i01 = i | mt;
    const std::size_t i10 = i | mc;
    const std::size_t i11 = i | mc | mt;

    const cplx k00 = ket[i], k01 = ket[i01], k10 = ket[i10], k11 = ket[i11];
    const cplx l00 = lam[i], l01 = lam[i01], l10 = lam[i10], l11 = lam[i11];
    // Control-0 pair sees A; control-1 pair sees X A X.
    const cplx g0 = std::conj(l00) * (a_mat[0] * k00 + a_mat[1] * k01) +
                    std::conj(l01) * (a_mat[2] * k00 + a_mat[3] * k01);
    const cplx g1 = std::conj(l10) * (a_mat[3] * k10 + a_mat[2] * k11) +
                    std::conj(l11) * (a_mat[1] * k10 + a_mat[0] * k11);
    acc += g0.imag() + g1.imag();

    ket[i] = md[0] * k00 + md[1] * k01;
    ket[i01] = md[2] * k00 + md[3] * k01;
    ket[i10] = md[3] * k10 + md[2] * k11;
    ket[i11] = md[1] * k10 + md[0] * k11;
    lam[i] = md[0] * l00 + md[1] * l01;
    lam[i01] = md[2] * l00 + md[3] * l01;
    lam[i10] = md[3] * l10 + md[2] * l11;
    lam[i11] = md[1] * l10 + md[0] * l11;
  }
  return acc;
}

/// A = u2 Z u2^dagger: the Z generator of the interior RZ conjugated through
/// the CRot2 post-rotation factor. Hermitian with A10 = conj(A01).
std::array<cplx, 4> conjugated_z_generator(const std::array<cplx, 4>& p) {
  const cplx a00 = p[0] * std::conj(p[0]) - p[1] * std::conj(p[1]);
  const cplx a01 = p[0] * std::conj(p[2]) - p[1] * std::conj(p[3]);
  const cplx a11 = p[2] * std::conj(p[2]) - p[3] * std::conj(p[3]);
  return {a00, a01, std::conj(a01), a11};
}

void uncx_both(Amps& ket, Amps& lam, int control, int target) {
  const std::size_t mc = std::size_t{1} << control;
  const std::size_t mt = std::size_t{1} << target;
  const std::size_t dim = ket.size();
  for (std::size_t i = 0; i < dim; ++i) {
    if ((i & mc) && !(i & mt)) {
      std::swap(ket[i], ket[i | mt]);
      std::swap(lam[i], lam[i | mt]);
    }
  }
}

}  // namespace

AdjointResult compiled_adjoint_gradient(const CompiledProgram& program,
                                        std::span<const double> theta,
                                        std::span<const double> x,
                                        const ObservableWeightFn& weight_fn,
                                        AdjointWorkspace* workspace) {
  require(!program.has_channels(),
          "compiled adjoint requires a noiseless program");
  const int n = program.num_qubits();

  AdjointWorkspace local;
  AdjointWorkspace& ws = workspace ? *workspace : local;
  if (ws.ket.num_qubits() != n) {
    ws.ket = StateVector(n);
    ws.lam = StateVector(n);
  }

  // Forward replay, recording the resolved symbolic matrices so the reverse
  // sweep below daggers them instead of re-resolving each op.
  program.run_pure(ws.ket, x, theta, &ws.resolved);

  AdjointResult result;
  result.z_expectations = ws.ket.all_z_expectations();

  const std::vector<double> weights = weight_fn(result.z_expectations);
  require(weights.size() == static_cast<std::size_t>(n),
          "observable weight vector must have one entry per qubit");

  const std::size_t num_params = std::max(
      static_cast<std::size_t>(program.num_trainable()), theta.size());
  result.gradients.assign(num_params, 0.0);
  if (program.num_trainable() == 0) return result;

  auto& ket = ws.ket.amplitudes();
  auto& lam = ws.lam.amplitudes();

  // lam = O_eff |psi>, O_eff = sum_q w_q Z_q diagonal in the computational
  // basis.
  for (std::size_t i = 0; i < ket.size(); ++i) {
    double w_sum = 0.0;
    for (int q = 0; q < n; ++q) {
      const double z = (i >> q) & 1 ? -1.0 : 1.0;
      w_sum += weights[static_cast<std::size_t>(q)] * z;
    }
    lam[i] = w_sum * ket[i];
  }

  // Reverse sweep: maintain ket = |psi_k>, lam = U_{k+1}^dag..U_N^dag O|psi>.
  // For a symbolic op with a trainable slot, dU/dtheta = theta_scale *
  // (-i Z/2) U (the RZ generator sits at the top of the op even for SymUni1,
  // whose absorbed prefix precedes the RZ), so the contribution is
  // theta_scale * Im(<lam| Z |psi_after>) — computed inside the same loop
  // that un-applies the op from both states.
  const auto& ops = program.ops();
  for (std::size_t idx = ops.size(); idx-- > 0;) {
    const CompiledOp& op = ops[idx];
    switch (op.kind) {
      case COpKind::Unitary1:
        unapply2_both(ket, lam, op.q0, dagger2(op.u));
        break;
      case COpKind::Diag1:
        undiag_both(ket, lam, op.q0, std::conj(op.u[0]), std::conj(op.u[3]));
        break;
      case COpKind::SymDiag1: {
        const cplx d0 = std::conj(ws.resolved[idx][0]);  // inverse diagonal
        const cplx d1 = std::conj(ws.resolved[idx][3]);
        if (op.theta_index >= 0) {
          result.gradients[static_cast<std::size_t>(op.theta_index)] +=
              op.theta_scale * undiag_both_with_overlap(ket, lam, op.q0, d0, d1);
        } else {
          undiag_both(ket, lam, op.q0, d0, d1);
        }
        break;
      }
      case COpKind::SymUni1: {
        const auto md = dagger2(ws.resolved[idx]);
        if (op.theta_index >= 0) {
          result.gradients[static_cast<std::size_t>(op.theta_index)] +=
              op.theta_scale *
              unapply2_both_with_overlap(ket, lam, op.q0, md);
        } else {
          unapply2_both(ket, lam, op.q0, md);
        }
        break;
      }
      case COpKind::CRot2: {
        const auto md = dagger2(ws.resolved[idx]);
        if (op.theta_index >= 0) {
          result.gradients[static_cast<std::size_t>(op.theta_index)] +=
              op.theta_scale *
              uncrot_both_with_overlap(ket, lam, op.q0, op.q1, md,
                                       conjugated_z_generator(op.u2));
        } else {
          uncrot_both(ket, lam, op.q0, op.q1, md);
        }
        break;
      }
      case COpKind::Cx:
        uncx_both(ket, lam, op.q0, op.q1);
        break;
      case COpKind::Channel1:
      case COpKind::Channel2:
        require(false, "cannot un-apply a channel op");
        break;
    }
  }
  return result;
}

AdjointResult compiled_adjoint_gradient(const CompiledProgram& program,
                                        std::span<const double> theta,
                                        std::span<const double> x,
                                        std::vector<double> fixed_weights,
                                        AdjointWorkspace* workspace) {
  return compiled_adjoint_gradient(
      program, theta, x,
      [w = std::move(fixed_weights)](const std::vector<double>&) { return w; },
      workspace);
}

namespace {

// ---- SoA lane kernels for the batched reverse sweep ----
//
// Same lockstep ket/lam structure as the scalar kernels above, widened to
// BatchedStateVector::kLanes samples: per-lane matrices are transposed into
// lane-major rows so the inner loops stay unit-stride, and the per-lane
// gradient overlap accumulates into an acc[kLanes] array. To keep each
// kernel a single loop, callers without an overlap pass a scratch array
// whose contents are discarded.

constexpr std::size_t kLanes = BatchedStateVector::kLanes;

struct LaneMats {
  double r[4][kLanes];
  double i[4][kLanes];
};

LaneMats transpose_mats(const std::array<cplx, 4>* ms) {
  LaneMats t;
  for (std::size_t l = 0; l < kLanes; ++l) {
    for (std::size_t e = 0; e < 4; ++e) {
      t.r[e][l] = ms[l][e].real();
      t.i[e][l] = ms[l][e].imag();
    }
  }
  return t;
}

void lanes_unapply2_both(BatchedStateVector& ket, BatchedStateVector& lam,
                         int q, const LaneMats& m, double* acc) {
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t dim = ket.dim();
  double* kr = ket.re();
  double* ki = ket.im();
  double* lr = lam.re();
  double* li = lam.im();
  for (std::size_t base = 0; base < dim; base += 2 * stride) {
    for (std::size_t off = 0; off < stride; ++off) {
      const std::size_t i0 = (base + off) * kLanes;
      const std::size_t i1 = i0 + stride * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) {
        const double k0r = kr[i0 + l], k0i = ki[i0 + l];
        const double k1r = kr[i1 + l], k1i = ki[i1 + l];
        const double l0r = lr[i0 + l], l0i = li[i0 + l];
        const double l1r = lr[i1 + l], l1i = li[i1 + l];
        // Im(conj(l) * k), Z sign flip on the bit-1 half.
        acc[l] += (l0r * k0i - l0i * k0r) - (l1r * k1i - l1i * k1r);
        kr[i0 + l] = (m.r[0][l] * k0r - m.i[0][l] * k0i) +
                     (m.r[1][l] * k1r - m.i[1][l] * k1i);
        ki[i0 + l] = (m.r[0][l] * k0i + m.i[0][l] * k0r) +
                     (m.r[1][l] * k1i + m.i[1][l] * k1r);
        kr[i1 + l] = (m.r[2][l] * k0r - m.i[2][l] * k0i) +
                     (m.r[3][l] * k1r - m.i[3][l] * k1i);
        ki[i1 + l] = (m.r[2][l] * k0i + m.i[2][l] * k0r) +
                     (m.r[3][l] * k1i + m.i[3][l] * k1r);
        lr[i0 + l] = (m.r[0][l] * l0r - m.i[0][l] * l0i) +
                     (m.r[1][l] * l1r - m.i[1][l] * l1i);
        li[i0 + l] = (m.r[0][l] * l0i + m.i[0][l] * l0r) +
                     (m.r[1][l] * l1i + m.i[1][l] * l1r);
        lr[i1 + l] = (m.r[2][l] * l0r - m.i[2][l] * l0i) +
                     (m.r[3][l] * l1r - m.i[3][l] * l1i);
        li[i1 + l] = (m.r[2][l] * l0i + m.i[2][l] * l0r) +
                     (m.r[3][l] * l1i + m.i[3][l] * l1r);
      }
    }
  }
}

void lanes_undiag_both(BatchedStateVector& ket, BatchedStateVector& lam, int q,
                       const double (&d0r)[kLanes], const double (&d0i)[kLanes],
                       const double (&d1r)[kLanes], const double (&d1i)[kLanes],
                       double* acc) {
  const std::size_t mq = std::size_t{1} << q;
  const std::size_t dim = ket.dim();
  double* kr = ket.re();
  double* ki = ket.im();
  double* lr = lam.re();
  double* li = lam.im();
  for (std::size_t i = 0; i < dim; ++i) {
    const bool hi = (i & mq) != 0;
    const double* dr = hi ? d1r : d0r;
    const double* di = hi ? d1i : d0i;
    const double sign = hi ? -1.0 : 1.0;
    const std::size_t row = i * kLanes;
#pragma omp simd
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double akr = kr[row + l], aki = ki[row + l];
      const double alr = lr[row + l], ali = li[row + l];
      acc[l] += sign * (alr * aki - ali * akr);
      kr[row + l] = akr * dr[l] - aki * di[l];
      ki[row + l] = akr * di[l] + aki * dr[l];
      lr[row + l] = alr * dr[l] - ali * di[l];
      li[row + l] = alr * di[l] + ali * dr[l];
    }
  }
}

/// Lane uncrot; when `a_mat` is non-null also accumulates the per-lane
/// generator overlap Im(<lam| CX (I (x) A) CX |ket>) into acc.
void lanes_uncrot_both(BatchedStateVector& ket, BatchedStateVector& lam,
                       int control, int target, const LaneMats& m,
                       const std::array<cplx, 4>* a_mat, double* acc) {
  const std::size_t mc = std::size_t{1} << control;
  const std::size_t mt = std::size_t{1} << target;
  const std::size_t dim = ket.dim();
  double* kr = ket.re();
  double* ki = ket.im();
  double* lr = lam.re();
  double* li = lam.im();
  for (std::size_t i = 0; i < dim; ++i) {
    if ((i & mc) || (i & mt)) continue;
    const std::size_t i00 = i * kLanes;
    const std::size_t i01 = (i | mt) * kLanes;
    const std::size_t i10 = (i | mc) * kLanes;
    const std::size_t i11 = (i | mc | mt) * kLanes;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const cplx k00{kr[i00 + l], ki[i00 + l]};
      const cplx k01{kr[i01 + l], ki[i01 + l]};
      const cplx k10{kr[i10 + l], ki[i10 + l]};
      const cplx k11{kr[i11 + l], ki[i11 + l]};
      const cplx l00{lr[i00 + l], li[i00 + l]};
      const cplx l01{lr[i01 + l], li[i01 + l]};
      const cplx l10{lr[i10 + l], li[i10 + l]};
      const cplx l11{lr[i11 + l], li[i11 + l]};
      if (a_mat != nullptr) {
        const std::array<cplx, 4>& a = *a_mat;
        // Control-0 pair sees A; control-1 pair sees X A X.
        const cplx g0 = std::conj(l00) * (a[0] * k00 + a[1] * k01) +
                        std::conj(l01) * (a[2] * k00 + a[3] * k01);
        const cplx g1 = std::conj(l10) * (a[3] * k10 + a[2] * k11) +
                        std::conj(l11) * (a[1] * k10 + a[0] * k11);
        acc[l] += g0.imag() + g1.imag();
      }
      const cplx m0{m.r[0][l], m.i[0][l]};
      const cplx m1{m.r[1][l], m.i[1][l]};
      const cplx m2{m.r[2][l], m.i[2][l]};
      const cplx m3{m.r[3][l], m.i[3][l]};
      auto store = [&](std::size_t at, cplx v) {
        kr[at + l] = v.real();
        ki[at + l] = v.imag();
      };
      store(i00, m0 * k00 + m1 * k01);
      store(i01, m2 * k00 + m3 * k01);
      store(i10, m3 * k10 + m2 * k11);
      store(i11, m1 * k10 + m0 * k11);
      auto store_l = [&](std::size_t at, cplx v) {
        lr[at + l] = v.real();
        li[at + l] = v.imag();
      };
      store_l(i00, m0 * l00 + m1 * l01);
      store_l(i01, m2 * l00 + m3 * l01);
      store_l(i10, m3 * l10 + m2 * l11);
      store_l(i11, m1 * l10 + m0 * l11);
    }
  }
}

void lanes_uncx_both(BatchedStateVector& ket, BatchedStateVector& lam,
                     int control, int target) {
  ket.apply_cx(control, target);
  lam.apply_cx(control, target);
}

}  // namespace

LaneAdjointResult compiled_adjoint_gradient_lanes(
    const CompiledProgram& program, std::span<const double> theta,
    const std::array<const double*, BatchedStateVector::kLanes>& xs,
    const LaneObservableWeightFn& weight_fn, LaneAdjointWorkspace* workspace) {
  require(!program.has_channels(),
          "compiled adjoint requires a noiseless program");
  const int n = program.num_qubits();

  LaneAdjointWorkspace local;
  LaneAdjointWorkspace& ws = workspace ? *workspace : local;
  if (!ws.ket || ws.ket->num_qubits() != n) {
    ws.ket = std::make_unique<BatchedStateVector>(n);
    ws.lam = std::make_unique<BatchedStateVector>(n);
  }

  program.run_pure_lanes(*ws.ket, xs, theta, &ws.resolved);

  LaneAdjointResult result;
  result.z_expectations.resize(kLanes);
  std::vector<double> z_all(static_cast<std::size_t>(n) * kLanes);
  ws.ket->all_z(z_all.data());
  for (std::size_t l = 0; l < kLanes; ++l) {
    result.z_expectations[l].resize(static_cast<std::size_t>(n));
    for (int q = 0; q < n; ++q) {
      result.z_expectations[l][static_cast<std::size_t>(q)] =
          z_all[static_cast<std::size_t>(q) * kLanes + l];
    }
  }

  // Per-lane weights, transposed to wq[q * kLanes + lane] for the lam init.
  std::vector<double> wq(static_cast<std::size_t>(n) * kLanes);
  for (std::size_t l = 0; l < kLanes; ++l) {
    const std::vector<double> w = weight_fn(l, result.z_expectations[l]);
    require(w.size() == static_cast<std::size_t>(n),
            "observable weight vector must have one entry per qubit");
    for (int q = 0; q < n; ++q) {
      wq[static_cast<std::size_t>(q) * kLanes + l] =
          w[static_cast<std::size_t>(q)];
    }
  }

  const std::size_t num_params = std::max(
      static_cast<std::size_t>(program.num_trainable()), theta.size());
  result.gradients.assign(kLanes, std::vector<double>(num_params, 0.0));
  if (program.num_trainable() == 0) return result;

  // lam = O_eff |psi> per lane, O_eff = sum_q w_q Z_q (diagonal).
  {
    double* kr = ws.ket->re();
    double* ki = ws.ket->im();
    double* lr = ws.lam->re();
    double* li = ws.lam->im();
    for (std::size_t i = 0; i < ws.ket->dim(); ++i) {
      double wsum[kLanes] = {};
      for (int q = 0; q < n; ++q) {
        const double z = (i >> q) & 1 ? -1.0 : 1.0;
        const double* wrow = wq.data() + static_cast<std::size_t>(q) * kLanes;
#pragma omp simd
        for (std::size_t l = 0; l < kLanes; ++l) wsum[l] += z * wrow[l];
      }
      const std::size_t row = i * kLanes;
#pragma omp simd
      for (std::size_t l = 0; l < kLanes; ++l) {
        lr[row + l] = wsum[l] * kr[row + l];
        li[row + l] = wsum[l] * ki[row + l];
      }
    }
  }

  // Reverse sweep — the scalar sweep's structure with lane-wide duals.
  std::array<std::array<cplx, 4>, kLanes> mds;
  double acc[kLanes];
  double scratch[kLanes] = {};  // discarded overlap for non-trainable ops
  auto add_grads = [&](const CompiledOp& op) {
    auto t = static_cast<std::size_t>(op.theta_index);
    for (std::size_t l = 0; l < kLanes; ++l) {
      result.gradients[l][t] += op.theta_scale * acc[l];
    }
  };
  const auto& ops = program.ops();
  for (std::size_t idx = ops.size(); idx-- > 0;) {
    const CompiledOp& op = ops[idx];
    const std::array<cplx, 4>* res = ws.resolved.data() + idx * kLanes;
    switch (op.kind) {
      case COpKind::Unitary1: {
        mds.fill(dagger2(op.u));
        lanes_unapply2_both(*ws.ket, *ws.lam, op.q0, transpose_mats(mds.data()),
                            scratch);
        break;
      }
      case COpKind::Diag1:
      case COpKind::SymDiag1: {
        double d0r[kLanes], d0i[kLanes], d1r[kLanes], d1i[kLanes];
        for (std::size_t l = 0; l < kLanes; ++l) {
          const cplx d0 = op.kind == COpKind::Diag1 ? std::conj(op.u[0])
                                                    : std::conj(res[l][0]);
          const cplx d1 = op.kind == COpKind::Diag1 ? std::conj(op.u[3])
                                                    : std::conj(res[l][3]);
          d0r[l] = d0.real();
          d0i[l] = d0.imag();
          d1r[l] = d1.real();
          d1i[l] = d1.imag();
        }
        if (op.kind == COpKind::SymDiag1 && op.theta_index >= 0) {
          std::fill(acc, acc + kLanes, 0.0);
          lanes_undiag_both(*ws.ket, *ws.lam, op.q0, d0r, d0i, d1r, d1i, acc);
          add_grads(op);
        } else {
          lanes_undiag_both(*ws.ket, *ws.lam, op.q0, d0r, d0i, d1r, d1i,
                            scratch);
        }
        break;
      }
      case COpKind::SymUni1: {
        for (std::size_t l = 0; l < kLanes; ++l) mds[l] = dagger2(res[l]);
        if (op.theta_index >= 0) {
          std::fill(acc, acc + kLanes, 0.0);
          lanes_unapply2_both(*ws.ket, *ws.lam, op.q0,
                              transpose_mats(mds.data()), acc);
          add_grads(op);
        } else {
          lanes_unapply2_both(*ws.ket, *ws.lam, op.q0,
                              transpose_mats(mds.data()), scratch);
        }
        break;
      }
      case COpKind::CRot2: {
        for (std::size_t l = 0; l < kLanes; ++l) mds[l] = dagger2(res[l]);
        if (op.theta_index >= 0) {
          const std::array<cplx, 4> a_mat = conjugated_z_generator(op.u2);
          std::fill(acc, acc + kLanes, 0.0);
          lanes_uncrot_both(*ws.ket, *ws.lam, op.q0, op.q1,
                            transpose_mats(mds.data()), &a_mat, acc);
          add_grads(op);
        } else {
          lanes_uncrot_both(*ws.ket, *ws.lam, op.q0, op.q1,
                            transpose_mats(mds.data()), nullptr, scratch);
        }
        break;
      }
      case COpKind::Cx:
        lanes_uncx_both(*ws.ket, *ws.lam, op.q0, op.q1);
        break;
      case COpKind::Channel1:
      case COpKind::Channel2:
        require(false, "cannot un-apply a channel op");
        break;
    }
  }
  return result;
}

}  // namespace qucad
