#include "backend/registry.hpp"

#include <random>
#include <utility>

#include "backend/sampled_backend.hpp"
#include "common/require.hpp"
#include "common/thread_pool.hpp"
#include "qnn/eval_cache.hpp"

namespace qucad {

namespace {

/// Adapter fronting the exact density-matrix engine (NoisyExecutor). Keeps
/// the concrete fast paths: run_logits_batch is the fused run_z_batch sweep
/// with per-thread scratch reuse.
class DensityMatrixBackend final : public ExecutionBackend {
 public:
  DensityMatrixBackend(std::shared_ptr<const NoisyExecutor> executor,
                       int shots, std::uint64_t shot_seed, bool readout_active)
      : executor_(std::move(executor)),
        shots_(shots),
        shot_seed_(shot_seed),
        capabilities_(backend_kind_capabilities(BackendKind::kDensityNoisy)) {
    capabilities_.finite_shots = shots_ > 0;
    capabilities_.readout_error = readout_active;
  }

  BackendKind kind() const override { return BackendKind::kDensityNoisy; }
  const BackendCapabilities& capabilities() const override {
    return capabilities_;
  }
  BackendDiagnostics diagnostics() const override {
    BackendDiagnostics d;
    d.name = backend_kind_name(BackendKind::kDensityNoisy);
    d.kind = BackendKind::kDensityNoisy;
    d.num_qubits = executor_->circuit().num_qubits();
    d.shots = shots_;
    d.source_ops = executor_->program().stats().source_ops;
    d.compiled_ops = executor_->program().stats().compiled_ops;
    return d;
  }

  std::vector<double> run_logits(std::span<const double> x) const override {
    if (shots_ > 0) {
      Rng rng(shot_seed_);
      return executor_->run_z_shots(x, shots_, rng);
    }
    return executor_->run_z(x);
  }

  std::vector<std::vector<double>> run_logits_batch(
      std::span<const std::vector<double>> xs,
      ThreadPool* pool = nullptr) const override {
    // Fused SoA lane replay over full blocks, scalar tail — see
    // NoisyExecutor::run_z_batch.
    return executor_->run_z_batch(xs, shots_, shot_seed_, pool);
  }

 private:
  std::shared_ptr<const NoisyExecutor> executor_;
  int shots_;
  std::uint64_t shot_seed_;
  BackendCapabilities capabilities_;
};

/// Adapter fronting the noise-free compiled statevector engine
/// (PureExecutor). Theta is bound at construction; the underlying compiled
/// program stays structure-keyed and symbolic, so backend builds across
/// theta updates share one cache entry.
class PureStatevectorBackend final : public ExecutionBackend {
 public:
  PureStatevectorBackend(std::shared_ptr<const PureExecutor> executor,
                         std::vector<double> theta)
      : executor_(std::move(executor)), theta_(std::move(theta)) {}

  BackendKind kind() const override { return BackendKind::kPureStatevector; }
  const BackendCapabilities& capabilities() const override {
    return backend_kind_capabilities(BackendKind::kPureStatevector);
  }
  BackendDiagnostics diagnostics() const override {
    BackendDiagnostics d;
    d.name = backend_kind_name(BackendKind::kPureStatevector);
    d.kind = BackendKind::kPureStatevector;
    d.num_qubits = executor_->circuit().num_qubits();
    d.shots = 0;
    d.source_ops = executor_->program().stats().source_ops;
    d.compiled_ops = executor_->program().stats().compiled_ops;
    return d;
  }

  std::vector<double> run_logits(std::span<const double> x) const override {
    return executor_->run_z(x, theta_);
  }

  std::vector<std::vector<double>> run_logits_batch(
      std::span<const std::vector<double>> xs,
      ThreadPool* pool = nullptr) const override {
    // Fused SoA lane replay over full blocks, scalar tail — see
    // PureExecutor::run_z_batch.
    return executor_->run_z_batch(xs, theta_, pool);
  }

 private:
  std::shared_ptr<const PureExecutor> executor_;
  std::vector<double> theta_;
};

Status missing(const char* field, const char* kind) {
  return Status::invalid_argument(std::string("backend context is missing ") +
                                  field + " (required by " + kind + ")");
}

std::shared_ptr<const PureExecutor> resolve_pure_executor(
    const BackendContext& context) {
  if (context.use_cache) {
    return CompiledEvalCache::global().get_or_build_pure(
        context.model->circuit, context.model->readout_qubits);
  }
  return build_pure_executor(context.model->circuit,
                             context.model->readout_qubits);
}

StatusOr<std::shared_ptr<const ExecutionBackend>> make_density(
    const BackendConfig& config, const BackendContext& context) {
  (void)config;  // validated by the registry; shots == 0 for this kind
  const char* kind = backend_kind_name(BackendKind::kDensityNoisy);
  if (context.model == nullptr) return missing("the model", kind);
  if (context.transpiled == nullptr) return missing("the routed model", kind);
  if (context.calibration == nullptr) return missing("a calibration", kind);
  std::shared_ptr<const NoisyExecutor> executor =
      context.use_cache
          ? CompiledEvalCache::global().get_or_build(
                *context.model, *context.transpiled, context.theta,
                *context.calibration, context.noise)
          : build_noisy_executor(*context.model, *context.transpiled,
                                 context.theta, *context.calibration,
                                 context.noise);
  // Confusion is a no-op (all-zero errors) when the noise options disable
  // it, and the capability flag must say so.
  const bool readout_active = context.noise.include_readout_error &&
                              executor->noise().num_qubits() > 0;
  return std::shared_ptr<const ExecutionBackend>(
      std::make_shared<const DensityMatrixBackend>(
          std::move(executor), context.density_shots,
          context.density_shot_seed, readout_active));
}

StatusOr<std::shared_ptr<const ExecutionBackend>> make_pure(
    const BackendConfig& config, const BackendContext& context) {
  (void)config;
  if (context.model == nullptr) {
    return missing("the model", backend_kind_name(BackendKind::kPureStatevector));
  }
  return std::shared_ptr<const ExecutionBackend>(
      std::make_shared<const PureStatevectorBackend>(
          resolve_pure_executor(context),
          std::vector<double>(context.theta.begin(), context.theta.end())));
}

StatusOr<std::shared_ptr<const ExecutionBackend>> make_sampled(
    const BackendConfig& config, const BackendContext& context) {
  if (context.model == nullptr) {
    return missing("the model", backend_kind_name(BackendKind::kSampled));
  }
  std::vector<ReadoutError> slot_readout;
  if (context.calibration != nullptr && context.noise.include_readout_error) {
    StatusOr<std::vector<ReadoutError>> errors = slot_readout_errors(
        *context.model, context.transpiled, *context.calibration);
    if (!errors.ok()) return errors.status();
    slot_readout = *std::move(errors);
  }
  const std::uint64_t seed =
      config.seed.has_value() ? *config.seed : std::random_device{}();
  return std::shared_ptr<const ExecutionBackend>(
      std::make_shared<const SampledStatevectorBackend>(
          resolve_pure_executor(context),
          std::vector<double>(context.theta.begin(), context.theta.end()),
          std::move(slot_readout), config.shots, seed,
          /*deterministic=*/config.seed.has_value()));
}

}  // namespace

StatusOr<std::vector<ReadoutError>> slot_readout_errors(
    const QnnModel& model, const TranspiledModel* transpiled,
    const Calibration& calibration) {
  std::vector<ReadoutError> errors;
  errors.reserve(model.readout_qubits.size());
  for (int lq : model.readout_qubits) {
    const int pq = transpiled != nullptr ? transpiled->readout_physical(lq) : lq;
    if (pq < 0 || pq >= calibration.num_qubits()) {
      return Status::invalid_argument(
          "readout qubit " + std::to_string(pq) +
          " is outside the calibration (" +
          std::to_string(calibration.num_qubits()) + " qubits)");
    }
    errors.push_back(calibration.readout(pq));
  }
  return errors;
}

BackendRegistry::BackendRegistry() : factories_(3) {
  factories_[static_cast<std::size_t>(BackendKind::kDensityNoisy)] =
      make_density;
  factories_[static_cast<std::size_t>(BackendKind::kPureStatevector)] =
      make_pure;
  factories_[static_cast<std::size_t>(BackendKind::kSampled)] = make_sampled;
}

BackendRegistry& BackendRegistry::global() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_factory(BackendKind kind, Factory factory) {
  require(factory != nullptr, "backend factory must be callable");
  const std::size_t index = static_cast<std::size_t>(kind);
  std::lock_guard<std::mutex> lock(mutex_);
  // BackendKind is an 8-bit enum, so experimental kinds beyond the
  // built-in enumerators grow the table on demand (at most 256 slots).
  if (index >= factories_.size()) factories_.resize(index + 1);
  factories_[index] = std::move(factory);
}

StatusOr<std::shared_ptr<const ExecutionBackend>> BackendRegistry::make(
    const BackendConfig& config, const BackendContext& context) const {
  if (Status status = config.validate(); !status.ok()) return status;
  if (context.density_shots < 0) {
    return Status::invalid_argument("density shots must be non-negative");
  }
  // Chokepoint consistency check: the legacy density shot knob
  // (NoisyEvalOptions::shots) only means something to the density engine.
  // Rejecting it here — rather than in each consumer — guarantees no
  // backend path can silently drop a caller's shot request.
  if (context.density_shots > 0 &&
      config.kind != BackendKind::kDensityNoisy) {
    return Status::invalid_argument(
        "the legacy density shot knob (NoisyEvalOptions::shots) drives the "
        "density engine's shot readout; a non-density backend takes its "
        "shot budget from BackendConfig::shots");
  }
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t index = static_cast<std::size_t>(config.kind);
    if (index >= factories_.size() || factories_[index] == nullptr) {
      return Status::invalid_argument(
          "no factory registered for backend kind " +
          std::to_string(static_cast<int>(config.kind)));
    }
    factory = factories_[index];
  }
  return factory(config, context);
}

StatusOr<std::shared_ptr<const ExecutionBackend>> make_backend(
    const BackendConfig& config, const BackendContext& context) {
  return BackendRegistry::global().make(config, context);
}

}  // namespace qucad
