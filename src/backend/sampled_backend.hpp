#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "backend/backend.hpp"
#include "noise/calibration.hpp"
#include "transpile/executor.hpp"

namespace qucad {

/// Finite-shot statevector backend: hardware-like readout statistics at
/// statevector cost. Per sample it
///
///  1. replays the compiled pure program ONCE (the same structure-keyed
///     CompiledProgram the training path replays — one compilation serves
///     every sample and every theta),
///  2. builds the cumulative distribution over basis states in caller
///     scratch (no allocation per sample after the first batch),
///  3. draws `shots` bitstrings from that CDF (one uniform + binary search
///     per shot, seeded per sample with seed + in-batch index so a fixed
///     batch layout reproduces bit for bit), and
///  4. flips each measured readout bit with its per-qubit confusion
///     probability from the Calibration (p(1|0) / p(0|1)) before
///     accumulating the slot's ±1 outcome.
///
/// Step 4 is distribution-identical to applying the classical readout
/// confusion matrix to the full 2^n probability vector (the confusion is
/// independent per qubit) but costs O(readout slots) per shot instead of
/// O(n 2^n) per sample.
///
/// Logits converge to PureExecutor::run_z (plus readout-error bias) as
/// shots grows — shot noise on each `<Z>` estimate has standard deviation
/// <= 1/sqrt(shots) — and are bitwise-reproducible under a fixed seed.
/// Like every backend, logits are ordered by readout slot (class k at
/// entry k), never indexed by qubit id.
///
/// Construction is cheap when the underlying PureExecutor comes from
/// CompiledEvalCache (structure-keyed): a new theta or shot budget reuses
/// the cached compiled program. All run methods are const and safe to call
/// concurrently.
class SampledStatevectorBackend final : public ExecutionBackend {
 public:
  /// `slot_readout[k]` is the confusion of readout slot k (the calibration
  /// readout error of the physical qubit hosting class k); pass an empty
  /// vector for confusion-free sampling. `theta` is bound at construction,
  /// mirroring how the density backend binds theta at lowering. Pass
  /// `deterministic = false` when `seed` was drawn from entropy rather than
  /// supplied by the caller, so capabilities() reports the truth.
  SampledStatevectorBackend(std::shared_ptr<const PureExecutor> executor,
                            std::vector<double> theta,
                            std::vector<ReadoutError> slot_readout, int shots,
                            std::uint64_t seed, bool deterministic = true);

  BackendKind kind() const override { return BackendKind::kSampled; }
  const BackendCapabilities& capabilities() const override;
  BackendDiagnostics diagnostics() const override;

  std::vector<double> run_logits(std::span<const double> x) const override;

  /// Sample i draws its shot stream from seed + i, where i is the sample's
  /// index WITHIN this batch (the run_z_batch convention) — so a fixed
  /// batch layout is bitwise reproducible, but splitting the same samples
  /// into different batches redraws their streams. Consumers that need
  /// exact reproducibility must keep the request->batch assignment fixed
  /// (the serving layer documents the same caveat).
  ///
  /// Full blocks of BatchedStateVector::kLanes samples replay through the
  /// SoA lane engine and then sample each lane's final state; because the
  /// lane replay is bitwise identical to the scalar replay (see
  /// sim/batched_state.hpp) the drawn shot streams — and therefore the
  /// logits — are bit-for-bit the same as the per-sample path. The ragged
  /// tail (and everything, under the QUCAD_SCALAR_REPLAY kill switch) goes
  /// per-sample. Every row is validated against the program's input arity
  /// up front, on the calling thread.
  std::vector<std::vector<double>> run_logits_batch(
      std::span<const std::vector<double>> xs,
      ThreadPool* pool = nullptr) const override;

  int shots() const { return shots_; }
  std::uint64_t seed() const { return seed_; }
  const PureExecutor& executor() const { return *executor_; }

 private:
  /// One sample's shot-sampled logits into caller-owned scratch.
  std::vector<double> sample_into(std::span<const double> x,
                                  std::uint64_t sample_seed, StateVector& sv,
                                  std::vector<double>& cdf) const;

  /// The shot-draw loop shared by the scalar and lane paths: `shots_` draws
  /// from `cdf` (running total `total`) under an Rng seeded with
  /// `sample_seed`, confusion flips included.
  std::vector<double> draw_logits(const std::vector<double>& cdf, double total,
                                  std::uint64_t sample_seed) const;

  std::shared_ptr<const PureExecutor> executor_;
  std::vector<double> theta_;
  std::vector<ReadoutError> slot_readout_;  ///< empty = no confusion
  int shots_;
  std::uint64_t seed_;
  BackendCapabilities capabilities_;
};

}  // namespace qucad
