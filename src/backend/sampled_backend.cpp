#include "backend/sampled_backend.hpp"

#include <algorithm>
#include <complex>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace qucad {

namespace {

/// Per-thread replay scratch, recycled across samples and across backends
/// of the same width so the statevector replay + CDF stay allocation-free
/// after warmup (the NoisyExecutor::run_z_batch pattern).
struct SampleScratch {
  std::unique_ptr<StateVector> sv;
  std::vector<double> cdf;
};

SampleScratch& thread_scratch(int qubits) {
  thread_local SampleScratch scratch;
  if (!scratch.sv || scratch.sv->num_qubits() != qubits) {
    scratch.sv = std::make_unique<StateVector>(qubits);
  }
  return scratch;
}

}  // namespace

SampledStatevectorBackend::SampledStatevectorBackend(
    std::shared_ptr<const PureExecutor> executor, std::vector<double> theta,
    std::vector<ReadoutError> slot_readout, int shots, std::uint64_t seed,
    bool deterministic)
    : executor_(std::move(executor)),
      theta_(std::move(theta)),
      slot_readout_(std::move(slot_readout)),
      shots_(shots),
      seed_(seed),
      capabilities_(backend_kind_capabilities(BackendKind::kSampled)) {
  require(executor_ != nullptr, "sampled backend needs a compiled executor");
  require(shots_ > 0, "sampled backend needs shots > 0");
  const std::size_t slots = executor_->circuit().readout_physical().size();
  require(slot_readout_.empty() || slot_readout_.size() == slots,
          "slot readout errors must match the readout slot count");
  capabilities_.readout_error = !slot_readout_.empty();
  // An entropy-drawn seed still reproduces within this instance's lifetime,
  // but not across builds — which is what the flag is for consumers.
  capabilities_.deterministic = deterministic;
}

const BackendCapabilities& SampledStatevectorBackend::capabilities() const {
  return capabilities_;
}

BackendDiagnostics SampledStatevectorBackend::diagnostics() const {
  BackendDiagnostics d;
  d.name = backend_kind_name(BackendKind::kSampled);
  d.kind = BackendKind::kSampled;
  d.num_qubits = executor_->circuit().num_qubits();
  d.shots = shots_;
  d.source_ops = executor_->program().stats().source_ops;
  d.compiled_ops = executor_->program().stats().compiled_ops;
  return d;
}

std::vector<double> SampledStatevectorBackend::draw_logits(
    const std::vector<double>& cdf, double total,
    std::uint64_t sample_seed) const {
  const std::vector<int>& slots = executor_->circuit().readout_physical();
  std::vector<double> z(slots.size(), 0.0);
  Rng rng(sample_seed);
  for (int s = 0; s < shots_; ++s) {
    const double u = rng.uniform(0.0, total);
    auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
    // uniform_real_distribution may return exactly `total` under rounding;
    // clamp so the draw lands on the last basis state, not past the end.
    if (it == cdf.end()) it = std::prev(cdf.end());
    const std::size_t bits =
        static_cast<std::size_t>(std::distance(cdf.begin(), it));
    for (std::size_t k = 0; k < slots.size(); ++k) {
      bool one = (bits >> slots[k]) & 1;
      if (!slot_readout_.empty()) {
        // Classical confusion, applied per measured qubit: a true 0 reads
        // as 1 with p(1|0), a true 1 reads as 0 with p(0|1). Equivalent in
        // distribution to confusing the full probability vector.
        const ReadoutError& err = slot_readout_[k];
        const double flip_p = one ? err.p0_given_1 : err.p1_given_0;
        if (flip_p > 0.0 && rng.bernoulli(flip_p)) one = !one;
      }
      z[k] += one ? -1.0 : 1.0;
    }
  }
  const double inv_shots = 1.0 / static_cast<double>(shots_);
  for (double& v : z) v *= inv_shots;
  return z;
}

std::vector<double> SampledStatevectorBackend::sample_into(
    std::span<const double> x, std::uint64_t sample_seed, StateVector& sv,
    std::vector<double>& cdf) const {
  executor_->run_state(sv, x, theta_);
  const std::vector<cplx>& amps = sv.amplitudes();

  // Cumulative distribution over basis states, built in place. The final
  // entry (~1.0 up to rounding) is used as the draw range so a slightly
  // off-norm state never biases the tail bucket.
  cdf.resize(amps.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < amps.size(); ++i) {
    acc += std::norm(amps[i]);
    cdf[i] = acc;
  }
  return draw_logits(cdf, acc, sample_seed);
}

std::vector<double> SampledStatevectorBackend::run_logits(
    std::span<const double> x) const {
  require(x.size() >=
              static_cast<std::size_t>(executor_->program().num_inputs()),
          "feature vector too short for compiled program");
  SampleScratch& scratch = thread_scratch(executor_->circuit().num_qubits());
  return sample_into(x, seed_, *scratch.sv, scratch.cdf);
}

std::vector<std::vector<double>> SampledStatevectorBackend::run_logits_batch(
    std::span<const std::vector<double>> xs, ThreadPool* pool) const {
  constexpr std::size_t kLanes = BatchedStateVector::kLanes;
  // Validate the whole batch at the API boundary (calling thread): a ragged
  // row fails here, not inside a worker's replay.
  for (const std::vector<double>& x : xs) {
    require(x.size() >=
                static_cast<std::size_t>(executor_->program().num_inputs()),
            "feature vector too short for compiled program");
  }
  std::vector<std::vector<double>> zs(xs.size());
  ThreadPool& workers = pool ? *pool : ThreadPool::global();
  const std::size_t blocks =
      use_lane_replay(BatchReplay::kAuto) ? xs.size() / kLanes : 0;
  const std::size_t tail_start = blocks * kLanes;
  const std::size_t tail = xs.size() - tail_start;
  // Full lane blocks replay once through the SoA engine and then sample
  // each lane's final state; the lane amplitudes — and so the CDFs and the
  // seed_ + i shot draws — are bitwise identical to the per-sample path.
  workers.parallel_for(blocks + tail, [&](std::size_t t) {
    const int qubits = executor_->circuit().num_qubits();
    SampleScratch& scratch = thread_scratch(qubits);
    if (t >= blocks) {
      const std::size_t i = tail_start + (t - blocks);
      zs[i] = sample_into(xs[i], seed_ + i, *scratch.sv, scratch.cdf);
      return;
    }
    thread_local std::unique_ptr<BatchedStateVector> lanes_sv;
    if (!lanes_sv || lanes_sv->num_qubits() != qubits) {
      lanes_sv = std::make_unique<BatchedStateVector>(qubits);
    }
    std::array<const double*, kLanes> lanes;
    const std::size_t first = t * kLanes;
    for (std::size_t l = 0; l < kLanes; ++l) lanes[l] = xs[first + l].data();
    executor_->run_state_lanes(*lanes_sv, lanes, theta_);
    for (std::size_t l = 0; l < kLanes; ++l) {
      double total = 0.0;
      lanes_sv->lane_cdf(l, scratch.cdf, total);
      zs[first + l] = draw_logits(scratch.cdf, total, seed_ + first + l);
    }
  });
  return zs;
}

}  // namespace qucad
