#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "backend/backend.hpp"
#include "noise/calibration.hpp"
#include "noise/noise_model.hpp"
#include "qnn/model.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {

/// Everything a backend factory may need to bind one evaluation
/// configuration. Pointers are non-owning views into caller state that must
/// outlive the make() call only (the built backend copies or compiles what
/// it keeps). Which fields are required depends on the kind:
///
///  - kDensityNoisy:    model, transpiled, theta, calibration
///  - kPureStatevector: model, theta
///  - kSampled:         model, theta; calibration (+ transpiled for the
///                      logical->physical readout mapping) when readout
///                      confusion is wanted
struct BackendContext {
  const QnnModel* model = nullptr;
  const TranspiledModel* transpiled = nullptr;
  std::span<const double> theta;
  const Calibration* calibration = nullptr;
  /// Noise-model construction knobs for the density backend; the sampled
  /// backend honors include_readout_error.
  NoiseModelOptions noise;
  /// Resolve compiled executors through CompiledEvalCache::global() so every
  /// backend kind shares the one executor cache (a repeated configuration —
  /// or a theta update on the structure-keyed pure program — is a hit).
  bool use_cache = true;
  /// Legacy density-path finite-shot readout (NoisyEvalOptions::shots /
  /// shot_seed): when > 0 the density backend samples its z estimates
  /// through NoisyExecutor's shot path instead of reporting exact
  /// expectations. BackendConfig::shots deliberately rejects this kind.
  int density_shots = 0;
  std::uint64_t density_shot_seed = 99;
};

/// Factory map from BackendKind to backend builder — the single seam every
/// consumer (evaluator, harness, serving, benches) selects its execution
/// regime through, and the extension point for future regimes (sharded
/// pools, remote/hardware stubs): replace a built-in factory, or register
/// one under a new kind value beyond the built-in enumerators
/// (`static_cast<BackendKind>(n)`, n < 256 — the table grows on demand),
/// and every config-driven consumer can use it. Thread-safe.
class BackendRegistry {
 public:
  using Factory =
      std::function<StatusOr<std::shared_ptr<const ExecutionBackend>>(
          const BackendConfig&, const BackendContext&)>;

  /// A registry with the three built-in factories pre-registered.
  BackendRegistry();

  /// Process-wide registry used by every config-driven consumer.
  static BackendRegistry& global();

  /// Installs the factory for `kind`, replacing a built-in or adding an
  /// experimental kind (tests, downstream engines; built-ins are restored
  /// by constructing a fresh registry).
  void register_factory(BackendKind kind, Factory factory);

  /// Validates `config` (including context-level consistency: the legacy
  /// density shot knob is rejected for any non-density kind rather than
  /// silently dropped) and builds the backend for it. Missing context
  /// fields, unknown kinds, and inconsistent configs come back as Status
  /// values.
  StatusOr<std::shared_ptr<const ExecutionBackend>> make(
      const BackendConfig& config, const BackendContext& context) const;

 private:
  mutable std::mutex mutex_;
  std::vector<Factory> factories_;  // indexed by BackendKind; grows on demand
};

/// Convenience: BackendRegistry::global().make(config, context).
StatusOr<std::shared_ptr<const ExecutionBackend>> make_backend(
    const BackendConfig& config, const BackendContext& context);

/// Per-slot readout confusion of `model`'s readout qubits under
/// `calibration`: entry k is the confusion of the physical qubit hosting
/// class k (`transpiled.readout_physical(model.readout_qubits[k])`; pass
/// nullptr for an unrouted circuit, where logical ids are physical ids).
/// This is the mapping the sampled backend applies. A readout qubit the
/// calibration does not cover is an invalid-argument Status (this sits on
/// the registry's no-throw path).
StatusOr<std::vector<ReadoutError>> slot_readout_errors(
    const QnnModel& model, const TranspiledModel* transpiled,
    const Calibration& calibration);

}  // namespace qucad
