#include "backend/backend.hpp"

#include "common/thread_pool.hpp"

namespace qucad {

const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kDensityNoisy: return "density_noisy";
    case BackendKind::kPureStatevector: return "pure_statevector";
    case BackendKind::kSampled: return "sampled_statevector";
  }
  return "unknown";
}

const BackendCapabilities& backend_kind_capabilities(BackendKind kind) {
  static const BackendCapabilities density{/*models_noise=*/true,
                                           /*finite_shots=*/false,
                                           /*readout_error=*/true,
                                           /*gradients=*/false,
                                           /*deterministic=*/true,
                                           /*batched_replay=*/true};
  static const BackendCapabilities pure{/*models_noise=*/false,
                                        /*finite_shots=*/false,
                                        /*readout_error=*/false,
                                        /*gradients=*/true,
                                        /*deterministic=*/true,
                                        /*batched_replay=*/true};
  static const BackendCapabilities sampled{/*models_noise=*/false,
                                           /*finite_shots=*/true,
                                           /*readout_error=*/true,
                                           /*gradients=*/false,
                                           /*deterministic=*/true,
                                           /*batched_replay=*/true};
  // Kinds beyond the built-ins (custom registry registrations) claim
  // nothing statically — consult the built instance's capabilities().
  static const BackendCapabilities unknown{/*models_noise=*/false,
                                           /*finite_shots=*/false,
                                           /*readout_error=*/false,
                                           /*gradients=*/false,
                                           /*deterministic=*/false,
                                           /*batched_replay=*/false};
  switch (kind) {
    case BackendKind::kDensityNoisy: return density;
    case BackendKind::kPureStatevector: return pure;
    case BackendKind::kSampled: return sampled;
  }
  return unknown;
}

Status BackendConfig::validate() const {
  if (shots < 0) {
    return Status::invalid_argument("backend shots must be non-negative");
  }
  if (kind == BackendKind::kDensityNoisy && shots > 0) {
    return Status::invalid_argument(
        "the exact density backend computes expectations; finite-shot "
        "readout is the kSampled backend's job (or the legacy "
        "NoisyEvalOptions::shots knob)");
  }
  if (kind == BackendKind::kPureStatevector && shots > 0) {
    return Status::invalid_argument(
        "the pure statevector backend computes expectations; use kSampled "
        "for finite-shot readout");
  }
  if (kind == BackendKind::kSampled && shots == 0) {
    return Status::invalid_argument(
        "kSampled draws finite-shot estimates and needs shots > 0");
  }
  if (deterministic && !seed.has_value()) {
    return Status::invalid_argument(
        "deterministic sampling requested without a seed");
  }
  return Status();
}

std::vector<std::vector<double>> ExecutionBackend::run_logits_batch(
    std::span<const std::vector<double>> xs, ThreadPool* pool) const {
  std::vector<std::vector<double>> zs(xs.size());
  ThreadPool& workers = pool ? *pool : ThreadPool::global();
  workers.parallel_for(xs.size(),
                       [&](std::size_t i) { zs[i] = run_logits(xs[i]); });
  return zs;
}

}  // namespace qucad
