#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "sim/compiled_ops.hpp"

namespace qucad {

class ThreadPool;

/// \file
/// The pluggable execution-backend API: one interface every consumer of
/// "classify this feature vector under some execution regime" goes through
/// (evaluator, longitudinal harness, serving layer, benches), with the
/// concrete engine selected by a BackendConfig instead of hard-coded
/// NoisyExecutor / PureExecutor calls. The built-in backends are
///  - kDensityNoisy:     exact density-matrix evolution with calibrated
///                       channels (fronts NoisyExecutor),
///  - kPureStatevector:  noise-free statevector expectations (fronts
///                       PureExecutor),
///  - kSampled:          finite-shot bitstring sampling from the compiled
///                       pure statevector with per-qubit readout confusion —
///                       hardware-like readout at statevector cost
///                       (backend/sampled_backend.hpp).
/// New regimes (sharded pools, remote/hardware stubs) plug in through
/// BackendRegistry (backend/registry.hpp) without touching any consumer.

/// The execution regimes a BackendConfig can select.
enum class BackendKind : std::uint8_t {
  /// Exact density-matrix evolution with the calibration's noise channels
  /// folded in. Logits are expectations; BackendConfig::shots must be 0
  /// (finite-shot readout is the kSampled backend's job).
  kDensityNoisy = 0,
  /// Noise-free compiled statevector expectations. The training-path engine;
  /// the only gradient-capable kind.
  kPureStatevector = 1,
  /// Finite-shot sampling from the compiled pure statevector with classical
  /// per-qubit readout confusion. BackendConfig::shots must be > 0.
  kSampled = 2,
};

/// Registry name of a kind ("density_noisy", "pure_statevector",
/// "sampled_statevector").
const char* backend_kind_name(BackendKind kind);

/// What a backend can and cannot do. Consumers branch on these instead of
/// on concrete executor types — e.g. the trainer rejects any configured
/// backend whose kind is not gradient-capable.
struct BackendCapabilities {
  /// Calibrated error channels participate in the state evolution.
  bool models_noise = false;
  /// Logits are finite-shot estimates rather than exact expectations.
  bool finite_shots = false;
  /// Classical readout confusion is applied to measurement outcomes.
  bool readout_error = false;
  /// The backend's engine exposes an exact gradient path (adjoint).
  bool gradients = false;
  /// Identical inputs produce bitwise-identical logits (exact expectations,
  /// or shot sampling under a fixed seed).
  bool deterministic = true;
  /// run_logits_batch replays full sample blocks through the SoA lane
  /// engine (sim/batched_state.hpp) instead of looping run_logits. Only the
  /// statevector-replay kinds can: the density engine evolves one matrix
  /// per sample by construction.
  bool batched_replay = false;
};

/// Static capabilities of a built-in kind (what any backend of that kind
/// can support; instance capabilities() may narrow — e.g. determinism off
/// when sampling unseeded). Kinds beyond the built-ins report all-false
/// capabilities here — for custom registrations, consult the built
/// instance's capabilities() instead.
const BackendCapabilities& backend_kind_capabilities(BackendKind kind);

/// Introspection snapshot of one built backend, for logs and perf records.
struct BackendDiagnostics {
  std::string name;          ///< registry name of the kind
  BackendKind kind = BackendKind::kDensityNoisy;
  int num_qubits = 0;        ///< width of the compiled program
  int shots = 0;             ///< 0 = exact expectations
  std::size_t source_ops = 0;    ///< PhysOps lowered into the program
  std::size_t compiled_ops = 0;  ///< ops in the fused replay stream
};

/// Selects and parameterizes an execution backend. This is the config every
/// consumer-facing option struct carries (NoisyEvalOptions, TrainConfig,
/// HarnessOptions, ServiceConfig) so a scenario picks its execution regime
/// declaratively. Engine knobs that would poison executor-cache keys (noise
/// model options, worker pool, cache bypass) deliberately stay on the
/// consumer option structs; this struct only holds what defines the
/// backend itself.
struct BackendConfig {
  BackendKind kind = BackendKind::kDensityNoisy;

  /// Shots drawn per sample. Required > 0 for kSampled; must stay 0 for the
  /// expectation kinds (validate() rejects the mismatch — the legacy
  /// NoisyEvalOptions::shots knob still drives density-path shot readout).
  int shots = 0;

  /// Base seed of the kSampled backend's per-sample shot streams (sample i
  /// draws from seed + i, matching NoisyExecutor::run_z_batch). Clearing it
  /// while `deterministic` is set is a validation error. The density kind's
  /// legacy shot path is seeded by NoisyEvalOptions::shot_seed instead —
  /// this field does not apply there (just as `shots` is rejected there).
  std::optional<std::uint64_t> seed = 99;

  /// Require a seeded, reproducible sampling stream. Off, a kSampled
  /// backend without a seed draws one from the OS entropy pool.
  bool deterministic = true;

  BackendConfig& with_kind(BackendKind value) {
    kind = value;
    return *this;
  }
  BackendConfig& with_shots(int value) {
    shots = value;
    return *this;
  }
  BackendConfig& with_seed(std::optional<std::uint64_t> value) {
    seed = value;
    return *this;
  }
  BackendConfig& with_deterministic(bool value) {
    deterministic = value;
    return *this;
  }

  /// OK when the knob combination is consistent; the first violation
  /// otherwise (shots on an expectation kind, kSampled without shots,
  /// determinism requested without a seed).
  Status validate() const;
};

/// One execution regime bound to one evaluation configuration (structure,
/// theta, calibration): the uniform front every consumer classifies
/// through. Instances are immutable after construction; all run methods are
/// const and safe to call concurrently (the epoch hot-swap and batched
/// evaluation paths rely on this).
///
/// Readout contract (same as the concrete engines): logits are ordered by
/// readout slot — entry k is `<Z>` (or its shot estimate) of class k, never
/// indexed by qubit id.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual BackendKind kind() const = 0;
  virtual const BackendCapabilities& capabilities() const = 0;
  virtual BackendDiagnostics diagnostics() const = 0;

  /// Class logits for one sample. Equals run_logits_batch({x})[0] bitwise.
  virtual std::vector<double> run_logits(std::span<const double> x) const = 0;

  /// Batched logits, spread over `pool` (nullptr = the process-global
  /// pool). The default implementation parallelizes run_logits per sample;
  /// backends with a fused batch path (NoisyExecutor::run_z_batch)
  /// override it.
  virtual std::vector<std::vector<double>> run_logits_batch(
      std::span<const std::vector<double>> xs, ThreadPool* pool = nullptr) const;
};

}  // namespace qucad
