#include "qnn/optimizer.hpp"

#include <cmath>

#include "common/require.hpp"

namespace qucad {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  require(lr > 0.0, "learning rate must be positive");
  require(momentum >= 0.0 && momentum < 1.0, "momentum out of range");
}

void Sgd::step(std::vector<double>& params, const std::vector<double>& grad) {
  require(params.size() == grad.size(), "gradient size mismatch");
  if (velocity_.size() != params.size()) velocity_.assign(params.size(), 0.0);
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] - lr_ * grad[i];
    params[i] += velocity_[i];
  }
}

void Sgd::reset() { velocity_.clear(); }

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  require(lr > 0.0, "learning rate must be positive");
  require(beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 && beta2 < 1.0,
          "Adam betas out of range");
}

void Adam::step(std::vector<double>& params, const std::vector<double>& grad) {
  require(params.size() == grad.size(), "gradient size mismatch");
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0);
    v_.assign(params.size(), 0.0);
    step_count_ = 0;
  }
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double m_hat = m_[i] / bias1;
    const double v_hat = v_[i] / bias2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  step_count_ = 0;
}

}  // namespace qucad
