#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "backend/backend.hpp"
#include "circuit/circuit.hpp"
#include "data/dataset.hpp"
#include "qnn/model.hpp"

namespace qucad {

/// Which gradient engine train_circuit drives.
enum class TrainEngine {
  /// Lower the circuit once with trainable angles symbolic and replay the
  /// compiled op-stream per (sample, theta) — the default hot path. The
  /// compiled program is fetched from CompiledEvalCache::global() (keyed on
  /// structure only, so every optimizer step and every later run over the
  /// same structure is a cache hit) except under a per-batch circuit hook,
  /// where the freshly injected structure is compiled directly.
  kCompiled,
  /// Gate-by-gate statevector adjoint on the logical circuit
  /// (sim/adjoint.hpp) — the reference path the compiled engine is tested
  /// against.
  kReference,
};

struct TrainConfig {
  int epochs = 30;
  int batch_size = 32;
  double lr = 0.05;
  double logit_scale = 5.0;
  std::uint64_t seed = 1234;

  /// Per-parameter freeze flags (1 = frozen); empty = all trainable.
  std::vector<std::uint8_t> frozen;

  /// ADMM proximal term: adds prox_rho * (theta - anchor) to the gradient.
  const std::vector<double>* prox_anchor = nullptr;
  double prox_rho = 0.0;

  /// Gradient engine. Both produce the same losses/gradients to ~1e-12 per
  /// step; kCompiled is the fast path, kReference the ground truth.
  TrainEngine engine = TrainEngine::kCompiled;

  /// Execution regime the training loop runs under. Training needs exact
  /// gradients, so the kind must be gradient-capable
  /// (backend_kind_capabilities(kind).gradients — today only
  /// kPureStatevector); train_circuit rejects anything else up front rather
  /// than silently training on a regime whose logits it cannot
  /// differentiate. `engine` above then picks the compiled or reference
  /// implementation of that regime.
  BackendConfig backend{.kind = BackendKind::kPureStatevector};
};

struct TrainResult {
  std::vector<double> epoch_losses;
  double final_train_accuracy = 0.0;
};

/// Hook that can rewrite the circuit once per mini-batch (used to inject
/// stochastic Pauli noise for noise-aware training). Receives a fresh Rng
/// stream; returning the base circuit unchanged trains noise-free.
using BatchCircuitHook = std::function<Circuit(const Circuit& base, Rng& rng)>;

/// Mini-batch Adam training of a circuit's trainable parameters against a
/// dataset, using exact adjoint gradients.
TrainResult train_circuit(const Circuit& circuit,
                          const std::vector<int>& readout_qubits,
                          std::vector<double>& theta, const Dataset& data,
                          const TrainConfig& config,
                          const BatchCircuitHook& hook = nullptr);

/// Convenience: noise-free training of a QnnModel.
TrainResult train_model(const QnnModel& model, std::vector<double>& theta,
                        const Dataset& data, const TrainConfig& config);

}  // namespace qucad
