#pragma once

#include "circuit/circuit.hpp"

namespace qucad {

/// Appends one block of the paper's VQC ansatz (Sec. IV-A):
///   4RY + 4CRY + 4RY + 4RX + 4CRX + 4RX + 4RZ + 4CRZ + 4RZ + 4CRZ
/// generalized to n qubits (n rotations per layer, controlled rotations on
/// the ring (i -> i+1 mod n)). 10n trainable parameters per block.
/// `param_counter` supplies and advances the trainable parameter indices.
void append_paper_block(Circuit& circuit, int& param_counter);

/// Full ansatz: `repeats` blocks on `num_qubits` wires.
Circuit build_paper_ansatz(int num_qubits, int repeats);

/// Trainable parameter count of build_paper_ansatz.
int paper_ansatz_params(int num_qubits, int repeats);

}  // namespace qucad
