#pragma once

#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "data/dataset.hpp"
#include "transpile/executor.hpp"

namespace qucad {

/// Mean loss/gradient of a mini-batch.
struct BatchGrad {
  double loss = 0.0;
  double accuracy = 0.0;
  std::vector<double> grad;
};

/// Mean cross-entropy loss, accuracy and exact gradient over the selected
/// samples, computed with one adjoint pass per sample (parallelized).
///
/// Works on any circuit whose inputs are the dataset features: the logical
/// model circuit, the routed physical circuit (pass the physical readout
/// qubits), or a noise-injected variant.
BatchGrad batch_loss_grad(const Circuit& circuit,
                          const std::vector<int>& readout_qubits,
                          std::span<const double> theta, const Dataset& data,
                          std::span<const std::size_t> indices,
                          double logit_scale);

/// Loss/accuracy only (skips the backward sweep).
BatchGrad batch_loss(const Circuit& circuit,
                     const std::vector<int>& readout_qubits,
                     std::span<const double> theta, const Dataset& data,
                     std::span<const std::size_t> indices, double logit_scale);

/// Compiled-engine variant of batch_loss_grad: replays the executor's
/// symbolic-theta program instead of re-walking a gate list. Full blocks of
/// BatchedStateVector::kLanes samples go through the SoA lane adjoint (one
/// forward + one reverse sweep per block, lane-wide duals); the ragged tail
/// — and the whole batch under `replay = kScalar`, the 1e-10-pinned
/// reference — runs one compiled adjoint per sample with per-thread
/// workspace reuse. Class logits are read positionally from the executor's
/// readout slots — slot k is class k. Agrees with the reference
/// batch_loss_grad on the corresponding logical circuit at 1e-10 (same
/// unitary up to global phase); gradients are sized to theta.size().
/// Selected feature rows are validated against the program's input arity up
/// front, on the calling thread.
BatchGrad batch_loss_grad(const PureExecutor& executor,
                          std::span<const double> theta, const Dataset& data,
                          std::span<const std::size_t> indices,
                          double logit_scale,
                          BatchReplay replay = BatchReplay::kAuto);

/// Compiled-engine variant of batch_loss (forward replays only; same lane
/// blocking, validation, and `replay` contract as batch_loss_grad).
BatchGrad batch_loss(const PureExecutor& executor,
                     std::span<const double> theta, const Dataset& data,
                     std::span<const std::size_t> indices, double logit_scale,
                     BatchReplay replay = BatchReplay::kAuto);

}  // namespace qucad
