#pragma once

#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "data/dataset.hpp"
#include "transpile/executor.hpp"

namespace qucad {

/// Mean loss/gradient of a mini-batch.
struct BatchGrad {
  double loss = 0.0;
  double accuracy = 0.0;
  std::vector<double> grad;
};

/// Mean cross-entropy loss, accuracy and exact gradient over the selected
/// samples, computed with one adjoint pass per sample (parallelized).
///
/// Works on any circuit whose inputs are the dataset features: the logical
/// model circuit, the routed physical circuit (pass the physical readout
/// qubits), or a noise-injected variant.
BatchGrad batch_loss_grad(const Circuit& circuit,
                          const std::vector<int>& readout_qubits,
                          std::span<const double> theta, const Dataset& data,
                          std::span<const std::size_t> indices,
                          double logit_scale);

/// Loss/accuracy only (skips the backward sweep).
BatchGrad batch_loss(const Circuit& circuit,
                     const std::vector<int>& readout_qubits,
                     std::span<const double> theta, const Dataset& data,
                     std::span<const std::size_t> indices, double logit_scale);

/// Compiled-engine variant of batch_loss_grad: replays the executor's
/// symbolic-theta program (one compiled forward + one compiled adjoint per
/// sample, per-thread workspace reuse) instead of re-walking a gate list.
/// Class logits are read positionally from the executor's readout slots —
/// slot k is class k. Agrees with the reference batch_loss_grad on the
/// corresponding logical circuit at 1e-10 (same unitary up to global
/// phase); gradients are sized to theta.size().
BatchGrad batch_loss_grad(const PureExecutor& executor,
                          std::span<const double> theta, const Dataset& data,
                          std::span<const std::size_t> indices,
                          double logit_scale);

/// Compiled-engine variant of batch_loss (forward replays only).
BatchGrad batch_loss(const PureExecutor& executor,
                     std::span<const double> theta, const Dataset& data,
                     std::span<const std::size_t> indices, double logit_scale);

}  // namespace qucad
