#pragma once

#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "data/dataset.hpp"

namespace qucad {

/// Mean loss/gradient of a mini-batch.
struct BatchGrad {
  double loss = 0.0;
  double accuracy = 0.0;
  std::vector<double> grad;
};

/// Mean cross-entropy loss, accuracy and exact gradient over the selected
/// samples, computed with one adjoint pass per sample (parallelized).
///
/// Works on any circuit whose inputs are the dataset features: the logical
/// model circuit, the routed physical circuit (pass the physical readout
/// qubits), or a noise-injected variant.
BatchGrad batch_loss_grad(const Circuit& circuit,
                          const std::vector<int>& readout_qubits,
                          std::span<const double> theta, const Dataset& data,
                          std::span<const std::size_t> indices,
                          double logit_scale);

/// Loss/accuracy only (skips the backward sweep).
BatchGrad batch_loss(const Circuit& circuit,
                     const std::vector<int>& readout_qubits,
                     std::span<const double> theta, const Dataset& data,
                     std::span<const std::size_t> indices, double logit_scale);

}  // namespace qucad
