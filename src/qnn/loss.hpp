#pragma once

#include <span>
#include <vector>

namespace qucad {

/// Numerically stable softmax.
std::vector<double> softmax(std::span<const double> logits);

/// Cross-entropy of softmax(logits * scale) against `label`. The scale
/// compensates for <Z> logits living in [-1, 1] (QNN readouts are soft).
double cross_entropy(std::span<const double> logits, int label,
                     double scale = 1.0);

/// dL/dlogits for the same loss: scale * (softmax(scale*logits) - onehot).
std::vector<double> cross_entropy_grad(std::span<const double> logits,
                                       int label, double scale = 1.0);

}  // namespace qucad
