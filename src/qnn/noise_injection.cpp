#include "qnn/noise_injection.hpp"

#include "common/require.hpp"

namespace qucad {

namespace {

double gate_error_weight(const Gate& g, const Calibration& calib) {
  switch (g.kind) {
    case GateKind::RZ:
      return 0.0;  // virtual
    case GateKind::RX:
    case GateKind::RY:
      return 2.0 * calib.sx_error(g.q0);  // two pulses generically
    case GateKind::X:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::H:
    case GateKind::Y:
    case GateKind::Z:
      return calib.sx_error(g.q0);
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
    case GateKind::CZ:
      return 2.0 * calib.cx_error(g.q0, g.q1);
    case GateKind::CX:
      return calib.cx_error(g.q0, g.q1);
    case GateKind::Swap:
      return 3.0 * calib.cx_error(g.q0, g.q1);
  }
  return 0.0;
}

GateKind random_pauli(Rng& rng) {
  switch (rng.integer(0, 2)) {
    case 0: return GateKind::X;
    case 1: return GateKind::Y;
    default: return GateKind::Z;
  }
}

}  // namespace

Circuit inject_pauli_noise(const Circuit& routed, const Calibration& calibration,
                           Rng& rng, const InjectionOptions& options) {
  require(routed.num_qubits() <= calibration.num_qubits(),
          "routed circuit exceeds calibrated device");
  Circuit out(routed.num_qubits());
  for (const Gate& g : routed.gates()) {
    out.add(g);
    const double p = options.scale * gate_error_weight(g, calibration);
    if (p <= 0.0 || !rng.bernoulli(p)) continue;
    const int victim = (g.num_qubits() == 2 && rng.bernoulli(0.5)) ? g.q1 : g.q0;
    out.add(Gate{random_pauli(rng), victim, -1, ParamRef{}, 0.0});
  }
  return out;
}

}  // namespace qucad
