#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace qucad {

/// A QNN: angle encoder + trainable ansatz, with class scores read out as
/// <Z> of the first `num_classes` qubits.
struct QnnModel {
  Circuit circuit;  // encoder followed by ansatz (logical qubits)
  int num_classes = 2;
  std::vector<int> readout_qubits;  // logical readout qubit per class

  QnnModel() : circuit(1) {}

  int num_qubits() const { return circuit.num_qubits(); }
  int num_params() const { return circuit.num_trainable(); }
  int num_inputs() const { return circuit.num_inputs(); }
};

/// Builds the paper's model: angle encoder for `num_features`, `repeats`
/// ansatz blocks, readout on qubits [0, num_classes).
QnnModel build_paper_model(int num_qubits, int num_features, int num_classes,
                           int repeats);

/// Uniform [-pi, pi) initialization.
std::vector<double> init_params(const QnnModel& model, std::uint64_t seed);

/// Noise-free forward pass: logit k is <Z> of readout_qubits[k] (class
/// order — the positional readout contract).
std::vector<double> forward_logits(const QnnModel& model,
                                   std::span<const double> theta,
                                   std::span<const double> x);

/// argmax over forward_logits.
int predict(const QnnModel& model, std::span<const double> theta,
            std::span<const double> x);

}  // namespace qucad
