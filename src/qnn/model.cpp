#include "qnn/model.hpp"

#include "common/require.hpp"
#include "common/stats.hpp"
#include "qnn/ansatz.hpp"
#include "qnn/encoding.hpp"
#include "sim/statevector.hpp"

namespace qucad {

QnnModel build_paper_model(int num_qubits, int num_features, int num_classes,
                           int repeats) {
  require(num_classes >= 2 && num_classes <= num_qubits,
          "need one readout qubit per class");
  QnnModel model;
  model.circuit = angle_encoder(num_qubits, num_features);
  model.circuit.append(build_paper_ansatz(num_qubits, repeats));
  model.num_classes = num_classes;
  model.readout_qubits.resize(static_cast<std::size_t>(num_classes));
  for (int c = 0; c < num_classes; ++c) {
    model.readout_qubits[static_cast<std::size_t>(c)] = c;
  }
  return model;
}

std::vector<double> init_params(const QnnModel& model, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> theta(static_cast<std::size_t>(model.num_params()));
  for (double& t : theta) t = rng.uniform(-3.14159265358979323846, 3.14159265358979323846);
  return theta;
}

std::vector<double> forward_logits(const QnnModel& model,
                                   std::span<const double> theta,
                                   std::span<const double> x) {
  StateVector sv(model.num_qubits());
  sv.run(model.circuit, theta, x);
  std::vector<double> logits;
  logits.reserve(model.readout_qubits.size());
  for (int q : model.readout_qubits) logits.push_back(sv.expectation_z(q));
  return logits;
}

int predict(const QnnModel& model, std::span<const double> theta,
            std::span<const double> x) {
  const std::vector<double> logits = forward_logits(model, theta, x);
  return static_cast<int>(argmax(logits));
}

}  // namespace qucad
