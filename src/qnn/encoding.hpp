#pragma once

#include "circuit/circuit.hpp"

namespace qucad {

/// Builds an angle-encoding prefix [25]: feature i is applied as a rotation
/// on qubit (i % num_qubits), with the rotation axis cycling RY -> RZ -> RX
/// per layer (layer = i / num_qubits). With num_features == num_qubits this
/// is the plain one-RY-per-qubit encoder; with 16 features on 4 qubits it
/// matches the multi-layer re-uploading encoder used for 4x4 images.
Circuit angle_encoder(int num_qubits, int num_features);

}  // namespace qucad
