#pragma once

#include <span>

#include "backend/backend.hpp"
#include "common/status.hpp"
#include "data/dataset.hpp"
#include "noise/calibration.hpp"
#include "noise/noise_model.hpp"
#include "qnn/model.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {

class ThreadPool;

struct NoisyEvalOptions {
  NoiseModelOptions noise;
  /// Density-path finite-shot readout (0 = exact expectations). This is the
  /// legacy knob for shot-sampling the density engine's confusion-adjusted
  /// probabilities; the statevector-cost alternative is selecting the
  /// kSampled backend below. Setting it alongside a non-density backend is
  /// rejected at evaluation time.
  int shots = 0;
  std::uint64_t shot_seed = 99;
  /// Pool used to spread samples; nullptr = the process-global pool. Lets
  /// callers (and tests) pin the evaluation to a specific worker count.
  ThreadPool* pool = nullptr;
  /// Reuse compiled executors from CompiledEvalCache::global(). Repeated
  /// evaluations of the same (structure, theta, calibration, noise)
  /// configuration — repository keep-best loops, longitudinal harness runs —
  /// then skip re-lowering and re-compiling entirely. Disable to force a
  /// fresh build (e.g. when benchmarking compilation itself).
  bool use_cache = true;
  /// Which execution regime serves the evaluation (backend/backend.hpp).
  /// Default: the exact density-matrix backend — the historical behavior.
  /// kPureStatevector evaluates noise-free; kSampled gives hardware-like
  /// finite-shot logits at statevector cost. Dispatched through
  /// BackendRegistry::global(), so registered custom regimes work here too.
  BackendConfig backend;
};

struct NoisyEvalResult {
  double accuracy = 0.0;
  std::vector<int> predictions;
};

/// Config-driven evaluation of parameters on a dataset. With the default
/// options this is the exact noisy evaluation: the routed model is lowered +
/// compiled at `theta` once (compression peephole active, calibrated
/// channels folded in — cached across calls) and every sample is classified
/// with the compiled density-matrix program, parallel over samples. Other
/// execution regimes are one `options.backend` away (noise-free
/// statevector, finite-shot sampled readout) — the evaluation itself always
/// goes through the ExecutionBackend the registry builds for the config.
///
/// Class logits are read positionally: logit k is <Z> of readout slot k,
/// i.e. model.readout_qubits[k] routed to its physical home — correct for
/// any readout set, not just {0..k-1}.
NoisyEvalResult noisy_evaluate(const QnnModel& model,
                               const TranspiledModel& transpiled,
                               std::span<const double> theta,
                               const Dataset& data, const Calibration& calib,
                               const NoisyEvalOptions& options = {});

/// Status-returning form of noisy_evaluate: malformed inputs (empty dataset,
/// missing readout qubits, theta/feature arity mismatches, a calibration
/// that does not cover the routed device) come back as Status values instead
/// of thrown PreconditionError. This is the validation boundary the serving
/// layer (src/serve/) is built on; noisy_evaluate is now a thin throwing
/// shim over it for research call sites.
StatusOr<NoisyEvalResult> noisy_evaluate_or(const QnnModel& model,
                                            const TranspiledModel& transpiled,
                                            std::span<const double> theta,
                                            const Dataset& data,
                                            const Calibration& calib,
                                            const NoisyEvalOptions& options = {});

/// Accuracy-only convenience wrapper.
double noisy_accuracy(const QnnModel& model, const TranspiledModel& transpiled,
                      std::span<const double> theta, const Dataset& data,
                      const Calibration& calib,
                      const NoisyEvalOptions& options = {});

/// Ideal-simulator accuracy of the logical model.
double noise_free_accuracy(const QnnModel& model, std::span<const double> theta,
                           const Dataset& data);

}  // namespace qucad
