#pragma once

#include <span>

#include "common/status.hpp"
#include "data/dataset.hpp"
#include "noise/calibration.hpp"
#include "noise/noise_model.hpp"
#include "qnn/model.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {

class ThreadPool;

struct NoisyEvalOptions {
  NoiseModelOptions noise;
  int shots = 0;  // 0 = exact density-matrix expectations
  std::uint64_t shot_seed = 99;
  /// Pool used to spread samples; nullptr = the process-global pool. Lets
  /// callers (and tests) pin the evaluation to a specific worker count.
  ThreadPool* pool = nullptr;
  /// Reuse compiled executors from CompiledEvalCache::global(). Repeated
  /// evaluations of the same (structure, theta, calibration, noise)
  /// configuration — repository keep-best loops, longitudinal harness runs —
  /// then skip re-lowering and re-compiling entirely. Disable to force a
  /// fresh build (e.g. when benchmarking compilation itself).
  bool use_cache = true;
};

struct NoisyEvalResult {
  double accuracy = 0.0;
  std::vector<int> predictions;
};

/// Exact noisy evaluation of parameters on a dataset: lowers + compiles the
/// routed model at `theta` once (compression peephole active, calibrated
/// channels folded in — cached across calls), then classifies every sample
/// with the compiled density-matrix program. Parallel over samples.
///
/// Class logits are read positionally: logit k is <Z> of readout slot k,
/// i.e. model.readout_qubits[k] routed to its physical home — correct for
/// any readout set, not just {0..k-1}.
NoisyEvalResult noisy_evaluate(const QnnModel& model,
                               const TranspiledModel& transpiled,
                               std::span<const double> theta,
                               const Dataset& data, const Calibration& calib,
                               const NoisyEvalOptions& options = {});

/// Status-returning form of noisy_evaluate: malformed inputs (empty dataset,
/// missing readout qubits, theta/feature arity mismatches, a calibration
/// that does not cover the routed device) come back as Status values instead
/// of thrown PreconditionError. This is the validation boundary the serving
/// layer (src/serve/) is built on; noisy_evaluate is now a thin throwing
/// shim over it for research call sites.
StatusOr<NoisyEvalResult> noisy_evaluate_or(const QnnModel& model,
                                            const TranspiledModel& transpiled,
                                            std::span<const double> theta,
                                            const Dataset& data,
                                            const Calibration& calib,
                                            const NoisyEvalOptions& options = {});

/// Accuracy-only convenience wrapper.
double noisy_accuracy(const QnnModel& model, const TranspiledModel& transpiled,
                      std::span<const double> theta, const Dataset& data,
                      const Calibration& calib,
                      const NoisyEvalOptions& options = {});

/// Ideal-simulator accuracy of the logical model.
double noise_free_accuracy(const QnnModel& model, std::span<const double> theta,
                           const Dataset& data);

}  // namespace qucad
