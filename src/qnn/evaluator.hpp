#pragma once

#include <span>

#include "data/dataset.hpp"
#include "noise/calibration.hpp"
#include "noise/noise_model.hpp"
#include "qnn/model.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {

class ThreadPool;

struct NoisyEvalOptions {
  NoiseModelOptions noise;
  int shots = 0;  // 0 = exact density-matrix expectations
  std::uint64_t shot_seed = 99;
  /// Pool used to spread samples; nullptr = the process-global pool. Lets
  /// callers (and tests) pin the evaluation to a specific worker count.
  ThreadPool* pool = nullptr;
};

struct NoisyEvalResult {
  double accuracy = 0.0;
  std::vector<int> predictions;
};

/// Exact noisy evaluation of parameters on a dataset: lowers the routed
/// model at `theta` (compression peephole active), builds the calibration's
/// noise model, and classifies every sample with the density-matrix
/// executor. Parallel over samples.
NoisyEvalResult noisy_evaluate(const QnnModel& model,
                               const TranspiledModel& transpiled,
                               std::span<const double> theta,
                               const Dataset& data, const Calibration& calib,
                               const NoisyEvalOptions& options = {});

/// Accuracy-only convenience wrapper.
double noisy_accuracy(const QnnModel& model, const TranspiledModel& transpiled,
                      std::span<const double> theta, const Dataset& data,
                      const Calibration& calib,
                      const NoisyEvalOptions& options = {});

/// Ideal-simulator accuracy of the logical model.
double noise_free_accuracy(const QnnModel& model, std::span<const double> theta,
                           const Dataset& data);

}  // namespace qucad
