#include "qnn/gradients.hpp"

#include <array>
#include <memory>
#include <utility>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "qnn/loss.hpp"
#include "sim/adjoint.hpp"
#include "sim/statevector.hpp"

namespace qucad {

namespace {

std::vector<double> readout_logits(const std::vector<double>& z_all,
                                   const std::vector<int>& readout_qubits) {
  std::vector<double> logits;
  logits.reserve(readout_qubits.size());
  for (int q : readout_qubits) {
    logits.push_back(z_all[static_cast<std::size_t>(q)]);
  }
  return logits;
}

}  // namespace

BatchGrad batch_loss_grad(const Circuit& circuit,
                          const std::vector<int>& readout_qubits,
                          std::span<const double> theta, const Dataset& data,
                          std::span<const std::size_t> indices,
                          double logit_scale) {
  require(!indices.empty(), "empty batch");
  const std::size_t batch = indices.size();
  const std::size_t num_params = static_cast<std::size_t>(circuit.num_trainable());
  const int n = circuit.num_qubits();

  std::vector<double> losses(batch, 0.0);
  std::vector<int> correct(batch, 0);
  std::vector<std::vector<double>> grads(batch);

  parallel_for(batch, [&](std::size_t b) {
    const std::size_t row = indices[b];
    const std::vector<double>& x = data.features[row];
    const int label = data.labels[row];

    const AdjointResult result = adjoint_gradient(
        circuit, theta, x,
        [&](const std::vector<double>& z_all) {
          const std::vector<double> logits = readout_logits(z_all, readout_qubits);
          const std::vector<double> dlogits =
              cross_entropy_grad(logits, label, logit_scale);
          std::vector<double> weights(static_cast<std::size_t>(n), 0.0);
          for (std::size_t c = 0; c < readout_qubits.size(); ++c) {
            weights[static_cast<std::size_t>(readout_qubits[c])] += dlogits[c];
          }
          return weights;
        });

    const std::vector<double> logits =
        readout_logits(result.z_expectations, readout_qubits);
    losses[b] = cross_entropy(logits, label, logit_scale);
    correct[b] = static_cast<int>(argmax(logits)) == label ? 1 : 0;
    grads[b] = result.gradients;
  });

  BatchGrad out;
  out.grad.assign(num_params, 0.0);
  for (std::size_t b = 0; b < batch; ++b) {
    out.loss += losses[b];
    out.accuracy += correct[b];
    for (std::size_t p = 0; p < num_params; ++p) out.grad[p] += grads[b][p];
  }
  const double inv = 1.0 / static_cast<double>(batch);
  out.loss *= inv;
  out.accuracy *= inv;
  for (double& g : out.grad) g *= inv;
  return out;
}

BatchGrad batch_loss(const Circuit& circuit,
                     const std::vector<int>& readout_qubits,
                     std::span<const double> theta, const Dataset& data,
                     std::span<const std::size_t> indices, double logit_scale) {
  require(!indices.empty(), "empty batch");
  const std::size_t batch = indices.size();

  std::vector<double> losses(batch, 0.0);
  std::vector<int> correct(batch, 0);

  parallel_for(batch, [&](std::size_t b) {
    const std::size_t row = indices[b];
    StateVector sv(circuit.num_qubits());
    sv.run(circuit, theta, data.features[row]);
    std::vector<double> logits;
    logits.reserve(readout_qubits.size());
    for (int q : readout_qubits) logits.push_back(sv.expectation_z(q));
    losses[b] = cross_entropy(logits, data.labels[row], logit_scale);
    correct[b] = static_cast<int>(argmax(logits)) == data.labels[row] ? 1 : 0;
  });

  BatchGrad out;
  for (std::size_t b = 0; b < batch; ++b) {
    out.loss += losses[b];
    out.accuracy += correct[b];
  }
  out.loss /= static_cast<double>(batch);
  out.accuracy /= static_cast<double>(batch);
  return out;
}

BatchGrad batch_loss_grad(const PureExecutor& executor,
                          std::span<const double> theta, const Dataset& data,
                          std::span<const std::size_t> indices,
                          double logit_scale, BatchReplay replay) {
  constexpr std::size_t kLanes = BatchedStateVector::kLanes;
  require(!indices.empty(), "empty batch");
  require(executor.num_trainable() <= static_cast<int>(theta.size()),
          "theta smaller than the executor's trainable parameter space");
  const std::size_t batch = indices.size();
  const std::size_t num_params = theta.size();
  const int n = executor.circuit().num_qubits();
  const std::vector<int>& slots = executor.circuit().readout_physical();
  // Validate the selected rows up front, on the calling thread — a ragged
  // row must not fail deep inside a worker's replay.
  const std::size_t num_inputs =
      static_cast<std::size_t>(executor.program().num_inputs());
  for (const std::size_t row : indices) {
    require(data.features[row].size() >= num_inputs,
            "feature vector too short for compiled program");
  }

  std::vector<double> losses(batch, 0.0);
  std::vector<int> correct(batch, 0);
  std::vector<std::vector<double>> grads(batch);

  // Positional class logits from a per-qubit <Z> vector, plus the matching
  // per-qubit observable weights dL/d<Z_q> — shared by both replay paths.
  auto logits_of = [&](const std::vector<double>& z_all) {
    std::vector<double> logits;
    logits.reserve(slots.size());
    for (int q : slots) logits.push_back(z_all[static_cast<std::size_t>(q)]);
    return logits;
  };
  auto weights_of = [&](const std::vector<double>& logits, int label) {
    const std::vector<double> dlogits =
        cross_entropy_grad(logits, label, logit_scale);
    std::vector<double> weights(static_cast<std::size_t>(n), 0.0);
    for (std::size_t c = 0; c < slots.size(); ++c) {
      weights[static_cast<std::size_t>(slots[c])] += dlogits[c];
    }
    return weights;
  };

  const std::size_t blocks = use_lane_replay(replay) ? batch / kLanes : 0;
  const std::size_t tail_start = blocks * kLanes;
  const std::size_t tail = batch - tail_start;

  parallel_for(blocks + tail, [&](std::size_t t) {
    if (t >= blocks) {
      const std::size_t b = tail_start + (t - blocks);
      const std::size_t row = indices[b];
      const std::vector<double>& x = data.features[row];
      const int label = data.labels[row];

      // Per-worker workspace recycled across samples (and batches): the
      // compiled replays stay allocation-free.
      thread_local AdjointWorkspace workspace;

      // Filled by the weight hook (which the adjoint invokes exactly once,
      // after the forward replay) and reused for the loss below.
      std::vector<double> logits;
      const AdjointResult result = executor.adjoint(
          theta, x,
          [&](const std::vector<double>& z_all) {
            // z_all is per qubit id; logits are positional over slots.
            logits = logits_of(z_all);
            return weights_of(logits, label);
          },
          &workspace);

      losses[b] = cross_entropy(logits, label, logit_scale);
      correct[b] = static_cast<int>(argmax(logits)) == label ? 1 : 0;
      grads[b] = result.gradients;
      grads[b].resize(num_params, 0.0);
      return;
    }

    // One SoA lane block: kLanes samples share a forward replay and a
    // reverse sweep, each lane accumulating its own gradient vector.
    const std::size_t first = t * kLanes;
    std::array<const double*, kLanes> xs;
    std::array<int, kLanes> labels;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::size_t row = indices[first + l];
      xs[l] = data.features[row].data();
      labels[l] = data.labels[row];
    }
    thread_local LaneAdjointWorkspace workspace;
    std::array<std::vector<double>, kLanes> lane_logits;
    LaneAdjointResult result = executor.adjoint_lanes(
        theta, xs,
        [&](std::size_t lane, const std::vector<double>& z_all) {
          lane_logits[lane] = logits_of(z_all);
          return weights_of(lane_logits[lane], labels[lane]);
        },
        &workspace);
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::size_t b = first + l;
      losses[b] = cross_entropy(lane_logits[l], labels[l], logit_scale);
      correct[b] =
          static_cast<int>(argmax(lane_logits[l])) == labels[l] ? 1 : 0;
      grads[b] = std::move(result.gradients[l]);
      grads[b].resize(num_params, 0.0);
    }
  });

  BatchGrad out;
  out.grad.assign(num_params, 0.0);
  for (std::size_t b = 0; b < batch; ++b) {
    out.loss += losses[b];
    out.accuracy += correct[b];
    for (std::size_t p = 0; p < num_params; ++p) out.grad[p] += grads[b][p];
  }
  const double inv = 1.0 / static_cast<double>(batch);
  out.loss *= inv;
  out.accuracy *= inv;
  for (double& g : out.grad) g *= inv;
  return out;
}

BatchGrad batch_loss(const PureExecutor& executor,
                     std::span<const double> theta, const Dataset& data,
                     std::span<const std::size_t> indices, double logit_scale,
                     BatchReplay replay) {
  constexpr std::size_t kLanes = BatchedStateVector::kLanes;
  require(!indices.empty(), "empty batch");
  const std::size_t batch = indices.size();
  const std::size_t num_inputs =
      static_cast<std::size_t>(executor.program().num_inputs());
  for (const std::size_t row : indices) {
    require(data.features[row].size() >= num_inputs,
            "feature vector too short for compiled program");
  }
  const std::vector<int>& slots = executor.circuit().readout_physical();

  std::vector<double> losses(batch, 0.0);
  std::vector<int> correct(batch, 0);

  const std::size_t blocks = use_lane_replay(replay) ? batch / kLanes : 0;
  const std::size_t tail_start = blocks * kLanes;
  const std::size_t tail = batch - tail_start;

  parallel_for(blocks + tail, [&](std::size_t t) {
    auto score = [&](std::size_t b, const std::vector<double>& logits) {
      losses[b] = cross_entropy(logits, data.labels[indices[b]], logit_scale);
      correct[b] =
          static_cast<int>(argmax(logits)) == data.labels[indices[b]] ? 1 : 0;
    };
    if (t >= blocks) {
      const std::size_t b = tail_start + (t - blocks);
      score(b, executor.run_z(data.features[indices[b]], theta));
      return;
    }
    // One SoA lane block: kLanes forward replays fused into one pass.
    const std::size_t first = t * kLanes;
    std::array<const double*, kLanes> xs;
    for (std::size_t l = 0; l < kLanes; ++l) {
      xs[l] = data.features[indices[first + l]].data();
    }
    thread_local std::unique_ptr<BatchedStateVector> scratch;
    if (!scratch || scratch->num_qubits() != executor.circuit().num_qubits()) {
      scratch =
          std::make_unique<BatchedStateVector>(executor.circuit().num_qubits());
    }
    executor.run_state_lanes(*scratch, xs, theta);
    thread_local std::vector<double> zbuf;
    zbuf.resize(slots.size() * kLanes);
    scratch->readout_z(slots, zbuf.data());
    std::vector<double> logits(slots.size());
    for (std::size_t l = 0; l < kLanes; ++l) {
      for (std::size_t k = 0; k < slots.size(); ++k) {
        logits[k] = zbuf[k * kLanes + l];
      }
      score(first + l, logits);
    }
  });

  BatchGrad out;
  for (std::size_t b = 0; b < batch; ++b) {
    out.loss += losses[b];
    out.accuracy += correct[b];
  }
  out.loss /= static_cast<double>(batch);
  out.accuracy /= static_cast<double>(batch);
  return out;
}

}  // namespace qucad
