#include "qnn/gradients.hpp"

#include "common/require.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "qnn/loss.hpp"
#include "sim/adjoint.hpp"
#include "sim/statevector.hpp"

namespace qucad {

namespace {

std::vector<double> readout_logits(const std::vector<double>& z_all,
                                   const std::vector<int>& readout_qubits) {
  std::vector<double> logits;
  logits.reserve(readout_qubits.size());
  for (int q : readout_qubits) {
    logits.push_back(z_all[static_cast<std::size_t>(q)]);
  }
  return logits;
}

}  // namespace

BatchGrad batch_loss_grad(const Circuit& circuit,
                          const std::vector<int>& readout_qubits,
                          std::span<const double> theta, const Dataset& data,
                          std::span<const std::size_t> indices,
                          double logit_scale) {
  require(!indices.empty(), "empty batch");
  const std::size_t batch = indices.size();
  const std::size_t num_params = static_cast<std::size_t>(circuit.num_trainable());
  const int n = circuit.num_qubits();

  std::vector<double> losses(batch, 0.0);
  std::vector<int> correct(batch, 0);
  std::vector<std::vector<double>> grads(batch);

  parallel_for(batch, [&](std::size_t b) {
    const std::size_t row = indices[b];
    const std::vector<double>& x = data.features[row];
    const int label = data.labels[row];

    const AdjointResult result = adjoint_gradient(
        circuit, theta, x,
        [&](const std::vector<double>& z_all) {
          const std::vector<double> logits = readout_logits(z_all, readout_qubits);
          const std::vector<double> dlogits =
              cross_entropy_grad(logits, label, logit_scale);
          std::vector<double> weights(static_cast<std::size_t>(n), 0.0);
          for (std::size_t c = 0; c < readout_qubits.size(); ++c) {
            weights[static_cast<std::size_t>(readout_qubits[c])] += dlogits[c];
          }
          return weights;
        });

    const std::vector<double> logits =
        readout_logits(result.z_expectations, readout_qubits);
    losses[b] = cross_entropy(logits, label, logit_scale);
    correct[b] = static_cast<int>(argmax(logits)) == label ? 1 : 0;
    grads[b] = result.gradients;
  });

  BatchGrad out;
  out.grad.assign(num_params, 0.0);
  for (std::size_t b = 0; b < batch; ++b) {
    out.loss += losses[b];
    out.accuracy += correct[b];
    for (std::size_t p = 0; p < num_params; ++p) out.grad[p] += grads[b][p];
  }
  const double inv = 1.0 / static_cast<double>(batch);
  out.loss *= inv;
  out.accuracy *= inv;
  for (double& g : out.grad) g *= inv;
  return out;
}

BatchGrad batch_loss(const Circuit& circuit,
                     const std::vector<int>& readout_qubits,
                     std::span<const double> theta, const Dataset& data,
                     std::span<const std::size_t> indices, double logit_scale) {
  require(!indices.empty(), "empty batch");
  const std::size_t batch = indices.size();

  std::vector<double> losses(batch, 0.0);
  std::vector<int> correct(batch, 0);

  parallel_for(batch, [&](std::size_t b) {
    const std::size_t row = indices[b];
    StateVector sv(circuit.num_qubits());
    sv.run(circuit, theta, data.features[row]);
    std::vector<double> logits;
    logits.reserve(readout_qubits.size());
    for (int q : readout_qubits) logits.push_back(sv.expectation_z(q));
    losses[b] = cross_entropy(logits, data.labels[row], logit_scale);
    correct[b] = static_cast<int>(argmax(logits)) == data.labels[row] ? 1 : 0;
  });

  BatchGrad out;
  for (std::size_t b = 0; b < batch; ++b) {
    out.loss += losses[b];
    out.accuracy += correct[b];
  }
  out.loss /= static_cast<double>(batch);
  out.accuracy /= static_cast<double>(batch);
  return out;
}

BatchGrad batch_loss_grad(const PureExecutor& executor,
                          std::span<const double> theta, const Dataset& data,
                          std::span<const std::size_t> indices,
                          double logit_scale) {
  require(!indices.empty(), "empty batch");
  require(executor.num_trainable() <= static_cast<int>(theta.size()),
          "theta smaller than the executor's trainable parameter space");
  const std::size_t batch = indices.size();
  const std::size_t num_params = theta.size();
  const int n = executor.circuit().num_qubits();
  const std::vector<int>& slots = executor.circuit().readout_physical();

  std::vector<double> losses(batch, 0.0);
  std::vector<int> correct(batch, 0);
  std::vector<std::vector<double>> grads(batch);

  parallel_for(batch, [&](std::size_t b) {
    const std::size_t row = indices[b];
    const std::vector<double>& x = data.features[row];
    const int label = data.labels[row];

    // Per-worker workspace recycled across samples (and batches): the
    // compiled replays stay allocation-free.
    thread_local AdjointWorkspace workspace;

    // Filled by the weight hook (which the adjoint invokes exactly once,
    // after the forward replay) and reused for the loss below.
    std::vector<double> logits;
    const AdjointResult result = executor.adjoint(
        theta, x,
        [&](const std::vector<double>& z_all) {
          // z_all is per qubit id; logits are positional over readout slots.
          logits.reserve(slots.size());
          for (int q : slots) logits.push_back(z_all[static_cast<std::size_t>(q)]);
          const std::vector<double> dlogits =
              cross_entropy_grad(logits, label, logit_scale);
          std::vector<double> weights(static_cast<std::size_t>(n), 0.0);
          for (std::size_t c = 0; c < slots.size(); ++c) {
            weights[static_cast<std::size_t>(slots[c])] += dlogits[c];
          }
          return weights;
        },
        &workspace);

    losses[b] = cross_entropy(logits, label, logit_scale);
    correct[b] = static_cast<int>(argmax(logits)) == label ? 1 : 0;
    grads[b] = result.gradients;
    grads[b].resize(num_params, 0.0);
  });

  BatchGrad out;
  out.grad.assign(num_params, 0.0);
  for (std::size_t b = 0; b < batch; ++b) {
    out.loss += losses[b];
    out.accuracy += correct[b];
    for (std::size_t p = 0; p < num_params; ++p) out.grad[p] += grads[b][p];
  }
  const double inv = 1.0 / static_cast<double>(batch);
  out.loss *= inv;
  out.accuracy *= inv;
  for (double& g : out.grad) g *= inv;
  return out;
}

BatchGrad batch_loss(const PureExecutor& executor,
                     std::span<const double> theta, const Dataset& data,
                     std::span<const std::size_t> indices, double logit_scale) {
  require(!indices.empty(), "empty batch");
  const std::size_t batch = indices.size();

  std::vector<double> losses(batch, 0.0);
  std::vector<int> correct(batch, 0);

  parallel_for(batch, [&](std::size_t b) {
    const std::size_t row = indices[b];
    const std::vector<double> logits =
        executor.run_z(data.features[row], theta);
    losses[b] = cross_entropy(logits, data.labels[row], logit_scale);
    correct[b] = static_cast<int>(argmax(logits)) == data.labels[row] ? 1 : 0;
  });

  BatchGrad out;
  for (std::size_t b = 0; b < batch; ++b) {
    out.loss += losses[b];
    out.accuracy += correct[b];
  }
  out.loss /= static_cast<double>(batch);
  out.accuracy /= static_cast<double>(batch);
  return out;
}

}  // namespace qucad
