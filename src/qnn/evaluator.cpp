#include "qnn/evaluator.hpp"

#include "backend/registry.hpp"
#include "common/require.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "qnn/eval_cache.hpp"

namespace qucad {

StatusOr<NoisyEvalResult> noisy_evaluate_or(const QnnModel& model,
                                            const TranspiledModel& transpiled,
                                            std::span<const double> theta,
                                            const Dataset& data,
                                            const Calibration& calib,
                                            const NoisyEvalOptions& options) {
  if (data.size() == 0) return Status::invalid_argument("empty evaluation set");
  if (model.readout_qubits.empty()) {
    return Status::failed_precondition("model has no readout qubits");
  }
  if (static_cast<int>(theta.size()) != model.num_params()) {
    return Status::invalid_argument(
        "theta has " + std::to_string(theta.size()) + " parameters, model has " +
        std::to_string(model.num_params()));
  }
  const std::size_t num_inputs =
      static_cast<std::size_t>(model.num_inputs());
  for (const std::vector<double>& x : data.features) {
    if (x.size() < num_inputs) {
      return Status::invalid_argument(
          "sample has " + std::to_string(x.size()) +
          " features, the encoder reads " + std::to_string(num_inputs));
    }
  }
  if (calib.num_qubits() < transpiled.num_physical_qubits()) {
    return Status::invalid_argument(
        "calibration covers " + std::to_string(calib.num_qubits()) +
        " qubits, the routed circuit uses " +
        std::to_string(transpiled.num_physical_qubits()));
  }
  BackendContext context;
  context.model = &model;
  context.transpiled = &transpiled;
  context.theta = theta;
  context.calibration = &calib;
  context.noise = options.noise;
  context.use_cache = options.use_cache;
  context.density_shots = options.shots;
  context.density_shot_seed = options.shot_seed;
  StatusOr<std::shared_ptr<const ExecutionBackend>> backend =
      BackendRegistry::global().make(options.backend, context);
  if (!backend.ok()) return backend.status();

  const std::vector<std::vector<double>> zs =
      (*backend)->run_logits_batch(data.features, options.pool);

  NoisyEvalResult result;
  result.predictions.assign(data.size(), -1);
  std::size_t total_correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    // run_z output is ordered by readout slot: zs[i][k] is <Z> of class k
    // (model.readout_qubits[k] at its routed physical home). Indexing by
    // qubit id here would misread — or run past — the logit vector for any
    // model whose readout qubits are not {0..k-1}.
    const int pred = static_cast<int>(argmax(zs[i]));
    result.predictions[i] = pred;
    if (pred == data.labels[i]) ++total_correct;
  }
  result.accuracy =
      static_cast<double>(total_correct) / static_cast<double>(data.size());
  return result;
}

NoisyEvalResult noisy_evaluate(const QnnModel& model,
                               const TranspiledModel& transpiled,
                               std::span<const double> theta,
                               const Dataset& data, const Calibration& calib,
                               const NoisyEvalOptions& options) {
  StatusOr<NoisyEvalResult> result =
      noisy_evaluate_or(model, transpiled, theta, data, calib, options);
  // Research shim: surface validation failures the historical way (throw).
  // The message is only materialized on the failure path — this wrapper sits
  // inside keep-best and harness loops.
  if (!result.ok()) require(false, result.status().to_string());
  return std::move(result).value();
}

double noisy_accuracy(const QnnModel& model, const TranspiledModel& transpiled,
                      std::span<const double> theta, const Dataset& data,
                      const Calibration& calib, const NoisyEvalOptions& options) {
  return noisy_evaluate(model, transpiled, theta, data, calib, options).accuracy;
}

double noise_free_accuracy(const QnnModel& model, std::span<const double> theta,
                           const Dataset& data) {
  require(data.size() > 0, "empty evaluation set");
  // Replay the structure-keyed compiled statevector program per sample
  // instead of re-walking the logical gate list (predict()): the executor is
  // shared across samples, thetas, and repeated harness calls. Logits stay
  // positional — slot k is class k.
  const std::shared_ptr<const PureExecutor> executor =
      CompiledEvalCache::global().get_or_build_pure(model.circuit,
                                                    model.readout_qubits);
  // Batched replay: full sample blocks go through the SoA lane engine, the
  // ragged tail per sample (PureExecutor::run_z_batch).
  const std::vector<std::vector<double>> logits =
      executor->run_z_batch(data.features, theta);
  std::size_t total = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    total += static_cast<int>(argmax(logits[i])) == data.labels[i] ? 1 : 0;
  }
  return static_cast<double>(total) / static_cast<double>(data.size());
}

}  // namespace qucad
