#include "qnn/evaluator.hpp"

#include "common/require.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace qucad {

NoisyEvalResult noisy_evaluate(const QnnModel& model,
                               const TranspiledModel& transpiled,
                               std::span<const double> theta,
                               const Dataset& data, const Calibration& calib,
                               const NoisyEvalOptions& options) {
  require(data.size() > 0, "empty evaluation set");
  const PhysicalCircuit phys = lower_model(transpiled, theta);
  const NoiseModel nm(calib, options.noise);
  const NoisyExecutor executor(phys, nm);

  NoisyEvalResult result;
  result.predictions.assign(data.size(), -1);
  std::vector<int> correct(data.size(), 0);

  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::global();
  pool.parallel_for(data.size(), [&](std::size_t i) {
    std::vector<double> z;
    if (options.shots > 0) {
      Rng rng(options.shot_seed + i);
      z = executor.run_z_shots(data.features[i], options.shots, rng);
    } else {
      z = executor.run_z(data.features[i]);
    }
    std::vector<double> logits;
    logits.reserve(model.readout_qubits.size());
    for (int q : model.readout_qubits) {
      logits.push_back(z[static_cast<std::size_t>(q)]);
    }
    const int pred = static_cast<int>(argmax(logits));
    result.predictions[i] = pred;
    correct[i] = pred == data.labels[i] ? 1 : 0;
  });

  std::size_t total_correct = 0;
  for (int c : correct) total_correct += static_cast<std::size_t>(c);
  result.accuracy = static_cast<double>(total_correct) / static_cast<double>(data.size());
  return result;
}

double noisy_accuracy(const QnnModel& model, const TranspiledModel& transpiled,
                      std::span<const double> theta, const Dataset& data,
                      const Calibration& calib, const NoisyEvalOptions& options) {
  return noisy_evaluate(model, transpiled, theta, data, calib, options).accuracy;
}

double noise_free_accuracy(const QnnModel& model, std::span<const double> theta,
                           const Dataset& data) {
  require(data.size() > 0, "empty evaluation set");
  std::vector<int> correct(data.size(), 0);
  parallel_for(data.size(), [&](std::size_t i) {
    correct[i] = predict(model, theta, data.features[i]) == data.labels[i] ? 1 : 0;
  });
  std::size_t total = 0;
  for (int c : correct) total += static_cast<std::size_t>(c);
  return static_cast<double>(total) / static_cast<double>(data.size());
}

}  // namespace qucad
