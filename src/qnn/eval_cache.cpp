#include "qnn/eval_cache.hpp"

#include <bit>

#include "common/require.hpp"

namespace qucad {

namespace {

/// FNV-1a accumulator; two instances with distinct offsets give a 128-bit
/// content key, making accidental collisions between distinct evaluation
/// configurations negligible.
struct Fnv {
  std::uint64_t state;
  std::uint64_t prime;

  Fnv(std::uint64_t offset, std::uint64_t prime_) : state(offset), prime(prime_) {}

  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xffULL;
      state *= prime;
    }
  }
  void mix(int v) { mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
};

template <typename Mixer>
void hash_circuit_structure(Mixer& h, const Circuit& c) {
  h.mix(c.num_qubits());
  h.mix(static_cast<std::uint64_t>(c.gates().size()));
  for (const Gate& g : c.gates()) {
    h.mix(static_cast<std::uint64_t>(g.kind));
    h.mix(g.q0);
    h.mix(g.q1);
    h.mix(static_cast<std::uint64_t>(g.param.kind));
    h.mix(g.param.index);
    h.mix(g.value);
  }
}

template <typename Mixer>
void hash_noise_configuration(Mixer& h, const Calibration& calib,
                              const NoiseModelOptions& options) {
  // Calibration content.
  h.mix(calib.num_qubits());
  for (int q = 0; q < calib.num_qubits(); ++q) {
    h.mix(calib.sx_error(q));
    h.mix(calib.t1_us(q));
    h.mix(calib.t2_us(q));
    h.mix(calib.readout(q).p1_given_0);
    h.mix(calib.readout(q).p0_given_1);
  }
  h.mix(static_cast<std::uint64_t>(calib.edges().size()));
  for (const auto& [a, b] : calib.edges()) {
    h.mix(a);
    h.mix(b);
    h.mix(calib.cx_error(a, b));
  }

  // Noise-model options.
  h.mix(options.durations.sx_us);
  h.mix(options.durations.cx_us);
  h.mix(options.include_thermal_relaxation);
  h.mix(options.include_readout_error);
}

template <typename Mixer>
void hash_configuration(Mixer& h, const QnnModel& model,
                        const TranspiledModel& transpiled,
                        std::span<const double> theta,
                        const Calibration& calib,
                        const NoiseModelOptions& options) {
  h.mix(std::uint64_t{0x4e});  // key-domain tag: 'N'oisy executor

  // Readout slots (class order) — they pin the executor's z ordering.
  h.mix(static_cast<std::uint64_t>(model.readout_qubits.size()));
  for (int q : model.readout_qubits) h.mix(q);

  // Routed structure: gate list + final mapping.
  hash_circuit_structure(h, transpiled.routed.circuit);
  for (int p : transpiled.routed.final_mapping) h.mix(p);

  // Bound parameters.
  h.mix(static_cast<std::uint64_t>(theta.size()));
  for (double t : theta) h.mix(t);

  hash_noise_configuration(h, calib, options);
}

/// Physical-circuit key: the lowered op stream itself (including symbolic
/// slot references — two circuits differing only in a literal angle are
/// distinct programs) plus readout slots, calibration and noise options.
template <typename Mixer>
void hash_physical_configuration(Mixer& h, const PhysicalCircuit& circuit,
                                 const Calibration& calib,
                                 const NoiseModelOptions& options) {
  h.mix(std::uint64_t{0x48});  // key-domain tag: p'H'ysical-circuit executor
  h.mix(circuit.num_qubits());
  h.mix(static_cast<std::uint64_t>(circuit.readout_physical().size()));
  for (int q : circuit.readout_physical()) h.mix(q);
  h.mix(static_cast<std::uint64_t>(circuit.ops().size()));
  for (const PhysOp& op : circuit.ops()) {
    h.mix(static_cast<std::uint64_t>(op.kind));
    h.mix(op.q0);
    h.mix(op.q1);
    h.mix(op.angle);
    h.mix(op.input_index);
    h.mix(op.input_scale);
    h.mix(op.theta_index);
    h.mix(op.theta_scale);
  }
  hash_noise_configuration(h, calib, options);
}

/// Pure-executor key: structure + readout slots only. Theta never enters —
/// trainable angles stay symbolic through lowering, so one entry serves
/// every optimizer step (a theta update is a hit, results recomputed at
/// replay time).
template <typename Mixer>
void hash_pure_configuration(Mixer& h, const Circuit& circuit,
                             const std::vector<int>& readout_qubits) {
  h.mix(std::uint64_t{0x50});  // key-domain tag: 'P'ure executor
  h.mix(static_cast<std::uint64_t>(readout_qubits.size()));
  for (int q : readout_qubits) h.mix(q);
  hash_circuit_structure(h, circuit);
}

}  // namespace

std::shared_ptr<const NoisyExecutor> build_noisy_executor(
    const QnnModel& model, const TranspiledModel& transpiled,
    std::span<const double> theta, const Calibration& calibration,
    const NoiseModelOptions& noise_options) {
  require(!model.readout_qubits.empty(), "model has no readout qubits");
  PhysicalCircuit phys = lower_model(transpiled, theta);
  // Pin readout slots to the model's readout qubits in class order, whatever
  // the transpiled structure declared (hand-built TranspiledModels may have
  // left readout_logical empty): slot k of run_z output is class k.
  phys.readout_physical().clear();
  for (int lq : model.readout_qubits) {
    require(lq >= 0 &&
                static_cast<std::size_t>(lq) <
                    transpiled.routed.final_mapping.size(),
            "readout qubit outside the routed circuit");
    phys.readout_physical().push_back(transpiled.readout_physical(lq));
  }
  return std::make_shared<const NoisyExecutor>(
      std::move(phys), NoiseModel(calibration, noise_options));
}

std::shared_ptr<const PureExecutor> build_pure_executor(
    const Circuit& circuit, const std::vector<int>& readout_qubits) {
  require(!readout_qubits.empty(), "no readout qubits");
  // Trivial routing: the circuit already lives on its final wires (a logical
  // model circuit, or a routed circuit trained on physical qubits).
  RoutedCircuit wrapped;
  wrapped.circuit = circuit;
  wrapped.final_mapping.resize(static_cast<std::size_t>(circuit.num_qubits()));
  for (int q = 0; q < circuit.num_qubits(); ++q) {
    wrapped.final_mapping[static_cast<std::size_t>(q)] = q;
  }
  BasisOptions basis;
  basis.keep_trainable_symbolic = true;
  PhysicalCircuit phys = lower_to_basis(wrapped, {}, basis);
  phys.readout_physical().clear();
  for (int q : readout_qubits) {
    require(q >= 0 && q < circuit.num_qubits(), "readout qubit out of range");
    phys.readout_physical().push_back(q);
  }
  return std::make_shared<const PureExecutor>(std::move(phys));
}

CompiledEvalCache::CompiledEvalCache(std::size_t capacity)
    : capacity_(capacity) {
  require(capacity > 0, "cache capacity must be positive");
  stats_.capacity = capacity;
}

CompiledEvalCache& CompiledEvalCache::global() {
  static CompiledEvalCache cache;
  return cache;
}

template <typename Build>
CompiledEvalCache::Entry CompiledEvalCache::get_or_build_entry(const Key& key,
                                                              Build&& build) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to front
      ++stats_.hits;
      return it->second->second;
    }
    ++stats_.misses;
  }

  // Build outside the lock: compilation is the expensive part and distinct
  // configurations should not serialize on each other.
  Entry entry = build();

  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    // A concurrent caller built the same configuration first; share theirs.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(key, entry);
  index_.emplace(key, lru_.begin());
  evict_to_capacity_locked();
  stats_.entries = lru_.size();
  return entry;
}

std::shared_ptr<const NoisyExecutor> CompiledEvalCache::get_or_build(
    const QnnModel& model, const TranspiledModel& transpiled,
    std::span<const double> theta, const Calibration& calibration,
    const NoiseModelOptions& noise_options) {
  // Two independent 64-bit mixes (distinct offsets and odd multipliers).
  Fnv h1(0xcbf29ce484222325ULL, 0x100000001b3ULL);
  Fnv h2(0x84222325cbf29ce4ULL, 0x9e3779b97f4a7c15ULL);
  hash_configuration(h1, model, transpiled, theta, calibration, noise_options);
  hash_configuration(h2, model, transpiled, theta, calibration, noise_options);
  return get_or_build_entry(Key{h1.state, h2.state}, [&] {
           return Entry{build_noisy_executor(model, transpiled, theta,
                                             calibration, noise_options),
                        nullptr};
         })
      .noisy;
}

std::shared_ptr<const PureExecutor> CompiledEvalCache::get_or_build_pure(
    const Circuit& circuit, const std::vector<int>& readout_qubits) {
  Fnv h1(0xcbf29ce484222325ULL, 0x100000001b3ULL);
  Fnv h2(0x84222325cbf29ce4ULL, 0x9e3779b97f4a7c15ULL);
  hash_pure_configuration(h1, circuit, readout_qubits);
  hash_pure_configuration(h2, circuit, readout_qubits);
  return get_or_build_entry(Key{h1.state, h2.state}, [&] {
           return Entry{nullptr,
                        build_pure_executor(circuit, readout_qubits)};
         })
      .pure;
}

std::shared_ptr<const NoisyExecutor> CompiledEvalCache::get_or_build_physical(
    const PhysicalCircuit& circuit, const Calibration& calibration,
    const NoiseModelOptions& noise_options) {
  Fnv h1(0xcbf29ce484222325ULL, 0x100000001b3ULL);
  Fnv h2(0x84222325cbf29ce4ULL, 0x9e3779b97f4a7c15ULL);
  hash_physical_configuration(h1, circuit, calibration, noise_options);
  hash_physical_configuration(h2, circuit, calibration, noise_options);
  return get_or_build_entry(Key{h1.state, h2.state}, [&] {
           return Entry{std::make_shared<const NoisyExecutor>(
                            circuit, NoiseModel(calibration, noise_options)),
                        nullptr};
         })
      .noisy;
}

void CompiledEvalCache::evict_to_capacity_locked() {
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

EvalCacheStats CompiledEvalCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EvalCacheStats out = stats_;
  out.entries = lru_.size();
  out.capacity = capacity_;
  return out;
}

void CompiledEvalCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
  stats_ = EvalCacheStats{};
  stats_.capacity = capacity_;
}

void CompiledEvalCache::set_capacity(std::size_t capacity) {
  require(capacity > 0, "cache capacity must be positive");
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  stats_.capacity = capacity;
  evict_to_capacity_locked();
  stats_.entries = lru_.size();
}

}  // namespace qucad
