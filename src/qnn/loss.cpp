#include "qnn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace qucad {

std::vector<double> softmax(std::span<const double> logits) {
  require(!logits.empty(), "softmax on empty logits");
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> out(logits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    total += out[i];
  }
  for (double& v : out) v /= total;
  return out;
}

double cross_entropy(std::span<const double> logits, int label, double scale) {
  require(label >= 0 && static_cast<std::size_t>(label) < logits.size(),
          "label out of range");
  std::vector<double> scaled(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) scaled[i] = scale * logits[i];
  const std::vector<double> probs = softmax(scaled);
  return -std::log(std::max(probs[static_cast<std::size_t>(label)], 1e-12));
}

std::vector<double> cross_entropy_grad(std::span<const double> logits,
                                       int label, double scale) {
  require(label >= 0 && static_cast<std::size_t>(label) < logits.size(),
          "label out of range");
  std::vector<double> scaled(logits.size());
  for (std::size_t i = 0; i < logits.size(); ++i) scaled[i] = scale * logits[i];
  std::vector<double> grad = softmax(scaled);
  grad[static_cast<std::size_t>(label)] -= 1.0;
  for (double& g : grad) g *= scale;
  return grad;
}

}  // namespace qucad
