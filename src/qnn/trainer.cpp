#include "qnn/trainer.hpp"

#include <algorithm>
#include <memory>

#include "common/require.hpp"
#include "qnn/eval_cache.hpp"
#include "qnn/gradients.hpp"
#include "qnn/optimizer.hpp"

namespace qucad {

TrainResult train_circuit(const Circuit& circuit,
                          const std::vector<int>& readout_qubits,
                          std::vector<double>& theta, const Dataset& data,
                          const TrainConfig& config,
                          const BatchCircuitHook& hook) {
  require(theta.size() == static_cast<std::size_t>(circuit.num_trainable()),
          "parameter vector size mismatch");
  require(config.epochs > 0 && config.batch_size > 0, "invalid train config");
  require(config.frozen.empty() || config.frozen.size() == theta.size(),
          "freeze mask size mismatch");
  require(data.size() > 0, "empty training set");
  require(config.backend.validate().ok(), "invalid training backend config");
  // The training loop differentiates through its own compiled/reference
  // statevector engines, so only the gradient-capable built-in kind is
  // accepted — a custom registry backend cannot supply gradients to
  // batch_loss_grad regardless of what its instance capabilities claim.
  require(backend_kind_capabilities(config.backend.kind).gradients,
          "training needs a gradient-capable backend kind "
          "(kPureStatevector); density/sampled/custom regimes are "
          "evaluation-only");

  Rng rng(config.seed);
  Adam optimizer(config.lr);
  // Values frozen parameters must keep throughout training.
  std::vector<double> pinned;
  if (!config.frozen.empty()) pinned = theta;
  TrainResult result;
  result.epoch_losses.reserve(static_cast<std::size_t>(config.epochs));

  const std::size_t n = data.size();
  const std::size_t batch_size =
      std::min<std::size_t>(static_cast<std::size_t>(config.batch_size), n);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const std::vector<std::size_t> order = rng.permutation(n);
    double epoch_loss = 0.0;
    double epoch_acc = 0.0;
    std::size_t num_batches = 0;

    for (std::size_t start = 0; start < n; start += batch_size) {
      const std::size_t end = std::min(start + batch_size, n);
      const std::span<const std::size_t> indices(order.data() + start, end - start);

      BatchGrad bg;
      if (config.engine == TrainEngine::kCompiled) {
        if (hook) {
          // The hook rewrites the structure every mini-batch (fresh sampled
          // noise), so caching would only churn the LRU: compile directly.
          // One compilation still amortizes over the whole batch of
          // (forward + adjoint) replays.
          Rng hook_rng = rng.fork();
          const Circuit injected = hook(circuit, hook_rng);
          const auto executor = build_pure_executor(injected, readout_qubits);
          bg = batch_loss_grad(*executor, theta, data, indices,
                               config.logit_scale);
        } else {
          // Stable structure: the structure-keyed cache entry is shared
          // across every batch, epoch, and repeated train_circuit call —
          // theta updates are cache hits on the same compiled program.
          const auto executor = CompiledEvalCache::global().get_or_build_pure(
              circuit, readout_qubits);
          bg = batch_loss_grad(*executor, theta, data, indices,
                               config.logit_scale);
        }
      } else if (hook) {
        Rng hook_rng = rng.fork();
        const Circuit injected = hook(circuit, hook_rng);
        bg = batch_loss_grad(injected, readout_qubits, theta, data, indices,
                             config.logit_scale);
      } else {
        bg = batch_loss_grad(circuit, readout_qubits, theta, data, indices,
                             config.logit_scale);
      }

      if (config.prox_anchor != nullptr && config.prox_rho > 0.0) {
        const std::vector<double>& anchor = *config.prox_anchor;
        require(anchor.size() == theta.size(), "prox anchor size mismatch");
        for (std::size_t i = 0; i < theta.size(); ++i) {
          bg.grad[i] += config.prox_rho * (theta[i] - anchor[i]);
        }
      }
      if (!config.frozen.empty()) {
        for (std::size_t i = 0; i < theta.size(); ++i) {
          if (config.frozen[i]) bg.grad[i] = 0.0;
        }
      }

      optimizer.step(theta, bg.grad);
      // Re-pin frozen parameters exactly (Adam momentum could drift them).
      if (!config.frozen.empty()) {
        for (std::size_t i = 0; i < theta.size(); ++i) {
          if (config.frozen[i]) theta[i] = pinned[i];
        }
      }

      epoch_loss += bg.loss;
      epoch_acc += bg.accuracy;
      ++num_batches;
    }

    result.epoch_losses.push_back(epoch_loss / static_cast<double>(num_batches));
    result.final_train_accuracy = epoch_acc / static_cast<double>(num_batches);
  }
  return result;
}

TrainResult train_model(const QnnModel& model, std::vector<double>& theta,
                        const Dataset& data, const TrainConfig& config) {
  return train_circuit(model.circuit, model.readout_qubits, theta, data, config);
}

}  // namespace qucad
