#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "noise/calibration.hpp"
#include "noise/noise_model.hpp"
#include "qnn/model.hpp"
#include "transpile/executor.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {

/// Builds the noisy executor for one (model, routed structure, theta,
/// calibration, noise options) configuration: lowers the routed model at
/// theta (compression peephole active), pins the readout slots to the
/// model's readout qubits in class order, and compiles the circuit against
/// the calibration's noise model.
std::shared_ptr<const NoisyExecutor> build_noisy_executor(
    const QnnModel& model, const TranspiledModel& transpiled,
    std::span<const double> theta, const Calibration& calibration,
    const NoiseModelOptions& noise_options);

struct EvalCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

/// LRU cache of compiled noisy executors keyed by (transpiled structure,
/// theta, calibration, noise options). Repository construction and keep-best
/// loops evaluate the same configuration against many samples and revisit
/// configurations across optimization rounds; caching stops them re-lowering
/// the circuit and rebuilding the noise model on every noisy_evaluate call.
///
/// Keys are 128-bit content hashes of the inputs (structure, parameter and
/// calibration values, options), so the cache is value-based: any caller
/// presenting the same configuration shares one compiled executor. Entries
/// are handed out as shared_ptr, so eviction never invalidates a running
/// evaluation. Thread-safe.
class CompiledEvalCache {
 public:
  explicit CompiledEvalCache(std::size_t capacity = 64);

  /// Process-wide cache used by noisy_evaluate (NoisyEvalOptions::use_cache).
  static CompiledEvalCache& global();

  std::shared_ptr<const NoisyExecutor> get_or_build(
      const QnnModel& model, const TranspiledModel& transpiled,
      std::span<const double> theta, const Calibration& calibration,
      const NoiseModelOptions& noise_options);

  EvalCacheStats stats() const;
  void clear();
  /// Shrinks/extends the LRU capacity (evicting immediately if needed).
  void set_capacity(std::size_t capacity);

 private:
  struct Key {
    std::uint64_t h1 = 0;
    std::uint64_t h2 = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.h1 ^ (k.h2 * 0x9e3779b97f4a7c15ULL));
    }
  };
  using LruList = std::list<std::pair<Key, std::shared_ptr<const NoisyExecutor>>>;

  void evict_to_capacity_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  EvalCacheStats stats_;
};

}  // namespace qucad
