#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "noise/calibration.hpp"
#include "noise/noise_model.hpp"
#include "qnn/model.hpp"
#include "transpile/executor.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {

/// Builds the noisy executor for one (model, routed structure, theta,
/// calibration, noise options) configuration: lowers the routed model at
/// theta (compression peephole active), pins the readout slots to the
/// model's readout qubits in class order, and compiles the circuit against
/// the calibration's noise model.
std::shared_ptr<const NoisyExecutor> build_noisy_executor(
    const QnnModel& model, const TranspiledModel& transpiled,
    std::span<const double> theta, const Calibration& calibration,
    const NoiseModelOptions& noise_options);

/// Builds the compiled statevector engine for training/evaluating `circuit`
/// noise-free: wraps it in a trivial routing (qubit ids preserved), lowers
/// to the physical basis with BOTH input and trainable angles symbolic, pins
/// readout slot k to readout_qubits[k], and compiles the op-stream once.
/// theta is deliberately NOT an input — the same executor serves every
/// optimizer step.
std::shared_ptr<const PureExecutor> build_pure_executor(
    const Circuit& circuit, const std::vector<int>& readout_qubits);

struct EvalCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

/// LRU cache of compiled executors. It holds two kinds of entries in one
/// LRU, distinguished by their key domains:
///
///  - Noisy (density-matrix) executors, keyed by a 128-bit content hash of
///    (readout slots, routed structure, THETA, calibration values, noise
///    options). Theta is part of the key because lowering binds it — the
///    compression peephole specializes the circuit to the parameter values.
///  - Pure (statevector, training-path) executors, keyed ONLY by
///    (readout slots, circuit structure): both input and trainable angles
///    stay symbolic through lowering, so a theta update is a cache HIT on
///    the same compiled program — the whole point of the symbolic-theta
///    path. No stale results are possible: theta is supplied at replay
///    time, never baked into the entry.
///
/// Repository construction, keep-best loops and fine-tuning revisit the same
/// configurations across rounds; caching stops them re-lowering the circuit
/// (and rebuilding the noise model) on every call.
///
/// The cache also backs every ExecutionBackend uniformly: the registry's
/// backend factories (backend/registry.hpp) resolve their compiled engine
/// here — the density backend through get_or_build, the pure AND sampled
/// backends through get_or_build_pure (the sampled backend is a sampling
/// layer over the same structure-keyed compiled program) — so building a
/// backend for an already-seen configuration costs a hash lookup plus a
/// thin wrapper, never a recompilation.
///
/// Keys are value-based content hashes, so any caller presenting the same
/// configuration shares one compiled executor. Entries are handed out as
/// shared_ptr, so eviction never invalidates a running evaluation.
/// Thread-safe.
class CompiledEvalCache {
 public:
  explicit CompiledEvalCache(std::size_t capacity = 64);

  /// Process-wide cache used by the backend registry's factories
  /// (BackendContext::use_cache — which covers noisy_evaluate, the
  /// longitudinal harness and the serving layer) and by the compiled
  /// training path (TrainConfig::engine).
  static CompiledEvalCache& global();

  std::shared_ptr<const NoisyExecutor> get_or_build(
      const QnnModel& model, const TranspiledModel& transpiled,
      std::span<const double> theta, const Calibration& calibration,
      const NoiseModelOptions& noise_options);

  /// Pure-executor lookup; see build_pure_executor for what is compiled.
  /// Keyed on structure only (circuit gate list with its symbolic parameter
  /// references and literal values, plus the readout slots) — NOT on theta.
  std::shared_ptr<const PureExecutor> get_or_build_pure(
      const Circuit& circuit, const std::vector<int>& readout_qubits);

  /// Noisy-executor lookup for an already-lowered PhysicalCircuit, keyed on
  /// (op stream incl. symbolic slots, readout slots, calibration values,
  /// noise options). This is the entry point for callers that hold a
  /// physical circuit rather than a (model, transpiled, theta) triple —
  /// mitigation passes like zne_expectations, which revisit the same circuit
  /// under a sweep of scaled calibrations and would otherwise re-compile a
  /// fresh executor per scale factor per call.
  std::shared_ptr<const NoisyExecutor> get_or_build_physical(
      const PhysicalCircuit& circuit, const Calibration& calibration,
      const NoiseModelOptions& noise_options);

  EvalCacheStats stats() const;
  void clear();
  /// Shrinks/extends the LRU capacity (evicting immediately if needed).
  void set_capacity(std::size_t capacity);

 private:
  struct Key {
    std::uint64_t h1 = 0;
    std::uint64_t h2 = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(k.h1 ^ (k.h2 * 0x9e3779b97f4a7c15ULL));
    }
  };
  /// One cached executor; exactly one pointer is set, matching the key's
  /// domain (a tag byte mixed into the hash keeps the domains disjoint).
  struct Entry {
    std::shared_ptr<const NoisyExecutor> noisy;
    std::shared_ptr<const PureExecutor> pure;
  };
  using LruList = std::list<std::pair<Key, Entry>>;

  template <typename Build>
  Entry get_or_build_entry(const Key& key, Build&& build);
  void evict_to_capacity_locked();

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<Key, LruList::iterator, KeyHash> index_;
  EvalCacheStats stats_;
};

}  // namespace qucad
