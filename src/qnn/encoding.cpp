#include "qnn/encoding.hpp"

#include "common/require.hpp"

namespace qucad {

Circuit angle_encoder(int num_qubits, int num_features) {
  require(num_qubits > 0 && num_features > 0, "encoder sizes must be positive");
  Circuit circuit(num_qubits);
  for (int i = 0; i < num_features; ++i) {
    const int qubit = i % num_qubits;
    const int layer = i / num_qubits;
    const ParamRef ref = input(i);
    switch (layer % 3) {
      case 0:
        circuit.ry(qubit, ref);
        break;
      case 1:
        circuit.rz(qubit, ref);
        break;
      default:
        circuit.rx(qubit, ref);
        break;
    }
  }
  return circuit;
}

}  // namespace qucad
