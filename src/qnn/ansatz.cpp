#include "qnn/ansatz.hpp"

#include "common/require.hpp"

namespace qucad {

namespace {

enum class Layer { RY, CRY, RX, CRX, RZ, CRZ };

void append_layer(Circuit& circuit, Layer layer, int& param_counter) {
  const int n = circuit.num_qubits();
  for (int q = 0; q < n; ++q) {
    const ParamRef p = trainable(param_counter++);
    const int next = (q + 1) % n;
    switch (layer) {
      case Layer::RY:
        circuit.ry(q, p);
        break;
      case Layer::RX:
        circuit.rx(q, p);
        break;
      case Layer::RZ:
        circuit.rz(q, p);
        break;
      case Layer::CRY:
        circuit.cry(q, next, p);
        break;
      case Layer::CRX:
        circuit.crx(q, next, p);
        break;
      case Layer::CRZ:
        circuit.crz(q, next, p);
        break;
    }
  }
}

}  // namespace

void append_paper_block(Circuit& circuit, int& param_counter) {
  require(circuit.num_qubits() >= 2, "ansatz block needs at least 2 qubits");
  const Layer sequence[] = {Layer::RY, Layer::CRY, Layer::RY,
                            Layer::RX, Layer::CRX, Layer::RX,
                            Layer::RZ, Layer::CRZ, Layer::RZ, Layer::CRZ};
  for (Layer layer : sequence) append_layer(circuit, layer, param_counter);
}

Circuit build_paper_ansatz(int num_qubits, int repeats) {
  require(repeats > 0, "ansatz needs at least one block");
  Circuit circuit(num_qubits);
  int counter = 0;
  for (int r = 0; r < repeats; ++r) append_paper_block(circuit, counter);
  return circuit;
}

int paper_ansatz_params(int num_qubits, int repeats) {
  return 10 * num_qubits * repeats;
}

}  // namespace qucad
