#pragma once

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "noise/calibration.hpp"

namespace qucad {

struct InjectionOptions {
  /// Multiplier on calibrated error rates (1.0 = calibrated strength).
  double scale = 1.0;
};

/// Noise-aware-training noise injection [12]: returns a copy of the routed
/// circuit with stochastic Pauli errors inserted after gates. Each gate
/// draws an error with probability proportional to its physical location's
/// calibrated error rate (scaled by the pulse count of its decomposition:
/// 2 CX for controlled rotations, 3 for SWAP, ~2 pulses for generic 1q
/// rotations, 0 for virtual RZ). Inserted Paulis are fixed gates, so the
/// injected circuit remains differentiable by the adjoint engine.
Circuit inject_pauli_noise(const Circuit& routed, const Calibration& calibration,
                           Rng& rng, const InjectionOptions& options = {});

}  // namespace qucad
