#pragma once

#include <memory>
#include <vector>

namespace qucad {

/// First-order parameter optimizer.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// In-place update of params given the loss gradient.
  virtual void step(std::vector<double>& params,
                    const std::vector<double>& grad) = 0;

  /// Clears any internal state (moments, step counters).
  virtual void reset() = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  void step(std::vector<double>& params, const std::vector<double>& grad) override;
  void reset() override;

 private:
  double lr_;
  double momentum_;
  std::vector<double> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(std::vector<double>& params, const std::vector<double>& grad) override;
  void reset() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  long step_count_ = 0;
  std::vector<double> m_, v_;
};

}  // namespace qucad
