#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "noise/calibration.hpp"
#include "qnn/model.hpp"
#include "qnn/trainer.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {

struct NoiseAwareTrainOptions {
  int epochs = 8;
  int batch_size = 32;
  double lr = 0.02;
  double logit_scale = 5.0;
  double injection_scale = 0.3;  // tempered injection; see AdmmOptions
  std::uint64_t seed = 777;
  /// Optional per-parameter freeze mask (1 = pinned); used by compression
  /// fine-tuning to keep snapped parameters at their levels.
  std::vector<std::uint8_t> frozen;
  /// Gradient engine (see TrainEngine). Fine-tuning is the framework's hot
  /// loop — every fresh calibration retrains the compressed model — so it
  /// defaults to the compiled statevector path.
  TrainEngine engine = TrainEngine::kCompiled;
};

/// Noise-aware training via noise injection [12]: trains parameters on the
/// routed circuit, re-sampling calibrated Pauli errors into the circuit
/// every mini-batch, so gradients see the device's current noise. With a
/// freeze mask this is the fine-tuning stage of the compression pipeline.
TrainResult noise_aware_train(const QnnModel& model,
                              const TranspiledModel& transpiled,
                              std::vector<double>& theta, const Dataset& data,
                              const Calibration& calibration,
                              const NoiseAwareTrainOptions& options = {});

}  // namespace qucad
