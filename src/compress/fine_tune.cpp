#include "compress/fine_tune.hpp"

#include "common/require.hpp"
#include "qnn/noise_injection.hpp"

namespace qucad {

TrainResult noise_aware_train(const QnnModel& model,
                              const TranspiledModel& transpiled,
                              std::vector<double>& theta, const Dataset& data,
                              const Calibration& calibration,
                              const NoiseAwareTrainOptions& options) {
  std::vector<int> readout_physical;
  readout_physical.reserve(model.readout_qubits.size());
  for (int lq : model.readout_qubits) {
    readout_physical.push_back(transpiled.readout_physical(lq));
  }

  TrainConfig config;
  config.epochs = options.epochs;
  config.batch_size = options.batch_size;
  config.lr = options.lr;
  config.logit_scale = options.logit_scale;
  config.seed = options.seed;
  config.frozen = options.frozen;
  config.engine = options.engine;

  const InjectionOptions inject{options.injection_scale};
  const BatchCircuitHook hook = [&calibration, inject](const Circuit& base,
                                                       Rng& rng) {
    return inject_pauli_noise(base, calibration, rng, inject);
  };

  return train_circuit(transpiled.routed.circuit, readout_physical, theta, data,
                       config, hook);
}

}  // namespace qucad
