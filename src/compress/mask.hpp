#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/compression_table.hpp"
#include "noise/calibration.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {

/// How the compression mask threshold is chosen.
struct MaskPolicy {
  enum class Kind {
    Threshold,    // mask gates with priority >= value
    TopFraction,  // mask the `value` fraction with highest priority
  };
  Kind kind = Kind::TopFraction;
  double value = 0.2;
};

/// Whether gate noise enters the priority (Sec. III-B / Fig. 6).
enum class CompressionMode {
  NoiseAware,     // p_i = C(A(g_i)) / d_i        (the paper's QuCAD)
  NoiseAgnostic,  // p_i = 1 / d_i                 (prior work [23])
};

/// Per-parameter compression decision tables of Fig. 6.
struct MaskInfo {
  std::vector<double> target_level;  // T_admm: nearest level per parameter
  std::vector<double> distance;      // D: distance to that level
  std::vector<double> priority;      // P: priority to be pruned
  std::vector<std::uint8_t> mask;    // 1 = compress this parameter
  std::vector<std::uint8_t> controlled;  // 1 = two-qubit (CR) parameter
  double threshold_used = 0.0;

  std::size_t masked_count() const;
};

/// Gate-aware level lookup. Controlled rotations only shorten the physical
/// circuit at multiples of 2*pi (CR(0) vanishes, CR(2*pi) is a virtual Z on
/// the control — both drop 2 CX), so they snap to {0 mod 2*pi} regardless
/// of the single-qubit table; single-qubit rotations use `table`, whose
/// default levels each save one or two pulses.
CompressionTable::Nearest nearest_compression_level(
    double value, bool is_controlled, const CompressionTable& table);

/// Builds T_admm, D, P and the mask for the current parameters. The noise
/// of each gate is looked up through its physical association A(g) in the
/// calibration (CX error for controlled rotations, SX error for 1-qubit
/// rotations).
MaskInfo build_mask(std::span<const double> theta, const CompressionTable& table,
                    const std::vector<GateAssociation>& associations,
                    const Calibration& calibration, CompressionMode mode,
                    const MaskPolicy& policy);

}  // namespace qucad
