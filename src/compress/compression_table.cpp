#include "compress/compression_table.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace qucad {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kTwoPi = 2.0 * kPi;

double wrap(double angle) {
  const double w = std::fmod(angle, kTwoPi);
  return w < 0.0 ? w + kTwoPi : w;
}
}  // namespace

CompressionTable::CompressionTable()
    : CompressionTable({0.0, kPi / 2.0, kPi, 3.0 * kPi / 2.0}) {}

CompressionTable::CompressionTable(std::vector<double> levels)
    : levels_(std::move(levels)) {
  require(!levels_.empty(), "compression table must have at least one level");
  for (double& level : levels_) level = wrap(level);
}

CompressionTable::Nearest CompressionTable::nearest(double theta) const {
  Nearest best;
  best.distance = std::numeric_limits<double>::infinity();
  const double t = wrap(theta);
  for (double level : levels_) {
    // Circular distance and the signed offset to the level's nearest
    // representative.
    double delta = level - t;
    if (delta > kPi) delta -= kTwoPi;
    if (delta < -kPi) delta += kTwoPi;
    const double dist = std::abs(delta);
    if (dist < best.distance) {
      best.distance = dist;
      best.level = theta + delta;  // stay on theta's branch
    }
  }
  return best;
}

}  // namespace qucad
