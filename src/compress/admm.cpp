#include "compress/admm.hpp"

#include "common/require.hpp"
#include "compress/fine_tune.hpp"
#include "qnn/evaluator.hpp"

namespace qucad {

CompressedModel admm_compress(const QnnModel& model,
                              const TranspiledModel& transpiled,
                              std::vector<double> theta_init,
                              const Dataset& train_data,
                              const Calibration& calibration,
                              const AdmmOptions& options) {
  const std::vector<double> theta_original = theta_init;
  const std::size_t n = theta_init.size();
  require(n == static_cast<std::size_t>(model.num_params()),
          "parameter vector size mismatch");
  require(transpiled.associations.size() == n,
          "transpiled model does not match parameter count");

  CompressedModel result;
  {
    const PhysicalCircuit before = lower_model(transpiled, theta_init);
    result.cx_before = before.cx_count();
    result.pulses_before = before.pulse_count();
  }

  std::vector<double> theta = std::move(theta_init);
  std::vector<double> z = theta;
  std::vector<double> u(n, 0.0);
  MaskInfo mask_info;

  for (int round = 0; round < options.iterations; ++round) {
    // Mask rebuild from the current parameters (Fig. 6, iteration r).
    mask_info = build_mask(theta, options.table, transpiled.associations,
                           calibration, options.mode, options.policy);

    // theta-update: loss + rho/2 ||theta - z + u||^2 via Adam.
    std::vector<double> anchor(n);
    for (std::size_t i = 0; i < n; ++i) anchor[i] = z[i] - u[i];
    TrainConfig config;
    config.epochs = options.epochs_per_iteration;
    config.batch_size = options.batch_size;
    config.lr = options.lr;
    config.logit_scale = options.logit_scale;
    config.seed = options.seed + static_cast<std::uint64_t>(round);
    config.prox_anchor = &anchor;
    config.prox_rho = options.rho;
    train_circuit(model.circuit, model.readout_qubits, theta, train_data,
                  config);

    // z-update: projection onto the indicator set s_i (Eq. 4).
    for (std::size_t i = 0; i < n; ++i) {
      const double v = theta[i] + u[i];
      z[i] = mask_info.mask[i]
                 ? nearest_compression_level(v, mask_info.controlled[i] != 0,
                                             options.table)
                       .level
                 : v;
    }

    // Dual ascent.
    for (std::size_t i = 0; i < n; ++i) u[i] += theta[i] - z[i];
  }

  // Final mask from the converged parameters; hard-snap masked gates.
  mask_info = build_mask(theta, options.table, transpiled.associations,
                         calibration, options.mode, options.policy);
  for (std::size_t i = 0; i < n; ++i) {
    if (mask_info.mask[i]) {
      theta[i] = nearest_compression_level(
                     theta[i], mask_info.controlled[i] != 0, options.table)
                     .level;
    }
  }

  // Noise-injected fine-tuning with compressed parameters frozen.
  if (options.finetune_epochs > 0) {
    NoiseAwareTrainOptions ft;
    ft.epochs = options.finetune_epochs;
    ft.batch_size = options.batch_size;
    ft.lr = options.finetune_lr;
    ft.logit_scale = options.logit_scale;
    ft.injection_scale = options.injection_scale;
    ft.seed = options.seed ^ 0x9e3779b97f4a7c15ULL;
    ft.frozen = mask_info.mask;
    noise_aware_train(model, transpiled, theta, train_data, calibration, ft);
  }

  result.theta = std::move(theta);
  result.frozen = mask_info.mask;

  if (options.keep_best && options.validation_samples > 0) {
    // Score both candidates under the target calibration; ties favor the
    // compressed model (shorter circuit).
    const std::size_t n_val =
        std::min(options.validation_samples, train_data.size());
    std::vector<std::size_t> tail(n_val);
    for (std::size_t i = 0; i < n_val; ++i) {
      tail[i] = train_data.size() - n_val + i;
    }
    const Dataset validation = train_data.subset(tail);
    const double acc_compressed = noisy_accuracy(
        model, transpiled, result.theta, validation, calibration);
    const double acc_original = noisy_accuracy(
        model, transpiled, theta_original, validation, calibration);
    if (acc_original > acc_compressed) {
      result.theta = theta_original;
      result.frozen.assign(n, 0);
      result.kept_original = true;
    }
  }

  {
    const PhysicalCircuit after = lower_model(transpiled, result.theta);
    result.cx_after = after.cx_count();
    result.pulses_after = after.pulse_count();
  }
  return result;
}

}  // namespace qucad
