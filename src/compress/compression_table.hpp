#pragma once

#include <vector>

namespace qucad {

/// The table T of compression levels (the paper's "breakpoints"): rotation
/// angles whose physical decomposition is shorter than the generic one.
/// Defaults to {0, pi/2, pi, 3pi/2}; distances are measured on the circle
/// (period 2*pi), and nearest_level returns the representative on theta's
/// own branch so snapping moves the parameter by at most `distance`.
class CompressionTable {
 public:
  CompressionTable();  // the paper's default levels
  explicit CompressionTable(std::vector<double> levels);

  const std::vector<double>& levels() const { return levels_; }

  struct Nearest {
    double level = 0.0;    // snapped angle, on theta's branch
    double distance = 0.0; // circular distance |theta - level|
  };

  /// Nearest compression level to theta (T_admm_i and d_i of Fig. 6).
  Nearest nearest(double theta) const;

 private:
  std::vector<double> levels_;  // normalized to [0, 2*pi)
};

}  // namespace qucad
