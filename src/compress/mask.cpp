#include "compress/mask.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/require.hpp"

namespace qucad {

std::size_t MaskInfo::masked_count() const {
  return static_cast<std::size_t>(std::count(mask.begin(), mask.end(), 1));
}

CompressionTable::Nearest nearest_compression_level(
    double value, bool is_controlled, const CompressionTable& table) {
  if (is_controlled) {
    static const CompressionTable controlled_table(std::vector<double>{0.0});
    return controlled_table.nearest(value);
  }
  return table.nearest(value);
}

MaskInfo build_mask(std::span<const double> theta, const CompressionTable& table,
                    const std::vector<GateAssociation>& associations,
                    const Calibration& calibration, CompressionMode mode,
                    const MaskPolicy& policy) {
  require(theta.size() == associations.size(),
          "one association per trainable parameter required");
  const std::size_t n = theta.size();

  MaskInfo info;
  info.target_level.resize(n);
  info.distance.resize(n);
  info.priority.resize(n);
  info.mask.assign(n, 0);
  info.controlled.assign(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const GateAssociation& assoc = associations[i];
    require(assoc.param_index == static_cast<int>(i),
            "associations must be indexed by parameter");
    info.controlled[i] = assoc.is_two_qubit() ? 1 : 0;

    const CompressionTable::Nearest nearest =
        nearest_compression_level(theta[i], assoc.is_two_qubit(), table);
    info.target_level[i] = nearest.level;
    info.distance[i] = nearest.distance;

    const double noise = mode == CompressionMode::NoiseAware
                             ? calibration.noise_of(assoc.q0, assoc.q1)
                             : 1.0;
    // Guard the division: parameters already at a level get top priority.
    info.priority[i] = noise / std::max(nearest.distance, 1e-6);
  }

  double threshold = policy.value;
  if (policy.kind == MaskPolicy::Kind::TopFraction) {
    require(policy.value >= 0.0 && policy.value <= 1.0,
            "fraction must be in [0, 1]");
    const std::size_t keep =
        static_cast<std::size_t>(std::round(policy.value * static_cast<double>(n)));
    if (keep == 0) {
      info.threshold_used = std::numeric_limits<double>::infinity();
      return info;
    }
    std::vector<double> sorted = info.priority;
    std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                     sorted.end(), std::greater<>());
    threshold = sorted[keep - 1];
  }
  info.threshold_used = threshold;

  for (std::size_t i = 0; i < n; ++i) {
    if (info.priority[i] >= threshold) info.mask[i] = 1;
  }
  return info;
}

}  // namespace qucad
