#pragma once

#include <cstdint>

#include "compress/mask.hpp"
#include "data/dataset.hpp"
#include "qnn/model.hpp"
#include "transpile/transpiler.hpp"

namespace qucad {

struct AdmmOptions {
  int iterations = 4;            // ADMM rounds
  int epochs_per_iteration = 2;  // Adam epochs for the theta subproblem
  int batch_size = 32;
  double lr = 0.03;
  double rho = 1.0;            // augmented-Lagrangian weight
  double logit_scale = 5.0;
  // The paper's pre-set priority threshold: with p_i = noise/d_i a fixed
  // threshold masks few gates on quiet days and many on noisy ones, so the
  // compression strength adapts to the calibration by construction.
  // Noise-agnostic baselines should switch to a TopFraction budget.
  MaskPolicy policy{MaskPolicy::Kind::Threshold, 0.02};
  CompressionMode mode = CompressionMode::NoiseAware;
  CompressionTable table;      // paper default {0, pi/2, pi, 3pi/2}
  std::uint64_t seed = 4242;

  // Post-ADMM noise-injected fine-tuning of the unmasked parameters.
  // Injection is scaled below the calibrated rates: full-strength Pauli
  // sampling makes mini-batch gradients too noisy to recover accuracy
  // (QuantumNAT similarly tempers injected noise during training).
  int finetune_epochs = 18;
  double finetune_lr = 0.02;
  double injection_scale = 0.3;

  // Model selection guard: after fine-tuning, score the compressed and the
  // original parameters on a held-out training slice under the *target*
  // calibration (exact noisy evaluation) and keep the better one. On quiet
  // days, where shortening the circuit buys less than the lost
  // expressivity, this makes compression a no-op instead of a regression.
  bool keep_best = true;
  std::size_t validation_samples = 48;
};

/// Result of noise-aware compression: snapped parameters, the frozen mask
/// (1 = parameter pinned at a compression level), and the physical cost
/// before/after.
struct CompressedModel {
  std::vector<double> theta;
  std::vector<std::uint8_t> frozen;
  bool kept_original = false;  // keep_best selected the uncompressed model
  std::size_t cx_before = 0, cx_after = 0;
  std::size_t pulses_before = 0, pulses_after = 0;

  double cx_reduction() const {
    return cx_before == 0 ? 0.0
                          : 1.0 - static_cast<double>(cx_after) /
                                      static_cast<double>(cx_before);
  }
};

/// The paper's noise-aware ADMM compression (Sec. III-B):
/// minimizes f(W_p(theta)) + N(Z) + sum_i s_i(z_i) by alternating
///   theta-update: Adam on the training loss + rho/2 ||theta - z + u||^2
///   z-update:     z_i = T_admm_i for masked gates, pass-through otherwise
///   dual ascent:  u += theta - z
/// with the mask rebuilt every round from the current parameters, the
/// compression table and the calibrated gate noise (Fig. 6). Finishes by
/// hard-snapping masked parameters and noise-injection fine-tuning of the
/// remaining ones on the routed circuit.
CompressedModel admm_compress(const QnnModel& model,
                              const TranspiledModel& transpiled,
                              std::vector<double> theta_init,
                              const Dataset& train_data,
                              const Calibration& calibration,
                              const AdmmOptions& options = {});

}  // namespace qucad
