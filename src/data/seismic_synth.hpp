#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace qucad {

/// Synthetic earthquake-detection dataset replacing the paper's FDSN pull:
/// binary classification of 256-sample seismograms (background microseism
/// noise vs. noise + a P-wave arrival modeled as a decaying band-limited
/// burst). Four classic detection features are extracted per trace:
///   0: max STA/LTA ratio (short 8 / long 64 windows)
///   1: log10 signal energy
///   2: zero-crossing rate
///   3: excess kurtosis (impulsiveness)
Dataset make_seismic(std::size_t samples = 1500, std::uint64_t seed = 11,
                     double snr_db = 9.0);

/// Raw waveform synthesis (exposed for the example application).
std::vector<double> synth_waveform(bool has_event, Rng& rng, double snr_db);

/// Feature extraction used by make_seismic (exposed for tests/examples).
std::vector<double> seismic_features(const std::vector<double>& waveform);

}  // namespace qucad
