#include "data/seismic_synth.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace qucad {

namespace {

constexpr std::size_t kTraceLength = 256;
constexpr std::size_t kStaWindow = 8;
constexpr std::size_t kLtaWindow = 64;

}  // namespace

std::vector<double> synth_waveform(bool has_event, Rng& rng, double snr_db) {
  std::vector<double> trace(kTraceLength);

  // Background: white noise + a slow microseism swell.
  const double swell_freq = rng.uniform(0.01, 0.03);
  const double swell_amp = rng.uniform(0.1, 0.3);
  const double swell_phase = rng.uniform(0.0, 6.28318);
  for (std::size_t t = 0; t < kTraceLength; ++t) {
    trace[t] = rng.normal(0.0, 1.0) +
               swell_amp * std::sin(swell_freq * static_cast<double>(t) + swell_phase);
  }

  if (has_event) {
    // P-wave arrival: exponentially decaying band-limited burst.
    const double amplitude = std::pow(10.0, snr_db / 20.0) * rng.uniform(0.8, 1.4);
    const std::size_t onset =
        kLtaWindow + rng.index(kTraceLength - kLtaWindow - 64);
    const double freq = rng.uniform(0.35, 0.8);
    const double decay = rng.uniform(0.02, 0.06);
    for (std::size_t t = onset; t < kTraceLength; ++t) {
      const double dt = static_cast<double>(t - onset);
      trace[t] += amplitude * std::exp(-decay * dt) *
                  std::sin(freq * dt) * rng.uniform(0.85, 1.15);
    }
  }
  return trace;
}

std::vector<double> seismic_features(const std::vector<double>& waveform) {
  require(waveform.size() >= kLtaWindow + kStaWindow,
          "waveform too short for STA/LTA");
  const std::size_t n = waveform.size();

  // Energy series for STA/LTA.
  std::vector<double> energy(n);
  for (std::size_t t = 0; t < n; ++t) energy[t] = waveform[t] * waveform[t];
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t t = 0; t < n; ++t) prefix[t + 1] = prefix[t] + energy[t];

  auto window_mean = [&](std::size_t end, std::size_t len) {
    const std::size_t begin = end - len;
    return (prefix[end] - prefix[begin]) / static_cast<double>(len);
  };

  double max_ratio = 0.0;
  for (std::size_t t = kLtaWindow + kStaWindow; t <= n; ++t) {
    const double sta = window_mean(t, kStaWindow);
    const double lta = window_mean(t - kStaWindow, kLtaWindow);
    if (lta > 1e-12) max_ratio = std::max(max_ratio, sta / lta);
  }

  const double total_energy = prefix[n];
  const double log_energy = std::log10(total_energy + 1e-12);

  std::size_t crossings = 0;
  for (std::size_t t = 1; t < n; ++t) {
    if ((waveform[t - 1] < 0.0) != (waveform[t] < 0.0)) ++crossings;
  }
  const double zcr = static_cast<double>(crossings) / static_cast<double>(n - 1);

  // Excess kurtosis.
  double mean_v = 0.0;
  for (double v : waveform) mean_v += v;
  mean_v /= static_cast<double>(n);
  double m2 = 0.0;
  double m4 = 0.0;
  for (double v : waveform) {
    const double d = v - mean_v;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  const double kurtosis = m2 > 1e-12 ? m4 / (m2 * m2) - 3.0 : 0.0;

  return {max_ratio, log_energy, zcr, kurtosis};
}

Dataset make_seismic(std::size_t samples, std::uint64_t seed, double snr_db) {
  require(samples >= 2, "need at least one sample per class");
  Rng rng(seed);
  Dataset data;
  data.name = "seismic-synth";
  data.num_classes = 2;
  data.features.reserve(samples);
  data.labels.reserve(samples);

  for (std::size_t i = 0; i < samples; ++i) {
    const bool has_event = (i % 2) == 0;
    // Vary the SNR per trace so the task has a soft decision boundary.
    const double snr = snr_db + rng.normal(0.0, 3.0);
    const std::vector<double> trace = synth_waveform(has_event, rng, snr);
    data.features.push_back(seismic_features(trace));
    data.labels.push_back(has_event ? 1 : 0);
  }
  return data;
}

}  // namespace qucad
