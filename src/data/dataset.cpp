#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"

namespace qucad {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.num_classes = num_classes;
  out.name = name;
  out.features.reserve(indices.size());
  out.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    require(i < size(), "subset index out of range");
    out.features.push_back(features[i]);
    out.labels.push_back(labels[i]);
  }
  return out;
}

Dataset Dataset::take(std::size_t count) const {
  std::vector<std::size_t> indices(std::min(count, size()));
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  return subset(indices);
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes), 0);
  for (int label : labels) {
    require(label >= 0 && label < num_classes, "label out of range");
    ++counts[static_cast<std::size_t>(label)];
  }
  return counts;
}

TrainTestSplit split_dataset(const Dataset& data, double test_fraction,
                             std::uint64_t shuffle_seed, bool shuffle) {
  require(test_fraction > 0.0 && test_fraction < 1.0,
          "test fraction must be in (0, 1)");
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (shuffle) {
    Rng rng(shuffle_seed);
    order = rng.permutation(data.size());
  }
  require(data.size() >= 2,
          "split_dataset needs at least 2 samples to give both partitions at "
          "least one (got " + std::to_string(data.size()) + ")");
  // Rounding can push a small dataset's test share to 0 or to everything
  // (e.g. 3 samples at 0.1, or 3 at 0.9); an empty partition would only
  // surface later as an "empty evaluation set" error far from the cause.
  // Clamp so both partitions are always non-empty.
  const std::size_t test_count = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::round(test_fraction * static_cast<double>(data.size()))),
      1, data.size() - 1);
  const std::size_t train_count = data.size() - test_count;
  TrainTestSplit split;
  split.train = data.subset({order.begin(), order.begin() + static_cast<std::ptrdiff_t>(train_count)});
  split.test = data.subset({order.begin() + static_cast<std::ptrdiff_t>(train_count), order.end()});
  return split;
}

FeatureScaler FeatureScaler::fit(const Dataset& data, double lo, double hi) {
  require(!data.features.empty(), "cannot fit scaler on empty dataset");
  require(hi > lo, "scaler range must be positive");
  const std::size_t d = data.num_features();
  FeatureScaler scaler;
  scaler.lo_ = lo;
  scaler.hi_ = hi;
  scaler.min_.assign(d, std::numeric_limits<double>::infinity());
  std::vector<double> maxv(d, -std::numeric_limits<double>::infinity());
  for (const auto& row : data.features) {
    require(row.size() == d, "ragged feature matrix");
    for (std::size_t j = 0; j < d; ++j) {
      scaler.min_[j] = std::min(scaler.min_[j], row[j]);
      maxv[j] = std::max(maxv[j], row[j]);
    }
  }
  scaler.range_.resize(d);
  for (std::size_t j = 0; j < d; ++j) {
    const double r = maxv[j] - scaler.min_[j];
    scaler.range_[j] = r > 1e-12 ? r : 1.0;
  }
  return scaler;
}

Dataset FeatureScaler::transform(const Dataset& data) const {
  Dataset out = data;
  for (auto& row : out.features) {
    require(row.size() == min_.size(), "feature dimension mismatch");
    for (std::size_t j = 0; j < row.size(); ++j) {
      double unit = (row[j] - min_[j]) / range_[j];
      unit = std::clamp(unit, 0.0, 1.0);
      row[j] = lo_ + unit * (hi_ - lo_);
    }
  }
  return out;
}

double accuracy_score(const std::vector<int>& truth,
                      const std::vector<int>& predicted) {
  require(truth.size() == predicted.size() && !truth.empty(),
          "accuracy requires equal-length non-empty inputs");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace qucad
