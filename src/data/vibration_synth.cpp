#include "data/vibration_synth.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace qucad {

namespace {

constexpr std::size_t kTraceLength = 256;
constexpr double kTwoPi = 6.28318530717958647692;

/// Goertzel magnitude of `waveform` at normalized frequency `freq`
/// (cycles per sample).
double goertzel_magnitude(const std::vector<double>& waveform, double freq) {
  const double omega = kTwoPi * freq;
  const double coeff = 2.0 * std::cos(omega);
  double s0 = 0.0;
  double s1 = 0.0;
  double s2 = 0.0;
  for (double v : waveform) {
    s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  return std::sqrt(std::max(0.0, s1 * s1 + s2 * s2 - coeff * s1 * s2));
}

}  // namespace

std::vector<double> vibration_waveform(int klass, Rng& rng, double snr_db) {
  require(klass >= 0 && klass < 4, "vibration class must be in [0, 4)");
  std::vector<double> trace(kTraceLength);

  // Shared machine state: rotation fundamental (jittered per trace) and
  // broadband sensor noise.
  const double f0 = rng.uniform(0.035, 0.055);  // cycles/sample
  const double phase = rng.uniform(0.0, kTwoPi);
  const double signal = std::pow(10.0, snr_db / 20.0);
  for (std::size_t t = 0; t < kTraceLength; ++t) {
    trace[t] = rng.normal(0.0, 1.0);
  }

  // Every machine carries some 1x tone; the classes differ in what rides on
  // top of it.
  double amp_1x = 0.25 * signal * rng.uniform(0.8, 1.2);
  double amp_2x = 0.1 * amp_1x;
  if (klass == 1) amp_1x = signal * rng.uniform(0.9, 1.3);           // imbalance
  if (klass == 2) amp_2x = 0.9 * signal * rng.uniform(0.9, 1.3);    // misalignment
  for (std::size_t t = 0; t < kTraceLength; ++t) {
    const double x = kTwoPi * f0 * static_cast<double>(t) + phase;
    trace[t] += amp_1x * std::sin(x) + amp_2x * std::sin(2.0 * x);
  }

  if (klass == 3) {
    // Bearing fault: impulses at the defect passing rate, each ringing at a
    // high structural resonance and decaying fast. The decay must die well
    // within one period — overlapping bursts smear into a tone and the
    // impulsiveness (kurtosis/crest) signature disappears.
    const double impact_rate = f0 * rng.uniform(0.9, 1.3);
    const double period = 1.0 / impact_rate;
    const double ring_freq = rng.uniform(0.30, 0.42);
    const double decay = rng.uniform(0.5, 0.9);
    const double amp = 2.2 * signal * rng.uniform(0.85, 1.25);
    double onset = rng.uniform(0.0, period);
    while (onset < static_cast<double>(kTraceLength)) {
      const std::size_t start = static_cast<std::size_t>(onset);
      for (std::size_t t = start; t < std::min(start + 16, kTraceLength); ++t) {
        const double dt = static_cast<double>(t) - onset;
        trace[t] += amp * std::exp(-decay * dt) * std::sin(kTwoPi * ring_freq * dt);
      }
      onset += period * rng.uniform(0.95, 1.05);
    }
  }
  return trace;
}

std::vector<double> vibration_features(const std::vector<double>& waveform) {
  require(waveform.size() >= 64, "vibration trace too short");
  const std::size_t n = waveform.size();

  double energy = 0.0;
  double peak = 0.0;
  double mean_v = 0.0;
  for (double v : waveform) {
    energy += v * v;
    peak = std::max(peak, std::abs(v));
    mean_v += v;
  }
  mean_v /= static_cast<double>(n);
  const double rms = std::sqrt(energy / static_cast<double>(n));
  const double log_energy = std::log10(energy + 1e-12);
  const double crest = rms > 1e-12 ? peak / rms : 0.0;

  // The rotation fundamental is jittered per trace, so scan the plausible
  // band for the strongest 1x line and read the 2x magnitude at its double.
  double best_1x = 0.0;
  double best_f = 0.045;
  for (double f = 0.030; f <= 0.060; f += 0.002) {
    const double mag = goertzel_magnitude(waveform, f);
    if (mag > best_1x) {
      best_1x = mag;
      best_f = f;
    }
  }
  const double mag_2x = goertzel_magnitude(waveform, 2.0 * best_f);
  const double harmonic_ratio = best_1x > 1e-9 ? mag_2x / best_1x : 0.0;

  double m2 = 0.0;
  double m4 = 0.0;
  for (double v : waveform) {
    const double d = v - mean_v;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= static_cast<double>(n);
  m4 /= static_cast<double>(n);
  const double kurtosis = m2 > 1e-12 ? m4 / (m2 * m2) - 3.0 : 0.0;

  return {log_energy, harmonic_ratio, kurtosis, crest};
}

Dataset make_vibration(std::size_t samples, std::uint64_t seed, double snr_db) {
  require(samples >= 4, "need at least one sample per class");
  Rng rng(seed);
  Dataset data;
  data.name = "vibration-synth";
  data.num_classes = 4;
  data.features.reserve(samples);
  data.labels.reserve(samples);

  for (std::size_t i = 0; i < samples; ++i) {
    const int klass = static_cast<int>(i % 4);
    // Per-trace SNR jitter keeps the class boundaries soft.
    const double snr = snr_db + rng.normal(0.0, 2.5);
    const std::vector<double> trace = vibration_waveform(klass, rng, snr);
    data.features.push_back(vibration_features(trace));
    data.labels.push_back(klass);
  }
  return data;
}

}  // namespace qucad
