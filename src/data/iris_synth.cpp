#include "data/iris_synth.hpp"

#include <array>

#include "common/require.hpp"

namespace qucad {

namespace {

struct ClassStats {
  std::array<double, 4> mean;
  std::array<double, 4> stddev;
};

// Published per-class statistics of Fisher's iris data.
constexpr std::array<ClassStats, 3> kClasses = {{
    {{5.01, 3.43, 1.46, 0.25}, {0.35, 0.38, 0.17, 0.11}},  // setosa
    {{5.94, 2.77, 4.26, 1.33}, {0.52, 0.31, 0.47, 0.20}},  // versicolor
    {{6.59, 2.97, 5.55, 2.03}, {0.64, 0.32, 0.55, 0.27}},  // virginica
}};

}  // namespace

Dataset make_iris(std::size_t samples, std::uint64_t seed) {
  require(samples >= 3, "need at least one sample per class");
  Rng rng(seed);
  Dataset data;
  data.name = "iris-synth";
  data.num_classes = 3;
  data.features.reserve(samples);
  data.labels.reserve(samples);

  for (std::size_t i = 0; i < samples; ++i) {
    const int label = static_cast<int>(i % 3);
    const ClassStats& stats = kClasses[static_cast<std::size_t>(label)];
    std::vector<double> row(4);
    for (std::size_t j = 0; j < 4; ++j) {
      row[j] = rng.normal(stats.mean[j], stats.stddev[j]);
      if (row[j] < 0.0) row[j] = 0.0;
    }
    data.features.push_back(std::move(row));
    data.labels.push_back(label);
  }
  return data;
}

}  // namespace qucad
