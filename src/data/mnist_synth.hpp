#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace qucad {

/// Synthetic stand-in for the paper's 4-class MNIST task (digits 0,1,3,6
/// downsampled to 4x4). Each sample is a 4x4 grayscale image (16 features
/// in [0,1], row-major) generated from a digit prototype with pixel noise,
/// brightness jitter and occasional 1-pixel translation — hard enough that
/// a 4-qubit QNN lands in the paper's accuracy range rather than at 100%.
Dataset make_mnist4(std::size_t samples, std::uint64_t seed,
                    double pixel_noise = 0.22);

}  // namespace qucad
