#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace qucad {

/// Gaussian resynthesis of the Iris dataset: three classes drawn from the
/// classic per-class means/standard deviations (sepal length/width, petal
/// length/width). Setosa stays linearly separable; versicolor/virginica
/// overlap, matching the difficulty profile of the original data.
Dataset make_iris(std::size_t samples = 150, std::uint64_t seed = 7);

}  // namespace qucad
