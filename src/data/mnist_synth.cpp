#include "data/mnist_synth.hpp"

#include <algorithm>
#include <array>

#include "common/require.hpp"

namespace qucad {

namespace {

// 4x4 prototypes for digits 0, 1, 3, 6 (row-major, 0 = background).
constexpr std::array<std::array<double, 16>, 4> kPrototypes = {{
    // 0: ring
    {0.0, 0.9, 0.9, 0.0,
     0.9, 0.1, 0.1, 0.9,
     0.9, 0.1, 0.1, 0.9,
     0.0, 0.9, 0.9, 0.0},
    // 1: vertical bar
    {0.0, 0.2, 0.9, 0.0,
     0.0, 0.8, 0.9, 0.0,
     0.0, 0.1, 0.9, 0.0,
     0.0, 0.6, 0.9, 0.6},
    // 3: double bump, open left
    {0.8, 0.9, 0.8, 0.2,
     0.0, 0.2, 0.9, 0.3,
     0.0, 0.3, 0.9, 0.3,
     0.8, 0.9, 0.8, 0.2},
    // 6: loop bottom-heavy, stem top-left
    {0.1, 0.8, 0.2, 0.0,
     0.8, 0.2, 0.0, 0.0,
     0.9, 0.8, 0.9, 0.2,
     0.7, 0.9, 0.8, 0.1},
}};

std::array<double, 16> shift_image(const std::array<double, 16>& img, int dx,
                                   int dy) {
  std::array<double, 16> out{};
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      const int sr = r - dy;
      const int sc = c - dx;
      if (sr >= 0 && sr < 4 && sc >= 0 && sc < 4) {
        out[static_cast<std::size_t>(r * 4 + c)] =
            img[static_cast<std::size_t>(sr * 4 + sc)];
      }
    }
  }
  return out;
}

}  // namespace

Dataset make_mnist4(std::size_t samples, std::uint64_t seed, double pixel_noise) {
  require(samples > 0, "sample count must be positive");
  Rng rng(seed);
  Dataset data;
  data.name = "mnist4-synmeans";
  data.num_classes = 4;
  data.features.reserve(samples);
  data.labels.reserve(samples);

  for (std::size_t i = 0; i < samples; ++i) {
    const int label = static_cast<int>(i % 4);  // balanced classes
    std::array<double, 16> img = kPrototypes[static_cast<std::size_t>(label)];

    // Occasional 1-pixel translation (25% of samples).
    if (rng.bernoulli(0.25)) {
      const int dx = rng.integer(-1, 1);
      const int dy = rng.integer(-1, 1);
      img = shift_image(img, dx, dy);
    }

    const double brightness = rng.uniform(0.75, 1.2);
    std::vector<double> row(16);
    for (std::size_t p = 0; p < 16; ++p) {
      const double value =
          img[p] * brightness + rng.normal(0.0, pixel_noise);
      row[p] = std::clamp(value, 0.0, 1.0);
    }
    data.features.push_back(std::move(row));
    data.labels.push_back(label);
  }
  return data;
}

}  // namespace qucad
