#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace qucad {

/// A labelled classification dataset with dense real features.
struct Dataset {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  int num_classes = 0;
  std::string name;

  std::size_t size() const { return features.size(); }
  std::size_t num_features() const {
    return features.empty() ? 0 : features.front().size();
  }

  /// Rows selected by index (copy).
  Dataset subset(const std::vector<std::size_t>& indices) const;

  /// First `count` rows.
  Dataset take(std::size_t count) const;

  /// Per-class sample counts.
  std::vector<std::size_t> class_counts() const;
};

/// Deterministic split: first (1-test_fraction) for training, rest for test
/// (matching the paper's "former 90% for training" convention). Set
/// shuffle_seed to shuffle before splitting. Both partitions are guaranteed
/// non-empty: the rounded test share is clamped to [1, size-1], and datasets
/// with fewer than 2 samples are rejected up front.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit split_dataset(const Dataset& data, double test_fraction,
                             std::uint64_t shuffle_seed = 0,
                             bool shuffle = false);

/// Min-max scaler mapping each feature dimension to [lo, hi]; fit on train,
/// applied to any set (angle encoding wants [0, pi]).
class FeatureScaler {
 public:
  static FeatureScaler fit(const Dataset& data, double lo = 0.0,
                           double hi = 3.14159265358979323846);
  Dataset transform(const Dataset& data) const;

 private:
  std::vector<double> min_;
  std::vector<double> range_;  // max - min, 1 when degenerate
  double lo_ = 0.0;
  double hi_ = 1.0;
};

/// Classification accuracy of predicted labels.
double accuracy_score(const std::vector<int>& truth,
                      const std::vector<int>& predicted);

}  // namespace qucad
