#pragma once

#include <cstdint>

#include "data/dataset.hpp"

namespace qucad {

/// Synthetic rotating-machinery vibration diagnosis: 4-class classification
/// of 256-sample accelerometer traces from a simulated sensor stream —
/// the fleet harness's "workload the repository was not tuned on".
/// Classes model the classic fault signatures:
///   0: healthy       (small 1x rotation tone + noise)
///   1: imbalance     (dominant 1x tone)
///   2: misalignment  (strong 2x harmonic)
///   3: bearing fault (periodic high-frequency impulsive bursts)
/// Four diagnostic features are extracted per trace:
///   0: log10 signal energy
///   1: 2x/1x harmonic magnitude ratio (Goertzel)
///   2: excess kurtosis (impulsiveness)
///   3: crest factor (peak / RMS)
Dataset make_vibration(std::size_t samples = 2000, std::uint64_t seed = 23,
                       double snr_db = 12.0);

/// Raw trace synthesis for class `klass` in [0, 4) (exposed for tests).
std::vector<double> vibration_waveform(int klass, Rng& rng, double snr_db);

/// Feature extraction used by make_vibration (exposed for tests).
std::vector<double> vibration_features(const std::vector<double>& waveform);

}  // namespace qucad
