#include "fleet/remote_stub_backend.hpp"

#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <utility>

#include "common/rng.hpp"

namespace qucad::fleet {

namespace {

// Bounds the retry loop of one job: a stub must shape latency, not hang.
constexpr int kMaxFaultsPerJob = 8;

}  // namespace

Status RemoteStubOptions::validate() const {
  if (queue_latency_seconds < 0.0 || retry_backoff_seconds < 0.0) {
    return Status::invalid_argument(
        "remote stub latencies must be non-negative");
  }
  if (max_shots_per_job < 0) {
    return Status::invalid_argument(
        "remote stub max_shots_per_job must be non-negative");
  }
  if (!(fault_rate >= 0.0 && fault_rate < 1.0)) {
    return Status::invalid_argument("remote stub fault_rate must be in [0, 1)");
  }
  return Status();
}

RemoteStubBackend::RemoteStubBackend(
    std::shared_ptr<const ExecutionBackend> inner, RemoteStubOptions options,
    BackendKind kind)
    : inner_(std::move(inner)), options_(options), kind_(kind) {
  const int shots = inner_->diagnostics().shots;
  jobs_per_sample_ =
      (options_.max_shots_per_job > 0 && shots > 0)
          ? (shots + options_.max_shots_per_job - 1) / options_.max_shots_per_job
          : 1;
}

BackendDiagnostics RemoteStubBackend::diagnostics() const {
  BackendDiagnostics d = inner_->diagnostics();
  d.name = "remote_stub(" + d.name + ")";
  d.kind = kind_;
  return d;
}

void RemoteStubBackend::account_submission(std::size_t samples) const {
  submissions_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t job_count =
      static_cast<std::uint64_t>(samples) *
      static_cast<std::uint64_t>(jobs_per_sample_);
  jobs_.fetch_add(job_count, std::memory_order_relaxed);

  std::uint64_t faults = 0;
  if (options_.fault_rate > 0.0 && job_count > 0) {
    const std::uint64_t first_id =
        next_job_id_.fetch_add(job_count, std::memory_order_relaxed);
    for (std::uint64_t j = 0; j < job_count; ++j) {
      Rng rng(options_.fault_seed + first_id + j);
      int job_faults = 0;
      while (job_faults < kMaxFaultsPerJob &&
             rng.bernoulli(options_.fault_rate)) {
        ++job_faults;
      }
      faults += static_cast<std::uint64_t>(job_faults);
    }
    faults_.fetch_add(faults, std::memory_order_relaxed);
  }

  const double wait = options_.queue_latency_seconds +
                      options_.retry_backoff_seconds *
                          static_cast<double>(faults);
  if (wait > 0.0) {
    wait_micros_.fetch_add(static_cast<std::uint64_t>(wait * 1e6),
                           std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
  }
}

std::vector<double> RemoteStubBackend::run_logits(
    std::span<const double> x) const {
  account_submission(1);
  return inner_->run_logits(x);
}

std::vector<std::vector<double>> RemoteStubBackend::run_logits_batch(
    std::span<const std::vector<double>> xs, ThreadPool* pool) const {
  account_submission(xs.size());
  // One inner call for the whole batch: the sampled backend's per-sample
  // shot streams are seeded by in-batch position, so forwarding the batch
  // intact is what keeps stub logits bitwise equal to the inner backend's.
  return inner_->run_logits_batch(xs, pool);
}

RemoteStubBackend::Stats RemoteStubBackend::stats() const {
  Stats s;
  s.submissions = submissions_.load(std::memory_order_relaxed);
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.faults = faults_.load(std::memory_order_relaxed);
  s.wait_seconds =
      static_cast<double>(wait_micros_.load(std::memory_order_relaxed)) / 1e6;
  return s;
}

Status register_remote_stub_backend(BackendRegistry& registry,
                                    RemoteStubOptions options,
                                    BackendKind kind) {
  if (Status status = options.validate(); !status.ok()) return status;
  if (options.inner_kind == kind) {
    return Status::invalid_argument(
        "remote stub cannot wrap its own registry kind");
  }
  registry.register_factory(
      kind,
      [&registry, options, kind](const BackendConfig& config,
                                 const BackendContext& context)
          -> StatusOr<std::shared_ptr<const ExecutionBackend>> {
        BackendConfig inner_config = config;
        inner_config.kind = options.inner_kind;
        // Recursive make() is safe: the registry copies the factory out of
        // its lock before invoking it.
        StatusOr<std::shared_ptr<const ExecutionBackend>> inner =
            registry.make(inner_config, context);
        if (!inner.ok()) return inner.status();
        return std::shared_ptr<const ExecutionBackend>(
            std::make_shared<const RemoteStubBackend>(*std::move(inner),
                                                      options, kind));
      });
  return Status();
}

}  // namespace qucad::fleet
