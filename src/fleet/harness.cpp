#include "fleet/harness.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "repo/constructor.hpp"
#include "repo/manager.hpp"

namespace qucad::fleet {

namespace {

bool same_topology(const FluctuationScenario& a, const FluctuationScenario& b) {
  return a.num_qubits == b.num_qubits && a.edges == b.edges;
}

}  // namespace

StatusOr<FleetHarness> FleetHarness::create(const Environment& env,
                                            const FleetConfig& config,
                                            FleetOptions options) {
  if (Status status = config.validate(); !status.ok()) return status;
  if (options.offline_days < 1 || options.online_days < 1) {
    return Status::invalid_argument(
        "fleet offline_days and online_days must be >= 1");
  }
  if (options.day_stride < 1 || options.offline_stride < 1) {
    return Status::invalid_argument("fleet strides must be >= 1");
  }
  if (options.offline_days + options.online_days > config.days) {
    return Status::invalid_argument(
        "offline_days + online_days exceeds the fleet day count");
  }
  if (env.train.size() == 0 || env.test.size() == 0 ||
      env.profile.size() == 0) {
    return Status::invalid_argument(
        "fleet environment needs non-empty train/test/profile datasets");
  }
  if (options.backend.has_value()) {
    if (Status status = options.backend->validate(); !status.ok()) {
      return status;
    }
  }

  StatusOr<FluctuationScenario> first = config.devices.front().scenario();
  if (!first.ok()) return first.status();
  if (env.transpiled.num_physical_qubits() != first->num_qubits) {
    return Status::invalid_argument(
        "the environment's routed model spans " +
        std::to_string(env.transpiled.num_physical_qubits()) +
        " physical qubits but the fleet devices have " +
        std::to_string(first->num_qubits));
  }

  std::vector<DriftStream> streams;
  streams.reserve(config.devices.size());
  for (const DeviceSpec& spec : config.devices) {
    StatusOr<FluctuationScenario> scenario = spec.scenario();
    if (!scenario.ok()) return scenario.status();
    if (!same_topology(*first, *scenario)) {
      return Status::invalid_argument(
          "device '" + spec.name +
          "' has a different topology than the rest of the fleet; one "
          "repository serves one topology class (calibration features are "
          "topology-dimensioned)");
    }
    StatusOr<DriftStream> stream = DriftStream::create(spec, config.days);
    if (!stream.ok()) return stream.status();
    streams.push_back(*std::move(stream));
  }

  return FleetHarness(env, config, options, std::move(streams));
}

StatusOr<FleetResult> FleetHarness::run() {
  // Offline: one repository from the pooled offline windows of every
  // device's stream (interleaved device-major so the clustering sees the
  // fleet's regimes side by side).
  std::vector<Calibration> offline_pool;
  for (const DriftStream& stream : streams_) {
    for (int d = 0; d < options_.offline_days; d += options_.offline_stride) {
      offline_pool.push_back(stream.history().day(d));
    }
  }

  OfflineBuild build = build_repository(env_.model, env_.transpiled,
                                        env_.theta_pretrained, offline_pool,
                                        env_.train, env_.profile,
                                        env_.constructor_options);
  const std::size_t offline_entries = build.repository.size();

  OnlineManager manager(env_.model, env_.transpiled, env_.theta_pretrained,
                        env_.train, std::move(build.repository),
                        env_.manager_options);

  NoisyEvalOptions eval = env_.eval;
  if (options_.backend.has_value()) eval.backend = *options_.backend;

  const Dataset test =
      options_.max_eval_samples > 0 &&
              options_.max_eval_samples < env_.test.size()
          ? env_.test.take(options_.max_eval_samples)
          : env_.test;

  FleetResult result;
  result.devices.resize(streams_.size());
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    result.devices[i].name = streams_[i].spec().name;
    result.devices[i].maintenance_events =
        static_cast<int>(streams_[i].maintenance_days().size());
  }

  std::vector<double> pooled;
  const int first_day = options_.offline_days;
  const int last_day = options_.offline_days + options_.online_days;
  for (int d = first_day; d < last_day; d += options_.day_stride) {
    double day_sum = 0.0;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      FleetDeviceResult& device = result.devices[i];
      const Calibration& calibration = streams_[i].history().day(d);

      const auto start = std::chrono::steady_clock::now();
      const OnlineManager::Decision decision =
          manager.process_day(calibration);
      switch (decision.action) {
        case OnlineManager::Decision::Action::Reuse:
          ++device.reuses;
          break;
        case OnlineManager::Decision::Action::NewModel:
          ++device.new_models;
          break;
        case OnlineManager::Decision::Action::Failure:
          ++device.failures;
          break;
      }
      device.optimize_seconds += decision.optimize_seconds;
      if (decision.entry_index < 0) {
        return Status::internal("fleet decision references no repository entry");
      }
      // Failure days still serve the matched (invalid) model — the paper's
      // Table-I accounting — with the failure recorded above.
      const std::vector<double>& theta =
          manager.repository().entry(decision.entry_index).theta;

      StatusOr<NoisyEvalResult> evaluated = noisy_evaluate_or(
          env_.model, env_.transpiled, theta, test, calibration, eval);
      if (!evaluated.ok()) return evaluated.status();

      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      device.daily_accuracy.push_back(evaluated->accuracy);
      device.day_seconds.push_back(seconds);
      pooled.push_back(evaluated->accuracy);
      day_sum += evaluated->accuracy;
    }
    if (options_.verbose) {
      std::printf("fleet day %3d: mean accuracy %.4f over %zu devices\n", d,
                  day_sum / static_cast<double>(streams_.size()),
                  streams_.size());
    }
  }

  for (FleetDeviceResult& device : result.devices) {
    device.metrics = summarize_series(device.daily_accuracy);
    result.reuses += device.reuses;
    result.new_models += device.new_models;
    result.failures += device.failures;
    result.optimize_seconds += device.optimize_seconds;
  }
  result.aggregate = summarize_series(pooled);
  result.repository_entries_offline = offline_entries;
  result.repository_entries_final = manager.repository().size();
  return result;
}

}  // namespace qucad::fleet
