#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/strategy.hpp"
#include "eval/metrics.hpp"
#include "fleet/device_spec.hpp"
#include "fleet/drift_stream.hpp"

namespace qucad::fleet {

/// Fleet run knobs. The day window is split the same way the single-device
/// harness splits a CalibrationHistory: days [0, offline_days) build the
/// repository, days [offline_days, offline_days + online_days) are served.
struct FleetOptions {
  int offline_days = 30;  ///< repository-construction window per device
  int online_days = 16;   ///< served days per device
  int day_stride = 1;     ///< serve every n-th online day
  /// Pool every n-th offline day per device into the repository build
  /// (the constructor profiles the pretrained model on every pooled day, so
  /// the stride is the offline-cost knob).
  int offline_stride = 1;
  /// Cap on test samples evaluated per device-day (0 = the whole test set).
  std::size_t max_eval_samples = 0;
  /// Overrides the environment's execution backend for the per-day accuracy
  /// evaluations (e.g. the remote stub kind) — same convention as
  /// HarnessOptions::backend.
  std::optional<BackendConfig> backend;
  bool verbose = false;
};

/// One device's slice of a fleet run.
struct FleetDeviceResult {
  std::string name;
  std::vector<double> daily_accuracy;  ///< one entry per served day
  std::vector<double> day_seconds;     ///< wall time per served day
  SeriesMetrics metrics;
  int reuses = 0;
  int new_models = 0;
  int failures = 0;
  double optimize_seconds = 0.0;
  int maintenance_events = 0;  ///< over the device's whole stream
};

/// The fleet-aggregate view: per-device results plus pooled repository
/// traffic — the "one repository, many noisy machines" accounting.
struct FleetResult {
  std::vector<FleetDeviceResult> devices;
  /// Metrics over every (device, day) accuracy sample pooled.
  SeriesMetrics aggregate;
  int reuses = 0;        ///< repository hits
  int new_models = 0;    ///< online compressions (repository misses)
  int failures = 0;      ///< Guidance-2 failure reports
  double optimize_seconds = 0.0;  ///< total online-compression cost
  std::size_t repository_entries_offline = 0;
  std::size_t repository_entries_final = 0;

  int decisions() const { return reuses + new_models + failures; }

  /// Repository hit share of all decisions (0 when nothing was decided).
  double reuse_rate() const {
    const int n = decisions();
    return n == 0 ? 0.0 : static_cast<double>(reuses) / n;
  }
};

/// Runs ONE model repository against every device of a fleet
/// longitudinally. Offline, the repository is built from the pooled offline
/// windows of all drift streams (it learns the fleet's regimes, not one
/// device's); online, each day every device's calibration goes through the
/// shared OnlineManager — reuse, compress-new, or failure-report — and the
/// selected model is evaluated under that device's noise.
///
/// All devices must share one topology class (qubit count + coupled edges):
/// calibration feature vectors are topology-dimensioned, so that is the
/// fleet a single repository can serve; create() rejects mixed fleets.
/// Decision counts and (with a deterministic backend) accuracies are a pure
/// function of (environment, config, options) — only timing fields vary.
class FleetHarness {
 public:
  /// Validates the fleet against the environment and synthesizes every
  /// device's drift stream. The environment is copied (the OnlineManager
  /// convention: a harness cannot dangle).
  static StatusOr<FleetHarness> create(const Environment& env,
                                       const FleetConfig& config,
                                       FleetOptions options = {});

  /// Builds the repository and serves the online window. Evaluation errors
  /// (a calibration that does not cover the routed device, a misconfigured
  /// backend) surface as Status.
  StatusOr<FleetResult> run();

  const std::vector<DriftStream>& streams() const { return streams_; }

 private:
  FleetHarness(Environment env, FleetConfig config, FleetOptions options,
               std::vector<DriftStream> streams)
      : env_(std::move(env)),
        config_(std::move(config)),
        options_(options),
        streams_(std::move(streams)) {}

  Environment env_;
  FleetConfig config_;
  FleetOptions options_;
  std::vector<DriftStream> streams_;
};

}  // namespace qucad::fleet
