#include "fleet/device_spec.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "common/rng.hpp"

namespace qucad::fleet {

namespace {

constexpr int kMaxDays = 4096;
constexpr std::size_t kMaxDevices = 256;

// Salt of the baseline-jitter draw stream (the maintenance stream uses its
// own salt in drift_stream.cpp).
constexpr std::uint64_t kJitterSalt = 0xC2B2AE3D27D4EB4FULL;

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  return std::all_of(name.begin(), name.end(), [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
  });
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool parse_u64(std::string_view token, std::uint64_t& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_int(std::string_view token, int& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_double(std::string_view token, double& out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end && std::isfinite(out);
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

DeviceSpec DeviceSpec::belem(std::string name, std::uint64_t drift_seed) {
  DeviceSpec spec;
  spec.name = std::move(name);
  spec.topology = "belem";
  spec.drift_seed = drift_seed;
  return spec;
}

DeviceSpec DeviceSpec::jakarta(std::string name, std::uint64_t drift_seed) {
  DeviceSpec spec;
  spec.name = std::move(name);
  spec.topology = "jakarta";
  spec.drift_seed = drift_seed;
  return spec;
}

Status DeviceSpec::validate() const {
  if (!valid_name(name)) {
    return Status::invalid_argument(
        "device name must be 1-64 chars of [A-Za-z0-9_.-]");
  }
  if (topology != "belem" && topology != "jakarta") {
    return Status::invalid_argument("unknown device topology '" + topology +
                                    "' (belem | jakarta)");
  }
  if (!(error_scale > 0.0 && error_scale <= 100.0)) {
    return Status::invalid_argument("error_scale must be in (0, 100]");
  }
  if (!(t_scale > 0.0 && t_scale <= 100.0)) {
    return Status::invalid_argument("t_scale must be in (0, 100]");
  }
  if (!(ou_sigma_scale >= 0.0 && ou_sigma_scale <= 100.0)) {
    return Status::invalid_argument("ou_sigma_scale must be in [0, 100]");
  }
  if (!(baseline_jitter >= 0.0 && baseline_jitter <= 4.0)) {
    return Status::invalid_argument("baseline_jitter must be in [0, 4]");
  }
  if (episode_shift < -kMaxDays || episode_shift > kMaxDays) {
    return Status::invalid_argument("episode_shift must be in [-4096, 4096]");
  }
  if (!(maintenance_rate >= 0.0 && maintenance_rate <= 1.0)) {
    return Status::invalid_argument("maintenance_rate must be in [0, 1]");
  }
  return Status();
}

StatusOr<CouplingMap> DeviceSpec::coupling() const {
  if (topology == "belem") return CouplingMap::belem();
  if (topology == "jakarta") return CouplingMap::jakarta();
  return Status::invalid_argument("unknown device topology '" + topology +
                                  "' (belem | jakarta)");
}

StatusOr<FluctuationScenario> DeviceSpec::scenario() const {
  if (Status status = validate(); !status.ok()) return status;
  FluctuationScenario s = topology == "belem" ? FluctuationScenario::belem()
                                              : FluctuationScenario::jakarta();

  // Per-parameter lognormal jitter first (fixed draw order: sx, ro, cx),
  // then the device-wide scales, then clamps into the generator's bands.
  std::vector<double> sx_jitter(s.sx_base.size(), 1.0);
  std::vector<double> ro_jitter(s.ro_base.size(), 1.0);
  std::vector<double> cx_jitter(s.cx_base.size(), 1.0);
  if (baseline_jitter > 0.0) {
    Rng rng(drift_seed ^ kJitterSalt);
    for (double& j : sx_jitter) j = std::exp(rng.normal(0.0, baseline_jitter));
    for (double& j : ro_jitter) j = std::exp(rng.normal(0.0, baseline_jitter));
    for (double& j : cx_jitter) j = std::exp(rng.normal(0.0, baseline_jitter));
  }
  for (std::size_t q = 0; q < s.sx_base.size(); ++q) {
    s.sx_base[q] = std::clamp(s.sx_base[q] * error_scale * sx_jitter[q], 1e-6,
                              2e-2);
  }
  for (std::size_t q = 0; q < s.ro_base.size(); ++q) {
    s.ro_base[q] =
        std::clamp(s.ro_base[q] * error_scale * ro_jitter[q], 1e-6, 0.2);
  }
  for (std::size_t e = 0; e < s.cx_base.size(); ++e) {
    s.cx_base[e] =
        std::clamp(s.cx_base[e] * error_scale * cx_jitter[e], 1e-6, 0.25);
  }
  s.t1_base_us = std::clamp(s.t1_base_us * t_scale, 20.0, 400.0);
  s.t2_base_us = std::clamp(s.t2_base_us * t_scale, 10.0, 2.0 * s.t1_base_us);
  s.ou_sigma = std::clamp(s.ou_sigma * ou_sigma_scale, 0.0, 1.0);
  s.t_sigma = std::clamp(s.t_sigma * ou_sigma_scale, 0.0, 1.0);
  for (SpikeEpisode& ep : s.episodes) {
    ep.start_day += episode_shift;
    ep.end_day += episode_shift;
  }
  return s;
}

Status FleetConfig::validate() const {
  if (days < 1 || days > kMaxDays) {
    return Status::invalid_argument("fleet days must be in [1, 4096]");
  }
  if (devices.empty()) {
    return Status::invalid_argument("fleet needs at least one device");
  }
  if (devices.size() > kMaxDevices) {
    return Status::invalid_argument("fleet is capped at 256 devices");
  }
  std::set<std::string> names;
  for (const DeviceSpec& spec : devices) {
    if (Status status = spec.validate(); !status.ok()) {
      return Status::invalid_argument("device '" + spec.name +
                                      "': " + status.message());
    }
    if (!names.insert(spec.name).second) {
      return Status::invalid_argument("duplicate device name '" + spec.name +
                                      "'");
    }
  }
  return Status();
}

FleetConfig FleetConfig::heterogeneous(int num_devices, std::uint64_t seed,
                                       int days) {
  FleetConfig config;
  config.days = days;
  config.seed = seed;
  Rng rng(seed);
  config.devices.reserve(static_cast<std::size_t>(std::max(num_devices, 0)));
  for (int i = 0; i < num_devices; ++i) {
    DeviceSpec spec = DeviceSpec::belem("dev" + std::to_string(i),
                                        seed * 7919 + 104729ULL *
                                            static_cast<std::uint64_t>(i) + 1);
    spec.error_scale = rng.uniform(0.7, 1.45);
    spec.ou_sigma_scale = rng.uniform(0.8, 1.3);
    spec.baseline_jitter = 0.15;
    spec.episode_shift = rng.integer(-30, 30);
    // Half the fleet sees occasional maintenance step-changes; the rest
    // drifts purely under the OU dynamics.
    spec.maintenance_rate = (i % 2 == 0) ? 0.02 : 0.0;
    config.devices.push_back(std::move(spec));
  }
  return config;
}

std::string FleetConfig::to_text() const {
  std::string out = "fleet days=" + std::to_string(days) +
                    " seed=" + std::to_string(seed) + "\n";
  for (const DeviceSpec& spec : devices) {
    out += "device name=" + spec.name + " topology=" + spec.topology +
           " seed=" + std::to_string(spec.drift_seed) +
           " error_scale=" + format_double(spec.error_scale) +
           " t_scale=" + format_double(spec.t_scale) +
           " ou_sigma_scale=" + format_double(spec.ou_sigma_scale) +
           " baseline_jitter=" + format_double(spec.baseline_jitter) +
           " episode_shift=" + std::to_string(spec.episode_shift) +
           " maintenance_rate=" + format_double(spec.maintenance_rate) +
           " maintenance_seed=" + std::to_string(spec.maintenance_seed) + "\n";
  }
  return out;
}

StatusOr<FleetConfig> FleetConfig::parse(std::string_view text) {
  if (text.size() > (1u << 20)) {
    return Status::invalid_argument("fleet config exceeds 1 MiB");
  }
  FleetConfig config;
  config.devices.clear();
  bool saw_fleet_line = false;

  std::size_t pos = 0;
  int line_number = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    auto fail = [&](const std::string& what) -> Status {
      return Status::invalid_argument("fleet config line " +
                                      std::to_string(line_number) + ": " + what);
    };

    // Tokenize on runs of spaces/tabs.
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
      if (i > start) tokens.push_back(line.substr(start, i - start));
    }
    if (tokens.empty()) continue;
    if (tokens.size() > 64) return fail("too many fields");

    const std::string_view head = tokens.front();
    const bool is_fleet = head == "fleet";
    const bool is_device = head == "device";
    if (!is_fleet && !is_device) {
      return fail("expected 'fleet' or 'device', got '" + std::string(head) +
                  "'");
    }
    if (is_fleet) {
      if (saw_fleet_line) return fail("duplicate fleet line");
      saw_fleet_line = true;
    }

    DeviceSpec spec;
    std::set<std::string_view> seen_keys;
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      const std::string_view token = tokens[t];
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos || eq == 0) {
        return fail("expected key=value, got '" + std::string(token) + "'");
      }
      const std::string_view key = token.substr(0, eq);
      const std::string_view value = token.substr(eq + 1);
      if (value.empty()) return fail("empty value for '" + std::string(key) + "'");
      if (!seen_keys.insert(key).second) {
        return fail("duplicate key '" + std::string(key) + "'");
      }

      bool ok = true;
      if (is_fleet) {
        if (key == "days") {
          ok = parse_int(value, config.days);
        } else if (key == "seed") {
          ok = parse_u64(value, config.seed);
        } else {
          return fail("unknown fleet key '" + std::string(key) + "'");
        }
      } else {
        if (key == "name") {
          spec.name = std::string(value);
        } else if (key == "topology") {
          spec.topology = std::string(value);
        } else if (key == "seed") {
          ok = parse_u64(value, spec.drift_seed);
        } else if (key == "error_scale") {
          ok = parse_double(value, spec.error_scale);
        } else if (key == "t_scale") {
          ok = parse_double(value, spec.t_scale);
        } else if (key == "ou_sigma_scale") {
          ok = parse_double(value, spec.ou_sigma_scale);
        } else if (key == "baseline_jitter") {
          ok = parse_double(value, spec.baseline_jitter);
        } else if (key == "episode_shift") {
          ok = parse_int(value, spec.episode_shift);
        } else if (key == "maintenance_rate") {
          ok = parse_double(value, spec.maintenance_rate);
        } else if (key == "maintenance_seed") {
          ok = parse_u64(value, spec.maintenance_seed);
        } else {
          return fail("unknown device key '" + std::string(key) + "'");
        }
      }
      if (!ok) {
        return fail("malformed value for '" + std::string(key) + "': '" +
                    std::string(value) + "'");
      }
    }
    if (is_device) {
      if (config.devices.size() >= kMaxDevices) {
        return fail("fleet is capped at 256 devices");
      }
      config.devices.push_back(std::move(spec));
    }
  }

  if (Status status = config.validate(); !status.ok()) return status;
  return config;
}

}  // namespace qucad::fleet
