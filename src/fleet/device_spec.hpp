#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "noise/calibration_history.hpp"
#include "transpile/coupling.hpp"

namespace qucad::fleet {

/// One simulated device of a fleet: a topology preset (which fixes the
/// coupling map, qubit count, and the paper-matched spike-episode schedule)
/// plus per-device perturbations of the baseline noise profile and the
/// knobs of its independent drift stream. Two specs with the same fields
/// generate bitwise-identical calibration day sequences (DriftStream), so a
/// fleet scenario is fully described by its FleetConfig.
struct DeviceSpec {
  /// Identifier reported in fleet results ([A-Za-z0-9_.-], <= 64 chars).
  std::string name = "device";

  /// Topology preset: "belem" (5-qubit T) or "jakarta" (7-qubit H). The
  /// preset supplies the coupling map and the FluctuationScenario the drift
  /// stream perturbs.
  std::string topology = "belem";

  /// Seed of the device's Ornstein-Uhlenbeck drift stream.
  std::uint64_t drift_seed = 1;

  /// Multiplies every gate/readout error baseline: device-to-device
  /// heterogeneity in overall noise level. Must be in (0, 100].
  double error_scale = 1.0;

  /// Multiplies the T1/T2 baselines. Must be in (0, 100].
  double t_scale = 1.0;

  /// Multiplies the scenario's daily OU log-volatility (how restless this
  /// device's calibration is). Must be in [0, 100].
  double ou_sigma_scale = 1.0;

  /// Per-parameter lognormal jitter (sigma, log space) applied to each
  /// baseline individually, seeded by drift_seed — makes each device's
  /// noise *profile* distinct, not just its overall level. In [0, 4].
  double baseline_jitter = 0.0;

  /// Shifts every spike episode by this many days, so devices sharing a
  /// topology preset do not surge in lockstep. In [-4096, 4096].
  int episode_shift = 0;

  /// Per-day probability of a maintenance event: a persistent step change
  /// of the device's error and T1/T2 levels (recalibration, cooldown, a
  /// two-qubit gate retune). In [0, 1].
  double maintenance_rate = 0.0;

  /// Seed of the maintenance event stream; 0 derives it from drift_seed so
  /// the two streams stay independent but reproducible.
  std::uint64_t maintenance_seed = 0;

  /// Belem-topology spec with paper-matched baselines (the device behind
  /// the fig. 4 heterogeneity study when seeded 2021).
  static DeviceSpec belem(std::string name = "belem",
                          std::uint64_t drift_seed = 2021);

  /// Jakarta-topology spec (the fig. 8 longitudinal device when seeded
  /// 1107).
  static DeviceSpec jakarta(std::string name = "jakarta",
                            std::uint64_t drift_seed = 1107);

  /// Field validation (ranges above, known topology, well-formed name).
  Status validate() const;

  /// The device's coupling map (from the topology preset).
  StatusOr<CouplingMap> coupling() const;

  /// The perturbed fluctuation scenario this device drifts under: the
  /// topology preset's baselines scaled by error_scale/t_scale, jittered by
  /// baseline_jitter (seeded), OU volatility scaled, episodes shifted.
  StatusOr<FluctuationScenario> scenario() const;
};

/// A whole fleet: N device specs plus the shared day count. Serializable to
/// a line-oriented text format (`to_text`/`parse`) so fleet scenarios can be
/// checked in, diffed, and fuzzed; parse is exception-free and rejects
/// malformed input with Status (it sits on the untrusted-input surface).
struct FleetConfig {
  /// Days each drift stream generates (offline + online windows). In
  /// [1, 4096].
  int days = CalibrationHistory::kTotalDays;

  /// Fleet-level seed recorded by heterogeneous(); informational in a
  /// hand-written config.
  std::uint64_t seed = 7;

  std::vector<DeviceSpec> devices;  // at most 256

  /// Validates the fleet fields and every device spec; device names must be
  /// unique.
  Status validate() const;

  /// Generates n same-topology (belem) devices with per-device perturbed
  /// baselines, distinct drift seeds, shifted episodes, and occasional
  /// maintenance events — heterogeneity as device-to-device noise
  /// variation over one topology class, which is what a single shared
  /// repository can serve (calibration feature vectors are
  /// topology-dimensioned).
  static FleetConfig heterogeneous(int num_devices, std::uint64_t seed,
                                   int days = CalibrationHistory::kTotalDays);

  /// Canonical text form:
  ///   fleet days=<int> seed=<u64>
  ///   device name=<id> topology=<preset> seed=<u64> ... (one line each)
  /// parse(to_text()) reproduces the config exactly.
  std::string to_text() const;

  /// Parses the text form. '#' starts a comment; unknown keys, malformed
  /// numbers, duplicate names, and out-of-range values are
  /// kInvalidArgument. Never throws.
  static StatusOr<FleetConfig> parse(std::string_view text);
};

}  // namespace qucad::fleet
