#pragma once

#include <vector>

#include "common/status.hpp"
#include "fleet/device_spec.hpp"
#include "noise/calibration_history.hpp"

namespace qucad::fleet {

/// One device's seeded longitudinal calibration stream: the shared
/// Ornstein-Uhlenbeck day generator (noise/calibration_history.hpp —
/// random-walk T1/T2/gate-error/readout drift plus the scenario's spike
/// episodes) overlaid with the spec's occasional maintenance events, each a
/// persistent step change of the device's error and T1/T2 levels.
///
/// The stream is a pure function of (DeviceSpec, days): two streams built
/// from the same spec are bitwise identical, and a spec with
/// maintenance_rate == 0 reproduces generate_fluctuation_days exactly — the
/// paper-figure benches and the fleet simulator share one calibration
/// synthesis code path.
class DriftStream {
 public:
  /// Builds the full day sequence. Rejects invalid specs and day counts
  /// outside [1, 4096] with kInvalidArgument; never throws.
  static StatusOr<DriftStream> create(const DeviceSpec& spec, int days);

  const DeviceSpec& spec() const { return spec_; }

  /// The generated day sequence, CalibrationHistory-compatible: day(d),
  /// slice(), date_string() all work as for a synthesized single-device
  /// history.
  const CalibrationHistory& history() const { return history_; }

  /// Days on which a maintenance event fired (ascending).
  const std::vector<int>& maintenance_days() const {
    return maintenance_days_;
  }

 private:
  DriftStream(DeviceSpec spec, CalibrationHistory history,
              std::vector<int> maintenance_days)
      : spec_(std::move(spec)),
        history_(std::move(history)),
        maintenance_days_(std::move(maintenance_days)) {}

  DeviceSpec spec_;
  CalibrationHistory history_;
  std::vector<int> maintenance_days_;
};

}  // namespace qucad::fleet
