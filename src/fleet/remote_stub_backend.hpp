#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "backend/registry.hpp"
#include "common/status.hpp"

namespace qucad::fleet {

/// The registry kind the remote stub registers under by default
/// (`static_cast<BackendKind>(16)` — beyond the built-in enumerators, the
/// registry's documented extension range).
inline constexpr BackendKind kRemoteStubBackendKind =
    static_cast<BackendKind>(16);

/// Shaping knobs of the remote stub: how a cloud-queued QPU *feels*, never
/// what it computes.
struct RemoteStubOptions {
  /// The backend kind that actually computes the logits. Must differ from
  /// the kind the stub itself is registered under.
  BackendKind inner_kind = BackendKind::kSampled;

  /// Injected queueing wait per submission (one run_logits or
  /// run_logits_batch call = one submission).
  double queue_latency_seconds = 0.0;

  /// Extra wait per injected transient fault (the client's retry backoff).
  double retry_backoff_seconds = 0.0;

  /// Shot budget per remote job: a request whose per-sample shots exceed
  /// this is split into ceil(shots / max_shots_per_job) jobs, each subject
  /// to its own fault draw. 0 = unlimited (one job per sample).
  int max_shots_per_job = 0;

  /// Per-job probability of a transient unavailability. Each fault costs a
  /// retry (backoff wait + a stats tick); the job then re-runs, so results
  /// are never affected. In [0, 1).
  double fault_rate = 0.0;

  /// Seed of the fault stream. Job j draws from fault_seed + j (j is a
  /// monotone per-backend counter), so the *set* of per-job draws — and
  /// therefore the total fault count — is deterministic even when jobs are
  /// submitted from concurrent threads in varying order.
  std::uint64_t fault_seed = 2033;

  Status validate() const;
};

/// A hardware-in-the-loop stand-in: wraps an inner ExecutionBackend with
/// injected queueing latency, shot-batching limits, and transient
/// unavailability faults, so fleet and serving drills exercise realistic
/// backend stalls without hardware. Timing and stats are shaped; logits are
/// bitwise those of the inner backend — run_logits_batch forwards the WHOLE
/// batch in one inner call (the sampled backend seeds sample i at
/// seed + in-batch index, so splitting a batch would change its results).
///
/// All run methods are const and safe to call concurrently (stats counters
/// are atomics), matching the ExecutionBackend contract.
class RemoteStubBackend final : public ExecutionBackend {
 public:
  struct Stats {
    std::uint64_t submissions = 0;  ///< run_logits / run_logits_batch calls
    std::uint64_t jobs = 0;         ///< shot-batched jobs submitted
    std::uint64_t faults = 0;       ///< transient unavailabilities injected
    double wait_seconds = 0.0;      ///< total injected queue + backoff wait
  };

  RemoteStubBackend(std::shared_ptr<const ExecutionBackend> inner,
                    RemoteStubOptions options,
                    BackendKind kind = kRemoteStubBackendKind);

  BackendKind kind() const override { return kind_; }
  const BackendCapabilities& capabilities() const override {
    return inner_->capabilities();
  }
  BackendDiagnostics diagnostics() const override;

  std::vector<double> run_logits(std::span<const double> x) const override;
  std::vector<std::vector<double>> run_logits_batch(
      std::span<const std::vector<double>> xs,
      ThreadPool* pool = nullptr) const override;

  Stats stats() const;
  const ExecutionBackend& inner() const { return *inner_; }

 private:
  /// Accounts one submission of `samples` samples: assigns job ids, draws
  /// their fault streams, sleeps the injected waits, bumps the counters.
  void account_submission(std::size_t samples) const;

  std::shared_ptr<const ExecutionBackend> inner_;
  RemoteStubOptions options_;
  BackendKind kind_;
  int jobs_per_sample_;

  mutable std::atomic<std::uint64_t> submissions_{0};
  mutable std::atomic<std::uint64_t> jobs_{0};
  mutable std::atomic<std::uint64_t> faults_{0};
  mutable std::atomic<std::uint64_t> wait_micros_{0};
  mutable std::atomic<std::uint64_t> next_job_id_{0};
};

/// Installs a remote-stub factory under `kind` (default
/// kRemoteStubBackendKind) on `registry`. The factory builds the inner
/// backend through the SAME registry with the config's kind remapped to
/// options.inner_kind — every other config field (shots, seed,
/// deterministic) passes through — then wraps it. After registration any
/// config-driven consumer (evaluator, harness, serving, fleet) selects the
/// stub with `BackendConfig{.kind = kind, ...}`.
Status register_remote_stub_backend(BackendRegistry& registry,
                                    RemoteStubOptions options,
                                    BackendKind kind = kRemoteStubBackendKind);

}  // namespace qucad::fleet
