#include "fleet/drift_stream.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.hpp"

namespace qucad::fleet {

namespace {

// Same salt device_spec.cpp documents: derives the maintenance stream from
// the drift seed when no explicit maintenance seed is set, so the two
// streams are independent but jointly reproducible.
constexpr std::uint64_t kMaintenanceSalt = 0x9E3779B97F4A7C15ULL;

double clamp_rate(double v, double hi) { return std::clamp(v, 1e-6, hi); }

// Applies the current maintenance scales to one day's calibration, staying
// inside the same bands the OU generator clamps to.
void apply_scales(Calibration& cal, double error_scale, double t_scale) {
  for (int q = 0; q < cal.num_qubits(); ++q) {
    cal.set_sx_error(q, clamp_rate(cal.sx_error(q) * error_scale, 2e-2));
    const ReadoutError ro = cal.readout(q);
    cal.set_readout(q, ReadoutError{
                           clamp_rate(ro.p1_given_0 * error_scale, 0.2),
                           clamp_rate(ro.p0_given_1 * error_scale, 0.2)});
    const double t1 = std::clamp(cal.t1_us(q) * t_scale, 20.0, 400.0);
    const double t2 = std::clamp(cal.t2_us(q) * t_scale, 10.0, 2.0 * t1);
    cal.set_t1_t2(q, t1, t2);
  }
  for (const auto& [a, b] : cal.edges()) {
    cal.set_cx_error(a, b, clamp_rate(cal.cx_error(a, b) * error_scale, 0.25));
  }
}

}  // namespace

StatusOr<DriftStream> DriftStream::create(const DeviceSpec& spec, int days) {
  if (days < 1 || days > 4096) {
    return Status::invalid_argument("drift stream days must be in [1, 4096]");
  }
  StatusOr<FluctuationScenario> scenario = spec.scenario();
  if (!scenario.ok()) return scenario.status();

  std::vector<Calibration> stream =
      generate_fluctuation_days(*scenario, days, spec.drift_seed);

  std::vector<int> maintenance_days;
  if (spec.maintenance_rate > 0.0) {
    const std::uint64_t seed = spec.maintenance_seed != 0
                                   ? spec.maintenance_seed
                                   : spec.drift_seed ^ kMaintenanceSalt;
    Rng rng(seed);
    // Scales persist from one event to the next: a maintenance pass leaves
    // the device on a new level until the next one.
    double error_scale = 1.0;
    double t_scale = 1.0;
    for (int d = 0; d < days; ++d) {
      if (rng.bernoulli(spec.maintenance_rate)) {
        error_scale = std::clamp(std::exp(rng.normal(0.0, 0.35)), 0.5, 2.2);
        t_scale = std::clamp(std::exp(rng.normal(0.0, 0.15)), 0.7, 1.4);
        maintenance_days.push_back(d);
      }
      if (error_scale != 1.0 || t_scale != 1.0) {
        apply_scales(stream[static_cast<std::size_t>(d)], error_scale,
                     t_scale);
      }
    }
  }

  return DriftStream(spec, CalibrationHistory(std::move(stream)),
                     std::move(maintenance_days));
}

}  // namespace qucad::fleet
