#pragma once

#include <string>

#include "linalg/gates.hpp"
#include "linalg/matrix.hpp"

namespace qucad {

/// Gate vocabulary. Rotation gates may carry a symbolic parameter; the rest
/// are fixed. CX/SX/X/RZ form the physical basis the transpiler lowers to.
enum class GateKind {
  // Parameterized rotations.
  RX, RY, RZ,
  CRX, CRY, CRZ,
  // Fixed single-qubit gates.
  X, Y, Z, SX, SXdg, H,
  // Fixed two-qubit gates.
  CX, CZ, Swap,
};

/// Symbolic reference to a parameter slot.
///  - Trainable: model weight theta[index], updated by optimizers.
///  - Input: data-encoding angle x[index], bound per sample.
///  - None: a literal angle stored on the gate.
struct ParamRef {
  enum class Kind { None, Trainable, Input };
  Kind kind = Kind::None;
  int index = -1;

  bool is_symbolic() const { return kind != Kind::None; }
  bool operator==(const ParamRef&) const = default;
};

/// Creates a reference to trainable parameter slot `i`.
ParamRef trainable(int i);

/// Creates a reference to input (encoding) slot `i`.
ParamRef input(int i);

/// One gate instance in a circuit. q1 < 0 for single-qubit gates. For
/// two-qubit gates q0 is the control (CX/CR*) or the first operand (Swap/CZ).
struct Gate {
  GateKind kind = GateKind::RY;
  int q0 = 0;
  int q1 = -1;
  ParamRef param;
  double value = 0.0;  // literal angle when param.kind == None

  int num_qubits() const { return q1 < 0 ? 1 : 2; }
};

bool is_rotation(GateKind kind);
bool is_controlled_rotation(GateKind kind);
bool is_single_qubit_rotation(GateKind kind);
bool is_parameterizable(GateKind kind);
int gate_arity(GateKind kind);
std::string gate_name(GateKind kind);

/// Unitary matrix of a gate kind at a given angle (angle ignored for fixed
/// gates). 2x2 or 4x4 depending on arity.
CMat gate_matrix(GateKind kind, double angle);

}  // namespace qucad
