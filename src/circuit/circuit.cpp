#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "common/require.hpp"

namespace qucad {

Circuit::Circuit(int num_qubits) : num_qubits_(num_qubits) {
  require(num_qubits > 0 && num_qubits <= 24, "circuit qubit count out of range");
}

void Circuit::check_qubit(int q) const {
  require(q >= 0 && q < num_qubits_, "qubit index out of range");
}

void Circuit::note_param(ParamRef p) {
  if (p.kind == ParamRef::Kind::Trainable) {
    num_trainable_ = std::max(num_trainable_, p.index + 1);
  } else if (p.kind == ParamRef::Kind::Input) {
    num_inputs_ = std::max(num_inputs_, p.index + 1);
  }
}

Circuit& Circuit::add_rotation(GateKind kind, int q0, int q1, ParamRef p,
                               double angle) {
  check_qubit(q0);
  if (gate_arity(kind) == 2) {
    check_qubit(q1);
    require(q0 != q1, "two-qubit gate requires distinct qubits");
  } else {
    q1 = -1;
  }
  note_param(p);
  gates_.emplace_back(kind, q0, q1, p, angle);
  return *this;
}

Circuit& Circuit::rx(int q, double angle) {
  return add_rotation(GateKind::RX, q, -1, ParamRef{}, angle);
}
Circuit& Circuit::rx(int q, ParamRef p) {
  return add_rotation(GateKind::RX, q, -1, p, 0.0);
}
Circuit& Circuit::ry(int q, double angle) {
  return add_rotation(GateKind::RY, q, -1, ParamRef{}, angle);
}
Circuit& Circuit::ry(int q, ParamRef p) {
  return add_rotation(GateKind::RY, q, -1, p, 0.0);
}
Circuit& Circuit::rz(int q, double angle) {
  return add_rotation(GateKind::RZ, q, -1, ParamRef{}, angle);
}
Circuit& Circuit::rz(int q, ParamRef p) {
  return add_rotation(GateKind::RZ, q, -1, p, 0.0);
}
Circuit& Circuit::crx(int control, int target, double angle) {
  return add_rotation(GateKind::CRX, control, target, ParamRef{}, angle);
}
Circuit& Circuit::crx(int control, int target, ParamRef p) {
  return add_rotation(GateKind::CRX, control, target, p, 0.0);
}
Circuit& Circuit::cry(int control, int target, double angle) {
  return add_rotation(GateKind::CRY, control, target, ParamRef{}, angle);
}
Circuit& Circuit::cry(int control, int target, ParamRef p) {
  return add_rotation(GateKind::CRY, control, target, p, 0.0);
}
Circuit& Circuit::crz(int control, int target, double angle) {
  return add_rotation(GateKind::CRZ, control, target, ParamRef{}, angle);
}
Circuit& Circuit::crz(int control, int target, ParamRef p) {
  return add_rotation(GateKind::CRZ, control, target, p, 0.0);
}

Circuit& Circuit::x(int q) {
  return add_rotation(GateKind::X, q, -1, ParamRef{}, 0.0);
}
Circuit& Circuit::y(int q) {
  return add_rotation(GateKind::Y, q, -1, ParamRef{}, 0.0);
}
Circuit& Circuit::z(int q) {
  return add_rotation(GateKind::Z, q, -1, ParamRef{}, 0.0);
}
Circuit& Circuit::sx(int q) {
  return add_rotation(GateKind::SX, q, -1, ParamRef{}, 0.0);
}
Circuit& Circuit::sxdg(int q) {
  return add_rotation(GateKind::SXdg, q, -1, ParamRef{}, 0.0);
}
Circuit& Circuit::h(int q) {
  return add_rotation(GateKind::H, q, -1, ParamRef{}, 0.0);
}
Circuit& Circuit::cx(int control, int target) {
  return add_rotation(GateKind::CX, control, target, ParamRef{}, 0.0);
}
Circuit& Circuit::cz(int a, int b) {
  return add_rotation(GateKind::CZ, a, b, ParamRef{}, 0.0);
}
Circuit& Circuit::swap(int a, int b) {
  return add_rotation(GateKind::Swap, a, b, ParamRef{}, 0.0);
}

Circuit& Circuit::add(Gate gate) {
  return add_rotation(gate.kind, gate.q0, gate.q1, gate.param, gate.value);
}

Circuit& Circuit::append(const Circuit& other) {
  require(other.num_qubits_ == num_qubits_,
          "append requires matching qubit counts");
  for (const Gate& g : other.gates_) add(g);
  return *this;
}

double Circuit::resolve_angle(const Gate& gate, std::span<const double> theta,
                              std::span<const double> x) const {
  switch (gate.param.kind) {
    case ParamRef::Kind::None:
      return gate.value;
    case ParamRef::Kind::Trainable:
      require(static_cast<std::size_t>(gate.param.index) < theta.size(),
              "trainable parameter vector too short");
      return theta[static_cast<std::size_t>(gate.param.index)];
    case ParamRef::Kind::Input:
      require(static_cast<std::size_t>(gate.param.index) < x.size(),
              "input vector too short");
      return x[static_cast<std::size_t>(gate.param.index)];
  }
  return gate.value;
}

Circuit Circuit::bind(std::span<const double> theta,
                      std::span<const double> x) const {
  Circuit out(num_qubits_);
  for (const Gate& g : gates_) {
    Gate bound = g;
    const bool bind_trainable =
        g.param.kind == ParamRef::Kind::Trainable && !theta.empty();
    const bool bind_input = g.param.kind == ParamRef::Kind::Input && !x.empty();
    if (bind_trainable || bind_input) {
      bound.value = resolve_angle(g, theta, x);
      bound.param = ParamRef{};
    }
    out.add(bound);
  }
  return out;
}

std::vector<std::size_t> Circuit::gates_for_trainable(int t) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.param.kind == ParamRef::Kind::Trainable && g.param.index == t) {
      indices.push_back(i);
    }
  }
  return indices;
}

std::size_t Circuit::two_qubit_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.num_qubits() == 2; }));
}

std::string Circuit::to_string() const {
  std::ostringstream out;
  out << "circuit(" << num_qubits_ << " qubits, " << gates_.size()
      << " gates, " << num_trainable_ << " trainable, " << num_inputs_
      << " inputs)\n";
  for (const Gate& g : gates_) {
    out << "  " << gate_name(g.kind) << " q" << g.q0;
    if (g.q1 >= 0) out << ", q" << g.q1;
    if (g.param.kind == ParamRef::Kind::Trainable) {
      out << " theta[" << g.param.index << "]";
    } else if (g.param.kind == ParamRef::Kind::Input) {
      out << " x[" << g.param.index << "]";
    } else if (is_rotation(g.kind)) {
      out << " " << g.value;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace qucad
