#pragma once

#include <span>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qucad {

/// Quantum circuit IR: an ordered gate list over `num_qubits` wires with two
/// symbolic parameter spaces (trainable weights and per-sample inputs).
///
/// The same IR serves logical circuits (the QNN ansatz), routed circuits
/// (after SWAP insertion, still carrying symbolic parameters) and fully
/// bound circuits (all angles literal).
class Circuit {
 public:
  explicit Circuit(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  int num_trainable() const { return num_trainable_; }
  int num_inputs() const { return num_inputs_; }
  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }

  // --- builders (rotations accept a literal angle or a symbolic reference) --
  Circuit& rx(int q, double angle);
  Circuit& rx(int q, ParamRef p);
  Circuit& ry(int q, double angle);
  Circuit& ry(int q, ParamRef p);
  Circuit& rz(int q, double angle);
  Circuit& rz(int q, ParamRef p);
  Circuit& crx(int control, int target, double angle);
  Circuit& crx(int control, int target, ParamRef p);
  Circuit& cry(int control, int target, double angle);
  Circuit& cry(int control, int target, ParamRef p);
  Circuit& crz(int control, int target, double angle);
  Circuit& crz(int control, int target, ParamRef p);
  Circuit& x(int q);
  Circuit& y(int q);
  Circuit& z(int q);
  Circuit& sx(int q);
  Circuit& sxdg(int q);
  Circuit& h(int q);
  Circuit& cx(int control, int target);
  Circuit& cz(int a, int b);
  Circuit& swap(int a, int b);
  Circuit& add(Gate gate);

  /// Appends all gates of `other` (same qubit count required); parameter
  /// index spaces are merged (max).
  Circuit& append(const Circuit& other);

  /// Resolves a gate's angle against parameter vectors. Fixed gates return
  /// their stored literal.
  double resolve_angle(const Gate& gate, std::span<const double> theta,
                       std::span<const double> x) const;

  /// Returns a copy with every symbolic parameter replaced by its literal
  /// value from `theta` / `x` (pass empty spans to keep a space symbolic).
  Circuit bind(std::span<const double> theta, std::span<const double> x) const;

  /// Gate indices that reference trainable parameter slot `t`.
  std::vector<std::size_t> gates_for_trainable(int t) const;

  /// Count of two-qubit gates.
  std::size_t two_qubit_count() const;

  std::string to_string() const;

 private:
  Circuit& add_rotation(GateKind kind, int q0, int q1, ParamRef p, double angle);
  void note_param(ParamRef p);
  void check_qubit(int q) const;

  int num_qubits_ = 0;
  int num_trainable_ = 0;
  int num_inputs_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace qucad
