#include "circuit/gate.hpp"

#include "common/require.hpp"

namespace qucad {

ParamRef trainable(int i) {
  require(i >= 0, "trainable index must be non-negative");
  return ParamRef{ParamRef::Kind::Trainable, i};
}

ParamRef input(int i) {
  require(i >= 0, "input index must be non-negative");
  return ParamRef{ParamRef::Kind::Input, i};
}

bool is_rotation(GateKind kind) {
  switch (kind) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::CRX:
    case GateKind::CRY:
    case GateKind::CRZ:
      return true;
    default:
      return false;
  }
}

bool is_controlled_rotation(GateKind kind) {
  return kind == GateKind::CRX || kind == GateKind::CRY || kind == GateKind::CRZ;
}

bool is_single_qubit_rotation(GateKind kind) {
  return kind == GateKind::RX || kind == GateKind::RY || kind == GateKind::RZ;
}

bool is_parameterizable(GateKind kind) { return is_rotation(kind); }

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::SX:
    case GateKind::SXdg:
    case GateKind::H:
      return 1;
    default:
      return 2;
  }
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::RX: return "rx";
    case GateKind::RY: return "ry";
    case GateKind::RZ: return "rz";
    case GateKind::CRX: return "crx";
    case GateKind::CRY: return "cry";
    case GateKind::CRZ: return "crz";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::SX: return "sx";
    case GateKind::SXdg: return "sxdg";
    case GateKind::H: return "h";
    case GateKind::CX: return "cx";
    case GateKind::CZ: return "cz";
    case GateKind::Swap: return "swap";
  }
  return "?";
}

CMat gate_matrix(GateKind kind, double angle) {
  switch (kind) {
    case GateKind::RX: return gates::RX(angle);
    case GateKind::RY: return gates::RY(angle);
    case GateKind::RZ: return gates::RZ(angle);
    case GateKind::CRX: return gates::CRX(angle);
    case GateKind::CRY: return gates::CRY(angle);
    case GateKind::CRZ: return gates::CRZ(angle);
    case GateKind::X: return gates::X();
    case GateKind::Y: return gates::Y();
    case GateKind::Z: return gates::Z();
    case GateKind::SX: return gates::SX();
    case GateKind::SXdg: return gates::SXdg();
    case GateKind::H: return gates::H();
    case GateKind::CX: return gates::CX();
    case GateKind::CZ: return gates::CZ();
    case GateKind::Swap: return gates::SWAP();
  }
  require(false, "unknown gate kind");
  return CMat();
}

}  // namespace qucad
